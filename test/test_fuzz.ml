(* Differential fuzzing subsystem: generator determinism, oracle
   classification, shrinker soundness, the smoke sweep, the
   fault-injection self-test and the repro-corpus replay contract. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- generator ---------- *)

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let a = Netlist.Aiger.write (Fuzz.Gen.model ~seed ()) in
      let b = Netlist.Aiger.write (Fuzz.Gen.model ~seed ()) in
      check bool (Printf.sprintf "seed %d reproduces" seed) true (a = b))
    [ 0; 1; 42; 1234567; -3 ]

let test_gen_seeds_differ () =
  let distinct =
    List.sort_uniq compare
      (List.init 20 (fun seed -> Netlist.Aiger.write (Fuzz.Gen.model ~seed ())))
  in
  (* a collision among 20 tiny models would mean the seed is ignored *)
  check bool "20 seeds give >= 15 distinct models" true (List.length distinct >= 15)

let test_gen_validates () =
  let m = Fuzz.Gen.model ~seed:9 () in
  check bool "generated model validates" true (Netlist.Model.validate m = Ok ());
  List.iter
    (fun seed ->
      let m = Fuzz.Gen.model ~seed () in
      check bool
        (Printf.sprintf "seed %d within knob bounds" seed)
        true
        (Netlist.Model.num_latches m >= 1
        && Netlist.Model.num_latches m <= Fuzz.Gen.default.Fuzz.Gen.max_latches
        && Netlist.Model.num_inputs m <= Fuzz.Gen.default.Fuzz.Gen.max_inputs))
    (List.init 30 (fun i -> i))

let test_gen_rejects_bad_knobs () =
  let bad = { Fuzz.Gen.default with Fuzz.Gen.and_density = 1.5 } in
  check bool "bad density rejected" true (Result.is_error (Fuzz.Gen.validate_knobs bad));
  let bad = { Fuzz.Gen.default with Fuzz.Gen.min_latches = 5; max_latches = 2 } in
  check bool "empty latch range rejected" true (Result.is_error (Fuzz.Gen.validate_knobs bad));
  match Fuzz.Gen.model ~knobs:bad ~seed:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "model accepted invalid knobs"

let test_pqe_shape_knobs () =
  let bad = { Fuzz.Gen.default with Fuzz.Gen.shared_subcones = 1.5 } in
  check bool "bad shared_subcones rejected" true (Result.is_error (Fuzz.Gen.validate_knobs bad));
  let bad = { Fuzz.Gen.default with Fuzz.Gen.wide_support = -0.1 } in
  check bool "bad wide_support rejected" true (Result.is_error (Fuzz.Gen.validate_knobs bad));
  (* with a trigger knob on, generation stays deterministic, validates,
     and actually changes the models *)
  List.iter
    (fun knobs ->
      List.iter
        (fun seed ->
          let a = Netlist.Aiger.write (Fuzz.Gen.model ~knobs ~seed ()) in
          let b = Netlist.Aiger.write (Fuzz.Gen.model ~knobs ~seed ()) in
          check bool (Printf.sprintf "seed %d reproduces under pqe shapes" seed) true (a = b);
          check bool "model validates" true
            (Netlist.Model.validate (Fuzz.Gen.model ~knobs ~seed ()) = Ok ());
          check bool
            (Printf.sprintf "seed %d differs from the default-shape model" seed)
            true
            (a <> Netlist.Aiger.write (Fuzz.Gen.model ~seed ())))
        [ 3; 8; 21 ])
    [
      { Fuzz.Gen.default with Fuzz.Gen.shared_subcones = 1.0 };
      { Fuzz.Gen.default with Fuzz.Gen.wide_support = 1.0 };
    ]

let test_derive_seed_prefix_stable () =
  (* the i-th model of a campaign must not depend on the campaign length *)
  let a = List.init 10 (fun i -> Fuzz.Gen.derive_seed ~master:42 i) in
  let b = List.init 5 (fun i -> Fuzz.Gen.derive_seed ~master:42 i) in
  check bool "prefix agrees" true (List.filteri (fun i _ -> i < 5) a = b);
  check bool "masters differ" true (Fuzz.Gen.derive_seed ~master:1 0 <> Fuzz.Gen.derive_seed ~master:2 0)

(* ---------- oracle classification ---------- *)

let test_verdict_compatibility () =
  let u = Baselines.Verdict.Undecided "budget" in
  let p = Baselines.Verdict.Proved in
  let f2 = Baselines.Verdict.Falsified 2 in
  let f3 = Baselines.Verdict.Falsified 3 in
  check bool "undecided vs proved" true (Fuzz.Oracle.compatible u p);
  check bool "undecided vs falsified" true (Fuzz.Oracle.compatible f2 u);
  check bool "undecided vs undecided" true (Fuzz.Oracle.compatible u u);
  check bool "proved vs proved" true (Fuzz.Oracle.compatible p p);
  check bool "falsified same depth" true (Fuzz.Oracle.compatible f2 f2);
  check bool "proved vs falsified" false (Fuzz.Oracle.compatible p f2);
  check bool "different depths" false (Fuzz.Oracle.compatible f2 f3)

let test_oracle_accepts_good_model () =
  (* a healthy model passes all three layers and every engine decides *)
  let m = Fuzz.Gen.model ~seed:5 () in
  (match Fuzz.Oracle.check m with
  | None -> ()
  | Some f -> Alcotest.failf "unexpected failure: %a" Fuzz.Oracle.pp_failure f);
  let verdicts = Fuzz.Oracle.run_engines m in
  check int "all engines report" (List.length Fuzz.Oracle.engine_names) (List.length verdicts)

let test_oracle_budget_degrades_to_undecided () =
  (* a one-conflict budget forces degradation; the oracle must classify
     the resulting verdicts as compatible, not as a disagreement *)
  let config =
    {
      Fuzz.Oracle.default_config with
      Fuzz.Oracle.budget =
        { Fuzz.Oracle.no_budget with Fuzz.Oracle.max_conflicts = Some 1; max_aig_nodes = Some 400 };
    }
  in
  for seed = 1 to 10 do
    let m = Fuzz.Gen.model ~seed () in
    match Fuzz.Oracle.check_differential ~config m with
    | None -> ()
    | Some f ->
      Alcotest.failf "seed %d: budget degradation misread as %a" seed Fuzz.Oracle.pp_failure f
  done

let test_oracle_backend_choice_agrees () =
  (* the differential layer runs the CBQ engines under each configured
     backend; decided verdicts must stay compatible with the baselines *)
  List.iter
    (fun backend ->
      let config = { Fuzz.Oracle.default_config with Fuzz.Oracle.quantify_backend = backend } in
      for seed = 11 to 15 do
        let m = Fuzz.Gen.model ~seed () in
        match Fuzz.Oracle.check ~config m with
        | None -> ()
        | Some f ->
          Alcotest.failf "seed %d under the %s backend: %a" seed
            (Cbq.Quantify.backend_name backend)
            Fuzz.Oracle.pp_failure f
      done)
    [ Cbq.Quantify.Circuit; Cbq.Quantify.Pqe; Cbq.Quantify.Auto ]

(* ---------- smoke sweep ---------- *)

let test_smoke_sweep_tiny_budget () =
  (* 100 models through the full oracle stack under a tiny budget: the
     governor-degradation paths are on the fuzzed surface *)
  let config =
    {
      Fuzz.Oracle.default_config with
      Fuzz.Oracle.budget = { Fuzz.Oracle.no_budget with Fuzz.Oracle.max_conflicts = Some 20 };
    }
  in
  let r = Fuzz.Runner.run ~config ~shrink:false ~seed:2026 ~count:100 () in
  check int "100 models ran" 100 r.Fuzz.Runner.count;
  List.iter
    (fun f ->
      Alcotest.failf "seed %d: %a" f.Fuzz.Runner.seed Fuzz.Oracle.pp_failure
        f.Fuzz.Runner.failure)
    r.Fuzz.Runner.failures

let test_pqe_shape_sweep () =
  (* PQE-trigger shapes through the full oracle stack: check_algebraic
     differentially verifies every quantification backend against the
     Shannon oracle on exactly the structures the pqe backend targets *)
  let knobs =
    { Fuzz.Gen.default with Fuzz.Gen.shared_subcones = 0.4; wide_support = 0.3 }
  in
  let r = Fuzz.Runner.run ~knobs ~shrink:false ~seed:1337 ~count:40 () in
  check int "40 models ran" 40 r.Fuzz.Runner.count;
  List.iter
    (fun f ->
      Alcotest.failf "seed %d: %a" f.Fuzz.Runner.seed Fuzz.Oracle.pp_failure
        f.Fuzz.Runner.failure)
    r.Fuzz.Runner.failures

(* ---------- fault injection + shrinking ---------- *)

(* run campaigns under the injected sweeper bug until failures appear;
   seed 42 yields them within the first 120 models (see test/corpus) *)
let injected_failures () =
  Sweep.Fault.with_injection (fun () -> Fuzz.Runner.run ~seed:42 ~count:120 ())

let test_injected_fault_caught_and_shrunk () =
  let r = injected_failures () in
  check bool "injected unsoundness found" true (r.Fuzz.Runner.failures <> []);
  List.iter
    (fun f ->
      let shrunk =
        match f.Fuzz.Runner.shrunk with
        | Some s -> s
        | None -> Alcotest.fail "failure was not shrunk"
      in
      let stats = Netlist.Model.stats shrunk.Fuzz.Shrink.model in
      check bool
        (Printf.sprintf "seed %d shrunk to <= 8 latches (got %d)" f.Fuzz.Runner.seed
           stats.Netlist.Model.latches)
        true
        (stats.Netlist.Model.latches <= 8);
      check bool "shrinking never grows the model" true
        (stats.Netlist.Model.latches <= Fuzz.Gen.default.Fuzz.Gen.max_latches))
    r.Fuzz.Runner.failures

let test_shrunk_model_still_fails () =
  (* shrinker soundness: the minimized model exhibits the recorded
     failure under the same conditions, and is healthy without the bug *)
  let r = injected_failures () in
  List.iter
    (fun f ->
      Sweep.Fault.with_injection (fun () ->
          match Fuzz.Oracle.check f.Fuzz.Runner.model with
          | Some _ -> ()
          | None -> Alcotest.failf "seed %d: shrunk model no longer fails" f.Fuzz.Runner.seed);
      match Fuzz.Oracle.check f.Fuzz.Runner.model with
      | None -> ()
      | Some g ->
        Alcotest.failf "seed %d: shrunk model fails even without the fault: %a"
          f.Fuzz.Runner.seed Fuzz.Oracle.pp_failure g)
    r.Fuzz.Runner.failures

(* ---------- corpus ---------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Printf.sprintf "fuzz-corpus-tmp-%d" (Hashtbl.hash (Sys.getcwd (), Sys.time ())) in
  if Sys.file_exists dir then rm_rf dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let test_corpus_save_load_roundtrip () =
  with_temp_dir (fun dir ->
      let m = Fuzz.Gen.model ~seed:77 () in
      let failure = Fuzz.Oracle.Unsound_sweep { root = 0 } in
      let e =
        Fuzz.Corpus.save ~dir ~seed:77 m failure
          ~verdicts:[ ("cbq-bwd", Baselines.Verdict.Proved) ]
      in
      check bool "slug carries the label" true
        (String.length e.Fuzz.Corpus.slug > 0
        && String.sub e.Fuzz.Corpus.slug 0 5 = "sweep");
      (match Fuzz.Corpus.list ~dir with
      | [ listed ] ->
        check bool "listed = saved" true (listed.Fuzz.Corpus.slug = e.Fuzz.Corpus.slug);
        check bool "seed preserved" true (listed.Fuzz.Corpus.seed = Some 77);
        check bool "label preserved" true (listed.Fuzz.Corpus.label = "sweep");
        let reloaded = Fuzz.Corpus.load listed in
        check bool "model survives the roundtrip" true
          (Netlist.Aiger.write reloaded = Netlist.Aiger.write m)
      | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
      (* saving the same failure again must not overwrite *)
      let e2 =
        Fuzz.Corpus.save ~dir ~seed:77 m failure
          ~verdicts:[ ("cbq-bwd", Baselines.Verdict.Proved) ]
      in
      check bool "fresh slug on collision" true (e2.Fuzz.Corpus.slug <> e.Fuzz.Corpus.slug);
      check int "two entries now" 2 (List.length (Fuzz.Corpus.list ~dir)))

let test_corpus_missing_dir_is_empty () =
  check int "missing dir lists empty" 0
    (List.length (Fuzz.Corpus.list ~dir:"no-such-corpus-dir"))

(* the checked-in corpus: every entry is a once-failing repro that must
   pass the full oracle stack today (dune copies test/corpus into the
   sandbox via the source_tree dep in test/dune) *)
let test_corpus_replay_clean () =
  let entries = Fuzz.Corpus.list ~dir:"corpus" in
  check bool "checked-in corpus is non-empty" true (entries <> []);
  List.iter
    (fun (e, outcome) ->
      match outcome with
      | None -> ()
      | Some f ->
        Alcotest.failf "corpus entry %s fails again: %a" e.Fuzz.Corpus.slug
          Fuzz.Oracle.pp_failure f)
    (Fuzz.Corpus.replay ~dir:"corpus" ())

(* ---------- telemetry ---------- *)

let test_runner_counters () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      let before = Obs.value_of "fuzz.models" in
      let r = Fuzz.Runner.run ~shrink:false ~seed:3 ~count:7 () in
      check int "no failures" 0 (List.length r.Fuzz.Runner.failures);
      check int "fuzz.models counts the campaign" (before + 7) (Obs.value_of "fuzz.models"))

let () =
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_gen_seeds_differ;
          Alcotest.test_case "models validate" `Quick test_gen_validates;
          Alcotest.test_case "knob validation" `Quick test_gen_rejects_bad_knobs;
          Alcotest.test_case "pqe-trigger shape knobs" `Quick test_pqe_shape_knobs;
          Alcotest.test_case "seed derivation" `Quick test_derive_seed_prefix_stable;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "verdict compatibility" `Quick test_verdict_compatibility;
          Alcotest.test_case "good model passes" `Quick test_oracle_accepts_good_model;
          Alcotest.test_case "per-backend differential" `Quick test_oracle_backend_choice_agrees;
          Alcotest.test_case "budget degradation" `Quick test_oracle_budget_degrades_to_undecided;
          Alcotest.test_case "100-model smoke sweep" `Quick test_smoke_sweep_tiny_budget;
          Alcotest.test_case "pqe-shape sweep" `Quick test_pqe_shape_sweep;
        ] );
      ( "self-test",
        [
          Alcotest.test_case "injected fault caught + shrunk" `Quick
            test_injected_fault_caught_and_shrunk;
          Alcotest.test_case "shrunk repro still fails" `Quick test_shrunk_model_still_fails;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "save/list/load" `Quick test_corpus_save_load_roundtrip;
          Alcotest.test_case "missing dir" `Quick test_corpus_missing_dir_is_empty;
          Alcotest.test_case "replay contract" `Quick test_corpus_replay_clean;
        ] );
      ("telemetry", [ Alcotest.test_case "fuzz.* counters" `Quick test_runner_counters ]);
    ]
