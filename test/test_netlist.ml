(* Model, builder and AIGER I/O tests. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let toggle_model () =
  (* one latch toggled by an input, property: latch implies property seen *)
  let b = Netlist.Builder.create "toggle" in
  let aig = Netlist.Builder.aig b in
  let e = Netlist.Builder.input b in
  let q = Netlist.Builder.latch b ~init:false in
  Netlist.Builder.connect b q (Aig.xor_ aig q e);
  Netlist.Builder.set_property b (Aig.not_ (Aig.and_ aig q e));
  Netlist.Builder.finish b

let test_builder_basic () =
  let m = toggle_model () in
  check int "one input" 1 (Netlist.Model.num_inputs m);
  check int "one latch" 1 (Netlist.Model.num_latches m);
  check bool "validates" true (Netlist.Model.validate m = Ok ())

let test_builder_errors () =
  (* unconnected latch *)
  (try
     let b = Netlist.Builder.create "bad" in
     let _ = Netlist.Builder.latch b ~init:false in
     Netlist.Builder.set_property b Aig.true_;
     ignore (Netlist.Builder.finish b);
     Alcotest.fail "expected failure for unconnected latch"
   with Failure msg -> check bool "mentions latch" true (String.length msg > 0));
  (* missing property *)
  (try
     let b = Netlist.Builder.create "bad2" in
     ignore (Netlist.Builder.input b);
     ignore (Netlist.Builder.finish b);
     Alcotest.fail "expected failure for missing property"
   with Failure _ -> ());
  (* double connection *)
  let b = Netlist.Builder.create "bad3" in
  let q = Netlist.Builder.latch b ~init:false in
  Netlist.Builder.connect b q Aig.true_;
  Alcotest.check_raises "double connect"
    (Invalid_argument "Builder.connect: latch already connected") (fun () ->
      Netlist.Builder.connect b q Aig.false_);
  (* connecting a non-latch *)
  let b2 = Netlist.Builder.create "bad4" in
  let i = Netlist.Builder.input b2 in
  Alcotest.check_raises "connect an input"
    (Invalid_argument "Builder.connect: not a latch literal") (fun () ->
      Netlist.Builder.connect b2 i Aig.true_)

let test_validate_undeclared () =
  (* construct a model by hand referencing a variable that is neither
     input nor state *)
  let aig = Aig.create () in
  let v_state = Aig.fresh_var aig in
  let v_rogue = Aig.fresh_var aig in
  let m =
    {
      Netlist.Model.name = "rogue";
      aig;
      inputs = [];
      latches =
        [ { Netlist.Model.state_var = v_state; next = Aig.var aig v_rogue; init = false } ];
      property = Aig.true_;
    }
  in
  check bool "validation fails" true (Netlist.Model.validate m <> Ok ())

let test_eval_step () =
  let m = toggle_model () in
  let state0 = Netlist.Model.init_state m in
  let q = List.hd (Netlist.Model.state_vars m) in
  let e = List.hd (Netlist.Model.input_vars m) in
  check bool "initial latch value" false (state0 q);
  (* toggle on *)
  let state1 = Netlist.Model.eval_step m ~state:state0 ~inputs:(fun v -> v = e) in
  check bool "toggled to true" true (state1 q);
  (* hold *)
  let state2 = Netlist.Model.eval_step m ~state:state1 ~inputs:(fun _ -> false) in
  check bool "held" true (state2 q);
  (* toggle off *)
  let state3 = Netlist.Model.eval_step m ~state:state2 ~inputs:(fun v -> v = e) in
  check bool "toggled back" false (state3 q)

let test_init_lit () =
  let b = Netlist.Builder.create "inits" in
  let q0 = Netlist.Builder.latch b ~init:true in
  let q1 = Netlist.Builder.latch b ~init:false in
  Netlist.Builder.connect b q0 q0;
  Netlist.Builder.connect b q1 q1;
  Netlist.Builder.set_property b Aig.true_;
  let m = Netlist.Builder.finish b in
  let aig = Netlist.Model.aig m in
  let init = Netlist.Model.init_lit m in
  check bool "init state satisfies init_lit" true
    (Aig.eval aig init (Netlist.Model.init_state m));
  (* any other state falsifies it *)
  check bool "flipped state rejected" false (Aig.eval aig init (fun _ -> false))

let test_property_holds () =
  let m = toggle_model () in
  check bool "property true initially" true
    (Netlist.Model.property_holds m ~state:(Netlist.Model.init_state m))

let test_stats () =
  let m = toggle_model () in
  let s = Netlist.Model.stats m in
  check int "inputs" 1 s.Netlist.Model.inputs;
  check int "latches" 1 s.Netlist.Model.latches;
  check bool "next function has gates" true (s.Netlist.Model.next_size > 0)

(* ---------- aiger ---------- *)

let models_equivalent m1 m2 =
  (* same interface sizes and pointwise-equal behaviour under random
     stimulus (deterministic prng) *)
  Netlist.Model.num_inputs m1 = Netlist.Model.num_inputs m2
  && Netlist.Model.num_latches m1 = Netlist.Model.num_latches m2
  &&
  let prng = Util.Prng.create 99 in
  let inputs1 = Netlist.Model.input_vars m1 and inputs2 = Netlist.Model.input_vars m2 in
  let state1 = ref (Netlist.Model.init_state m1) and state2 = ref (Netlist.Model.init_state m2) in
  let ok = ref (Netlist.Model.property_holds m1 ~state:!state1 = Netlist.Model.property_holds m2 ~state:!state2) in
  for _ = 1 to 100 do
    let bits = List.map (fun _ -> Util.Prng.bool prng) inputs1 in
    let assign vars = List.combine vars bits in
    let in1 = assign inputs1 and in2 = assign inputs2 in
    state1 := Netlist.Model.eval_step m1 ~state:!state1 ~inputs:(fun v -> List.assoc v in1);
    state2 := Netlist.Model.eval_step m2 ~state:!state2 ~inputs:(fun v -> List.assoc v in2);
    if
      Netlist.Model.property_holds m1 ~state:!state1
      <> Netlist.Model.property_holds m2 ~state:!state2
    then ok := false
  done;
  !ok

let test_aiger_roundtrip_toggle () =
  let m = toggle_model () in
  let text = Netlist.Aiger.write m in
  let m' = Netlist.Aiger.read ~name:"toggle-reread" text in
  check bool "roundtrip behaviour" true (models_equivalent m m')

let test_aiger_roundtrip_families () =
  List.iter
    (fun (mk : unit -> Netlist.Model.t) ->
      let m = mk () in
      let m' = Netlist.Aiger.read ~name:"reread" (Netlist.Aiger.write m) in
      check bool (Netlist.Model.name m ^ " roundtrip") true (models_equivalent m m'))
    [
      (fun () -> Circuits.Families.counter ~bits:3);
      (fun () -> Circuits.Families.gray_counter ~bits:3);
      (fun () -> Circuits.Families.fifo ~buggy:true ~depth_log:2 ());
      (fun () -> Circuits.Families.peterson ());
      (fun () -> Circuits.Families.rr_arbiter ~n:3);
    ]

let test_aiger_format_shape () =
  let m = toggle_model () in
  let text = Netlist.Aiger.write m in
  check bool "header present" true (String.length text > 4 && String.sub text 0 4 = "aag ");
  (* init values are written in the three-field form *)
  let lines = String.split_on_char '\n' text in
  let latch_line = List.nth lines 2 in
  check int "latch line has three fields" 3
    (List.length (String.split_on_char ' ' (String.trim latch_line)))

let test_aiger_errors () =
  let expect_failure name text =
    try
      ignore (Netlist.Aiger.read ~name text);
      Alcotest.fail (name ^ ": expected parse failure")
    with Netlist.Aiger.Parse_error _ -> ()
  in
  expect_failure "empty" "";
  expect_failure "bad header" "aig 1 2 3";
  expect_failure "truncated" "aag 3 2 0 1 1\n2\n4\n";
  expect_failure "undefined literal" "aag 2 1 0 1 0\n2\n99\n";
  expect_failure "no output" "aag 1 1 0 0 0\n2\n"

(* the structured exception must carry the 1-based line number and the
   offending token, for both the ascii and the binary reader *)
let test_aiger_parse_error_details () =
  let expect_error name reader text ~line ~token =
    try
      ignore (reader text);
      Alcotest.fail (name ^ ": expected parse failure")
    with Netlist.Aiger.Parse_error e ->
      check int (name ^ ": line") line e.line;
      check Alcotest.string (name ^ ": token") token e.token
  in
  let ascii = Netlist.Aiger.read ~name:"t" in
  expect_error "header token" ascii "aag 2 x 0 1 0\n2\n2\n" ~line:1 ~token:"x";
  expect_error "input line" ascii "aag 2 1 1 1 0\nzz\n4 2\n4\n" ~line:2 ~token:"zz";
  expect_error "latch token" ascii "aag 2 1 1 1 0\n2\n4 zz\n4\n" ~line:3 ~token:"zz";
  expect_error "odd latch literal" ascii "aag 2 1 1 1 0\n2\n5 2\n4\n" ~line:3 ~token:"5 2";
  expect_error "undefined output literal" ascii "aag 2 1 0 1 0\n2\n99\n" ~line:3 ~token:"99";
  expect_error "and line" ascii "aag 3 1 0 1 1\n2\n6\n6 2\n" ~line:4 ~token:"6 2";
  (* binary reader: latch lines start at absolute line 2 *)
  let binary = Netlist.Aiger.read_binary ~name:"t" in
  expect_error "binary latch token" binary "aig 2 1 1 1 0\nzz\n4\n" ~line:2 ~token:"zz";
  expect_error "binary output token" binary "aig 2 1 1 1 0\n4 0\nzz\n" ~line:3 ~token:"zz";
  (* registered printer renders the diagnostic *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let rendered =
    Printexc.to_string
      (Netlist.Aiger.Parse_error { line = 7; token = "zz"; reason = "expected an integer" })
  in
  check bool "printer mentions the line" true (contains rendered "line 7");
  check bool "printer mentions the token" true (contains rendered "zz")

let test_aiger_two_field_latches () =
  (* classic aag with two-field latches resets to zero *)
  let text = "aag 2 1 1 1 0\n2\n4 2\n4\n" in
  let m = Netlist.Aiger.read ~name:"two-field" text in
  check int "one latch" 1 (Netlist.Model.num_latches m);
  let q = List.hd (Netlist.Model.state_vars m) in
  check bool "reset to zero" false (Netlist.Model.init_state m q)

(* the writer is canonical: one read normalizes any model, after which
   write∘read is the identity on documents — so textual equality is
   structural equality, the property the fuzzer's round-trip oracle
   relies on (Fuzz.Oracle.check_roundtrip) *)
let test_aiger_ascii_write_read_fixpoint () =
  for seed = 0 to 49 do
    let m = Fuzz.Gen.model ~seed () in
    let t1 = Netlist.Aiger.write m in
    let m1 = Netlist.Aiger.read ~name:(Netlist.Model.name m) t1 in
    check bool
      (Printf.sprintf "seed %d ascii fixpoint" seed)
      true
      (Netlist.Aiger.write m1 = t1)
  done

let test_aiger_binary_write_read_fixpoint () =
  for seed = 0 to 49 do
    let m = Fuzz.Gen.model ~seed () in
    let t1 = Netlist.Aiger.write_binary m in
    let m1 = Netlist.Aiger.read_binary ~name:(Netlist.Model.name m) t1 in
    check bool
      (Printf.sprintf "seed %d binary fixpoint" seed)
      true
      (Netlist.Aiger.write_binary m1 = t1)
  done

(* degenerate shapes that historically stressed the parser: constant and
   self-loop next functions, complemented latch feeds, constant
   properties, input-free models *)
let edge_models () =
  let constant_next () =
    let b = Netlist.Builder.create "constant-next" in
    let q = Netlist.Builder.latch b ~init:false in
    Netlist.Builder.connect b q Aig.true_;
    Netlist.Builder.set_property b (Aig.not_ q);
    Netlist.Builder.finish b
  in
  let self_loop () =
    let b = Netlist.Builder.create "self-loop" in
    let q = Netlist.Builder.latch b ~init:true in
    Netlist.Builder.connect b q (Aig.not_ q);
    Netlist.Builder.set_property b q;
    Netlist.Builder.finish b
  in
  let constant_property () =
    let b = Netlist.Builder.create "constant-property" in
    let aig = Netlist.Builder.aig b in
    let x = Netlist.Builder.input b in
    let q = Netlist.Builder.latch b ~init:false in
    Netlist.Builder.connect b q (Aig.and_ aig x q);
    Netlist.Builder.set_property b Aig.true_;
    Netlist.Builder.finish b
  in
  let no_inputs () =
    let b = Netlist.Builder.create "no-inputs" in
    let aig = Netlist.Builder.aig b in
    let q1 = Netlist.Builder.latch b ~init:false in
    let q2 = Netlist.Builder.latch b ~init:true in
    Netlist.Builder.connect b q1 q2;
    Netlist.Builder.connect b q2 (Aig.not_ q1);
    Netlist.Builder.set_property b (Aig.or_ aig q1 q2);
    Netlist.Builder.finish b
  in
  [ constant_next (); self_loop (); constant_property (); no_inputs () ]

let test_aiger_roundtrip_edge_models () =
  List.iter
    (fun m ->
      let name = Netlist.Model.name m in
      let t1 = Netlist.Aiger.write m in
      let m1 = Netlist.Aiger.read ~name t1 in
      check bool (name ^ " ascii fixpoint") true (Netlist.Aiger.write m1 = t1);
      check bool (name ^ " behaviour preserved") true (models_equivalent m m1);
      let b1 = Netlist.Aiger.write_binary m in
      let m2 = Netlist.Aiger.read_binary ~name b1 in
      check bool (name ^ " binary fixpoint") true (Netlist.Aiger.write_binary m2 = b1))
    (edge_models ())

let test_aiger_binary_roundtrip () =
  List.iter
    (fun (mk : unit -> Netlist.Model.t) ->
      let m = mk () in
      let m' = Netlist.Aiger.read_binary ~name:"reread" (Netlist.Aiger.write_binary m) in
      check bool (Netlist.Model.name m ^ " binary roundtrip") true (models_equivalent m m'))
    [
      (fun () -> Circuits.Families.counter ~bits:3);
      (fun () -> Circuits.Families.gray_counter ~bits:3);
      (fun () -> Circuits.Families.fifo ~buggy:true ~depth_log:2 ());
      (fun () -> Circuits.Families.peterson ());
      (fun () -> Circuits.Families.tmr ~bits:3);
    ]

let test_aiger_binary_cross_format () =
  (* ascii and binary renderings of the same model read back equivalent *)
  let m = Circuits.Families.rr_arbiter ~n:3 in
  let ascii = Netlist.Aiger.read ~name:"a" (Netlist.Aiger.write m) in
  let binary = Netlist.Aiger.read_binary ~name:"b" (Netlist.Aiger.write_binary m) in
  check bool "formats agree" true (models_equivalent ascii binary)

let test_aiger_binary_smaller () =
  let m = Circuits.Families.tmr ~bits:4 in
  check bool "binary encoding is more compact" true
    (String.length (Netlist.Aiger.write_binary m) < String.length (Netlist.Aiger.write m))

let test_aiger_read_dispatch () =
  let m = Circuits.Families.counter ~bits:3 in
  let path_bin = Filename.temp_file "cbq_test" ".aig" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path_bin)
    (fun () ->
      Netlist.Aiger.write_binary_file m path_bin;
      let m' = Netlist.Aiger.read_file path_bin in
      check bool "read_file dispatches on the binary magic" true (models_equivalent m m'));
  (* the ascii entry point rejects binary input *)
  try
    ignore (Netlist.Aiger.read ~name:"x" (Netlist.Aiger.write_binary m));
    Alcotest.fail "expected rejection"
  with Netlist.Aiger.Parse_error _ -> ()

let test_aiger_file_io () =
  let m = toggle_model () in
  let path = Filename.temp_file "cbq_test" ".aag" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Netlist.Aiger.write_file m path;
      let m' = Netlist.Aiger.read_file path in
      check bool "file roundtrip" true (models_equivalent m m'))

let () =
  Alcotest.run "netlist"
    [
      ( "builder",
        [
          Alcotest.test_case "basic model" `Quick test_builder_basic;
          Alcotest.test_case "error cases" `Quick test_builder_errors;
          Alcotest.test_case "undeclared variable" `Quick test_validate_undeclared;
        ] );
      ( "model",
        [
          Alcotest.test_case "eval_step" `Quick test_eval_step;
          Alcotest.test_case "init_lit" `Quick test_init_lit;
          Alcotest.test_case "property_holds" `Quick test_property_holds;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "aiger",
        [
          Alcotest.test_case "roundtrip toggle" `Quick test_aiger_roundtrip_toggle;
          Alcotest.test_case "roundtrip families" `Quick test_aiger_roundtrip_families;
          Alcotest.test_case "format shape" `Quick test_aiger_format_shape;
          Alcotest.test_case "parse errors" `Quick test_aiger_errors;
          Alcotest.test_case "parse error details" `Quick test_aiger_parse_error_details;
          Alcotest.test_case "two-field latches" `Quick test_aiger_two_field_latches;
          Alcotest.test_case "file io" `Quick test_aiger_file_io;
          Alcotest.test_case "ascii write∘read fixpoint" `Quick
            test_aiger_ascii_write_read_fixpoint;
          Alcotest.test_case "binary write∘read fixpoint" `Quick
            test_aiger_binary_write_read_fixpoint;
          Alcotest.test_case "edge-model roundtrips" `Quick test_aiger_roundtrip_edge_models;
          Alcotest.test_case "binary roundtrip" `Quick test_aiger_binary_roundtrip;
          Alcotest.test_case "binary/ascii agreement" `Quick test_aiger_binary_cross_format;
          Alcotest.test_case "binary is compact" `Quick test_aiger_binary_smaller;
          Alcotest.test_case "read_file dispatch" `Quick test_aiger_read_dispatch;
        ] );
    ]
