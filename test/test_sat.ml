(* CDCL solver tests: semantics against brute-force enumeration, classic
   hard instances, assumptions, incrementality, budgets, model validity. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let lp = Sat.Lit.pos
let ln = Sat.Lit.neg_of

let result_t =
  Alcotest.testable
    (fun ppf -> function
      | Sat.Solver.Sat -> Format.pp_print_string ppf "Sat"
      | Sat.Solver.Unsat -> Format.pp_print_string ppf "Unsat"
      | Sat.Solver.Unknown -> Format.pp_print_string ppf "Unknown")
    ( = )

let fresh n =
  let s = Sat.Solver.create () in
  (s, Array.init n (fun _ -> Sat.Solver.new_var s))

(* ---------- literals ---------- *)

let test_lit_encoding () =
  check int "pos var" 3 (Sat.Lit.var (Sat.Lit.pos 3));
  check int "neg var" 3 (Sat.Lit.var (Sat.Lit.neg_of 3));
  check bool "pos sign" false (Sat.Lit.sign (Sat.Lit.pos 3));
  check bool "neg sign" true (Sat.Lit.sign (Sat.Lit.neg_of 3));
  check int "double negation" (Sat.Lit.pos 5) (Sat.Lit.neg (Sat.Lit.neg (Sat.Lit.pos 5)));
  check int "make negated" (Sat.Lit.neg_of 7) (Sat.Lit.make 7 true)

(* ---------- basic solving ---------- *)

let test_trivial () =
  let s, v = fresh 1 in
  check result_t "empty db is sat" Sat.Solver.Sat (Sat.Solver.solve s);
  ignore (Sat.Solver.add_clause s [ lp v.(0) ]);
  check result_t "unit sat" Sat.Solver.Sat (Sat.Solver.solve s);
  check (Alcotest.option bool) "model respects unit" (Some true) (Sat.Solver.value s v.(0));
  check bool "add conflicting unit fails" false (Sat.Solver.add_clause s [ ln v.(0) ]);
  check bool "solver flagged not ok" false (Sat.Solver.ok s);
  check result_t "stays unsat" Sat.Solver.Unsat (Sat.Solver.solve s)

let test_tautology_and_duplicates () =
  let s, v = fresh 2 in
  check bool "tautology accepted" true (Sat.Solver.add_clause s [ lp v.(0); ln v.(0) ]);
  check bool "duplicates collapse" true (Sat.Solver.add_clause s [ lp v.(1); lp v.(1) ]);
  check result_t "sat" Sat.Solver.Sat (Sat.Solver.solve s);
  check (Alcotest.option bool) "unit-from-duplicates" (Some true) (Sat.Solver.value s v.(1))

let test_empty_clause () =
  let s, _ = fresh 1 in
  check bool "empty clause rejected" false (Sat.Solver.add_clause s []);
  check result_t "unsat" Sat.Solver.Unsat (Sat.Solver.solve s)

let test_propagation_chain () =
  let s, v = fresh 6 in
  (* implication chain v0 -> v1 -> ... -> v5 with v0 forced *)
  for i = 0 to 4 do
    ignore (Sat.Solver.add_clause s [ ln v.(i); lp v.(i + 1) ])
  done;
  ignore (Sat.Solver.add_clause s [ lp v.(0) ]);
  check result_t "sat" Sat.Solver.Sat (Sat.Solver.solve s);
  for i = 0 to 5 do
    check (Alcotest.option bool) (Printf.sprintf "v%d forced" i) (Some true)
      (Sat.Solver.value s v.(i))
  done

(* ---------- assumptions and incrementality ---------- *)

let test_assumptions () =
  let s, v = fresh 3 in
  ignore (Sat.Solver.add_clause s [ lp v.(0); lp v.(1) ]);
  ignore (Sat.Solver.add_clause s [ ln v.(0); lp v.(2) ]);
  check result_t "sat under ~v1" Sat.Solver.Sat (Sat.Solver.solve ~assumptions:[ ln v.(1) ] s);
  check (Alcotest.option bool) "v0 forced by assumption" (Some true) (Sat.Solver.value s v.(0));
  check (Alcotest.option bool) "v2 propagated" (Some true) (Sat.Solver.value s v.(2));
  check result_t "unsat under contradictory assumptions" Sat.Solver.Unsat
    (Sat.Solver.solve ~assumptions:[ ln v.(1); ln v.(0) ] s);
  check result_t "recovers without assumptions" Sat.Solver.Sat (Sat.Solver.solve s);
  check result_t "directly conflicting assumptions" Sat.Solver.Unsat
    (Sat.Solver.solve ~assumptions:[ lp v.(0); ln v.(0) ] s)

let test_incremental_strengthening () =
  let s, v = fresh 4 in
  ignore (Sat.Solver.add_clause s [ lp v.(0); lp v.(1); lp v.(2); lp v.(3) ]);
  check result_t "sat" Sat.Solver.Sat (Sat.Solver.solve s);
  ignore (Sat.Solver.add_clause s [ ln v.(0) ]);
  ignore (Sat.Solver.add_clause s [ ln v.(1) ]);
  check result_t "still sat" Sat.Solver.Sat (Sat.Solver.solve s);
  ignore (Sat.Solver.add_clause s [ ln v.(2) ]);
  ignore (Sat.Solver.add_clause s [ ln v.(3) ]);
  check result_t "now unsat" Sat.Solver.Unsat (Sat.Solver.solve s)

let test_activation_literals () =
  (* the pattern the equivalence checker uses: permanent clauses guarded by
     per-query selector variables that are assumed, never asserted *)
  let s, v = fresh 2 in
  let sel_a = Sat.Solver.new_var s and sel_b = Sat.Solver.new_var s in
  (* sel_a => (v0), sel_b => (~v0) *)
  ignore (Sat.Solver.add_clause s [ ln sel_a; lp v.(0) ]);
  ignore (Sat.Solver.add_clause s [ ln sel_b; ln v.(0) ]);
  check result_t "query a" Sat.Solver.Sat (Sat.Solver.solve ~assumptions:[ lp sel_a ] s);
  check (Alcotest.option bool) "a forces v0" (Some true) (Sat.Solver.value s v.(0));
  check result_t "query b" Sat.Solver.Sat (Sat.Solver.solve ~assumptions:[ lp sel_b ] s);
  check (Alcotest.option bool) "b forces ~v0" (Some false) (Sat.Solver.value s v.(0));
  check result_t "both clash" Sat.Solver.Unsat
    (Sat.Solver.solve ~assumptions:[ lp sel_a; lp sel_b ] s);
  ignore v.(1)

(* ---------- classic hard instances ---------- *)

let php holes =
  let s = Sat.Solver.create () in
  let pigeons = holes + 1 in
  let x = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    ignore (Sat.Solver.add_clause s (Array.to_list (Array.map lp x.(p))))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        ignore (Sat.Solver.add_clause s [ ln x.(p1).(h); ln x.(p2).(h) ])
      done
    done
  done;
  s

let test_pigeonhole () =
  check result_t "php 4->3" Sat.Solver.Unsat (Sat.Solver.solve (php 3));
  check result_t "php 6->5" Sat.Solver.Unsat (Sat.Solver.solve (php 5));
  check result_t "php 8->7" Sat.Solver.Unsat (Sat.Solver.solve (php 7))

let test_graph_coloring () =
  (* C5 (odd cycle) is 3-colorable but not 2-colorable *)
  let coloring colors =
    let s = Sat.Solver.create () in
    let n = 5 in
    let x = Array.init n (fun _ -> Array.init colors (fun _ -> Sat.Solver.new_var s)) in
    for v = 0 to n - 1 do
      ignore (Sat.Solver.add_clause s (Array.to_list (Array.map lp x.(v))));
      for c1 = 0 to colors - 1 do
        for c2 = c1 + 1 to colors - 1 do
          ignore (Sat.Solver.add_clause s [ ln x.(v).(c1); ln x.(v).(c2) ])
        done
      done
    done;
    for v = 0 to n - 1 do
      let w = (v + 1) mod n in
      for c = 0 to colors - 1 do
        ignore (Sat.Solver.add_clause s [ ln x.(v).(c); ln x.(w).(c) ])
      done
    done;
    Sat.Solver.solve s
  in
  check result_t "C5 2-coloring" Sat.Solver.Unsat (coloring 2);
  check result_t "C5 3-coloring" Sat.Solver.Sat (coloring 3)

let test_parity_chain () =
  (* x0 ^ x1 ^ ... ^ x(n-1) = 1 encoded with chain variables; sat, and the
     model must have odd parity *)
  let s = Sat.Solver.create () in
  let n = 16 in
  let x = Array.init n (fun _ -> Sat.Solver.new_var s) in
  let chain = Array.init n (fun _ -> Sat.Solver.new_var s) in
  (* chain0 = x0 *)
  ignore (Sat.Solver.add_clause s [ ln chain.(0); lp x.(0) ]);
  ignore (Sat.Solver.add_clause s [ lp chain.(0); ln x.(0) ]);
  for i = 1 to n - 1 do
    (* chain_i = chain_{i-1} xor x_i : four clauses *)
    ignore (Sat.Solver.add_clause s [ ln chain.(i); lp chain.(i - 1); lp x.(i) ]);
    ignore (Sat.Solver.add_clause s [ ln chain.(i); ln chain.(i - 1); ln x.(i) ]);
    ignore (Sat.Solver.add_clause s [ lp chain.(i); ln chain.(i - 1); lp x.(i) ]);
    ignore (Sat.Solver.add_clause s [ lp chain.(i); lp chain.(i - 1); ln x.(i) ])
  done;
  ignore (Sat.Solver.add_clause s [ lp chain.(n - 1) ]);
  check result_t "parity constraint sat" Sat.Solver.Sat (Sat.Solver.solve s);
  let parity =
    Array.fold_left
      (fun acc v -> acc <> (Sat.Solver.value s v = Some true))
      false x
  in
  check bool "model has odd parity" true parity

(* ---------- budget ---------- *)

let test_conflict_limit () =
  let s = php 8 in
  check result_t "tiny budget gives unknown" Sat.Solver.Unknown
    (Sat.Solver.solve ~conflict_limit:5 s);
  (* solver remains usable and can finish with a real budget *)
  check result_t "full solve still works" Sat.Solver.Unsat (Sat.Solver.solve s)

(* ---------- brute-force cross-check ---------- *)

let brute_force nvars clauses =
  let satisfies mask =
    List.for_all
      (fun clause ->
        List.exists
          (fun l ->
            let v = Sat.Lit.var l in
            let value = (mask lsr v) land 1 = 1 in
            if Sat.Lit.sign l then not value else value)
          clause)
      clauses
  in
  let rec go mask = mask < 1 lsl nvars && (satisfies mask || go (mask + 1)) in
  go 0

let clause_gen nvars =
  QCheck.Gen.(
    list_size (int_range 1 4)
      (map2 (fun v s -> Sat.Lit.make v s) (int_bound (nvars - 1)) bool))

let cnf_gen nvars = QCheck.Gen.(list_size (int_range 1 30) (clause_gen nvars))

let qc_cnf nvars =
  QCheck.make
    ~print:(fun cnf ->
      String.concat " "
        (List.map
           (fun c -> "(" ^ String.concat "|" (List.map (Format.asprintf "%a" Sat.Lit.pp) c) ^ ")")
           cnf))
    (cnf_gen nvars)

let solver_matches_brute_force =
  let nvars = 8 in
  QCheck.Test.make ~name:"solver agrees with enumeration" ~count:300 (qc_cnf nvars)
    (fun cnf ->
      let s = Sat.Solver.create () in
      for _ = 1 to nvars do
        ignore (Sat.Solver.new_var s)
      done;
      let ok = List.for_all (fun c -> Sat.Solver.add_clause s c) cnf in
      let expected = brute_force nvars cnf in
      if not ok then not expected
      else
        match Sat.Solver.solve s with
        | Sat.Solver.Sat -> expected
        | Sat.Solver.Unsat -> not expected
        | Sat.Solver.Unknown -> false)

let model_satisfies_all_clauses =
  let nvars = 8 in
  QCheck.Test.make ~name:"returned models satisfy every clause" ~count:300 (qc_cnf nvars)
    (fun cnf ->
      let s = Sat.Solver.create () in
      for _ = 1 to nvars do
        ignore (Sat.Solver.new_var s)
      done;
      let ok = List.for_all (fun c -> Sat.Solver.add_clause s c) cnf in
      (not ok)
      ||
      match Sat.Solver.solve s with
      | Sat.Solver.Sat ->
        List.for_all (fun c -> List.exists (fun l -> Sat.Solver.lit_true s l) c) cnf
      | Sat.Solver.Unsat | Sat.Solver.Unknown -> true)

let assumptions_match_added_units =
  let nvars = 6 in
  QCheck.Test.make ~name:"solving under assumptions = solving with units" ~count:200
    (QCheck.pair (qc_cnf nvars) (QCheck.list_of_size (QCheck.Gen.int_range 1 3)
       (QCheck.map (fun (v, s) -> Sat.Lit.make v s) (QCheck.pair (QCheck.int_bound (nvars - 1)) QCheck.bool))))
    (fun (cnf, assumptions) ->
      let mk () =
        let s = Sat.Solver.create () in
        for _ = 1 to nvars do
          ignore (Sat.Solver.new_var s)
        done;
        let ok = List.for_all (fun c -> Sat.Solver.add_clause s c) cnf in
        (s, ok)
      in
      let s1, ok1 = mk () in
      let r1 = if ok1 then Sat.Solver.solve ~assumptions s1 else Sat.Solver.Unsat in
      let s2, ok2 = mk () in
      let ok2 = ok2 && List.for_all (fun l -> Sat.Solver.add_clause s2 [ l ]) assumptions in
      let r2 = if ok2 then Sat.Solver.solve s2 else Sat.Solver.Unsat in
      r1 = r2)

(* mutating one clause of an UNSAT instance back towards SAT must never
   confuse the solver: solve / add / solve sequences equal from-scratch *)
let incremental_equals_fresh =
  let nvars = 7 in
  QCheck.Test.make ~name:"incremental solves = from-scratch solves" ~count:150
    (QCheck.pair (qc_cnf nvars) (qc_cnf nvars))
    (fun (cnf1, cnf2) ->
      (* incremental: load cnf1, solve, add cnf2, solve *)
      let s = Sat.Solver.create () in
      for _ = 1 to nvars do
        ignore (Sat.Solver.new_var s)
      done;
      let ok1 = List.for_all (fun c -> Sat.Solver.add_clause s c) cnf1 in
      let r1 = if ok1 then Sat.Solver.solve s else Sat.Solver.Unsat in
      let ok2 = ok1 && List.for_all (fun c -> Sat.Solver.add_clause s c) cnf2 in
      let r2 = if ok2 then Sat.Solver.solve s else Sat.Solver.Unsat in
      (* fresh solvers for both stages *)
      let fresh cnf =
        let s = Sat.Solver.create () in
        for _ = 1 to nvars do
          ignore (Sat.Solver.new_var s)
        done;
        if List.for_all (fun c -> Sat.Solver.add_clause s c) cnf then Sat.Solver.solve s
        else Sat.Solver.Unsat
      in
      r1 = fresh cnf1 && r2 = fresh (cnf1 @ cnf2))

let failed_assumptions_are_sound =
  let nvars = 6 in
  let lit_gen =
    QCheck.map (fun (v, s) -> Sat.Lit.make v s) (QCheck.pair (QCheck.int_bound (nvars - 1)) QCheck.bool)
  in
  QCheck.Test.make ~name:"assumption cores are unsat subsets" ~count:200
    (QCheck.pair (qc_cnf nvars) (QCheck.list_of_size (QCheck.Gen.int_range 1 5) lit_gen))
    (fun (cnf, assumptions) ->
      let s = Sat.Solver.create () in
      for _ = 1 to nvars do
        ignore (Sat.Solver.new_var s)
      done;
      let ok = List.for_all (fun c -> Sat.Solver.add_clause s c) cnf in
      (not ok)
      ||
      match Sat.Solver.solve ~assumptions s with
      | Sat.Solver.Sat | Sat.Solver.Unknown -> true
      | Sat.Solver.Unsat ->
        let core = Sat.Solver.failed_assumptions s in
        (* subset of the assumptions (modulo duplicates) *)
        List.for_all (fun l -> List.mem l assumptions) core
        (* and itself sufficient for unsatisfiability *)
        && Sat.Solver.solve ~assumptions:core s = Sat.Solver.Unsat)

let dimacs_roundtrip_random =
  let nvars = 6 in
  QCheck.Test.make ~name:"dimacs render/parse roundtrip (random problems)" ~count:200
    (qc_cnf nvars) (fun cnf ->
      let p = { Sat.Dimacs.num_vars = nvars; clauses = cnf } in
      match Sat.Dimacs.parse (Sat.Dimacs.render p) with
      | Ok p' -> p'.Sat.Dimacs.clauses = cnf && p'.Sat.Dimacs.num_vars = nvars
      | Error _ -> false)

let test_xor_system () =
  (* a solvable linear system over GF(2): x0^x1 = 1, x1^x2 = 0, x0^x2 = 1 *)
  let s = Sat.Solver.create () in
  let v = Array.init 3 (fun _ -> Sat.Solver.new_var s) in
  let xor_clause a b rhs =
    (* a ^ b = rhs as two/two clauses *)
    if rhs then begin
      ignore (Sat.Solver.add_clause s [ lp a; lp b ]);
      ignore (Sat.Solver.add_clause s [ ln a; ln b ])
    end
    else begin
      ignore (Sat.Solver.add_clause s [ lp a; ln b ]);
      ignore (Sat.Solver.add_clause s [ ln a; lp b ])
    end
  in
  xor_clause v.(0) v.(1) true;
  xor_clause v.(1) v.(2) false;
  xor_clause v.(0) v.(2) true;
  check result_t "consistent system" Sat.Solver.Sat (Sat.Solver.solve s);
  (* adding the parity-violating equation makes it unsat *)
  let s2 = Sat.Solver.create () in
  let w = Array.init 3 (fun _ -> Sat.Solver.new_var s2) in
  let xor_clause2 a b rhs =
    if rhs then begin
      ignore (Sat.Solver.add_clause s2 [ lp a; lp b ]);
      ignore (Sat.Solver.add_clause s2 [ ln a; ln b ])
    end
    else begin
      ignore (Sat.Solver.add_clause s2 [ lp a; ln b ]);
      ignore (Sat.Solver.add_clause s2 [ ln a; lp b ])
    end
  in
  xor_clause2 w.(0) w.(1) true;
  xor_clause2 w.(1) w.(2) true;
  xor_clause2 w.(0) w.(2) true;
  check result_t "odd cycle of xors" Sat.Solver.Unsat (Sat.Solver.solve s2)

let test_stats_progress () =
  let s = php 6 in
  let before = Sat.Solver.stats s in
  check int "no conflicts yet" 0 before.Sat.Solver.conflicts;
  ignore (Sat.Solver.solve s);
  let after = Sat.Solver.stats s in
  check bool "conflicts counted" true (after.Sat.Solver.conflicts > 0);
  check bool "decisions counted" true (after.Sat.Solver.decisions > 0);
  check bool "propagations counted" true (after.Sat.Solver.propagations > 0)

let test_many_vars () =
  let s = Sat.Solver.create () in
  let n = 2000 in
  let v = Array.init n (fun _ -> Sat.Solver.new_var s) in
  for i = 0 to n - 2 do
    ignore (Sat.Solver.add_clause s [ ln v.(i); lp v.(i + 1) ])
  done;
  ignore (Sat.Solver.add_clause s [ lp v.(0) ]);
  check result_t "long chain sat" Sat.Solver.Sat (Sat.Solver.solve s);
  check (Alcotest.option bool) "last var forced" (Some true) (Sat.Solver.value s v.(n - 1))

(* ---------- DIMACS hardening and DIMACS-driven solver tests ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_dimacs_parse_errors () =
  (match Sat.Dimacs.parse_exn "p cnf x 2\n1 0\n" with
  | _ -> Alcotest.fail "malformed header accepted"
  | exception Sat.Dimacs.Parse_error { line; token; reason } ->
    check int "header: line" 1 line;
    check Alcotest.string "header: token" "p cnf x 2" token;
    check bool "header: reason mentions counts" true (contains reason "counts"));
  (match Sat.Dimacs.parse_exn "p cnf 2 1\n1 two 0\n" with
  | _ -> Alcotest.fail "non-integer literal accepted"
  | exception Sat.Dimacs.Parse_error { line; token; reason } ->
    check int "literal: line" 2 line;
    check Alcotest.string "literal: token" "two" token;
    check Alcotest.string "literal: reason" "literal is not an integer" reason);
  (match Sat.Dimacs.parse_exn "p cnf 2 1\np cnf 2 1\n1 0\n" with
  | _ -> Alcotest.fail "duplicate problem line accepted"
  | exception Sat.Dimacs.Parse_error { line; reason; _ } ->
    check int "duplicate p: line" 2 line;
    check Alcotest.string "duplicate p: reason" "duplicate problem line" reason);
  (match Sat.Dimacs.parse_exn "p cnf 3 1\n1 2\n3 " with
  | _ -> Alcotest.fail "unterminated clause accepted"
  | exception Sat.Dimacs.Parse_error { line; token; _ } ->
    check int "trailing: line points at clause start" 2 line;
    check Alcotest.string "trailing: no single token at fault" "" token);
  (* the structured error goes through the registered Printexc printer *)
  (match Sat.Dimacs.parse_exn "p cnf -1 0\n" with
  | _ -> Alcotest.fail "negative var count accepted"
  | exception e ->
    let s = Printexc.to_string e in
    check bool "printer names the exception" true (contains s "Dimacs.Parse_error");
    check bool "printer names the line" true (contains s "line 1"));
  (* parse folds the same diagnostics into a string *)
  match Sat.Dimacs.parse "p cnf 2 1\n1 two 0\n" with
  | Ok _ -> Alcotest.fail "parse accepted malformed input"
  | Error msg ->
    check bool "Error carries line" true (contains msg "line 2");
    check bool "Error carries token" true (contains msg "\"two\"")

let load_dimacs text =
  let p = Sat.Dimacs.parse_exn text in
  let s = Sat.Solver.create () in
  let ok = Sat.Dimacs.load s p in
  (s, ok)

let test_dimacs_incremental () =
  let s, ok = load_dimacs "p cnf 4 2\n1 2 3 4 0\n-1 -2 0\n" in
  check bool "load ok" true ok;
  check result_t "initial sat" Sat.Solver.Sat (Sat.Solver.solve s);
  (* strengthen between solve calls: forbid the low half... *)
  ignore (Sat.Solver.add_clause s [ ln 0 ]);
  ignore (Sat.Solver.add_clause s [ ln 1 ]);
  check result_t "still sat" Sat.Solver.Sat (Sat.Solver.solve s);
  (* ...then everything *)
  ignore (Sat.Solver.add_clause s [ ln 2 ]);
  ignore (Sat.Solver.add_clause s [ ln 3 ]);
  check result_t "strengthened to unsat" Sat.Solver.Unsat (Sat.Solver.solve s);
  check bool "database itself unsat" false (Sat.Solver.ok s)

let test_dimacs_assumption_core () =
  (* (¬1 ∨ ¬2): assuming 1, 2 and 4 together is inconsistent, but 4 is
     irrelevant — the reported core must already be inconsistent alone *)
  let s, ok = load_dimacs "p cnf 4 1\n-1 -2 0\n" in
  check bool "load ok" true ok;
  let a = [ lp 0; lp 1; lp 3 ] in
  check result_t "unsat under assumptions" Sat.Solver.Unsat (Sat.Solver.solve ~assumptions:a s);
  let core = Sat.Solver.failed_assumptions s in
  check bool "core non-empty" true (core <> []);
  List.iter
    (fun l -> check bool "core literal was assumed" true (List.mem l a))
    core;
  check result_t "core alone is already unsat" Sat.Solver.Unsat
    (Sat.Solver.solve ~assumptions:core s);
  check result_t "without assumptions the db is sat" Sat.Solver.Sat (Sat.Solver.solve s)

let php_dimacs holes =
  let pigeons = holes + 1 in
  let var p h = (p * holes) + h + 1 in
  let clauses = ref [] in
  for p = 0 to pigeons - 1 do
    clauses := List.init holes (fun h -> var p h) :: !clauses
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        clauses := [ -var p1 h; -var p2 h ] :: !clauses
      done
    done
  done;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (pigeons * holes) (List.length !clauses));
  List.iter
    (fun c ->
      List.iter (fun d -> Buffer.add_string buf (string_of_int d ^ " ")) c;
      Buffer.add_string buf "0\n")
    !clauses;
  Buffer.contents buf

let test_dimacs_conflict_limit () =
  let text = php_dimacs 8 in
  (* render/parse roundtrip preserves the problem *)
  let p = Sat.Dimacs.parse_exn text in
  let p' = Sat.Dimacs.parse_exn (Sat.Dimacs.render p) in
  check int "roundtrip vars" p.Sat.Dimacs.num_vars p'.Sat.Dimacs.num_vars;
  check int "roundtrip clauses" (List.length p.Sat.Dimacs.clauses)
    (List.length p'.Sat.Dimacs.clauses);
  let s = Sat.Solver.create () in
  check bool "load ok" true (Sat.Dimacs.load s p');
  check result_t "tiny budget gives Unknown" Sat.Solver.Unknown
    (Sat.Solver.solve ~conflict_limit:5 s);
  check result_t "unbudgeted finishes the proof" Sat.Solver.Unsat (Sat.Solver.solve s)

(* ---------- arena-GC stress: forced DB reductions preserve verdicts ---------- *)

let test_gc_stress () =
  let vars = 60 in
  let prng = Util.Prng.create 0xdecaf in
  let rand_lit () = Sat.Lit.make (Util.Prng.int prng vars) (Util.Prng.bool prng) in
  let clauses = List.init 250 (fun _ -> List.init 3 (fun _ -> rand_lit ())) in
  let queries = List.init 40 (fun _ -> List.init 3 (fun _ -> rand_lit ())) in
  let stressed = Sat.Solver.create () in
  for _ = 1 to vars do
    ignore (Sat.Solver.new_var stressed)
  done;
  List.iter (fun c -> ignore (Sat.Solver.add_clause stressed c)) clauses;
  (* a budget this small forces a learnt-DB reduction every few conflicts,
     which in turn piles up arena waste and triggers compaction *)
  Sat.Solver.set_learnt_budget stressed 8;
  List.iteri
    (fun q assumptions ->
      let got = Sat.Solver.solve ~assumptions stressed in
      if q mod 5 = 4 then ignore (Sat.Solver.simplify stressed);
      let reference = Sat.Solver.create () in
      for _ = 1 to vars do
        ignore (Sat.Solver.new_var reference)
      done;
      List.iter (fun c -> ignore (Sat.Solver.add_clause reference c)) clauses;
      check result_t
        (Printf.sprintf "query %d agrees with fresh solver" q)
        (Sat.Solver.solve ~assumptions reference)
        got)
    queries;
  let st = Sat.Solver.stats stressed in
  check bool "reductions were actually forced" true (st.Sat.Solver.db_reductions > 0)

let () =
  Alcotest.run "sat"
    [
      ("literals", [ Alcotest.test_case "encoding" `Quick test_lit_encoding ]);
      ( "basics",
        [
          Alcotest.test_case "trivial and units" `Quick test_trivial;
          Alcotest.test_case "tautology/duplicates" `Quick test_tautology_and_duplicates;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "propagation chain" `Quick test_propagation_chain;
          Alcotest.test_case "2000-var chain" `Quick test_many_vars;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "clause strengthening" `Quick test_incremental_strengthening;
          Alcotest.test_case "activation literals" `Quick test_activation_literals;
        ] );
      ( "hard instances",
        [
          Alcotest.test_case "pigeonhole" `Slow test_pigeonhole;
          Alcotest.test_case "graph coloring" `Quick test_graph_coloring;
          Alcotest.test_case "parity chain" `Quick test_parity_chain;
        ] );
      ( "budget",
        [
          Alcotest.test_case "conflict limit" `Quick test_conflict_limit;
          Alcotest.test_case "stats progress" `Quick test_stats_progress;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "structured parse errors" `Quick test_dimacs_parse_errors;
          Alcotest.test_case "incremental add-between-solves" `Quick test_dimacs_incremental;
          Alcotest.test_case "assumption core" `Quick test_dimacs_assumption_core;
          Alcotest.test_case "conflict-limit Unknown" `Quick test_dimacs_conflict_limit;
        ] );
      ( "stress",
        [ Alcotest.test_case "arena GC preserves verdicts" `Quick test_gc_stress ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest solver_matches_brute_force;
          QCheck_alcotest.to_alcotest model_satisfies_all_clauses;
          QCheck_alcotest.to_alcotest assumptions_match_added_units;
          QCheck_alcotest.to_alcotest incremental_equals_fresh;
          QCheck_alcotest.to_alcotest failed_assumptions_are_sound;
          QCheck_alcotest.to_alcotest dimacs_roundtrip_random;
        ] );
      ("encodings", [ Alcotest.test_case "xor systems" `Quick test_xor_system ]);
    ]
