(* Telemetry layer: counter/span/histogram semantics, the JSON
   round-trip, the documented report schema, and an end-to-end check that
   a real traversal fills the merge-provenance counters. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* Every test toggles the global registry; reset on entry so ordering
   does not matter, and disable on exit so later suites run on the
   uninstrumented fast path. *)
let with_obs enabled f =
  Obs.reset ();
  Obs.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false; Obs.reset ()) f

(* ---------- counters ---------- *)

let test_counter_disabled () =
  with_obs false @@ fun () ->
  let c = Obs.counter "test.counter_disabled" in
  Obs.incr c;
  Obs.add c 41;
  check int "disabled counter never moves" 0 (Obs.value c)

let test_counter_enabled () =
  with_obs true @@ fun () ->
  let c = Obs.counter "test.counter_enabled" in
  Obs.incr c;
  Obs.add c 41;
  check int "incr + add" 42 (Obs.value c);
  check int "value_of finds it" 42 (Obs.value_of "test.counter_enabled");
  check int "value_of on unknown name" 0 (Obs.value_of "test.no_such_counter")

let test_counter_identity () =
  with_obs true @@ fun () ->
  (* registration is idempotent: the same name yields the same cell, so
     two modules can account into one metric without sharing handles *)
  let a = Obs.counter "test.shared" in
  let b = Obs.counter "test.shared" in
  Obs.incr a;
  Obs.incr b;
  check int "both handles hit one cell" 2 (Obs.value a)

let test_reset () =
  with_obs true @@ fun () ->
  let c = Obs.counter "test.reset" in
  Obs.add c 7;
  Obs.reset ();
  check int "reset zeroes" 0 (Obs.value c);
  Obs.set_enabled true;
  Obs.incr c;
  check int "handle survives reset" 1 (Obs.value c)

(* ---------- spans ---------- *)

let test_span () =
  with_obs true @@ fun () ->
  let s = Obs.span "test.span" in
  let r = Obs.with_span s (fun () -> 17) in
  check int "with_span returns f's result" 17 r;
  Obs.add_seconds s 0.5;
  check int "two recordings" 2 (Obs.span_count s);
  check bool "time accumulated" true (Obs.span_seconds s >= 0.5)

let test_span_exception () =
  with_obs true @@ fun () ->
  let s = Obs.span "test.span_exn" in
  (try Obs.with_span s (fun () -> failwith "boom") with Failure _ -> ());
  check int "recorded despite the raise" 1 (Obs.span_count s)

let test_span_disabled () =
  with_obs false @@ fun () ->
  let s = Obs.span "test.span_off" in
  let r = Obs.with_span s (fun () -> 3) in
  check int "still runs f" 3 r;
  check int "nothing recorded" 0 (Obs.span_count s)

(* ---------- histograms ---------- *)

let test_histogram () =
  with_obs true @@ fun () ->
  let h = Obs.histogram "test.hist" in
  List.iter (Obs.observe h) [ 0; 1; 2; 3; 4; 100; -5 ];
  check int "count" 7 (Obs.hist_count h);
  (* -5 clamps to 0 *)
  check int "sum" 110 (Obs.hist_sum h)

let test_histogram_buckets () =
  with_obs true @@ fun () ->
  let h = Obs.histogram "test.hist_buckets" in
  (* bucket 0 = {0}; bucket i = [2^(i-1), 2^i) *)
  List.iter (Obs.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
  let json = Obs.report () in
  let buckets =
    match
      Option.bind (Obs.Json.member "histograms" json) (fun hs ->
          Option.bind (Obs.Json.member "test.hist_buckets" hs) (Obs.Json.member "buckets"))
    with
    | Some (Obs.Json.List bs) ->
      List.map
        (fun b ->
          match
            (Obs.Json.member "lo" b, Obs.Json.member "hi" b, Obs.Json.member "count" b)
          with
          | Some (Obs.Json.Int lo), Some (Obs.Json.Int hi), Some (Obs.Json.Int c) ->
            (lo, hi, c)
          | _ -> Alcotest.fail "malformed bucket")
        bs
    | _ -> Alcotest.fail "missing buckets"
  in
  Alcotest.(check (list (triple int int int)))
    "power-of-two buckets"
    [ (0, 0, 1); (1, 1, 1); (2, 3, 2); (4, 7, 2); (8, 15, 1) ]
    buckets

(* ---------- JSON ---------- *)

let test_json_round_trip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("flag", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("x", Obs.Json.Float 1.5);
        ("s", Obs.Json.String "with \"quotes\", \\slashes\\ and\nnewlines\tplus \x01 control");
        ("items", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.List []; Obs.Json.Obj [] ]);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> check bool "round-trip preserves the value" true (v = v')
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)

let test_json_pretty_parses () =
  let v = Obs.Json.Obj [ ("a", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2 ]) ] in
  let pretty = Format.asprintf "%a" Obs.Json.pp v in
  match Obs.Json.of_string pretty with
  | Ok v' -> check bool "pretty output parses back" true (v = v')
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ---------- report schema ---------- *)

let test_report_schema () =
  with_obs true @@ fun () ->
  let c = Obs.counter "test.schema.counter" in
  let s = Obs.span "test.schema.span" in
  let h = Obs.histogram "test.schema.hist" in
  Obs.add c 5;
  Obs.add_seconds s 0.25;
  Obs.observe h 12;
  Obs.meta "model" "unit-test";
  let json = Obs.report () in
  (* top-level shape, as documented in docs/OBSERVABILITY.md *)
  check bool "schema_version = 2" true
    (Obs.Json.member "schema_version" json = Some (Obs.Json.Int 2));
  (match Obs.Json.member "meta" json with
  | Some m ->
    check bool "meta holds the stamped pair" true
      (Obs.Json.member "model" m = Some (Obs.Json.String "unit-test"));
    (* v2: provenance is stamped into every report *)
    check bool "ocaml_version stamped" true
      (Obs.Json.member "ocaml_version" m = Some (Obs.Json.String Sys.ocaml_version));
    check bool "word_size stamped" true
      (Obs.Json.member "word_size" m = Some (Obs.Json.String (string_of_int Sys.word_size)));
    check bool "hostname stamped" true (Obs.Json.member "hostname" m <> None)
  | None -> Alcotest.fail "missing meta");
  (* no sampler ran: the optional timeseries section is absent *)
  check bool "no timeseries without a sampler" true (Obs.Json.member "timeseries" json = None);
  (match Obs.Json.member "counters" json with
  | Some cs ->
    check bool "counter under its dotted name" true
      (Obs.Json.member "test.schema.counter" cs = Some (Obs.Json.Int 5));
    (* zero-valued counters are still reported: consumers diff runs *)
    check bool "zero counters present" true
      (Obs.Json.member "sweep.merge.sat" cs <> None)
  | None -> Alcotest.fail "missing counters");
  (match Option.bind (Obs.Json.member "spans" json) (Obs.Json.member "test.schema.span") with
  | Some sp ->
    check bool "span count" true (Obs.Json.member "count" sp = Some (Obs.Json.Int 1));
    check bool "span seconds" true
      (match Obs.Json.member "seconds" sp with
      | Some (Obs.Json.Float f) -> f = 0.25
      | _ -> false)
  | None -> Alcotest.fail "missing span entry");
  (match
     Option.bind (Obs.Json.member "histograms" json) (Obs.Json.member "test.schema.hist")
   with
  | Some hi ->
    check bool "hist sum" true (Obs.Json.member "sum" hi = Some (Obs.Json.Int 12));
    check bool "hist min" true (Obs.Json.member "min" hi = Some (Obs.Json.Int 12));
    check bool "hist max" true (Obs.Json.member "max" hi = Some (Obs.Json.Int 12))
  | None -> Alcotest.fail "missing histogram entry");
  (* the serialized report must parse back *)
  match Obs.Json.of_string (Obs.Json.to_string json) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("report does not round-trip: " ^ msg)

(* edge reports must serialize to parseable JSON and read back with the
   same metric content: empty, max_int counters, non-finite span times
   (clamped to 0.0 by the serializer — JSON has no inf/nan) *)
let test_report_edges () =
  let parse_back () =
    let json = Obs.report () in
    match Obs.Json.of_string (Obs.Json.to_string json) with
    | Ok v -> v
    | Error msg -> Alcotest.fail ("edge report does not round-trip: " ^ msg)
  in
  (* empty: no metric recorded, no metadata *)
  with_obs true (fun () ->
      let v = parse_back () in
      check bool "empty report has schema_version" true
        (Obs.Json.member "schema_version" v = Some (Obs.Json.Int 2));
      check bool "empty report has a counters object" true
        (match Obs.Json.member "counters" v with Some (Obs.Json.Obj _) -> true | _ -> false));
  (* max_int counter survives the round-trip exactly *)
  with_obs true (fun () ->
      Obs.add (Obs.counter "test.edge.maxint") max_int;
      let v = parse_back () in
      match Option.bind (Obs.Json.member "counters" v) (Obs.Json.member "test.edge.maxint") with
      | Some (Obs.Json.Int n) -> check bool "max_int exact" true (n = max_int)
      | _ -> Alcotest.fail "max_int counter missing");
  (* non-finite span seconds are clamped, not emitted as invalid JSON *)
  with_obs true (fun () ->
      let s = Obs.span "test.edge.inf" in
      Obs.add_seconds s infinity;
      Obs.add_seconds s nan;
      let v = parse_back () in
      match Option.bind (Obs.Json.member "spans" v) (Obs.Json.member "test.edge.inf") with
      | Some sp ->
        check bool "clamped to a finite float" true
          (match Obs.Json.member "seconds" sp with
          | Some (Obs.Json.Float f) -> Float.is_finite f
          | Some (Obs.Json.Int _) -> true
          | _ -> false)
      | None -> Alcotest.fail "span entry missing")

let test_write_report () =
  with_obs true @@ fun () ->
  Obs.incr (Obs.counter "test.file.counter");
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.write_report path;
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.of_string (String.trim text) with
      | Ok json ->
        check bool "file contains the report" true
          (match Obs.Json.member "counters" json with
          | Some cs -> Obs.Json.member "test.file.counter" cs = Some (Obs.Json.Int 1)
          | None -> false)
      | Error msg -> Alcotest.fail ("written report unparseable: " ^ msg))

(* ---------- integration: a real traversal fills the metrics ---------- *)

let test_traversal_provenance () =
  with_obs true @@ fun () ->
  let model = Circuits.Families.counter ~bits:4 in
  let config = { Cbq.Reachability.default with make_trace = false } in
  let r = Cbq.Reachability.run ~config model in
  (match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified _ -> ()
  | _ -> Alcotest.fail "counter ~bits:4 must be falsified");
  let nonzero name = check bool (name ^ " > 0") true (Obs.value_of name > 0) in
  (* per-frame accounting *)
  nonzero "reach.iterations";
  check int "one counted iteration per recorded one"
    (List.length r.Cbq.Reachability.iterations)
    (Obs.value_of "reach.iterations");
  (* merge provenance: structural hashing and simulation candidates always
     fire on this model; at least one proof technique must close merges *)
  nonzero "sweep.runs";
  nonzero "sweep.merge.hash";
  nonzero "sweep.merge.sim";
  check bool "some proven merges (bdd or sat)" true
    (Obs.value_of "sweep.merge.bdd" + Obs.value_of "sweep.merge.sat" > 0);
  (* quantification accounting covers every variable it saw *)
  nonzero "quantify.vars.eliminated";
  (* the factorized checker drives the solver through the wrapper *)
  nonzero "cnf.queries";
  nonzero "sat.solve_calls";
  nonzero "aig.strash_hits"

let test_bench_row_isolation () =
  (* the bench harness pattern: one telemetry window per experiment row,
     reset between rows so no counts leak from row 1 into row 2's report *)
  with_obs false @@ fun () ->
  let row bits =
    Obs.reset ();
    Obs.set_enabled true;
    let model = Circuits.Families.counter ~bits in
    let config = { Cbq.Reachability.default with make_trace = false } in
    ignore (Cbq.Reachability.run ~config model);
    Obs.set_enabled false;
    let iterations = Obs.value_of "reach.iterations" in
    let json = Obs.report () in
    Obs.reset ();
    (iterations, json)
  in
  let iters1, _ = row 4 in
  let iters2, report2 = row 3 in
  check bool "rows differ in work" true (iters1 <> iters2);
  (match Option.bind (Obs.Json.member "counters" report2) (Obs.Json.member "reach.iterations") with
  | Some (Obs.Json.Int n) -> check int "row 2's report reflects only row 2" iters2 n
  | _ -> Alcotest.fail "reach.iterations missing from the report");
  check int "registry clean after the last reset" 0 (Obs.value_of "reach.iterations")

(* the per-run watch-reset bugfix: back-to-back runs in one process must
   not report elapsed time measured from the single [start] call. Frames
   are written to a file channel (not a TTY), one line per frame, ending
   in the elapsed "%.1fs" field. *)
let test_progress_begin_run_resets_watch () =
  let path = Filename.temp_file "cbq_progress" ".log" in
  let ch = open_out path in
  Obs.Progress.start ~channel:ch ();
  Obs.Progress.frame ~index:0 ~nodes:1;
  (* burn enough wall time for the %.1f field to move *)
  let w = Util.Stopwatch.start () in
  while Util.Stopwatch.elapsed w < 0.25 do () done;
  Obs.Progress.frame ~index:1 ~nodes:1;
  Obs.Progress.begin_run ();
  (* a new run begins: its first frame must report ~0 elapsed *)
  Obs.Progress.frame ~index:0 ~nodes:1;
  Obs.Progress.finish ();
  close_out ch;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let ends_zero l = String.length l > 4 && String.sub l (String.length l - 4) 4 = "0.0s" in
  match !lines with
  | after_reset :: before_reset :: _ ->
    check bool "stale watch visible before the reset" false (ends_zero before_reset);
    check bool "fresh watch after begin_run" true (ends_zero after_reset)
  | _ -> Alcotest.fail "expected at least two progress lines"

(* TTY teardown: the in-place line must be newline-terminated when the
   run region ends — including by exception — so later output (stats
   summary, a backtrace) never lands mid-line. [~tty:true] forces the
   rewrite path even though the capture channel is a pipe/file. *)
let test_progress_tty_teardown () =
  let path = Filename.temp_file "cbq_progress_tty" ".log" in
  let ch = open_out path in
  Obs.Progress.start ~channel:ch ~tty:true ();
  (try
     Fun.protect
       ~finally:Obs.Progress.finish
       (fun () ->
         Obs.Progress.frame ~index:0 ~nodes:7;
         Obs.Progress.frame ~index:1 ~nodes:9;
         failwith "engine blew up")
   with Failure _ -> ());
  close_out ch;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check bool "frames rewrite in place" true (String.contains text '\r');
  check bool "line terminated despite the exception" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  (* disarmed: later frames are silent, a second finish is a no-op *)
  Obs.Progress.frame ~index:2 ~nodes:1;
  Obs.Progress.finish ()

let test_disabled_traversal_is_silent () =
  with_obs false @@ fun () ->
  let model = Circuits.Families.counter ~bits:3 in
  let config = { Cbq.Reachability.default with make_trace = false } in
  ignore (Cbq.Reachability.run ~config model);
  check int "no iterations counted" 0 (Obs.value_of "reach.iterations");
  check int "no sweep runs counted" 0 (Obs.value_of "sweep.runs");
  check string "summary only renders the header" "run telemetry:\n"
    (Format.asprintf "%a" Obs.pp_summary ())

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_counter_disabled;
          Alcotest.test_case "incr and add" `Quick test_counter_enabled;
          Alcotest.test_case "same name, same cell" `Quick test_counter_identity;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "spans",
        [
          Alcotest.test_case "with_span + add_seconds" `Quick test_span;
          Alcotest.test_case "records on exception" `Quick test_span_exception;
          Alcotest.test_case "disabled passthrough" `Quick test_span_disabled;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "count, sum, clamping" `Quick test_histogram;
          Alcotest.test_case "power-of-two buckets" `Quick test_histogram_buckets;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "pretty output parses" `Quick test_json_pretty_parses;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects_garbage;
        ] );
      ( "report",
        [
          Alcotest.test_case "documented schema" `Quick test_report_schema;
          Alcotest.test_case "edge reports round-trip" `Quick test_report_edges;
          Alcotest.test_case "write_report" `Quick test_write_report;
        ] );
      ( "integration",
        [
          Alcotest.test_case "traversal fills provenance counters" `Quick
            test_traversal_provenance;
          Alcotest.test_case "disabled run stays silent" `Quick
            test_disabled_traversal_is_silent;
          Alcotest.test_case "bench rows are isolated" `Quick test_bench_row_isolation;
          Alcotest.test_case "begin_run resets the progress watch" `Quick
            test_progress_begin_run_resets_watch;
          Alcotest.test_case "tty teardown survives exceptions" `Quick
            test_progress_tty_teardown;
        ] );
    ]
