(* Domain-safety stress: the registry and the resource governor under
   concurrent OCaml 5 domains.

   The acceptance bar for the concurrent registry is exactness, not
   approximate sanity: 4 domains hammering one counter with 1M [incr]
   each must read back precisely 4M — an atomic-free implementation
   loses updates here with near-certainty at this volume. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let with_obs enabled f =
  Obs.reset ();
  Obs.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false; Obs.reset ()) f

let num_domains = 4
let incrs_per_domain = 1_000_000

let spawn_all n body = List.init n (fun i -> Domain.spawn (fun () -> body i))
let join_all = List.iter Domain.join

let test_counter_exact_totals () =
  with_obs true @@ fun () ->
  let shared = Obs.counter "test.domains.shared" in
  join_all
    (spawn_all num_domains (fun _ ->
         for _ = 1 to incrs_per_domain do
           Obs.incr shared
         done));
  check int "4 domains x 1M incr read back exactly"
    (num_domains * incrs_per_domain)
    (Obs.value shared)

let test_add_and_distinct_counters () =
  with_obs true @@ fun () ->
  (* mixed traffic: every domain adds to the shared cell and owns a
     private one; both must be exact, and registration of the same name
     from racing domains must resolve to one cell *)
  let shared = Obs.counter "test.domains.mixed" in
  join_all
    (spawn_all num_domains (fun i ->
         let own = Obs.counter (Printf.sprintf "test.domains.own.%d" i) in
         for _ = 1 to 50_000 do
           Obs.add shared 3;
           Obs.incr own
         done));
  check int "shared adds exact" (num_domains * 50_000 * 3) (Obs.value shared);
  for i = 0 to num_domains - 1 do
    check int
      (Printf.sprintf "domain %d's own counter" i)
      50_000
      (Obs.value_of (Printf.sprintf "test.domains.own.%d" i))
  done

let test_span_histogram_exact_counts () =
  with_obs true @@ fun () ->
  let s = Obs.span "test.domains.span" in
  let h = Obs.histogram "test.domains.hist" in
  let per_domain = 20_000 in
  join_all
    (spawn_all num_domains (fun i ->
         for k = 1 to per_domain do
           Obs.add_seconds s 0.001;
           Obs.observe h ((i * per_domain) + k)
         done));
  check int "span count exact" (num_domains * per_domain) (Obs.span_count s);
  check bool "span total accumulated" true
    (Obs.span_seconds s > float_of_int (num_domains * per_domain) *. 0.001 *. 0.999);
  check int "hist count exact" (num_domains * per_domain) (Obs.hist_count h);
  (* sum of (i*per_domain + k) over i in 0..3, k in 1..per_domain *)
  let offsets = per_domain * per_domain * (num_domains * (num_domains - 1) / 2) in
  let ladders = num_domains * (per_domain * (per_domain + 1) / 2) in
  check int "hist sum exact" (offsets + ladders) (Obs.hist_sum h)

(* a report assembled while other domains are still recording must be
   internally consistent JSON (no torn span/hist snapshots) *)
let test_report_under_fire () =
  with_obs true @@ fun () ->
  let s = Obs.span "test.domains.report_span" in
  let stop = Atomic.make false in
  let writers =
    spawn_all 2 (fun _ ->
        while not (Atomic.get stop) do
          Obs.add_seconds s 0.0001;
          Obs.incr (Obs.counter "test.domains.report_counter")
        done)
  in
  for _ = 1 to 50 do
    let json = Obs.report () in
    match Obs.Json.of_string (Obs.Json.to_string json) with
    | Ok _ -> ()
    | Error msg ->
      Atomic.set stop true;
      join_all writers;
      Alcotest.fail ("report under concurrent writes unparsable: " ^ msg)
  done;
  Atomic.set stop true;
  join_all writers;
  check bool "writers made progress" true (Obs.span_count s > 0)

(* ---------- governor ---------- *)

(* concurrent draining of the conflict pool: the trip must fire the
   notify hook exactly once no matter how many domains cross zero *)
let test_limits_single_trip () =
  let limits = Util.Limits.create ~max_conflicts:100_000 () in
  let fired = Atomic.make 0 in
  Util.Limits.set_notify limits (fun _ -> Atomic.incr fired);
  join_all
    (spawn_all num_domains (fun _ ->
         for _ = 1 to 1_000 do
           Util.Limits.charge_conflicts limits 50
         done));
  (* 4 domains x 1000 x 50 = 200k charges against a 100k pool *)
  check bool "pool tripped" true (Util.Limits.exhausted limits = Some Util.Limits.Conflicts);
  check int "notify fired exactly once" 1 (Atomic.get fired);
  check bool "budget clamps at zero" true (Util.Limits.conflict_budget limits = Some 0)

let test_limits_concurrent_aig_highwater () =
  let limits = Util.Limits.create ~max_aig_nodes:10_000_000 () in
  join_all
    (spawn_all num_domains (fun i ->
         for k = 1 to 10_000 do
           ignore (Util.Limits.check_aig_nodes limits ((i * 10_000) + k))
         done));
  (* high-water = the largest value any domain reported *)
  check bool "headroom reflects the global high-water" true
    (Util.Limits.aig_headroom limits = Some (10_000_000 - (((num_domains - 1) * 10_000) + 10_000)));
  check bool "no trip below the ceiling" true (Util.Limits.exhausted limits = None)

let () =
  Alcotest.run "domains"
    [
      ( "registry",
        [
          Alcotest.test_case "4 domains x 1M incr, exact total" `Quick test_counter_exact_totals;
          Alcotest.test_case "mixed add + per-domain counters" `Quick
            test_add_and_distinct_counters;
          Alcotest.test_case "span/histogram exact counts" `Quick
            test_span_histogram_exact_counts;
          Alcotest.test_case "report while domains record" `Quick test_report_under_fire;
        ] );
      ( "governor",
        [
          Alcotest.test_case "concurrent drain trips notify once" `Quick
            test_limits_single_trip;
          Alcotest.test_case "aig high-water across domains" `Quick
            test_limits_concurrent_aig_highwater;
        ] );
    ]
