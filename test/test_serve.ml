(* The job daemon end to end, in process: protocol codec totality,
   malformed-frame rejection without connection loss, concurrent batch
   verdicts agreeing with sequential runs, cooperative cancellation
   (explicit and by client disconnect), the server budget ceiling, and
   the shared run-report store after a batch. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let with_dir f =
  let dir = Filename.temp_file "cbq_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* a served model: registry circuit frozen to ASCII AIGER bytes *)
let frozen name param =
  let model, _ = Circuits.Registry.build name (Some param) in
  (Netlist.Model.name model, Netlist.Aiger.write model)

let spec ?(engine = "cbq-bwd") ?(budget = Serve.Protocol.no_budget) ?quantify_backend ~tag
    name param =
  let model_name, aig = frozen name param in
  { Serve.Client.tag; model_name; aig; engine; budget; quantify_backend }

let with_server ?jobs ?ceiling ?store f =
  with_dir @@ fun dir ->
  let server =
    Serve.Server.start ?jobs ?ceiling ?store
      (Serve.Protocol.Unix_path (Filename.concat dir "s.sock"))
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.Server.wait server)
    (fun () -> f server (Serve.Server.address server))

let connect address = Serve.Client.connect address

(* ---------- protocol codec ---------- *)

let requests_roundtrip () =
  let budget =
    {
      Serve.Protocol.timeout = Some 1.5;
      max_conflicts = Some 100;
      max_aig_nodes = None;
      max_bdd_nodes = Some 7;
    }
  in
  let reqs =
    [
      Serve.Protocol.Submit
        {
          tag = "t1";
          model_name = "m";
          aig = "aag 0 0 0 1 0\n1\n";
          engine = "bmc";
          budget;
          quantify_backend = None;
        };
      Serve.Protocol.Submit
        {
          tag = "t2";
          model_name = "m2";
          aig = "x";
          engine = "cbq-bwd";
          budget = Serve.Protocol.no_budget;
          quantify_backend = Some "pqe";
        };
      Serve.Protocol.Cancel { id = 42 };
      Serve.Protocol.Ping;
      Serve.Protocol.Stats;
      Serve.Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      let line = Serve.Protocol.request_to_line r in
      check bool "one line" false (String.contains line '\n');
      match Serve.Protocol.request_of_line line with
      | Ok r' -> check bool "request round-trips" true (r = r')
      | Error msg -> Alcotest.fail msg)
    reqs

let events_roundtrip () =
  let events =
    [
      Serve.Protocol.Accepted { tag = "t"; id = 1 };
      Serve.Protocol.Rejected { tag = "t"; reason = "no \"such\" engine" };
      Serve.Protocol.Started { id = 3 };
      Serve.Protocol.Progress { id = 3; frame = 7; nodes = 140 };
      Serve.Protocol.Done
        { id = 3; verdict = Baselines.Verdict.Proved; seconds = 0.25; report = Some 9 };
      Serve.Protocol.Done
        { id = 4; verdict = Baselines.Verdict.Falsified 15; seconds = 1.0; report = None };
      Serve.Protocol.Done
        {
          id = 5;
          verdict = Baselines.Verdict.Undecided "deadline";
          seconds = 2.0;
          report = None;
        };
      Serve.Protocol.Failed { id = 6; message = "stack overflow" };
      Serve.Protocol.Pong;
      Serve.Protocol.Stats_reply { queued = 1; running = 2; completed = 3; workers = 4 };
      Serve.Protocol.Bye;
      Serve.Protocol.Protocol_error { message = "bad frame" };
    ]
  in
  List.iter
    (fun e ->
      let line = Serve.Protocol.event_to_line e in
      check bool "one line" false (String.contains line '\n');
      match Serve.Protocol.event_of_line line with
      | Ok e' -> check bool "event round-trips" true (e = e')
      | Error msg -> Alcotest.fail msg)
    events

let malformed_frames () =
  let bad l =
    match Serve.Protocol.request_of_line l with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed frame %S" l)
  in
  bad "not json";
  bad "[1,2]";
  bad "{\"no\":\"type\"}";
  bad "{\"type\":\"warp\"}";
  bad "{\"type\":\"submit\",\"tag\":\"t\"}";
  (* missing model/engine/aig *)
  bad "{\"type\":\"cancel\"}" (* missing id *)

(* a malformed line over the wire draws a protocol error and leaves the
   connection usable *)
let malformed_over_the_wire () =
  with_server ~jobs:1 @@ fun _server address ->
  (* no raw-line entry point on the client, so speak the protocol
     directly: garbage, then a valid ping *)
  let sock =
    match address with
    | Serve.Protocol.Unix_path p ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX p);
      fd
    | Serve.Protocol.Tcp _ -> Alcotest.fail "test uses unix sockets"
  in
  let outc = Unix.out_channel_of_descr sock in
  let inc = Unix.in_channel_of_descr sock in
  output_string outc "this is { not json\n";
  output_string outc "{\"type\":\"ping\"}\n";
  flush outc;
  (match Serve.Protocol.event_of_line (input_line inc) with
  | Ok (Serve.Protocol.Protocol_error _) -> ()
  | Ok e ->
    Alcotest.fail
      (Printf.sprintf "expected a protocol error, got %s" (Serve.Protocol.event_to_line e))
  | Error msg -> Alcotest.fail msg);
  (match Serve.Protocol.event_of_line (input_line inc) with
  | Ok Serve.Protocol.Pong -> ()
  | Ok e ->
    Alcotest.fail
      (Printf.sprintf "connection should survive garbage, got %s"
         (Serve.Protocol.event_to_line e))
  | Error msg -> Alcotest.fail msg);
  Unix.close sock

(* ---------- verdict parity: concurrent batch vs sequential ---------- *)

let batch_matches_sequential () =
  let cases =
    [ ("counter", 2); ("counter", 3); ("counter-even", 4); ("gray", 3); ("twin-shift", 4) ]
  in
  (* sequential ground truth straight from the suite *)
  let expected =
    List.map
      (fun (name, param) ->
        let model, _ = Circuits.Registry.build name (Some param) in
        let engine = Option.get (Baselines.Suite.find "cbq-bwd") in
        let verdict, _ = engine.Baselines.Suite.run ~limits:(Util.Limits.create ()) model in
        verdict)
      cases
  in
  with_server ~jobs:4 @@ fun _server address ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  let specs =
    List.mapi (fun i (name, param) -> spec ~tag:(Printf.sprintf "job%d" i) name param) cases
  in
  let outcomes = Serve.Client.run_batch c specs in
  List.iteri
    (fun i (exp, got) ->
      match got with
      | Serve.Client.Finished { verdict; _ } ->
        check bool
          (Printf.sprintf "job %d agrees with the sequential verdict" i)
          true (verdict = exp)
      | Serve.Client.Crashed { message; _ } -> Alcotest.fail message
      | Serve.Client.Refused { reason } -> Alcotest.fail reason)
    (List.combine expected outcomes)

(* rejections: unknown engine and unparsable model, without burning a
   worker or the connection *)
let submit_rejections () =
  with_server ~jobs:1 @@ fun _server address ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  (match Serve.Client.submit_wait c (spec ~engine:"warp-drive" ~tag:"a" "counter" 2) with
  | Serve.Client.Refused { reason } ->
    check bool "reason names the engine" true
      (String.length reason > 0
      && String.lowercase_ascii reason |> fun s ->
         String.length s >= 7 && String.sub s 0 7 = "unknown")
  | _ -> Alcotest.fail "unknown engine must be refused");
  (match
     Serve.Client.submit_wait c
       { Serve.Client.tag = "b"; model_name = "junk"; aig = "aag junk"; engine = "bmc";
         budget = Serve.Protocol.no_budget; quantify_backend = None }
   with
  | Serve.Client.Refused _ -> ()
  | _ -> Alcotest.fail "unparsable AIGER must be refused");
  (match
     Serve.Client.submit_wait c (spec ~quantify_backend:"warp" ~tag:"q" "counter" 2)
   with
  | Serve.Client.Refused { reason } ->
    check bool "reason names the backend" true
      (String.length reason > 0
      && String.lowercase_ascii reason |> fun s ->
         String.length s >= 7 && String.sub s 0 7 = "unknown")
  | _ -> Alcotest.fail "unknown quantify backend must be refused");
  (* the same connection still works, per-job backend override included *)
  match
    Serve.Client.submit_wait c (spec ~tag:"c" ~quantify_backend:"auto" "counter" 2)
  with
  | Serve.Client.Finished { verdict = Baselines.Verdict.Falsified 3; _ } -> ()
  | _ -> Alcotest.fail "valid submit after rejections must still run"

(* ---------- cancellation ---------- *)

(* a job that cannot finish soon: falsifying counter(12) needs 4095
   backward frames *)
let slow_spec ~tag = spec ~tag "counter" 12

let explicit_cancel () =
  with_server ~jobs:1 @@ fun _server address ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  Serve.Client.send c
    (let s = slow_spec ~tag:"slow" in
     Serve.Protocol.Submit
       {
         tag = s.Serve.Client.tag;
         model_name = s.Serve.Client.model_name;
         aig = s.Serve.Client.aig;
         engine = s.Serve.Client.engine;
         budget = s.Serve.Client.budget;
         quantify_backend = None;
       });
  let id =
    match Serve.Client.recv c with
    | Some (Serve.Protocol.Accepted { id; _ }) -> id
    | other ->
      Alcotest.fail
        (Printf.sprintf "expected accept, got %s"
           (match other with
           | Some e -> Serve.Protocol.event_to_line e
           | None -> "EOF"))
  in
  (* the accept precedes every worker event for the job; wait for the
     run to actually start, then cancel it *)
  (match Serve.Client.recv c with
  | Some (Serve.Protocol.Started { id = i }) -> check int "started id" id i
  | _ -> Alcotest.fail "expected started");
  Serve.Client.send c (Serve.Protocol.Cancel { id });
  let watch = Util.Stopwatch.start () in
  let rec await () =
    match Serve.Client.recv c with
    | Some (Serve.Protocol.Done { id = i; verdict = Baselines.Verdict.Undecided _; _ })
      when i = id ->
      ()
    | Some (Serve.Protocol.Done _) -> Alcotest.fail "a cancelled job cannot decide"
    | Some _ -> await ()
    | None -> Alcotest.fail "connection closed before the cancel verdict"
  in
  await ();
  check bool "cancellation is prompt" true (Util.Stopwatch.elapsed watch < 30.0)

let disconnect_cancels () =
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  with_server ~jobs:1 ~store @@ fun server address ->
  let c = connect address in
  let s = slow_spec ~tag:"orphan" in
  Serve.Client.send c
    (Serve.Protocol.Submit
       {
         tag = s.Serve.Client.tag;
         model_name = s.Serve.Client.model_name;
         aig = s.Serve.Client.aig;
         engine = s.Serve.Client.engine;
         budget = s.Serve.Client.budget;
         quantify_backend = None;
       });
  (match Serve.Client.recv c with
  | Some (Serve.Protocol.Accepted _) -> ()
  | _ -> Alcotest.fail "expected accept");
  (match Serve.Client.recv c with
  | Some (Serve.Protocol.Started _) -> ()
  | _ -> Alcotest.fail "expected started");
  (* vanish mid-job: the daemon must cancel the orphan, not run it for
     4095 frames *)
  Serve.Client.close c;
  let scheduler = Serve.Server.scheduler server in
  let deadline = Util.Stopwatch.start () in
  let rec wait () =
    let stats = Serve.Scheduler.stats scheduler in
    if stats.Serve.Scheduler.completed >= 1 then ()
    else if Util.Stopwatch.elapsed deadline > 60.0 then
      Alcotest.fail "orphaned job still running 60s after its client disconnected"
    else begin
      Unix.sleepf 0.05;
      wait ()
    end
  in
  wait ();
  (* the stored report records the cancellation *)
  Obs.Store.flush store;
  match Obs.Store.entries store with
  | [ entry ] -> (
    match Obs.Store.load store entry.Obs.Store.id with
    | Error msg -> Alcotest.fail msg
    | Ok (_, report) -> (
      match
        Option.bind (Obs.Json.member "counters" report) (Obs.Json.member "serve.job.cancelled")
      with
      | Some (Obs.Json.Int 1) -> ()
      | _ -> Alcotest.fail "stored report must mark the job cancelled"))
  | entries ->
    Alcotest.fail (Printf.sprintf "expected exactly one stored run, found %d" (List.length entries))

(* ---------- the budget ceiling ---------- *)

let ceiling_caps_budget () =
  let ceiling = { Serve.Protocol.no_budget with max_conflicts = Some 1 } in
  with_server ~jobs:1 ~ceiling @@ fun _server address ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  (* the client asks for an unlimited run of a model whose bmc refutation
     needs real SAT work; the server's 1-conflict pool must starve it *)
  match Serve.Client.submit_wait c (spec ~engine:"bmc" ~tag:"greedy" "counter" 6) with
  | Serve.Client.Finished { verdict = Baselines.Verdict.Undecided _; seconds; _ } ->
    check bool "budget-capped promptly" true (seconds < 30.0)
  | Serve.Client.Finished { verdict; _ } ->
    Alcotest.fail
      (Printf.sprintf "1-conflict ceiling cannot decide counter(6), got %s"
         (match verdict with
         | Baselines.Verdict.Proved -> "proved"
         | Baselines.Verdict.Falsified d -> Printf.sprintf "falsified:%d" d
         | Baselines.Verdict.Undecided _ -> "undecided"))
  | Serve.Client.Crashed { message; _ } -> Alcotest.fail message
  | Serve.Client.Refused { reason } -> Alcotest.fail reason

(* ---------- store contents after a batch ---------- *)

let store_after_batch () =
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  (with_server ~jobs:3 ~store @@ fun _server address ->
   let c = connect address in
   Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
   let specs =
     List.init 6 (fun i -> spec ~tag:(Printf.sprintf "b%d" i) ~engine:"bmc" "counter" 2)
   in
   let outcomes = Serve.Client.run_batch c specs in
   List.iter
     (function
       | Serve.Client.Finished { report = Some _; _ } -> ()
       | Serve.Client.Finished { report = None; _ } ->
         Alcotest.fail "every completed job must be stored"
       | Serve.Client.Crashed { message; _ } -> Alcotest.fail message
       | Serve.Client.Refused { reason } -> Alcotest.fail reason)
     outcomes);
  (* reopen cold: the daemon flushed its index at shutdown *)
  let reopened = Obs.Store.open_ dir in
  let entries = Obs.Store.entries reopened in
  check int "one stored run per job" 6 (List.length entries);
  List.iter
    (fun e ->
      check string "engine column" "bmc" e.Obs.Store.engine;
      check string "model column" "counter2" e.Obs.Store.model;
      match Obs.Store.load reopened e.Obs.Store.id with
      | Ok (_, report) -> (
        match
          Option.bind (Obs.Json.member "meta" report) (Obs.Json.member "tool")
        with
        | Some (Obs.Json.String "cbq-mc-serve") -> ()
        | _ -> Alcotest.fail "stored report must name the serving tool")
      | Error msg -> Alcotest.fail msg)
    entries

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "requests round-trip" `Quick requests_roundtrip;
          Alcotest.test_case "events round-trip" `Quick events_roundtrip;
          Alcotest.test_case "malformed frames are rejected" `Quick malformed_frames;
          Alcotest.test_case "garbage on the wire is survivable" `Quick malformed_over_the_wire;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "batch verdicts match sequential" `Quick batch_matches_sequential;
          Alcotest.test_case "bad submits are refused" `Quick submit_rejections;
          Alcotest.test_case "explicit cancel" `Quick explicit_cancel;
          Alcotest.test_case "client disconnect cancels its job" `Quick disconnect_cancels;
          Alcotest.test_case "server ceiling caps the client budget" `Quick ceiling_caps_budget;
          Alcotest.test_case "batch lands in the shared store" `Quick store_after_batch;
        ] );
    ]
