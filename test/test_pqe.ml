(* The PQE quantification backend and its differential conformance
   harness: redundancy-query soundness on hand-built CNFs, support
   clearing, selector determinism on the registry families, budget
   degradation (a dry conflict pool yields partial quantification,
   never a wrong result), and QCheck properties checking every backend
   against the Shannon-disjunction oracle on generated models. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

let semantically_equal aig nvars a b =
  let rec go mask =
    mask >= 1 lsl nvars || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
  in
  go 0

let shannon aig l v =
  Aig.or_ aig (Aig.cofactor aig l ~v ~phase:false) (Aig.cofactor aig l ~v ~phase:true)

let setup () =
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 7 in
  (aig, checker, prng)

(* ---------- redundancy queries (Cnf.Checker.implies_clause) ---------- *)

let test_implies_clause_soundness () =
  let aig, checker, _ = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  (* K = (x ∨ y) ∧ (¬x ∨ y) entails y but not x *)
  let k = [ Aig.or_ aig x y; Aig.or_ aig (Aig.not_ x) y ] in
  check bool "K ⊨ y" true (Cnf.Checker.implies_clause checker ~given:k [ y ] = Cnf.Checker.Yes);
  check bool "K ⊭ x" true (Cnf.Checker.implies_clause checker ~given:k [ x ] = Cnf.Checker.No);
  check bool "K ⊨ y ∨ z" true
    (Cnf.Checker.implies_clause checker ~given:k [ y; z ] = Cnf.Checker.Yes);
  check bool "K ⊭ z" true (Cnf.Checker.implies_clause checker ~given:k [ z ] = Cnf.Checker.No);
  (* short-circuits: constant true and a literal of the given set *)
  check bool "true clause" true
    (Cnf.Checker.implies_clause checker ~given:[] [ Aig.true_ ] = Cnf.Checker.Yes);
  let q0 = Cnf.Checker.queries checker in
  check bool "given literal" true
    (Cnf.Checker.implies_clause checker ~given:[ z ] [ x; z ] = Cnf.Checker.Yes);
  check int "shortcut spends no query" q0 (Cnf.Checker.queries checker);
  (* empty clause: provable only from an unsatisfiable given set *)
  check bool "consistent K ⊭ ⊥" true
    (Cnf.Checker.implies_clause checker ~given:k [] = Cnf.Checker.No);
  check bool "inconsistent K ⊨ ⊥" true
    (Cnf.Checker.implies_clause checker ~given:[ x; Aig.not_ x ] [] = Cnf.Checker.Yes)

(* ---------- Pqe.eliminate on hand-built functions ---------- *)

let test_pqe_mux () =
  let aig, checker, _ = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.or_ aig (Aig.and_ aig x y) (Aig.and_ aig (Aig.not_ x) z) in
  match Cbq.Pqe.eliminate aig checker f 0 with
  | Ok q, report ->
    check bool "∃x. mux = y ∨ z" true (semantically_equal aig 3 q (Aig.or_ aig y z));
    check bool "support cleared" false (Aig.depends_on aig q 0);
    check bool "cover nonempty" true (report.Cbq.Pqe.cover_clauses > 0);
    check bool "no abort" true (report.Cbq.Pqe.aborted = None)
  | Error reason, _ ->
    Alcotest.failf "unexpected abort: %s" (Fmt.str "%a" Cbq.Pqe.pp_abort_reason reason)

let test_pqe_xor_collapses () =
  let aig, checker, _ = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  (* ∃x. x ⊕ (y ∧ z) — every resolvent is a tautology, K collapses *)
  let f = Aig.xor_ aig x (Aig.and_ aig y z) in
  match Cbq.Pqe.eliminate aig checker f 0 with
  | Ok q, _ -> check int "∃x. x⊕g = true" Aig.true_ q
  | Error _, _ -> Alcotest.fail "unexpected abort"

let test_pqe_constants_and_free () =
  let aig, checker, _ = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  (match Cbq.Pqe.eliminate aig checker Aig.false_ 0 with
  | Ok q, _ -> check int "∃x. false = false" Aig.false_ q
  | Error _, _ -> Alcotest.fail "abort on false");
  (match Cbq.Pqe.eliminate aig checker x 0 with
  | Ok q, _ -> check int "∃x. x = true" Aig.true_ q
  | Error _, _ -> Alcotest.fail "abort on x");
  (match Cbq.Pqe.eliminate aig checker (Aig.and_ aig x y) 0 with
  | Ok q, _ -> check bool "∃x. x∧y = y" true (semantically_equal aig 2 q y)
  | Error _, _ -> Alcotest.fail "abort on x∧y");
  (* free variable: untouched, no queries needed *)
  match Cbq.Pqe.eliminate aig checker y 0 with
  | Ok q, report ->
    check int "free var identity" y q;
    check int "free var costs nothing" 0 report.Cbq.Pqe.sat_queries
  | Error _, _ -> Alcotest.fail "abort on free var"

let test_pqe_support_cap () =
  let aig, checker, _ = setup () in
  let xs = List.init 6 (Aig.var aig) in
  let f = Aig.and_list aig xs in
  let config = { Cbq.Pqe.default with max_support = 3 } in
  match Cbq.Pqe.eliminate ~config aig checker f 0 with
  | Error (Cbq.Pqe.Support_too_wide n), report ->
    check int "reported width" 6 n;
    check bool "abort recorded" true (report.Cbq.Pqe.aborted <> None)
  | _ -> Alcotest.fail "expected Support_too_wide"

let test_pqe_dry_conflict_pool () =
  (* a governor with an empty conflict pool: every elimination must
     abort (partial quantification) — never return a wrong literal *)
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let limits = Util.Limits.create ~max_conflicts:0 () in
  Util.Limits.trip limits Util.Limits.Conflicts;
  Cnf.Checker.set_limits checker limits;
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.or_ aig (Aig.and_ aig x y) (Aig.and_ aig (Aig.not_ x) z) in
  match Cbq.Pqe.eliminate aig checker f 0 with
  | Error Cbq.Pqe.Solver_undecided, _ -> ()
  | Error r, _ ->
    Alcotest.failf "wrong abort reason: %s" (Fmt.str "%a" Cbq.Pqe.pp_abort_reason r)
  | Ok _, _ -> Alcotest.fail "dry pool must abort, not answer"

(* ---------- Quantify backend dispatch ---------- *)

let pqe_config = { Cbq.Quantify.default with backend = Cbq.Quantify.Pqe }
let auto_config = { Cbq.Quantify.default with backend = Cbq.Quantify.Auto }

let test_backend_names () =
  List.iter
    (fun name ->
      match Cbq.Quantify.backend_of_string name with
      | Some b -> check Alcotest.string "round-trip" name (Cbq.Quantify.backend_name b)
      | None -> Alcotest.failf "unknown backend %s" name)
    Cbq.Quantify.backend_names;
  check bool "junk rejected" true (Cbq.Quantify.backend_of_string "bdd" = None)

let test_quantify_pqe_backend () =
  let aig, checker, prng = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.or_ aig (Aig.and_ aig x y) (Aig.and_ aig (Aig.not_ x) z) in
  match Cbq.Quantify.one ~config:pqe_config aig checker ~prng f 0 with
  | Ok q, report ->
    check bool "pqe backend correct" true (semantically_equal aig 3 q (shannon aig f 0));
    check bool "support cleared" false (Aig.depends_on aig q 0);
    check bool "routed to pqe" true (report.Cbq.Quantify.backend = Cbq.Quantify.Pqe);
    check bool "pqe report attached" true (report.Cbq.Quantify.pqe_report <> None)
  | Error _, _ -> Alcotest.fail "unexpected abort"

(* f = x ? (y⊕z) : (y≡z), with the xor and xnor built from distinct
   and-nodes so the hashed AIG cannot see they are complements. The
   cofactor disjunction (y⊕z) ∨ (y≡z) is a 7-node tautology the strict
   circuit backend aborts on; PQE's resolvents are all tautologies, so
   it answers [true] — the auto ladder must eliminate the variable. *)
let hidden_tautology aig =
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let xor_ = Aig.or_ aig (Aig.and_ aig y (Aig.not_ z)) (Aig.and_ aig (Aig.not_ y) z) in
  let xnor = Aig.or_ aig (Aig.and_ aig y z) (Aig.and_ aig (Aig.not_ y) (Aig.not_ z)) in
  Aig.or_ aig (Aig.and_ aig x xor_) (Aig.and_ aig (Aig.not_ x) xnor)

let strict_budget config =
  { config with Cbq.Quantify.growth_limit = 0.0; growth_slack = 0; use_dontcare = false;
    use_rewrite = false;
    sweep = { Sweep.Sweeper.default with bdd_node_limit = 0; sat = None; sim_rounds = 1 } }

let test_auto_ladder_beats_circuit () =
  let aig, checker, prng = setup () in
  let f = hidden_tautology aig in
  let circuit_strict = strict_budget Cbq.Quantify.default in
  (match Cbq.Quantify.one ~config:circuit_strict aig checker ~prng f 0 with
  | Error naive, report ->
    check bool "circuit abort flagged" true report.Cbq.Quantify.aborted;
    check bool "abort payload still ∃x.f" true (semantically_equal aig 3 naive (shannon aig f 0))
  | Ok q, _ -> check bool "strict circuit can only emit constants" true (Aig.is_const q));
  match Cbq.Quantify.one ~config:(strict_budget auto_config) aig checker ~prng f 0 with
  | Ok q, report ->
    check int "auto resolves to true" Aig.true_ q;
    check bool "auto routed to pqe" true (report.Cbq.Quantify.backend = Cbq.Quantify.Pqe)
  | Error _, _ -> Alcotest.fail "auto must succeed where pqe does"

let test_auto_never_worse_than_circuit () =
  (* on identical inputs, every variable circuit eliminates is also
     eliminated by auto: auto only keeps a variable when both fail *)
  let aig, checker, prng = setup () in
  let xs = List.init 5 (Aig.var aig) in
  let f =
    Aig.and_ aig
      (Aig.or_list aig xs)
      (Aig.xor_ aig (List.nth xs 0) (Aig.and_ aig (List.nth xs 1) (List.nth xs 2)))
  in
  let vars = [ 0; 1; 2 ] in
  let strict = strict_budget Cbq.Quantify.default in
  let r_circuit = Cbq.Quantify.all ~config:strict aig checker ~prng f ~vars in
  let r_auto = Cbq.Quantify.all ~config:(strict_budget auto_config) aig checker ~prng f ~vars in
  check bool "auto keeps a subset" true
    (List.for_all (fun v -> List.mem v r_circuit.Cbq.Quantify.kept) r_auto.Cbq.Quantify.kept)

let test_quantify_pqe_budget_degradation () =
  (* dry conflict pool under the Pqe backend: Quantify.one must fall
     into partial quantification with a still-correct Error payload *)
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 7 in
  let limits = Util.Limits.create ~max_conflicts:0 () in
  Util.Limits.trip limits Util.Limits.Conflicts;
  Cnf.Checker.set_limits checker limits;
  let f = hidden_tautology aig in
  match Cbq.Quantify.one ~config:pqe_config aig checker ~prng f 0 with
  | Error naive, report ->
    check bool "aborted" true report.Cbq.Quantify.aborted;
    check bool "payload still ∃x.f" true (semantically_equal aig 3 naive (shannon aig f 0))
  | Ok q, _ ->
    (* acceptable only when the answer needs no solver at all *)
    check bool "budgetless success is semantical" true (semantically_equal aig 3 q (shannon aig f 0))

(* ---------- selector decisions on the registry families ---------- *)

let test_selector_deterministic_on_families () =
  List.iter
    (fun name ->
      let model, _ = Circuits.Registry.build name None in
      let aig = model.Netlist.Model.aig in
      let checker = Cnf.Checker.create aig in
      let bad = Aig.not_ model.Netlist.Model.property in
      match model.Netlist.Model.latches with
      | [] -> ()
      | l0 :: _ ->
        let v = l0.Netlist.Model.state_var in
        let d1 = Cbq.Quantify.decide ~config:auto_config aig checker bad v in
        let d2 = Cbq.Quantify.decide ~config:auto_config aig checker bad v in
        check bool (name ^ " deterministic") true (d1 = d2);
        check bool (name ^ " never Auto") true (d1 <> Cbq.Quantify.Auto))
    [ "counter"; "gray"; "lfsr"; "arbiter"; "fifo"; "johnson" ]

let test_selector_pinned () =
  (* pin the routing on two contrasting shapes: a wide-support cone
     must stay on circuit (PQE's cover enumerates over the support); a
     parity cone with disagreeing small cofactors must go to PQE *)
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let wide = Aig.and_list aig (List.init 30 (Aig.var aig)) in
  check bool "wide support -> circuit" true
    (Cbq.Quantify.decide ~config:auto_config aig checker wide 0 = Cbq.Quantify.Circuit);
  let bank = Sweep.Pattern_bank.create () in
  let f = hidden_tautology aig in
  let d = Cbq.Quantify.decide ~bank ~config:auto_config aig checker f 0 in
  check bool "selector decided" true (d = Cbq.Quantify.Pqe || d = Cbq.Quantify.Circuit)

(* ---------- QCheck: differential conformance per backend ---------- *)

let nvars = 5

let backend_matches_shannon backend =
  let config =
    {
      Cbq.Quantify.naive_config with
      backend;
      (* keep auto's circuit leg cheap and deterministic in tests *)
      growth_limit = 4.0;
      growth_slack = 64;
    }
  in
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "backend %s ≡ Shannon disjunction" (Cbq.Quantify.backend_name backend))
    (QCheck.pair (Gen_util.qc_expr ~size:14 nvars) QCheck.(int_bound (nvars - 1)))
    (fun (e, v) ->
      let aig = Aig.create () in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 11 in
      let f = Gen_util.build_aig aig e in
      let oracle = shannon aig f v in
      let result, report = Cbq.Quantify.one ~config aig checker ~prng f v in
      match result with
      | Ok q ->
        semantically_equal aig nvars q oracle
        && (not (Aig.depends_on aig q v))
        (* a dependent variable is always handled by a concrete backend;
           independent ones take neither path *)
        && ((not (Aig.depends_on aig f v)) || report.Cbq.Quantify.backend <> Cbq.Quantify.Auto)
      | Error naive ->
        (* aborts are allowed (partial quantification) but the carried
           literal must still be the quantification *)
        semantically_equal aig nvars naive oracle)

let all_backends_agree =
  QCheck.Test.make ~count:200 ~name:"backends agree modulo aborts"
    (QCheck.pair (Gen_util.qc_expr ~size:14 nvars) QCheck.(int_bound (nvars - 1)))
    (fun (e, v) ->
      let run backend =
        let aig = Aig.create () in
        let checker = Cnf.Checker.create aig in
        let prng = Util.Prng.create 13 in
        let f = Gen_util.build_aig aig e in
        let config = { Cbq.Quantify.naive_config with backend } in
        let result, _ = Cbq.Quantify.one ~config aig checker ~prng f v in
        let lit = match result with Ok q -> q | Error naive -> naive in
        (* canonical truth table over the fixed variable set *)
        List.init (1 lsl nvars) (eval_mask aig lit)
      in
      let circuit = run Cbq.Quantify.Circuit in
      run Cbq.Quantify.Pqe = circuit && run Cbq.Quantify.Auto = circuit)

let () =
  Alcotest.run "pqe"
    [
      ( "redundancy",
        [ Alcotest.test_case "implies_clause soundness" `Quick test_implies_clause_soundness ] );
      ( "eliminate",
        [
          Alcotest.test_case "mux" `Quick test_pqe_mux;
          Alcotest.test_case "xor collapses to true" `Quick test_pqe_xor_collapses;
          Alcotest.test_case "constants and free vars" `Quick test_pqe_constants_and_free;
          Alcotest.test_case "support cap" `Quick test_pqe_support_cap;
          Alcotest.test_case "dry conflict pool aborts" `Quick test_pqe_dry_conflict_pool;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "backend names" `Quick test_backend_names;
          Alcotest.test_case "pqe backend via Quantify.one" `Quick test_quantify_pqe_backend;
          Alcotest.test_case "auto ladder beats strict circuit" `Quick
            test_auto_ladder_beats_circuit;
          Alcotest.test_case "auto keeps a subset of circuit's aborts" `Quick
            test_auto_never_worse_than_circuit;
          Alcotest.test_case "budget degradation stays sound" `Quick
            test_quantify_pqe_budget_degradation;
        ] );
      ( "selector",
        [
          Alcotest.test_case "deterministic on families" `Quick
            test_selector_deterministic_on_families;
          Alcotest.test_case "pinned decisions" `Quick test_selector_pinned;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest (backend_matches_shannon Cbq.Quantify.Circuit);
          QCheck_alcotest.to_alcotest (backend_matches_shannon Cbq.Quantify.Pqe);
          QCheck_alcotest.to_alcotest (backend_matches_shannon Cbq.Quantify.Auto);
          QCheck_alcotest.to_alcotest all_backends_agree;
        ] );
    ]
