(* ROBDD tests: operations against brute-force evaluation, quantification,
   composition, canonicity, node quotas. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let eval_mask man n mask = Bdd.eval man n (fun v -> (mask lsr v) land 1 = 1)

let semantically_equal man nvars a b =
  let rec go mask =
    mask >= 1 lsl nvars || (eval_mask man a mask = eval_mask man b mask && go (mask + 1))
  in
  go 0

let test_terminals () =
  let man = Bdd.create () in
  check bool "zero is terminal" true (Bdd.is_terminal Bdd.zero);
  check bool "one is terminal" true (Bdd.is_terminal Bdd.one);
  check int "not zero" Bdd.one (Bdd.not_ man Bdd.zero);
  check int "not one" Bdd.zero (Bdd.not_ man Bdd.one);
  let x = Bdd.var_node man 0 in
  check bool "var not terminal" false (Bdd.is_terminal x);
  check int "topvar" 0 (Bdd.topvar man x);
  check int "low" Bdd.zero (Bdd.low man x);
  check int "high" Bdd.one (Bdd.high man x)

let test_basic_ops () =
  let man = Bdd.create () in
  let x = Bdd.var_node man 0 and y = Bdd.var_node man 1 in
  let conj = Bdd.and_ man x y in
  check bool "and 11" true (eval_mask man conj 0b11);
  check bool "and 01" false (eval_mask man conj 0b01);
  let disj = Bdd.or_ man x y in
  check bool "or 00" false (eval_mask man disj 0b00);
  check bool "or 10" true (eval_mask man disj 0b10);
  let xor = Bdd.xor_ man x y in
  check bool "xor 11" false (eval_mask man xor 0b11);
  check bool "xor 10" true (eval_mask man xor 0b10);
  check bool "iff = not xor" true
    (semantically_equal man 2 (Bdd.iff_ man x y) (Bdd.not_ man xor));
  check bool "implies" true
    (semantically_equal man 2 (Bdd.implies man x y) (Bdd.or_ man (Bdd.not_ man x) y))

let test_canonicity () =
  let man = Bdd.create () in
  let x = Bdd.var_node man 0 and y = Bdd.var_node man 1 and z = Bdd.var_node man 2 in
  let a = Bdd.or_ man (Bdd.and_ man x y) (Bdd.and_ man x z) in
  let b = Bdd.and_ man x (Bdd.or_ man y z) in
  check int "distribution law canonical" a b;
  let c = Bdd.not_ man (Bdd.not_ man a) in
  check int "double negation canonical" a c;
  check int "x & x" x (Bdd.and_ man x x);
  check int "x ^ x" Bdd.zero (Bdd.xor_ man x x)

let test_ite () =
  let man = Bdd.create () in
  let c = Bdd.var_node man 0 and g = Bdd.var_node man 1 and h = Bdd.var_node man 2 in
  let f = Bdd.ite man c g h in
  for mask = 0 to 7 do
    let cv = mask land 1 = 1 and gv = (mask lsr 1) land 1 = 1 and hv = (mask lsr 2) land 1 = 1 in
    check bool (Printf.sprintf "ite %d" mask) (if cv then gv else hv) (eval_mask man f mask)
  done

let test_exists_forall () =
  let man = Bdd.create () in
  let x = Bdd.var_node man 0 and y = Bdd.var_node man 1 in
  let f = Bdd.and_ man x y in
  let ex = Bdd.exists man (fun v -> v = 0) f in
  check bool "exists x. x&y = y" true (semantically_equal man 2 ex y);
  let fa = Bdd.forall man (fun v -> v = 0) f in
  check int "forall x. x&y = 0" Bdd.zero fa;
  let g = Bdd.or_ man x y in
  check bool "forall x. x|y = y" true
    (semantically_equal man 2 (Bdd.forall man (fun v -> v = 0) g) y);
  check int "exists on absent var" f (Bdd.exists man (fun v -> v = 7) f)

let test_restrict () =
  let man = Bdd.create () in
  let x = Bdd.var_node man 0 and y = Bdd.var_node man 1 in
  let f = Bdd.xor_ man x y in
  check bool "restrict x=1" true
    (semantically_equal man 2 (Bdd.restrict man f ~v:0 ~phase:true) (Bdd.not_ man y));
  check bool "restrict x=0" true
    (semantically_equal man 2 (Bdd.restrict man f ~v:0 ~phase:false) y)

let test_compose () =
  let man = Bdd.create () in
  let x = Bdd.var_node man 0 and y = Bdd.var_node man 1 and z = Bdd.var_node man 2 in
  let f = Bdd.xor_ man x y in
  let g = Bdd.compose man f ~subst:(fun v -> if v = 1 then Some (Bdd.and_ man y z) else None) in
  let expected = Bdd.xor_ man x (Bdd.and_ man y z) in
  check int "compose (canonical)" expected g;
  let h = Bdd.compose man (Bdd.and_ man y z) ~subst:(fun v -> if v = 2 then Some x else None) in
  check int "compose downward" (Bdd.and_ man y x) h

let test_support_size () =
  let man = Bdd.create () in
  let x = Bdd.var_node man 0 and z = Bdd.var_node man 2 in
  let f = Bdd.and_ man x z in
  check (Alcotest.list int) "support" [ 0; 2 ] (Bdd.support man f);
  check int "size of x&z" 2 (Bdd.size man f);
  check int "terminal size" 0 (Bdd.size man Bdd.one)

let test_sat_count () =
  let man = Bdd.create () in
  let x = Bdd.var_node man 0 and y = Bdd.var_node man 1 in
  check (Alcotest.float 0.001) "satcount x&y over 2 vars" 1.0
    (Bdd.sat_count man (Bdd.and_ man x y) ~nvars:2);
  check (Alcotest.float 0.001) "satcount x|y over 2 vars" 3.0
    (Bdd.sat_count man (Bdd.or_ man x y) ~nvars:2);
  check (Alcotest.float 0.001) "satcount x over 3 vars" 4.0 (Bdd.sat_count man x ~nvars:3);
  check (Alcotest.float 0.001) "satcount one" 8.0 (Bdd.sat_count man Bdd.one ~nvars:3)

let test_any_sat () =
  let man = Bdd.create () in
  let x = Bdd.var_node man 0 and y = Bdd.var_node man 1 in
  let f = Bdd.and_ man x (Bdd.not_ man y) in
  (match Bdd.any_sat man f with
  | None -> Alcotest.fail "expected a witness"
  | Some assignment ->
    let env v = try List.assoc v assignment with Not_found -> false in
    check bool "witness satisfies" true (Bdd.eval man f env));
  check bool "zero has no witness" true (Bdd.any_sat man Bdd.zero = None);
  check bool "one has the empty witness" true (Bdd.any_sat man Bdd.one = Some [])

let test_node_limit () =
  let man = Bdd.create () in
  let result =
    Bdd.with_limit man ~max_nodes:10 (fun () ->
        let f = ref Bdd.zero in
        for v = 0 to 15 do
          f := Bdd.xor_ man !f (Bdd.var_node man v)
        done;
        !f)
  in
  check bool "limit hit" true (result = Error `Node_limit);
  (* manager still usable and the quota lifted *)
  let x = Bdd.var_node man 20 and y = Bdd.var_node man 21 in
  let f = Bdd.and_ man x y in
  check bool "usable after limit" true (eval_mask man f (3 lsl 20))

let test_with_limit_success () =
  let man = Bdd.create () in
  let result =
    Bdd.with_limit man ~max_nodes:1_000 (fun () ->
        Bdd.and_ man (Bdd.var_node man 0) (Bdd.var_node man 1))
  in
  check bool "within quota" true (match result with Ok _ -> true | Error `Node_limit -> false)

let test_parity_linear () =
  let man = Bdd.create () in
  let n = 20 in
  let f = ref Bdd.zero in
  for v = 0 to n - 1 do
    f := Bdd.xor_ man !f (Bdd.var_node man v)
  done;
  check bool "parity BDD is linear" true (Bdd.size man !f <= 2 * n)

(* qcheck: random expressions vs direct evaluation *)
let nvars = 4
let build = Gen_util.build_bdd
let eval_expr = Gen_util.eval_expr
let qc_expr = Gen_util.qc_expr ~size:16 nvars

let bdd_matches_expr =
  QCheck.Test.make ~name:"BDD agrees with direct evaluation" ~count:300 qc_expr (fun e ->
      let man = Bdd.create () in
      let b = build man e in
      let rec go mask =
        mask >= 1 lsl nvars
        || eval_mask man b mask = eval_expr (fun v -> (mask lsr v) land 1 = 1) e
           && go (mask + 1)
      in
      go 0)

let bdd_canonical =
  QCheck.Test.make ~name:"semantically equal expressions share the node" ~count:200
    (QCheck.pair qc_expr qc_expr) (fun (e1, e2) ->
      let man = Bdd.create () in
      let b1 = build man e1 and b2 = build man e2 in
      semantically_equal man nvars b1 b2 = (b1 = b2))

let exists_set_equals_nested =
  QCheck.Test.make ~name:"multi-variable exists = nested single exists" ~count:150 qc_expr
    (fun e ->
      let man = Bdd.create () in
      let b = build man e in
      let joint = Bdd.exists man (fun v -> v = 0 || v = 2) b in
      let nested = Bdd.exists man (fun v -> v = 0) (Bdd.exists man (fun v -> v = 2) b) in
      joint = nested)

let quantifier_duality =
  QCheck.Test.make ~name:"forall = not exists not" ~count:150 qc_expr (fun e ->
      let man = Bdd.create () in
      let b = build man e in
      Bdd.forall man (fun v -> v = 1) b
      = Bdd.not_ man (Bdd.exists man (fun v -> v = 1) (Bdd.not_ man b)))

let exists_or_of_cofactors =
  QCheck.Test.make ~name:"exists v = restrict0 | restrict1" ~count:200 qc_expr (fun e ->
      let man = Bdd.create () in
      let b = build man e in
      let ex = Bdd.exists man (fun v -> v = 0) b in
      let expected =
        Bdd.or_ man (Bdd.restrict man b ~v:0 ~phase:false) (Bdd.restrict man b ~v:0 ~phase:true)
      in
      ex = expected)

let () =
  Alcotest.run "bdd"
    [
      ( "basics",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "and/or/xor/iff/implies" `Quick test_basic_ops;
          Alcotest.test_case "canonicity" `Quick test_canonicity;
          Alcotest.test_case "ite truth table" `Quick test_ite;
        ] );
      ( "quantification",
        [
          Alcotest.test_case "exists/forall" `Quick test_exists_forall;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "compose" `Quick test_compose;
        ] );
      ( "queries",
        [
          Alcotest.test_case "support and size" `Quick test_support_size;
          Alcotest.test_case "sat_count" `Quick test_sat_count;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
        ] );
      ( "limits",
        [
          Alcotest.test_case "node limit aborts" `Quick test_node_limit;
          Alcotest.test_case "with_limit success path" `Quick test_with_limit_success;
          Alcotest.test_case "parity stays linear" `Quick test_parity_linear;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest bdd_matches_expr;
          QCheck_alcotest.to_alcotest bdd_canonical;
          QCheck_alcotest.to_alcotest exists_or_of_cofactors;
          QCheck_alcotest.to_alcotest exists_set_equals_nested;
          QCheck_alcotest.to_alcotest quantifier_duality;
        ] );
    ]
