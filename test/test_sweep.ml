(* Merge-phase tests: simulation candidate classes, BDD sweeping, SAT
   merging with forward/backward strategies, and end-to-end semantic
   preservation of the substitutions. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

let semantically_equal aig nvars a b =
  let rec go mask =
    mask >= 1 lsl nvars || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
  in
  go 0

(* two structurally different builds of the same function, plus unrelated
   logic: the standard sweeping workload *)
let make_redundant_pair () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  (* xor built via (x|y) & ~(x&y) is the and_/or_ definition; build the
     mux form instead so strashing cannot identify them *)
  let xor1 = Aig.xor_ aig x y in
  let xor2 = Aig.or_ aig (Aig.and_ aig x (Aig.not_ y)) (Aig.and_ aig (Aig.not_ x) y) in
  let f = Aig.and_ aig xor1 z in
  let g = Aig.and_ aig xor2 z in
  (aig, f, g, xor1, xor2)

let test_sim_candidates () =
  let aig, f, g, xor1, xor2 = make_redundant_pair () in
  let prng = Util.Prng.create 1 in
  let sim = Sweep.Sim.create aig ~roots:[ f; g ] ~rounds:4 ~prng in
  check bool "equivalent nodes share a class" true (Sweep.Sim.same_class sim xor1 xor2);
  check bool "complement detected" true (Sweep.Sim.same_class sim xor1 (Aig.not_ (Aig.not_ xor2)));
  check bool "distinct nodes distinguished eventually" true
    (not (Sweep.Sim.same_class sim f xor1) || Aig.size aig f = Aig.size aig xor1);
  let classes = Sweep.Sim.classes sim in
  check bool "at least one candidate class" true (List.length classes >= 1);
  List.iter
    (fun members -> check bool "classes have >= 2 members" true (List.length members >= 2))
    classes

let test_sim_refine_splits () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  (* x and y look alike only until a pattern separates them; force the
     degenerate 1-round case by refining with a distinguishing assignment *)
  let f = Aig.and_ aig x y in
  let prng = Util.Prng.create 2 in
  let sim = Sweep.Sim.create aig ~roots:[ f ] ~rounds:1 ~prng in
  let before = Sweep.Sim.refinements sim in
  ignore (Sweep.Sim.refine sim (fun v -> v = 0));
  check int "refinement counted" (before + 1) (Sweep.Sim.refinements sim);
  check bool "x and y distinguished by the pattern" false (Sweep.Sim.same_class sim x y)

let test_sim_constant_class () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 in
  let zero = Aig.and_ aig x (Aig.not_ x) in
  check int "strash folds the obvious constant" Aig.false_ zero;
  (* a constant hidden too deep for the two-level rewrite rules *)
  let y = Aig.var aig 1 in
  let z = Aig.var aig 2 in
  let a = Aig.and_ aig (Aig.and_ aig x y) z in
  let b = Aig.and_ aig (Aig.and_ aig x (Aig.not_ y)) z in
  let hidden_zero = Aig.and_ aig a b in
  check bool "front-end did not fold it" false (Aig.is_const hidden_zero);
  let prng = Util.Prng.create 3 in
  let sim = Sweep.Sim.create aig ~roots:[ hidden_zero ] ~rounds:4 ~prng in
  check bool "hidden constant classes with the constant node" true
    (Sweep.Sim.same_class sim hidden_zero Aig.false_)

(* ---------- bdd sweeping ---------- *)

let test_bdd_sweep_finds_merges () =
  let aig, f, g, _, _ = make_redundant_pair () in
  let res = Sweep.Bdd_sweep.run aig ~roots:[ f; g ] ~max_nodes:10_000 in
  check bool "not aborted" false res.Sweep.Bdd_sweep.aborted;
  check bool "found merges" true (List.length res.Sweep.Bdd_sweep.merges > 0);
  (* every reported merge is a true equivalence *)
  List.iter
    (fun (n, rep) ->
      check bool "merge is semantically valid" true
        (semantically_equal aig 3 (Aig.lit_of_node n) rep))
    res.Sweep.Bdd_sweep.merges;
  (* representatives always precede the merged node *)
  List.iter
    (fun (n, rep) -> check bool "acyclic direction" true (Aig.node_of_lit rep < n))
    res.Sweep.Bdd_sweep.merges

let test_bdd_sweep_quota () =
  let aig = Aig.create () in
  (* a multiplier-like cone blows past a tiny quota *)
  let xs = List.init 6 (Aig.var aig) in
  let f =
    List.fold_left
      (fun acc x -> Aig.xor_ aig (Aig.and_ aig acc x) (Aig.or_ aig acc (Aig.not_ x)))
      (List.hd xs) (List.tl xs)
  in
  let res = Sweep.Bdd_sweep.run aig ~roots:[ f ] ~max_nodes:8 in
  check bool "quota abort reported" true res.Sweep.Bdd_sweep.aborted

let test_bdd_sweep_constant_detection () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  (* two-level rules catch shallow contradictions, so bury it one level
     deeper: (x&y&z) & (x&~y&z) = 0 with the conflict across cousins *)
  let a = Aig.and_ aig (Aig.and_ aig x y) z in
  let b = Aig.and_ aig (Aig.and_ aig x (Aig.not_ y)) z in
  let hidden_zero = Aig.and_ aig a b in
  check bool "not folded by the front-end" false (Aig.is_const hidden_zero);
  let res = Sweep.Bdd_sweep.run aig ~roots:[ hidden_zero ] ~max_nodes:10_000 in
  let merged_to_const =
    List.exists
      (fun (n, rep) -> n = Aig.node_of_lit hidden_zero && Aig.is_const rep)
      res.Sweep.Bdd_sweep.merges
  in
  check bool "hidden constant merged to the constant" true merged_to_const

(* ---------- full sweeper ---------- *)

let run_sweeper ?config aig roots =
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 7 in
  Sweep.Sweeper.run ?config aig checker ~prng ~roots

let test_sweeper_end_to_end () =
  let aig, f, g, _, _ = make_redundant_pair () in
  let repl, report = run_sweeper aig [ f; g ] in
  check bool "some merges found" true (report.Sweep.Sweeper.total_merges > 0);
  let f' = Aig.rebuild aig ~repl f and g' = Aig.rebuild aig ~repl g in
  check bool "f preserved" true (semantically_equal aig 3 f f');
  check bool "g preserved" true (semantically_equal aig 3 g g');
  (* the two equivalent functions collapse to the same literal *)
  check int "f and g merged" f' g'

let test_sweeper_sat_only () =
  (* disable BDD sweeping: SAT must find the merges alone *)
  let aig, f, g, _, _ = make_redundant_pair () in
  let config = { Sweep.Sweeper.default with bdd_node_limit = 0 } in
  let repl, report = run_sweeper ~config aig [ f; g ] in
  check int "no bdd merges" 0 report.Sweep.Sweeper.bdd_merges;
  check bool "sat merges found" true (report.Sweep.Sweeper.sat_merges > 0);
  check int "f and g merged by SAT" (Aig.rebuild aig ~repl f) (Aig.rebuild aig ~repl g)

let test_sweeper_directions_agree () =
  let build () =
    let aig = Aig.create () in
    let xs = List.init 4 (Aig.var aig) in
    let sum1 =
      List.fold_left (Aig.xor_ aig) Aig.false_ xs
    in
    let sum2 =
      List.fold_right (fun x acc -> Aig.xor_ aig acc x) xs Aig.false_
    in
    (aig, Aig.and_ aig sum1 (List.hd xs), Aig.and_ aig sum2 (List.hd xs))
  in
  let run direction =
    let aig, f, g = build () in
    let config = { Sweep.Sweeper.default with sat = Some direction; bdd_node_limit = 0 } in
    let repl, _ = run_sweeper ~config aig [ f; g ] in
    let f' = Aig.rebuild aig ~repl f and g' = Aig.rebuild aig ~repl g in
    (aig, f, f', g, g')
  in
  let aig_f, f, f', g, g' = run Sweep.Sweeper.Forward in
  check bool "forward: f preserved" true (semantically_equal aig_f 4 f f');
  check bool "forward: g preserved" true (semantically_equal aig_f 4 g g');
  check int "forward merges the roots" f' g';
  let aig_b, f, f', g, g' = run Sweep.Sweeper.Backward in
  check bool "backward: f preserved" true (semantically_equal aig_b 4 f f');
  check bool "backward: g preserved" true (semantically_equal aig_b 4 g g');
  check int "backward merges the roots" f' g'

let test_sweeper_no_false_merges () =
  (* functions that agree on most but not all inputs must stay distinct *)
  let aig = Aig.create () in
  let xs = List.init 4 (Aig.var aig) in
  let conj = Aig.and_list aig xs in
  let almost = Aig.and_list aig (List.tl xs) in
  let repl, _ = run_sweeper aig [ conj; almost ] in
  let c' = Aig.rebuild aig ~repl conj and a' = Aig.rebuild aig ~repl almost in
  check bool "conj preserved" true (semantically_equal aig 4 conj c');
  check bool "almost preserved" true (semantically_equal aig 4 almost a');
  check bool "no false merge" true (c' <> a')

let test_sweeper_report_consistency () =
  let aig, f, g, _, _ = make_redundant_pair () in
  let _, report = run_sweeper aig [ f; g ] in
  check bool "cone size positive" true (report.Sweep.Sweeper.cone_size > 0);
  check bool "calls >= merges" true
    (report.Sweep.Sweeper.sat_calls >= report.Sweep.Sweeper.sat_merges);
  check bool "total >= sat merges" true
    (report.Sweep.Sweeper.total_merges >= report.Sweep.Sweeper.sat_merges)

let test_sweep_lits_wrapper () =
  let aig, f, g, _, _ = make_redundant_pair () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 7 in
  let lits, _ = Sweep.Sweeper.sweep_lits aig checker ~prng [ f; g ] in
  match lits with
  | [ f'; g' ] ->
    check bool "wrapper preserves f" true (semantically_equal aig 3 f f');
    check bool "wrapper preserves g" true (semantically_equal aig 3 g g')
  | _ -> Alcotest.fail "expected two literals"

(* ---------- property: sweeping never changes semantics ---------- *)

let nvars = 4
let build = Gen_util.build_aig
let qc_pair = Gen_util.qc_pair nvars

let sweeping_preserves_semantics =
  QCheck.Test.make ~name:"sweeping preserves both roots" ~count:60 qc_pair (fun (e1, e2) ->
      let aig = Aig.create () in
      let f = build aig e1 and g = build aig e2 in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 9 in
      let repl, _ = Sweep.Sweeper.run aig checker ~prng ~roots:[ f; g ] in
      semantically_equal aig nvars f (Aig.rebuild aig ~repl f)
      && semantically_equal aig nvars g (Aig.rebuild aig ~repl g))

let merges_are_equivalences =
  QCheck.Test.make ~name:"every individual merge is a true equivalence" ~count:60 qc_pair
    (fun (e1, e2) ->
      let aig = Aig.create () in
      let f = build aig e1 and g = build aig e2 in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 11 in
      let repl, _ = Sweep.Sweeper.run aig checker ~prng ~roots:[ f; g ] in
      List.for_all
        (fun n ->
          let r = repl n in
          r = Aig.lit_of_node n || semantically_equal aig nvars (Aig.lit_of_node n) r)
        (Aig.cone aig [ f; g ]))

let () =
  Alcotest.run "sweep"
    [
      ( "simulation",
        [
          Alcotest.test_case "candidate classes" `Quick test_sim_candidates;
          Alcotest.test_case "refinement splits" `Quick test_sim_refine_splits;
          Alcotest.test_case "constant candidates" `Quick test_sim_constant_class;
        ] );
      ( "bdd sweeping",
        [
          Alcotest.test_case "finds true merges" `Quick test_bdd_sweep_finds_merges;
          Alcotest.test_case "quota abort" `Quick test_bdd_sweep_quota;
          Alcotest.test_case "constant detection" `Quick test_bdd_sweep_constant_detection;
        ] );
      ( "sweeper",
        [
          Alcotest.test_case "end to end" `Quick test_sweeper_end_to_end;
          Alcotest.test_case "sat-only configuration" `Quick test_sweeper_sat_only;
          Alcotest.test_case "forward and backward agree" `Quick test_sweeper_directions_agree;
          Alcotest.test_case "no false merges" `Quick test_sweeper_no_false_merges;
          Alcotest.test_case "report consistency" `Quick test_sweeper_report_consistency;
          Alcotest.test_case "sweep_lits wrapper" `Quick test_sweep_lits_wrapper;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest sweeping_preserves_semantics;
          QCheck_alcotest.to_alcotest merges_are_equivalences;
        ] );
    ]
