(* Timeline tracing: the disabled-path contract, ring wraparound
   semantics, begin/end balance repair at export, the Chrome trace_event
   schema of the JSON output, and an end-to-end traced traversal. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* Every test toggles the global tracer; reset on entry, disarm on exit
   so later suites run uninstrumented. *)
let with_trace ?limit enabled f =
  (* reset without ~limit keeps the current ring size, so restore the
     entry size on exit — a small-ring test must not shrink later ones *)
  let saved_limit = Obs.Trace_events.limit () in
  Obs.Trace_events.reset ?limit ();
  Obs.Trace_events.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace_events.set_enabled false;
      Obs.Trace_events.reset ~limit:saved_limit ())
    f

(* ---------- recording ---------- *)

let test_disabled_records_nothing () =
  with_trace false @@ fun () ->
  Obs.Trace_events.begin_ "t.phase";
  Obs.Trace_events.begin_args "t.phase" "k" 1;
  Obs.Trace_events.end_ "t.phase";
  Obs.Trace_events.end_args "t.phase" "k" 1;
  Obs.Trace_events.instant "t.mark";
  Obs.Trace_events.instant_args "t.mark" "k" 1;
  Obs.Trace_events.sample "t.gauge" 42;
  check int "nothing recorded" 0 (Obs.Trace_events.recorded ());
  check (Alcotest.list string) "no events" []
    (List.map (fun e -> e.Obs.Trace_events.ev_name) (Obs.Trace_events.events ()))

let test_event_fields () =
  with_trace true @@ fun () ->
  Obs.Trace_events.begin_args "t.phase" "frame" 3;
  Obs.Trace_events.end_args "t.phase" "size" 99;
  Obs.Trace_events.instant "t.mark";
  Obs.Trace_events.sample "t.gauge" 42;
  match Obs.Trace_events.events () with
  | [ b; e; i; c ] ->
    check string "begin name" "t.phase" b.Obs.Trace_events.ev_name;
    check Alcotest.char "begin phase" 'B' b.Obs.Trace_events.ev_ph;
    check string "begin arg key" "frame" b.Obs.Trace_events.ev_arg_key;
    check int "begin arg value" 3 b.Obs.Trace_events.ev_arg_value;
    check Alcotest.char "end phase" 'E' e.Obs.Trace_events.ev_ph;
    check string "end arg key" "size" e.Obs.Trace_events.ev_arg_key;
    check Alcotest.char "instant phase" 'i' i.Obs.Trace_events.ev_ph;
    check string "instant carries no arg" "" i.Obs.Trace_events.ev_arg_key;
    check Alcotest.char "sample phase" 'C' c.Obs.Trace_events.ev_ph;
    check int "sample value" 42 c.Obs.Trace_events.ev_arg_value;
    check bool "timestamps non-decreasing" true
      (b.Obs.Trace_events.ev_ts <= e.Obs.Trace_events.ev_ts
      && e.Obs.Trace_events.ev_ts <= i.Obs.Trace_events.ev_ts
      && i.Obs.Trace_events.ev_ts <= c.Obs.Trace_events.ev_ts)
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs)

let test_with_phase () =
  with_trace true @@ fun () ->
  let r = Obs.Trace_events.with_phase "t.wrapped" (fun () -> 17) in
  check int "returns f's result" 17 r;
  (try Obs.Trace_events.with_phase "t.raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  let phs = List.map (fun e -> e.Obs.Trace_events.ev_ph) (Obs.Trace_events.events ()) in
  check (Alcotest.list Alcotest.char) "closed on return and on raise" [ 'B'; 'E'; 'B'; 'E' ] phs

(* ---------- ring wraparound ---------- *)

let test_wraparound_keeps_newest () =
  with_trace ~limit:8 true @@ fun () ->
  for i = 1 to 20 do
    Obs.Trace_events.instant_args "t.tick" "i" i
  done;
  check int "limit honoured" 8 (Obs.Trace_events.limit ());
  check int "all recordings counted" 20 (Obs.Trace_events.recorded ());
  check int "overwritten ones reported dropped" 12 (Obs.Trace_events.dropped ());
  let kept = List.map (fun e -> e.Obs.Trace_events.ev_arg_value) (Obs.Trace_events.events ()) in
  check (Alcotest.list int) "newest events survive, oldest-first" [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    kept

let test_reset_clears () =
  with_trace ~limit:8 true @@ fun () ->
  Obs.Trace_events.instant "t.old";
  Obs.Trace_events.reset ();
  Obs.Trace_events.set_enabled true;
  check int "recorded cleared" 0 (Obs.Trace_events.recorded ());
  Obs.Trace_events.instant "t.new";
  match Obs.Trace_events.events () with
  | [ e ] -> check string "only the new event" "t.new" e.Obs.Trace_events.ev_name
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ---------- export ---------- *)

let trace_event_list json =
  match Obs.Json.member "traceEvents" json with
  | Some (Obs.Json.List evs) -> evs
  | _ -> Alcotest.fail "no traceEvents array"

let test_json_chrome_schema () =
  with_trace true @@ fun () ->
  Obs.Trace_events.begin_args "t.phase" "frame" 1;
  Obs.Trace_events.instant "t.mark";
  Obs.Trace_events.end_ "t.phase";
  Obs.Trace_events.sample "t.gauge" 7;
  let json = Obs.Trace_events.to_json () in
  (* the serialized export must parse with the in-repo parser (exact
     structural equality is not required — floats serialize at 9
     significant digits) *)
  (match Obs.Json.of_string (Obs.Json.to_string json) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "export does not parse: %s" msg);
  check bool "displayTimeUnit present" true
    (Obs.Json.member "displayTimeUnit" json = Some (Obs.Json.String "ms"));
  let evs = trace_event_list json in
  check int "all events exported" 4 (List.length evs);
  (* chrome://tracing / Perfetto required keys on every event *)
  List.iter
    (fun ev ->
      List.iter
        (fun key ->
          check bool (Printf.sprintf "event has %S" key) true
            (Obs.Json.member key ev <> None))
        [ "name"; "ph"; "ts"; "pid"; "tid" ])
    evs;
  (* counter samples must carry their value in args *)
  let counter =
    List.find (fun ev -> Obs.Json.member "ph" ev = Some (Obs.Json.String "C")) evs
  in
  (match Obs.Json.member "args" counter with
  | Some args -> check bool "counter value in args" true (Obs.Json.member "value" args <> None)
  | None -> Alcotest.fail "counter sample without args")

let phases_of evs =
  List.filter_map
    (fun ev ->
      match (Obs.Json.member "name" ev, Obs.Json.member "ph" ev) with
      | Some (Obs.Json.String n), Some (Obs.Json.String p) -> Some (n, p)
      | _ -> None)
    evs

let test_export_balances_unclosed_begin () =
  with_trace true @@ fun () ->
  Obs.Trace_events.begin_ "t.outer";
  Obs.Trace_events.begin_ "t.inner";
  Obs.Trace_events.end_ "t.inner";
  (* t.outer never ends — the process stopped mid-phase *)
  let evs = trace_event_list (Obs.Trace_events.to_json ()) in
  let opens = List.filter (fun (_, p) -> p = "B") (phases_of evs) in
  let closes = List.filter (fun (_, p) -> p = "E") (phases_of evs) in
  check int "every begin gets an end" (List.length opens) (List.length closes);
  check bool "synthesized close for the unclosed begin" true
    (List.mem ("t.outer", "E") (phases_of evs))

let test_export_drops_orphaned_end () =
  (* wraparound ate the begin: the export must not ship a bare E, which
     corrupts the viewer's stack *)
  with_trace ~limit:2 true @@ fun () ->
  Obs.Trace_events.begin_ "t.lost";
  Obs.Trace_events.instant "t.fill1";
  Obs.Trace_events.instant "t.fill2";
  (* ring now holds fill1,fill2 — the begin is gone *)
  Obs.Trace_events.end_ "t.lost";
  let evs = trace_event_list (Obs.Trace_events.to_json ()) in
  check bool "orphaned end dropped" false (List.mem ("t.lost", "E") (phases_of evs))

let test_write_creates_parents () =
  with_trace true @@ fun () ->
  Obs.Trace_events.instant "t.mark";
  let dir = Filename.temp_file "cbq_trace" "" in
  Sys.remove dir;
  let path = Filename.concat (Filename.concat dir "deep") "trace.json" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (Filename.dirname path) then Sys.rmdir (Filename.dirname path);
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      Obs.Trace_events.write path;
      match Obs.Json.of_file path with
      | Ok json -> check int "one event on disk" 1 (List.length (trace_event_list json))
      | Error msg -> Alcotest.failf "written file does not parse: %s" msg)

(* ---------- end to end ---------- *)

let test_traced_traversal () =
  with_trace true @@ fun () ->
  let model, _ = Circuits.Registry.build "counter" (Some 3) in
  let config = { Cbq.Reachability.default with make_trace = false } in
  ignore (Cbq.Reachability.run ~config model);
  let names =
    List.sort_uniq compare
      (List.map (fun e -> e.Obs.Trace_events.ev_name) (Obs.Trace_events.events ()))
  in
  List.iter
    (fun expected ->
      check bool (Printf.sprintf "traversal emitted %S" expected) true
        (List.mem expected names))
    [ "reach.frame"; "preimage.compute"; "quantify.var"; "sweep.run"; "sat.solve" ];
  (* per-name begin/end balance: the engines close every phase they open *)
  let tally = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let d =
        match e.Obs.Trace_events.ev_ph with 'B' -> 1 | 'E' -> -1 | _ -> 0
      in
      let name = e.Obs.Trace_events.ev_name in
      Hashtbl.replace tally name (d + Option.value (Hashtbl.find_opt tally name) ~default:0))
    (Obs.Trace_events.events ());
  Hashtbl.iter
    (fun name d -> check int (Printf.sprintf "%s begins = ends" name) 0 d)
    tally;
  check int "no events lost on the default ring" 0 (Obs.Trace_events.dropped ())

let () =
  Alcotest.run "trace"
    [
      ( "recording",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "event fields" `Quick test_event_fields;
          Alcotest.test_case "with_phase closes on raise" `Quick test_with_phase;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps newest" `Quick test_wraparound_keeps_newest;
          Alcotest.test_case "reset clears" `Quick test_reset_clears;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace_event schema" `Quick test_json_chrome_schema;
          Alcotest.test_case "unclosed begin gets an end" `Quick
            test_export_balances_unclosed_begin;
          Alcotest.test_case "orphaned end is dropped" `Quick test_export_drops_orphaned_end;
          Alcotest.test_case "write creates parent dirs" `Quick test_write_creates_parents;
        ] );
      ( "integration",
        [ Alcotest.test_case "traced traversal" `Quick test_traced_traversal ] );
    ]
