(* Resource sampler: series shape (>= 2 points even for instant runs),
   monotonic timestamps and cumulative counters, governor budget
   fields, and the trace counter-row replay. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false; Obs.reset ()) f

(* run a sampler around [body], return the parsed timeseries section *)
let sampled ?limits ?(interval = 0.005) body =
  let s = Obs.Sampler.start ~interval ?limits () in
  body ();
  Obs.Sampler.stop s;
  match Obs.Json.member "timeseries" (Obs.report ()) with
  | Some ts -> ts
  | None -> Alcotest.fail "report lacks the timeseries section"

let points ts =
  match Obs.Json.member "points" ts with
  | Some (Obs.Json.List ps) -> ps
  | _ -> Alcotest.fail "timeseries lacks points"

let float_member name p =
  match Obs.Json.member name p with
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | _ -> Alcotest.fail (Printf.sprintf "point lacks %s" name)

let int_member name p =
  match Obs.Json.member name p with
  | Some (Obs.Json.Int i) -> i
  | _ -> Alcotest.fail (Printf.sprintf "point lacks %s" name)

let test_instant_run_has_two_points () =
  with_obs @@ fun () ->
  let ts = sampled (fun () -> ()) in
  check bool "at least start + stop points" true (List.length (points ts) >= 2);
  match Obs.Json.member "samples" ts with
  | Some (Obs.Json.Int n) -> check int "samples field agrees" (List.length (points ts)) n
  | _ -> Alcotest.fail "timeseries lacks samples"

let test_monotonic_timestamps_and_counters () =
  with_obs @@ fun () ->
  let c = Obs.counter "sat.conflicts" in
  let ts =
    sampled (fun () ->
        (* busy-work across several intervals, only ever increasing *)
        let w = Util.Stopwatch.start () in
        while Util.Stopwatch.elapsed w < 0.05 do
          Obs.incr c
        done)
  in
  let ps = points ts in
  check bool "several samples over 50ms at 5ms" true (List.length ps >= 3);
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      check bool "timestamps non-decreasing" true (float_member "t" a <= float_member "t" b);
      let ca =
        match Obs.Json.member "counters" a with
        | Some cs -> int_member "sat.conflicts" cs
        | None -> Alcotest.fail "point lacks counters"
      and cb =
        match Obs.Json.member "counters" b with
        | Some cs -> int_member "sat.conflicts" cs
        | None -> Alcotest.fail "point lacks counters"
      in
      check bool "counter deltas non-negative" true (ca <= cb);
      pairs rest
    | _ -> ()
  in
  pairs ps;
  (* the closing sample reads the final value exactly *)
  (match List.rev ps with
  | last :: _ -> (
    match Obs.Json.member "counters" last with
    | Some cs -> check int "final sample exact" (Obs.value c) (int_member "sat.conflicts" cs)
    | None -> Alcotest.fail "final point lacks counters")
  | [] -> ());
  check bool "heap words recorded" true
    (List.for_all (fun p -> Obs.Json.member "heap_words" p <> None) ps)

let test_budget_fields_with_governor () =
  with_obs @@ fun () ->
  let limits = Util.Limits.create ~timeout:60.0 ~max_conflicts:5_000 () in
  Util.Limits.charge_conflicts limits 100;
  let ts = sampled ~limits (fun () -> Util.Limits.charge_conflicts limits 900) in
  let ps = points ts in
  let budget p =
    match Obs.Json.member "budget" p with
    | Some b -> b
    | None -> Alcotest.fail "governed point lacks budget"
  in
  List.iter
    (fun p ->
      let b = budget p in
      check bool "deadline field present" true (Obs.Json.member "time_left_s" b <> None);
      check bool "conflict pool present" true (Obs.Json.member "conflicts_left" b <> None))
    ps;
  let first = budget (List.hd ps) and last = budget (List.nth ps (List.length ps - 1)) in
  check int "pool before the body" 4_900 (int_member "conflicts_left" first);
  check int "pool after the body" 4_000 (int_member "conflicts_left" last);
  check bool "deadline only shrinks" true
    (float_member "time_left_s" last <= float_member "time_left_s" first)

let test_unlimited_governor_omits_budget () =
  with_obs @@ fun () ->
  let ts = sampled ~limits:Util.Limits.unlimited (fun () -> ()) in
  List.iter
    (fun p -> check bool "no budget keys when nothing is bounded" true
        (Obs.Json.member "budget" p = None))
    (points ts)

let test_trace_replay () =
  with_obs @@ fun () ->
  Obs.Trace_events.reset ();
  Obs.Trace_events.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace_events.set_enabled false;
      Obs.Trace_events.reset ())
    (fun () ->
      let ts = sampled (fun () -> Unix.sleepf 0.02) in
      let n_points = List.length (points ts) in
      let rows =
        List.filter
          (fun e ->
            e.Obs.Trace_events.ev_ph = 'C'
            && String.length e.Obs.Trace_events.ev_name > 8
            && String.sub e.Obs.Trace_events.ev_name 0 8 = "sampler.")
          (Obs.Trace_events.events ())
      in
      check bool "counter rows replayed into the trace" true (List.length rows >= n_points);
      let tss = List.map (fun e -> e.Obs.Trace_events.ev_ts) rows in
      check bool "replayed timestamps non-decreasing" true
        (List.for_all2 ( <= ) tss (List.tl tss @ [ infinity ]));
      (* the trace JSON stays well-formed with replayed rows in it *)
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Trace_events.to_json ())) with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("trace with sampler rows unparsable: " ^ msg))

let () =
  Alcotest.run "sampler"
    [
      ( "sampler",
        [
          Alcotest.test_case "instant run yields two points" `Quick
            test_instant_run_has_two_points;
          Alcotest.test_case "monotone timestamps and counters" `Quick
            test_monotonic_timestamps_and_counters;
          Alcotest.test_case "governor budgets in every point" `Quick
            test_budget_fields_with_governor;
          Alcotest.test_case "unlimited governor omits budget" `Quick
            test_unlimited_governor_omits_budget;
          Alcotest.test_case "trace counter-row replay" `Quick test_trace_replay;
        ] );
    ]
