(* Core-library tests: quantification (against the BDD oracle and the
   definition), partial quantification, pre-image, unrolling, traces, and
   the full backward-reachability engine against the family oracles. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

let semantically_equal aig nvars a b =
  let rec go mask =
    mask >= 1 lsl nvars || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
  in
  go 0

let setup () =
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 21 in
  (aig, checker, prng)

(* ---------- quantify ---------- *)

let test_quantify_definition () =
  let aig, checker, prng = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.or_ aig (Aig.and_ aig x y) (Aig.and_ aig (Aig.not_ x) z) in
  let result, report = Cbq.Quantify.one aig checker ~prng f 0 in
  (match result with
  | Ok q ->
    (* ∃x.f = y | z *)
    check bool "exists x" true (semantically_equal aig 3 q (Aig.or_ aig y z));
    check bool "variable gone" false (Aig.depends_on aig q 0)
  | Error _ -> Alcotest.fail "unexpected abort");
  check bool "report sizes sane" true
    (report.Cbq.Quantify.size_cof0 >= 0 && report.Cbq.Quantify.size_naive >= 0)

let test_quantify_free_variable () =
  let aig, checker, prng = setup () in
  let y = Aig.var aig 1 in
  let result, report = Cbq.Quantify.one aig checker ~prng y 0 in
  check bool "free variable is identity" true (result = Ok y);
  check bool "not aborted" false report.Cbq.Quantify.aborted

let test_quantify_to_constant () =
  let aig, checker, prng = setup () in
  let x = Aig.var aig 0 in
  (* ∃x. x = true *)
  (match Cbq.Quantify.one aig checker ~prng x 0 with
  | Ok q, _ -> check int "exists x. x" Aig.true_ q
  | Error _, _ -> Alcotest.fail "abort");
  (* ∃x. x & y = y *)
  let y = Aig.var aig 1 in
  match Cbq.Quantify.one aig checker ~prng (Aig.and_ aig x y) 0 with
  | Ok q, _ -> check int "exists x. x&y" y q
  | Error _, _ -> Alcotest.fail "abort"

let test_quantify_abort_budget () =
  let aig, checker, prng = setup () in
  (* a function whose quantification genuinely grows: parity-of-products *)
  let xs = List.init 8 (Aig.var aig) in
  let f =
    match xs with
    | x0 :: rest ->
      List.fold_left
        (fun acc x -> Aig.xor_ aig acc (Aig.and_ aig x0 x))
        x0 rest
    | [] -> assert false
  in
  let config =
    { Cbq.Quantify.default with growth_limit = 0.0; growth_slack = 0; use_dontcare = false }
  in
  let result, report = Cbq.Quantify.one ~config aig checker ~prng f 0 in
  (match result with
  | Error naive ->
    (* the rejected literal is still a correct quantification *)
    check bool "rejected result is still ∃x.f" true
      (semantically_equal aig 8 naive
         (Aig.or_ aig
            (Aig.cofactor aig f ~v:0 ~phase:false)
            (Aig.cofactor aig f ~v:0 ~phase:true)))
  | Ok q ->
    (* zero budget can still succeed if the result is constant *)
    check bool "only constants fit a zero budget" true (Aig.is_const q));
  ignore report

let test_quantify_all_partition () =
  let aig, checker, prng = setup () in
  let xs = List.init 6 (Aig.var aig) in
  let f = Aig.and_list aig xs in
  let r = Cbq.Quantify.all aig checker ~prng f ~vars:[ 0; 2; 4 ] in
  check int "all eliminated" 3 (List.length r.Cbq.Quantify.eliminated);
  check (Alcotest.list int) "none kept" [] r.Cbq.Quantify.kept;
  (* ∃x0,x2,x4. conj = x1 & x3 & x5 *)
  let expected = Aig.and_list aig [ List.nth xs 1; List.nth xs 3; List.nth xs 5 ] in
  check bool "remaining conjunction" true (semantically_equal aig 6 r.Cbq.Quantify.lit expected);
  (* eliminated variables are really gone *)
  List.iter
    (fun v -> check bool "support clean" false (Aig.depends_on aig r.Cbq.Quantify.lit v))
    [ 0; 2; 4 ]

let test_quantify_all_partial () =
  let aig, checker, prng = setup () in
  let xs = List.init 8 (Aig.var aig) in
  let x0 = List.hd xs in
  (* x0 entangled with everything: expensive; x7 trivial *)
  let f =
    Aig.and_ aig
      (List.fold_left (fun acc x -> Aig.xor_ aig acc (Aig.and_ aig x0 x)) x0 (List.tl xs))
      (List.nth xs 7)
  in
  let config =
    { Cbq.Quantify.default with growth_limit = 0.0; growth_slack = 2; use_dontcare = false;
      greedy_order = false }
  in
  let r = Cbq.Quantify.all ~config aig checker ~prng f ~vars:[ 0 ] in
  (* with the tiny budget the hard variable should be kept *)
  check bool "hard variable kept or result tiny" true
    (r.Cbq.Quantify.kept = [ 0 ] || Aig.size aig r.Cbq.Quantify.lit <= 2)

let test_naive_config_never_aborts () =
  let aig, checker, prng = setup () in
  let xs = List.init 6 (Aig.var aig) in
  let f = List.fold_left (Aig.xor_ aig) Aig.false_ xs in
  let naive =
    Cbq.Quantify.all ~config:Cbq.Quantify.naive_config aig checker ~prng f
      ~vars:[ 0; 1; 2 ]
  in
  check (Alcotest.list int) "nothing kept" [] naive.Cbq.Quantify.kept;
  (* ∃ of any parity variable is the constant true; the naive config only
     guarantees semantic correctness... *)
  (match Cnf.Checker.equal checker naive.Cbq.Quantify.lit Aig.true_ with
  | Cnf.Checker.Yes -> ()
  | Cnf.Checker.No | Cnf.Checker.Maybe -> Alcotest.fail "naive result not equivalent to true");
  (* ...while the full pipeline detects the constant structurally *)
  let full = Cbq.Quantify.all aig checker ~prng f ~vars:[ 0; 1; 2 ] in
  check int "full pipeline collapses parity to true" Aig.true_ full.Cbq.Quantify.lit

(* quantification against the BDD oracle on random expressions *)
let nvars = 4
let build_aig = Gen_util.build_aig
let build_bdd = Gen_util.build_bdd
let qc_expr = Gen_util.qc_expr nvars

let quantify_matches_bdd_oracle =
  QCheck.Test.make ~name:"CBQ quantification = BDD exists" ~count:80 qc_expr (fun e ->
      let aig = Aig.create () in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 29 in
      let f = build_aig aig e in
      let man = Bdd.create () in
      let fb = build_bdd man e in
      let r = Cbq.Quantify.all aig checker ~prng f ~vars:[ 0; 1 ] in
      r.Cbq.Quantify.kept = []
      &&
      let qb = Bdd.exists man (fun v -> v <= 1) fb in
      let rec go mask =
        mask >= 1 lsl nvars
        || eval_mask aig r.Cbq.Quantify.lit mask
           = Bdd.eval man qb (fun v -> (mask lsr v) land 1 = 1)
           && go (mask + 1)
      in
      go 0)

let quantified_support_clean =
  QCheck.Test.make ~name:"eliminated variables leave the support" ~count:80 qc_expr (fun e ->
      let aig = Aig.create () in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 31 in
      let f = build_aig aig e in
      let r = Cbq.Quantify.all aig checker ~prng f ~vars:[ 0; 1; 2 ] in
      List.for_all (fun v -> not (Aig.depends_on aig r.Cbq.Quantify.lit v))
        r.Cbq.Quantify.eliminated)

(* ---------- unroll ---------- *)

let test_unroll_counter () =
  let m = Circuits.Families.counter ~bits:3 in
  let aig = Netlist.Model.aig m in
  let u = Cbq.Unroll.create m in
  (* state at frame 0 is the all-zero init *)
  List.iter
    (fun v -> check int "frame-0 state" Aig.false_ (Cbq.Unroll.state_lit u ~frame:0 v))
    (Netlist.Model.state_vars m);
  (* frame 2 state depends exactly on the two first frame inputs *)
  let s2 = Cbq.Unroll.state_lit u ~frame:2 (List.hd (Netlist.Model.state_vars m)) in
  let support = Aig.support aig s2 in
  let frame0 = List.map snd (Cbq.Unroll.frame_inputs u ~frame:0) in
  let frame1 = List.map snd (Cbq.Unroll.frame_inputs u ~frame:1) in
  check bool "support within frame inputs" true
    (List.for_all (fun v -> List.mem v (frame0 @ frame1)) support);
  (* bad_at 0 is unsatisfiable (counter starts at 0), bad_at 7 is not *)
  let checker = Cnf.Checker.create aig in
  check bool "bad at 0 impossible" true
    (Cnf.Checker.satisfiable checker [ Cbq.Unroll.bad_at u 0 ] = Cnf.Checker.No);
  check bool "bad at 6 impossible" true
    (Cnf.Checker.satisfiable checker [ Cbq.Unroll.bad_at u 6 ] = Cnf.Checker.No);
  check bool "bad at 7 reachable" true
    (Cnf.Checker.satisfiable checker [ Cbq.Unroll.bad_at u 7 ] = Cnf.Checker.Yes)

let test_unroll_trace_from_model () =
  let m = Circuits.Families.counter ~bits:3 in
  let aig = Netlist.Model.aig m in
  let u = Cbq.Unroll.create m in
  let checker = Cnf.Checker.create aig in
  (match Cnf.Checker.satisfiable checker [ Cbq.Unroll.bad_at u 7 ] with
  | Cnf.Checker.Yes ->
    let t = Cbq.Unroll.trace_from_model u ~depth:7 ~value:(Cnf.Checker.model_var checker) in
    check int "trace length" 7 (Cbq.Trace.length t);
    check bool "trace is genuine" true (Cbq.Trace.check m t)
  | Cnf.Checker.No | Cnf.Checker.Maybe -> Alcotest.fail "expected sat")

(* ---------- trace ---------- *)

let test_trace_roundtrip () =
  let m = Circuits.Families.counter ~bits:2 in
  (* 3 enabled steps reach 3 = bad *)
  let frames = Array.make 3 (fun _ -> true) in
  let t = Cbq.Trace.of_inputs m frames in
  check int "length" 3 (Cbq.Trace.length t);
  check bool "valid counterexample" true (Cbq.Trace.check m t);
  (* a corrupted state sequence is rejected *)
  let bad_states = Array.copy t.Cbq.Trace.states in
  bad_states.(1) <- List.map (fun (v, b) -> (v, not b)) bad_states.(1);
  let corrupted = { t with Cbq.Trace.states = bad_states } in
  check bool "corrupted trace rejected" false (Cbq.Trace.check m corrupted);
  (* a trace ending in a good state is not a counterexample *)
  let short = Cbq.Trace.of_inputs m (Array.make 1 (fun _ -> true)) in
  check bool "good final state rejected" false (Cbq.Trace.check m short)

(* ---------- preimage ---------- *)

let test_preimage_counter () =
  let m = Circuits.Families.counter ~bits:3 in
  let aig = Netlist.Model.aig m in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 51 in
  (* frontier = the all-ones state *)
  let bad = Aig.not_ m.Netlist.Model.property in
  let pre = Cbq.Preimage.compute m checker ~prng ~frontier:bad ~extra_vars:[] in
  check (Alcotest.list int) "inputs eliminated" [] pre.Cbq.Preimage.kept;
  (* predecessors of 111 are 110 (with enable) and 111 (without) *)
  let state_vars = Netlist.Model.state_vars m in
  let as_state value v =
    let idx = Option.get (List.find_index (fun w -> w = v) state_vars) in
    (value lsr idx) land 1 = 1
  in
  let eval_state value =
    Aig.eval aig pre.Cbq.Preimage.lit (as_state value)
  in
  check bool "110 is a predecessor" true (eval_state 0b011 || eval_state 0b110);
  check bool "111 is a predecessor" true (eval_state 0b111);
  check bool "000 is not" false (eval_state 0b000)

let test_preimage_exact_set () =
  (* cross-validate the pre-image semantics against explicit enumeration
     on a small model *)
  let m = Circuits.Families.fifo ~buggy:true ~depth_log:1 () in
  let aig = Netlist.Model.aig m in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 53 in
  let bad = Aig.not_ m.Netlist.Model.property in
  let pre = Cbq.Preimage.compute m checker ~prng ~frontier:bad ~extra_vars:[] in
  check bool "fully quantified" true (pre.Cbq.Preimage.kept = []);
  let state_vars = Netlist.Model.state_vars m in
  let input_vars = Netlist.Model.input_vars m in
  let n = List.length state_vars in
  (* enumeration oracle: s is a predecessor iff some input drives it into
     a bad state *)
  for s = 0 to (1 lsl n) - 1 do
    let state v =
      match List.find_index (fun w -> w = v) state_vars with
      | Some i -> (s lsr i) land 1 = 1
      | None -> false
    in
    let expected =
      List.exists
        (fun i ->
          let inputs v =
            match List.find_index (fun w -> w = v) input_vars with
            | Some k -> (i lsr k) land 1 = 1
            | None -> false
          in
          let next = Netlist.Model.eval_step m ~state ~inputs in
          not (Netlist.Model.property_holds m ~state:next))
        (List.init (1 lsl List.length input_vars) Fun.id)
    in
    check bool (Printf.sprintf "state %d" s) expected (Aig.eval aig pre.Cbq.Preimage.lit state)
  done

(* ---------- reachability vs oracles ---------- *)

let reach_families =
  [
    ("counter", Some 3);
    ("counter-even", Some 4);
    ("twin-shift", Some 4);
    ("shift-pattern", Some 4);
    ("lfsr", Some 4);
    ("fifo", Some 2);
    ("fifo-buggy", Some 2);
    ("accumulator", Some 3);
    ("gray", Some 3);
    ("arbiter", Some 3);
    ("traffic", None);
    ("peterson", None);
  ]

let test_reachability_oracles () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let r = Cbq.Reachability.run model in
      match (r.Cbq.Reachability.verdict, status) with
      | Cbq.Reachability.Proved, Circuits.Registry.Safe -> ()
      | Cbq.Reachability.Falsified { depth; trace }, Circuits.Registry.Unsafe expected ->
        check int (name ^ " depth") expected depth;
        (match trace with
        | Some t ->
          check bool (name ^ " trace valid") true (Cbq.Trace.check model t);
          check int (name ^ " trace length") expected (Cbq.Trace.length t)
        | None -> Alcotest.fail (name ^ ": missing trace"))
      | v, _ ->
        Alcotest.fail
          (Format.asprintf "%s: unexpected verdict %a" name Cbq.Reachability.pp_verdict v))
    reach_families

let test_reachability_profile () =
  let model, _ = Circuits.Registry.build "counter" (Some 3) in
  let r = Cbq.Reachability.run model in
  check int "iteration count = depth" 7 (List.length r.Cbq.Reachability.iterations);
  List.iter
    (fun it ->
      check bool "reached grows" true (it.Cbq.Reachability.reached_size >= 0);
      check bool "inputs fully eliminated each step" true (it.Cbq.Reachability.kept_inputs = 0))
    r.Cbq.Reachability.iterations;
  check bool "peak recorded" true (r.Cbq.Reachability.peak_frontier > 0);
  check bool "queries recorded" true (r.Cbq.Reachability.sat_queries > 0)

let test_reachability_sweep_frontier_variant () =
  let config = { Cbq.Reachability.default with sweep_frontier = true } in
  let model, _ = Circuits.Registry.build "fifo-buggy" (Some 2) in
  let r = Cbq.Reachability.run ~config model in
  match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified { depth; _ } -> check int "same verdict with sweeping" 5 depth
  | _ -> Alcotest.fail "expected falsification"

let test_reachability_naive_variant () =
  (* even the no-optimization configuration must be sound, just bigger *)
  let config = { Cbq.Reachability.default with quant = Cbq.Quantify.naive_config } in
  let model, _ = Circuits.Registry.build "accumulator" (Some 3) in
  let r = Cbq.Reachability.run ~config model in
  match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified { depth; _ } -> check int "naive agrees" 3 depth
  | _ -> Alcotest.fail "expected falsification"

let test_reachability_iteration_limit () =
  let config = { Cbq.Reachability.default with max_iterations = 2 } in
  let model, _ = Circuits.Registry.build "counter" (Some 4) in
  let r = Cbq.Reachability.run ~config model in
  match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Out_of_budget _ -> ()
  | v -> Alcotest.fail (Format.asprintf "expected budget exhaustion, got %a" Cbq.Reachability.pp_verdict v)

let () =
  Alcotest.run "cbq"
    [
      ( "quantify",
        [
          Alcotest.test_case "definition" `Quick test_quantify_definition;
          Alcotest.test_case "free variable" `Quick test_quantify_free_variable;
          Alcotest.test_case "constant results" `Quick test_quantify_to_constant;
          Alcotest.test_case "abort budget" `Quick test_quantify_abort_budget;
          Alcotest.test_case "all: partition" `Quick test_quantify_all_partition;
          Alcotest.test_case "all: partial" `Quick test_quantify_all_partial;
          Alcotest.test_case "naive config total" `Quick test_naive_config_never_aborts;
          QCheck_alcotest.to_alcotest quantify_matches_bdd_oracle;
          QCheck_alcotest.to_alcotest quantified_support_clean;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "counter frames" `Quick test_unroll_counter;
          Alcotest.test_case "trace extraction" `Quick test_unroll_trace_from_model;
        ] );
      ("trace", [ Alcotest.test_case "roundtrip and rejection" `Quick test_trace_roundtrip ]);
      ( "preimage",
        [
          Alcotest.test_case "counter predecessors" `Quick test_preimage_counter;
          Alcotest.test_case "exact set (enumeration oracle)" `Quick test_preimage_exact_set;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "all family oracles" `Slow test_reachability_oracles;
          Alcotest.test_case "profile sanity" `Quick test_reachability_profile;
          Alcotest.test_case "frontier sweeping variant" `Quick
            test_reachability_sweep_frontier_variant;
          Alcotest.test_case "naive quantification variant" `Quick
            test_reachability_naive_variant;
          Alcotest.test_case "iteration limit" `Quick test_reachability_iteration_limit;
        ] );
    ]
