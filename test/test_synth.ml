(* Optimization-phase tests: the don't-care-based disjunction must always
   equal the plain OR of the cofactors, never grow it, and its report must
   reflect what happened. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

let semantically_equal aig nvars a b =
  let rec go mask =
    mask >= 1 lsl nvars || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
  in
  go 0

let setup () =
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 13 in
  (aig, checker, prng)

let test_compact_preserves () =
  let aig, _, _ = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f = Aig.ite aig x (Aig.xor_ aig x y) (Aig.and_ aig x y) in
  let f' = Synth.Opt.compact aig f in
  check bool "compact preserves semantics" true (semantically_equal aig 2 f f')

let test_disjunction_trivial_cases () =
  let aig, checker, prng = setup () in
  let x = Aig.var aig 0 in
  let g, _ = Synth.Dontcare.disjunction aig checker ~prng Aig.true_ x in
  check int "true | x" Aig.true_ g;
  let g, _ = Synth.Dontcare.disjunction aig checker ~prng Aig.false_ x in
  check int "false | x" x g;
  let g, _ = Synth.Dontcare.disjunction aig checker ~prng x (Aig.not_ x) in
  check int "x | ~x" Aig.true_ g

let test_disjunction_simplifies () =
  let aig, checker, prng = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  (* f0 = x; f1 = ~x & (y ^ z): within f1's care set (~x... care = ¬f0)
     the x-related logic of any node is free *)
  let f0 = Aig.or_ aig x (Aig.and_ aig y z) in
  let f1 = Aig.and_ aig (Aig.not_ x) (Aig.xor_ aig y z) in
  let g, report = Synth.Dontcare.disjunction aig checker ~prng f0 f1 in
  let plain = Aig.or_ aig f0 f1 in
  check bool "equal to the plain disjunction" true (semantically_equal aig 3 g plain);
  check bool "never larger than plain" true
    (report.Synth.Dontcare.size_after <= report.Synth.Dontcare.size_before)

let test_report_counts () =
  let aig, checker, prng = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f0 = x in
  (* f1 contains logic that is redundant when restricted to ~x *)
  let f1 = Aig.and_ aig (Aig.or_ aig x y) (Aig.not_ x) in
  let _, report = Synth.Dontcare.disjunction aig checker ~prng f0 f1 in
  check bool "sat calls happened" true (report.Synth.Dontcare.sat_calls >= 0);
  check bool "sizes recorded" true (report.Synth.Dontcare.size_before >= report.Synth.Dontcare.size_after)

let test_odc_disabled () =
  let aig, checker, prng = setup () in
  let config = { Synth.Dontcare.default with odc_max_tries = 0 } in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f0 = Aig.and_ aig x y in
  let f1 = Aig.and_ aig y z in
  let g, report = Synth.Dontcare.disjunction ~config aig checker ~prng f0 f1 in
  check int "no odc replacements when disabled" 0 report.Synth.Dontcare.odc_replacements;
  check bool "still equivalent" true (semantically_equal aig 3 g (Aig.or_ aig f0 f1))

let test_merges_disabled () =
  let aig, checker, prng = setup () in
  let config = { Synth.Dontcare.default with use_merges = false } in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f0 = x and f1 = Aig.xor_ aig x y in
  let g, report = Synth.Dontcare.disjunction ~config aig checker ~prng f0 f1 in
  check int "no merge replacements when disabled" 0 report.Synth.Dontcare.merge_replacements;
  check bool "still equivalent" true (semantically_equal aig 2 g (Aig.or_ aig f0 f1))

let test_sweep_and_compact () =
  let aig, checker, prng = setup () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let xor1 = Aig.xor_ aig x y in
  let xor2 = Aig.or_ aig (Aig.and_ aig x (Aig.not_ y)) (Aig.and_ aig (Aig.not_ x) y) in
  let f = Aig.or_ aig (Aig.and_ aig xor1 x) (Aig.and_ aig xor2 (Aig.not_ x)) in
  let f', report = Synth.Opt.sweep_and_compact aig checker ~prng f in
  check bool "function preserved" true (semantically_equal aig 2 f f');
  check bool "merges found in the redundant cone" true (report.Sweep.Sweeper.total_merges > 0)

(* cofactor-pair property: the don't-care disjunction of the cofactors of
   any function along any variable equals the quantification *)
let nvars = 4
let build = Gen_util.build_aig
let qc_expr = Gen_util.qc_expr nvars

let disjunction_always_equivalent =
  QCheck.Test.make ~name:"DC disjunction = plain disjunction (cofactor pairs)" ~count:80
    qc_expr (fun e ->
      let aig = Aig.create () in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 17 in
      let f = build aig e in
      let f0 = Aig.cofactor aig f ~v:0 ~phase:false in
      let f1 = Aig.cofactor aig f ~v:0 ~phase:true in
      let g, _ = Synth.Dontcare.disjunction aig checker ~prng f0 f1 in
      semantically_equal aig nvars g (Aig.or_ aig f0 f1))

let disjunction_never_larger =
  QCheck.Test.make ~name:"DC disjunction never exceeds the plain size" ~count:80 qc_expr
    (fun e ->
      let aig = Aig.create () in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 19 in
      let f = build aig e in
      let f0 = Aig.cofactor aig f ~v:0 ~phase:false in
      let f1 = Aig.cofactor aig f ~v:0 ~phase:true in
      let plain_size = Aig.size aig (Aig.or_ aig f0 f1) in
      let _, report = Synth.Dontcare.disjunction aig checker ~prng f0 f1 in
      report.Synth.Dontcare.size_after <= plain_size)

let arbitrary_pairs_equivalent =
  QCheck.Test.make ~name:"DC disjunction on arbitrary pairs" ~count:80
    (QCheck.pair qc_expr qc_expr) (fun (e1, e2) ->
      let aig = Aig.create () in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 23 in
      let f0 = build aig e1 and f1 = build aig e2 in
      let g, _ = Synth.Dontcare.disjunction aig checker ~prng f0 f1 in
      semantically_equal aig nvars g (Aig.or_ aig f0 f1))

(* ---------- cut-based resubstitution ---------- *)

let test_rewrite_finds_structural_duplicate () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  (* the same xor built two ways, both feeding further logic *)
  let xor1 = Aig.xor_ aig x y in
  let xor2 = Aig.or_ aig (Aig.and_ aig x (Aig.not_ y)) (Aig.and_ aig (Aig.not_ x) y) in
  let f = Aig.or_ aig (Aig.and_ aig xor1 z) (Aig.and_ aig xor2 (Aig.not_ z)) in
  let f', report = Synth.Rewrite.resubstitute aig f in
  check bool "semantics preserved" true (semantically_equal aig 3 f f');
  check bool "duplicate found without SAT" true (report.Synth.Rewrite.resubstitutions > 0);
  check bool "smaller" true (report.Synth.Rewrite.size_after < report.Synth.Rewrite.size_before)

let test_rewrite_folds_hidden_constant () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  (* (x&y&z) & (x&~y&z): contradiction invisible to the two-level rules *)
  let a = Aig.and_ aig (Aig.and_ aig x y) z in
  let b = Aig.and_ aig (Aig.and_ aig x (Aig.not_ y)) z in
  let hidden = Aig.and_ aig a b in
  check bool "not folded by the front-end" false (Aig.is_const hidden);
  let h', report = Synth.Rewrite.resubstitute aig hidden in
  check int "rewrite folds it" Aig.false_ h';
  check bool "reported as a constant" true (report.Synth.Rewrite.constants_folded > 0)

let test_rewrite_folds_projection () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  (* (x & y) | (x & ~y) = x: a projection hidden at depth two *)
  let f = Aig.or_ aig (Aig.and_ aig x y) (Aig.and_ aig x (Aig.not_ y)) in
  let f', _ = Synth.Rewrite.resubstitute aig f in
  check bool "projection folded to the variable" true
    (f' = x || semantically_equal aig 2 f' x)

let rewrite_preserves_semantics =
  QCheck.Test.make ~name:"resubstitution preserves semantics" ~count:150 qc_expr (fun e ->
      let aig = Aig.create () in
      let f = build aig e in
      let f', report = Synth.Rewrite.resubstitute aig f in
      semantically_equal aig nvars f f'
      && report.Synth.Rewrite.size_after <= report.Synth.Rewrite.size_before)

let () =
  Alcotest.run "synth"
    [
      ( "opt",
        [
          Alcotest.test_case "compact preserves" `Quick test_compact_preserves;
          Alcotest.test_case "sweep_and_compact" `Quick test_sweep_and_compact;
        ] );
      ( "dontcare",
        [
          Alcotest.test_case "trivial cases" `Quick test_disjunction_trivial_cases;
          Alcotest.test_case "simplification" `Quick test_disjunction_simplifies;
          Alcotest.test_case "report counts" `Quick test_report_counts;
          Alcotest.test_case "odc disabled" `Quick test_odc_disabled;
          Alcotest.test_case "merges disabled" `Quick test_merges_disabled;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "finds structural duplicates" `Quick
            test_rewrite_finds_structural_duplicate;
          Alcotest.test_case "folds hidden constants" `Quick test_rewrite_folds_hidden_constant;
          Alcotest.test_case "folds projections" `Quick test_rewrite_folds_projection;
          QCheck_alcotest.to_alcotest rewrite_preserves_semantics;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest disjunction_always_equivalent;
          QCheck_alcotest.to_alcotest disjunction_never_larger;
          QCheck_alcotest.to_alcotest arbitrary_pairs_equivalent;
        ] );
    ]
