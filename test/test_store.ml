(* Run-report store: append/list/load round-trip, meta filtering, and
   the recovery paths — a deleted index is rebuilt from the JSONL, and
   a torn tail (crash mid-append) is cut back to the last line that
   parses without losing the runs before it. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let with_dir f =
  let dir = Filename.temp_file "cbq_store" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* a minimal valid schema-2 report *)
let report ?(model = "counter4") ?(engine = "cbq") ?(verdict = "proved") ~conflicts () =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 2);
      ( "meta",
        Obs.Json.Obj
          [
            ("model", Obs.Json.String model);
            ("engine", Obs.Json.String engine);
            ("verdict", Obs.Json.String verdict);
          ] );
      ("counters", Obs.Json.Obj [ ("sat.conflicts", Obs.Json.Int conflicts) ]);
      ("spans", Obs.Json.Obj []);
      ("histograms", Obs.Json.Obj []);
    ]

let test_append_load_roundtrip () =
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  check int "fresh store is empty" 0 (List.length (Obs.Store.entries store));
  let e1 = Obs.Store.append store (report ~conflicts:10 ()) in
  let e2 = Obs.Store.append store (report ~conflicts:20 ~verdict:"falsified:3" ()) in
  check int "sequential ids" 1 e1.Obs.Store.id;
  check int "sequential ids" 2 e2.Obs.Store.id;
  check string "meta extracted into the index" "counter4" e1.Obs.Store.model;
  check string "verdict extracted" "falsified:3" e2.Obs.Store.verdict;
  check bool "stored_at stamped" true (e1.Obs.Store.stored_at <> "");
  match Obs.Store.load store 1 with
  | Error msg -> Alcotest.fail msg
  | Ok (_, r) -> (
    check bool "stored_at landed in the report meta" true
      (Option.bind (Obs.Json.member "meta" r) (Obs.Json.member "stored_at") <> None);
    match Option.bind (Obs.Json.member "counters" r) (Obs.Json.member "sat.conflicts") with
    | Some (Obs.Json.Int 10) -> ()
    | _ -> Alcotest.fail "loaded report lost its counters")

let test_select_filters () =
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  ignore (Obs.Store.append store (report ~model:"counter4" ~engine:"cbq" ~conflicts:1 ()));
  ignore (Obs.Store.append store (report ~model:"counter4" ~engine:"bmc" ~conflicts:2 ()));
  ignore (Obs.Store.append store (report ~model:"arbiter3" ~engine:"cbq" ~conflicts:3 ()));
  ignore (Obs.Store.append store (report ~model:"counter4" ~engine:"cbq" ~conflicts:4 ()));
  let ids sel = List.map (fun e -> e.Obs.Store.id) sel in
  check (Alcotest.list int) "model+engine filter, oldest first" [ 1; 4 ]
    (ids (Obs.Store.select ~model:"counter4" ~engine:"cbq" store));
  check (Alcotest.list int) "last window" [ 4 ]
    (ids (Obs.Store.select ~model:"counter4" ~engine:"cbq" ~last:1 store));
  check (Alcotest.list int) "no match" []
    (ids (Obs.Store.select ~model:"nonesuch" store))

let test_reopen_uses_index () =
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  ignore (Obs.Store.append store (report ~conflicts:1 ()));
  ignore (Obs.Store.append store (report ~conflicts:2 ()));
  let reopened = Obs.Store.open_ dir in
  check int "reopen sees both runs" 2 (List.length (Obs.Store.entries reopened))

let test_index_rebuild_after_delete () =
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  ignore (Obs.Store.append store (report ~conflicts:1 ()));
  ignore (Obs.Store.append store (report ~conflicts:2 ~model:"arbiter3" ()));
  Sys.remove (Filename.concat dir "index.json");
  let reopened = Obs.Store.open_ dir in
  let entries = Obs.Store.entries reopened in
  check int "rebuilt from the data file" 2 (List.length entries);
  check string "meta recovered from the report lines" "arbiter3"
    (List.nth entries 1).Obs.Store.model;
  match Obs.Store.load reopened 2 with
  | Ok (_, r) -> (
    match Option.bind (Obs.Json.member "counters" r) (Obs.Json.member "sat.conflicts") with
    | Some (Obs.Json.Int 2) -> ()
    | _ -> Alcotest.fail "rebuilt offsets point at the wrong line")
  | Error msg -> Alcotest.fail msg

let test_truncated_tail_recovery () =
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  ignore (Obs.Store.append store (report ~conflicts:1 ()));
  ignore (Obs.Store.append store (report ~conflicts:2 ()));
  ignore (Obs.Store.append store (report ~conflicts:3 ()));
  let data = Filename.concat dir "runs.jsonl" in
  (* tear the last line mid-record, as a crash mid-append would *)
  let size = (Unix.stat data).Unix.st_size in
  Unix.truncate data (size - 17);
  let reopened = Obs.Store.open_ dir in
  let entries = Obs.Store.entries reopened in
  check int "intact prefix survives" 2 (List.length entries);
  (match Obs.Store.load reopened 2 with
  | Ok (_, r) -> (
    match Option.bind (Obs.Json.member "counters" r) (Obs.Json.member "sat.conflicts") with
    | Some (Obs.Json.Int 2) -> ()
    | _ -> Alcotest.fail "wrong report behind id 2")
  | Error msg -> Alcotest.fail msg);
  (* the torn bytes are gone: the next append lands on a clean boundary *)
  let e = Obs.Store.append reopened (report ~conflicts:4 ()) in
  check int "append after recovery" 3 e.Obs.Store.id;
  match Obs.Store.load reopened 3 with
  | Ok (_, r) -> (
    match Option.bind (Obs.Json.member "counters" r) (Obs.Json.member "sat.conflicts") with
    | Some (Obs.Json.Int 4) -> ()
    | _ -> Alcotest.fail "post-recovery append unreadable")
  | Error msg -> Alcotest.fail msg

let test_garbage_line_recovery () =
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  ignore (Obs.Store.append store (report ~conflicts:1 ()));
  let data = Filename.concat dir "runs.jsonl" in
  let oc = open_out_gen [ Open_append ] 0o644 data in
  output_string oc "{not json at all\n";
  close_out oc;
  Sys.remove (Filename.concat dir "index.json");
  let reopened = Obs.Store.open_ dir in
  check int "scan stops at the first bad line" 1 (List.length (Obs.Store.entries reopened))

(* The O(N^2) regression guard: N appends may serialize at most O(N)
   index entries in total (the doubling schedule rewrites at counts
   1, 3, 7, 15, ... — a geometric series summing below 2N), where the
   old write-the-whole-index-every-append behaviour serialized
   N(N+1)/2. The counters are deterministic, so this is an exact
   load-test assertion, not a timing heuristic. *)
let test_append_cost_amortized () =
  with_dir @@ fun dir ->
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let n = 1000 in
  let store = Obs.Store.open_ dir in
  for i = 1 to n do
    ignore (Obs.Store.append store (report ~conflicts:i ()))
  done;
  let writes = Obs.value_of "store.index.writes" in
  let serialized = Obs.value_of "store.index.entries" in
  check bool
    (Printf.sprintf "index rewrites are logarithmic (%d for %d appends)" writes n)
    true
    (writes <= 12);
  check bool
    (Printf.sprintf "serialized index entries stay linear (%d for %d appends)" serialized n)
    true
    (serialized < 2 * n);
  check int "every append landed" n (List.length (Obs.Store.entries store));
  (* a lagging index is caught up by flush, and a cold reopen still
     sees every run *)
  Obs.Store.flush store;
  let reopened = Obs.Store.open_ dir in
  check int "reopen after flush" n (List.length (Obs.Store.entries reopened));
  let ids = List.map (fun e -> e.Obs.Store.id) (Obs.Store.entries reopened) in
  check (Alcotest.list int) "ids are dense and ordered" (List.init n (fun i -> i + 1)) ids

(* Two processes interleaving appends into one store directory: the
   [Unix.lockf] exclusive lock plus the resync-before-append makes ids
   unique and every line intact. Without the lock the children race the
   read-modify-write of the id counter and the test sees duplicate ids
   or a torn data file. *)
let test_two_process_interleaving () =
  with_dir @@ fun dir ->
  (* materialize the directory before forking so every child opens the
     same store *)
  ignore (Obs.Store.open_ dir);
  let children = 4 and per_child = 25 in
  let pids =
    List.init children (fun c ->
        match Unix.fork () with
        | 0 ->
          (* child: plain appends, exit without running at_exit (the
             alcotest reporter belongs to the parent) *)
          let status =
            try
              let store = Obs.Store.open_ dir in
              for i = 1 to per_child do
                ignore
                  (Obs.Store.append store
                     (report
                        ~model:(Printf.sprintf "child%d" c)
                        ~conflicts:((c * per_child) + i) ()))
              done;
              0
            with _ -> 1
          in
          Unix._exit status
        | pid -> pid)
  in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "a child appender crashed")
    pids;
  let store = Obs.Store.open_ dir in
  let entries = Obs.Store.entries store in
  let total = children * per_child in
  check int "every append from every process landed" total (List.length entries);
  let ids = List.map (fun e -> e.Obs.Store.id) entries in
  check (Alcotest.list int) "ids are unique, dense and ordered" (List.init total (fun i -> i + 1))
    ids;
  (* every line must parse back: a torn interleaved write would lose
     the tail behind it *)
  List.iter
    (fun e ->
      match Obs.Store.load store e.Obs.Store.id with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "run %d unreadable: %s" e.Obs.Store.id msg))
    entries;
  (* per-child counts survived the interleaving *)
  List.iter
    (fun c ->
      check int
        (Printf.sprintf "child %d kept all its runs" c)
        per_child
        (List.length (Obs.Store.select ~model:(Printf.sprintf "child%d" c) store)))
    (List.init children Fun.id)

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "append/load round-trip" `Quick test_append_load_roundtrip;
          Alcotest.test_case "select filters and windows" `Quick test_select_filters;
          Alcotest.test_case "reopen via the index" `Quick test_reopen_uses_index;
          Alcotest.test_case "index rebuild after delete" `Quick test_index_rebuild_after_delete;
          Alcotest.test_case "truncated tail recovery" `Quick test_truncated_tail_recovery;
          Alcotest.test_case "garbage line stops the scan" `Quick test_garbage_line_recovery;
          Alcotest.test_case "append cost is O(1) amortized" `Quick test_append_cost_amortized;
          Alcotest.test_case "two processes interleave safely" `Quick
            test_two_process_interleaving;
        ] );
    ]
