(* The multicore layer: pool mapping and sharding, frozen-model cloning,
   first-decisive-wins racing with cooperative cancellation, the
   portfolio engine's agreement with single-engine runs, parallel
   SAT-merge determinism and parallel fuzz-campaign determinism.

   Everything here must hold on a single-core box: the contracts are
   about ordering, isolation and cancellation, not speed. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- pool ---------- *)

let test_map_preserves_order () =
  let items = Array.init 100 (fun i -> i) in
  List.iter
    (fun jobs ->
      let out = Par.Pool.map ~jobs (fun i -> (i * 7) + 1) items in
      Array.iteri
        (fun i v -> check int (Printf.sprintf "jobs=%d slot %d" jobs i) ((i * 7) + 1) v)
        out)
    [ 1; 2; 4; 150 (* more jobs than items: clamped *) ]

let test_map_empty_and_singleton () =
  check int "empty" 0 (Array.length (Par.Pool.map ~jobs:4 (fun x -> x) [||]));
  check bool "singleton" true (Par.Pool.map ~jobs:4 string_of_int [| 9 |] = [| "9" |])

exception Boom of int

let test_map_reraises_failure () =
  match Par.Pool.map ~jobs:3 (fun i -> if i = 17 then raise (Boom i) else i) (Array.init 40 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker exception to surface"
  | exception Boom 17 -> ()

let test_run_shards_covers_all_indices () =
  let n = 97 and jobs = 4 in
  let hits = Array.make n 0 in
  (* each index belongs to exactly one shard, so the unsynchronized
     writes are disjoint *)
  Par.Pool.run_shards ~jobs (fun w ->
      let i = ref w in
      while !i < n do
        hits.(!i) <- hits.(!i) + 1;
        i := !i + jobs
      done);
  Array.iteri (fun i h -> check int (Printf.sprintf "index %d hit once" i) 1 h) hits

(* ---------- clone ---------- *)

let qc_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let clone_is_equal_and_independent =
  QCheck.Test.make ~name:"clones are structurally equal and manager-independent" ~count:60
    qc_seed (fun seed ->
      let m = Fuzz.Gen.model ~seed () in
      let original_bytes = Netlist.Aiger.write m in
      let c = Par.Clone.model m in
      (* the AIGER round-trip is byte-identical, so textual equality is
         structural equality: same node numbering, same variable indices *)
      let equal_before = Netlist.Aiger.write c = original_bytes in
      (* grow the clone's manager; the original must not move *)
      let caig = Netlist.Model.aig c in
      let nodes_before = Aig.num_nodes (Netlist.Model.aig m) in
      let x = Aig.var caig (Aig.num_vars caig) in
      ignore (Aig.and_ caig x c.Netlist.Model.property);
      equal_before
      && Netlist.Aiger.write m = original_bytes
      && Aig.num_nodes (Netlist.Model.aig m) = nodes_before)

let test_freeze_thaw_across_domains () =
  let m = Fuzz.Gen.model ~seed:42 () in
  let frozen = Par.Clone.freeze m in
  let bytes = Netlist.Aiger.write m in
  let thawed =
    Par.Pool.map ~jobs:4 (fun _ -> Netlist.Aiger.write (Par.Clone.thaw frozen)) [| 0; 1; 2; 3 |]
  in
  Array.iter (fun b -> check bool "thawed on a worker domain, still identical" true (b = bytes)) thawed

(* ---------- race ---------- *)

let governed_entrant name limits result ~decisive:_ =
  (* spin until the governor trips, then return an anytime value — the
     shape of a cancelled engine *)
  {
    Par.Race.name;
    limits;
    run =
      (fun () ->
        while Util.Limits.check limits = None do
          Domain.cpu_relax ()
        done;
        result);
  }

let test_race_first_decisive_wins_and_cancels () =
  let fast_limits = Util.Limits.create () in
  let slow_limits = Util.Limits.create () in
  let entrants =
    [
      governed_entrant "spinner" slow_limits "stopped" ~decisive:false;
      { Par.Race.name = "fast"; limits = fast_limits; run = (fun () -> "decided") };
    ]
  in
  let outcome = Par.Race.run ~jobs:2 ~decisive:(fun v -> v = "decided") entrants in
  (match outcome.Par.Race.winner with
  | Some ("fast", "decided") -> ()
  | Some (name, v) -> Alcotest.fail (Printf.sprintf "wrong winner %s/%s" name v)
  | None -> Alcotest.fail "no winner");
  (* the spinner only terminates if the race cancelled its governor, so
     reaching this line at all proves the cancellation path; its anytime
     value must still be reported *)
  check bool "loser ran to its checkpoint" true
    (outcome.Par.Race.results.(0) = Par.Race.Finished "stopped");
  check bool "loser governor tripped as cancelled" true
    (Util.Limits.exhausted slow_limits = Some Util.Limits.Cancelled)

let test_race_crash_is_not_decisive () =
  let outcome =
    Par.Race.run ~jobs:1
      ~decisive:(fun _ -> true)
      [
        { Par.Race.name = "crasher"; limits = Util.Limits.create (); run = (fun () -> failwith "kaput") };
        { Par.Race.name = "worker"; limits = Util.Limits.create (); run = (fun () -> 7) };
      ]
  in
  (match outcome.Par.Race.winner with
  | Some ("worker", 7) -> ()
  | _ -> Alcotest.fail "the crash must not win the race");
  match outcome.Par.Race.results.(0) with
  | Par.Race.Crashed msg -> check bool "exception text kept" true (String.length msg > 0)
  | _ -> Alcotest.fail "crasher not reported as crashed"

let test_race_no_decisive_means_no_winner () =
  let outcome =
    Par.Race.run ~jobs:2
      ~decisive:(fun _ -> false)
      [
        { Par.Race.name = "a"; limits = Util.Limits.create (); run = (fun () -> 1) };
        { Par.Race.name = "b"; limits = Util.Limits.create (); run = (fun () -> 2) };
      ]
  in
  check bool "no winner" true (outcome.Par.Race.winner = None);
  check bool "everyone still ran" true
    (outcome.Par.Race.results = [| Par.Race.Finished 1; Par.Race.Finished 2 |])

(* ---------- portfolio vs sequential engines ---------- *)

let test_portfolio_agrees_with_sequential () =
  (* every decided sequential verdict must be compatible with the
     portfolio's decided verdict — racing changes who answers, never
     what is true of the model *)
  List.iter
    (fun (family, param) ->
      let model, status = Circuits.Registry.build family (Some param) in
      let r = Baselines.Portfolio.run ~jobs:2 model in
      (match (r.Baselines.Portfolio.verdict, status) with
      | Baselines.Verdict.Proved, Circuits.Registry.Safe -> ()
      | Baselines.Verdict.Falsified d, Circuits.Registry.Unsafe e ->
        check int (family ^ ": counterexample depth") e d
      | Baselines.Verdict.Undecided _, _ ->
        Alcotest.fail (family ^ ": portfolio undecided on a tiny model")
      | v, _ ->
        Alcotest.fail
          (Format.asprintf "%s: portfolio says %a, registry disagrees" family Baselines.Verdict.pp
             v));
      check bool (family ^ ": a winner is named") true (r.Baselines.Portfolio.winner <> None);
      List.iter
        (fun (e : Baselines.Suite.engine) ->
          let v, _ = e.run ~limits:(Util.Limits.create ()) (Par.Clone.model model) in
          check bool
            (Printf.sprintf "%s: %s compatible with portfolio" family e.name)
            true
            (Fuzz.Oracle.compatible v r.Baselines.Portfolio.verdict))
        (Baselines.Suite.engines ()))
    [ ("counter", 4); ("gray", 3) ]

(* ---------- parallel SAT-merge determinism ---------- *)

(* two structurally different, semantically equal XOR trees and a few
   shared subfunctions: plenty of candidate classes for the SAT stage *)
let sweep_instance () =
  let aig = Aig.create () in
  let n = 8 in
  let xs = List.init n (Aig.var aig) in
  let sum1 = List.fold_left (Aig.xor_ aig) Aig.false_ xs in
  let sum2 = List.fold_right (fun x acc -> Aig.xor_ aig acc x) xs Aig.false_ in
  let x0 = List.hd xs in
  let roots = [ Aig.and_ aig sum1 x0; Aig.and_ aig sum2 x0; Aig.or_ aig sum1 (Aig.not_ x0) ] in
  (aig, roots)

let sweep_classes ~sat_jobs aig roots =
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 5 in
  let config = { Sweep.Sweeper.default with bdd_node_limit = 0; sat_jobs } in
  let repl, report = Sweep.Sweeper.run ~config aig checker ~prng ~roots in
  (List.init (Aig.num_nodes aig) repl, report)

let test_parallel_sweep_matches_sequential () =
  let aig, roots = sweep_instance () in
  (* the parallel run works on a pristine copy: both runs see the same
     manager state, node ids and literal values *)
  let aig2 = Aig.copy aig in
  let seq_repl, seq_report = sweep_classes ~sat_jobs:1 aig roots in
  let par_repl, par_report = sweep_classes ~sat_jobs:3 aig2 roots in
  check bool "identical merge substitution" true (seq_repl = par_repl);
  check int "identical merge count" seq_report.Sweep.Sweeper.total_merges
    par_report.Sweep.Sweeper.total_merges;
  check bool "the SAT stage actually merged something" true
    (seq_report.Sweep.Sweeper.sat_merges > 0)

let test_parallel_sweep_jobs_deterministic () =
  let aig, roots = sweep_instance () in
  let a, _ = sweep_classes ~sat_jobs:3 (Aig.copy aig) roots in
  let b, _ = sweep_classes ~sat_jobs:3 (Aig.copy aig) roots in
  check bool "same (seed, jobs) => same substitution" true (a = b)

(* ---------- parallel fuzz determinism ---------- *)

let campaign ~jobs =
  (* the injected sweeper fault gives the campaign real failures to
     compare; seed 42 yields several within the first 120 models *)
  Sweep.Fault.with_injection (fun () ->
      Fuzz.Runner.run ~shrink:false ~jobs ~seed:42 ~count:120 ())

let test_parallel_fuzz_matches_sequential () =
  let seq = campaign ~jobs:1 in
  let par = campaign ~jobs:3 in
  let seeds r = List.map (fun f -> f.Fuzz.Runner.seed) r.Fuzz.Runner.failures in
  let labels r =
    List.map (fun f -> Fuzz.Oracle.failure_label f.Fuzz.Runner.failure) r.Fuzz.Runner.failures
  in
  check bool "fault injection produced failures" true (seq.Fuzz.Runner.failures <> []);
  check bool "same failing seeds in the same order" true (seeds seq = seeds par);
  check bool "same failure classes" true (labels seq = labels par)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "map edge cases" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "map re-raises worker failure" `Quick test_map_reraises_failure;
          Alcotest.test_case "run_shards covers all indices" `Quick
            test_run_shards_covers_all_indices;
        ] );
      ( "clone",
        [
          QCheck_alcotest.to_alcotest clone_is_equal_and_independent;
          Alcotest.test_case "freeze/thaw across domains" `Quick test_freeze_thaw_across_domains;
        ] );
      ( "race",
        [
          Alcotest.test_case "first decisive wins and cancels" `Quick
            test_race_first_decisive_wins_and_cancels;
          Alcotest.test_case "crash is not decisive" `Quick test_race_crash_is_not_decisive;
          Alcotest.test_case "no decisive, no winner" `Quick test_race_no_decisive_means_no_winner;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "agrees with sequential engines" `Slow
            test_portfolio_agrees_with_sequential;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "parallel matches sequential classes" `Quick
            test_parallel_sweep_matches_sequential;
          Alcotest.test_case "fixed (seed, jobs) deterministic" `Quick
            test_parallel_sweep_jobs_deterministic;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "parallel campaign matches sequential" `Slow
            test_parallel_fuzz_matches_sequential;
        ] );
    ]
