(* Bench regression detection: report flattening, delta gating semantics
   (symmetric relative threshold, timings gated separately), directory
   pairing, and the pass/fail verdict the cbq-bench-regress executable
   turns into its exit status. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let report ?(schema = 1) ?(meta = []) ?(counters = []) ?(spans = []) ?(histograms = []) () =
  let open Obs.Json in
  Obj
    [
      ("schema_version", Int schema);
      ("meta", Obj (List.map (fun (k, v) -> (k, String v)) meta));
      ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) counters));
      ( "spans",
        Obj
          (List.map
             (fun (n, count, seconds) ->
               (n, Obj [ ("count", Int count); ("seconds", Float seconds) ]))
             spans) );
      ( "histograms",
        Obj
          (List.map
             (fun (n, count, sum) -> (n, Obj [ ("count", Int count); ("sum", Int sum) ]))
             histograms) );
    ]

(* ---------- compare_reports ---------- *)

let test_identical_reports () =
  let r =
    report
      ~counters:[ ("sweep.merge.sat", 12) ]
      ~spans:[ ("sat.solve", 5, 0.25) ]
      ~histograms:[ ("sweep.cone_size", 3, 90) ]
      ()
  in
  check int "no deltas between identical reports" 0
    (List.length (Obs.Regress.compare_reports r r))

let test_changed_metrics_only () =
  let old_r = report ~counters:[ ("a", 10); ("b", 5) ] () in
  let new_r = report ~counters:[ ("a", 10); ("b", 6) ] () in
  match Obs.Regress.compare_reports old_r new_r with
  | [ d ] ->
    check string "only the changed counter" "counters.b" d.Obs.Regress.metric;
    check bool "relative delta" true (Float.abs (d.Obs.Regress.rel -. 0.2) < 1e-9);
    check bool "counters are not timings" false d.Obs.Regress.timing
  | ds -> Alcotest.failf "expected 1 delta, got %d" (List.length ds)

let test_one_sided_metric_compares_to_zero () =
  let old_r = report () in
  let new_r = report ~spans:[ ("sat.solve", 4, 0.5) ] () in
  let ds = Obs.Regress.compare_reports old_r new_r in
  let find m = List.find (fun d -> d.Obs.Regress.metric = m) ds in
  let count = find "spans.sat.solve.count" in
  check bool "new-only metric is an infinite rise" true (count.Obs.Regress.rel = infinity);
  check bool "span seconds flagged as timing" true
    (find "spans.sat.solve.seconds").Obs.Regress.timing;
  check bool "span count is deterministic" false count.Obs.Regress.timing

let test_gate_is_symmetric () =
  let old_r = report ~counters:[ ("a", 100) ] () in
  let new_r = report ~counters:[ ("a", 10) ] () in
  match Obs.Regress.compare_reports old_r new_r with
  | [ d ] ->
    check bool "drops gate too" true
      (Obs.Regress.exceeds ~threshold:0.1 ~time_threshold:None d)
  | ds -> Alcotest.failf "expected 1 delta, got %d" (List.length ds)

let test_timing_gated_separately () =
  let old_r = report ~spans:[ ("sat.solve", 5, 0.1) ] () in
  let new_r = report ~spans:[ ("sat.solve", 5, 0.4) ] () in
  match Obs.Regress.compare_reports old_r new_r with
  | [ d ] ->
    check bool "timing ignored without a time threshold" false
      (Obs.Regress.exceeds ~threshold:0.1 ~time_threshold:None d);
    check bool "timing gated when asked" true
      (Obs.Regress.exceeds ~threshold:0.1 ~time_threshold:(Some 1.0) d)
  | ds -> Alcotest.failf "expected 1 delta, got %d" (List.length ds)

(* ---------- validation and provenance ---------- *)

let test_validate_report () =
  let ok r = match Obs.Regress.validate_report r with Ok _ -> true | Error _ -> false in
  check bool "schema 1 accepted" true (ok (report ~schema:1 ()));
  check bool "schema 2 accepted" true (ok (report ~schema:2 ()));
  check bool "schema 3 rejected" false (ok (report ~schema:3 ()));
  check bool "non-object rejected" false (ok (Obs.Json.List []));
  check bool "missing schema_version rejected" false
    (ok (Obs.Json.Obj [ ("counters", Obs.Json.Obj []) ]));
  check bool "missing counters rejected" false
    (ok (Obs.Json.Obj [ ("schema_version", Obs.Json.Int 2) ]));
  (match Obs.Regress.validate_report (report ~schema:7 ()) with
  | Error msg -> check bool "error names the version" true (contains msg "7")
  | Ok _ -> Alcotest.fail "schema 7 accepted")

let test_meta_mismatches () =
  let old_r = report ~schema:1 ~meta:[ ("hostname", "alpha"); ("model", "counter4") ] () in
  let new_r =
    report ~schema:2
      ~meta:[ ("hostname", "beta"); ("model", "arbiter3"); ("ocaml_version", "5.1.1") ]
      ()
  in
  let diff = Obs.Regress.meta_mismatches old_r new_r in
  check bool "schema bump reported" true (List.mem ("schema_version", "1", "2") diff);
  check bool "hostname change reported" true (List.mem ("hostname", "alpha", "beta") diff);
  (* one-sided provenance (pre-v2 reports) is not noise *)
  check bool "one-sided key not reported" true
    (not (List.exists (fun (k, _, _) -> k = "ocaml_version") diff));
  (* model/engine are run identity, not provenance *)
  check bool "model is not a provenance key" true
    (not (List.exists (fun (k, _, _) -> k = "model") diff))

(* ---------- trend ---------- *)

let test_trend_flags_injected_slowdown () =
  (* three stored runs of one family; the slowdown is injected between
     run B and run C and must be attributed to exactly that step *)
  let a = report ~counters:[ ("sat.conflicts", 100) ] () in
  let b = report ~counters:[ ("sat.conflicts", 102) ] () in
  let c = report ~counters:[ ("sat.conflicts", 300) ] () in
  match Obs.Regress.trend [ ("run 1", a); ("run 2", b); ("run 3", c) ] with
  | Error msg -> Alcotest.fail msg
  | Ok steps -> (
    check int "two consecutive steps" 2 (List.length steps);
    let gated s =
      List.filter
        (Obs.Regress.exceeds ~threshold:0.1 ~time_threshold:None)
        s.Obs.Regress.step_deltas
    in
    match steps with
    | [ s1; s2 ] ->
      check string "step labels" "run 2" s1.Obs.Regress.to_label;
      check int "quiet step not flagged" 0 (List.length (gated s1));
      check int "injected jump flagged" 1 (List.length (gated s2));
      check string "attributed to the right step" "run 3" s2.Obs.Regress.to_label
    | _ -> Alcotest.fail "expected exactly two steps")

let test_trend_rejects_invalid () =
  let good = report () and bad = report ~schema:9 () in
  match Obs.Regress.trend [ ("run 1", good); ("run 2", bad) ] with
  | Ok _ -> Alcotest.fail "invalid report accepted"
  | Error msg ->
    check bool "error names the run" true (contains msg "run 2");
    check bool "error is one line" true (not (String.contains msg '\n'))

(* ---------- diff_dirs / passes ---------- *)

let temp_dir () =
  let path = Filename.temp_file "cbq_regress" "" in
  Sys.remove path;
  Util.Fs.mkdirs path;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let write_json dir name json =
  let oc = open_out (Filename.concat dir name) in
  output_string oc (Obs.Json.to_string json);
  close_out oc

let with_two_dirs f =
  let old_dir = temp_dir () and new_dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf old_dir; rm_rf new_dir) (fun () -> f old_dir new_dir)

let test_self_diff_passes () =
  with_two_dirs @@ fun old_dir new_dir ->
  let r = report ~counters:[ ("a", 3) ] ~spans:[ ("s", 2, 0.1) ] () in
  write_json old_dir "001-row.json" r;
  write_json new_dir "001-row.json" r;
  let outcome = Obs.Regress.diff_dirs ~old_dir ~new_dir in
  check bool "identical trees pass" true
    (Obs.Regress.passes ~threshold:0.1 ~time_threshold:(Some 0.0) outcome)

let test_regression_fails () =
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json" (report ~counters:[ ("sat.calls", 100) ] ());
  write_json new_dir "001-row.json" (report ~counters:[ ("sat.calls", 300) ] ());
  let outcome = Obs.Regress.diff_dirs ~old_dir ~new_dir in
  check bool "200% rise fails a 10% gate" false
    (Obs.Regress.passes ~threshold:0.1 ~time_threshold:None outcome);
  check int "one gated delta" 1
    (List.length (Obs.Regress.regressions ~threshold:0.1 ~time_threshold:None outcome));
  check bool "a loose gate lets it through" true
    (Obs.Regress.passes ~threshold:5.0 ~time_threshold:None outcome)

let test_missing_experiment_fails () =
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json" (report ~counters:[ ("a", 1) ] ());
  write_json old_dir "002-row.json" (report ~counters:[ ("a", 1) ] ());
  write_json new_dir "001-row.json" (report ~counters:[ ("a", 1) ] ());
  let outcome = Obs.Regress.diff_dirs ~old_dir ~new_dir in
  check (Alcotest.list string) "the lost row is named" [ "002-row" ]
    outcome.Obs.Regress.only_old;
  check bool "a lost experiment fails" false
    (Obs.Regress.passes ~threshold:0.1 ~time_threshold:None outcome)

let test_new_experiment_passes () =
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json" (report ~counters:[ ("a", 1) ] ());
  write_json new_dir "001-row.json" (report ~counters:[ ("a", 1) ] ());
  write_json new_dir "002-row.json" (report ~counters:[ ("a", 1) ] ());
  let outcome = Obs.Regress.diff_dirs ~old_dir ~new_dir in
  check (Alcotest.list string) "the extra row is named" [ "002-row" ]
    outcome.Obs.Regress.only_new;
  check bool "grown coverage passes" true
    (Obs.Regress.passes ~threshold:0.1 ~time_threshold:None outcome)

(* ---------- end to end through the registry ---------- *)

let test_real_reports_round_trip () =
  (* the differ consumes what Obs.write_report produces: two identical
     deterministic runs must diff clean apart from timings *)
  with_two_dirs @@ fun old_dir new_dir ->
  let run dir =
    Obs.reset ();
    Obs.set_enabled true;
    let model, _ = Circuits.Registry.build "counter" (Some 3) in
    ignore (Cbq.Reachability.run ~config:{ Cbq.Reachability.default with make_trace = false } model);
    Obs.set_enabled false;
    Obs.write_report (Filename.concat dir "001-counter3.json");
    Obs.reset ()
  in
  run old_dir;
  run new_dir;
  let outcome = Obs.Regress.diff_dirs ~old_dir ~new_dir in
  check int "one pair compared" 1 (List.length outcome.Obs.Regress.pairs);
  check bool "seeded run is deterministic modulo time" true
    (Obs.Regress.passes ~threshold:0.0 ~time_threshold:None outcome)

(* ---------- the CLI exit-code contract (Obs.Regress.main) ---------- *)

(* run the in-process CLI with captured stdout/stderr *)
let run_cli args =
  let out_buf = Buffer.create 256 and err_buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer out_buf and err = Format.formatter_of_buffer err_buf in
  let code = Obs.Regress.main ~out ~err (Array.of_list ("cbq-bench-regress" :: args)) in
  Format.pp_print_flush out ();
  Format.pp_print_flush err ();
  (code, Buffer.contents out_buf, Buffer.contents err_buf)

let test_cli_usage_errors () =
  List.iter
    (fun args ->
      let code, out, err = run_cli args in
      check int (String.concat " " args ^ " exits 2") 2 code;
      check bool "usage goes to stderr" true (contains err "usage:");
      check string "stdout stays clean" "" out)
    [ []; [ "only-one-dir" ]; [ "--bogus-flag"; "a"; "b" ]; [ "-h" ]; [ "a"; "b"; "c" ] ]

let test_cli_bad_threshold () =
  let code, out, err = run_cli [ "a"; "b"; "--threshold=banana" ] in
  check int "bad threshold exits 2" 2 code;
  check bool "diagnostic names the flag" true (contains err "--threshold");
  check string "stdout stays clean" "" out

let test_cli_missing_directory () =
  with_two_dirs @@ fun old_dir _new_dir ->
  let code, out, err = run_cli [ old_dir; "no-such-dir-regress" ] in
  check int "missing dir exits 2" 2 code;
  check bool "diagnostic goes to stderr" true (contains err "is not a directory");
  check string "stdout stays clean" "" out

let test_cli_clean_pair_exits_zero () =
  with_two_dirs @@ fun old_dir new_dir ->
  let r = report ~counters:[ ("a", 3) ] () in
  write_json old_dir "001-row.json" r;
  write_json new_dir "001-row.json" r;
  let code, out, err = run_cli [ old_dir; new_dir ] in
  check int "clean diff exits 0" 0 code;
  check bool "verdict on stdout" true (contains out "OK: 1 report pair");
  check string "stderr stays clean" "" err

let test_cli_unparsable_report_exits_two () =
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json" (report ~counters:[ ("a", 1) ] ());
  let oc = open_out (Filename.concat new_dir "001-row.json") in
  output_string oc "{\"schema_version\": 1, truncated";
  close_out oc;
  let code, out, err = run_cli [ old_dir; new_dir ] in
  check int "unparsable report exits 2" 2 code;
  check bool "structured one-line error on stderr" true
    (contains err "001-row.json" && contains err "unparsable");
  check bool "no exception trace" true (not (contains err "Fatal error"));
  check string "stdout stays clean" "" out

let test_cli_unsupported_schema_exits_two () =
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json" (report ~counters:[ ("a", 1) ] ());
  write_json new_dir "001-row.json" (report ~schema:9 ~counters:[ ("a", 1) ] ());
  let code, out, err = run_cli [ old_dir; new_dir ] in
  check int "unsupported schema exits 2" 2 code;
  check bool "error names the schema" true
    (contains err "invalid report" && contains err "schema_version 9");
  check string "stdout stays clean" "" out

let test_cli_schema_window_diffs_clean () =
  (* the v1 -> v2 bump is additive: checked-in v1 baselines must keep
     diffing against fresh v2 reports, with the bump noted in the header *)
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json" (report ~schema:1 ~counters:[ ("a", 3) ] ());
  write_json new_dir "001-row.json"
    (report ~schema:2 ~meta:[ ("ocaml_version", "5.1.1") ] ~counters:[ ("a", 3) ] ());
  let code, out, err = run_cli [ old_dir; new_dir ] in
  check int "cross-schema pair diffs clean" 0 code;
  check bool "bump noted in the header" true (contains out "schema_version differs: 1 -> 2");
  check string "stderr stays clean" "" err

let test_cli_meta_mismatch_header () =
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json"
    (report ~schema:2 ~meta:[ ("hostname", "alpha") ] ~counters:[ ("a", 3) ] ());
  write_json new_dir "001-row.json"
    (report ~schema:2 ~meta:[ ("hostname", "beta") ] ~counters:[ ("a", 3) ] ());
  let code, out, _ = run_cli [ old_dir; new_dir ] in
  check int "meta mismatch alone does not gate" 0 code;
  check bool "mismatch printed in the header" true
    (contains out "hostname differs: alpha -> beta")

let test_cli_regression_exits_one () =
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json" (report ~counters:[ ("a", 100) ] ());
  write_json new_dir "001-row.json" (report ~counters:[ ("a", 200) ] ());
  let code, out, err = run_cli [ old_dir; new_dir ] in
  check int "gated delta exits 1" 1 code;
  check bool "verdict on stdout" true (contains out "REGRESSION");
  check string "stderr stays clean" "" err;
  (* a wide-open threshold turns the same pair into a pass *)
  let code, _, _ = run_cli [ old_dir; new_dir; "--threshold=2.0" ] in
  check int "threshold flag honoured" 0 code

let test_cli_only_prefix_filters () =
  (* --only gates just the named metric namespace: the gated row counter
     still fails, while noise outside the prefix stops gating *)
  with_two_dirs @@ fun old_dir new_dir ->
  write_json old_dir "001-row.json" (report ~counters:[ ("row.a", 100); ("noise.b", 100) ] ());
  write_json new_dir "001-row.json" (report ~counters:[ ("row.a", 100); ("noise.b", 900) ] ());
  let code, out, _ = run_cli [ old_dir; new_dir; "--only=counters.row." ] in
  check int "out-of-prefix delta does not gate" 0 code;
  check bool "filtered delta not listed" true (not (contains out "noise.b"));
  let code, _, _ = run_cli [ old_dir; new_dir ] in
  check int "same pair gates without --only" 1 code;
  write_json new_dir "001-row.json" (report ~counters:[ ("row.a", 400); ("noise.b", 900) ] ());
  let code, out, _ = run_cli [ old_dir; new_dir; "--only=counters.row." ] in
  check int "in-prefix delta still gates" 1 code;
  check bool "gated metric listed" true (contains out "row.a")

let () =
  Alcotest.run "regress"
    [
      ( "compare",
        [
          Alcotest.test_case "identical reports" `Quick test_identical_reports;
          Alcotest.test_case "changed metrics only" `Quick test_changed_metrics_only;
          Alcotest.test_case "one-sided metric vs zero" `Quick
            test_one_sided_metric_compares_to_zero;
          Alcotest.test_case "gate is symmetric" `Quick test_gate_is_symmetric;
          Alcotest.test_case "timings gated separately" `Quick test_timing_gated_separately;
        ] );
      ( "validate",
        [
          Alcotest.test_case "schema window" `Quick test_validate_report;
          Alcotest.test_case "meta mismatches" `Quick test_meta_mismatches;
        ] );
      ( "trend",
        [
          Alcotest.test_case "injected slowdown flagged" `Quick
            test_trend_flags_injected_slowdown;
          Alcotest.test_case "invalid report rejected" `Quick test_trend_rejects_invalid;
        ] );
      ( "dirs",
        [
          Alcotest.test_case "self-diff passes" `Quick test_self_diff_passes;
          Alcotest.test_case "regression fails the gate" `Quick test_regression_fails;
          Alcotest.test_case "missing experiment fails" `Quick test_missing_experiment_fails;
          Alcotest.test_case "new experiment passes" `Quick test_new_experiment_passes;
        ] );
      ( "integration",
        [ Alcotest.test_case "real reports round-trip" `Quick test_real_reports_round_trip ] );
      ( "cli",
        [
          Alcotest.test_case "usage errors exit 2" `Quick test_cli_usage_errors;
          Alcotest.test_case "bad threshold exits 2" `Quick test_cli_bad_threshold;
          Alcotest.test_case "missing directory exits 2" `Quick test_cli_missing_directory;
          Alcotest.test_case "clean pair exits 0" `Quick test_cli_clean_pair_exits_zero;
          Alcotest.test_case "unparsable report exits 2" `Quick
            test_cli_unparsable_report_exits_two;
          Alcotest.test_case "unsupported schema exits 2" `Quick
            test_cli_unsupported_schema_exits_two;
          Alcotest.test_case "schema window diffs clean" `Quick
            test_cli_schema_window_diffs_clean;
          Alcotest.test_case "meta mismatch header" `Quick test_cli_meta_mismatch_header;
          Alcotest.test_case "regression exits 1" `Quick test_cli_regression_exits_one;
          Alcotest.test_case "--only prefix filter" `Quick test_cli_only_prefix_filters;
        ] );
    ]
