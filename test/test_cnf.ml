(* Tseitin bridge and checker tests: SAT answers must agree with
   brute-force evaluation of the AIG cones, across one shared clause
   database. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let answer_t =
  Alcotest.testable
    (fun ppf -> function
      | Cnf.Checker.Yes -> Format.pp_print_string ppf "Yes"
      | Cnf.Checker.No -> Format.pp_print_string ppf "No"
      | Cnf.Checker.Maybe -> Format.pp_print_string ppf "Maybe")
    ( = )

let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

let brute_sat aig nvars lits =
  let rec go mask =
    mask < 1 lsl nvars
    && (List.for_all (fun l -> eval_mask aig l mask) lits || go (mask + 1))
  in
  go 0

(* ---------- tseitin ---------- *)

let test_tseitin_basics () =
  let aig = Aig.create () in
  let ts = Cnf.Tseitin.create aig in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f = Aig.and_ aig x y in
  let sl = Cnf.Tseitin.sat_lit ts f in
  let solver = Cnf.Tseitin.solver ts in
  check bool "f satisfiable" true (Sat.Solver.solve ~assumptions:[ sl ] solver = Sat.Solver.Sat);
  check bool "model sets x" true (Cnf.Tseitin.model_var ts 0);
  check bool "model sets y" true (Cnf.Tseitin.model_var ts 1);
  (* ~f with f's clauses already loaded *)
  let nsl = Cnf.Tseitin.sat_lit ts (Aig.not_ f) in
  check bool "~f satisfiable" true (Sat.Solver.solve ~assumptions:[ nsl ] solver = Sat.Solver.Sat);
  check bool "f & ~f unsat" true
    (Sat.Solver.solve ~assumptions:[ sl; nsl ] solver = Sat.Solver.Unsat)

let test_tseitin_constants () =
  let aig = Aig.create () in
  let ts = Cnf.Tseitin.create aig in
  let solver = Cnf.Tseitin.solver ts in
  let t = Cnf.Tseitin.sat_lit ts Aig.true_ in
  check bool "true satisfiable" true (Sat.Solver.solve ~assumptions:[ t ] solver = Sat.Solver.Sat);
  let f = Cnf.Tseitin.sat_lit ts Aig.false_ in
  check bool "false unsatisfiable" true
    (Sat.Solver.solve ~assumptions:[ f ] solver = Sat.Solver.Unsat)

let test_tseitin_incremental_sharing () =
  let aig = Aig.create () in
  let ts = Cnf.Tseitin.create aig in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.and_ aig x y in
  ignore (Cnf.Tseitin.sat_lit ts f);
  let encoded_before = Cnf.Tseitin.encoded_nodes ts in
  (* a cone that shares f adds only the new nodes *)
  let g = Aig.and_ aig f z in
  ignore (Cnf.Tseitin.sat_lit ts g);
  let encoded_after = Cnf.Tseitin.encoded_nodes ts in
  (* one new AND node and one new leaf; f's cone is reused *)
  check int "only the new nodes encoded" (encoded_before + 2) encoded_after;
  (* re-encoding is free *)
  ignore (Cnf.Tseitin.sat_lit ts g);
  check int "idempotent" encoded_after (Cnf.Tseitin.encoded_nodes ts)

(* ---------- checker ---------- *)

let test_checker_satisfiable () =
  let aig = Aig.create () in
  let ch = Cnf.Checker.create aig in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  check answer_t "x & y" Cnf.Checker.Yes (Cnf.Checker.satisfiable ch [ x; y ]);
  check answer_t "x & ~x" Cnf.Checker.No (Cnf.Checker.satisfiable ch [ x; Aig.not_ x ]);
  check answer_t "short-circuit constant false" Cnf.Checker.No
    (Cnf.Checker.satisfiable ch [ x; Aig.false_ ]);
  check answer_t "empty conjunction" Cnf.Checker.Yes (Cnf.Checker.satisfiable ch [])

let test_checker_valid_equal () =
  let aig = Aig.create () in
  let ch = Cnf.Checker.create aig in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  check answer_t "tautology" Cnf.Checker.Yes (Cnf.Checker.valid ch (Aig.or_ aig x (Aig.not_ x)));
  check answer_t "non-tautology" Cnf.Checker.No (Cnf.Checker.valid ch x);
  (* De Morgan *)
  let lhs = Aig.not_ (Aig.and_ aig x y) in
  let rhs = Aig.or_ aig (Aig.not_ x) (Aig.not_ y) in
  check answer_t "de morgan" Cnf.Checker.Yes (Cnf.Checker.equal ch lhs rhs);
  check answer_t "x != y" Cnf.Checker.No (Cnf.Checker.equal ch x y);
  check answer_t "literal equality shortcut" Cnf.Checker.Yes (Cnf.Checker.equal ch x x);
  check answer_t "complement shortcut" Cnf.Checker.No (Cnf.Checker.equal ch x (Aig.not_ x))

let test_checker_implies () =
  let aig = Aig.create () in
  let ch = Cnf.Checker.create aig in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  check answer_t "x&y implies x" Cnf.Checker.Yes (Cnf.Checker.implies ch (Aig.and_ aig x y) x);
  check answer_t "x does not imply x&y" Cnf.Checker.No
    (Cnf.Checker.implies ch x (Aig.and_ aig x y));
  check answer_t "false implies anything" Cnf.Checker.Yes (Cnf.Checker.implies ch Aig.false_ x)

let test_checker_equal_under () =
  let aig = Aig.create () in
  let ch = Cnf.Checker.create aig in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  (* under the care set x, the functions y and x&y coincide *)
  check answer_t "DC equality" Cnf.Checker.Yes
    (Cnf.Checker.equal_under ch ~care:x y (Aig.and_ aig x y));
  (* globally they differ *)
  check answer_t "global difference" Cnf.Checker.No
    (Cnf.Checker.equal ch y (Aig.and_ aig x y));
  (* under an unsatisfiable care set everything is equal *)
  check answer_t "empty care set" Cnf.Checker.Yes
    (Cnf.Checker.equal_under ch ~care:Aig.false_ x y)

let test_checker_model () =
  let aig = Aig.create () in
  let ch = Cnf.Checker.create aig in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f = Aig.and_ aig x (Aig.not_ y) in
  check answer_t "sat" Cnf.Checker.Yes (Cnf.Checker.satisfiable ch [ f ]);
  check bool "model x" true (Cnf.Checker.model_var ch 0);
  check bool "model y" false (Cnf.Checker.model_var ch 1);
  let assignment = Cnf.Checker.model ch [ 0; 1 ] in
  check bool "model list" true (assignment = [ (0, true); (1, false) ])

let test_checker_budget () =
  let aig = Aig.create () in
  let ch = Cnf.Checker.create aig in
  (* encode a pigeonhole-like hard instance as an AIG *)
  let holes = 7 in
  let pigeons = holes + 1 in
  let var p h = Aig.var aig ((p * holes) + h) in
  let per_pigeon =
    List.init pigeons (fun p -> Aig.or_list aig (List.init holes (fun h -> var p h)))
  in
  let no_share =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p2 > p1 then
                  Some (Aig.not_ (Aig.and_ aig (var p1 h) (var p2 h)))
                else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  let formula = Aig.and_list aig (per_pigeon @ no_share) in
  Cnf.Checker.set_conflict_limit ch (Some 3);
  check answer_t "budget cuts off" Cnf.Checker.Maybe (Cnf.Checker.satisfiable ch [ formula ]);
  check bool "cutoff counted" true (Cnf.Checker.budget_cutoffs ch > 0);
  Cnf.Checker.set_conflict_limit ch None;
  check answer_t "full run decides" Cnf.Checker.No (Cnf.Checker.satisfiable ch [ formula ])

let test_query_counter () =
  let aig = Aig.create () in
  let ch = Cnf.Checker.create aig in
  let x = Aig.var aig 0 in
  let q0 = Cnf.Checker.queries ch in
  ignore (Cnf.Checker.satisfiable ch [ x ]);
  ignore (Cnf.Checker.valid ch x);
  check bool "queries counted" true (Cnf.Checker.queries ch > q0)

(* ---------- properties: random cones vs brute force ---------- *)

let nvars = 4
let build = Gen_util.build_aig
let qc_expr = Gen_util.qc_expr ~size:16 nvars

let sat_matches_brute_force =
  QCheck.Test.make ~name:"checker satisfiable = enumeration" ~count:200 qc_expr (fun e ->
      let aig = Aig.create () in
      let ch = Cnf.Checker.create aig in
      let l = build aig e in
      let expected = brute_sat aig nvars [ l ] in
      match Cnf.Checker.satisfiable ch [ l ] with
      | Cnf.Checker.Yes -> expected
      | Cnf.Checker.No -> not expected
      | Cnf.Checker.Maybe -> false)

let equal_matches_semantics =
  QCheck.Test.make ~name:"checker equal = semantic equality" ~count:200
    (QCheck.pair qc_expr qc_expr) (fun (e1, e2) ->
      let aig = Aig.create () in
      let ch = Cnf.Checker.create aig in
      let a = build aig e1 and b = build aig e2 in
      let semantic =
        let rec go mask =
          mask >= 1 lsl nvars
          || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
        in
        go 0
      in
      match Cnf.Checker.equal ch a b with
      | Cnf.Checker.Yes -> semantic
      | Cnf.Checker.No -> not semantic
      | Cnf.Checker.Maybe -> false)

let model_is_witness =
  QCheck.Test.make ~name:"checker models satisfy the query" ~count:200 qc_expr (fun e ->
      let aig = Aig.create () in
      let ch = Cnf.Checker.create aig in
      let l = build aig e in
      match Cnf.Checker.satisfiable ch [ l ] with
      | Cnf.Checker.Yes -> Aig.eval aig l (fun v -> Cnf.Checker.model_var ch v)
      | Cnf.Checker.No | Cnf.Checker.Maybe -> true)

let shared_database_consistency =
  (* many queries on one checker must each be answered as if fresh *)
  QCheck.Test.make ~name:"query results independent of query history" ~count:50
    (QCheck.list_of_size (QCheck.Gen.int_range 2 8) qc_expr)
    (fun exprs ->
      let aig = Aig.create () in
      let shared = Cnf.Checker.create aig in
      let lits = List.map (build aig) exprs in
      List.for_all
        (fun l ->
          let expected = brute_sat aig nvars [ l ] in
          match Cnf.Checker.satisfiable shared [ l ] with
          | Cnf.Checker.Yes -> expected
          | Cnf.Checker.No -> not expected
          | Cnf.Checker.Maybe -> false)
        lits)

let equal_under_matches_semantics =
  QCheck.Test.make ~name:"equal_under = pointwise equality on the care onset" ~count:150
    (QCheck.triple qc_expr qc_expr qc_expr) (fun (ec, e1, e2) ->
      let aig = Aig.create () in
      let ch = Cnf.Checker.create aig in
      let care = build aig ec and a = build aig e1 and b = build aig e2 in
      let semantic =
        let rec go mask =
          mask >= 1 lsl nvars
          || (((not (eval_mask aig care mask))
              || eval_mask aig a mask = eval_mask aig b mask)
             && go (mask + 1))
        in
        go 0
      in
      match Cnf.Checker.equal_under ch ~care a b with
      | Cnf.Checker.Yes -> semantic
      | Cnf.Checker.No -> not semantic
      | Cnf.Checker.Maybe -> false)

let () =
  Alcotest.run "cnf"
    [
      ( "tseitin",
        [
          Alcotest.test_case "encode and solve" `Quick test_tseitin_basics;
          Alcotest.test_case "constants" `Quick test_tseitin_constants;
          Alcotest.test_case "incremental sharing" `Quick test_tseitin_incremental_sharing;
        ] );
      ( "checker",
        [
          Alcotest.test_case "satisfiable" `Quick test_checker_satisfiable;
          Alcotest.test_case "valid/equal" `Quick test_checker_valid_equal;
          Alcotest.test_case "implies" `Quick test_checker_implies;
          Alcotest.test_case "equal under care set" `Quick test_checker_equal_under;
          Alcotest.test_case "model extraction" `Quick test_checker_model;
          Alcotest.test_case "conflict budget" `Quick test_checker_budget;
          Alcotest.test_case "query counter" `Quick test_query_counter;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest sat_matches_brute_force;
          QCheck_alcotest.to_alcotest equal_matches_semantics;
          QCheck_alcotest.to_alcotest model_is_witness;
          QCheck_alcotest.to_alcotest shared_database_consistency;
          QCheck_alcotest.to_alcotest equal_under_matches_semantics;
        ] );
    ]
