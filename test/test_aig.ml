(* AIG manager tests: construction rules, semantics against brute-force
   evaluation, cones, cofactors, composition, rebuilding, simulation. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* evaluate a literal under an assignment encoded as an int bitmask *)
let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

(* semantic equality of two literals over [n] variables, by enumeration *)
let semantically_equal aig n a b =
  let rec go mask =
    mask >= 1 lsl n || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
  in
  go 0

(* ---------- constructors and trivial rules ---------- *)

let test_constants () =
  let aig = Aig.create () in
  check bool "false is const" true (Aig.is_const Aig.false_);
  check bool "true is const" true (Aig.is_const Aig.true_);
  check int "not false = true" Aig.true_ (Aig.not_ Aig.false_);
  check int "double negation" Aig.false_ (Aig.not_ (Aig.not_ Aig.false_));
  let x = Aig.var aig 0 in
  check int "x & 1 = x" x (Aig.and_ aig x Aig.true_);
  check int "x & 0 = 0" Aig.false_ (Aig.and_ aig x Aig.false_);
  check int "x & x = x" x (Aig.and_ aig x x);
  check int "x & ~x = 0" Aig.false_ (Aig.and_ aig x (Aig.not_ x))

let test_or_xor_ite () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and c = Aig.var aig 2 in
  check bool "or truth table" true
    (semantically_equal aig 2 (Aig.or_ aig x y) (Aig.not_ (Aig.and_ aig (Aig.not_ x) (Aig.not_ y))));
  (* xor: differs from or exactly when both inputs are 1 *)
  let xor = Aig.xor_ aig x y in
  check bool "xor 00" false (eval_mask aig xor 0b00);
  check bool "xor 01" true (eval_mask aig xor 0b01);
  check bool "xor 10" true (eval_mask aig xor 0b10);
  check bool "xor 11" false (eval_mask aig xor 0b11);
  let ite = Aig.ite aig c x y in
  (* c=1 selects x (var 0), c=0 selects y (var 1) *)
  check bool "ite c" true (eval_mask aig ite 0b101);
  check bool "ite ~c" true (eval_mask aig ite 0b010);
  check bool "iff" true (semantically_equal aig 2 (Aig.iff_ aig x y) (Aig.not_ xor));
  check bool "implies" true
    (semantically_equal aig 2 (Aig.implies aig x y) (Aig.or_ aig (Aig.not_ x) y))

let test_strash_sharing () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let a = Aig.and_ aig x y in
  let b = Aig.and_ aig y x in
  check int "commuted AND shares the node" a b;
  let before = Aig.num_ands aig in
  let _ = Aig.and_ aig x y in
  check int "no new node for repeat" before (Aig.num_ands aig)

(* the two-level "semi-canonicity" rewrite rules *)
let test_rewrite_rules () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let xy = Aig.and_ aig x y in
  check int "contradiction: (x&y)&~x = 0" Aig.false_ (Aig.and_ aig xy (Aig.not_ x));
  check int "idempotence: (x&y)&x = x&y" xy (Aig.and_ aig xy x);
  check int "subsumption: ~(x&y)&~x = ~x" (Aig.not_ x) (Aig.and_ aig (Aig.not_ xy) (Aig.not_ x));
  (* substitution: ~(x&y)&x = x&~y *)
  let subst = Aig.and_ aig (Aig.not_ xy) x in
  check int "substitution rewrites" (Aig.and_ aig x (Aig.not_ y)) subst;
  (* two-sided: (x&y)&(~x&z) = 0 *)
  let z = Aig.var aig 2 in
  let other = Aig.and_ aig (Aig.not_ x) z in
  check int "two-sided contradiction" Aig.false_ (Aig.and_ aig xy other)

let test_and_or_lists () =
  let aig = Aig.create () in
  let xs = List.init 4 (Aig.var aig) in
  let conj = Aig.and_list aig xs in
  check bool "and_list all ones" true (eval_mask aig conj 0b1111);
  check bool "and_list one zero" false (eval_mask aig conj 0b0111);
  let disj = Aig.or_list aig xs in
  check bool "or_list all zero" false (eval_mask aig disj 0b0000);
  check bool "or_list one set" true (eval_mask aig disj 0b0100);
  check int "empty and_list" Aig.true_ (Aig.and_list aig []);
  check int "empty or_list" Aig.false_ (Aig.or_list aig [])

(* ---------- structure ---------- *)

let test_vars () =
  let aig = Aig.create () in
  let v0 = Aig.fresh_var aig in
  let v1 = Aig.fresh_var aig in
  check int "var indices dense" 0 v0;
  check int "second var" 1 v1;
  check int "num_vars" 2 (Aig.num_vars aig);
  let x = Aig.var aig 0 in
  check (Alcotest.option int) "var_of_lit positive" (Some 0) (Aig.var_of_lit aig x);
  check (Alcotest.option int) "var_of_lit negative" (Some 0) (Aig.var_of_lit aig (Aig.not_ x));
  check (Alcotest.option int) "var_of_lit on const" None (Aig.var_of_lit aig Aig.false_);
  (* var auto-allocates intermediate variables *)
  let aig2 = Aig.create () in
  let _ = Aig.var aig2 3 in
  check int "auto-allocated up to index" 4 (Aig.num_vars aig2)

let test_cone_topological () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let w = Aig.var aig 3 in
  let a = Aig.and_ aig x y in
  let b = Aig.and_ aig a z in
  let c = Aig.and_ aig b w in
  let nodes = Aig.cone aig [ c ] in
  check int "three AND nodes" 3 (List.length nodes);
  (* fanins precede users *)
  let pos n = Option.get (List.find_index (fun m -> m = n) nodes) in
  check bool "a before b" true (pos (Aig.node_of_lit a) < pos (Aig.node_of_lit b));
  check bool "b before c" true (pos (Aig.node_of_lit b) < pos (Aig.node_of_lit c))

let test_size_and_support () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f = Aig.xor_ aig x y in
  check bool "xor size is small" true (Aig.size aig f <= 3);
  check (Alcotest.list int) "support" [ 0; 1 ] (Aig.support aig f);
  check bool "depends_on x" true (Aig.depends_on aig f 0);
  check bool "not depends_on z" false (Aig.depends_on aig f 5);
  check int "const size" 0 (Aig.size aig Aig.true_);
  check (Alcotest.list int) "const support" [] (Aig.support aig Aig.false_)

let test_levels () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  check int "leaf level" 0 (Aig.level aig (Aig.node_of_lit x));
  let a = Aig.and_ aig x y in
  check int "and level" 1 (Aig.level aig (Aig.node_of_lit a));
  let z = Aig.var aig 2 in
  let b = Aig.and_ aig a z in
  check int "nested level" 2 (Aig.level aig (Aig.node_of_lit b))

let test_fanins () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let a = Aig.and_ aig x y in
  let f0, f1 = Aig.fanins aig (Aig.node_of_lit a) in
  check bool "fanins are the operands" true
    ((f0 = x && f1 = y) || (f0 = y && f1 = x));
  Alcotest.check_raises "fanins of leaf" (Invalid_argument "Aig.fanins: not an AND node")
    (fun () -> ignore (Aig.fanins aig (Aig.node_of_lit x)))

(* ---------- functional operations ---------- *)

let test_cofactor_shannon () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.or_ aig (Aig.and_ aig x y) (Aig.and_ aig (Aig.not_ x) z) in
  let f0 = Aig.cofactor aig f ~v:0 ~phase:false in
  let f1 = Aig.cofactor aig f ~v:0 ~phase:true in
  check bool "negative cofactor is z" true (semantically_equal aig 3 f0 z);
  check bool "positive cofactor is y" true (semantically_equal aig 3 f1 y);
  (* Shannon: f = (x & f1) | (~x & f0) *)
  let shannon = Aig.or_ aig (Aig.and_ aig x f1) (Aig.and_ aig (Aig.not_ x) f0) in
  check bool "shannon expansion" true (semantically_equal aig 3 f shannon);
  check bool "cofactor removes the variable" false (Aig.depends_on aig f1 0)

let test_compose () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.xor_ aig x y in
  (* substitute y := y & z *)
  let g = Aig.compose aig f ~subst:(fun v -> if v = 1 then Some (Aig.and_ aig y z) else None) in
  let expected = Aig.xor_ aig x (Aig.and_ aig y z) in
  check bool "compose semantics" true (semantically_equal aig 3 g expected);
  (* identity substitution is a no-op *)
  let h = Aig.compose aig f ~subst:(fun _ -> None) in
  check int "identity compose" f h

let test_rebuild () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let z = Aig.var aig 2 in
  let a = Aig.and_ aig x y in
  (* the rewrite front-end folds (x&y)&~x to 0 on its own *)
  check int "contradiction folded" Aig.false_ (Aig.and_ aig a (Aig.not_ x));
  let c = Aig.and_ aig a z in
  (* replace node a by x: c becomes x & z *)
  let repl n = if n = Aig.node_of_lit a then x else Aig.lit_of_node n in
  let c' = Aig.rebuild aig ~repl c in
  check bool "rebuild applies substitution" true (semantically_equal aig 3 c' (Aig.and_ aig x z));
  (* identity rebuild preserves the literal *)
  check int "identity rebuild" c (Aig.rebuild aig ~repl:Aig.lit_of_node c)

let test_rebuild_complemented_target () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let a = Aig.and_ aig x y in
  let f = Aig.or_ aig a (Aig.var aig 2) in
  (* replace a by ~x (a complemented literal) *)
  let repl n = if n = Aig.node_of_lit a then Aig.not_ x else Aig.lit_of_node n in
  let f' = Aig.rebuild aig ~repl f in
  let expected = Aig.or_ aig (Aig.not_ x) (Aig.var aig 2) in
  check bool "complemented replacement" true (semantically_equal aig 3 f' expected)

(* ---------- evaluation and simulation ---------- *)

let test_simulate_matches_eval () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.ite aig x (Aig.xor_ aig y z) (Aig.and_ aig y z) in
  (* pack all 8 assignments into one word: bit i of var v's word is the
     value of v in assignment i *)
  let words v =
    let w = ref 0L in
    for mask = 0 to 7 do
      if (mask lsr v) land 1 = 1 then w := Int64.logor !w (Int64.shift_left 1L mask)
    done;
    !w
  in
  let word = Aig.simulate aig f words in
  for mask = 0 to 7 do
    let sim_bit = Int64.logand (Int64.shift_right_logical word mask) 1L = 1L in
    check bool (Printf.sprintf "assignment %d" mask) (eval_mask aig f mask) sim_bit
  done

let test_simulate_cone_leaves () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 in
  (* literal that is just a leaf: simulate must still answer *)
  check bool "leaf simulation" true (Int64.equal (Aig.simulate aig x (fun _ -> -1L)) (-1L));
  check bool "complemented leaf" true
    (Int64.equal (Aig.simulate aig (Aig.not_ x) (fun _ -> -1L)) 0L);
  check bool "constant" true (Int64.equal (Aig.simulate aig Aig.true_ (fun _ -> 0L)) (-1L))

(* ---------- qcheck: random expression semantics ---------- *)

(* random expression tree over n variables, evaluated both as an AIG and
   directly *)
let nvars = 4
let build_aig = Gen_util.build_aig
let eval_expr = Gen_util.eval_expr
let qc_expr = Gen_util.qc_expr nvars

let aig_matches_expr =
  QCheck.Test.make ~name:"AIG agrees with direct evaluation" ~count:300 qc_expr (fun e ->
      let aig = Aig.create () in
      let l = build_aig aig e in
      let rec go mask =
        mask >= 1 lsl nvars
        || eval_mask aig l mask = eval_expr (fun v -> (mask lsr v) land 1 = 1) e
           && go (mask + 1)
      in
      go 0)

let cofactor_is_shannon =
  QCheck.Test.make ~name:"cofactor satisfies the Shannon identity" ~count:200 qc_expr (fun e ->
      let aig = Aig.create () in
      let l = build_aig aig e in
      let x = Aig.var aig 0 in
      let f0 = Aig.cofactor aig l ~v:0 ~phase:false in
      let f1 = Aig.cofactor aig l ~v:0 ~phase:true in
      let shannon = Aig.or_ aig (Aig.and_ aig x f1) (Aig.and_ aig (Aig.not_ x) f0) in
      semantically_equal aig nvars l shannon
      && (not (Aig.depends_on aig f0 0))
      && not (Aig.depends_on aig f1 0))

let rebuild_identity =
  QCheck.Test.make ~name:"identity rebuild preserves semantics" ~count:200 qc_expr (fun e ->
      let aig = Aig.create () in
      let l = build_aig aig e in
      let l' = Aig.rebuild aig ~repl:Aig.lit_of_node l in
      semantically_equal aig nvars l l')

let simulate_agrees =
  QCheck.Test.make ~name:"64-bit simulation agrees with eval" ~count:200 qc_expr (fun e ->
      let aig = Aig.create () in
      let l = build_aig aig e in
      let words v =
        let w = ref 0L in
        for mask = 0 to (1 lsl nvars) - 1 do
          if (mask lsr v) land 1 = 1 then w := Int64.logor !w (Int64.shift_left 1L mask)
        done;
        !w
      in
      let word = Aig.simulate aig l words in
      let rec go mask =
        mask >= 1 lsl nvars
        || Int64.logand (Int64.shift_right_logical word mask) 1L
           = (if eval_mask aig l mask then 1L else 0L)
           && go (mask + 1)
      in
      go 0)

let support_is_sound =
  QCheck.Test.make ~name:"variables outside the support never matter" ~count:100 qc_expr
    (fun e ->
      let aig = Aig.create () in
      let l = build_aig aig e in
      let support = Aig.support aig l in
      let outside = List.filter (fun v -> not (List.mem v support)) [ 0; 1; 2; 3 ] in
      List.for_all
        (fun v ->
          let f0 = Aig.cofactor aig l ~v ~phase:false in
          let f1 = Aig.cofactor aig l ~v ~phase:true in
          f0 = l && f1 = l)
        outside)

(* deep-cone stress: every traversal (cone, size, support, cofactor,
   compose, rebuild, simulate, Tseitin encoding) must survive cones far
   deeper than the call stack would allow for naive recursion *)
let test_deep_chain_stress () =
  let aig = Aig.create () in
  let depth = 200_000 in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  (* alternate the pattern so the rewrite rules cannot collapse the chain *)
  let f = ref (Aig.var aig 2) in
  for i = 0 to depth - 1 do
    f := if i mod 2 = 0 then Aig.and_ aig !f x else Aig.not_ (Aig.and_ aig !f y)
  done;
  let f = !f in
  check bool "chain is deep" true (Aig.size aig f > depth / 2);
  check (Alcotest.list int) "support" [ 0; 1; 2 ] (Aig.support aig f);
  (* identity rebuild over the whole chain (iterative path) *)
  let f' = Aig.rebuild aig ~repl:Aig.lit_of_node f in
  check int "identity rebuild" f f';
  (* cofactor and simulate traverse the same depth *)
  let f0 = Aig.cofactor aig f ~v:0 ~phase:true in
  check bool "cofactor dropped x" false (Aig.depends_on aig f0 0);
  let w = Aig.simulate aig f (fun _ -> -1L) in
  check bool "simulation completes" true (Int64.equal w w);
  check bool "eval completes" true (Aig.eval aig f (fun _ -> true) || true)

let () =
  Alcotest.run "aig"
    [
      ( "construction",
        [
          Alcotest.test_case "constants and trivial rules" `Quick test_constants;
          Alcotest.test_case "or/xor/ite/iff/implies" `Quick test_or_xor_ite;
          Alcotest.test_case "structural hashing" `Quick test_strash_sharing;
          Alcotest.test_case "two-level rewrite rules" `Quick test_rewrite_rules;
          Alcotest.test_case "and_list/or_list" `Quick test_and_or_lists;
        ] );
      ( "structure",
        [
          Alcotest.test_case "variables" `Quick test_vars;
          Alcotest.test_case "cone is topological" `Quick test_cone_topological;
          Alcotest.test_case "size and support" `Quick test_size_and_support;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "fanins" `Quick test_fanins;
        ] );
      ( "functional",
        [
          Alcotest.test_case "cofactor (Shannon)" `Quick test_cofactor_shannon;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "rebuild with substitution" `Quick test_rebuild;
          Alcotest.test_case "rebuild with complemented target" `Quick
            test_rebuild_complemented_target;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "simulate matches eval" `Quick test_simulate_matches_eval;
          Alcotest.test_case "leaf/constant simulation" `Quick test_simulate_cone_leaves;
        ] );
      ("stress", [ Alcotest.test_case "200k-deep chain" `Quick test_deep_chain_stress ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest aig_matches_expr;
          QCheck_alcotest.to_alcotest cofactor_is_shannon;
          QCheck_alcotest.to_alcotest rebuild_identity;
          QCheck_alcotest.to_alcotest simulate_agrees;
          QCheck_alcotest.to_alcotest support_is_sound;
        ] );
    ]
