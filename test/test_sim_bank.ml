(* Bit-parallel simulation engine and counterexample pattern bank:
   signature semantics against brute-force evaluation, bank persistence
   across sweeps, recycled counterexamples splitting candidate classes,
   and the don't-care pre-filter's soundness. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

let semantically_equal aig nvars a b =
  let rec go mask =
    mask >= 1 lsl nvars || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
  in
  go 0

(* ---------- signature semantics ---------- *)

let test_refine_lane0_oracle () =
  (* the refinement word carries the model in lane 0, so bit 0 of the
     last signature word must equal concrete evaluation under the model *)
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let f = Aig.or_ aig (Aig.and_ aig x y) (Aig.and_ aig (Aig.not_ y) z) in
  let prng = Util.Prng.create 4 in
  let sim = Sweep.Sim.create aig ~roots:[ f ] ~rounds:2 ~prng in
  let pattern v = v = 1 || v = 2 in
  ignore (Sweep.Sim.refine sim pattern);
  let w = Sweep.Sim.words sim - 1 in
  List.iter
    (fun n ->
      let l = Aig.lit_of_node n in
      let bit0 = Int64.logand (Sweep.Sim.lit_word sim l w) 1L = 1L in
      check bool
        (Printf.sprintf "node %d lane 0 matches eval" n)
        (Aig.eval aig l pattern) bit0)
    (Sweep.Sim.nodes sim)

let test_accessors () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f = Aig.and_ aig x y in
  let prng = Util.Prng.create 5 in
  let sim = Sweep.Sim.create aig ~roots:[ f ] ~rounds:3 ~prng in
  check int "words = rounds without a bank" 3 (Sweep.Sim.words sim);
  check int "no bank words" 0 (Sweep.Sim.bank_words sim);
  check bool "support vars exposed" true (Sweep.Sim.vars sim = [ 0; 1 ]);
  (* literals outside the cone: empty signature, lit_word raises *)
  let stranger = Aig.var aig 9 in
  check int "unknown literal: empty signature" 0
    (Array.length (Sweep.Sim.lit_signature sim stranger));
  check bool "lit_word rejects unknown literals" true
    (match Sweep.Sim.lit_word sim stranger 0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check bool "lit_word rejects out-of-range words" true
    (match Sweep.Sim.lit_word sim f 3 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_classes_ordering () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 in
  let xor1 = Aig.xor_ aig x y in
  let xor2 = Aig.or_ aig (Aig.and_ aig x (Aig.not_ y)) (Aig.and_ aig (Aig.not_ x) y) in
  let f = Aig.and_ aig xor1 z and g = Aig.and_ aig xor2 z in
  let prng = Util.Prng.create 1 in
  let sim = Sweep.Sim.create aig ~roots:[ f; g ] ~rounds:4 ~prng in
  List.iter
    (fun members ->
      check bool "classes have >= 2 members" true (List.length members >= 2);
      let ids = List.map Aig.node_of_lit members in
      check bool "members ascend by node id" true (List.sort Int.compare ids = ids);
      match members with
      | repr :: rest ->
        List.iter (fun m -> check bool "members are same_class" true (Sweep.Sim.same_class sim repr m)) rest
      | [] -> ())
    (Sweep.Sim.classes sim)

(* property: exact simulation can never separate equal functions — two
   literals equal modulo complementation always share a class (structural
   diversity exercises the compiled cone evaluator on both builds) *)

let nvars = 4
let build = Gen_util.build_aig
let qc_pair = Gen_util.qc_pair nvars

let signatures_never_separate_equals =
  QCheck.Test.make ~name:"equal functions always share a class" ~count:80 qc_pair
    (fun (e1, e2) ->
      let aig = Aig.create () in
      let f = build aig e1 and g = build aig e2 in
      let prng = Util.Prng.create 13 in
      let sim = Sweep.Sim.create aig ~roots:[ f; g ] ~rounds:4 ~prng in
      (not (semantically_equal aig nvars f g)) || Sweep.Sim.same_class sim f g)

let distinct_signatures_mean_distinct_functions =
  QCheck.Test.make ~name:"split classes are semantically justified" ~count:80 qc_pair
    (fun (e1, e2) ->
      let aig = Aig.create () in
      let f = build aig e1 and g = build aig e2 in
      let prng = Util.Prng.create 17 in
      let sim = Sweep.Sim.create aig ~roots:[ f; g ] ~rounds:4 ~prng in
      Sweep.Sim.same_class sim f g || not (semantically_equal aig nvars f g))

(* ---------- pattern bank ---------- *)

let test_bank_roundtrip () =
  let bank = Sweep.Pattern_bank.create ~capacity:128 () in
  check int "empty bank has no words" 0 (Sweep.Pattern_bank.n_words bank);
  Sweep.Pattern_bank.add bank [ (0, true); (2, false) ];
  Sweep.Pattern_bank.add bank [ (1, true) ];
  check int "two patterns" 2 (Sweep.Pattern_bank.size bank);
  check int "one word carries them" 1 (Sweep.Pattern_bank.n_words bank);
  (* pattern 0 in lane 0, pattern 1 in lane 1 *)
  check bool "var 0 true in pattern 0 only" true (Sweep.Pattern_bank.word bank 0 0 = 1L);
  check bool "var 1 true in pattern 1 only" true (Sweep.Pattern_bank.word bank 1 0 = 2L);
  check bool "var 2 explicitly false" true (Sweep.Pattern_bank.word bank 2 0 = 0L);
  check bool "absent var reads false" true (Sweep.Pattern_bank.word bank 7 0 = 0L);
  check bool "out-of-range word reads zero" true (Sweep.Pattern_bank.word bank 0 5 = 0L)

let test_bank_ring_overwrite () =
  let bank = Sweep.Pattern_bank.create ~capacity:64 () in
  for _ = 1 to 64 do
    Sweep.Pattern_bank.add bank [ (0, true) ]
  done;
  check int "bank full" 64 (Sweep.Pattern_bank.size bank);
  check bool "var 0 true everywhere" true (Sweep.Pattern_bank.word bank 0 0 = -1L);
  (* the 65th pattern recycles slot 0 and clears the stale bit *)
  Sweep.Pattern_bank.add bank [ (1, true) ];
  check int "size is capped" 64 (Sweep.Pattern_bank.size bank);
  check int "total adds keep counting" 65 (Sweep.Pattern_bank.added bank);
  check bool "slot 0 cleared for var 0" true
    (Int64.logand (Sweep.Pattern_bank.word bank 0 0) 1L = 0L);
  check bool "slot 0 now carries var 1" true
    (Int64.logand (Sweep.Pattern_bank.word bank 1 0) 1L = 1L)

(* a wide conjunction is indistinguishable from the constant by random
   words (success probability 2^-20 per lane), so recycling is the only
   way a pattern can split the pair without a solver *)
let wide_conjunction aig n = Aig.and_list aig (List.init n (Aig.var aig))

let test_recycled_pattern_splits_class () =
  let aig = Aig.create () in
  let conj = wide_conjunction aig 20 in
  let prng = Util.Prng.create 5 in
  let sim = Sweep.Sim.create aig ~roots:[ conj ] ~rounds:1 ~prng in
  check bool "random words miss the single onset point" true
    (Sweep.Sim.same_class sim conj Aig.false_);
  let bank = Sweep.Pattern_bank.create () in
  Sweep.Pattern_bank.add bank (List.init 20 (fun v -> (v, true)));
  let prng = Util.Prng.create 5 in
  let sim = Sweep.Sim.create ~bank aig ~roots:[ conj ] ~rounds:1 ~prng in
  check int "one bank word seeded" 1 (Sweep.Sim.bank_words sim);
  check bool "recycled pattern splits the class" false
    (Sweep.Sim.same_class sim conj Aig.false_)

let test_bank_persists_across_sweeps () =
  (* sweep 1 must refute near-constant candidates by SAT, distilling the
     models into the bank; sweep 2 over the same structure then pre-splits
     those classes from the recycled lanes and refutes strictly less *)
  let run bank =
    let aig = Aig.create () in
    let conj = wide_conjunction aig 20 in
    let checker = Cnf.Checker.create aig in
    let prng = Util.Prng.create 5 in
    let config = { Sweep.Sweeper.default with bdd_node_limit = 0; sim_rounds = 1 } in
    let _, report = Sweep.Sweeper.run ~config ?bank aig checker ~prng ~roots:[ conj ] in
    report
  in
  let bank = Sweep.Pattern_bank.create () in
  let r1 = run (Some bank) in
  check bool "first sweep refutes by SAT" true (r1.Sweep.Sweeper.sat_refuted > 0);
  check bool "models distilled into the bank" true (Sweep.Pattern_bank.size bank > 0);
  check int "report sees the bank" (Sweep.Pattern_bank.size bank) r1.Sweep.Sweeper.bank_patterns;
  let r2 = run (Some bank) in
  check bool "second sweep refutes strictly less" true
    (r2.Sweep.Sweeper.sat_refuted < r1.Sweep.Sweeper.sat_refuted);
  let r_fresh = run None in
  check int "without the bank the work repeats" r1.Sweep.Sweeper.sat_refuted
    r_fresh.Sweep.Sweeper.sat_refuted

(* ---------- solver model access ---------- *)

let test_model_var_opt () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 in
  let _y = Aig.var aig 1 in
  let checker = Cnf.Checker.create aig in
  check bool "query satisfiable" true (Cnf.Checker.satisfiable checker [ x ] = Cnf.Checker.Yes);
  check bool "assigned var is known" true (Cnf.Checker.model_var_opt checker 0 = Some true);
  check bool "unencoded var is unknown" true (Cnf.Checker.model_var_opt checker 1 = None);
  check bool "out-of-range var is unknown" true (Cnf.Checker.model_var_opt checker 42 = None);
  check bool "model_var defaults unknowns to false" false (Cnf.Checker.model_var checker 1);
  check bool "assigned_model keeps only real assignments" true
    (Cnf.Checker.assigned_model checker [ 0; 1; 42 ] = [ (0, true) ])

(* ---------- don't-care pre-filter soundness ---------- *)

(* The pre-filter must only discard candidate pairs some stored pattern
   distinguishes inside the care set — pairs [equal_under] would refute
   anyway. With identical seeds the banked run can therefore never find
   fewer replacements than the fresh run, and both must stay correct. *)
let qc_dc =
  QCheck.make
    ~print:(fun _ -> "<exprs+patterns>")
    QCheck.Gen.(
      triple (Gen_util.expr_gen nvars) (Gen_util.expr_gen nvars)
        (list_size (int_bound 4) (array_size (return nvars) bool)))

let prefilter_never_blocks_provable_replacements =
  QCheck.Test.make ~name:"dc pre-filter is sound and never loses replacements" ~count:40 qc_dc
    (fun (e0, e1, patterns) ->
      let run with_bank =
        let aig = Aig.create () in
        let f0 = build aig e0 and f1 = build aig e1 in
        let checker = Cnf.Checker.create aig in
        let prng = Util.Prng.create 23 in
        let bank =
          if not with_bank then None
          else begin
            let b = Sweep.Pattern_bank.create () in
            List.iter
              (fun p -> Sweep.Pattern_bank.add b (List.init nvars (fun v -> (v, p.(v)))))
              patterns;
            Some b
          end
        in
        let g, report = Synth.Dontcare.disjunction ?bank aig checker ~prng f0 f1 in
        let plain = Aig.or_ aig f0 f1 in
        ( semantically_equal aig nvars g plain,
          report.Synth.Dontcare.const_replacements + report.Synth.Dontcare.merge_replacements )
      in
      let ok_fresh, repl_fresh = run false in
      let ok_banked, repl_banked = run true in
      ok_fresh && ok_banked && repl_banked >= repl_fresh)

let () =
  Alcotest.run "sim_bank"
    [
      ( "signatures",
        [
          Alcotest.test_case "refinement lane 0 matches eval" `Quick test_refine_lane0_oracle;
          Alcotest.test_case "accessors and unknown literals" `Quick test_accessors;
          Alcotest.test_case "class shape and ordering" `Quick test_classes_ordering;
          QCheck_alcotest.to_alcotest signatures_never_separate_equals;
          QCheck_alcotest.to_alcotest distinct_signatures_mean_distinct_functions;
        ] );
      ( "pattern bank",
        [
          Alcotest.test_case "add/word roundtrip" `Quick test_bank_roundtrip;
          Alcotest.test_case "ring overwrite at capacity" `Quick test_bank_ring_overwrite;
          Alcotest.test_case "recycled pattern splits a class" `Quick
            test_recycled_pattern_splits_class;
          Alcotest.test_case "persistence across sweeps" `Quick test_bank_persists_across_sweeps;
        ] );
      ( "solver models",
        [ Alcotest.test_case "model_var_opt distinguishes unknowns" `Quick test_model_var_opt ] );
      ( "dontcare pre-filter",
        [ QCheck_alcotest.to_alcotest prefilter_never_blocks_provable_replacements ] );
    ]
