(* The resource governor and every graceful-degradation path it gates:
   governor bookkeeping, budgeted SAT queries answering Maybe, sweeping
   that keeps merges proven before exhaustion, quantification falling
   back to the naive form, and — the contract that matters — engines
   whose limited verdicts are Unknown or agree with the oracle, never a
   wrong Safe/Unsafe. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

let semantically_equal aig nvars a b =
  let rec go mask =
    mask >= 1 lsl nvars || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
  in
  go 0

(* a governor whose deadline is already behind it *)
let expired () =
  let l = Util.Limits.create ~timeout:0.0 () in
  ignore (Util.Limits.check l);
  l

(* ---------- governor bookkeeping ---------- *)

let test_unlimited_never_trips () =
  let l = Util.Limits.unlimited in
  check bool "not limited" false (Util.Limits.is_limited l);
  check bool "check clean" true (Util.Limits.check l = None);
  Util.Limits.charge_conflicts l max_int;
  Util.Limits.charge_bdd_nodes l max_int;
  check bool "charging is a no-op" true (Util.Limits.exhausted l = None);
  check bool "no conflict bound" true (Util.Limits.conflict_budget l = None);
  check bool "no bdd bound" true (Util.Limits.bdd_budget l = None)

let test_deadline_trips_and_sticks () =
  let l = Util.Limits.create ~timeout:0.0 () in
  check bool "limited" true (Util.Limits.is_limited l);
  check bool "deadline trips on poll" true (Util.Limits.check l = Some Util.Limits.Deadline);
  (* sticky without re-polling the clock *)
  check bool "exhausted is sticky" true (Util.Limits.exhausted l = Some Util.Limits.Deadline);
  check string "resource name" "deadline" (Util.Limits.resource_name Util.Limits.Deadline)

let test_conflict_pool_drains () =
  let l = Util.Limits.create ~max_conflicts:10 () in
  check bool "pool starts full" true (Util.Limits.conflict_budget l = Some 10);
  Util.Limits.charge_conflicts l 4;
  check bool "pool drains" true (Util.Limits.conflict_budget l = Some 6);
  check bool "not yet tripped" true (Util.Limits.exhausted l = None);
  Util.Limits.charge_conflicts l 6;
  check bool "dry pool trips" true (Util.Limits.exhausted l = Some Util.Limits.Conflicts);
  check bool "budget floors at zero" true (Util.Limits.conflict_budget l = Some 0)

let test_aig_ceiling () =
  let l = Util.Limits.create ~max_aig_nodes:100 () in
  check bool "under the ceiling" true (Util.Limits.check_aig_nodes l 100 = None);
  check bool "over the ceiling" true
    (Util.Limits.check_aig_nodes l 101 = Some Util.Limits.Aig_nodes)

let test_bdd_pool_is_non_fatal () =
  let l = Util.Limits.create ~max_bdd_nodes:50 () in
  Util.Limits.charge_bdd_nodes l 60;
  check bool "draining the bdd pool is not fatal" true (Util.Limits.exhausted l = None);
  check bool "but the pool is dry" true (Util.Limits.bdd_budget l = Some 0);
  (* a BDD-primary engine promotes it explicitly *)
  Util.Limits.trip l Util.Limits.Bdd_nodes;
  check bool "promoted trip is fatal" true
    (Util.Limits.exhausted l = Some Util.Limits.Bdd_nodes)

let test_first_trip_wins_and_notify_fires_once () =
  let l = Util.Limits.create ~timeout:0.0 ~max_conflicts:1 () in
  let fired = ref [] in
  Util.Limits.set_notify l (fun r -> fired := r :: !fired);
  ignore (Util.Limits.check l);
  Util.Limits.charge_conflicts l 5;
  Util.Limits.trip l Util.Limits.Aig_nodes;
  check bool "first trip wins" true (Util.Limits.exhausted l = Some Util.Limits.Deadline);
  check int "notify fired exactly once" 1 (List.length !fired);
  check bool "notify saw the first resource" true (!fired = [ Util.Limits.Deadline ])

(* ---------- cancellation ---------- *)

let test_cancel_trips_and_sticks () =
  let l = Util.Limits.create () in
  check bool "fresh governor is clean" true (Util.Limits.check l = None);
  Util.Limits.cancel l;
  check bool "cancel trips" true (Util.Limits.exhausted l = Some Util.Limits.Cancelled);
  Util.Limits.cancel l;
  check bool "idempotent and sticky" true (Util.Limits.exhausted l = Some Util.Limits.Cancelled);
  check string "resource name" "cancelled" (Util.Limits.resource_name Util.Limits.Cancelled)

let test_cancel_does_not_displace_first_trip () =
  let l = Util.Limits.create ~timeout:0.0 () in
  ignore (Util.Limits.check l);
  Util.Limits.cancel l;
  check bool "first trip wins over cancel" true
    (Util.Limits.exhausted l = Some Util.Limits.Deadline)

let test_cancel_unlimited_refused () =
  match Util.Limits.cancel Util.Limits.unlimited with
  | () -> Alcotest.fail "cancelling the shared unlimited governor must raise"
  | exception Invalid_argument _ ->
    check bool "unlimited stays clean" true (Util.Limits.exhausted Util.Limits.unlimited = None)

(* the cross-domain contract: a solver racing on another domain abandons
   its search promptly once its governor is cancelled from here *)
let test_cancel_stops_racing_solver () =
  (* pigeonhole PHP(12,11): exponentially hard for CDCL, so without the
     cancel this solve would outlive the whole suite. The governor has
     no caps at all — only the cancel hook can stop it. *)
  let pigeons = 12 and holes = 11 in
  let s = Sat.Solver.create () in
  let var = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    ignore (Sat.Solver.add_clause s (List.init holes (fun h -> Sat.Lit.pos var.(p).(h))))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        ignore
          (Sat.Solver.add_clause s [ Sat.Lit.neg_of var.(p1).(h); Sat.Lit.neg_of var.(p2).(h) ])
      done
    done
  done;
  let limits = Util.Limits.create () in
  let result = Atomic.make None in
  let d = Domain.spawn (fun () -> Atomic.set result (Some (Sat.Solver.solve ~limits s))) in
  Unix.sleepf 0.05;
  Util.Limits.cancel limits;
  let watch = Util.Stopwatch.start () in
  Domain.join d;
  let latency = Util.Stopwatch.elapsed watch in
  check bool "cancelled solve answers Unknown" true
    (Atomic.get result = Some Sat.Solver.Unknown);
  (* the solver polls the governor every 1024 search iterations, so the
     reaction is microseconds; the generous bound absorbs scheduling
     noise on a loaded single-core CI box *)
  check bool "returns promptly after the cancel" true (latency < 5.0)

(* ---------- budgeted SAT queries ---------- *)

let test_checker_shortcuts_to_maybe () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f = Aig.and_ aig x y in
  let checker = Cnf.Checker.create aig in
  check bool "decides before exhaustion" true (Cnf.Checker.satisfiable checker [ f ] = Cnf.Checker.Yes);
  Cnf.Checker.set_limits checker (expired ());
  check bool "answers Maybe after exhaustion" true
    (Cnf.Checker.satisfiable checker [ f ] = Cnf.Checker.Maybe)

let test_solver_charges_the_pool () =
  (* an unsatisfiable pigeonhole-ish core costs conflicts; the run-wide
     pool must shrink after the query *)
  let aig = Aig.create () in
  let xs = List.init 6 (Aig.var aig) in
  let sum1 = List.fold_left (Aig.xor_ aig) Aig.false_ xs in
  let sum2 = List.fold_right (fun x acc -> Aig.xor_ aig acc x) xs Aig.false_ in
  let diff = Aig.xor_ aig sum1 sum2 in
  let checker = Cnf.Checker.create aig in
  let l = Util.Limits.create ~max_conflicts:1_000_000 () in
  Cnf.Checker.set_limits checker l;
  check bool "xor trees agree" true (Cnf.Checker.satisfiable checker [ diff ] = Cnf.Checker.No);
  let remaining = Option.get (Util.Limits.conflict_budget l) in
  check bool "pool untouched or drained, never grown" true (remaining <= 1_000_000)

(* ---------- sweeping under exhaustion ---------- *)

let redundant_pair () =
  let aig = Aig.create () in
  let xs = List.init 4 (Aig.var aig) in
  let sum1 = List.fold_left (Aig.xor_ aig) Aig.false_ xs in
  let sum2 = List.fold_right (fun x acc -> Aig.xor_ aig acc x) xs Aig.false_ in
  (aig, Aig.and_ aig sum1 (List.hd xs), Aig.and_ aig sum2 (List.hd xs))

let test_sweep_under_expired_deadline_is_sound () =
  let aig, f, g = redundant_pair () in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_limits checker (expired ());
  let prng = Util.Prng.create 7 in
  let repl, report = Sweep.Sweeper.run aig checker ~prng ~roots:[ f; g ] in
  (* whatever was proven before the trip survives, and is really proven *)
  check bool "no crash, report sane" true (report.Sweep.Sweeper.total_merges >= 0);
  let f' = Aig.rebuild aig ~repl f and g' = Aig.rebuild aig ~repl g in
  check bool "f preserved" true (semantically_equal aig 4 f f');
  check bool "g preserved" true (semantically_equal aig 4 g g')

let test_conflict_trip_does_not_skip_bdd_stage () =
  (* the conflict pool gates SAT, not BDDs: with the pool already dry the
     BDD stage must still close this purely-structural pair *)
  let aig, f, g = redundant_pair () in
  let checker = Cnf.Checker.create aig in
  let l = Util.Limits.create ~max_conflicts:1 () in
  Util.Limits.charge_conflicts l 10;
  check bool "pool tripped up front" true (Util.Limits.exhausted l = Some Util.Limits.Conflicts);
  Cnf.Checker.set_limits checker l;
  let prng = Util.Prng.create 7 in
  let repl, report = Sweep.Sweeper.run aig checker ~prng ~roots:[ f; g ] in
  check bool "bdd merges found despite dry SAT pool" true (report.Sweep.Sweeper.bdd_merges > 0);
  check int "pair still merged" (Aig.rebuild aig ~repl f) (Aig.rebuild aig ~repl g)

(* ---------- quantification fallback ---------- *)

let test_quantify_fallback_equivalence () =
  (* the degraded path (naive cofactor disjunction, no sweeping, no
     don't-cares) must compute the same function as the unbounded path *)
  let build () =
    let aig = Aig.create () in
    let xs = List.init 5 (Aig.var aig) in
    let f =
      match xs with
      | [ a; b; c; d; e ] ->
        Aig.or_ aig
          (Aig.and_ aig (Aig.xor_ aig a b) (Aig.or_ aig c d))
          (Aig.and_ aig e (Aig.and_ aig a (Aig.not_ c)))
      | _ -> assert false
    in
    (aig, f)
  in
  let quantified limits =
    let aig, f = build () in
    let checker = Cnf.Checker.create aig in
    Cnf.Checker.set_limits checker limits;
    let prng = Util.Prng.create 21 in
    let r = Cbq.Quantify.all aig checker ~prng f ~vars:[ 0; 2 ] in
    (aig, r)
  in
  let aig_u, unbounded = quantified Util.Limits.unlimited in
  let aig_l, limited = quantified (expired ()) in
  (* compare cross-manager by truth table over the shared variable order *)
  let table aig l = List.init 32 (eval_mask aig l) in
  check bool "degraded quantification computes the same set" true
    (table aig_u unbounded.Cbq.Quantify.lit = table aig_l limited.Cbq.Quantify.lit);
  check bool "quantified variables gone" false
    (Aig.depends_on aig_l limited.Cbq.Quantify.lit 0
    || Aig.depends_on aig_l limited.Cbq.Quantify.lit 2)

(* ---------- engines: limited verdicts are never wrong ---------- *)

let families =
  [
    ("counter", Some 4);
    ("fifo-buggy", Some 2);
    ("arbiter", Some 4);
    ("gray", Some 3);
    ("counter-even", Some 5);
  ]

let agrees name (status : Circuits.Registry.status) (verdict : Cbq.Reachability.verdict) =
  match (verdict, status) with
  | Cbq.Reachability.Proved, Circuits.Registry.Safe -> ()
  | Cbq.Reachability.Falsified { depth; _ }, Circuits.Registry.Unsafe d when depth = d -> ()
  | Cbq.Reachability.Out_of_budget _, _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "%s: limited verdict disagrees with the oracle" name)

let test_backward_limited_verdicts_sound () =
  List.iter
    (fun (name, param) ->
      List.iter
        (fun budget ->
          let model, status = Circuits.Registry.build name param in
          let limits = Util.Limits.create ~max_conflicts:budget () in
          let config = { Cbq.Reachability.default with make_trace = false } in
          let r = Cbq.Reachability.run ~config ~limits model in
          agrees name status r.Cbq.Reachability.verdict)
        [ 0; 20; 500 ])
    families

let test_forward_limited_verdicts_sound () =
  List.iter
    (fun (name, param) ->
      List.iter
        (fun budget ->
          let model, status = Circuits.Registry.build name param in
          let limits = Util.Limits.create ~max_conflicts:budget () in
          let config = { Cbq.Reachability.default with make_trace = false } in
          let r = Cbq.Forward.run ~config ~limits model in
          agrees name status r.Cbq.Reachability.verdict)
        [ 0; 20; 500 ])
    families

let test_expired_deadline_is_anytime () =
  let model, _ = Circuits.Registry.build "counter" (Some 4) in
  let r = Cbq.Reachability.run ~limits:(expired ()) model in
  match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Out_of_budget { reason; frames } ->
    check string "names the deadline" "deadline" reason;
    check bool "anytime frame count" true (frames >= 0)
  | _ -> Alcotest.fail "expired run must be undecided"

let test_aig_ceiling_stops_traversal () =
  let model, _ = Circuits.Registry.build "counter" (Some 4) in
  (* the model alone already exceeds the ceiling: first frame check trips *)
  let limits = Util.Limits.create ~max_aig_nodes:1 () in
  let r = Cbq.Reachability.run ~limits model in
  match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Out_of_budget { reason; _ } ->
    check string "names the ceiling" "aig node ceiling" reason
  | _ -> Alcotest.fail "ceiling run must be undecided"

let baseline_agrees name (status : Circuits.Registry.status) (v : Baselines.Verdict.t) =
  match (v, status) with
  | Baselines.Verdict.Proved, Circuits.Registry.Safe -> ()
  | Baselines.Verdict.Falsified depth, Circuits.Registry.Unsafe d when depth = d -> ()
  | Baselines.Verdict.Undecided _, _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "%s: limited baseline verdict wrong" name)

let test_baselines_limited_verdicts_sound () =
  List.iter
    (fun (name, param) ->
      let run f =
        let model, status = Circuits.Registry.build name param in
        baseline_agrees name status (f model)
      in
      let limits () = Util.Limits.create ~max_conflicts:30 () in
      run (fun m -> (Baselines.Bmc.run ~limits:(limits ()) m).Baselines.Bmc.verdict);
      run (fun m ->
          (Baselines.Induction.run ~limits:(limits ()) m).Baselines.Induction.verdict);
      run (fun m ->
          (Baselines.Cofactor_preimage.run ~limits:(limits ()) m)
            .Baselines.Cofactor_preimage.verdict);
      run (fun m -> (Baselines.Hybrid.run ~limits:(limits ()) m).Baselines.Hybrid.verdict);
      run (fun m ->
          (Baselines.Bdd_mc.backward ~limits:(Util.Limits.create ~max_bdd_nodes:40 ()) m)
            .Baselines.Bdd_mc.verdict);
      run (fun m ->
          (Baselines.Bdd_mc.forward ~limits:(Util.Limits.create ~timeout:0.0 ()) m)
            .Baselines.Bdd_mc.verdict))
    families

let test_bdd_engine_names_the_pool () =
  let model, _ = Circuits.Registry.build "counter" (Some 4) in
  let r = Baselines.Bdd_mc.backward ~limits:(Util.Limits.create ~max_bdd_nodes:10 ()) model in
  match r.Baselines.Bdd_mc.verdict with
  | Baselines.Verdict.Undecided why ->
    check string "verdict names the pool" "bdd node pool" why
  | _ -> Alcotest.fail "tiny bdd pool must leave the verdict undecided"

let () =
  Alcotest.run "limits"
    [
      ( "governor",
        [
          Alcotest.test_case "unlimited never trips" `Quick test_unlimited_never_trips;
          Alcotest.test_case "deadline trips and sticks" `Quick test_deadline_trips_and_sticks;
          Alcotest.test_case "conflict pool drains" `Quick test_conflict_pool_drains;
          Alcotest.test_case "aig ceiling" `Quick test_aig_ceiling;
          Alcotest.test_case "bdd pool is non-fatal" `Quick test_bdd_pool_is_non_fatal;
          Alcotest.test_case "first trip wins, notify fires once" `Quick
            test_first_trip_wins_and_notify_fires_once;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "cancel trips and sticks" `Quick test_cancel_trips_and_sticks;
          Alcotest.test_case "first trip wins over cancel" `Quick
            test_cancel_does_not_displace_first_trip;
          Alcotest.test_case "unlimited refuses cancel" `Quick test_cancel_unlimited_refused;
          Alcotest.test_case "cancel stops a racing solver" `Quick
            test_cancel_stops_racing_solver;
        ] );
      ( "sat",
        [
          Alcotest.test_case "checker shortcuts to Maybe" `Quick test_checker_shortcuts_to_maybe;
          Alcotest.test_case "solver charges the pool" `Quick test_solver_charges_the_pool;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "expired deadline keeps soundness" `Quick
            test_sweep_under_expired_deadline_is_sound;
          Alcotest.test_case "conflict trip keeps the bdd stage" `Quick
            test_conflict_trip_does_not_skip_bdd_stage;
        ] );
      ( "quantify",
        [
          Alcotest.test_case "fallback computes the same set" `Quick
            test_quantify_fallback_equivalence;
        ] );
      ( "engines",
        [
          Alcotest.test_case "backward: limited verdicts sound" `Quick
            test_backward_limited_verdicts_sound;
          Alcotest.test_case "forward: limited verdicts sound" `Quick
            test_forward_limited_verdicts_sound;
          Alcotest.test_case "expired deadline is anytime" `Quick test_expired_deadline_is_anytime;
          Alcotest.test_case "aig ceiling stops traversal" `Quick test_aig_ceiling_stops_traversal;
          Alcotest.test_case "baselines: limited verdicts sound" `Quick
            test_baselines_limited_verdicts_sound;
          Alcotest.test_case "bdd engine names its pool" `Quick test_bdd_engine_names_the_pool;
        ] );
    ]
