(* Shared random-structure builders for the test suite. Every module in
   this directory that is not itself a test entry point is linked into
   all the test executables, so the [expr] helpers that used to be
   copy-pasted per file live here once, and the random sequential
   machines come from the production generator ([Fuzz.Gen]) the
   differential fuzzer uses. *)

type expr = V of int | Not of expr | And of expr * expr | Or of expr * expr | Xor of expr * expr

(* [size] bounds the QCheck size parameter (gate count, roughly);
   BDD-heavy properties use a smaller default to keep runtimes flat *)
let expr_gen ?(size = 20) n =
  QCheck.Gen.(
    sized_size (int_bound size)
      (fix (fun self s ->
           if s <= 1 then map (fun v -> V v) (int_bound (n - 1))
           else
             frequency
               [
                 (1, map (fun v -> V v) (int_bound (n - 1)));
                 (2, map (fun e -> Not e) (self (s - 1)));
                 (2, map2 (fun a b -> And (a, b)) (self (s / 2)) (self (s / 2)));
                 (2, map2 (fun a b -> Or (a, b)) (self (s / 2)) (self (s / 2)));
                 (1, map2 (fun a b -> Xor (a, b)) (self (s / 2)) (self (s / 2)));
               ])))

let rec build_aig aig = function
  | V v -> Aig.var aig v
  | Not e -> Aig.not_ (build_aig aig e)
  | And (a, b) -> Aig.and_ aig (build_aig aig a) (build_aig aig b)
  | Or (a, b) -> Aig.or_ aig (build_aig aig a) (build_aig aig b)
  | Xor (a, b) -> Aig.xor_ aig (build_aig aig a) (build_aig aig b)

let rec build_bdd man = function
  | V v -> Bdd.var_node man v
  | Not e -> Bdd.not_ man (build_bdd man e)
  | And (a, b) -> Bdd.and_ man (build_bdd man a) (build_bdd man b)
  | Or (a, b) -> Bdd.or_ man (build_bdd man a) (build_bdd man b)
  | Xor (a, b) -> Bdd.xor_ man (build_bdd man a) (build_bdd man b)

let rec eval_expr env = function
  | V v -> env v
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b

let qc_expr ?size nvars = QCheck.make ~print:(fun _ -> "<expr>") (expr_gen ?size nvars)

let qc_pair ?size nvars =
  QCheck.make ~print:(fun _ -> "<exprs>")
    QCheck.Gen.(pair (expr_gen ?size nvars) (expr_gen ?size nvars))

(* small machines every engine decides quickly without a budget: the
   shape the integration suite's cross-engine consistency checks ran on
   before the fuzzer existed *)
let machine_knobs =
  {
    Fuzz.Gen.default with
    Fuzz.Gen.min_latches = 3;
    max_latches = 4;
    min_inputs = 1;
    max_inputs = 2;
    property = Fuzz.Gen.Clause;
  }

let random_machine ?(knobs = machine_knobs) seed () = Fuzz.Gen.model ~knobs ~seed ()
