(* Cross-engine integration tests: all engines must agree with each other
   on models none of them was tuned for — randomly mutated properties,
   AIGER-roundtripped models, and randomly generated machines. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* normalize every engine to (Proved | Falsified d | Undecided) *)
type outcome = P | F of int | U

let run_all ?(bmc_depth = 30) make_model =
  let cbq =
    match (Cbq.Reachability.run (make_model ())).Cbq.Reachability.verdict with
    | Cbq.Reachability.Proved -> P
    | Cbq.Reachability.Falsified { depth; _ } -> F depth
    | Cbq.Reachability.Out_of_budget _ -> U
  in
  let of_verdict = function
    | Baselines.Verdict.Proved -> P
    | Baselines.Verdict.Falsified d -> F d
    | Baselines.Verdict.Undecided _ -> U
  in
  let bdd = of_verdict (Baselines.Bdd_mc.backward (make_model ())).Baselines.Bdd_mc.verdict in
  let bmc =
    of_verdict (Baselines.Bmc.run ~max_depth:bmc_depth (make_model ())).Baselines.Bmc.verdict
  in
  let ind =
    of_verdict (Baselines.Induction.run ~max_k:25 (make_model ())).Baselines.Induction.verdict
  in
  let cof =
    of_verdict
      (Baselines.Cofactor_preimage.run (make_model ())).Baselines.Cofactor_preimage.verdict
  in
  [ ("cbq", cbq); ("bdd", bdd); ("bmc", bmc); ("induction", ind); ("cofactor", cof) ]

let consistent outcomes =
  (* all decided verdicts must agree (bmc can only falsify) *)
  let decided = List.filter (fun (_, o) -> o <> U) outcomes in
  match decided with
  | [] -> true
  | (_, first) :: rest -> List.for_all (fun (_, o) -> o = first) rest

let pp_outcomes outcomes =
  String.concat ", "
    (List.map
       (fun (n, o) ->
         Printf.sprintf "%s=%s" n
           (match o with P -> "proved" | F d -> Printf.sprintf "cex@%d" d | U -> "?"))
       outcomes)

(* ---------- random mutated properties on a known machine ---------- *)

(* the counter machine with the property "value != c": unsafe at depth c
   (for c > 0), so every engine's answer is predictable from c *)
let counter_avoiding bits c () =
  let b = Netlist.Builder.create (Printf.sprintf "counter-avoid-%d" c) in
  let aig = Netlist.Builder.aig b in
  let enable = Netlist.Builder.input b in
  let q = Netlist.Builder.latches b ~init:false bits in
  let inc = Circuits.Arith.add_const aig q 1 in
  List.iter2 (Netlist.Builder.connect b) q (Circuits.Arith.mux aig enable ~then_:inc ~else_:q);
  Netlist.Builder.set_property b (Aig.not_ (Circuits.Arith.equal_const aig q c));
  Netlist.Builder.finish b

let test_counter_avoiding_sweep () =
  let bits = 3 in
  for c = 1 to (1 lsl bits) - 1 do
    let outcomes = run_all (counter_avoiding bits c) in
    check bool (Printf.sprintf "c=%d consistent: %s" c (pp_outcomes outcomes)) true
      (consistent outcomes);
    (* every engine that decided must have found depth c *)
    List.iter
      (fun (n, o) ->
        match o with
        | F d -> check int (Printf.sprintf "c=%d %s depth" c n) c d
        | P -> Alcotest.fail (Printf.sprintf "c=%d: %s proved an unsafe model" c n)
        | U -> ())
      outcomes
  done

(* ---------- random machines ---------- *)

(* small random sequential machines: random next-state cones and a random
   property over latches; engines must agree pairwise *)
let random_machine seed () = Gen_util.random_machine seed ()

let test_random_machines_agree () =
  for seed = 1 to 25 do
    let outcomes = run_all (random_machine seed) in
    check bool (Printf.sprintf "seed %d: %s" seed (pp_outcomes outcomes)) true
      (consistent outcomes)
  done

(* the random machines have at most 2^5 states: BMC at depth 40 is
   complete for falsification, so "all undecided" can only mean safe —
   cross-check that cbq decides each instance *)
let test_random_machines_cbq_decides () =
  for seed = 1 to 25 do
    let model = random_machine seed () in
    match (Cbq.Reachability.run model).Cbq.Reachability.verdict with
    | Cbq.Reachability.Proved | Cbq.Reachability.Falsified _ -> ()
    | Cbq.Reachability.Out_of_budget { reason; _ } ->
      Alcotest.fail (Printf.sprintf "seed %d undecided: %s" seed reason)
  done

(* ---------- aiger roundtrip stability ---------- *)

let test_verdicts_survive_aiger_roundtrip () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let reread = Netlist.Aiger.read ~name:(name ^ "-reread") (Netlist.Aiger.write model) in
      let r = Cbq.Reachability.run reread in
      match (r.Cbq.Reachability.verdict, status) with
      | Cbq.Reachability.Proved, Circuits.Registry.Safe -> ()
      | Cbq.Reachability.Falsified { depth; _ }, Circuits.Registry.Unsafe d ->
        check int (name ^ " depth after roundtrip") d depth
      | v, _ ->
        Alcotest.fail
          (Format.asprintf "%s: wrong verdict after roundtrip: %a" name
             Cbq.Reachability.pp_verdict v))
    [ ("counter", Some 3); ("fifo-buggy", Some 2); ("lfsr", Some 4); ("peterson", None) ]

(* ---------- traces cross-validate across engines ---------- *)

let test_bmc_trace_on_cbq_model () =
  (* a trace found by BMC replays on the model instance used by CBQ *)
  let model, _ = Circuits.Registry.build "accumulator" (Some 3) in
  let bmc = Baselines.Bmc.run ~max_depth:10 model in
  match bmc.Baselines.Bmc.trace with
  | Some t ->
    check bool "bmc trace valid" true (Cbq.Trace.check model t);
    let r = Cbq.Reachability.run model in
    (match r.Cbq.Reachability.verdict with
    | Cbq.Reachability.Falsified { depth; trace = Some t' } ->
      check int "same depth" (Cbq.Trace.length t) depth;
      check bool "cbq trace valid" true (Cbq.Trace.check model t')
    | _ -> Alcotest.fail "cbq should falsify")
  | None -> Alcotest.fail "bmc should find the bug"

(* ---------- partial quantification composes with SAT engines ---------- *)

let test_partial_quantification_preprocessing () =
  (* quantify away some arbiter inputs, then let BMC search for the
     (nonexistent) bug in the reduced problem: still no false alarm *)
  let model, _ = Circuits.Registry.build "arbiter" (Some 4) in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 71 in
  let bad = Aig.not_ model.Netlist.Model.property in
  let pre = Cbq.Preimage.compute model checker ~prng ~frontier:bad ~extra_vars:[] in
  check bool "some inputs eliminated" true (List.length pre.Cbq.Preimage.eliminated > 0);
  let r = Baselines.Bmc.run_with_frontier model ~frontier:pre.Cbq.Preimage.lit ~max_depth:10 in
  (* the pre-image of the (unreachable) bad set may itself be reachable
     only if the bad set is: the arbiter is safe, so any hit here would be
     at states outside the reachable set — BMC from the real initial
     states must find nothing *)
  match r.Baselines.Bmc.verdict with
  | Baselines.Verdict.Undecided _ -> ()
  | Baselines.Verdict.Falsified _ ->
    Alcotest.fail "reachable pre-image of an unreachable bad set"
  | Baselines.Verdict.Proved -> ()

let () =
  Alcotest.run "integration"
    [
      ( "cross-engine",
        [
          Alcotest.test_case "counter-avoiding sweep" `Slow test_counter_avoiding_sweep;
          Alcotest.test_case "random machines agree" `Slow test_random_machines_agree;
          Alcotest.test_case "cbq decides random machines" `Slow
            test_random_machines_cbq_decides;
        ] );
      ( "aiger",
        [
          Alcotest.test_case "verdicts survive roundtrip" `Slow
            test_verdicts_survive_aiger_roundtrip;
        ] );
      ( "traces",
        [ Alcotest.test_case "bmc and cbq traces agree" `Quick test_bmc_trace_on_cbq_model ] );
      ( "preprocessing",
        [
          Alcotest.test_case "partial quantification + BMC" `Quick
            test_partial_quantification_preprocessing;
        ] );
    ]
