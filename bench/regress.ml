(* cbq-bench-regress: diff two trees of bench run reports and fail on
   cost regressions.

   Usage:
     cbq-bench-regress OLD_DIR NEW_DIR [--threshold=REL] [--time-threshold=REL]

   OLD_DIR and NEW_DIR are `bench --stats-dir=DIR` output trees (one
   JSON run report per experiment row, paired by file name). The exit
   status is 0 when every deterministic metric stays within the
   relative threshold (default 0.1 = 10%, symmetric) and no experiment
   disappeared from the old tree, 1 otherwise. Wall-clock span seconds
   are reported but only gated when --time-threshold is given, so
   comparing two runs of the same build is deterministic. *)

let usage () =
  prerr_endline
    "usage: cbq-bench-regress OLD_DIR NEW_DIR [--threshold=REL] [--time-threshold=REL]";
  exit 2

let () =
  let dirs = ref [] in
  let threshold = ref 0.1 in
  let time_threshold = ref None in
  let float_arg name s =
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> f
    | Some _ | None ->
      Printf.eprintf "cbq-bench-regress: %s expects a non-negative number, got %S\n" name s;
      exit 2
  in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match String.index_opt arg '=' with
        | Some eq when String.length arg > 2 && String.sub arg 0 2 = "--" ->
          let key = String.sub arg 0 eq in
          let value = String.sub arg (eq + 1) (String.length arg - eq - 1) in
          (match key with
          | "--threshold" -> threshold := float_arg key value
          | "--time-threshold" -> time_threshold := Some (float_arg key value)
          | _ -> usage ())
        | _ -> (
          match arg with
          | "--help" | "-h" -> usage ()
          | _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
          | _ -> dirs := arg :: !dirs))
    Sys.argv;
  let old_dir, new_dir =
    match List.rev !dirs with [ o; n ] -> (o, n) | _ -> usage ()
  in
  List.iter
    (fun dir ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then begin
        Printf.eprintf "cbq-bench-regress: %s is not a directory\n" dir;
        exit 2
      end)
    [ old_dir; new_dir ];
  let outcome =
    try Obs.Regress.diff_dirs ~old_dir ~new_dir
    with Sys_error msg ->
      Printf.eprintf "cbq-bench-regress: %s\n" msg;
      exit 2
  in
  let threshold = !threshold and time_threshold = !time_threshold in
  Format.printf "%a" (Obs.Regress.pp_outcome ~threshold ~time_threshold) outcome;
  let gated = Obs.Regress.regressions ~threshold ~time_threshold outcome in
  let compared = List.length outcome.Obs.Regress.pairs in
  if Obs.Regress.passes ~threshold ~time_threshold outcome then begin
    Format.printf "OK: %d report pair%s within %.0f%%%s@." compared
      (if compared = 1 then "" else "s")
      (threshold *. 100.0)
      (match time_threshold with
      | None -> " (timings not gated)"
      | Some t -> Printf.sprintf " (timings within %.0f%%)" (t *. 100.0));
    exit 0
  end
  else begin
    Format.printf "REGRESSION: %d gated delta%s, %d report%s missing from the new tree@."
      (List.length gated)
      (if List.length gated = 1 then "" else "s")
      (List.length outcome.Obs.Regress.only_old)
      (if List.length outcome.Obs.Regress.only_old = 1 then "" else "s");
    exit 1
  end
