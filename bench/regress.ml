(* cbq-bench-regress: diff two trees of bench run reports and fail on
   cost regressions.

   Usage:
     cbq-bench-regress OLD_DIR NEW_DIR [--threshold=REL] [--time-threshold=REL]

   OLD_DIR and NEW_DIR are `bench --stats-dir=DIR` output trees (one
   JSON run report per experiment row, paired by file name). The exit
   status is 0 when every deterministic metric stays within the
   relative threshold (default 0.1 = 10%, symmetric) and no experiment
   disappeared from the old tree, 1 otherwise; usage errors and
   unreadable directories exit 2 with a diagnostic on stderr. Wall-clock
   span seconds are reported but only gated when --time-threshold is
   given, so comparing two runs of the same build is deterministic.

   The whole CLI lives in Obs.Regress.main so the exit-code contract is
   unit-tested (test/test_regress.ml). *)

let () = exit (Obs.Regress.main Sys.argv)
