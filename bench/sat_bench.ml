(* SAT-core microbenchmark: deterministic SAT-heavy workloads through
   [Sat.Solver], from pure clause-level instances to the incremental
   assumption pattern the sweeper uses, plus one end-to-end BMC row.

   Usage:
     dune exec bench/sat_bench.exe
     dune exec bench/sat_bench.exe -- --quick
     dune exec bench/sat_bench.exe -- --stats-dir=DIR
                  -- writes DIR/BENCH_sat.json, gateable by
                     cbq-bench-regress against the checked-in baseline
                     (bench/baseline-sat/after). All gated metrics are
                     deterministic for a given build (fixed seeds, no
                     timing, no wall-clock-dependent budgets): counters
                     carry verdicts, answer tallies and solver work
                     (conflicts/decisions/propagations); wall-clock goes
                     to the satbench.<row>.time spans, which the regress
                     gate ignores unless --time-threshold. *)

let quick = ref false
let stats_dir : string option ref = ref None

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | s when String.length s > 12 && String.sub s 0 12 = "--stats-dir=" ->
          stats_dir := Some (String.sub s 12 (String.length s - 12))
        | s ->
          Printf.eprintf "sat_bench: unknown argument %S\n" s;
          exit 2)
    Sys.argv

let lp = Sat.Lit.pos
let ln = Sat.Lit.neg_of

(* ---------- instance generators (all seeded, all deterministic) ---------- *)

(* pigeonhole: holes+1 pigeons into holes, UNSAT; binary-clause heavy *)
let php holes =
  let s = Sat.Solver.create () in
  let pigeons = holes + 1 in
  let x = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    ignore (Sat.Solver.add_clause s (Array.to_list (Array.map lp x.(p))))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        ignore (Sat.Solver.add_clause s [ ln x.(p1).(h); ln x.(p2).(h) ])
      done
    done
  done;
  s

(* uniform random k-SAT; distinct variables per clause *)
let random_ksat ~prng ~vars ~clauses ~k s =
  let vs = Array.init vars (fun _ -> Sat.Solver.new_var s) in
  for _ = 1 to clauses do
    let chosen = Array.make k (-1) in
    for i = 0 to k - 1 do
      let rec draw () =
        let v = Util.Prng.int prng vars in
        if Array.exists (( = ) v) chosen then draw () else v
      in
      chosen.(i) <- draw ()
    done;
    let clause =
      Array.to_list (Array.map (fun v -> Sat.Lit.make vs.(v) (Util.Prng.bool prng)) chosen)
    in
    ignore (Sat.Solver.add_clause s clause)
  done;
  vs

(* ---------- rows ---------- *)

type tally = { mutable sat : int; mutable unsat : int; mutable unknown : int }

let count tally = function
  | Sat.Solver.Sat -> tally.sat <- tally.sat + 1
  | Sat.Solver.Unsat -> tally.unsat <- tally.unsat + 1
  | Sat.Solver.Unknown -> tally.unknown <- tally.unknown + 1

let row_counter row metric = Obs.counter (Printf.sprintf "satbench.%s.%s" row metric)

let record_row row tally work_conflicts work_decisions work_propagations dt =
  Obs.add (row_counter row "answers_sat") tally.sat;
  Obs.add (row_counter row "answers_unsat") tally.unsat;
  Obs.add (row_counter row "answers_unknown") tally.unknown;
  Obs.add (row_counter row "conflicts") work_conflicts;
  Obs.add (row_counter row "decisions") work_decisions;
  Obs.add (row_counter row "propagations") work_propagations;
  Obs.add_seconds (Obs.span (Printf.sprintf "satbench.%s.time" row)) dt;
  Format.printf "%-12s %6d sat %6d unsat %4d unk %10d confl %8.3fs@." row tally.sat
    tally.unsat tally.unknown work_conflicts dt

(* pure UNSAT proof work: pigeonhole *)
let run_php row holes =
  let tally = { sat = 0; unsat = 0; unknown = 0 } in
  let watch = Util.Stopwatch.start () in
  let s = php holes in
  count tally (Sat.Solver.solve s);
  let st = Sat.Solver.stats s in
  record_row row tally st.Sat.Solver.conflicts st.Sat.Solver.decisions
    st.Sat.Solver.propagations
    (Util.Stopwatch.elapsed watch)

(* random 3-SAT near the phase transition, fresh solver per instance *)
let run_rand3sat row ~instances ~vars =
  let tally = { sat = 0; unsat = 0; unknown = 0 } in
  let conflicts = ref 0 and decisions = ref 0 and props = ref 0 in
  let watch = Util.Stopwatch.start () in
  for seed = 1 to instances do
    let prng = Util.Prng.create (0x35a7 + seed) in
    let s = Sat.Solver.create () in
    let clauses = int_of_float (4.26 *. float_of_int vars) in
    ignore (random_ksat ~prng ~vars ~clauses ~k:3 s);
    count tally (Sat.Solver.solve s);
    let st = Sat.Solver.stats s in
    conflicts := !conflicts + st.Sat.Solver.conflicts;
    decisions := !decisions + st.Sat.Solver.decisions;
    props := !props + st.Sat.Solver.propagations
  done;
  record_row row tally !conflicts !decisions !props (Util.Stopwatch.elapsed watch)

(* random 2-SAT around ratio 1: exercises the binary-clause layer and the
   implication-graph inprocessing end to end *)
let run_rand2sat row ~instances ~vars =
  let tally = { sat = 0; unsat = 0; unknown = 0 } in
  let conflicts = ref 0 and decisions = ref 0 and props = ref 0 in
  let watch = Util.Stopwatch.start () in
  for seed = 1 to instances do
    let prng = Util.Prng.create (0x25a7 + (seed * 7919)) in
    let s = Sat.Solver.create () in
    let clauses = vars + (vars / 10) in
    ignore (random_ksat ~prng ~vars ~clauses ~k:2 s);
    count tally (Sat.Solver.solve s);
    let st = Sat.Solver.stats s in
    conflicts := !conflicts + st.Sat.Solver.conflicts;
    decisions := !decisions + st.Sat.Solver.decisions;
    props := !props + st.Sat.Solver.propagations
  done;
  record_row row tally !conflicts !decisions !props (Util.Stopwatch.elapsed watch)

(* the factorized SAT-merge discipline: ONE solver, one shared clause
   database, many queries under assumptions (activation-style) *)
let run_incremental row ~vars ~queries =
  let tally = { sat = 0; unsat = 0; unknown = 0 } in
  let watch = Util.Stopwatch.start () in
  let prng = Util.Prng.create 0x1c4e7a11 in
  let s = Sat.Solver.create () in
  let clauses = int_of_float (3.5 *. float_of_int vars) in
  let vs = random_ksat ~prng ~vars ~clauses ~k:3 s in
  for _ = 1 to queries do
    let assumptions =
      List.init 4 (fun _ -> Sat.Lit.make vs.(Util.Prng.int prng vars) (Util.Prng.bool prng))
    in
    count tally (Sat.Solver.solve ~assumptions s)
  done;
  let st = Sat.Solver.stats s in
  record_row row tally st.Sat.Solver.conflicts st.Sat.Solver.decisions
    st.Sat.Solver.propagations
    (Util.Stopwatch.elapsed watch)

(* end-to-end: bounded model checking of the counter family — every
   depth is one incremental SAT query on the shared unrolling *)
let run_bmc row ~bits =
  let tally = { sat = 0; unsat = 0; unknown = 0 } in
  let watch = Util.Stopwatch.start () in
  let model = Circuits.Families.counter ~bits in
  let r = Baselines.Bmc.run ~max_depth:((1 lsl bits) - 1) model in
  (match r.Baselines.Bmc.verdict with
  | Baselines.Verdict.Falsified d ->
    tally.sat <- 1;
    Obs.add (row_counter row "cex_depth") d
  | Baselines.Verdict.Proved -> tally.unsat <- 1
  | Baselines.Verdict.Undecided _ -> tally.unknown <- 1);
  let st = r.Baselines.Bmc.solver in
  record_row row tally st.Sat.Solver.conflicts st.Sat.Solver.decisions
    st.Sat.Solver.propagations
    (Util.Stopwatch.elapsed watch)

let () =
  (match !stats_dir with
  | None -> ()
  | Some dir ->
    Util.Fs.mkdirs dir;
    Obs.reset ();
    Obs.set_enabled true);
  Format.printf "=== SAT core benchmark%s ===@." (if !quick then " (quick)" else "");
  if !quick then begin
    run_php "php8" 8;
    run_rand3sat "rand3sat" ~instances:6 ~vars:120;
    run_rand2sat "rand2sat" ~instances:10 ~vars:1200;
    run_incremental "inc-assume" ~vars:200 ~queries:120;
    run_bmc "bmc-counter" ~bits:6
  end
  else begin
    run_php "php9" 9;
    run_rand3sat "rand3sat" ~instances:12 ~vars:150;
    run_rand2sat "rand2sat" ~instances:25 ~vars:3000;
    run_incremental "inc-assume" ~vars:300 ~queries:400;
    run_bmc "bmc-counter" ~bits:7
  end;
  match !stats_dir with
  | None -> ()
  | Some dir ->
    Obs.meta "tool" "sat_bench";
    Obs.meta "experiment" (if !quick then "sat-core-quick" else "sat-core");
    Obs.write_report (Filename.concat dir "BENCH_sat.json");
    Obs.set_enabled false;
    Format.printf "report: %s@." (Filename.concat dir "BENCH_sat.json")
