(* Multicore-layer benchmark: portfolio racing vs every fixed engine,
   parallel SAT-merge sweeping, and the sharded fuzz campaign.

   Usage:
     dune exec bench/par_bench.exe
     dune exec bench/par_bench.exe -- --quick
     dune exec bench/par_bench.exe -- --jobs=4 --timeout=2
     dune exec bench/par_bench.exe -- --probe
                  -- engine-vs-family grid over the whole registry, for
                     choosing adversarial portfolio family sets
     dune exec bench/par_bench.exe -- --stats-dir=DIR
                  -- writes DIR/BENCH_par.json, gateable by
                     cbq-bench-regress against bench/baseline-par

   The portfolio row scores engines PAR-style: an engine is charged its
   wall time when it decides a family and the full governor budget when
   it does not (undecided = useless to a verification flow, however
   fast it gave up). The family set is chosen so that EVERY fixed
   engine fails or stalls somewhere, while each family falls quickly to
   at least one engine — the complementarity the racing portfolio
   exploits. The headline metric is
       speedup = best fixed engine's charged total / portfolio total
   and `parbench.portfolio.win15` (1 when speedup >= 1.5x) is a gated
   deterministic counter: the margin is by construction a multiple of
   the governor budget, so runner speed cannot flip it. Raw seconds
   live in spans, which the regress gate ignores.

   The bench exits non-zero when any portfolio verdict disagrees with
   the registry oracle, when parallel sweeping changes an equivalence
   class, or when the sharded campaign diverges from the sequential one
   — so CI can use it as a correctness smoke as well as a perf gate. *)

let quick = ref false
let stats_dir : string option ref = ref None
let probe = ref false
let jobs = ref 4
let budget = ref 2.0
let failed = ref false

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | "--probe" -> probe := true
        | s when String.length s > 12 && String.sub s 0 12 = "--stats-dir=" ->
          stats_dir := Some (String.sub s 12 (String.length s - 12))
        | s when String.length s > 7 && String.sub s 0 7 = "--jobs=" ->
          jobs := int_of_string (String.sub s 7 (String.length s - 7))
        | s when String.length s > 10 && String.sub s 0 10 = "--timeout=" ->
          budget := float_of_string (String.sub s 10 (String.length s - 10))
        | s ->
          Printf.eprintf "par_bench: unknown argument %S\n" s;
          exit 2)
    Sys.argv

let line fmt = Format.printf fmt

let fail fmt =
  failed := true;
  Format.kasprintf (fun s -> Format.eprintf "par_bench: FAIL: %s@." s) fmt

let c name = Obs.counter ("parbench." ^ name)
let span name dt = Obs.add_seconds (Obs.span ("parbench." ^ name)) dt

let suite_config = { Baselines.Suite.default_config with make_trace = false }
let engines () = Baselines.Suite.engines ~config:suite_config ()

let decided = function
  | Baselines.Verdict.Proved | Baselines.Verdict.Falsified _ -> true
  | Baselines.Verdict.Undecided _ -> false

(* one governed fixed-engine run on its own clone; charged PAR-style *)
let fixed_run (e : Baselines.Suite.engine) m =
  let limits = Util.Limits.create ~timeout:!budget () in
  let (v, _), dt = Util.Stopwatch.time (fun () -> e.run ~limits (Par.Clone.model m)) in
  (v, dt, if decided v then dt else !budget)

(* ---------------- probe: engine-vs-family grid ---------------- *)

let probe_families =
  [
    ("counter", Some 5); ("counter", Some 6); ("counter-even", Some 8); ("gray", Some 4);
    ("twin-shift", Some 8); ("shift-pattern", Some 8); ("lfsr", Some 6); ("arbiter", Some 6);
    ("traffic", None); ("fifo", Some 3); ("fifo-buggy", Some 3); ("accumulator", Some 5);
    ("peterson", None); ("johnson", Some 6); ("tmr", Some 3);
    ("mult-cmp", Some 10); ("mult-cmp", Some 12); ("mult-bug", Some 12);
  ]

let run_probe () =
  line "engine-vs-family grid (budget %.1fs, charged = wall or budget when undecided)@." !budget;
  List.iter
    (fun (name, param) ->
      let m, _ = Circuits.Registry.build name param in
      line "@.%s:@." (Netlist.Model.name m);
      List.iter
        (fun (e : Baselines.Suite.engine) ->
          let v, dt, charged = fixed_run e m in
          line "  %-10s %-18s %7.3fs charged %7.3fs@." e.name
            (Format.asprintf "%a" Baselines.Verdict.pp v)
            dt charged)
        (engines ()))
    probe_families

(* ---------------- portfolio row ---------------- *)

(* the adversarial set (see --probe): each family is decided in
   milliseconds by at least one first-wave engine, and every fixed
   engine burns its whole budget on at least one of them — the
   63-step-deep `counter` counterexample stalls cbq-bwd, BMC at bound
   30, induction and both enumeration engines; `accumulator` stalls both
   CBQ engines and the cofactor enumerator; `counter-even` at 8 bits
   stalls cbq-fwd (deadline) and BMC (inconclusive bound) while the
   other engines prove it instantly; and `mult-bug`'s multiplier cone
   drowns both BDD engines while BMC falsifies it in one query *)
let portfolio_families () =
  [
    ("counter", Some 6);
    ("counter-even", Some 8);
    ("accumulator", Some 5);
    ("mult-bug", Some 12);
  ]

(* racing order, not preference order: the bounded SAT engines and the
   BDD engines are each either decided or governor-tripped within
   milliseconds-to-one-budget, so they share the first scheduling wave;
   the open-ended traversal engines follow as slots free up. On a
   single-core box this keeps the per-family winner's dilution (the
   race time-slices [jobs] entrants) to the cheap wave. *)
let racing_order =
  [ "bmc"; "induction"; "bdd-bwd"; "bdd-fwd"; "cbq-bwd"; "cbq-fwd"; "cofactor"; "hybrid" ]

let run_portfolio () =
  line "@.=== portfolio racing vs fixed engines (jobs=%d, budget %.1fs/run) ===@." !jobs !budget;
  let families = portfolio_families () in
  let es = engines () in
  let totals = Hashtbl.create 16 in
  List.iter (fun (e : Baselines.Suite.engine) -> Hashtbl.replace totals e.name 0.0) es;
  line "%-14s %-12s %-16s %9s@." "family" "engine" "verdict" "charged(s)";
  let portfolio_total = ref 0.0 in
  List.iter
    (fun (name, param) ->
      let m, status = Circuits.Registry.build name param in
      let fname = Netlist.Model.name m in
      List.iter
        (fun (e : Baselines.Suite.engine) ->
          let v, _, charged = fixed_run e m in
          Hashtbl.replace totals e.name (Hashtbl.find totals e.name +. charged);
          line "%-14s %-12s %-16s %9.3f@." fname e.name
            (Format.asprintf "%a" Baselines.Verdict.pp v)
            charged)
        es;
      let r =
        Baselines.Portfolio.run ~config:suite_config ~engines:racing_order ~jobs:!jobs
          ~make_limits:(fun () -> Util.Limits.create ~timeout:!budget ())
          m
      in
      let charged = if decided r.Baselines.Portfolio.verdict then r.Baselines.Portfolio.seconds else !budget in
      portfolio_total := !portfolio_total +. charged;
      span ("portfolio." ^ fname ^ ".time") r.Baselines.Portfolio.seconds;
      line "%-14s %-12s %-16s %9.3f  (winner %s)@." fname "PORTFOLIO"
        (Format.asprintf "%a" Baselines.Verdict.pp r.Baselines.Portfolio.verdict)
        charged
        (match r.Baselines.Portfolio.winner with Some w -> w | None -> "-");
      (* the race must reproduce the registry oracle, or the speedup is
         meaningless *)
      (match (r.Baselines.Portfolio.verdict, status) with
      | Baselines.Verdict.Proved, Circuits.Registry.Safe -> Obs.incr (c "portfolio.decided")
      | Baselines.Verdict.Falsified d, Circuits.Registry.Unsafe d' when d = d' ->
        Obs.incr (c "portfolio.decided")
      | v, _ ->
        fail "portfolio on %s: %a disagrees with the registry oracle" fname
          Baselines.Verdict.pp v);
      Obs.incr (c "portfolio.families"))
    families;
  let best_name, best_fixed =
    Hashtbl.fold
      (fun name t ((_, bt) as best) -> if t < bt then (name, t) else best)
      totals ("-", infinity)
  in
  let speedup = best_fixed /. !portfolio_total in
  span "portfolio.time" !portfolio_total;
  span "portfolio.best_fixed_time" best_fixed;
  if speedup >= 1.5 then Obs.incr (c "portfolio.win15")
  else fail "portfolio speedup %.2fx < 1.5x over %s" speedup best_name;
  line "@.%-24s %9s@." "fixed engine" "total(s)";
  List.iter
    (fun (e : Baselines.Suite.engine) ->
      line "%-24s %9.3f@." e.name (Hashtbl.find totals e.name))
    es;
  line "%-24s %9.3f@." "portfolio" !portfolio_total;
  line "@.speedup vs best fixed engine (%s): %.2fx %s@." best_name speedup
    (if speedup >= 1.5 then "(>= 1.5x: PASS)" else "(< 1.5x: FAIL)")

(* ---------------- parallel SAT-merge row ---------------- *)

(* merge-heavy workload: the mult-cmp miter cone — the same multiplier
   middle bit accumulated under two full-adder associations with the
   partial products strash-shared, so every intermediate sum and carry
   has a semantically equal twin that only a SAT query can merge; one
   thin simulation word keeps the candidate classes coarse so a large
   batch of cross-pairs reaches the parallel SAT stage *)
let sweep_workload () =
  let m = Circuits.Families.mult_cmp ~bits:(if !quick then 5 else 7) () in
  let aig = Netlist.Model.aig m in
  (aig, [ Aig.not_ m.Netlist.Model.property ])

let sweep_once ~sat_jobs aig roots =
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 77 in
  let config =
    { Sweep.Sweeper.default with bdd_node_limit = 0; sim_rounds = 1; sat_jobs }
  in
  let (repl, report), dt =
    Util.Stopwatch.time (fun () -> Sweep.Sweeper.run ~config aig checker ~prng ~roots)
  in
  (List.init (Aig.num_nodes aig) repl, report, dt)

let run_sweep () =
  line "@.=== parallel SAT-merge sweeping (sat_jobs 1 vs %d) ===@." !jobs;
  let aig, roots = sweep_workload () in
  let aig_par = Aig.copy aig in
  let seq_repl, seq_report, seq_dt = sweep_once ~sat_jobs:1 aig roots in
  let par_repl, par_report, par_dt = sweep_once ~sat_jobs:!jobs aig_par roots in
  line "%-10s %9s %9s %9s %9s@." "mode" "merges" "sat-calls" "refuted" "time(s)";
  line "%-10s %9d %9d %9d %9.4f@." "seq" seq_report.Sweep.Sweeper.total_merges
    seq_report.Sweep.Sweeper.sat_calls seq_report.Sweep.Sweeper.sat_refuted seq_dt;
  line "%-10s %9d %9d %9d %9.4f@."
    (Printf.sprintf "par(%d)" !jobs)
    par_report.Sweep.Sweeper.total_merges par_report.Sweep.Sweeper.sat_calls
    par_report.Sweep.Sweeper.sat_refuted par_dt;
  Obs.add (c "sweep.merges") par_report.Sweep.Sweeper.total_merges;
  Obs.add (c "sweep.sat_calls") par_report.Sweep.Sweeper.sat_calls;
  Obs.add (c "sweep.sat_refuted") par_report.Sweep.Sweeper.sat_refuted;
  span "sweep.seq.time" seq_dt;
  span "sweep.par.time" par_dt;
  if seq_repl = par_repl && seq_report.Sweep.Sweeper.total_merges = par_report.Sweep.Sweeper.total_merges
  then Obs.incr (c "sweep.classes_equal")
  else fail "parallel sweep changed the merge classes (sat_jobs=%d)" !jobs

(* ---------------- sharded fuzz row ---------------- *)

let run_fuzz () =
  let count = if !quick then 60 else 120 in
  line "@.=== sharded fuzz campaign (seed 42, %d models, jobs 1 vs %d) ===@." count !jobs;
  let campaign j =
    Sweep.Fault.with_injection (fun () ->
        Util.Stopwatch.time (fun () ->
            Fuzz.Runner.run ~shrink:false ~jobs:j ~seed:42 ~count ()))
  in
  let seq, seq_dt = campaign 1 in
  let par, par_dt = campaign !jobs in
  let seeds (r : Fuzz.Runner.result) =
    List.map (fun f -> f.Fuzz.Runner.seed) r.Fuzz.Runner.failures
  in
  line "%-10s %9s %9s@." "mode" "failures" "time(s)";
  line "%-10s %9d %9.3f@." "seq" (List.length (seeds seq)) seq_dt;
  line "%-10s %9d %9.3f@." (Printf.sprintf "par(%d)" !jobs) (List.length (seeds par)) par_dt;
  Obs.add (c "fuzz.failures") (List.length (seeds par));
  span "fuzz.seq.time" seq_dt;
  span "fuzz.par.time" par_dt;
  if seeds seq = seeds par then Obs.incr (c "fuzz.match")
  else fail "sharded campaign diverged from the sequential one (jobs=%d)" !jobs

let () =
  if !probe then run_probe ()
  else begin
    (match !stats_dir with
    | None -> ()
    | Some dir ->
      Util.Fs.mkdirs dir;
      Obs.reset ();
      Obs.set_enabled true);
    line "=== multicore layer benchmark%s ===@." (if !quick then " (quick)" else "");
    run_portfolio ();
    run_sweep ();
    run_fuzz ();
    (match !stats_dir with
    | None -> ()
    | Some dir ->
      Obs.meta "tool" "par_bench";
      Obs.meta "experiment" (if !quick then "par-quick" else "par");
      Obs.write_report (Filename.concat dir "BENCH_par.json");
      Obs.set_enabled false;
      line "report: %s@." (Filename.concat dir "BENCH_par.json"));
    if !failed then exit 1
  end
