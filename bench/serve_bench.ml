(* Serve-layer load harness: thousands of queued small jobs through a
   live daemon over its real socket protocol.

   Usage:
     dune exec bench/serve_bench.exe
     dune exec bench/serve_bench.exe -- --quick
     dune exec bench/serve_bench.exe -- --jobs=4 --count=2000
     dune exec bench/serve_bench.exe -- --stats-dir=DIR
                  -- writes DIR/BENCH_serve.json, gateable by
                     cbq-bench-regress --only=counters.servebench.
                     against bench/baseline-serve

   Three rows:

   - throughput: a single connection batch-submits [count] jobs (a
     seeded mix of falsifiable, provable and deliberately budget-capped
     models) against a daemon with a shared run-report store. Every job
     must come back with a verdict — falsified/proved exactly as the
     oracle says, or UNDECIDED for the jobs submitted with a 1-conflict
     budget (the governed graceful-degradation path under load). The
     verdict tallies are deterministic by construction, so they gate;
     the jobs/sec figure lives in spans.

   - cancellation: fill the worker pool with jobs that cannot finish
     (counter(12) needs 4095 backward frames), queue more behind them,
     cancel everything, and require every job to come back UNDECIDED
     promptly. The latency ceiling is generous (30s vs the ~0.2s frame
     checkpoint) because it guards the contract, not the speed; the
     measured worst case lands in a span.

   - store append cost: the daemon's store counters after the batch,
     plus a direct 1200-append microbench. N appends may serialize at
     most O(N) index entries in total (doubling schedule) — the exact
     counter is gated, so an accidental return to
     write-the-whole-index-every-append (the O(N^2) shape this bench
     exists to pin down) fails CI even on a fast runner.

   Exits non-zero on any correctness failure: a lost job, a wrong
   verdict, a cancellation that did not land, or a superlinear index. *)

let quick = ref false
let stats_dir : string option ref = ref None
let jobs = ref 4
let count = ref 1000
let count_set = ref false
let failed = ref false

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | s when String.length s > 12 && String.sub s 0 12 = "--stats-dir=" ->
          stats_dir := Some (String.sub s 12 (String.length s - 12))
        | s when String.length s > 7 && String.sub s 0 7 = "--jobs=" ->
          jobs := int_of_string (String.sub s 7 (String.length s - 7))
        | s when String.length s > 8 && String.sub s 0 8 = "--count=" ->
          count := int_of_string (String.sub s 8 (String.length s - 8));
          count_set := true
        | s ->
          Printf.eprintf "serve_bench: unknown argument %S\n" s;
          exit 2)
    Sys.argv

let () = if !quick && not !count_set then count := 200
let line fmt = Format.printf fmt

let fail fmt =
  failed := true;
  Format.kasprintf (fun s -> Format.eprintf "serve_bench: FAIL: %s@." s) fmt

let c name = Obs.counter ("servebench." ^ name)
let span name dt = Obs.add_seconds (Obs.span ("servebench." ^ name)) dt

let with_dir f =
  let dir = Filename.temp_file "cbq_serve_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let frozen name param =
  let model, _ = Circuits.Registry.build name (Some param) in
  (Netlist.Model.name model, Netlist.Aiger.write model)

(* ---------------- throughput row ---------------- *)

(* the seeded job mix, by index: 1 in 10 provable, 1 in 10 deliberately
   starved under a 1-conflict budget, the rest falsifiable in
   milliseconds *)
type kind = Falsifiable | Provable | Starved

let kind_of i = if i mod 10 = 3 then Provable else if i mod 10 = 7 then Starved else Falsifiable

let run_throughput () =
  line "=== scheduler throughput: %d jobs over one connection (%d workers) ===@." !count !jobs;
  with_dir @@ fun dir ->
  let store = Obs.Store.open_ dir in
  let falsifiable = frozen "counter" 2 in
  let provable = frozen "gray" 3 in
  let starved = frozen "counter" 6 in
  let server =
    Serve.Server.start ~jobs:!jobs ~store
      (Serve.Protocol.Unix_path (Filename.concat dir "s.sock"))
  in
  let specs =
    List.init !count (fun i ->
        let (model_name, aig), engine, budget =
          match kind_of i with
          | Falsifiable -> (falsifiable, "bmc", Serve.Protocol.no_budget)
          | Provable -> (provable, "cbq-bwd", Serve.Protocol.no_budget)
          | Starved ->
            (starved, "bmc", { Serve.Protocol.no_budget with max_conflicts = Some 1 })
        in
        {
          Serve.Client.tag = Printf.sprintf "j%d" i;
          model_name;
          aig;
          engine;
          budget;
          quantify_backend = None;
        })
  in
  let client = Serve.Client.connect (Serve.Server.address server) in
  let outcomes, dt = Util.Stopwatch.time (fun () -> Serve.Client.run_batch client specs) in
  Serve.Client.close client;
  Serve.Server.stop server;
  Serve.Server.wait server;
  let finished = ref 0 and falsified = ref 0 and proved = ref 0 and capped = ref 0 in
  List.iteri
    (fun i outcome ->
      match (kind_of i, outcome) with
      | Falsifiable, Serve.Client.Finished { verdict = Baselines.Verdict.Falsified 3; _ } ->
        incr finished;
        incr falsified
      | Provable, Serve.Client.Finished { verdict = Baselines.Verdict.Proved; _ } ->
        incr finished;
        incr proved
      | Starved, Serve.Client.Finished { verdict = Baselines.Verdict.Undecided _; _ } ->
        incr finished;
        incr capped
      | _, Serve.Client.Finished { verdict; _ } ->
        incr finished;
        fail "job %d: wrong verdict %s" i (Format.asprintf "%a" Baselines.Verdict.pp verdict)
      | _, Serve.Client.Crashed { message; _ } -> fail "job %d crashed: %s" i message
      | _, Serve.Client.Refused { reason } -> fail "job %d refused: %s" i reason)
    outcomes;
  line "%d jobs in %.3fs (%.0f jobs/s): %d falsified, %d proved, %d budget-capped@." !count dt
    (float_of_int !count /. dt)
    !falsified !proved !capped;
  Obs.add (c "jobs.total") !count;
  Obs.add (c "jobs.finished") !finished;
  Obs.add (c "jobs.falsified") !falsified;
  Obs.add (c "jobs.proved") !proved;
  Obs.add (c "jobs.capped") !capped;
  span "throughput.time" dt;
  if !finished <> !count then fail "%d of %d jobs never finished" (!count - !finished) !count;
  (* the daemon's shared store took exactly one append per finished job,
     at O(1) amortized index cost (gated below via the store counters) *)
  let stored = List.length (Obs.Store.entries (Obs.Store.open_ dir)) in
  if stored <> !count then fail "store has %d runs for %d finished jobs" stored !count;
  line "store: %d runs, %d index writes, %d index entries serialized@."
    stored
    (Obs.value_of "store.index.writes")
    (Obs.value_of "store.index.entries")

(* ---------------- cancellation row ---------------- *)

let run_cancel () =
  let k = if !quick then 8 else 24 in
  line "@.=== cancellation: %d unfinishable jobs (%d running, rest queued) ===@." k !jobs;
  with_dir @@ fun dir ->
  let model_name, aig = frozen "counter" 12 in
  let server =
    Serve.Server.start ~jobs:!jobs (Serve.Protocol.Unix_path (Filename.concat dir "s.sock"))
  in
  let client = Serve.Client.connect (Serve.Server.address server) in
  (* submit via raw sends so cancels can race the runs *)
  for i = 1 to k do
    Serve.Client.send client
      (Serve.Protocol.Submit
         {
           tag = Printf.sprintf "c%d" i;
           model_name;
           aig;
           engine = "cbq-bwd";
           budget = Serve.Protocol.no_budget;
           quantify_backend = None;
         })
  done;
  let ids = ref [] in
  let started = ref 0 in
  while List.length !ids < k do
    match Serve.Client.recv client with
    | Some (Serve.Protocol.Accepted { id; _ }) -> ids := id :: !ids
    | Some (Serve.Protocol.Started _) -> incr started
    | Some _ -> ()
    | None -> fail "connection closed during submits"; raise Exit
  done;
  (* let the pool actually start chewing before cancelling *)
  let spin = Util.Stopwatch.start () in
  while !started < min k !jobs && Util.Stopwatch.elapsed spin < 10.0 do
    match Serve.Client.recv client with
    | Some (Serve.Protocol.Started _) -> incr started
    | Some _ -> ()
    | None -> fail "connection closed while waiting for starts"; raise Exit
  done;
  let watch = Util.Stopwatch.start () in
  List.iter (fun id -> Serve.Client.send client (Serve.Protocol.Cancel { id })) !ids;
  let done_ = ref 0 and decided = ref 0 in
  while !done_ < k do
    match Serve.Client.recv client with
    | Some (Serve.Protocol.Done { verdict; _ }) ->
      incr done_;
      (match verdict with
      | Baselines.Verdict.Undecided _ -> ()
      | _ -> incr decided)
    | Some (Serve.Protocol.Failed { message; _ }) ->
      incr done_;
      fail "cancelled job failed instead: %s" message
    | Some _ -> ()
    | None -> fail "connection closed while cancelling"; raise Exit
  done;
  let latency = Util.Stopwatch.elapsed watch in
  Serve.Client.close client;
  Serve.Server.stop server;
  Serve.Server.wait server;
  line "%d jobs cancelled in %.3fs (worst case over the whole wave)@." k latency;
  Obs.add (c "cancel.count") k;
  span "cancel.latency" latency;
  if !decided > 0 then fail "%d unfinishable jobs decided before their cancel" !decided
  else if latency > 30.0 then fail "cancellation wave took %.1fs (> 30s)" latency
  else Obs.incr (c "cancel.ok")

(* ---------------- store append-cost row ---------------- *)

let tiny_report i =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 2);
      ( "meta",
        Obs.Json.Obj
          [
            ("model", Obs.Json.String "bench");
            ("engine", Obs.Json.String "none");
            ("verdict", Obs.Json.String "undecided");
          ] );
      ("counters", Obs.Json.Obj [ ("i", Obs.Json.Int i) ]);
      ("spans", Obs.Json.Obj []);
      ("histograms", Obs.Json.Obj []);
    ]

let run_store () =
  let n = 1200 in
  line "@.=== store append cost: %d direct appends ===@." n;
  with_dir @@ fun dir ->
  let writes0 = Obs.value_of "store.index.writes" in
  let entries0 = Obs.value_of "store.index.entries" in
  let store = Obs.Store.open_ dir in
  let half = n / 2 in
  let (), dt1 =
    Util.Stopwatch.time (fun () ->
        for i = 1 to half do
          ignore (Obs.Store.append store (tiny_report i))
        done)
  in
  let (), dt2 =
    Util.Stopwatch.time (fun () ->
        for i = half + 1 to n do
          ignore (Obs.Store.append store (tiny_report i))
        done)
  in
  let writes = Obs.value_of "store.index.writes" - writes0 in
  let serialized = Obs.value_of "store.index.entries" - entries0 in
  line "halves: %.4fs then %.4fs (%.1f then %.1f us/append)@." dt1 dt2
    (1e6 *. dt1 /. float_of_int half)
    (1e6 *. dt2 /. float_of_int (n - half));
  line "index: %d rewrites, %d entries serialized for %d appends@." writes serialized n;
  Obs.add (c "store.appends") n;
  Obs.add (c "store.index_writes") writes;
  Obs.add (c "store.index_entries") serialized;
  span "store.first_half.time" dt1;
  span "store.second_half.time" dt2;
  (* the O(N^2) detector: the old behaviour serialized n(n+1)/2 =
     720600 entries here; the doubling schedule stays under 2n *)
  if serialized >= 2 * n then fail "index serialization is superlinear (%d >= %d)" serialized (2 * n)
  else if writes > 14 then fail "index rewrites are not logarithmic (%d)" writes
  else Obs.incr (c "store.linear")

let () =
  Obs.reset ();
  Obs.set_enabled true;
  line "=== serve layer load bench%s (jobs=%d, count=%d) ===@."
    (if !quick then " (quick)" else "")
    !jobs !count;
  (try
     run_throughput ();
     run_cancel ();
     run_store ()
   with Exit -> ());
  if not !failed then Obs.incr (c "ok");
  (match !stats_dir with
  | None -> ()
  | Some dir ->
    Util.Fs.mkdirs dir;
    Obs.meta "tool" "serve_bench";
    Obs.meta "experiment" (if !quick then "serve-quick" else "serve");
    Obs.write_report (Filename.concat dir "BENCH_serve.json");
    line "report: %s@." (Filename.concat dir "BENCH_serve.json"));
  Obs.set_enabled false;
  if !failed then exit 1
