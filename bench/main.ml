(* Benchmark harness: regenerates every table and figure of the
   reconstructed evaluation (see DESIGN.md §4 and EXPERIMENTS.md).

     T1  quantification size vs. optimization level
     T2  merge-phase ablation (+ shared vs fresh clause database)
     T3  forward vs backward SAT merging
     T4  traversal-engine comparison
     T5  partial quantification as SAT preprocessing
     T6  don't-care optimization ablation
     F1  traversal size profile (AIG frontier vs BDD nodes)
     F2  size-vs-quantified-variables profile

   Usage:
     dune exec bench/main.exe            -- all tables + micro benchmarks
     dune exec bench/main.exe -- --quick -- smaller parameters
     dune exec bench/main.exe -- T1 F2   -- selected experiments only
     dune exec bench/main.exe -- --no-micro
     dune exec bench/main.exe -- --stats-dir=reports T4
                                         -- one JSON run report per row
     dune exec bench/main.exe -- --store=runs T4
                                         -- append each row's report to a
                                            run-report store (cbq_mc report)
     dune exec bench/main.exe -- --row-timeout=5 T4
                                         -- fresh 5s wall-clock governor per
                                            engine row (rows degrade to
                                            UNDECIDED instead of stalling)
*)

let quick = ref false
let run_micro = ref true
let selected : string list ref = ref []
let stats_dir : string option ref = ref None
let store_dir : string option ref = ref None
let row_timeout : float option ref = ref None

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | "--no-micro" -> run_micro := false
        | "--micro" -> run_micro := true
        | s when String.length s > 12 && String.sub s 0 12 = "--stats-dir=" ->
          stats_dir := Some (String.sub s 12 (String.length s - 12))
        | s when String.length s > 8 && String.sub s 0 8 = "--store=" ->
          store_dir := Some (String.sub s 8 (String.length s - 8))
        | s when String.length s > 14 && String.sub s 0 14 = "--row-timeout=" ->
          row_timeout := float_of_string_opt (String.sub s 14 (String.length s - 14))
        | s -> selected := String.uppercase_ascii s :: !selected)
    Sys.argv

(* With --row-timeout=SEC every engine invocation of the comparison
   tables runs under its own fresh wall-clock governor, so a single
   blown-up row degrades to UNDECIDED instead of stalling the whole
   harness. Each call gets a new governor: exhaustion is sticky and must
   not leak across rows. *)
let row_limits () =
  match !row_timeout with
  | None -> Util.Limits.unlimited
  | Some sec -> Util.Limits.create ~timeout:sec ()

let wanted id = !selected = [] || List.mem id !selected

let header id title =
  Format.printf "@.=== %s: %s ===@." id title

let line fmt = Format.printf fmt

(* With --stats-dir, each experiment row runs under a fresh telemetry
   window and leaves one JSON run report, numbered in emission order
   (schema: docs/OBSERVABILITY.md). Without it, [f] runs untouched —
   collection stays disabled and the tables time the uninstrumented
   fast path. *)
let report_seq = ref 0

(* --store=DIR additionally appends every row's report to a run-report
   store, so `cbq_mc report trend` can track a row across bench
   invocations; the store handle is opened once, on first use *)
let store_handle = ref None

let store () =
  match !store_dir with
  | None -> None
  | Some dir ->
    (match !store_handle with
    | Some _ -> ()
    | None -> store_handle := Some (Obs.Store.open_ dir));
    !store_handle

let with_report label f =
  match (!stats_dir, !store_dir) with
  | None, None -> f ()
  | _ ->
    Option.iter Util.Fs.mkdirs !stats_dir;
    Obs.reset ();
    Obs.set_enabled true;
    (* disarm even if the row raises, so one broken experiment cannot
       leak its telemetry into the next row's report *)
    let result = Fun.protect ~finally:(fun () -> Obs.set_enabled false) f in
    Obs.meta "tool" "bench";
    Obs.meta "experiment" label;
    incr report_seq;
    let sanitized =
      String.map
        (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c -> c | _ -> '-')
        label
    in
    (match !stats_dir with
    | Some dir ->
      let path = Filename.concat dir (Printf.sprintf "%03d-%s.json" !report_seq sanitized) in
      Obs.write_report path
    | None -> ());
    Option.iter (fun st -> ignore (Obs.Store.append st (Obs.report ()))) (store ());
    Obs.reset ();
    result

(* ---------------------------------------------------------------- *)
(* shared machinery                                                  *)
(* ---------------------------------------------------------------- *)

type quant_level = { level_name : string; config : Cbq.Quantify.config }

let quant_levels =
  [
    { level_name = "shannon"; config = Cbq.Quantify.naive_config };
    {
      level_name = "+sim/bdd";
      config =
        {
          Cbq.Quantify.naive_config with
          sweep = { Sweep.Sweeper.default with sat = None };
          growth_limit = infinity;
        };
    };
    {
      level_name = "+sat";
      config =
        { Cbq.Quantify.naive_config with sweep = Sweep.Sweeper.default; growth_limit = infinity };
    };
    {
      level_name = "+dc";
      config =
        {
          Cbq.Quantify.default with
          dontcare = { Synth.Dontcare.default with odc_max_tries = 0 };
          use_rewrite = false;
          growth_limit = infinity;
        };
    };
    { level_name = "+rw/full"; config = { Cbq.Quantify.default with growth_limit = infinity } };
  ]

let quantify_with config (cone : Circuits.Comb.cone) k =
  let aig = cone.Circuits.Comb.aig in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 11 in
  let vars = List.filteri (fun i _ -> i < k) cone.Circuits.Comb.vars in
  let r, dt =
    Util.Stopwatch.time (fun () ->
        Cbq.Quantify.all ~config aig checker ~prng cone.Circuits.Comb.root ~vars)
  in
  (Aig.size aig r.Cbq.Quantify.lit, dt, r)

(* bounded BDD size of a literal: the canonical-representation yardstick *)
let bdd_size_of aig lit ~limit =
  let man = Bdd.create () in
  let memo : (int, Bdd.node) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace memo 0 Bdd.zero;
  let build () =
    List.iter
      (fun n ->
        let f0, f1 = Aig.fanins aig n in
        let value l =
          let m = Aig.node_of_lit l in
          let b =
            match Hashtbl.find_opt memo m with
            | Some b -> b
            | None ->
              let b = Bdd.var_node man (Option.get (Aig.var_of_lit aig (Aig.lit_of_node m))) in
              Hashtbl.replace memo m b;
              b
          in
          if Aig.is_complemented l then Bdd.not_ man b else b
        in
        Hashtbl.replace memo n (Bdd.and_ man (value f0) (value f1)))
      (Aig.cone aig [ lit ]);
    let n = Aig.node_of_lit lit in
    let b =
      match Hashtbl.find_opt memo n with
      | Some b -> b
      | None -> (
        match Aig.var_of_lit aig (Aig.lit_of_node n) with
        | Some v -> Bdd.var_node man v
        | None -> Bdd.zero)
    in
    Bdd.size man (if Aig.is_complemented lit then Bdd.not_ man b else b)
  in
  match Bdd.with_limit man ~max_nodes:limit build with
  | Ok s -> Printf.sprintf "%d" s
  | Error `Node_limit -> Printf.sprintf ">%d" limit

let t1_cones () =
  if !quick then
    [ Circuits.Comb.multiplier_bit 4; Circuits.Comb.hwb 6; Circuits.Comb.adder_carry 5 ]
  else
    [
      Circuits.Comb.multiplier_bit 5;
      Circuits.Comb.multiplier_bit 6;
      Circuits.Comb.hwb 8;
      Circuits.Comb.adder_carry 8;
      Circuits.Comb.majority 7;
      Circuits.Comb.random_cone ~vars:8 ~gates:64 ~seed:7;
    ]

(* ---------------------------------------------------------------- *)
(* T1: quantification size vs optimization level                     *)
(* ---------------------------------------------------------------- *)

let t1 () =
  header "T1" "result size after quantifying k variables, per optimization level";
  line "%-10s %5s %6s | %s | %8s@." "cone" "|F|" "k"
    (String.concat " " (List.map (fun l -> Printf.sprintf "%8s" l.level_name) quant_levels))
    "bdd(res)";
  List.iter
    (fun (cone : Circuits.Comb.cone) ->
      with_report ("t1-" ^ cone.Circuits.Comb.name) @@ fun () ->
      let aig = cone.Circuits.Comb.aig in
      let base_size = Aig.size aig cone.Circuits.Comb.root in
      let nv = List.length cone.Circuits.Comb.vars in
      let ks = List.filter (fun k -> k <= nv / 2) [ 1; 2; 4 ] in
      List.iter
        (fun k ->
          let sizes =
            List.map (fun l -> let s, _, _ = quantify_with l.config cone k in s) quant_levels
          in
          let full_size, _, full = quantify_with (List.nth quant_levels 4).config cone k in
          ignore full_size;
          let bddcol = bdd_size_of aig full.Cbq.Quantify.lit ~limit:20_000 in
          line "%-10s %5d %6d | %s | %8s@." cone.Circuits.Comb.name base_size k
            (String.concat " " (List.map (Printf.sprintf "%8d") sizes))
            bddcol)
        ks)
    (t1_cones ())

(* ---------------------------------------------------------------- *)
(* T2: merge-phase ablation                                          *)
(* ---------------------------------------------------------------- *)

let cofactor_pair (cone : Circuits.Comb.cone) =
  let aig = cone.Circuits.Comb.aig in
  let v = List.hd cone.Circuits.Comb.vars in
  let f0 = Aig.cofactor aig cone.Circuits.Comb.root ~v ~phase:false in
  let f1 = Aig.cofactor aig cone.Circuits.Comb.root ~v ~phase:true in
  (aig, f0, f1)

let t2_stage name config aig f0 f1 =
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 17 in
  let (_, report), dt =
    Util.Stopwatch.time (fun () ->
        Sweep.Sweeper.run ~config aig checker ~prng ~roots:[ f0; f1 ])
  in
  (name, report, dt)

let t2 () =
  header "T2" "merge-phase ablation on quantification cofactor pairs";
  line "%-10s %-10s %7s %7s %7s %7s %8s@." "cone" "stage" "classes" "bdd-mrg" "sat-mrg"
    "total" "time(s)";
  List.iter
    (fun (cone : Circuits.Comb.cone) ->
      with_report ("t2-" ^ cone.Circuits.Comb.name) @@ fun () ->
      let aig, f0, f1 = cofactor_pair cone in
      let stages =
        [
          t2_stage "hash" { Sweep.Sweeper.default with bdd_node_limit = 0; sat = None } aig f0 f1;
          t2_stage "+bdd" { Sweep.Sweeper.default with sat = None } aig f0 f1;
          t2_stage "+sat" { Sweep.Sweeper.default with bdd_node_limit = 0 } aig f0 f1;
          t2_stage "all" Sweep.Sweeper.default aig f0 f1;
        ]
      in
      List.iter
        (fun (name, (r : Sweep.Sweeper.report), dt) ->
          line "%-10s %-10s %7d %7d %7d %7d %8.4f@." cone.Circuits.Comb.name name
            r.Sweep.Sweeper.candidate_classes r.Sweep.Sweeper.bdd_merges
            r.Sweep.Sweeper.sat_merges r.Sweep.Sweeper.total_merges dt)
        stages)
    (t1_cones ());
  (* shared clause database vs a fresh solver per equivalence check *)
  line "@.shared clause DB vs fresh solver per check (the paper's factorized SAT-merge):@.";
  line "%-10s %-8s %9s %9s %9s@." "cone" "mode" "sat-calls" "conflicts" "time(s)";
  List.iter
    (fun (cone : Circuits.Comb.cone) ->
      with_report ("t2-db-" ^ cone.Circuits.Comb.name) @@ fun () ->
      let aig, f0, f1 = cofactor_pair cone in
      (* shared: the normal sweeper *)
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 19 in
      let config = { Sweep.Sweeper.default with bdd_node_limit = 0 } in
      let (_, report), shared_dt =
        Util.Stopwatch.time (fun () ->
            Sweep.Sweeper.run ~config aig checker ~prng ~roots:[ f0; f1 ])
      in
      let shared_conflicts = (Cnf.Checker.solver_stats checker).Sat.Solver.conflicts in
      line "%-10s %-8s %9d %9d %9.4f@." cone.Circuits.Comb.name "shared"
        report.Sweep.Sweeper.sat_calls shared_conflicts shared_dt;
      (* fresh: verify the same candidate pairs, one new solver each *)
      let prng2 = Util.Prng.create 19 in
      let sim = Sweep.Sim.create aig ~roots:[ f0; f1 ] ~rounds:8 ~prng:prng2 in
      let fresh_calls = ref 0 in
      let fresh_conflicts = ref 0 in
      let (), fresh_dt =
        Util.Stopwatch.time (fun () ->
            List.iter
              (fun members ->
                match members with
                | [] | [ _ ] -> ()
                | repr :: rest ->
                  List.iter
                    (fun m ->
                      let c = Cnf.Checker.create aig in
                      incr fresh_calls;
                      ignore (Cnf.Checker.equal c repr m);
                      fresh_conflicts :=
                        !fresh_conflicts + (Cnf.Checker.solver_stats c).Sat.Solver.conflicts)
                    rest)
              (Sweep.Sim.classes sim))
      in
      line "%-10s %-8s %9d %9d %9.4f@." cone.Circuits.Comb.name "fresh" !fresh_calls
        !fresh_conflicts fresh_dt)
    (t1_cones ())

(* ---------------------------------------------------------------- *)
(* T3: forward vs backward SAT merging                               *)
(* ---------------------------------------------------------------- *)

let t3_workloads () =
  let n = if !quick then 6 else 10 in
  (* similar cofactors: quantifying the select of a mux between two
     structurally different builds of the SAME function leaves two
     equivalent cofactors — the high-merge-probability case where the
     paper prefers backward processing (top-level successes subsume the
     whole cone) *)
  let similar () =
    let aig = Aig.create () in
    let xs = List.init n (Aig.var aig) in
    (* left-folded vs balanced-tree xor-majority mix of the same function *)
    let impl1 =
      List.fold_left (fun acc x -> Aig.or_ aig (Aig.and_ aig acc x) (Aig.and_ aig (Aig.not_ acc) (Aig.not_ x))) (List.hd xs) (List.tl xs)
    in
    let rec balanced = function
      | [] -> Aig.true_
      | [ x ] -> x
      | l ->
        let rec split k xs = if k = 0 then ([], xs) else match xs with [] -> ([], []) | x :: r -> let a, b = split (k - 1) r in (x :: a, b) in
        let a, b = split (List.length l / 2) l in
        Aig.iff_ aig (balanced a) (balanced b)
    in
    (* iff-chain equals the fold of iff in any association order *)
    let impl2 = balanced xs in
    ("similar", aig, impl1, impl2)
  in
  (* dissimilar cofactors: structurally parallel but functionally
     different cones — the low-merge case. Candidate classes survive the
     (deliberately thin) simulation and must be refuted by SAT, which is
     where forward processing with learning pays off. *)
  let dissimilar () =
    let aig = Aig.create () in
    let xs = List.init n (Aig.var aig) in
    let chain seed_lit leaves =
      List.fold_left
        (fun acc x ->
          Aig.or_ aig (Aig.and_ aig acc x) (Aig.and_ aig (Aig.not_ acc) (Aig.not_ x)))
        seed_lit leaves
    in
    let f = chain (List.hd xs) (List.tl xs) in
    (* same shape, almost the same function: the second chain's seed
       differs from x0 on a single input vector, so every node pairs up as
       a candidate that only SAT can refute — and one refuting model
       splits all the candidate pairs at once *)
    let seed_g = Aig.xor_ aig (List.hd xs) (Aig.and_list aig xs) in
    let g = chain seed_g (List.tl xs) in
    ("dissimilar", aig, f, g)
  in
  [ similar (); dissimilar () ]

let t3 () =
  header "T3" "forward vs backward processing of the SAT merge queue";
  line "%-12s %-9s %8s %8s %8s %9s %8s@." "workload" "order" "calls" "merges" "skipped"
    "refuted" "time(s)";
  List.iter
    (fun (name, aig, f0, f1) ->
      with_report ("t3-" ^ name) @@ fun () ->
      List.iter
        (fun direction ->
          let checker = Cnf.Checker.create aig in
          let prng = Util.Prng.create 29 in
          (* a single simulation word keeps spurious candidates alive, so
             the SAT queue actually has work to order *)
          let config =
            { Sweep.Sweeper.default with sat = Some direction; bdd_node_limit = 0; sim_rounds = 1 }
          in
          let (_, r), dt =
            Util.Stopwatch.time (fun () ->
                Sweep.Sweeper.run ~config aig checker ~prng ~roots:[ f0; f1 ])
          in
          line "%-12s %-9s %8d %8d %8d %9d %8.4f@." name
            (match direction with Sweep.Sweeper.Forward -> "forward" | Sweep.Sweeper.Backward -> "backward")
            r.Sweep.Sweeper.sat_calls r.Sweep.Sweeper.sat_merges
            r.Sweep.Sweeper.sat_skipped_covered r.Sweep.Sweeper.sat_refuted dt)
        [ Sweep.Sweeper.Forward; Sweep.Sweeper.Backward ])
    (t3_workloads ())

(* ---------------------------------------------------------------- *)
(* T4: traversal-engine comparison                                   *)
(* ---------------------------------------------------------------- *)

let t4_models () =
  if !quick then
    [ ("counter", Some 4); ("fifo-buggy", Some 2); ("arbiter", Some 4); ("gray", Some 3) ]
  else
    [
      ("counter", Some 5);
      ("counter-even", Some 8);
      ("twin-shift", Some 8);
      ("shift-pattern", Some 8);
      ("lfsr", Some 6);
      ("fifo", Some 3);
      ("fifo-buggy", Some 3);
      ("accumulator", Some 5);
      ("gray", Some 4);
      ("arbiter", Some 6);
      ("peterson", None);
    ]

type t4_row = { engine : string; verdict : string; iters : int; peak : int; secs : float }

let t4_run_engines name param =
  let build () = fst (Circuits.Registry.build name param) in
  let rows = ref [] in
  let add engine verdict iters peak secs =
    rows := { engine; verdict; iters; peak; secs } :: !rows
  in
  let vs v = Format.asprintf "%a" Baselines.Verdict.pp v in
  (let m = build () in
   let r, dt = Util.Stopwatch.time (fun () -> Cbq.Reachability.run ~config:{ Cbq.Reachability.default with make_trace = false } ~limits:(row_limits ()) m) in
   let v =
     match r.Cbq.Reachability.verdict with
     | Cbq.Reachability.Proved -> "PROVED"
     | Cbq.Reachability.Falsified { depth; _ } -> Printf.sprintf "FALSIFIED(%d)" depth
     | Cbq.Reachability.Out_of_budget { reason; _ } -> "UNDECIDED(" ^ reason ^ ")"
   in
   add "cbq" v (List.length r.Cbq.Reachability.iterations) r.Cbq.Reachability.peak_frontier dt);
  (let m = build () in
   let r, dt = Util.Stopwatch.time (fun () -> Baselines.Bdd_mc.backward ~node_limit:300_000 ~limits:(row_limits ()) m) in
   add "bdd-bwd" (vs r.Baselines.Bdd_mc.verdict) (List.length r.Baselines.Bdd_mc.iterations)
     r.Baselines.Bdd_mc.peak_nodes dt);
  (let m = build () in
   let r, dt = Util.Stopwatch.time (fun () -> Baselines.Bdd_mc.forward ~node_limit:300_000 ~limits:(row_limits ()) m) in
   add "bdd-fwd" (vs r.Baselines.Bdd_mc.verdict) (List.length r.Baselines.Bdd_mc.iterations)
     r.Baselines.Bdd_mc.peak_nodes dt);
  (let m = build () in
   let r, dt = Util.Stopwatch.time (fun () -> Baselines.Bmc.run ~max_depth:64 ~limits:(row_limits ()) m) in
   add "bmc" (vs r.Baselines.Bmc.verdict) r.Baselines.Bmc.depth_reached
     r.Baselines.Bmc.solver.Sat.Solver.decisions dt);
  (let m = build () in
   let r, dt = Util.Stopwatch.time (fun () -> Baselines.Induction.run ~max_k:40 ~limits:(row_limits ()) m) in
   add "induction" (vs r.Baselines.Induction.verdict) r.Baselines.Induction.k_used
     r.Baselines.Induction.solver.Sat.Solver.decisions dt);
  (let m = build () in
   let r, dt =
     Util.Stopwatch.time (fun () ->
         Baselines.Cofactor_preimage.run ~max_enumerations:50_000 ~limits:(row_limits ()) m)
   in
   add "cofactor" (vs r.Baselines.Cofactor_preimage.verdict)
     (List.length r.Baselines.Cofactor_preimage.iterations)
     r.Baselines.Cofactor_preimage.total_enumerations dt);
  (let m = build () in
   let r, dt = Util.Stopwatch.time (fun () -> Baselines.Hybrid.run ~limits:(row_limits ()) m) in
   add "hybrid" (vs r.Baselines.Hybrid.verdict) (List.length r.Baselines.Hybrid.iterations)
     r.Baselines.Hybrid.total_enumerations dt);
  List.rev !rows

let t4 () =
  header "T4" "traversal comparison (peak = AIG frontier / BDD nodes / SAT decisions / enums)";
  line "%-16s %-10s %-16s %6s %9s %9s@." "model" "engine" "verdict" "iters" "peak" "time(s)";
  List.iter
    (fun (name, param) ->
      let model, _ = Circuits.Registry.build name param in
      let model_name = Netlist.Model.name model in
      with_report ("t4-" ^ model_name) @@ fun () ->
      List.iter
        (fun r ->
          line "%-16s %-10s %-16s %6d %9d %9.4f@." model_name r.engine r.verdict r.iters r.peak
            r.secs)
        (t4_run_engines name param))
    (t4_models ())

(* ---------------------------------------------------------------- *)
(* T5: partial quantification as preprocessing                       *)
(* ---------------------------------------------------------------- *)

let t5 () =
  header "T5" "partial quantification: inputs eliminated vs growth budget, and downstream SAT work";
  line "%-12s %10s %10s %8s %9s@." "model" "budget" "eliminated" "kept" "|pre|";
  let models =
    if !quick then [ ("arbiter", Some 4) ] else [ ("arbiter", Some 6); ("arbiter", Some 10); ("gray", Some 4) ]
  in
  let budgets = [ (0.5, "0.5x"); (1.0, "1.0x"); (2.0, "2.0x"); (infinity, "inf") ] in
  List.iter
    (fun (name, param) ->
      let model, _ = Circuits.Registry.build name param in
      with_report ("t5-budget-" ^ Netlist.Model.name model) @@ fun () ->
      let aig = Netlist.Model.aig model in
      let bad = Aig.not_ model.Netlist.Model.property in
      List.iter
        (fun (limit, label) ->
          let checker = Cnf.Checker.create aig in
          let prng = Util.Prng.create 31 in
          let config = { Cbq.Quantify.default with growth_limit = limit; growth_slack = 8 } in
          let pre =
            Cbq.Preimage.compute ~config model checker ~prng ~frontier:bad ~extra_vars:[]
          in
          line "%-12s %10s %10d %8d %9d@." (Netlist.Model.name model) label
            (List.length pre.Cbq.Preimage.eliminated)
            (List.length pre.Cbq.Preimage.kept)
            (Aig.size aig pre.Cbq.Preimage.lit))
        budgets)
    models;
  (* a wide combinational cone shows the abort behaviour directly: cheap
     variables are eliminated, expensive ones kept for the SAT engine *)
  line "@.combinational budget sweep (random cone, quantifying half the inputs):@.";
  line "%-12s %10s %10s %8s %9s@." "cone" "budget" "eliminated" "kept" "size";
  let cone =
    if !quick then Circuits.Comb.random_cone ~vars:8 ~gates:64 ~seed:47
    else Circuits.Comb.random_cone ~vars:12 ~gates:140 ~seed:47
  in
  let budgets_comb = [ (0.3, "0.3x"); (0.5, "0.5x"); (0.8, "0.8x"); (infinity, "inf") ] in
  (* quantify half the inputs so the result stays a non-trivial function
     and per-variable aborts are visible *)
  let half = List.filteri (fun i _ -> i mod 2 = 0) cone.Circuits.Comb.vars in
  with_report "t5-comb-budget" (fun () ->
      List.iter
        (fun (limit, label) ->
          let aig = cone.Circuits.Comb.aig in
          let checker = Cnf.Checker.create aig in
          let prng = Util.Prng.create 41 in
          let config = { Cbq.Quantify.default with growth_limit = limit; growth_slack = 0 } in
          let r =
            Cbq.Quantify.all ~config aig checker ~prng cone.Circuits.Comb.root ~vars:half
          in
          line "%-12s %10s %10d %8d %9d@." cone.Circuits.Comb.name label
            (List.length r.Cbq.Quantify.eliminated)
            (List.length r.Cbq.Quantify.kept)
            (Aig.size aig r.Cbq.Quantify.lit))
        budgets_comb);
  (* BMC with structural input elimination in front of each SAT call *)
  line "@.BMC with CBQ preprocessing (paper section 4):@.";
  line "%-16s %-8s %10s %10s %12s@." "model" "mode" "decisions" "conflicts" "eliminated";
  List.iter
    (fun (name, param) ->
      let m1, _ = Circuits.Registry.build name param in
      with_report ("t5-bmc-" ^ Netlist.Model.name m1) @@ fun () ->
      let r1 = Baselines.Bmc.run ~max_depth:40 m1 in
      line "%-16s %-8s %10d %10d %12d@." (Netlist.Model.name m1) "plain"
        r1.Baselines.Bmc.solver.Sat.Solver.decisions
        r1.Baselines.Bmc.solver.Sat.Solver.conflicts 0;
      let m2, _ = Circuits.Registry.build name param in
      let r2 = Baselines.Bmc.run ~max_depth:40 ~preprocess:true m2 in
      line "%-16s %-8s %10d %10d %12d@." "" "cbq-prep"
        r2.Baselines.Bmc.solver.Sat.Solver.decisions
        r2.Baselines.Bmc.solver.Sat.Solver.conflicts r2.Baselines.Bmc.inputs_eliminated)
    (if !quick then [ ("counter", Some 4) ]
     else [ ("counter", Some 4); ("fifo-buggy", Some 3); ("accumulator", Some 4) ]);
  (* downstream effect: enumerations needed with vs without preprocessing *)
  line "@.downstream all-solution pre-image (enumerations = SAT solutions needed):@.";
  line "%-12s %-22s %14s@." "model" "mode" "enumerations";
  List.iter
    (fun (name, param) ->
      let model, _ = Circuits.Registry.build name param in
      with_report ("t5-enum-" ^ Netlist.Model.name model) @@ fun () ->
      (let r = Baselines.Cofactor_preimage.run ~max_enumerations:100_000 model in
       line "%-12s %-22s %14d@." (Netlist.Model.name model) "pure enumeration"
         r.Baselines.Cofactor_preimage.total_enumerations);
      let model2, _ = Circuits.Registry.build name param in
      let r = Baselines.Hybrid.run model2 in
      line "%-12s %-22s %14d@."
        (Netlist.Model.name model2)
        "cbq-preprocessed (hybrid)" r.Baselines.Hybrid.total_enumerations)
    models

(* ---------------------------------------------------------------- *)
(* T6: don't-care optimization ablation                              *)
(* ---------------------------------------------------------------- *)

let t6 () =
  header "T6" "cross-cofactor don't-care optimization ablation";
  line "%-10s %-12s %6s %6s %6s %6s %8s@." "cone" "variant" "const" "merge" "odc" "size"
    "sat-calls";
  let variants =
    [
      ("plain-or", None);
      ("const-dc", Some { Synth.Dontcare.default with use_merges = false; odc_max_tries = 0 });
      ("merge-dc", Some { Synth.Dontcare.default with odc_max_tries = 0 });
      ("full+odc", Some Synth.Dontcare.default);
    ]
  in
  List.iter
    (fun (cone : Circuits.Comb.cone) ->
      with_report ("t6-" ^ cone.Circuits.Comb.name) @@ fun () ->
      let aig, f0, f1 = cofactor_pair cone in
      (* pre-merge with the sweeper so T6 isolates the optimization phase *)
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 37 in
      let lits, _ = Sweep.Sweeper.sweep_lits aig checker ~prng [ f0; f1 ] in
      let f0, f1 = match lits with [ a; b ] -> (a, b) | _ -> assert false in
      List.iter
        (fun (vname, variant) ->
          match variant with
          | None ->
            line "%-10s %-12s %6d %6d %6d %6d %8d@." cone.Circuits.Comb.name vname 0 0 0
              (Aig.size aig (Aig.or_ aig f0 f1))
              0
          | Some config ->
            let _, r = Synth.Dontcare.disjunction ~config aig checker ~prng f0 f1 in
            line "%-10s %-12s %6d %6d %6d %6d %8d@." cone.Circuits.Comb.name vname
              r.Synth.Dontcare.const_replacements r.Synth.Dontcare.merge_replacements
              r.Synth.Dontcare.odc_replacements r.Synth.Dontcare.size_after
              r.Synth.Dontcare.sat_calls)
        variants)
    (t1_cones ())

(* ---------------------------------------------------------------- *)
(* F1: traversal size profile                                        *)
(* ---------------------------------------------------------------- *)

let f1 () =
  header "F1" "state-set representation growth (series over the arbiter family)";
  line "%-6s %14s %14s %14s@." "n" "cbq-peak-aig" "bdd-peak-node" "cbq/bdd-iters";
  let sizes = if !quick then [ 2; 4; 6 ] else [ 2; 4; 6; 8; 10; 12 ] in
  List.iter
    (fun n ->
      with_report (Printf.sprintf "f1-arbiter%d" n) @@ fun () ->
      let m1 = Circuits.Families.rr_arbiter ~n in
      let r1 = Cbq.Reachability.run ~config:{ Cbq.Reachability.default with make_trace = false } m1 in
      let m2 = Circuits.Families.rr_arbiter ~n in
      let r2 = Baselines.Bdd_mc.backward ~node_limit:1_000_000 m2 in
      line "%-6d %14d %14d %7d/%d@." n r1.Cbq.Reachability.peak_frontier
        r2.Baselines.Bdd_mc.peak_nodes
        (List.length r1.Cbq.Reachability.iterations)
        (List.length r2.Baselines.Bdd_mc.iterations))
    sizes;
  (* per-iteration series on one instance *)
  let n = if !quick then 4 else 8 in
  line "@.per-iteration sizes, arbiter %d (iteration: aig-frontier bdd-frontier):@." n;
  with_report (Printf.sprintf "f1-profile-arbiter%d" n) @@ fun () ->
  let m1 = Circuits.Families.rr_arbiter ~n in
  let r1 = Cbq.Reachability.run ~config:{ Cbq.Reachability.default with make_trace = false } m1 in
  let m2 = Circuits.Families.rr_arbiter ~n in
  let r2 = Baselines.Bdd_mc.backward m2 in
  List.iter2
    (fun (a : Cbq.Reachability.iteration) (b : Baselines.Bdd_mc.iteration) ->
      line "  iter %2d: %6d %6d@." a.Cbq.Reachability.index a.Cbq.Reachability.frontier_size
        b.Baselines.Bdd_mc.frontier_nodes)
    r1.Cbq.Reachability.iterations r2.Baselines.Bdd_mc.iterations

(* ---------------------------------------------------------------- *)
(* F2: quantification profile                                        *)
(* ---------------------------------------------------------------- *)

let f2 () =
  header "F2" "size after each quantified variable (multiplier cone, x-operand)";
  let n = if !quick then 4 else 6 in
  let cone = Circuits.Comb.multiplier_bit n in
  let aig = cone.Circuits.Comb.aig in
  line "cone %s: %d AND nodes, quantifying the %d x-operand variables@."
    cone.Circuits.Comb.name
    (Aig.size aig cone.Circuits.Comb.root)
    n;
  line "%-10s %s@." "config" (String.concat " " (List.init n (fun i -> Printf.sprintf "k=%-5d" (i + 1))));
  List.iter
    (fun { level_name; config } ->
      with_report ("f2-" ^ level_name) @@ fun () ->
      let sizes =
        List.init n (fun i ->
            let s, _, _ = quantify_with config cone (i + 1) in
            s)
      in
      line "%-10s %s@." level_name (String.concat " " (List.map (Printf.sprintf "%-7d") sizes)))
    [ List.nth quant_levels 0; List.nth quant_levels 2; List.nth quant_levels 4 ]

(* ---------------------------------------------------------------- *)
(* T7: forward traversal (relational image stresses the quantifier)  *)
(* ---------------------------------------------------------------- *)

let t7 () =
  header "T7" "forward CBQ (relational image) vs forward BDD";
  line "%-16s %-10s %-16s %6s %9s %9s@." "model" "engine" "verdict" "iters" "peak" "time(s)";
  let models =
    if !quick then [ ("counter", Some 3); ("fifo-buggy", Some 2) ]
    else
      [
        ("counter", Some 4);
        ("counter-even", Some 5);
        ("shift-pattern", Some 6);
        ("fifo-buggy", Some 2);
        ("lfsr", Some 5);
        ("johnson", Some 5);
      ]
  in
  List.iter
    (fun (name, param) ->
      let m1, _ = Circuits.Registry.build name param in
      with_report ("t7-" ^ Netlist.Model.name m1) @@ fun () ->
      let cfg = { Cbq.Reachability.default with make_trace = false } in
      let r1, dt1 =
        Util.Stopwatch.time (fun () -> Cbq.Forward.run ~config:cfg ~limits:(row_limits ()) m1)
      in
      let v1 =
        match r1.Cbq.Reachability.verdict with
        | Cbq.Reachability.Proved -> "PROVED"
        | Cbq.Reachability.Falsified { depth; _ } -> Printf.sprintf "FALSIFIED(%d)" depth
        | Cbq.Reachability.Out_of_budget { reason; _ } -> "UNDECIDED(" ^ reason ^ ")"
      in
      line "%-16s %-10s %-16s %6d %9d %9.4f@." (Netlist.Model.name m1) "cbq-fwd" v1
        (List.length r1.Cbq.Reachability.iterations)
        r1.Cbq.Reachability.peak_frontier dt1;
      let m2, _ = Circuits.Registry.build name param in
      let r2, dt2 =
        Util.Stopwatch.time (fun () -> Baselines.Bdd_mc.forward ~limits:(row_limits ()) m2)
      in
      line "%-16s %-10s %-16s %6d %9d %9.4f@." (Netlist.Model.name m2) "bdd-fwd"
        (Format.asprintf "%a" Baselines.Verdict.pp r2.Baselines.Bdd_mc.verdict)
        (List.length r2.Baselines.Bdd_mc.iterations)
        r2.Baselines.Bdd_mc.peak_nodes dt2)
    models

(* ---------------------------------------------------------------- *)
(* T8: stand-alone CEC scaling (merge engine as equivalence checker) *)
(* ---------------------------------------------------------------- *)

let t8 () =
  header "T8" "CEC: ripple-carry vs carry-lookahead carry-out";
  line "%-6s %-14s %-12s %9s %9s %9s@." "n" "verdict" "sweep-close" "merges" "sat-calls"
    "time(s)";
  let sizes = if !quick then [ 4; 8 ] else [ 4; 8; 16; 24; 32 ] in
  List.iter
    (fun n ->
      with_report (Printf.sprintf "t8-adder%d" n) @@ fun () ->
      let ripple = Circuits.Comb.adder_carry n in
      let cla = Circuits.Comb.carry_lookahead n in
      let r =
        Sweep.Cec.check_cones
          (ripple.Circuits.Comb.aig, ripple.Circuits.Comb.root, ripple.Circuits.Comb.vars)
          (cla.Circuits.Comb.aig, cla.Circuits.Comb.root, cla.Circuits.Comb.vars)
      in
      line "%-6d %-14s %-12b %9d %9d %9.4f@." n
        (Format.asprintf "%a" Sweep.Cec.pp_verdict r.Sweep.Cec.verdict
        |> fun s -> if String.length s > 14 then String.sub s 0 14 else s)
        r.Sweep.Cec.merged_to_same_node r.Sweep.Cec.sweep.Sweep.Sweeper.total_merges
        r.Sweep.Cec.sweep.Sweep.Sweeper.sat_calls r.Sweep.Cec.seconds)
    sizes

(* ---------------------------------------------------------------- *)
(* A1: traversal-option ablation                                     *)
(* ---------------------------------------------------------------- *)

let a1 () =
  header "A1" "traversal options: frontier sweeping and reached-set don't cares";
  line "%-16s %-22s %6s %9s %9s@." "model" "options" "iters" "peak" "time(s)";
  let models =
    if !quick then [ ("fifo-buggy", Some 2); ("tmr", Some 3) ]
    else [ ("counter", Some 5); ("fifo-buggy", Some 3); ("tmr", Some 3); ("johnson", Some 6) ]
  in
  let variants =
    [
      ("plain", Cbq.Reachability.default);
      ("sweep-frontier", { Cbq.Reachability.default with sweep_frontier = true });
      ("reached-dc", { Cbq.Reachability.default with use_reached_dc = true });
      ( "both",
        { Cbq.Reachability.default with sweep_frontier = true; use_reached_dc = true } );
    ]
  in
  List.iter
    (fun (name, param) ->
      with_report ("a1-" ^ name) @@ fun () ->
      List.iter
        (fun (label, config) ->
          let m, _ = Circuits.Registry.build name param in
          let config = { config with Cbq.Reachability.make_trace = false } in
          let r, dt = Util.Stopwatch.time (fun () -> Cbq.Reachability.run ~config m) in
          line "%-16s %-22s %6d %9d %9.4f@." (Netlist.Model.name m) label
            (List.length r.Cbq.Reachability.iterations)
            r.Cbq.Reachability.peak_frontier dt)
        variants)
    models

(* ---------------------------------------------------------------- *)
(* A2: sequential sweeping as preprocessing                          *)
(* ---------------------------------------------------------------- *)

let a2 () =
  header "A2" "register-correspondence sweeping before verification";
  line "%-14s %8s %8s %10s %12s %12s@." "model" "latches" "reduced" "sat-calls" "cbq-plain(s)"
    "cbq-swept(s)";
  let models =
    if !quick then [ ("twin-shift", Some 6); ("tmr", Some 3) ]
    else [ ("twin-shift", Some 10); ("tmr", Some 4); ("peterson", None); ("gray", Some 4) ]
  in
  List.iter
    (fun (name, param) ->
      let m1, _ = Circuits.Registry.build name param in
      with_report ("a2-" ^ Netlist.Model.name m1) @@ fun () ->
      let cfg = { Cbq.Reachability.default with make_trace = false } in
      let _, plain_dt = Util.Stopwatch.time (fun () -> Cbq.Reachability.run ~config:cfg m1) in
      let m2, _ = Circuits.Registry.build name param in
      let (reduced, report), sweep_dt = Util.Stopwatch.time (fun () -> Cbq.Seq_sweep.reduce m2) in
      let _, swept_dt =
        Util.Stopwatch.time (fun () -> Cbq.Reachability.run ~config:cfg reduced)
      in
      line "%-14s %8d %8d %10d %12.4f %12.4f@." (Netlist.Model.name m1)
        report.Cbq.Seq_sweep.latches_before report.Cbq.Seq_sweep.latches_after
        report.Cbq.Seq_sweep.sat_calls plain_dt (sweep_dt +. swept_dt))
    models

(* ---------------------------------------------------------------- *)
(* B1: block vs sequential quantification                            *)
(* ---------------------------------------------------------------- *)

let b1 () =
  header "B1" "quantifying variable pairs jointly (block) vs one at a time";
  line "%-10s %-6s %12s %12s@." "cone" "k" "sequential" "block";
  let cones = if !quick then [ Circuits.Comb.multiplier_bit 4 ] else t1_cones () in
  List.iter
    (fun (cone : Circuits.Comb.cone) ->
      with_report ("b1-" ^ cone.Circuits.Comb.name) @@ fun () ->
      let aig = cone.Circuits.Comb.aig in
      List.iter
        (fun k ->
          if k <= List.length cone.Circuits.Comb.vars then begin
            let vars = List.filteri (fun i _ -> i < k) cone.Circuits.Comb.vars in
            let config = { Cbq.Quantify.default with growth_limit = infinity } in
            let checker = Cnf.Checker.create aig in
            let prng = Util.Prng.create 121 in
            let seq = Cbq.Quantify.all ~config aig checker ~prng cone.Circuits.Comb.root ~vars in
            let checker2 = Cnf.Checker.create aig in
            let prng2 = Util.Prng.create 121 in
            let blocked =
              match
                Cbq.Quantify.block ~config aig checker2 ~prng:prng2 cone.Circuits.Comb.root
                  ~vars
              with
              | Ok l -> Aig.size aig l
              | Error l -> Aig.size aig l
            in
            line "%-10s %-6d %12d %12d@." cone.Circuits.Comb.name k
              (Aig.size aig seq.Cbq.Quantify.lit)
              blocked
          end)
        [ 2; 4 ])
    cones

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one Test per table                     *)
(* ---------------------------------------------------------------- *)

let micro () =
  header "MICRO" "bechamel micro-benchmarks (one per table)";
  let open Bechamel in
  let t1_bench =
    Test.make ~name:"T1-quant-size"
      (Staged.stage (fun () ->
           let cone = Circuits.Comb.multiplier_bit 4 in
           ignore (quantify_with (List.nth quant_levels 4).config cone 2)))
  in
  let t2_bench =
    Test.make ~name:"T2-merge-ablation"
      (Staged.stage (fun () ->
           let cone = Circuits.Comb.multiplier_bit 4 in
           let aig, f0, f1 = cofactor_pair cone in
           let checker = Cnf.Checker.create aig in
           let prng = Util.Prng.create 3 in
           ignore (Sweep.Sweeper.run aig checker ~prng ~roots:[ f0; f1 ])))
  in
  let t3_bench =
    Test.make ~name:"T3-fwd-bwd"
      (Staged.stage (fun () ->
           let cone = Circuits.Comb.random_cone ~vars:6 ~gates:48 ~seed:23 in
           let aig, f0, f1 = cofactor_pair cone in
           let checker = Cnf.Checker.create aig in
           let prng = Util.Prng.create 5 in
           let config =
             { Sweep.Sweeper.default with sat = Some Sweep.Sweeper.Backward; bdd_node_limit = 0 }
           in
           ignore (Sweep.Sweeper.run ~config aig checker ~prng ~roots:[ f0; f1 ])))
  in
  let t4_bench =
    Test.make ~name:"T4-traversal"
      (Staged.stage (fun () ->
           let m = Circuits.Families.fifo ~buggy:true ~depth_log:2 () in
           ignore (Cbq.Reachability.run ~config:{ Cbq.Reachability.default with make_trace = false } m)))
  in
  let t5_bench =
    Test.make ~name:"T5-partial-quant"
      (Staged.stage (fun () ->
           let m = Circuits.Families.rr_arbiter ~n:4 in
           ignore (Baselines.Hybrid.run m)))
  in
  let t6_bench =
    Test.make ~name:"T6-dc-ablation"
      (Staged.stage (fun () ->
           let cone = Circuits.Comb.multiplier_bit 4 in
           let aig, f0, f1 = cofactor_pair cone in
           let checker = Cnf.Checker.create aig in
           let prng = Util.Prng.create 7 in
           ignore (Synth.Dontcare.disjunction aig checker ~prng f0 f1)))
  in
  let f1_bench =
    Test.make ~name:"F1-size-profile"
      (Staged.stage (fun () ->
           let m = Circuits.Families.rr_arbiter ~n:4 in
           ignore (Baselines.Bdd_mc.backward m)))
  in
  let f2_bench =
    Test.make ~name:"F2-quant-profile"
      (Staged.stage (fun () ->
           let m = Circuits.Families.counter ~bits:4 in
           let aig = Netlist.Model.aig m in
           let checker = Cnf.Checker.create aig in
           let prng = Util.Prng.create 9 in
           let bad = Aig.not_ m.Netlist.Model.property in
           ignore (Cbq.Preimage.compute m checker ~prng ~frontier:bad ~extra_vars:[])))
  in
  let t7_bench =
    Test.make ~name:"T7-forward"
      (Staged.stage (fun () ->
           let m = Circuits.Families.counter ~bits:3 in
           ignore
             (Cbq.Forward.run ~config:{ Cbq.Reachability.default with make_trace = false } m)))
  in
  let t8_bench =
    Test.make ~name:"T8-cec"
      (Staged.stage (fun () ->
           let ripple = Circuits.Comb.adder_carry 8 in
           let cla = Circuits.Comb.carry_lookahead 8 in
           ignore
             (Sweep.Cec.check_cones
                (ripple.Circuits.Comb.aig, ripple.Circuits.Comb.root, ripple.Circuits.Comb.vars)
                (cla.Circuits.Comb.aig, cla.Circuits.Comb.root, cla.Circuits.Comb.vars))))
  in
  let a1_bench =
    Test.make ~name:"A1-traversal-options"
      (Staged.stage (fun () ->
           let m = Circuits.Families.fifo ~buggy:true ~depth_log:2 () in
           let config =
             {
               Cbq.Reachability.default with
               sweep_frontier = true;
               use_reached_dc = true;
               make_trace = false;
             }
           in
           ignore (Cbq.Reachability.run ~config m)))
  in
  let tests =
    Test.make_grouped ~name:"cbq"
      [
        t1_bench; t2_bench; t3_bench; t4_bench; t5_bench; t6_bench; f1_bench; f2_bench;
        t7_bench; t8_bench; a1_bench;
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  let clock_label = Measure.label Toolkit.Instance.monotonic_clock in
  Hashtbl.iter
    (fun measure table ->
      if measure = clock_label then
        Hashtbl.iter
          (fun name (ols : Analyze.OLS.t) ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> line "  %-24s %12.0f ns/run@." name est
            | Some _ | None -> line "  %-24s (no estimate)@." name)
          table)
    results

(* ---------------------------------------------------------------- *)

let () =
  Format.printf "circuit-based quantification benchmark harness%s@."
    (if !quick then " (quick mode)" else "");
  if wanted "T1" then t1 ();
  if wanted "T2" then t2 ();
  if wanted "T3" then t3 ();
  if wanted "T4" then t4 ();
  if wanted "T5" then t5 ();
  if wanted "T6" then t6 ();
  if wanted "F1" then f1 ();
  if wanted "F2" then f2 ();
  if wanted "T7" then t7 ();
  if wanted "T8" then t8 ();
  if wanted "A1" then a1 ();
  if wanted "A2" then a2 ();
  if wanted "B1" then b1 ();
  if !run_micro && !selected = [] then micro ();
  Format.printf "@.done.@."
