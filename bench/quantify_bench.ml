(* Quantification-backend benchmark: partial quantification over the
   bad cones of registry families under a deliberately tight growth
   budget, once per backend (circuit / pqe / auto).

   The interesting metric is the abort count: a tight growth budget
   makes the circuit backend keep (abort) every variable whose merged
   cofactor disjunction still grows, while the PQE backend can collapse
   some of those same variables at the clause level — and the auto
   router, which retries the other backend whenever its first choice
   aborts, must therefore abort at most as often as either fixed
   backend. The bench EXITS NON-ZERO unless the auto backend strictly
   reduces aborts vs circuit-only on at least two families, so the
   selector's reason to exist is re-proven on every run.

   Every gated metric is deterministic for a given build: fixed PRNG
   seeds, fixed models, no wall-clock-dependent budgets. Wall-clock goes
   to the quantbench.<family>.time spans, which the regress gate
   ignores.

   Usage:
     dune exec bench/quantify_bench.exe
     dune exec bench/quantify_bench.exe -- --quick
     dune exec bench/quantify_bench.exe -- --stats-dir=DIR
                  -- writes DIR/BENCH_quantify.json, gateable by
                     cbq-bench-regress against bench/baseline-quantify *)

let quick = ref false
let stats_dir : string option ref = ref None

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | s when String.length s > 12 && String.sub s 0 12 = "--stats-dir=" ->
          stats_dir := Some (String.sub s 12 (String.length s - 12))
        | s ->
          Printf.eprintf "quantify_bench: unknown argument %S\n" s;
          exit 2)
    Sys.argv

(* the tight budget: any residual growth aborts the circuit backend, so
   only variables whose elimination genuinely collapses survive — the
   regime where the backends actually differ (the default budget decides
   almost everything under either backend, and the rows would gate
   nothing) *)
let strict config =
  {
    config with
    Cbq.Quantify.growth_limit = 1.0;
    growth_slack = 0;
    use_dontcare = false;
    use_rewrite = false;
    sweep = { Sweep.Sweeper.default with bdd_node_limit = 0; sat = None; sim_rounds = 1 };
  }

let backends = [ Cbq.Quantify.Circuit; Cbq.Quantify.Pqe; Cbq.Quantify.Auto ]

let row_counter family metric = Obs.counter (Printf.sprintf "quantbench.%s.%s" family metric)

(* one family x one backend: a fresh model instance per run, so backend
   runs cannot perturb each other through the shared AIG manager *)
let run_backend (name, param) backend =
  let model, _status = Circuits.Registry.build name param in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 2005 in
  (* the backward-step workload: the bad states pulled through one
     transition, i.e. the cone the preimage path hands to Quantify *)
  let bad = Cbq.Preimage.substitute model (Aig.not_ model.Netlist.Model.property) in
  let vars =
    List.filter
      (fun v -> Aig.depends_on aig bad v)
      (Netlist.Model.input_vars model
      @ List.map (fun l -> l.Netlist.Model.state_var) model.Netlist.Model.latches)
  in
  let config = strict { Cbq.Quantify.default with backend } in
  let r = Cbq.Quantify.all ~config aig checker ~prng bad ~vars in
  (List.length r.Cbq.Quantify.eliminated, List.length r.Cbq.Quantify.kept)

let run_family (name, param) =
  let family = match param with None -> name | Some p -> Printf.sprintf "%s%d" name p in
  let watch = Util.Stopwatch.start () in
  let per_backend =
    List.map
      (fun backend ->
        let eliminated, aborted = run_backend (name, param) backend in
        let bname = Cbq.Quantify.backend_name backend in
        Obs.add (row_counter family (bname ^ ".eliminated")) eliminated;
        Obs.add (row_counter family (bname ^ ".aborted")) aborted;
        (backend, eliminated, aborted))
      backends
  in
  let dt = Util.Stopwatch.elapsed watch in
  Obs.add_seconds (Obs.span (Printf.sprintf "quantbench.%s.time" family)) dt;
  let aborts b =
    let _, _, a = List.find (fun (b', _, _) -> b' = b) per_backend in
    a
  in
  let circuit = aborts Cbq.Quantify.Circuit in
  let pqe = aborts Cbq.Quantify.Pqe in
  let auto = aborts Cbq.Quantify.Auto in
  Format.printf "%-16s aborts: circuit=%2d pqe=%2d auto=%2d  %8.3fs@." family circuit pqe auto
    dt;
  (family, circuit, pqe, auto)

let () =
  (match !stats_dir with
  | None -> ()
  | Some dir ->
    Util.Fs.mkdirs dir;
    Obs.reset ();
    Obs.set_enabled true);
  Format.printf "=== quantification backends under a tight growth budget%s ===@."
    (if !quick then " (quick)" else "");
  let families =
    if !quick then
      [ ("gray", Some 4); ("johnson", Some 4); ("lfsr", Some 4); ("fifo", Some 3) ]
    else
      [
        ("gray", Some 5);
        ("johnson", Some 6);
        ("lfsr", Some 6);
        ("fifo", Some 4);
        ("counter", Some 6);
        ("arbiter", Some 4);
        ("twin-shift", Some 4);
      ]
  in
  let rows = List.map run_family families in
  (* the auto ladder retries the other backend on abort, so per variable
     it can never abort where circuit succeeds *)
  let regressions =
    List.filter (fun (_, circuit, _, auto) -> auto > circuit) rows
  in
  List.iter
    (fun (family, circuit, _, auto) ->
      Format.printf "FAIL %s: auto aborted %d > circuit %d@." family auto circuit)
    regressions;
  let improved =
    List.filter (fun (_, circuit, _, auto) -> auto < circuit) rows
  in
  Format.printf "auto < circuit on %d/%d families@." (List.length improved) (List.length rows);
  (match !stats_dir with
  | None -> ()
  | Some dir ->
    Obs.meta "tool" "quantify_bench";
    Obs.meta "experiment" (if !quick then "quantify-backends-quick" else "quantify-backends");
    Obs.write_report (Filename.concat dir "BENCH_quantify.json");
    Obs.set_enabled false;
    Format.printf "report: %s@." (Filename.concat dir "BENCH_quantify.json"));
  if regressions <> [] then exit 1;
  if List.length improved < 2 then begin
    Format.printf "FAIL: the auto selector must beat circuit-only on >= 2 families@.";
    exit 1
  end
