(* Simulation-throughput microbenchmark: the retired per-pattern
   Hashtbl engine (replicated below) against the packed bit-parallel
   engine in [Sweep.Sim], on the standard cone families.

   Usage:
     dune exec bench/sim_bench.exe
     dune exec bench/sim_bench.exe -- --quick
     dune exec bench/sim_bench.exe -- --stats-dir=DIR
                  -- writes DIR/BENCH_sim.json, gateable by
                     cbq-bench-regress against the checked-in baseline
                     (bench/baseline-sim). All gated metrics are
                     deterministic (fixed seeds, no timing): counters
                     carry node/word/class counts and the old-vs-new
                     class agreement; wall-clock goes to spans, which
                     the regress gate ignores unless --time-threshold. *)

let quick = ref false
let stats_dir : string option ref = ref None

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | s when String.length s > 12 && String.sub s 0 12 = "--stats-dir=" ->
          stats_dir := Some (String.sub s 12 (String.length s - 12))
        | s ->
          Printf.eprintf "sim_bench: unknown argument %S\n" s;
          exit 2)
    Sys.argv

(* The pre-rewrite [Sweep.Sim] engine, kept verbatim as the comparison
   baseline: per-pattern Hashtbl cone walk, realloc-and-copy signature
   append, classes bucketed on int64-array keys with the polymorphic
   hash. Only what the benchmark needs (create + classes) is retained. *)
module Old_sim = struct
  type t = {
    aig : Aig.t;
    and_nodes : int list;
    all_nodes : int list;
    vars : Aig.var list;
    prng : Util.Prng.t;
    sigs : (int, int64 array) Hashtbl.t;
  }

  let append_pattern t words =
    let table = Aig.simulate_cone t.aig t.and_nodes words in
    List.iter
      (fun n ->
        let w =
          match Hashtbl.find_opt table n with
          | Some w -> w
          | None -> (
            match Aig.var_of_lit t.aig (Aig.lit_of_node n) with
            | Some v -> words v
            | None -> 0L)
        in
        let old = try Hashtbl.find t.sigs n with Not_found -> [||] in
        let arr = Array.make (Array.length old + 1) w in
        Array.blit old 0 arr 0 (Array.length old);
        Hashtbl.replace t.sigs n arr)
      t.all_nodes

  let random_pattern t =
    let table = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace table v (Util.Prng.next64 t.prng)) t.vars;
    fun v -> try Hashtbl.find table v with Not_found -> 0L

  let create aig ~roots ~rounds ~prng =
    let and_nodes = Aig.cone aig roots in
    let vars = Aig.support_list aig roots in
    let leaves = List.map (fun v -> Aig.node_of_lit (Aig.var aig v)) vars in
    let all_nodes = List.sort_uniq compare ((0 :: leaves) @ and_nodes) in
    let t =
      { aig; and_nodes; all_nodes; vars; prng; sigs = Hashtbl.create (List.length all_nodes) }
    in
    for _ = 1 to max 1 rounds do
      append_pattern t (random_pattern t)
    done;
    t

  let signature t n = try Hashtbl.find t.sigs n with Not_found -> [||]

  let normalized t n =
    let s = signature t n in
    if Array.length s = 0 then (s, 0)
    else if Int64.logand s.(0) 1L = 1L then (Array.map Int64.lognot s, 1)
    else (s, 0)

  let classes t =
    let buckets : (int64 array, Aig.lit list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun n ->
        let key, phase = normalized t n in
        let l = Aig.lit_of_node n lxor phase in
        match Hashtbl.find_opt buckets key with
        | Some members -> members := l :: !members
        | None ->
          let members = ref [ l ] in
          Hashtbl.replace buckets key members;
          order := key :: !order)
      t.all_nodes;
    List.rev !order
    |> List.filter_map (fun key ->
           let members = List.rev !(Hashtbl.find buckets key) in
           match members with _ :: _ :: _ -> Some members | [] | [ _ ] -> None)
end

(* class lists as canonical sets, for the agreement check *)
let canonical classes =
  List.map (List.sort_uniq Int.compare) classes
  |> List.sort (fun a b -> compare a b)

let families () =
  let n = if !quick then 2 else 4 in
  List.filteri
    (fun i _ -> i < n)
    [
      ("adder32", Circuits.Comb.adder_carry 32);
      ("mult12", Circuits.Comb.multiplier_bit 12);
      ("hwb16", Circuits.Comb.hwb 16);
      ("rand2k", Circuits.Comb.random_cone ~vars:24 ~gates:2000 ~seed:7);
    ]

let time_best ~repeats f =
  (* best-of-N: robust against scheduler noise without averaging bias *)
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let r, dt = Util.Stopwatch.time f in
    result := Some r;
    if dt < !best then best := dt
  done;
  (Option.get !result, !best)

let () =
  let rounds = if !quick then 8 else 32 in
  let repeats = if !quick then 2 else 3 in
  (match !stats_dir with
  | None -> ()
  | Some dir ->
    Util.Fs.mkdirs dir;
    Obs.reset ();
    Obs.set_enabled true);
  Format.printf "=== SIM: bit-parallel engine vs per-pattern walk (rounds=%d) ===@." rounds;
  Format.printf "%-10s %8s %6s %10s %10s %9s@." "family" "nodes" "cls" "old Mnp/s" "new Mnp/s"
    "speedup";
  List.iter
    (fun (name, (cone : Circuits.Comb.cone)) ->
      let aig = cone.Circuits.Comb.aig in
      let roots = [ cone.Circuits.Comb.root ] in
      let old_span = Obs.span (Printf.sprintf "simbench.%s.old" name) in
      let new_span = Obs.span (Printf.sprintf "simbench.%s.new" name) in
      let old_classes, old_dt =
        time_best ~repeats (fun () ->
            let prng = Util.Prng.create 11 in
            Old_sim.classes (Old_sim.create aig ~roots ~rounds ~prng))
      in
      Obs.add_seconds old_span old_dt;
      let (new_classes, nodes), new_dt =
        time_best ~repeats (fun () ->
            let prng = Util.Prng.create 11 in
            let sim = Sweep.Sim.create aig ~roots ~rounds ~prng in
            (Sweep.Sim.classes sim, List.length (Sweep.Sim.nodes sim)))
      in
      Obs.add_seconds new_span new_dt;
      (* same PRNG seed and draw order -> identical patterns, so the
         class partitions must agree exactly *)
      let agree = canonical old_classes = canonical new_classes in
      let node_patterns = float_of_int (nodes * rounds * 64) in
      let mnps dt = node_patterns /. dt /. 1e6 in
      Obs.add (Obs.counter (Printf.sprintf "simbench.%s.nodes" name)) nodes;
      Obs.add (Obs.counter (Printf.sprintf "simbench.%s.words" name)) rounds;
      Obs.add
        (Obs.counter (Printf.sprintf "simbench.%s.classes" name))
        (List.length new_classes);
      Obs.add (Obs.counter (Printf.sprintf "simbench.%s.mismatches" name)) (if agree then 0 else 1);
      Format.printf "%-10s %8d %6d %10.1f %10.1f %8.1fx%s@." name nodes
        (List.length new_classes) (mnps old_dt) (mnps new_dt) (old_dt /. new_dt)
        (if agree then "" else "  CLASS MISMATCH");
      if not agree then exit 1)
    (families ());
  match !stats_dir with
  | None -> ()
  | Some dir ->
    Obs.meta "tool" "sim_bench";
    Obs.meta "experiment" "sim-throughput";
    Obs.write_report (Filename.concat dir "BENCH_sim.json");
    Obs.set_enabled false;
    Format.printf "report: %s@." (Filename.concat dir "BENCH_sim.json")
