(* Quickstart: build a tiny sequential model with the public API, quantify
   a variable by hand, and verify the model with circuit-based backward
   reachability.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A model: two-bit counter with an enable input; the property says
     the counter never shows 3 with the enable low... which is false —
     once the counter reaches 3 it stays observable with any input, so we
     use the classic "never reaches 3" which fails at depth 3. *)
  let b = Netlist.Builder.create "quickstart" in
  let aig = Netlist.Builder.aig b in
  let enable = Netlist.Builder.input b in
  let q0 = Netlist.Builder.latch b ~init:false in
  let q1 = Netlist.Builder.latch b ~init:false in
  (* next state: increment when enabled *)
  let n0 = Aig.xor_ aig q0 enable in
  let n1 = Aig.xor_ aig q1 (Aig.and_ aig q0 enable) in
  Netlist.Builder.connect b q0 n0;
  Netlist.Builder.connect b q1 n1;
  Netlist.Builder.set_property b (Aig.not_ (Aig.and_ aig q0 q1));
  let model = Netlist.Builder.finish b in
  Format.printf "model: %a@." Netlist.Model.pp_stats (Netlist.Model.stats model);

  (* 2. Quantification by hand: eliminate the enable input from the
     pre-image of the bad states, watching the two phases work. *)
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 42 in
  let bad = Aig.and_ aig q0 q1 in
  let pre_inlined = Cbq.Preimage.substitute model bad in
  Format.printf "in-lined pre-image has %d AND nodes over %d variables@."
    (Aig.size aig pre_inlined)
    (List.length (Aig.support aig pre_inlined));
  (match Aig.var_of_lit aig enable with
  | Some v ->
    let result, report = Cbq.Quantify.one aig checker ~prng pre_inlined v in
    Format.printf "quantified the enable: %a@." Cbq.Quantify.pp_var_report report;
    (match result with
    | Ok lit ->
      Format.printf "result depends on: %s@."
        (String.concat ", "
           (List.map (Printf.sprintf "x%d") (Aig.support aig lit)))
    | Error _ -> Format.printf "aborted (would not fit the growth budget)@.")
  | None -> assert false);

  (* 3. Full verification: backward reachability with AIG state sets. *)
  let result = Cbq.Reachability.run model in
  Format.printf "verification: %a@." Cbq.Reachability.pp_result result;
  match result.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified { trace = Some t; _ } ->
    Format.printf "%a" (Cbq.Trace.pp model) t;
    Format.printf "trace checks out: %b@." (Cbq.Trace.check model t)
  | Cbq.Reachability.Falsified { trace = None; _ } -> Format.printf "(no trace requested)@."
  | Cbq.Reachability.Proved -> Format.printf "property proved@."
  | Cbq.Reachability.Out_of_budget { reason; _ } -> Format.printf "undecided: %s@." reason
