(* Hunt the off-by-one overflow in the unguarded FIFO: circuit-based
   backward reachability finds the violation depth, the functional-unrolling
   BMC baseline confirms it, and both traces replay successfully on the
   model.

   Run with: dune exec examples/fifo_bug_hunt.exe *)

let () =
  let depth_log = 3 in
  let model = Circuits.Families.fifo ~buggy:true ~depth_log () in
  Format.printf "hunting the overflow in %s (depth %d FIFO, occupancy property)@."
    (Netlist.Model.name model) (1 lsl depth_log);

  (* 1. unbounded engine: backward reachability with AIG state sets *)
  let r = Cbq.Reachability.run model in
  Format.printf "cbq reachability: %a@." Cbq.Reachability.pp_result r;
  (match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified { depth; trace = Some t } ->
    Format.printf "  counterexample depth %d, replays: %b@." depth (Cbq.Trace.check model t);
    let final = t.Cbq.Trace.states.(Array.length t.Cbq.Trace.states - 1) in
    let occupancy =
      List.fold_left
        (fun acc (v, bit) -> if bit then acc + (1 lsl (v - 2)) else acc)
        0 final
    in
    Format.printf "  final occupancy register: %d (capacity %d)@." occupancy (1 lsl depth_log)
  | Cbq.Reachability.Falsified { trace = None; _ } -> Format.printf "  (no trace)@."
  | Cbq.Reachability.Proved -> Format.printf "  unexpectedly proved?!@."
  | Cbq.Reachability.Out_of_budget { reason; _ } ->
    Format.printf "  undecided: %s@." reason);

  (* 1b. which inputs actually matter? ternary-simulation minimization *)
  (match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified { trace = Some t; _ } ->
    let essential = Cbq.Trace.minimize model t in
    let kept = Array.fold_left (fun acc f -> acc + List.length f) 0 essential in
    let total = Array.fold_left (fun acc f -> acc + List.length f) 0 t.Cbq.Trace.inputs in
    Format.printf "  essential stimulus: %d of %d input bits (the rest are don't cares)@."
      kept total
  | _ -> ());

  (* 2. cross-check with the BMC baseline *)
  let model_b = Circuits.Families.fifo ~buggy:true ~depth_log () in
  let bmc = Baselines.Bmc.run ~max_depth:32 model_b in
  Format.printf "bmc cross-check:  %a@." Baselines.Bmc.pp_result bmc;
  (match bmc.Baselines.Bmc.trace with
  | Some t -> Format.printf "  bmc trace replays: %b@." (Cbq.Trace.check model_b t)
  | None -> ());

  (* 3. the guarded FIFO is safe — prove it with both unbounded engines *)
  let good = Circuits.Families.fifo ~depth_log () in
  let rg = Cbq.Reachability.run good in
  Format.printf "guarded fifo (cbq):       %a@." Cbq.Reachability.pp_result rg;
  let good_b = Circuits.Families.fifo ~depth_log () in
  let ind = Baselines.Induction.run good_b in
  Format.printf "guarded fifo (induction): %a@." Baselines.Induction.pp_result ind
