(* Verify mutual exclusion of the round-robin arbiter at growing sizes with
   the circuit-based engine and the canonical (BDD) baseline side by side —
   the traversal-comparison scenario of the paper (experiment T4 in
   miniature).

   Run with: dune exec examples/arbiter_safety.exe *)

let () =
  Format.printf "round-robin arbiter: at most one grant (safe family)@.";
  Format.printf "%-10s %-14s %-40s %-40s@." "requesters" "latches" "CBQ (this paper)"
    "BDD backward (baseline)";
  List.iter
    (fun n ->
      let model = Circuits.Families.rr_arbiter ~n in
      let stats = Netlist.Model.stats model in
      let cbq = Cbq.Reachability.run model in
      let model_b = Circuits.Families.rr_arbiter ~n in
      let bdd = Baselines.Bdd_mc.backward model_b in
      let cbq_txt = Format.asprintf "%a" Cbq.Reachability.pp_result cbq in
      let bdd_txt = Format.asprintf "%a" Baselines.Bdd_mc.pp_result bdd in
      Format.printf "%-10d %-14d %-40s %-40s@." n stats.Netlist.Model.latches cbq_txt bdd_txt)
    [ 2; 3; 4; 6; 8 ];
  Format.printf
    "@.both engines prove the property; the circuit engine's frontier stays near the@.";
  Format.printf "cone size while the BDD baseline's node count grows with the token ring.@."
