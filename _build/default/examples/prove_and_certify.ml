(* Prove every safe benchmark family and independently check the proof.

   The backward engine's fix-point argument leaves a concrete artefact —
   the complement of the backward-reached set — which is an inductive
   invariant. This example re-validates each proof with the three
   textbook conditions (initiation, consecution, safety) on a fresh
   checker, so trusting the verdict does not require trusting the engine.

   Run with: dune exec examples/prove_and_certify.exe *)

let () =
  Format.printf "%-14s %-10s %12s %10s@." "model" "verdict" "invariant" "checked";
  List.iter
    (fun (name, param) ->
      let model, _ = Circuits.Registry.build name param in
      let r = Cbq.Reachability.run model in
      match r.Cbq.Reachability.verdict with
      | Cbq.Reachability.Proved -> (
        match r.Cbq.Reachability.invariant with
        | Some inv ->
          let size = Aig.size (Netlist.Model.aig model) inv in
          let status =
            match Cbq.Certify.check model ~invariant:inv with
            | Ok () -> "yes"
            | Error f -> Format.asprintf "NO (%a)" Cbq.Certify.pp_failure f
          in
          Format.printf "%-14s %-10s %9d ands %10s@." (Netlist.Model.name model) "proved"
            size status
        | None -> Format.printf "%-14s %-10s %12s@." (Netlist.Model.name model) "proved" "-")
      | v ->
        Format.printf "%-14s %a@." (Netlist.Model.name model) Cbq.Reachability.pp_verdict v)
    [
      ("counter-even", Some 6);
      ("twin-shift", Some 8);
      ("gray", Some 4);
      ("lfsr", Some 5);
      ("arbiter", Some 5);
      ("traffic", None);
      ("fifo", Some 3);
      ("peterson", None);
      ("johnson", Some 5);
      ("tmr", Some 3);
    ];
  Format.printf
    "@.a rejected certificate would mean an engine bug — the checker shares no state@.";
  Format.printf "with the traversal beyond the model itself.@."
