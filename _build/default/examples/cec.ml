(* Combinational equivalence checking with the merge engine: prove a
   ripple-carry and a carry-lookahead adder compute the same carry-out,
   then catch an injected bug with a concrete distinguishing vector.

   This is the paper's observation in reverse: the quantification merge
   phase *is* an equivalence checker, so pointed at two whole circuits it
   becomes the classical CEC flow (hash, simulate, BDD-sweep, SAT).

   Run with: dune exec examples/cec.exe *)

let check_pair n ~bug =
  let ripple = Circuits.Comb.adder_carry n in
  let cla = Circuits.Comb.carry_lookahead ~bug n in
  let report =
    Sweep.Cec.check_cones
      (ripple.Circuits.Comb.aig, ripple.Circuits.Comb.root, ripple.Circuits.Comb.vars)
      (cla.Circuits.Comb.aig, cla.Circuits.Comb.root, cla.Circuits.Comb.vars)
  in
  Format.printf "%-8s vs %-10s  %a  sweep-closed=%-5b  %.4fs@." ripple.Circuits.Comb.name
    cla.Circuits.Comb.name Sweep.Cec.pp_verdict report.Sweep.Cec.verdict
    report.Sweep.Cec.merged_to_same_node report.Sweep.Cec.seconds;
  report

let () =
  Format.printf "equivalence of two adder architectures, growing width:@.";
  List.iter (fun n -> ignore (check_pair n ~bug:false)) [ 4; 8; 12; 16 ];
  Format.printf "@.and the buggy lookahead is refuted with a witness:@.";
  let report = check_pair 8 ~bug:true in
  match report.Sweep.Cec.verdict with
  | Sweep.Cec.Inequivalent assignment ->
    (* replay the witness on both circuits to show it really separates
       them; both cones and the joint manager number the shared inputs
       identically (0 .. 2n-1, in declaration order) *)
    let ripple = Circuits.Comb.adder_carry 8 in
    let cla = Circuits.Comb.carry_lookahead ~bug:true 8 in
    let value (c : Circuits.Comb.cone) =
      Aig.eval c.Circuits.Comb.aig c.Circuits.Comb.root (fun v ->
          try List.assoc v assignment with Not_found -> false)
    in
    Format.printf "witness replay: ripple=%b lookahead=%b (must differ)@." (value ripple)
      (value cla)
  | Sweep.Cec.Equivalent | Sweep.Cec.Unknown -> Format.printf "unexpected verdict@."
