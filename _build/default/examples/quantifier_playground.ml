(* Watch circuit-based quantification fight the Shannon blow-up, stage by
   stage, on a BDD-hostile cone (the middle bit of an array multiplier).

   Five configurations, from the paper's ablation:
     shannon   raw cofactor disjunction (structural hashing only)
     +merge    merge phase (simulation candidates, BDD sweeping, SAT)
     +dc       merge plus cross-cofactor don't-care optimization
     +odc      adds observability don't cares
     +rewrite  the full pipeline with cut-based resubstitution

   Run with: dune exec examples/quantifier_playground.exe *)

let configs : (string * Cbq.Quantify.config) list =
  [
    ("shannon", Cbq.Quantify.naive_config);
    ( "+merge",
      {
        Cbq.Quantify.naive_config with
        sweep = Sweep.Sweeper.default;
        growth_limit = infinity;
      } );
    ( "+dc",
      {
        Cbq.Quantify.default with
        dontcare = { Synth.Dontcare.default with odc_max_tries = 0 };
        use_rewrite = false;
        growth_limit = infinity;
      } );
    ( "+odc",
      { Cbq.Quantify.default with use_rewrite = false; growth_limit = infinity } );
    ("+rewrite", { Cbq.Quantify.default with growth_limit = infinity });
  ]

let () =
  let n = 5 in
  let cone = Circuits.Comb.multiplier_bit n in
  let aig = cone.Circuits.Comb.aig in
  let total_vars = List.length cone.Circuits.Comb.vars in
  Format.printf "cone %s: %d AND nodes, %d inputs@." cone.Circuits.Comb.name
    (Aig.size aig cone.Circuits.Comb.root)
    total_vars;
  (* quantify only first-operand variables: with the second operand free
     the result stays a non-trivial function of it (y = 0 keeps the
     product's middle bit at 0 no matter which x exists) *)
  let ks = [ 1; 2; 3; 4; 5 ] in
  Format.printf "@.result size after quantifying k variables:@.";
  Format.printf "%-10s" "config";
  List.iter (fun k -> Format.printf "k=%-6d" k) ks;
  Format.printf "@.";
  List.iter
    (fun (name, config) ->
      Format.printf "%-10s" name;
      List.iter
        (fun k ->
          let checker = Cnf.Checker.create aig in
          let prng = Util.Prng.create 5 in
          let vars = List.filteri (fun i _ -> i < k) cone.Circuits.Comb.vars in
          let r = Cbq.Quantify.all ~config aig checker ~prng cone.Circuits.Comb.root ~vars in
          Format.printf "%-8d" (Aig.size aig r.Cbq.Quantify.lit))
        ks;
      Format.printf "@.")
    configs;
  Format.printf
    "@.every row computes the same function (checked by the test suite); the rows@.";
  Format.printf "differ only in how hard they fight the representation blow-up.@."
