examples/cec.ml: Aig Circuits Format List Sweep
