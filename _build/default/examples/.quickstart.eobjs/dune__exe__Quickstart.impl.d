examples/quickstart.ml: Aig Cbq Cnf Format List Netlist Printf String Util
