examples/quantifier_playground.mli:
