examples/prove_and_certify.mli:
