examples/fifo_bug_hunt.mli:
