examples/quickstart.mli:
