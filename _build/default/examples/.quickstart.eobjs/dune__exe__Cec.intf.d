examples/cec.mli:
