examples/arbiter_safety.ml: Baselines Cbq Circuits Format List Netlist
