examples/arbiter_safety.mli:
