examples/fifo_bug_hunt.ml: Array Baselines Cbq Circuits Format List Netlist
