examples/quantifier_playground.ml: Aig Cbq Circuits Cnf Format List Sweep Synth Util
