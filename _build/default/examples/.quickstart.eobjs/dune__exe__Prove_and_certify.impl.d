examples/prove_and_certify.ml: Aig Cbq Circuits Format List Netlist
