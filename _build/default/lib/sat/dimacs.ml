type problem = { num_vars : int; clauses : Lit.t list list }

let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let max_var = ref 0 in
  List.iteri
    (fun idx raw ->
      if !error = None then begin
        let lineno = idx + 1 in
        let line = String.trim raw in
        if line = "" || (String.length line > 0 && (line.[0] = 'c' || line.[0] = '%')) then ()
        else if String.length line > 0 && line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "p"; "cnf"; v; c ] -> (
            match (int_of_string_opt v, int_of_string_opt c) with
            | Some nv, Some nc when nv >= 0 && nc >= 0 -> header := Some nv
            | _ -> error := Some (Printf.sprintf "line %d: bad problem line" lineno))
          | _ -> error := Some (Printf.sprintf "line %d: bad problem line" lineno)
        end
        else begin
          let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
          List.iter
            (fun tok ->
              if !error = None then
                match int_of_string_opt tok with
                | None -> error := Some (Printf.sprintf "line %d: bad literal %S" lineno tok)
                | Some 0 ->
                  clauses := List.rev !current :: !clauses;
                  current := []
                | Some d ->
                  let v = abs d - 1 in
                  if v + 1 > !max_var then max_var := v + 1;
                  current := Lit.make v (d < 0) :: !current)
            tokens
        end
      end)
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
    if !current <> [] then Error "trailing clause without terminating 0"
    else
      let declared = Option.value !header ~default:!max_var in
      Ok { num_vars = max declared !max_var; clauses = List.rev !clauses }

let render p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" p.num_vars (List.length p.clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          let d = Lit.var l + 1 in
          Buffer.add_string buf (Printf.sprintf "%d " (if Lit.sign l then -d else d)))
        clause;
      Buffer.add_string buf "0\n")
    p.clauses;
  Buffer.contents buf

let load solver p =
  while Solver.num_vars solver < p.num_vars do
    ignore (Solver.new_var solver)
  done;
  List.fold_left (fun ok clause -> Solver.add_clause solver clause && ok) true p.clauses

let solve_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    match parse text with
    | Error msg -> Error msg
    | Ok problem ->
      let solver = Solver.create () in
      if load solver problem then Ok (Solver.solve solver, solver)
      else Ok (Solver.Unsat, solver))
