type t = int

let make v negated = (v lsl 1) lor (if negated then 1 else 0)
let pos v = v lsl 1
let neg_of v = (v lsl 1) lor 1
let neg l = l lxor 1
let var l = l lsr 1
let sign l = l land 1 = 1
let pp ppf l = Format.fprintf ppf "%s%d" (if sign l then "-" else "") (var l)
