(** SAT literals: variable [v] yields literals [2v] (positive) and [2v+1]
    (negative). The encoding matches the AIG literal encoding so bridging
    code stays mechanical. *)

type t = int

val make : int -> bool -> t

(** Positive literal of a variable. *)
val pos : int -> t

(** Negative literal of a variable. *)
val neg_of : int -> t

(** Complement. *)
val neg : t -> t

val var : t -> int

(** [sign l] is [true] for a negative literal. *)
val sign : t -> bool

val pp : Format.formatter -> t -> unit
