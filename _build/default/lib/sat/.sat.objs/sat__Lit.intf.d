lib/sat/lit.mli: Format
