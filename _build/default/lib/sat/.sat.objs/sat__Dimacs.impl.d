lib/sat/dimacs.ml: Buffer Fun List Lit Option Printf Solver String
