lib/sat/solver.mli: Format Lit
