lib/sat/lit.ml: Format
