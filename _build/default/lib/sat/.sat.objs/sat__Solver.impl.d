lib/sat/solver.ml: Array Format Hashtbl List Util
