lib/sweep/cec.mli: Aig Cnf Format Sweeper Util
