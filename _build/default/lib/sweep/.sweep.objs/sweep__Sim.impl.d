lib/sweep/sim.ml: Aig Array Hashtbl Int64 List Util
