lib/sweep/bdd_sweep.ml: Aig Bdd Hashtbl List
