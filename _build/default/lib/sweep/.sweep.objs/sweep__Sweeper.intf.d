lib/sweep/sweeper.mli: Aig Cnf Format Util
