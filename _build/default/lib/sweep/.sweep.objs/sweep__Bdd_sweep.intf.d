lib/sweep/bdd_sweep.mli: Aig
