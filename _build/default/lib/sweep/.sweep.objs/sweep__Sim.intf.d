lib/sweep/sim.mli: Aig Util
