lib/sweep/sweeper.ml: Aig Bdd_sweep Cnf Format Hashtbl List Sim
