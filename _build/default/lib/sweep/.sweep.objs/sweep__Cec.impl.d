lib/sweep/cec.ml: Aig Cnf Format List Sweeper Util
