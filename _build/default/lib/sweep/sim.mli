(** Random-simulation signatures for merge-candidate detection.

    Every node of the cone under analysis gets a 64·w-bit signature from
    [w] rounds of parallel random simulation. Nodes whose signatures agree
    {e modulo complementation} form candidate equivalence classes — the
    cheap filter in front of BDD sweeping and SAT checks. Distinguishing
    SAT models are folded back in as extra patterns, so one counterexample
    splits every class it distinguishes (the paper's observation that a
    single solver solution rules out several non-matching couples). *)

type t

(** [create aig ~roots ~rounds ~prng] simulates the cone of [roots] with
    [rounds] random 64-bit words per variable. The constant node is always
    part of the analysis, so constant candidates are detected too. *)
val create : Aig.t -> roots:Aig.lit list -> rounds:int -> prng:Util.Prng.t -> t

(** Nodes of the analyzed cone (topological order), including leaves and
    the constant node. *)
val nodes : t -> int list

(** The candidate classes: each class is a list of literals (a node with
    the phase that normalizes its signature), of length at least 2, sorted
    by node id. A class containing the constant literal means its members
    are candidate constants. *)
val classes : t -> Aig.lit list list

(** [same_class t a b] — do literals [a] and [b] currently carry equal
    signatures (i.e. are they still candidate-equal)? *)
val same_class : t -> Aig.lit -> Aig.lit -> bool

(** The signature of a literal: one word per pattern, complemented words
    for complemented literals. Clients mask signatures with a care-set
    signature to propose don't-care-equal candidates (synthesis phase). *)
val lit_signature : t -> Aig.lit -> int64 array

(** [refine t pattern] adds one concrete assignment as an extra
    simulation pattern and re-splits all classes. Variables absent from
    [pattern] default to [false]. Returns the number of classes that were
    split. *)
val refine : t -> (Aig.var -> bool) -> int

(** Number of refinement patterns folded in so far. *)
val refinements : t -> int
