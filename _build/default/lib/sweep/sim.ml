type t = {
  aig : Aig.t;
  and_nodes : int list; (* topological order *)
  all_nodes : int list; (* constant, variable leaves, then AND nodes *)
  vars : Aig.var list;
  prng : Util.Prng.t;
  sigs : (int, int64 array) Hashtbl.t; (* node -> one word per pattern *)
  mutable n_patterns : int;
  mutable n_refinements : int;
}

let leaf_nodes aig roots =
  let vars = Aig.support_list aig roots in
  List.map (fun v -> Aig.node_of_lit (Aig.var aig v)) vars

(* run one pattern (a word per variable) over the cone and append the
   resulting word to every node signature *)
let append_pattern t words =
  let table = Aig.simulate_cone t.aig t.and_nodes words in
  List.iter
    (fun n ->
      let w =
        match Hashtbl.find_opt table n with
        | Some w -> w
        | None -> (
          (* leaf not touched by the cone walk *)
          match Aig.var_of_lit t.aig (Aig.lit_of_node n) with
          | Some v -> words v
          | None -> 0L (* constant *))
      in
      let old = try Hashtbl.find t.sigs n with Not_found -> [||] in
      let arr = Array.make (Array.length old + 1) w in
      Array.blit old 0 arr 0 (Array.length old);
      Hashtbl.replace t.sigs n arr)
    t.all_nodes;
  t.n_patterns <- t.n_patterns + 1

let random_pattern t =
  let table = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace table v (Util.Prng.next64 t.prng)) t.vars;
  fun v -> try Hashtbl.find table v with Not_found -> 0L

let create aig ~roots ~rounds ~prng =
  let and_nodes = Aig.cone aig roots in
  let vars = Aig.support_list aig roots in
  let all_nodes =
    List.sort_uniq compare ((0 :: leaf_nodes aig roots) @ and_nodes)
  in
  let t =
    {
      aig;
      and_nodes;
      all_nodes;
      vars;
      prng;
      sigs = Hashtbl.create (List.length all_nodes);
      n_patterns = 0;
      n_refinements = 0;
    }
  in
  for _ = 1 to max 1 rounds do
    append_pattern t (random_pattern t)
  done;
  t

let nodes t = t.all_nodes

let signature t n = try Hashtbl.find t.sigs n with Not_found -> [||]

(* normalized signature of a node: complemented so that bit 0 of word 0 is
   clear; returns the phase that was applied *)
let normalized t n =
  let s = signature t n in
  if Array.length s = 0 then (s, 0)
  else if Int64.logand s.(0) 1L = 1L then (Array.map Int64.lognot s, 1)
  else (s, 0)

let lit_signature t l =
  let s = signature t (Aig.node_of_lit l) in
  if Aig.is_complemented l then Array.map Int64.lognot s else s

let classes t =
  let buckets : (int64 array, Aig.lit list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun n ->
      let key, phase = normalized t n in
      let l = Aig.lit_of_node n lxor phase in
      match Hashtbl.find_opt buckets key with
      | Some members -> members := l :: !members
      | None ->
        let members = ref [ l ] in
        Hashtbl.replace buckets key members;
        order := key :: !order)
    t.all_nodes;
  List.rev !order
  |> List.filter_map (fun key ->
         let members = List.rev !(Hashtbl.find buckets key) in
         match members with
         | _ :: _ :: _ -> Some members
         | [] | [ _ ] -> None)

let class_count t =
  let keys = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace keys (fst (normalized t n)) ()) t.all_nodes;
  Hashtbl.length keys

let same_class t a b = lit_signature t a = lit_signature t b

let refine t pattern =
  let before = class_count t in
  (* lane 0 carries the model; the other 63 lanes are sparse random flips
     of it, turning one counterexample into a neighbourhood of patterns *)
  let word_for v =
    let w = ref (if pattern v then -1L else 0L) in
    (* flip each of lanes 1..63 with probability 1/8 *)
    for lane = 1 to 63 do
      if Util.Prng.int t.prng 8 = 0 then w := Int64.logxor !w (Int64.shift_left 1L lane)
    done;
    !w
  in
  let table = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace table v (word_for v)) t.vars;
  append_pattern t (fun v -> try Hashtbl.find table v with Not_found -> 0L);
  t.n_refinements <- t.n_refinements + 1;
  class_count t - before

let refinements t = t.n_refinements
