(** Cut-based functional resubstitution — the "rewriting" member of the
    paper's §2.2 transformation catalogue.

    For every AND node a set of 4-feasible cuts is enumerated bottom-up;
    the node's local function on each cut is a 16-bit truth table. Nodes
    whose (cut-leaves, truth-table) pair was already produced by an older
    node are replaced by it, constants and leaf projections are folded —
    all purely structurally, without any SAT work, so the pass is cheap
    enough to run inside every quantification step. It catches
    functionally equal nodes whose local structures differ (which plain
    strashing misses) and complements the simulation-plus-SAT sweeping
    with a deterministic local method. *)

type report = {
  nodes_seen : int;
  resubstitutions : int; (* node replaced by an older equivalent node *)
  constants_folded : int; (* node proved constant on its cut *)
  projections_folded : int; (* node proved equal to one of its cut leaves *)
  size_before : int;
  size_after : int;
}

val pp_report : Format.formatter -> report -> unit

(** [resubstitute ?max_cuts aig l] rewrites the cone of [l]; the result is
    functionally equal to [l] and never larger ([max_cuts] bounds the cut
    list per node, default 8). *)
val resubstitute : ?max_cuts:int -> Aig.t -> Aig.lit -> Aig.lit * report
