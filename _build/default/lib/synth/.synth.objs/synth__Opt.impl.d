lib/synth/opt.ml: Aig Sweep
