lib/synth/dontcare.ml: Aig Array Cnf Format Hashtbl Int64 List Option Sweep
