lib/synth/opt.mli: Aig Cnf Sweep Util
