lib/synth/rewrite.mli: Aig Format
