lib/synth/dontcare.mli: Aig Cnf Format Util
