lib/synth/rewrite.ml: Aig Array Format Hashtbl List
