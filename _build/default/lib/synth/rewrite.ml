type report = {
  nodes_seen : int;
  resubstitutions : int;
  constants_folded : int;
  projections_folded : int;
  size_before : int;
  size_after : int;
}

let pp_report ppf r =
  Format.fprintf ppf "nodes=%d resub=%d const=%d proj=%d size %d -> %d" r.nodes_seen
    r.resubstitutions r.constants_folded r.projections_folded r.size_before r.size_after

(* truth-table input masks for up to 4 cut leaves (16-bit tables) *)
let leaf_masks = [| 0xAAAA; 0xCCCC; 0xF0F0; 0xFF00 |]
let tt_mask = 0xFFFF
let cut_width = 4

(* sorted-array union, [None] when the result exceeds [cut_width] *)
let cut_union a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make cut_width 0 in
  let rec go i j k =
    if k > cut_width then None
    else if i = la && j = lb then Some (Array.sub out 0 k)
    else if k = cut_width then None
    else if i = la then begin
      out.(k) <- b.(j);
      go i (j + 1) (k + 1)
    end
    else if j = lb then begin
      out.(k) <- a.(i);
      go (i + 1) j (k + 1)
    end
    else if a.(i) = b.(j) then begin
      out.(k) <- a.(i);
      go (i + 1) (j + 1) (k + 1)
    end
    else if a.(i) < b.(j) then begin
      out.(k) <- a.(i);
      go (i + 1) j (k + 1)
    end
    else begin
      out.(k) <- b.(j);
      go i (j + 1) (k + 1)
    end
  in
  go 0 0 0

(* local truth table of [n] over [cut] (an array of node ids that covers
   every path from the leaves to [n]) *)
let truth_table aig n cut =
  let memo = Hashtbl.create 8 in
  Array.iteri (fun i leaf -> Hashtbl.replace memo leaf leaf_masks.(i)) cut;
  let rec node_tt m =
    match Hashtbl.find_opt memo m with
    | Some tt -> tt
    | None ->
      let f0, f1 = Aig.fanins aig m in
      let tt = lit_tt f0 land lit_tt f1 land tt_mask in
      Hashtbl.replace memo m tt;
      tt
  and lit_tt l =
    let tt = node_tt (Aig.node_of_lit l) in
    if Aig.is_complemented l then lnot tt land tt_mask else tt
  in
  node_tt n

let resubstitute ?(max_cuts = 8) aig root =
  let size_before = Aig.size aig root in
  let nodes = Aig.cone aig [ root ] in
  (* node -> cuts (sorted leaf arrays, trivial cut first) *)
  let cuts : (int, int array list) Hashtbl.t = Hashtbl.create 64 in
  let cuts_of l =
    let n = Aig.node_of_lit l in
    match Hashtbl.find_opt cuts n with
    | Some cs -> cs
    | None -> [ [| n |] ] (* leaf or constant: trivial cut only *)
  in
  (* (sorted leaves, normalized tt) -> literal computing it *)
  let seen : (int list * int, Aig.lit) Hashtbl.t = Hashtbl.create 256 in
  let repl : (int, Aig.lit) Hashtbl.t = Hashtbl.create 16 in
  let resubs = ref 0 and consts = ref 0 and projs = ref 0 in
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins aig n in
      let candidate_cuts =
        List.concat_map
          (fun c0 -> List.filter_map (fun c1 -> cut_union c0 c1) (cuts_of f1))
          (cuts_of f0)
      in
      (* dedupe, prefer small cuts, cap the list, keep the trivial cut *)
      let candidate_cuts =
        List.sort_uniq compare candidate_cuts
        |> List.sort (fun a b -> compare (Array.length a) (Array.length b))
        |> List.filteri (fun i _ -> i < max_cuts - 1)
      in
      Hashtbl.replace cuts n ([| n |] :: candidate_cuts);
      if not (Hashtbl.mem repl n) then begin
        let replaced = ref false in
        List.iter
          (fun cut ->
            if not !replaced then begin
              let tt = truth_table aig n cut in
              (* normalize the phase on bit 0 *)
              let tt_n, phase = if tt land 1 = 1 then (lnot tt land tt_mask, 1) else (tt, 0) in
              if tt_n = 0 then begin
                (* constant on this (complete) cut = constant everywhere *)
                Hashtbl.replace repl n (Aig.false_ lxor phase);
                incr consts;
                replaced := true
              end
              else begin
                (* projection onto one leaf *)
                let width = Array.length cut in
                let proj = ref (-1) in
                for i = 0 to width - 1 do
                  if tt_n land tt_mask = leaf_masks.(i) land tt_mask then proj := i
                done;
                if !proj >= 0 && cut.(!proj) <> n then begin
                  Hashtbl.replace repl n (Aig.lit_of_node cut.(!proj) lxor phase);
                  incr projs;
                  replaced := true
                end
                else begin
                  let key = (Array.to_list cut, tt_n) in
                  match Hashtbl.find_opt seen key with
                  | Some older when Aig.node_of_lit older < n ->
                    Hashtbl.replace repl n (older lxor phase);
                    incr resubs;
                    replaced := true
                  | Some older when Aig.node_of_lit older > n ->
                    (* the first-registered node is the younger one (DFS
                       order is not id order): redirect it to us so the
                       substitution stays acyclic *)
                    let on = Aig.node_of_lit older in
                    if not (Hashtbl.mem repl on) then begin
                      Hashtbl.replace repl on
                        (Aig.lit_of_node n lxor phase lxor (older land 1));
                      incr resubs
                    end;
                    Hashtbl.replace seen key (Aig.lit_of_node n lxor phase)
                  | Some _ -> ()
                  | None -> Hashtbl.replace seen key (Aig.lit_of_node n lxor phase)
                end
              end
            end)
          (Hashtbl.find cuts n)
      end)
    nodes;
  let repl_fun n =
    match Hashtbl.find_opt repl n with Some l -> l | None -> Aig.lit_of_node n
  in
  let rewritten = Aig.rebuild aig ~repl:repl_fun root in
  let result = if Aig.size aig rewritten <= size_before then rewritten else root in
  ( result,
    {
      nodes_seen = List.length nodes;
      resubstitutions = !resubs;
      constants_folded = !consts;
      projections_folded = !projs;
      size_before;
      size_after = Aig.size aig result;
    } )
