(** Combinational benchmark cones for the quantification experiments.

    Each generator returns a fresh manager, the output literal, and the
    input variables in declaration order. These cones are the workloads of
    the quantification-size and merge-ablation experiments (T1, T2, T6,
    F2): the multiplier and hidden-weighted-bit cones are classic
    BDD-hostile functions, so they exhibit the canonical-representation
    blow-up the paper motivates against; parity and adders are
    BDD-friendly controls. *)

type cone = { name : string; aig : Aig.t; root : Aig.lit; vars : Aig.var list }

(** Carry-out of an [n]-bit ripple-carry adder (2n inputs). *)
val adder_carry : int -> cone

(** Carry-out of an [n]-bit carry-lookahead adder: same function as
    {!adder_carry}, very different structure — the classic combinational
    equivalence-checking pair. With [~bug:true] one generate term is
    dropped, making the pair inequivalent (for testing refutation). *)
val carry_lookahead : ?bug:bool -> int -> cone

(** Middle output bit (index n-1) of an [n]×[n] array multiplier
    (2n inputs) — exponential for every BDD variable order. *)
val multiplier_bit : int -> cone

(** Hidden weighted bit on [n] inputs: output is [x_{wt(x)}]
    ([0] when the weight is 0) — BDD-hard, AIG-friendly. *)
val hwb : int -> cone

(** XOR chain over [n] inputs (BDD-friendly control). *)
val parity : int -> cone

(** Majority vote over [n] inputs. *)
val majority : int -> cone

(** Random AND/INV cone: [gates] two-input gates over [vars] inputs with
    random complemented edges, output at the last gate. Deterministic in
    [seed]. *)
val random_cone : vars:int -> gates:int -> seed:int -> cone

(** All generators at a small default size, for sweeps. *)
val catalogue : (string * (int -> cone)) list
