let full_adder aig a b cin =
  let s = Aig.xor_ aig (Aig.xor_ aig a b) cin in
  let c = Aig.or_ aig (Aig.and_ aig a b) (Aig.and_ aig cin (Aig.xor_ aig a b)) in
  (s, c)

let add aig xs ys ~cin =
  if List.length xs <> List.length ys then invalid_arg "Arith.add: width mismatch";
  let carry = ref cin in
  let sums =
    List.map2
      (fun a b ->
        let s, c = full_adder aig a b !carry in
        carry := c;
        s)
      xs ys
  in
  (sums, !carry)

let const_word aig ~width k =
  ignore aig;
  List.init width (fun i -> if (k lsr i) land 1 = 1 then Aig.true_ else Aig.false_)

let add_const aig xs k =
  let w = List.length xs in
  fst (add aig xs (const_word aig ~width:w (k land ((1 lsl w) - 1))) ~cin:Aig.false_)

let sub aig xs ys =
  (* xs - ys = xs + ~ys + 1; carry-out = no borrow *)
  let nys = List.map Aig.not_ ys in
  add aig xs nys ~cin:Aig.true_

let equal_const aig xs k =
  if k < 0 || k >= 1 lsl List.length xs then Aig.false_
  else
    let bits =
      List.mapi (fun i x -> if (k lsr i) land 1 = 1 then x else Aig.not_ x) xs
    in
    Aig.and_list aig bits

let equal aig xs ys =
  if List.length xs <> List.length ys then invalid_arg "Arith.equal: width mismatch";
  Aig.and_list aig (List.map2 (fun a b -> Aig.iff_ aig a b) xs ys)

let less_const aig xs k =
  (* xs < k unsigned; fold from MSB *)
  let rec go bits idx =
    match bits with
    | [] -> Aig.false_
    | x :: rest ->
      let kb = (k lsr idx) land 1 in
      if kb = 1 then Aig.or_ aig (Aig.not_ x) (Aig.and_ aig x (go rest (idx - 1)))
      else Aig.and_ aig (Aig.not_ x) (go rest (idx - 1))
  in
  let w = List.length xs in
  if k >= 1 lsl w then Aig.true_ else go (List.rev xs) (w - 1)

let mux aig sel ~then_ ~else_ =
  if List.length then_ <> List.length else_ then invalid_arg "Arith.mux: width mismatch";
  List.map2 (fun a b -> Aig.ite aig sel a b) then_ else_

let at_most_one aig lits =
  (* linear encoding: scan with a "seen one already" flag *)
  let seen = ref Aig.false_ in
  let ok = ref Aig.true_ in
  List.iter
    (fun l ->
      ok := Aig.and_ aig !ok (Aig.not_ (Aig.and_ aig !seen l));
      seen := Aig.or_ aig !seen l)
    lits;
  !ok

let exactly_one aig lits =
  Aig.and_ aig (at_most_one aig lits) (Aig.or_list aig lits)

let rec popcount aig lits =
  match lits with
  | [] -> []
  | [ l ] -> [ l ]
  | _ ->
    let n = List.length lits in
    let rec split k xs =
      if k = 0 then ([], xs)
      else
        match xs with
        | [] -> ([], [])
        | x :: rest ->
          let a, b = split (k - 1) rest in
          (x :: a, b)
    in
    let left, right = split (n / 2) lits in
    let a = popcount aig left and b = popcount aig right in
    let width = max (List.length a) (List.length b) + 1 in
    let pad w xs = xs @ List.init (w - List.length xs) (fun _ -> Aig.false_) in
    fst (add aig (pad width a) (pad width b) ~cin:Aig.false_)

let rotate_left xs =
  match List.rev xs with
  | [] -> []
  | msb :: rest_rev -> msb :: List.rev rest_rev
