(** Word-level combinational building blocks over AIG literals.

    Words are literal lists, least-significant bit first. *)

(** [full_adder aig a b cin] is [(sum, carry)]. *)
val full_adder : Aig.t -> Aig.lit -> Aig.lit -> Aig.lit -> Aig.lit * Aig.lit

(** [add aig xs ys ~cin] ripple-carry adds two equal-width words. *)
val add : Aig.t -> Aig.lit list -> Aig.lit list -> cin:Aig.lit -> Aig.lit list * Aig.lit

(** [add_const aig xs k] adds a non-negative constant, dropping carry-out
    (modular arithmetic). *)
val add_const : Aig.t -> Aig.lit list -> int -> Aig.lit list

(** [sub aig xs ys] is [xs - ys] modulo the width, plus the no-borrow flag
    (true when [xs >= ys]). *)
val sub : Aig.t -> Aig.lit list -> Aig.lit list -> Aig.lit list * Aig.lit

(** [equal_const aig xs k] — does the word equal the constant? A constant
    outside the word's range yields [Aig.false_]. *)
val equal_const : Aig.t -> Aig.lit list -> int -> Aig.lit

val equal : Aig.t -> Aig.lit list -> Aig.lit list -> Aig.lit

(** [less_const aig xs k] — unsigned [xs < k]. *)
val less_const : Aig.t -> Aig.lit list -> int -> Aig.lit

(** [mux aig sel ~then_ ~else_] selects between equal-width words. *)
val mux : Aig.t -> Aig.lit -> then_:Aig.lit list -> else_:Aig.lit list -> Aig.lit list

(** [at_most_one aig lits] — no two literals simultaneously true. *)
val at_most_one : Aig.t -> Aig.lit list -> Aig.lit

(** [exactly_one aig lits]. *)
val exactly_one : Aig.t -> Aig.lit list -> Aig.lit

(** [popcount aig lits] — the number of true literals, as a word of
    minimal width. *)
val popcount : Aig.t -> Aig.lit list -> Aig.lit list

(** [const_word aig ~width k] encodes a constant. *)
val const_word : Aig.t -> width:int -> int -> Aig.lit list

(** [rotate_left xs] rotates a word by one position towards the MSB. *)
val rotate_left : Aig.lit list -> Aig.lit list
