lib/circuits/comb.ml: Aig Arith Array List Printf Util
