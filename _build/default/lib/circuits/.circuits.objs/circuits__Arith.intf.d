lib/circuits/arith.mli: Aig
