lib/circuits/families.mli: Netlist
