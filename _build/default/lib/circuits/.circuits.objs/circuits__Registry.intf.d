lib/circuits/registry.mli: Format Netlist
