lib/circuits/comb.mli: Aig
