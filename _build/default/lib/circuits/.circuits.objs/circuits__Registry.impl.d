lib/circuits/registry.ml: Families Format List Netlist Option Printf
