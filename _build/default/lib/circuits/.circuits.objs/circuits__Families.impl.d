lib/circuits/families.ml: Aig Arith Array List Netlist Printf
