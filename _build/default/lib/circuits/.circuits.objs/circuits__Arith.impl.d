lib/circuits/arith.ml: Aig List
