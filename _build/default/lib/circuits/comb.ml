type cone = { name : string; aig : Aig.t; root : Aig.lit; vars : Aig.var list }

let fresh_inputs aig n = List.init n (fun _ -> Aig.fresh_var aig)
let lits_of aig vars = List.map (Aig.var aig) vars

let adder_carry n =
  let aig = Aig.create () in
  let xs = fresh_inputs aig n and ys = fresh_inputs aig n in
  let _, carry = Arith.add aig (lits_of aig xs) (lits_of aig ys) ~cin:Aig.false_ in
  { name = Printf.sprintf "adder%d" n; aig; root = carry; vars = xs @ ys }

let carry_lookahead ?(bug = false) n =
  let aig = Aig.create () in
  let xs = fresh_inputs aig n and ys = fresh_inputs aig n in
  let xl = Array.of_list (lits_of aig xs) and yl = Array.of_list (lits_of aig ys) in
  (* generate/propagate prefix form: c_{i+1} = g_i | p_i & c_i expanded to
     c_n = OR_i (g_i & AND_{j>i} p_j) *)
  let g i = Aig.and_ aig xl.(i) yl.(i) in
  let p i = Aig.or_ aig xl.(i) yl.(i) in
  let terms =
    List.init n (fun i ->
        if bug && i = n / 2 then Aig.false_ (* dropped generate term *)
        else begin
          let prop_above = ref (g i) in
          for j = i + 1 to n - 1 do
            prop_above := Aig.and_ aig !prop_above (p j)
          done;
          !prop_above
        end)
  in
  let root = Aig.or_list aig terms in
  {
    name = Printf.sprintf "cla%s%d" (if bug then "-bug" else "") n;
    aig;
    root;
    vars = xs @ ys;
  }

let multiplier_bit n =
  let aig = Aig.create () in
  let xs = fresh_inputs aig n and ys = fresh_inputs aig n in
  let xl = Array.of_list (lits_of aig xs) and yl = Array.of_list (lits_of aig ys) in
  (* array multiplier: accumulate partial products row by row, keeping the
     low 2n bits *)
  let width = 2 * n in
  let acc = ref (List.init width (fun _ -> Aig.false_)) in
  for row = 0 to n - 1 do
    let partial =
      List.init width (fun c ->
          let k = c - row in
          if k >= 0 && k < n then Aig.and_ aig yl.(row) xl.(k) else Aig.false_)
    in
    let sum, _ = Arith.add aig !acc partial ~cin:Aig.false_ in
    acc := sum
  done;
  let root = List.nth !acc (n - 1) in
  { name = Printf.sprintf "mult%d" n; aig; root; vars = xs @ ys }

let hwb n =
  let aig = Aig.create () in
  let xs = fresh_inputs aig n in
  let xl = Array.of_list (lits_of aig xs) in
  let weight = Arith.popcount aig (Array.to_list xl) in
  (* select x_{weight}; weight = 0 yields constant false *)
  let root = ref Aig.false_ in
  for i = 1 to n do
    let sel = Arith.equal_const aig weight i in
    root := Aig.or_ aig !root (Aig.and_ aig sel xl.(i - 1))
  done;
  { name = Printf.sprintf "hwb%d" n; aig; root = !root; vars = xs }

let parity n =
  let aig = Aig.create () in
  let xs = fresh_inputs aig n in
  let root = List.fold_left (Aig.xor_ aig) Aig.false_ (lits_of aig xs) in
  { name = Printf.sprintf "parity%d" n; aig; root; vars = xs }

let majority n =
  let aig = Aig.create () in
  let xs = fresh_inputs aig n in
  let weight = Arith.popcount aig (lits_of aig xs) in
  let root = Aig.not_ (Arith.less_const aig weight ((n / 2) + 1)) in
  { name = Printf.sprintf "maj%d" n; aig; root; vars = xs }

let random_cone ~vars ~gates ~seed =
  let aig = Aig.create () in
  let xs = fresh_inputs aig vars in
  let prng = Util.Prng.create seed in
  let pool = ref (Array.of_list (lits_of aig xs)) in
  let pick () =
    let a = !pool in
    let l = a.(Util.Prng.int prng (Array.length a)) in
    if Util.Prng.bool prng then Aig.not_ l else l
  in
  for _ = 1 to gates do
    let g = Aig.and_ aig (pick ()) (pick ()) in
    let a = !pool in
    let a' = Array.make (Array.length a + 1) g in
    Array.blit a 0 a' 0 (Array.length a);
    pool := a'
  done;
  (* xor a handful of gates together so the output cone covers a healthy
     share of the generated logic (a single last gate often simplifies to
     a tiny cone) *)
  let root = ref (pick ()) in
  for _ = 1 to 4 do
    root := Aig.xor_ aig !root (pick ())
  done;
  { name = Printf.sprintf "rand%d-%d" vars gates; aig; root = !root; vars = xs }

let catalogue =
  [
    ("adder", adder_carry);
    ("mult", multiplier_bit);
    ("hwb", hwb);
    ("parity", parity);
    ("majority", majority);
    ("random", fun n -> random_cone ~vars:n ~gates:(8 * n) ~seed:7);
  ]
