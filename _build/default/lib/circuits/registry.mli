(** Name-indexed access to the benchmark families, with verification-status
    oracles for tests and experiment tables. *)

(** Verification status known by construction. [Unsafe k]: the shortest
    counterexample reaches a bad state after exactly [k] transitions. *)
type status = Safe | Unsafe of int

type entry = {
  name : string;
  description : string;
  default_param : int;
  make : int -> Netlist.Model.t;
  status : int -> status;
}

val all : entry list

(** [find name] — lookup by entry name. *)
val find : string -> entry option

(** [build name param] — construct, falling back to the default parameter
    when [param] is [None]. Raises [Failure] on unknown names. *)
val build : string -> int option -> Netlist.Model.t * status

val pp_list : Format.formatter -> unit -> unit
