(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... used by the
    SAT solver's restart policy. *)

(** [term i] is the [i]-th term, [i >= 1]. *)
val term : int -> int
