(* Knuth's closed form: find k with 2^(k-1) <= i < 2^k; the term is
   2^(k-1) when i = 2^k - 1, else recurse on i - 2^(k-1) + 1. *)
let rec term i =
  if i < 1 then invalid_arg "Luby.term: index must be >= 1";
  let rec find k = if (1 lsl k) - 1 >= i then k else find (k + 1) in
  let k = find 1 in
  if i = (1 lsl k) - 1 then 1 lsl (k - 1) else term (i - (1 lsl (k - 1)) + 1)
