lib/util/luby.ml:
