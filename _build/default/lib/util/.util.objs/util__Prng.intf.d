lib/util/prng.mli:
