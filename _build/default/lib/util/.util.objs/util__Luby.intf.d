lib/util/luby.mli:
