lib/util/vec_int.mli: Format
