lib/util/stopwatch.mli:
