lib/util/stopwatch.ml: Unix
