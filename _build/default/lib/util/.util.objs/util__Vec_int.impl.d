lib/util/vec_int.ml: Array Format List Printf
