lib/util/union_find.ml: Array
