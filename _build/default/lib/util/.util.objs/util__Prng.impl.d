lib/util/prng.ml: Int64
