type t = float

let start () = Unix.gettimeofday ()
let elapsed t = Unix.gettimeofday () -. t

let time f =
  let t = start () in
  let r = f () in
  (r, elapsed t)
