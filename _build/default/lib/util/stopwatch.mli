(** Wall-clock timing for experiment reporting. *)

type t

val start : unit -> t

(** Elapsed seconds since [start]. *)
val elapsed : t -> float

(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float
