type t = { mutable parent : int array; mutable rank : int array; mutable n : int }

let create n =
  let n = max n 0 in
  { parent = Array.init (max n 1) (fun i -> i); rank = Array.make (max n 1) 0; n }

let ensure t k =
  if k >= t.n then begin
    let cap = Array.length t.parent in
    if k >= cap then begin
      let cap' = max (k + 1) (cap * 2) in
      let parent' = Array.init cap' (fun i -> i) in
      Array.blit t.parent 0 parent' 0 t.n;
      let rank' = Array.make cap' 0 in
      Array.blit t.rank 0 rank' 0 t.n;
      t.parent <- parent';
      t.rank <- rank'
    end;
    for i = t.n to k do
      t.parent.(i) <- i;
      t.rank.(i) <- 0
    done;
    t.n <- k + 1
  end

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let union t a b =
  ensure t a;
  ensure t b;
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else if t.rank.(ra) < t.rank.(rb) then begin
    t.parent.(ra) <- rb;
    rb
  end
  else if t.rank.(ra) > t.rank.(rb) then begin
    t.parent.(rb) <- ra;
    ra
  end
  else begin
    t.parent.(rb) <- ra;
    t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let union_into t ~root a =
  ensure t root;
  ensure t a;
  let rr = find t root and ra = find t a in
  if rr <> ra then begin
    t.parent.(ra) <- rr;
    if t.rank.(rr) <= t.rank.(ra) then t.rank.(rr) <- t.rank.(ra) + 1
  end

let same t a b =
  ensure t a;
  ensure t b;
  find t a = find t b

let size t = t.n

let class_count t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if find t i = i then incr c
  done;
  !c
