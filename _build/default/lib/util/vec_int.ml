type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity 0; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }
let length v = v.len
let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec_int: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let grow v needed =
  let cap = Array.length v.data in
  if needed > cap then begin
    let cap' = max needed (cap * 2) in
    let data' = Array.make cap' 0 in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

let push v x =
  grow v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec_int.pop: empty";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let top v =
  if v.len = 0 then invalid_arg "Vec_int.top: empty";
  Array.unsafe_get v.data (v.len - 1)

let clear v = v.len <- 0

let resize v n x =
  if n < 0 then invalid_arg "Vec_int.resize: negative length";
  grow v n;
  if n > v.len then Array.fill v.data v.len (n - v.len) x;
  v.len <- n

let remove_unordered v i =
  check v i;
  v.len <- v.len - 1;
  Array.unsafe_set v.data i (Array.unsafe_get v.data v.len)

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p (Array.unsafe_get v.data i) || go (i + 1)) in
  go 0

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let of_list xs =
  let v = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push v) xs;
  v

let to_array v = Array.sub v.data 0 v.len
let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); len = Array.length a }
let copy v = { data = Array.copy v.data; len = v.len }

let blit_push dst src =
  grow dst (dst.len + src.len);
  Array.blit src.data 0 dst.data dst.len src.len;
  dst.len <- dst.len + src.len

let sort v =
  let a = to_array v in
  Array.sort compare a;
  Array.blit a 0 v.data 0 v.len

let shrink_capacity v =
  if Array.length v.data > max 1 v.len then v.data <- Array.sub v.data 0 (max 1 v.len)

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Format.pp_print_int)
    (to_list v)
