(** Growable arrays of unboxed integers.

    The work-horse container of the SAT solver and the AIG manager: watcher
    lists, clause arenas, node cones and literal stacks are all [Vec_int.t].
    Operations never shrink the backing store unless {!shrink_capacity} is
    called explicitly. *)

type t

val create : ?capacity:int -> unit -> t

(** [make n x] is a vector holding [n] copies of [x]. *)
val make : int -> int -> t

val length : t -> int
val is_empty : t -> bool

(** [get v i] and [set v i x] check bounds and raise [Invalid_argument]. *)
val get : t -> int -> int

val set : t -> int -> int -> unit
val push : t -> int -> unit

(** [pop v] removes and returns the last element. Raises [Invalid_argument]
    on an empty vector. *)
val pop : t -> int

(** [top v] is the last element without removing it. *)
val top : t -> int

(** [clear v] resets the length to zero, keeping the capacity. *)
val clear : t -> unit

(** [resize v n x] grows or truncates the vector to length [n], filling new
    slots with [x]. *)
val resize : t -> int -> int -> unit

(** [remove_unordered v i] deletes index [i] by swapping in the last element
    (constant time, does not preserve order). *)
val remove_unordered : t -> int -> unit

val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val exists : (int -> bool) -> t -> bool
val to_list : t -> int list
val of_list : int list -> t
val to_array : t -> int array
val of_array : int array -> t
val copy : t -> t

(** [blit_push dst src] appends the whole contents of [src] to [dst]. *)
val blit_push : t -> t -> unit

val sort : t -> unit
val shrink_capacity : t -> unit
val pp : Format.formatter -> t -> unit
