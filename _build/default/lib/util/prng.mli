(** Deterministic pseudo-random generator (splitmix64).

    All randomized components (simulation vectors, decision tie-breaking in
    experiments, workload generation) draw from explicit [Prng.t] values so
    that tests and benchmarks are reproducible. *)

type t

val create : int -> t

(** Independent stream derived from the current state. *)
val split : t -> t

(** Next raw 64-bit word. *)
val next64 : t -> int64

(** [int t bound] is uniform in [0, bound), [bound > 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform float in [0, 1). *)
val float : t -> float
