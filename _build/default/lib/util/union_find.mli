(** Union-find over dense integer keys with path compression and union by
    rank. Used by the sweeping engine to maintain merge classes of AIG
    nodes. *)

type t

(** [create n] has elements [0 .. n-1], each in its own class. *)
val create : int -> t

(** [ensure t n] grows the domain so that element [n] is valid. *)
val ensure : t -> int -> unit

val find : t -> int -> int

(** [union t a b] merges the classes of [a] and [b] and returns the new
    representative. *)
val union : t -> int -> int -> int

(** [union_into t ~root a] merges [a]'s class into [root]'s class keeping
    [root]'s representative as the class representative. *)
val union_into : t -> root:int -> int -> unit

val same : t -> int -> int -> bool
val size : t -> int

(** Number of distinct classes currently in the structure. O(n). *)
val class_count : t -> int
