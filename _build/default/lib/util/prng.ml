type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64, Steele et al.; the standard finalizer constants. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  raw mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let mant = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  mant /. 9007199254740992.0
