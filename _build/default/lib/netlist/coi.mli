(** Cone-of-influence reduction.

    Latches (and inputs) that cannot affect the property — they are outside
    the transitive support of the property through the next-state functions
    — are dropped before verification. Purely structural, no solver
    involved, and exact: the reduced model has the same verdict, the same
    counterexample depths, and its traces extend to traces of the original
    by assigning the removed latches their simulated values. *)

type report = {
  latches_before : int;
  latches_after : int;
  inputs_before : int;
  inputs_after : int;
  removed_latches : Aig.var list;
  removed_inputs : Aig.var list;
}

val pp_report : Format.formatter -> report -> unit

val reduce : Model.t -> Model.t * report
