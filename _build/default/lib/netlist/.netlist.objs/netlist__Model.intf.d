lib/netlist/model.mli: Aig Format
