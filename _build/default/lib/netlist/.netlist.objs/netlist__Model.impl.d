lib/netlist/model.ml: Aig Format Hashtbl List Printf
