lib/netlist/aiger.ml: Aig Array Buffer Builder Char Filename Fun Hashtbl List Model Printf String
