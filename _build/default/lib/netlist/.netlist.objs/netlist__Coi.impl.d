lib/netlist/coi.ml: Aig Format Hashtbl List Model
