lib/netlist/aiger.mli: Model
