lib/netlist/coi.mli: Aig Format Model
