lib/netlist/builder.mli: Aig Model
