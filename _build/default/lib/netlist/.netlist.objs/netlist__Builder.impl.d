lib/netlist/builder.ml: Aig List Model Printf
