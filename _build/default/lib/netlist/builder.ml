type pending_latch = { state_var : Aig.var; init : bool; mutable next : Aig.lit option }

type t = {
  name : string;
  aig : Aig.t;
  mutable inputs_rev : Aig.var list;
  mutable latches_rev : pending_latch list;
  mutable property : Aig.lit option;
}

let create name =
  { name; aig = Aig.create (); inputs_rev = []; latches_rev = []; property = None }

let aig b = b.aig

let input b =
  let v = Aig.fresh_var b.aig in
  b.inputs_rev <- v :: b.inputs_rev;
  Aig.var b.aig v

let inputs b n = List.init n (fun _ -> input b)

let latch b ~init =
  let v = Aig.fresh_var b.aig in
  b.latches_rev <- { state_var = v; init; next = None } :: b.latches_rev;
  Aig.var b.aig v

let latches b ~init n = List.init n (fun _ -> latch b ~init)

let connect b q next =
  match Aig.var_of_lit b.aig q with
  | None -> invalid_arg "Builder.connect: not a latch literal"
  | Some v -> (
    if Aig.is_complemented q then invalid_arg "Builder.connect: use the positive phase";
    match List.find_opt (fun l -> l.state_var = v) b.latches_rev with
    | None -> invalid_arg "Builder.connect: not a latch literal"
    | Some l -> (
      match l.next with
      | Some _ -> invalid_arg "Builder.connect: latch already connected"
      | None -> l.next <- Some next))

let set_property b p = b.property <- Some p

let finish b =
  let latches =
    List.rev_map
      (fun l ->
        match l.next with
        | None -> failwith (Printf.sprintf "%s: latch %d left unconnected" b.name l.state_var)
        | Some next -> { Model.state_var = l.state_var; next; init = l.init })
      b.latches_rev
  in
  let property =
    match b.property with
    | None -> failwith (Printf.sprintf "%s: no property declared" b.name)
    | Some p -> p
  in
  let m =
    {
      Model.name = b.name;
      aig = b.aig;
      inputs = List.rev b.inputs_rev;
      latches;
      property;
    }
  in
  match Model.validate m with
  | Ok () -> m
  | Error msg -> failwith (Printf.sprintf "%s: %s" b.name msg)
