(** Imperative construction of {!Model.t} values.

    Latches are allocated first (so that combinational logic can read
    them) and connected to their next-state functions later; {!finish}
    refuses models with unconnected latches or validation errors. *)

type t

val create : string -> t

(** The model's AIG manager; all literals must come from it. *)
val aig : t -> Aig.t

(** Allocate a primary input; returns its literal. *)
val input : t -> Aig.lit

(** [inputs b n] allocates [n] inputs. *)
val inputs : t -> int -> Aig.lit list

(** Allocate a latch with the given reset value; returns its
    current-state literal. *)
val latch : t -> init:bool -> Aig.lit

val latches : t -> init:bool -> int -> Aig.lit list

(** [connect b q next] sets the next-state function of the latch whose
    current-state literal is [q] (as returned by {!latch}, positive
    phase). Raises [Invalid_argument] on non-latch literals or double
    connection. *)
val connect : t -> Aig.lit -> Aig.lit -> unit

(** Declare the safety property ("good states" predicate). *)
val set_property : t -> Aig.lit -> unit

(** Build and validate. Raises [Failure] with a diagnostic on
    inconsistent models. *)
val finish : t -> Model.t
