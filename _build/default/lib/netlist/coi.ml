type report = {
  latches_before : int;
  latches_after : int;
  inputs_before : int;
  inputs_after : int;
  removed_latches : Aig.var list;
  removed_inputs : Aig.var list;
}

let pp_report ppf r =
  Format.fprintf ppf "latches %d -> %d, inputs %d -> %d" r.latches_before r.latches_after
    r.inputs_before r.inputs_after

let reduce m =
  let aig = Model.aig m in
  let state_vars = Model.state_vars m in
  let next_of =
    let table = Hashtbl.create 16 in
    List.iter (fun l -> Hashtbl.replace table l.Model.state_var l.Model.next) m.Model.latches;
    fun v -> Hashtbl.find table v
  in
  (* least fixpoint of "state variables the property depends on, directly
     or through kept next-state functions" *)
  let kept : (Aig.var, unit) Hashtbl.t = Hashtbl.create 16 in
  let frontier = ref (List.filter (fun v -> List.mem v state_vars) (Aig.support aig m.Model.property)) in
  while !frontier <> [] do
    let next_frontier = ref [] in
    List.iter
      (fun v ->
        if not (Hashtbl.mem kept v) then begin
          Hashtbl.replace kept v ();
          List.iter
            (fun w ->
              if List.mem w state_vars && not (Hashtbl.mem kept w) then
                next_frontier := w :: !next_frontier)
            (Aig.support aig (next_of v))
        end)
      !frontier;
    frontier := List.sort_uniq compare !next_frontier
  done;
  let latches' = List.filter (fun l -> Hashtbl.mem kept l.Model.state_var) m.Model.latches in
  (* inputs surviving in some kept cone *)
  let used : (Aig.var, unit) Hashtbl.t = Hashtbl.create 16 in
  let note lit = List.iter (fun v -> Hashtbl.replace used v ()) (Aig.support aig lit) in
  note m.Model.property;
  List.iter (fun l -> note l.Model.next) latches';
  let inputs' = List.filter (Hashtbl.mem used) m.Model.inputs in
  let reduced =
    { m with Model.name = m.Model.name ^ "-coi"; latches = latches'; inputs = inputs' }
  in
  ( reduced,
    {
      latches_before = List.length m.Model.latches;
      latches_after = List.length latches';
      inputs_before = List.length m.Model.inputs;
      inputs_after = List.length inputs';
      removed_latches =
        List.filter_map
          (fun l -> if Hashtbl.mem kept l.Model.state_var then None else Some l.Model.state_var)
          m.Model.latches;
      removed_inputs = List.filter (fun v -> not (Hashtbl.mem used v)) m.Model.inputs;
    } )
