(** Sequential circuit models: the verification substrate.

    A model is an AIG manager together with the designation of some
    variables as primary inputs and others as state (latch outputs), the
    next-state function and initial value of every latch, and one safety
    property [P(s)] over the state variables ("good" states; a violation
    is a reachable state satisfying [¬P]). *)

type latch = {
  state_var : Aig.var; (* current-state variable *)
  next : Aig.lit; (* next-state function over inputs and state vars *)
  init : bool; (* reset value *)
}

type t = {
  name : string;
  aig : Aig.t;
  inputs : Aig.var list;
  latches : latch list;
  property : Aig.lit;
}

val name : t -> string
val aig : t -> Aig.t
val input_vars : t -> Aig.var list
val state_vars : t -> Aig.var list
val num_inputs : t -> int
val num_latches : t -> int

(** The characteristic function of the initial state set (a cube over the
    state variables). *)
val init_lit : t -> Aig.lit

(** [next_subst m] maps every state variable to its next-state function
    and leaves other variables untouched — the substitution that realizes
    pre-image in-lining [B(δ(s,x))]. *)
val next_subst : t -> Aig.var -> Aig.lit option

(** [latch_of m v] is the latch whose state variable is [v]. *)
val latch_of : t -> Aig.var -> latch option

(** Structural sanity: every latch's next function and the property must
    only depend on declared inputs and state variables; state variables
    must be distinct. Returns a human-readable error. *)
val validate : t -> (unit, string) result

(** [eval_step m ~state ~inputs] runs one synchronous step, returning the
    next state assignment. *)
val eval_step :
  t -> state:(Aig.var -> bool) -> inputs:(Aig.var -> bool) -> Aig.var -> bool

(** [property_holds m ~state] evaluates the safety property in a state. *)
val property_holds : t -> state:(Aig.var -> bool) -> bool

(** Initial state as an assignment. *)
val init_state : t -> Aig.var -> bool

type stats = { inputs : int; latches : int; property_size : int; next_size : int }

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
