type latch = { state_var : Aig.var; next : Aig.lit; init : bool }

type t = {
  name : string;
  aig : Aig.t;
  inputs : Aig.var list;
  latches : latch list;
  property : Aig.lit;
}

let name m = m.name
let aig m = m.aig
let input_vars m = m.inputs
let state_vars m = List.map (fun l -> l.state_var) m.latches
let num_inputs m = List.length m.inputs
let num_latches m = List.length m.latches

let init_lit m =
  let conj =
    List.map
      (fun l ->
        let v = Aig.var m.aig l.state_var in
        if l.init then v else Aig.not_ v)
      m.latches
  in
  Aig.and_list m.aig conj

let latch_of m v = List.find_opt (fun l -> l.state_var = v) m.latches

let next_subst m v =
  match latch_of m v with Some l -> Some l.next | None -> None

let validate m =
  let declared = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace declared v `Input) m.inputs;
  let dup = ref None in
  List.iter
    (fun l ->
      if Hashtbl.mem declared l.state_var then dup := Some l.state_var
      else Hashtbl.replace declared l.state_var `State)
    m.latches;
  match !dup with
  | Some v -> Error (Printf.sprintf "variable %d declared twice" v)
  | None ->
    let check_support what lit =
      let bad =
        List.filter (fun v -> not (Hashtbl.mem declared v)) (Aig.support m.aig lit)
      in
      match bad with
      | [] -> Ok ()
      | v :: _ -> Error (Printf.sprintf "%s depends on undeclared variable %d" what v)
    in
    let rec check_all = function
      | [] -> check_support "property" m.property
      | l :: rest -> (
        match check_support (Printf.sprintf "latch %d next-state" l.state_var) l.next with
        | Ok () -> check_all rest
        | Error _ as e -> e)
    in
    check_all m.latches

let eval_step m ~state ~inputs =
  let env v =
    match latch_of m v with Some _ -> state v | None -> inputs v
  in
  let values =
    List.map (fun l -> (l.state_var, Aig.eval m.aig l.next env)) m.latches
  in
  fun v -> (try List.assoc v values with Not_found -> false)

let property_holds m ~state =
  Aig.eval m.aig m.property (fun v -> match latch_of m v with Some _ -> state v | None -> false)

let init_state m v = match latch_of m v with Some l -> l.init | None -> false

type stats = { inputs : int; latches : int; property_size : int; next_size : int }

let stats m =
  {
    inputs = num_inputs m;
    latches = num_latches m;
    property_size = Aig.size m.aig m.property;
    next_size = Aig.size_list m.aig (List.map (fun l -> l.next) m.latches);
  }

let pp_stats ppf s =
  Format.fprintf ppf "inputs=%d latches=%d property-ands=%d next-ands=%d" s.inputs s.latches
    s.property_size s.next_size
