(** Incremental Tseitin encoding of AIG cones into a SAT solver.

    Each AIG node receives at most one SAT variable, allocated the first
    time the node enters a query cone; the three AND-gate clauses are added
    once and stay in the solver forever. This realizes the paper's scheme
    of loading the clause database {e once and for-all} and factorizing
    many equivalence checks within a single solver instance, so learned
    clauses accumulate across checks. *)

type t

val create : Aig.t -> t

(** The underlying solver (for stats or direct clause addition). *)
val solver : t -> Sat.Solver.t

val aig : t -> Aig.t

(** [sat_lit t l] is the SAT literal equivalent to AIG literal [l],
    encoding the cone of [l] into the solver if not already present. *)
val sat_lit : t -> Aig.lit -> Sat.Lit.t

(** Number of AIG nodes currently encoded. *)
val encoded_nodes : t -> int

(** [model_var t v] reads AIG variable [v] from the last SAT model
    (variables without an encoded leaf or left free default to [false]). *)
val model_var : t -> Aig.var -> bool
