lib/cnf/checker.mli: Aig Sat Tseitin
