lib/cnf/tseitin.ml: Aig Hashtbl List Sat
