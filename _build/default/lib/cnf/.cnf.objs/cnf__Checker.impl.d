lib/cnf/checker.ml: Aig List Sat Tseitin
