lib/cnf/tseitin.mli: Aig Sat
