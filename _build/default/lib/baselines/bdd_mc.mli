(** The traditional engine the paper positions itself against: symbolic
    reachability with canonical (BDD) state sets.

    Pre-image composes the next-state BDDs into the frontier and
    existentially quantifies the inputs; forward image uses a monolithic
    transition relation over primed variables. No dynamic variable
    reordering is performed (the variable order is the model's variable
    numbering, primed variables last), so canonicity-induced blow-up
    appears at moderate sizes — the node quota turns it into an explicit
    [Undecided "node limit"] outcome, which is precisely the behaviour the
    comparison tables need to exhibit. *)

type iteration = { index : int; frontier_nodes : int; reached_nodes : int }

type result = {
  verdict : Verdict.t;
  iterations : iteration list;
  peak_nodes : int; (* total BDD nodes allocated by the manager *)
  seconds : float;
}

val pp_result : Format.formatter -> result -> unit

(** Backward reachability from [¬P] — the same traversal as
    {!Cbq.Reachability} but with BDD state sets. *)
val backward : ?node_limit:int -> ?max_iterations:int -> Netlist.Model.t -> result

(** Forward reachability from the initial states, with a monolithic
    transition relation. *)
val forward : ?node_limit:int -> ?max_iterations:int -> Netlist.Model.t -> result
