type t = Proved | Falsified of int | Undecided of string

let agrees_with_oracle t ~safe ~depth =
  match (t, safe, depth) with
  | Proved, true, _ -> true
  | Falsified d, false, Some expected -> d = expected
  | Falsified _, false, None -> true
  | Undecided _, _, _ -> true (* inconclusive is never wrong *)
  | Proved, false, _ | Falsified _, true, _ -> false

let pp ppf = function
  | Proved -> Format.pp_print_string ppf "PROVED"
  | Falsified d -> Format.fprintf ppf "FALSIFIED(%d)" d
  | Undecided why -> Format.fprintf ppf "UNDECIDED(%s)" why
