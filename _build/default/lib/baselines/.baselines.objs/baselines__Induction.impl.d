lib/baselines/induction.ml: Aig Cbq Cnf Format Hashtbl List Netlist Printf Sat Util Verdict
