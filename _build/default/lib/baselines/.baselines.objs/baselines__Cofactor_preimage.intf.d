lib/baselines/cofactor_preimage.mli: Aig Cnf Format Netlist Verdict
