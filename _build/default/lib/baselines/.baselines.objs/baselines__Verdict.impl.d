lib/baselines/verdict.ml: Format
