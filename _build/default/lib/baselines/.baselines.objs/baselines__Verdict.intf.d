lib/baselines/verdict.mli: Format
