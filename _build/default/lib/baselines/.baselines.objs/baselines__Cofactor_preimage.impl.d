lib/baselines/cofactor_preimage.ml: Aig Cbq Cnf Format List Netlist Util Verdict
