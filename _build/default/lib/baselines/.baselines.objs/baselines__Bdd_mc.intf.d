lib/baselines/bdd_mc.mli: Format Netlist Verdict
