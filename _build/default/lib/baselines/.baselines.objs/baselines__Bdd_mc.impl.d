lib/baselines/bdd_mc.ml: Aig Bdd Format Hashtbl List Netlist Util Verdict
