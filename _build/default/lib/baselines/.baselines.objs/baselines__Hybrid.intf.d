lib/baselines/hybrid.mli: Cbq Format Netlist Verdict
