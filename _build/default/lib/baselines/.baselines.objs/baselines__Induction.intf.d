lib/baselines/induction.mli: Cbq Format Netlist Sat Verdict
