lib/baselines/hybrid.ml: Aig Cbq Cnf Format List Netlist Util Verdict
