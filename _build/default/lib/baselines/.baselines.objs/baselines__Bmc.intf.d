lib/baselines/bmc.mli: Aig Cbq Format Netlist Sat Verdict
