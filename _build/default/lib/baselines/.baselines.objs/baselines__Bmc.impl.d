lib/baselines/bmc.ml: Aig Cbq Cnf Format List Netlist Printf Sat Util Verdict
