(** The common three-valued outcome every engine reduces to, so the
    comparison experiments can tabulate heterogeneous engines. *)

type t =
  | Proved
  | Falsified of int (* length of the counterexample found *)
  | Undecided of string (* resource or method limit, with the reason *)

val agrees_with_oracle : t -> safe:bool -> depth:int option -> bool
val pp : Format.formatter -> t -> unit
