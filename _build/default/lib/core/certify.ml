type failure = Not_initial | Not_inductive | Not_safe

let pp_failure ppf = function
  | Not_initial -> Format.pp_print_string ppf "an initial state violates the invariant"
  | Not_inductive -> Format.pp_print_string ppf "the invariant is not closed under transitions"
  | Not_safe -> Format.pp_print_string ppf "an invariant state violates the property"

let check m ~invariant =
  let aig = Netlist.Model.aig m in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_conflict_limit checker None;
  let unsat lits = Cnf.Checker.satisfiable checker lits = Cnf.Checker.No in
  if not (unsat [ Netlist.Model.init_lit m; Aig.not_ invariant ]) then Error Not_initial
  else begin
    let invariant_next = Aig.compose aig invariant ~subst:(Netlist.Model.next_subst m) in
    if not (unsat [ invariant; Aig.not_ invariant_next ]) then Error Not_inductive
    else if not (unsat [ invariant; Aig.not_ m.Netlist.Model.property ]) then Error Not_safe
    else Ok ()
  end
