type t = {
  inputs : (Aig.var * bool) list array;
  states : (Aig.var * bool) list array;
}

let length t = Array.length t.inputs

let assignment_of_list l v = try List.assoc v l with Not_found -> false

let of_inputs m frames =
  let n = Array.length frames in
  let state_vars = Netlist.Model.state_vars m in
  let input_vars = Netlist.Model.input_vars m in
  let states = Array.make (n + 1) [] in
  let inputs = Array.make n [] in
  let current = ref (Netlist.Model.init_state m) in
  states.(0) <- List.map (fun v -> (v, !current v)) state_vars;
  for k = 0 to n - 1 do
    inputs.(k) <- List.map (fun v -> (v, frames.(k) v)) input_vars;
    let next = Netlist.Model.eval_step m ~state:!current ~inputs:frames.(k) in
    current := next;
    states.(k + 1) <- List.map (fun v -> (v, next v)) state_vars
  done;
  { inputs; states }

let check m t =
  let n = length t in
  if Array.length t.states <> n + 1 then false
  else begin
    let replay = of_inputs m (Array.map assignment_of_list t.inputs) in
    let states_match = Array.for_all2 (fun a b -> a = b) replay.states t.states in
    let final = assignment_of_list t.states.(n) in
    states_match && not (Netlist.Model.property_holds m ~state:final)
  end

(* three-valued replay: does every completion of the partial stimulus
   still end in a definite property violation? *)
let definitely_fails m inputs3 frames =
  let aig = Netlist.Model.aig m in
  let state_vars = Netlist.Model.state_vars m in
  let state = ref (fun v -> Some (Netlist.Model.init_state m v)) in
  for k = 0 to frames - 1 do
    let frame = inputs3.(k) in
    let env v =
      match List.assoc_opt v frame with
      | Some value -> value
      | None -> if List.mem v state_vars then !state v else None
    in
    let next =
      List.map
        (fun l -> (l.Netlist.Model.state_var, Aig.eval3 aig l.Netlist.Model.next env))
        m.Netlist.Model.latches
    in
    state := fun v -> (match List.assoc_opt v next with Some x -> x | None -> None)
  done;
  Aig.eval3 aig m.Netlist.Model.property (fun v ->
      if List.mem v state_vars then !state v else None)
  = Some false

let minimize m t =
  let frames = length t in
  let inputs3 =
    Array.map (fun frame -> List.map (fun (v, b) -> (v, Some b)) frame) t.inputs
  in
  assert (definitely_fails m inputs3 frames);
  for k = 0 to frames - 1 do
    List.iter
      (fun (v, _) ->
        let saved = inputs3.(k) in
        inputs3.(k) <-
          List.map (fun (w, value) -> if w = v then (w, None) else (w, value)) saved;
        if not (definitely_fails m inputs3 frames) then inputs3.(k) <- saved)
      t.inputs.(k)
  done;
  Array.map
    (fun frame -> List.filter_map (fun (v, value) -> Option.map (fun b -> (v, b)) value) frame)
    inputs3

let pp m ppf t =
  let pp_assign ppf l =
    List.iter (fun (v, b) -> Format.fprintf ppf "x%d=%d " v (if b then 1 else 0)) l
  in
  Format.fprintf ppf "counterexample of length %d for %s@." (length t) (Netlist.Model.name m);
  Array.iteri
    (fun k s ->
      Format.fprintf ppf "  state %d: %a@." k pp_assign s;
      if k < length t then Format.fprintf ppf "  input %d: %a@." k pp_assign t.inputs.(k))
    t.states
