(** Sequential sweeping: register-correspondence reduction (van Eijk,
    CHARME'98 lineage — the sequential sibling of the paper's merge
    phase).

    Latches that provably carry the same value (modulo complementation, or
    a constant) in {e every reachable state} are merged before
    verification. Candidates come from parallel simulation of the model
    from its initial state; they are then refined to a greatest fixpoint
    by one-step induction: assuming all candidate equivalences in the
    current state, every candidate must be re-established by the
    next-state functions (checked by SAT on the shared clause database).
    Surviving classes are invariants, so replacing each merged latch by
    its representative preserves the property verdict.

    Replicated structures (the TMR family, twin shift registers) collapse
    dramatically; the reduced model feeds any engine. *)

type report = {
  initial_candidates : int; (* latches in nontrivial simulation classes *)
  merged_latches : int; (* latches replaced by a representative *)
  constant_latches : int; (* latches replaced by a constant *)
  rounds : int; (* induction refinement rounds *)
  sat_calls : int;
  latches_before : int;
  latches_after : int;
}

val pp_report : Format.formatter -> report -> unit

(** [reduce ?sim_steps ?seed m] — returns the reduced model (same AIG
    manager, same input variables, subset of the latches) and the report.
    The reduced model's property is the original property with merged
    state variables substituted. *)
val reduce : ?sim_steps:int -> ?seed:int -> Netlist.Model.t -> Netlist.Model.t * report
