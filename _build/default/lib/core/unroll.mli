(** Functional time-frame expansion of a sequential model, inside the
    model's own AIG manager.

    Frame 0 states are the initial-value constants; every (frame, input)
    pair gets a fresh variable; later states are next-state functions
    composed over earlier frames. Because the unrolling is functional, the
    bad-state condition at depth [k] is a single literal whose support is
    only frame inputs — one satisfiability query yields a whole
    counterexample. Used for trace reconstruction by the CBQ traversal and
    as the substrate of the BMC and induction baselines. *)

type t

val create : Netlist.Model.t -> t
val model : t -> Netlist.Model.t

(** [input_lit t ~frame v] — the fresh literal standing for model input
    [v] at time [frame]. *)
val input_lit : t -> frame:int -> Aig.var -> Aig.lit

(** [state_lit t ~frame v] — the function giving state variable [v] at
    time [frame] in terms of frame inputs. *)
val state_lit : t -> frame:int -> Aig.var -> Aig.lit

(** [bad_at t k] — [¬P] evaluated on frame [k] (using frame-[k] inputs if
    the property reads inputs). *)
val bad_at : t -> int -> Aig.lit

(** [frame_inputs t ~frame] — the fresh variables of one frame, paired
    with the model inputs they instantiate. *)
val frame_inputs : t -> frame:int -> (Aig.var * Aig.var) list

(** [trace_from_model t ~depth ~value] rebuilds a counterexample of
    [depth] transitions from a satisfying assignment of [bad_at depth],
    where [value] reads the assignment of a fresh unrolled variable. *)
val trace_from_model : t -> depth:int -> value:(Aig.var -> bool) -> Trace.t
