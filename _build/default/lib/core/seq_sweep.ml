type report = {
  initial_candidates : int;
  merged_latches : int;
  constant_latches : int;
  rounds : int;
  sat_calls : int;
  latches_before : int;
  latches_after : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "latches %d -> %d (merged=%d const=%d) candidates=%d rounds=%d sat-calls=%d"
    r.latches_before r.latches_after r.merged_latches r.constant_latches r.initial_candidates
    r.rounds r.sat_calls

(* A candidate class: members are (state_var, phase) pairs equal to the
   class function; [Const b] classes assert members stuck at a constant.
   Classes are kept phase-normalized on their first member. *)
type class_kind = Registers | Const of bool

(* 64 parallel runs of [steps] synchronous steps from the initial state;
   the signature of a latch is its value word at every step (step 0 = the
   replicated initial value, so initial-value agreement is implied by
   signature agreement). *)
let simulation_signatures model ~steps ~prng =
  let aig = Netlist.Model.aig model in
  let latches = model.Netlist.Model.latches in
  let state = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace state l.Netlist.Model.state_var
        (if l.Netlist.Model.init then -1L else 0L))
    latches;
  let sigs = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace sigs l.Netlist.Model.state_var []) latches;
  for _ = 1 to steps do
    List.iter
      (fun l ->
        let v = l.Netlist.Model.state_var in
        Hashtbl.replace sigs v (Hashtbl.find state v :: Hashtbl.find sigs v))
      latches;
    let input_words = Hashtbl.create 8 in
    List.iter
      (fun v -> Hashtbl.replace input_words v (Util.Prng.next64 prng))
      (Netlist.Model.input_vars model);
    let env v =
      match Hashtbl.find_opt state v with
      | Some w -> w
      | None -> ( match Hashtbl.find_opt input_words v with Some w -> w | None -> 0L)
    in
    let next =
      List.map (fun l -> (l.Netlist.Model.state_var, Aig.simulate aig l.Netlist.Model.next env)) latches
    in
    List.iter (fun (v, w) -> Hashtbl.replace state v w) next
  done;
  fun v -> List.rev (Hashtbl.find sigs v)

let initial_classes model ~steps ~prng =
  let normalize sig_ =
    match sig_ with
    | first :: _ when Int64.logand first 1L = 1L -> (List.map Int64.lognot sig_, 1)
    | _ -> (sig_, 0)
  in
  let signature = simulation_signatures model ~steps ~prng in
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let v = l.Netlist.Model.state_var in
      let key, phase = normalize (signature v) in
      let members = try Hashtbl.find buckets key with Not_found -> [] in
      Hashtbl.replace buckets key ((v, phase) :: members))
    model.Netlist.Model.latches;
  let zero_key = List.init steps (fun _ -> 0L) in
  Hashtbl.fold
    (fun key members acc ->
      let members = List.rev members in
      let kind = if key = zero_key then Some (Const false) else None in
      match (kind, members) with
      | Some (Const _), (_ :: _ as ms) ->
        (* constant-candidate class: members with phase 0 are stuck at 0,
           phase 1 at 1 *)
        (Const false, ms) :: acc
      | None, _ :: _ :: _ -> (Registers, members) :: acc
      | _ -> acc)
    buckets []

(* the assumed-equivalence constraint over the current state *)
let class_constraint aig classes =
  let constraints =
    List.concat_map
      (fun (kind, members) ->
        match (kind, members) with
        | Const b, ms ->
          List.map
            (fun (v, phase) ->
              let lit = Aig.var aig v in
              let lit = if phase = 1 then Aig.not_ lit else lit in
              if b then lit else Aig.not_ lit)
            ms
        | Registers, (rv, rp) :: rest ->
          let rep = Aig.var aig rv lxor rp in
          List.map (fun (v, phase) -> Aig.iff_ aig (Aig.var aig v lxor phase) rep) rest
        | Registers, [] -> [])
      classes
  in
  Aig.and_list aig constraints

let reduce ?(sim_steps = 16) ?(seed = 57) model =
  let aig = Netlist.Model.aig model in
  let prng = Util.Prng.create seed in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_conflict_limit checker None;
  let next_of =
    let table = Hashtbl.create 16 in
    List.iter
      (fun l -> Hashtbl.replace table l.Netlist.Model.state_var l.Netlist.Model.next)
      model.Netlist.Model.latches;
    fun v -> Hashtbl.find table v
  in
  let classes = ref (initial_classes model ~steps:sim_steps ~prng) in
  let initial_candidates =
    List.fold_left (fun acc (_, ms) -> acc + List.length ms) 0 !classes
  in
  let sat_calls = ref 0 in
  let rounds = ref 0 in
  (* greatest fixpoint: drop members whose next-state value is not forced
     to match under the assumed equivalences *)
  let changed = ref true in
  while !changed do
    changed := false;
    incr rounds;
    let assumption = class_constraint aig !classes in
    let keep_member kind rep_next (v, phase) =
      incr sat_calls;
      let member_next = next_of v in
      let member_next = if phase = 1 then Aig.not_ member_next else member_next in
      let target =
        match kind with
        | Const b -> if b then Aig.not_ member_next else member_next
        | Registers -> Aig.xor_ aig member_next rep_next
      in
      match Cnf.Checker.satisfiable checker [ assumption; target ] with
      | Cnf.Checker.No -> true
      | Cnf.Checker.Yes | Cnf.Checker.Maybe -> false
    in
    classes :=
      List.filter_map
        (fun (kind, members) ->
          match (kind, members) with
          | Const _, ms ->
            let kept = List.filter (keep_member kind Aig.false_) ms in
            if List.length kept < List.length ms then changed := true;
            if kept = [] then None else Some (kind, kept)
          | Registers, ((rv, rp) :: rest as _ms) ->
            let rep_next = if rp = 1 then Aig.not_ (next_of rv) else next_of rv in
            let kept = List.filter (keep_member kind rep_next) rest in
            if List.length kept < List.length rest then changed := true;
            if kept = [] then None else Some (kind, (rv, rp) :: kept)
          | Registers, [] -> None)
        !classes
  done;
  (* build the substitution: merged latch variable -> representative lit *)
  let subst_table = Hashtbl.create 16 in
  let merged = ref 0 and const_merged = ref 0 in
  List.iter
    (fun (kind, members) ->
      match (kind, members) with
      | Const b, ms ->
        List.iter
          (fun (v, phase) ->
            let value = if b then 1 else 0 in
            let lit = if value lxor phase = 1 then Aig.true_ else Aig.false_ in
            Hashtbl.replace subst_table v lit;
            incr const_merged)
          ms
      | Registers, (rv, rp) :: rest ->
        let rep = Aig.var aig rv lxor rp in
        List.iter
          (fun (v, phase) ->
            Hashtbl.replace subst_table v (rep lxor phase);
            incr merged)
          rest
      | Registers, [] -> ())
    !classes;
  let subst v = Hashtbl.find_opt subst_table v in
  let latches' =
    List.filter_map
      (fun l ->
        if Hashtbl.mem subst_table l.Netlist.Model.state_var then None
        else
          Some { l with Netlist.Model.next = Aig.compose aig l.Netlist.Model.next ~subst })
      model.Netlist.Model.latches
  in
  let property' = Aig.compose aig model.Netlist.Model.property ~subst in
  let reduced =
    {
      model with
      Netlist.Model.name = model.Netlist.Model.name ^ "-swept";
      latches = latches';
      property = property';
    }
  in
  let report =
    {
      initial_candidates;
      merged_latches = !merged;
      constant_latches = !const_merged;
      rounds = !rounds;
      sat_calls = !sat_calls;
      latches_before = List.length model.Netlist.Model.latches;
      latches_after = List.length latches';
    }
  in
  (reduced, report)
