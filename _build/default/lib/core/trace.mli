(** Counterexample traces: one input assignment per frame, with the state
    sequence they induce from the initial state. *)

type t = {
  inputs : (Aig.var * bool) list array; (* frame -> input assignment *)
  states : (Aig.var * bool) list array; (* length = frames + 1 *)
}

(** Number of transitions. *)
val length : t -> int

(** [of_inputs m frames] replays the input assignments from the initial
    state and records the visited states. *)
val of_inputs : Netlist.Model.t -> (Aig.var -> bool) array -> t

(** [check m t] — is [t] a genuine counterexample? Replays the inputs and
    verifies that every recorded state matches and that the final state
    violates the property. *)
val check : Netlist.Model.t -> t -> bool

val pp : Netlist.Model.t -> Format.formatter -> t -> unit

(** [minimize m t] — which input bits actually matter? Each input is
    tentatively replaced by X and the whole trace re-run with three-valued
    simulation; inputs whose removal leaves the final property {e
    definitely} violated are dropped. Returns the essential inputs per
    frame (a subset of [t.inputs]); every completion of that partial
    stimulus is a counterexample. [t] must satisfy {!check}. *)
val minimize : Netlist.Model.t -> t -> (Aig.var * bool) list array
