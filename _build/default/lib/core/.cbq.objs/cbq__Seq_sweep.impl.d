lib/core/seq_sweep.ml: Aig Cnf Format Hashtbl Int64 List Netlist Util
