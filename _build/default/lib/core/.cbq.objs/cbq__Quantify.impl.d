lib/core/quantify.ml: Aig Array Format Hashtbl List Option Result Sweep Synth
