lib/core/reachability.mli: Aig Format Netlist Quantify Trace
