lib/core/certify.ml: Aig Cnf Format Netlist
