lib/core/quantify.mli: Aig Cnf Format Sweep Synth Util
