lib/core/certify.mli: Aig Format Netlist
