lib/core/unroll.mli: Aig Netlist Trace
