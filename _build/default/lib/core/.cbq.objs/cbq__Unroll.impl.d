lib/core/unroll.ml: Aig Array Hashtbl List Netlist Trace
