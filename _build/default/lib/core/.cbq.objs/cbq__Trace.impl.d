lib/core/trace.ml: Aig Array Format List Netlist Option
