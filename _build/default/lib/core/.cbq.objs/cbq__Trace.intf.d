lib/core/trace.mli: Aig Format Netlist
