lib/core/reachability.ml: Aig Cnf Format List Netlist Option Preimage Quantify Synth Trace Unroll Util
