lib/core/forward.ml: Aig Cnf List Netlist Option Quantify Reachability Synth Unroll Util
