lib/core/preimage.mli: Aig Cnf Netlist Quantify Util
