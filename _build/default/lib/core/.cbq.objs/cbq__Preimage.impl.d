lib/core/preimage.ml: Aig List Netlist Quantify
