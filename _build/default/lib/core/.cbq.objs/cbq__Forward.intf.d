lib/core/forward.mli: Netlist Reachability
