lib/core/seq_sweep.mli: Format Netlist
