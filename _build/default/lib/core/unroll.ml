type t = {
  model : Netlist.Model.t;
  aig : Aig.t;
  (* (frame, model input var) -> fresh var *)
  inputs : (int * Aig.var, Aig.var) Hashtbl.t;
  (* (frame, state var) -> literal *)
  states : (int * Aig.var, Aig.lit) Hashtbl.t;
  mutable frames_ready : int; (* state literals computed up to this frame *)
}

let create model =
  let aig = Netlist.Model.aig model in
  let t =
    { model; aig; inputs = Hashtbl.create 64; states = Hashtbl.create 64; frames_ready = 0 }
  in
  List.iter
    (fun l ->
      let init = if l.Netlist.Model.init then Aig.true_ else Aig.false_ in
      Hashtbl.replace t.states (0, l.Netlist.Model.state_var) init)
    model.Netlist.Model.latches;
  t

let model t = t.model

let input_lit t ~frame v =
  match Hashtbl.find_opt t.inputs (frame, v) with
  | Some fresh -> Aig.var t.aig fresh
  | None ->
    let fresh = Aig.fresh_var t.aig in
    Hashtbl.replace t.inputs (frame, v) fresh;
    Aig.var t.aig fresh

(* substitution mapping model variables to their frame-[k] literals *)
let frame_subst t k v =
  match Hashtbl.find_opt t.states (k, v) with
  | Some l -> Some l
  | None ->
    if List.mem v (Netlist.Model.input_vars t.model) then Some (input_lit t ~frame:k v)
    else None

let rec ensure_frame t k =
  if k > t.frames_ready then begin
    ensure_frame t (k - 1);
    let prev = k - 1 in
    List.iter
      (fun l ->
        let lit = Aig.compose t.aig l.Netlist.Model.next ~subst:(frame_subst t prev) in
        Hashtbl.replace t.states (k, l.Netlist.Model.state_var) lit)
      t.model.Netlist.Model.latches;
    t.frames_ready <- k
  end

let state_lit t ~frame v =
  ensure_frame t frame;
  match Hashtbl.find_opt t.states (frame, v) with
  | Some l -> l
  | None -> invalid_arg "Unroll.state_lit: not a state variable"

let bad_at t k =
  ensure_frame t k;
  Aig.compose t.aig
    (Aig.not_ t.model.Netlist.Model.property)
    ~subst:(frame_subst t k)

let frame_inputs t ~frame =
  Hashtbl.fold
    (fun (f, v) fresh acc -> if f = frame then (v, fresh) :: acc else acc)
    t.inputs []

let trace_from_model t ~depth ~value =
  let frames =
    Array.init depth (fun k ->
        let bindings =
          List.map (fun (v, fresh) -> (v, value fresh)) (frame_inputs t ~frame:k)
        in
        fun v -> (try List.assoc v bindings with Not_found -> false))
  in
  Trace.of_inputs t.model frames
