(** Independent checking of proof certificates.

    A safety proof is certified by an {e inductive invariant} [Inv] over
    the state variables:

    + {b initiation} — the initial states satisfy [Inv];
    + {b consecution} — [Inv] is closed under the transition functions
      for every input;
    + {b safety} — [Inv] implies the property.

    The three conditions are discharged by SAT on a fresh checker, so a
    verdict can be validated without trusting the engine that produced it
    (the paper's traversal emits [¬reached] as its certificate). *)

type failure =
  | Not_initial (* some initial state violates the invariant *)
  | Not_inductive (* an invariant state can leave the invariant *)
  | Not_safe (* an invariant state violates the property *)

val pp_failure : Format.formatter -> failure -> unit

(** [check m ~invariant] — [Ok ()] when [invariant] certifies the model's
    property. The literal must be over the model's state variables. *)
val check : Netlist.Model.t -> invariant:Aig.lit -> (unit, failure) result
