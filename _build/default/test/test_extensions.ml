(* Tests for the extension features: cross-manager import, stand-alone
   CEC, DIMACS I/O, forward CBQ reachability, reached-set don't cares,
   care-set simplification, and the Johnson/TMR families. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let eval_mask aig l mask = Aig.eval aig l (fun v -> (mask lsr v) land 1 = 1)

let semantically_equal aig nvars a b =
  let rec go mask =
    mask >= 1 lsl nvars || (eval_mask aig a mask = eval_mask aig b mask && go (mask + 1))
  in
  go 0

(* ---------- Aig.import ---------- *)

let test_import_basic () =
  let src = Aig.create () in
  let x = Aig.var src 0 and y = Aig.var src 1 in
  let f = Aig.xor_ src (Aig.and_ src x y) (Aig.or_ src x (Aig.not_ y)) in
  let dst = Aig.create () in
  (* map source variables 0,1 to destination variables 5,3 *)
  let subst v = Aig.var dst (if v = 0 then 5 else 3) in
  let g = Aig.import dst ~source:src ~subst f in
  for mask = 0 to 3 do
    let src_env v = (mask lsr v) land 1 = 1 in
    let dst_env v = if v = 5 then src_env 0 else if v = 3 then src_env 1 else false in
    check bool
      (Printf.sprintf "import agrees on %d" mask)
      (Aig.eval src f src_env) (Aig.eval dst g dst_env)
  done

let test_import_complemented_and_const () =
  let src = Aig.create () in
  let x = Aig.var src 0 in
  let dst = Aig.create () in
  let subst _ = Aig.var dst 0 in
  check int "constant imports as constant" Aig.true_
    (Aig.import dst ~source:src ~subst Aig.true_);
  check int "complemented leaf" (Aig.not_ (Aig.var dst 0))
    (Aig.import dst ~source:src ~subst (Aig.not_ x))

let test_import_into_mapped_logic () =
  (* mapping a variable to non-variable logic in the destination *)
  let src = Aig.create () in
  let x = Aig.var src 0 and y = Aig.var src 1 in
  let f = Aig.and_ src x y in
  let dst = Aig.create () in
  let a = Aig.var dst 0 and b = Aig.var dst 1 in
  let subst v = if v = 0 then Aig.or_ dst a b else b in
  let g = Aig.import dst ~source:src ~subst f in
  check bool "substituted semantics" true
    (semantically_equal dst 2 g (Aig.and_ dst (Aig.or_ dst a b) b))

(* ---------- Cec ---------- *)

let test_cec_adders_equal () =
  List.iter
    (fun n ->
      let ripple = Circuits.Comb.adder_carry n in
      let cla = Circuits.Comb.carry_lookahead n in
      let r =
        Sweep.Cec.check_cones
          (ripple.Circuits.Comb.aig, ripple.Circuits.Comb.root, ripple.Circuits.Comb.vars)
          (cla.Circuits.Comb.aig, cla.Circuits.Comb.root, cla.Circuits.Comb.vars)
      in
      check bool
        (Printf.sprintf "adders %d-bit equivalent" n)
        true
        (r.Sweep.Cec.verdict = Sweep.Cec.Equivalent))
    [ 2; 4; 8 ]

let test_cec_bug_refuted () =
  let ripple = Circuits.Comb.adder_carry 6 in
  let cla = Circuits.Comb.carry_lookahead ~bug:true 6 in
  let r =
    Sweep.Cec.check_cones
      (ripple.Circuits.Comb.aig, ripple.Circuits.Comb.root, ripple.Circuits.Comb.vars)
      (cla.Circuits.Comb.aig, cla.Circuits.Comb.root, cla.Circuits.Comb.vars)
  in
  match r.Sweep.Cec.verdict with
  | Sweep.Cec.Inequivalent assignment ->
    (* the witness must actually distinguish the circuits (shared joint
       numbering is positional on both sides) *)
    let value (c : Circuits.Comb.cone) =
      Aig.eval c.Circuits.Comb.aig c.Circuits.Comb.root (fun v ->
          try List.assoc v assignment with Not_found -> false)
    in
    check bool "witness distinguishes" true (value ripple <> value cla)
  | Sweep.Cec.Equivalent | Sweep.Cec.Unknown -> Alcotest.fail "bug not refuted"

let test_cec_same_manager () =
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 91 in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let a = Aig.xor_ aig x y in
  let b = Aig.or_ aig (Aig.and_ aig x (Aig.not_ y)) (Aig.and_ aig (Aig.not_ x) y) in
  let r = Sweep.Cec.check aig checker ~prng a b in
  check bool "same-manager equivalence" true (r.Sweep.Cec.verdict = Sweep.Cec.Equivalent)

let test_cec_input_count_mismatch () =
  let c1 = Circuits.Comb.parity 3 and c2 = Circuits.Comb.parity 4 in
  Alcotest.check_raises "width mismatch rejected"
    (Invalid_argument "Cec.check_cones: input counts differ") (fun () ->
      ignore
        (Sweep.Cec.check_cones
           (c1.Circuits.Comb.aig, c1.Circuits.Comb.root, c1.Circuits.Comb.vars)
           (c2.Circuits.Comb.aig, c2.Circuits.Comb.root, c2.Circuits.Comb.vars)))

(* ---------- Dimacs ---------- *)

let test_dimacs_parse_basic () =
  let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  match Sat.Dimacs.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
    check int "num vars" 3 p.Sat.Dimacs.num_vars;
    check int "num clauses" 2 (List.length p.Sat.Dimacs.clauses);
    (match p.Sat.Dimacs.clauses with
    | [ c1; _ ] ->
      check bool "literal mapping" true (c1 = [ Sat.Lit.pos 0; Sat.Lit.neg_of 1 ])
    | _ -> Alcotest.fail "clause shape")

let test_dimacs_multiline_and_header_less () =
  (* clauses split across lines, no p-line *)
  let text = "1 2\n-3 0 3 0\n" in
  match Sat.Dimacs.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
    check int "inferred vars" 3 p.Sat.Dimacs.num_vars;
    check int "two clauses" 2 (List.length p.Sat.Dimacs.clauses)

let test_dimacs_errors () =
  (match Sat.Dimacs.parse "p cnf x 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  (match Sat.Dimacs.parse "1 two 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad literal accepted");
  match Sat.Dimacs.parse "1 2 3\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated clause accepted"

let test_dimacs_roundtrip_and_solve () =
  let p = { Sat.Dimacs.num_vars = 2; clauses = [ [ Sat.Lit.pos 0 ]; [ Sat.Lit.neg_of 0; Sat.Lit.pos 1 ] ] } in
  (match Sat.Dimacs.parse (Sat.Dimacs.render p) with
  | Ok p' -> check bool "roundtrip" true (p = p')
  | Error msg -> Alcotest.fail msg);
  let solver = Sat.Solver.create () in
  check bool "load ok" true (Sat.Dimacs.load solver p);
  check bool "solves sat" true (Sat.Solver.solve solver = Sat.Solver.Sat);
  check (Alcotest.option bool) "propagated" (Some true) (Sat.Solver.value solver 1);
  (* an unsatisfiable problem *)
  let q =
    { Sat.Dimacs.num_vars = 1; clauses = [ [ Sat.Lit.pos 0 ]; [ Sat.Lit.neg_of 0 ] ] }
  in
  let s2 = Sat.Solver.create () in
  let ok = Sat.Dimacs.load s2 q in
  check bool "conflicting units rejected at load" false ok

(* ---------- forward CBQ reachability ---------- *)

let forward_families =
  [
    ("counter", Some 3);
    ("counter-even", Some 4);
    ("shift-pattern", Some 4);
    ("lfsr", Some 4);
    ("fifo-buggy", Some 2);
    ("accumulator", Some 3);
    ("traffic", None);
    ("johnson", Some 4);
  ]

let test_forward_oracles () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let r = Cbq.Forward.run model in
      match (r.Cbq.Reachability.verdict, status) with
      | Cbq.Reachability.Proved, Circuits.Registry.Safe -> ()
      | Cbq.Reachability.Falsified { depth; trace }, Circuits.Registry.Unsafe expected ->
        check int (name ^ " depth") expected depth;
        (match trace with
        | Some t -> check bool (name ^ " trace valid") true (Cbq.Trace.check model t)
        | None -> Alcotest.fail (name ^ ": missing trace"))
      | v, _ ->
        Alcotest.fail
          (Format.asprintf "%s: unexpected forward verdict %a" name Cbq.Reachability.pp_verdict v))
    forward_families

let test_forward_agrees_with_backward () =
  List.iter
    (fun (name, param) ->
      let m1, _ = Circuits.Registry.build name param in
      let m2, _ = Circuits.Registry.build name param in
      let f = (Cbq.Forward.run m1).Cbq.Reachability.verdict in
      let b = (Cbq.Reachability.run m2).Cbq.Reachability.verdict in
      let key = function
        | Cbq.Reachability.Proved -> "proved"
        | Cbq.Reachability.Falsified { depth; _ } -> Printf.sprintf "cex%d" depth
        | Cbq.Reachability.Out_of_budget _ -> "?"
      in
      check Alcotest.string (name ^ " directions agree") (key b) (key f))
    [ ("counter", Some 3); ("fifo-buggy", Some 2); ("counter-even", Some 4) ]

(* ---------- reached-set don't cares & care simplification ---------- *)

let test_simplify_under_care () =
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 93 in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  (* under care = x, the function x & y is just y *)
  let f = Aig.and_ aig x y in
  let f', (consts, merges) = Synth.Dontcare.simplify_under_care aig checker ~prng ~care:x f in
  check bool "agrees on the care set" true
    (let ok = ref true in
     for mask = 0 to 3 do
       if (mask land 1 = 1) && eval_mask aig f' mask <> eval_mask aig f mask then ok := false
     done;
     !ok);
  check bool "some replacement happened or already minimal" true (consts + merges >= 0);
  check bool "never larger" true (Aig.size aig f' <= Aig.size aig f)

let test_reached_dc_reachability () =
  (* the option must not change any verdict or depth *)
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let config = { Cbq.Reachability.default with use_reached_dc = true } in
      let r = Cbq.Reachability.run ~config model in
      match (r.Cbq.Reachability.verdict, status) with
      | Cbq.Reachability.Proved, Circuits.Registry.Safe -> ()
      | Cbq.Reachability.Falsified { depth; trace }, Circuits.Registry.Unsafe expected ->
        check int (name ^ " depth with reached-dc") expected depth;
        (match trace with
        | Some t -> check bool (name ^ " trace valid") true (Cbq.Trace.check model t)
        | None -> Alcotest.fail (name ^ ": missing trace"))
      | v, _ ->
        Alcotest.fail
          (Format.asprintf "%s: wrong verdict with reached-dc: %a" name
             Cbq.Reachability.pp_verdict v))
    [ ("counter", Some 3); ("fifo-buggy", Some 2); ("lfsr", Some 4); ("peterson", None) ]

(* ---------- new families ---------- *)

let random_stimulus m prng _step =
  let vals = List.map (fun v -> (v, Util.Prng.bool prng)) (Netlist.Model.input_vars m) in
  fun v -> (try List.assoc v vals with Not_found -> false)

let simulate_safe m steps seed =
  let prng = Util.Prng.create seed in
  let state = ref (Netlist.Model.init_state m) in
  let ok = ref true in
  for step = 1 to steps do
    state := Netlist.Model.eval_step m ~state:!state ~inputs:(random_stimulus m prng step);
    if not (Netlist.Model.property_holds m ~state:!state) then ok := false
  done;
  !ok

let test_johnson_family () =
  let m = Circuits.Families.johnson ~bits:5 in
  check bool "validates" true (Netlist.Model.validate m = Ok ());
  check bool "safe under random stimulus" true (simulate_safe m 300 97);
  let r = Cbq.Reachability.run m in
  check bool "proved by cbq" true (r.Cbq.Reachability.verdict = Cbq.Reachability.Proved)

let test_tmr_family () =
  let m = Circuits.Families.tmr ~bits:3 in
  check bool "validates" true (Netlist.Model.validate m = Ok ());
  check int "three replicas + voter + shadow" (5 * 3) (Netlist.Model.num_latches m);
  check bool "safe under random stimulus" true (simulate_safe m 200 101);
  let r = Cbq.Reachability.run m in
  check bool "proved by cbq" true (r.Cbq.Reachability.verdict = Cbq.Reachability.Proved)

let test_tmr_sweep_frontier () =
  (* the replicated structure must also verify under the frontier-sweeping
     configuration (merge phase applied to every new state set) *)
  let m = Circuits.Families.tmr ~bits:3 in
  let config = { Cbq.Reachability.default with sweep_frontier = true } in
  let r = Cbq.Reachability.run ~config m in
  check bool "proved with frontier sweeping" true
    (r.Cbq.Reachability.verdict = Cbq.Reachability.Proved)

let test_cla_cone_semantics () =
  let n = 4 in
  let c = Circuits.Comb.carry_lookahead n in
  let aig = c.Circuits.Comb.aig in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let env v = if v < n then (a lsr v) land 1 = 1 else (b lsr (v - n)) land 1 = 1 in
      check bool
        (Printf.sprintf "cla carry(%d,%d)" a b)
        (a + b >= 16)
        (Aig.eval aig c.Circuits.Comb.root env)
    done
  done

(* ---------- proof certificates ---------- *)

let safe_families_for_certificates =
  [ ("counter-even", Some 4); ("twin-shift", Some 4); ("lfsr", Some 4); ("fifo", Some 2);
    ("gray", Some 3); ("arbiter", Some 3); ("traffic", None); ("peterson", None);
    ("johnson", Some 4); ("tmr", Some 3) ]

let test_backward_certificates () =
  List.iter
    (fun (name, param) ->
      let model, _ = Circuits.Registry.build name param in
      let r = Cbq.Reachability.run model in
      check bool (name ^ " proved") true (r.Cbq.Reachability.verdict = Cbq.Reachability.Proved);
      match r.Cbq.Reachability.invariant with
      | None -> Alcotest.fail (name ^ ": expected a certificate")
      | Some inv -> (
        match Cbq.Certify.check model ~invariant:inv with
        | Ok () -> ()
        | Error f -> Alcotest.failf "%s: certificate rejected (%a)" name Cbq.Certify.pp_failure f))
    safe_families_for_certificates

let test_forward_certificates () =
  List.iter
    (fun (name, param) ->
      let model, _ = Circuits.Registry.build name param in
      let r = Cbq.Forward.run model in
      check bool (name ^ " proved") true (r.Cbq.Reachability.verdict = Cbq.Reachability.Proved);
      match r.Cbq.Reachability.invariant with
      | None -> Alcotest.fail (name ^ ": expected a certificate")
      | Some inv -> (
        match Cbq.Certify.check model ~invariant:inv with
        | Ok () -> ()
        | Error f -> Alcotest.failf "%s: certificate rejected (%a)" name Cbq.Certify.pp_failure f))
    [ ("counter-even", Some 4); ("lfsr", Some 4); ("johnson", Some 4); ("traffic", None) ]

let test_certify_rejects_bogus () =
  let model, _ = Circuits.Registry.build "counter-even" (Some 4) in
  let aig = Netlist.Model.aig model in
  let q0 = Aig.var aig (List.hd (Netlist.Model.state_vars model)) in
  (* "true" is initial and inductive but not safe *)
  (match Cbq.Certify.check model ~invariant:Aig.true_ with
  | Error Cbq.Certify.Not_safe -> ()
  | Ok () | Error _ -> Alcotest.fail "trivial invariant should fail the safety condition");
  (* "false" fails initiation *)
  (match Cbq.Certify.check model ~invariant:Aig.false_ with
  | Error Cbq.Certify.Not_initial -> ()
  | Ok () | Error _ -> Alcotest.fail "empty invariant should fail initiation");
  (* "bit0 = 0 and bit1 = 0" holds initially and is safe, but the counter
     escapes it: not inductive *)
  let state_vars = Netlist.Model.state_vars model in
  let q1 = Aig.var aig (List.nth state_vars 1) in
  match Cbq.Certify.check model ~invariant:(Aig.and_ aig (Aig.not_ q0) (Aig.not_ q1)) with
  | Error Cbq.Certify.Not_inductive -> ()
  | Ok () | Error _ -> Alcotest.fail "non-inductive invariant accepted"

let test_certificate_cross_engine () =
  (* the backward certificate certifies the model for anyone — e.g. it is
     accepted on a fresh, independently built instance's checker too *)
  let model, _ = Circuits.Registry.build "arbiter" (Some 3) in
  let r = Cbq.Reachability.run model in
  match r.Cbq.Reachability.invariant with
  | Some inv ->
    (* re-check several times: the check itself must be deterministic *)
    for _ = 1 to 3 do
      match Cbq.Certify.check model ~invariant:inv with
      | Ok () -> ()
      | Error f -> Alcotest.failf "recheck failed: %a" Cbq.Certify.pp_failure f
    done
  | None -> Alcotest.fail "expected certificate"

(* ---------- cone-of-influence reduction ---------- *)

(* a counter with a free-running observer register and an unused input:
   the observer and the extra input are outside the property's cone *)
let model_with_dead_logic () =
  let b = Netlist.Builder.create "dead-logic" in
  let aig = Netlist.Builder.aig b in
  let enable = Netlist.Builder.input b in
  let junk_input = Netlist.Builder.input b in
  let q0 = Netlist.Builder.latch b ~init:false in
  let q1 = Netlist.Builder.latch b ~init:false in
  let observer = Netlist.Builder.latch b ~init:false in
  Netlist.Builder.connect b q0 (Aig.xor_ aig q0 enable) ;
  Netlist.Builder.connect b q1 (Aig.xor_ aig q1 (Aig.and_ aig q0 enable));
  Netlist.Builder.connect b observer (Aig.xor_ aig observer junk_input);
  Netlist.Builder.set_property b (Aig.not_ (Aig.and_ aig q0 q1));
  Netlist.Builder.finish b

let test_coi_drops_dead_logic () =
  let m = model_with_dead_logic () in
  let reduced, report = Netlist.Coi.reduce m in
  check int "latches 3 -> 2" 2 report.Netlist.Coi.latches_after;
  check int "inputs 2 -> 1" 1 report.Netlist.Coi.inputs_after;
  check int "one latch removed" 1 (List.length report.Netlist.Coi.removed_latches);
  check bool "validates" true (Netlist.Model.validate reduced = Ok ());
  (* the verdict (cex at depth 3) is unchanged *)
  let r = Cbq.Reachability.run reduced in
  (match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified { depth; _ } -> check int "depth preserved" 3 depth
  | v -> Alcotest.fail (Format.asprintf "%a" Cbq.Reachability.pp_verdict v))

let test_coi_tight_models_untouched () =
  List.iter
    (fun (name, param) ->
      let m, _ = Circuits.Registry.build name param in
      let _, report = Netlist.Coi.reduce m in
      check int (name ^ " latches untouched") report.Netlist.Coi.latches_before
        report.Netlist.Coi.latches_after)
    [ ("counter", Some 3); ("peterson", None); ("gray", Some 3) ]

let test_coi_chain_dependency () =
  (* the property reads only the last latch of a chain, but the chain
     pulls every earlier latch into the cone *)
  let b = Netlist.Builder.create "chain" in
  let d = Netlist.Builder.input b in
  let q = Netlist.Builder.latches b ~init:false 4 in
  (match q with
  | [ q0; q1; q2; q3 ] ->
    Netlist.Builder.connect b q0 d;
    Netlist.Builder.connect b q1 q0;
    Netlist.Builder.connect b q2 q1;
    Netlist.Builder.connect b q3 q2;
    Netlist.Builder.set_property b (Aig.not_ q3)
  | _ -> assert false);
  let m = Netlist.Builder.finish b in
  let _, report = Netlist.Coi.reduce m in
  check int "whole chain kept" 4 report.Netlist.Coi.latches_after

(* ---------- ternary evaluation and trace minimization ---------- *)

let test_eval3_basics () =
  let aig = Aig.create () in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  let f = Aig.and_ aig x y in
  let env known v = List.assoc_opt v known in
  check (Alcotest.option bool) "0 & X = 0" (Some false) (Aig.eval3 aig f (env [ (0, false) ]));
  check (Alcotest.option bool) "1 & X = X" None (Aig.eval3 aig f (env [ (0, true) ]));
  check (Alcotest.option bool) "1 & 1 = 1" (Some true)
    (Aig.eval3 aig f (env [ (0, true); (1, true) ]));
  let g = Aig.or_ aig x y in
  check (Alcotest.option bool) "1 | X = 1" (Some true) (Aig.eval3 aig g (env [ (0, true) ]));
  check (Alcotest.option bool) "0 | X = X" None (Aig.eval3 aig g (env [ (0, false) ]));
  (* X-pessimism on reconvergence is allowed: x & ~x is X when x is *)
  check (Alcotest.option bool) "constant under any env" (Some true)
    (Aig.eval3 aig Aig.true_ (env []));
  check (Alcotest.option bool) "bare unknown leaf" None (Aig.eval3 aig x (env []))

let eval3_agrees_with_eval =
  QCheck.Test.make ~name:"eval3 on total assignments = eval" ~count:100
    (QCheck.make ~print:(fun _ -> "<seed>") (QCheck.Gen.int_bound 5_000))
    (fun seed ->
      let cone = Circuits.Comb.random_cone ~vars:4 ~gates:20 ~seed in
      let aig = cone.Circuits.Comb.aig in
      let rec go mask =
        mask >= 16
        || Aig.eval3 aig cone.Circuits.Comb.root (fun v -> Some ((mask lsr v) land 1 = 1))
           = Some (Aig.eval aig cone.Circuits.Comb.root (fun v -> (mask lsr v) land 1 = 1))
           && go (mask + 1)
      in
      go 0)

let eval3_is_sound_abstraction =
  QCheck.Test.make ~name:"eval3 definite answers agree with every completion" ~count:100
    (QCheck.make ~print:(fun _ -> "<seed>") (QCheck.Gen.int_bound 5_000))
    (fun seed ->
      let cone = Circuits.Comb.random_cone ~vars:4 ~gates:20 ~seed in
      let aig = cone.Circuits.Comb.aig in
      let prng = Util.Prng.create seed in
      (* random partial assignment over the 4 variables *)
      let partial =
        List.init 4 (fun v ->
            (v, if Util.Prng.bool prng then Some (Util.Prng.bool prng) else None))
      in
      match Aig.eval3 aig cone.Circuits.Comb.root (fun v -> List.assoc v partial) with
      | None -> true
      | Some definite ->
        (* every completion must produce the same value *)
        let rec go mask =
          mask >= 16
          ||
          let env v =
            match List.assoc v partial with Some b -> b | None -> (mask lsr v) land 1 = 1
          in
          Aig.eval aig cone.Circuits.Comb.root env = definite && go (mask + 1)
        in
        go 0)

let test_trace_minimize_counter () =
  (* the counter only advances on enable: every enable bit is essential,
     so minimization keeps exactly the enables *)
  let m = Circuits.Families.counter ~bits:3 in
  let r = Cbq.Reachability.run m in
  match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified { trace = Some t; _ } ->
    let essential = Cbq.Trace.minimize m t in
    Array.iteri
      (fun k frame ->
        check int (Printf.sprintf "frame %d keeps its enable" k) 1 (List.length frame))
      essential
  | _ -> Alcotest.fail "expected counterexample"

let test_trace_minimize_drops_irrelevant () =
  (* fifo-buggy: the pop input is irrelevant on an all-push overflow run *)
  let m = Circuits.Families.fifo ~buggy:true ~depth_log:2 () in
  let r = Cbq.Reachability.run m in
  match r.Cbq.Reachability.verdict with
  | Cbq.Reachability.Falsified { trace = Some t; _ } ->
    let essential = Cbq.Trace.minimize m t in
    let kept = Array.fold_left (fun acc f -> acc + List.length f) 0 essential in
    let total = Array.fold_left (fun acc f -> acc + List.length f) 0 t.Cbq.Trace.inputs in
    check bool "some inputs dropped" true (kept < total);
    (* soundness: the essential inputs with arbitrary completions still fail *)
    let prng = Util.Prng.create 119 in
    for _ = 1 to 20 do
      let frames =
        Array.map
          (fun frame v ->
            match List.assoc_opt v frame with
            | Some b -> b
            | None -> Util.Prng.bool prng)
          essential
      in
      let completed = Cbq.Trace.of_inputs m frames in
      check bool "completion is still a counterexample" false
        (Netlist.Model.property_holds m
           ~state:(fun v ->
             List.assoc v completed.Cbq.Trace.states.(Array.length completed.Cbq.Trace.states - 1)))
    done
  | _ -> Alcotest.fail "expected counterexample"

(* ---------- universal quantification ---------- *)

let test_forall () =
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 127 in
  let x = Aig.var aig 0 and y = Aig.var aig 1 in
  (* ∀x. x | y = y;  ∀x. x & y = 0 *)
  (match Cbq.Quantify.forall aig checker ~prng (Aig.or_ aig x y) 0 with
  | Ok q, _ -> check int "forall or" y q
  | Error _, _ -> Alcotest.fail "abort");
  (match Cbq.Quantify.forall aig checker ~prng (Aig.and_ aig x y) 0 with
  | Ok q, _ -> check int "forall and" Aig.false_ q
  | Error _, _ -> Alcotest.fail "abort");
  (* duality against exists on a random function *)
  let f = Aig.ite aig x y (Aig.not_ y) in
  match
    ( Cbq.Quantify.forall aig checker ~prng f 0,
      Cbq.Quantify.one aig checker ~prng (Aig.not_ f) 0 )
  with
  | (Ok fa, _), (Ok ex_not, _) ->
    check bool "duality" true (Cnf.Checker.equal checker fa (Aig.not_ ex_not) = Cnf.Checker.Yes)
  | _ -> Alcotest.fail "abort"

(* ---------- BMC with CBQ preprocessing (paper §4) ---------- *)

let test_bmc_preprocessed_oracles () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      match status with
      | Circuits.Registry.Safe -> ()
      | Circuits.Registry.Unsafe d ->
        let r = Baselines.Bmc.run ~max_depth:(d + 3) ~preprocess:true model in
        (match r.Baselines.Bmc.verdict with
        | Baselines.Verdict.Falsified d' -> check int (name ^ " depth") d d'
        | v -> Alcotest.fail (Format.asprintf "%s: %a" name Baselines.Verdict.pp v));
        check bool (name ^ " eliminated some inputs") true
          (r.Baselines.Bmc.inputs_eliminated > 0);
        (match r.Baselines.Bmc.trace with
        | Some t -> check bool (name ^ " trace valid") true (Cbq.Trace.check model t)
        | None -> Alcotest.fail (name ^ ": missing trace")))
    [ ("counter", Some 3); ("fifo-buggy", Some 2); ("accumulator", Some 3);
      ("shift-pattern", Some 5) ]

let test_bmc_preprocessed_no_false_alarm () =
  let model, _ = Circuits.Registry.build "lfsr" (Some 4) in
  let r = Baselines.Bmc.run ~max_depth:12 ~preprocess:true model in
  match r.Baselines.Bmc.verdict with
  | Baselines.Verdict.Undecided _ -> ()
  | v -> Alcotest.fail (Format.asprintf "safe model refuted: %a" Baselines.Verdict.pp v)

(* ---------- failed assumptions (unsat core) ---------- *)

let test_failed_assumptions_chain () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s and b = Sat.Solver.new_var s and c = Sat.Solver.new_var s in
  ignore (Sat.Solver.add_clause s [ Sat.Lit.neg_of a; Sat.Lit.pos b ]);
  ignore (Sat.Solver.add_clause s [ Sat.Lit.neg_of b; Sat.Lit.pos c ]);
  (* a=1 and c=0 clash through the chain; the b assumption is redundant *)
  check bool "unsat" true
    (Sat.Solver.solve ~assumptions:[ Sat.Lit.pos a; Sat.Lit.neg_of c; Sat.Lit.pos b ] s
    = Sat.Solver.Unsat);
  let core = Sat.Solver.failed_assumptions s in
  let core_vars = List.sort compare (List.map Sat.Lit.var core) in
  check (Alcotest.list int) "core is {a, ~c}" [ 0; 2 ] core_vars;
  (* the core alone must still be unsat *)
  check bool "core is itself unsat" true (Sat.Solver.solve ~assumptions:core s = Sat.Solver.Unsat)

let test_failed_assumptions_direct_clash () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  check bool "unsat" true
    (Sat.Solver.solve ~assumptions:[ Sat.Lit.pos a; Sat.Lit.neg_of a ] s = Sat.Solver.Unsat);
  let core_vars = List.sort_uniq compare (List.map Sat.Lit.var (Sat.Solver.failed_assumptions s)) in
  check (Alcotest.list int) "core over the clashing variable" [ 0 ] core_vars

let test_failed_assumptions_level0 () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  ignore (Sat.Solver.add_clause s [ Sat.Lit.neg_of a ]);
  check bool "unsat" true (Sat.Solver.solve ~assumptions:[ Sat.Lit.pos a ] s = Sat.Solver.Unsat);
  (* the database alone refutes the assumption: core is just {a} *)
  check (Alcotest.list int) "singleton core" [ 0 ]
    (List.map Sat.Lit.var (Sat.Solver.failed_assumptions s));
  (* a fresh solve clears the core *)
  ignore (Sat.Solver.solve s);
  check (Alcotest.list int) "cleared" [] (List.map Sat.Lit.var (Sat.Solver.failed_assumptions s))

(* ---------- block quantification ---------- *)

let test_block_matches_sequential () =
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 111 in
  let x = Aig.var aig 0 and y = Aig.var aig 1 and z = Aig.var aig 2 and w = Aig.var aig 3 in
  let f = Aig.or_ aig (Aig.and_ aig x (Aig.xor_ aig y z)) (Aig.and_ aig w (Aig.iff_ aig x z)) in
  let config = { Cbq.Quantify.default with growth_limit = infinity } in
  (match Cbq.Quantify.block ~config aig checker ~prng f ~vars:[ 0; 2 ] with
  | Ok blocked ->
    let seq = Cbq.Quantify.all ~config aig checker ~prng f ~vars:[ 0; 2 ] in
    check bool "block = sequential" true
      (Cnf.Checker.equal checker blocked seq.Cbq.Quantify.lit = Cnf.Checker.Yes);
    check bool "variables gone" true
      ((not (Aig.depends_on aig blocked 0)) && not (Aig.depends_on aig blocked 2))
  | Error _ -> Alcotest.fail "unexpected abort");
  (* empty set and free variables are identities *)
  (match Cbq.Quantify.block aig checker ~prng f ~vars:[] with
  | Ok l -> check int "empty set" f l
  | Error _ -> Alcotest.fail "abort");
  match Cbq.Quantify.block aig checker ~prng f ~vars:[ 9 ] with
  | Ok l -> check int "free variable" f l
  | Error _ -> Alcotest.fail "abort"

let test_block_too_many () =
  let aig = Aig.create () in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 113 in
  let xs = List.init 8 (Aig.var aig) in
  let f = Aig.and_list aig xs in
  Alcotest.check_raises "more than 6 variables rejected"
    (Invalid_argument "Quantify.block: at most 6 variables") (fun () ->
      ignore (Cbq.Quantify.block aig checker ~prng f ~vars:[ 0; 1; 2; 3; 4; 5; 6 ]))

let block_matches_bdd =
  QCheck.Test.make ~name:"block quantification = BDD exists (random cones)" ~count:50
    (QCheck.make ~print:(fun _ -> "<seed>") (QCheck.Gen.int_bound 10_000))
    (fun seed ->
      let cone = Circuits.Comb.random_cone ~vars:4 ~gates:24 ~seed in
      let aig = cone.Circuits.Comb.aig in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create seed in
      let config = { Cbq.Quantify.default with growth_limit = infinity } in
      match Cbq.Quantify.block ~config aig checker ~prng cone.Circuits.Comb.root ~vars:[ 0; 1 ] with
      | Error _ -> false
      | Ok blocked ->
        let man = Bdd.create () in
        let memo = Hashtbl.create 64 in
        Hashtbl.replace memo 0 Bdd.zero;
        let rec to_bdd l =
          let n = Aig.node_of_lit l in
          let b =
            match Hashtbl.find_opt memo n with
            | Some b -> b
            | None ->
              let b =
                if Aig.is_and aig (Aig.lit_of_node n) then begin
                  let f0, f1 = Aig.fanins aig n in
                  Bdd.and_ man (to_bdd f0) (to_bdd f1)
                end
                else
                  match Aig.var_of_lit aig (Aig.lit_of_node n) with
                  | Some v -> Bdd.var_node man v
                  | None -> Bdd.zero (* the constant node *)
              in
              Hashtbl.replace memo n b;
              b
          in
          if Aig.is_complemented l then Bdd.not_ man b else b
        in
        let expected = Bdd.exists man (fun v -> v <= 1) (to_bdd cone.Circuits.Comb.root) in
        let got = to_bdd blocked in
        got = expected)

(* ---------- sequential sweeping ---------- *)

let test_seq_sweep_twin_shift () =
  let model = Circuits.Families.twin_shift ~bits:6 in
  let reduced, report = Cbq.Seq_sweep.reduce model in
  check int "half the latches merged" 6 report.Cbq.Seq_sweep.merged_latches;
  check int "latches after" 6 report.Cbq.Seq_sweep.latches_after;
  check bool "reduced model validates" true (Netlist.Model.validate reduced = Ok ());
  (* the merged property collapses to the trivially true one *)
  check bool "property simplified to a constant" true
    (reduced.Netlist.Model.property = Aig.true_)

let test_seq_sweep_tmr () =
  let model = Circuits.Families.tmr ~bits:4 in
  let reduced, report = Cbq.Seq_sweep.reduce model in
  check bool "replicas merged" true (report.Cbq.Seq_sweep.merged_latches >= 8);
  check bool "validates" true (Netlist.Model.validate reduced = Ok ());
  let r = Cbq.Reachability.run reduced in
  check bool "still proved" true (r.Cbq.Reachability.verdict = Cbq.Reachability.Proved)

let test_seq_sweep_no_false_merges () =
  (* families with no redundant registers must pass through unchanged and
     keep their verdicts *)
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let reduced, report = Cbq.Seq_sweep.reduce model in
      check bool (name ^ " validates") true (Netlist.Model.validate reduced = Ok ());
      ignore report;
      let r = Cbq.Reachability.run reduced in
      match (r.Cbq.Reachability.verdict, status) with
      | Cbq.Reachability.Proved, Circuits.Registry.Safe -> ()
      | Cbq.Reachability.Falsified { depth; _ }, Circuits.Registry.Unsafe d ->
        check int (name ^ " depth preserved") d depth
      | v, _ ->
        Alcotest.fail
          (Format.asprintf "%s: verdict changed by seq-sweep: %a" name
             Cbq.Reachability.pp_verdict v))
    [ ("counter", Some 3); ("fifo-buggy", Some 2); ("gray", Some 3); ("peterson", None);
      ("lfsr", Some 4); ("accumulator", Some 3) ]

let test_seq_sweep_behaviour_preserved () =
  (* random co-simulation of the original and reduced models *)
  let model = Circuits.Families.tmr ~bits:3 in
  let reduced, _ = Cbq.Seq_sweep.reduce model in
  let prng = Util.Prng.create 115 in
  let s1 = ref (Netlist.Model.init_state model) in
  let s2 = ref (Netlist.Model.init_state reduced) in
  for step = 1 to 200 do
    let stim = random_stimulus model prng step in
    (if Netlist.Model.property_holds model ~state:!s1
        <> Netlist.Model.property_holds reduced ~state:!s2
     then Alcotest.failf "property divergence at step %d" step);
    s1 := Netlist.Model.eval_step model ~state:!s1 ~inputs:stim;
    s2 := Netlist.Model.eval_step reduced ~state:!s2 ~inputs:stim
  done

let () =
  Alcotest.run "extensions"
    [
      ( "import",
        [
          Alcotest.test_case "basic cross-manager copy" `Quick test_import_basic;
          Alcotest.test_case "complement and constants" `Quick
            test_import_complemented_and_const;
          Alcotest.test_case "mapping to logic" `Quick test_import_into_mapped_logic;
        ] );
      ( "cec",
        [
          Alcotest.test_case "adder architectures equivalent" `Quick test_cec_adders_equal;
          Alcotest.test_case "injected bug refuted" `Quick test_cec_bug_refuted;
          Alcotest.test_case "same-manager check" `Quick test_cec_same_manager;
          Alcotest.test_case "input count mismatch" `Quick test_cec_input_count_mismatch;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "parse basic" `Quick test_dimacs_parse_basic;
          Alcotest.test_case "multiline, no header" `Quick test_dimacs_multiline_and_header_less;
          Alcotest.test_case "parse errors" `Quick test_dimacs_errors;
          Alcotest.test_case "roundtrip and solve" `Quick test_dimacs_roundtrip_and_solve;
        ] );
      ( "forward",
        [
          Alcotest.test_case "family oracles" `Slow test_forward_oracles;
          Alcotest.test_case "agrees with backward" `Quick test_forward_agrees_with_backward;
        ] );
      ( "dontcare options",
        [
          Alcotest.test_case "simplify_under_care" `Quick test_simplify_under_care;
          Alcotest.test_case "reached-dc traversal exactness" `Slow
            test_reached_dc_reachability;
        ] );
      ( "new families",
        [
          Alcotest.test_case "johnson" `Quick test_johnson_family;
          Alcotest.test_case "tmr" `Quick test_tmr_family;
          Alcotest.test_case "tmr with frontier sweeping" `Quick test_tmr_sweep_frontier;
          Alcotest.test_case "carry-lookahead semantics" `Quick test_cla_cone_semantics;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "backward proofs certify" `Slow test_backward_certificates;
          Alcotest.test_case "forward proofs certify" `Slow test_forward_certificates;
          Alcotest.test_case "bogus invariants rejected" `Quick test_certify_rejects_bogus;
          Alcotest.test_case "deterministic recheck" `Quick test_certificate_cross_engine;
        ] );
      ( "cone of influence",
        [
          Alcotest.test_case "drops dead logic" `Quick test_coi_drops_dead_logic;
          Alcotest.test_case "tight models untouched" `Quick test_coi_tight_models_untouched;
          Alcotest.test_case "chain dependencies kept" `Quick test_coi_chain_dependency;
        ] );
      ( "ternary evaluation",
        [
          Alcotest.test_case "x-propagation rules" `Quick test_eval3_basics;
          QCheck_alcotest.to_alcotest eval3_agrees_with_eval;
          QCheck_alcotest.to_alcotest eval3_is_sound_abstraction;
        ] );
      ( "trace minimization",
        [
          Alcotest.test_case "counter keeps every enable" `Quick test_trace_minimize_counter;
          Alcotest.test_case "drops irrelevant inputs" `Quick
            test_trace_minimize_drops_irrelevant;
        ] );
      ("forall", [ Alcotest.test_case "universal quantification" `Quick test_forall ]);
      ( "bmc preprocessing",
        [
          Alcotest.test_case "oracles preserved" `Slow test_bmc_preprocessed_oracles;
          Alcotest.test_case "no false alarms" `Quick test_bmc_preprocessed_no_false_alarm;
        ] );
      ( "unsat cores",
        [
          Alcotest.test_case "chain core" `Quick test_failed_assumptions_chain;
          Alcotest.test_case "direct clash" `Quick test_failed_assumptions_direct_clash;
          Alcotest.test_case "level-0 refutation" `Quick test_failed_assumptions_level0;
        ] );
      ( "block quantification",
        [
          Alcotest.test_case "matches sequential" `Quick test_block_matches_sequential;
          Alcotest.test_case "size guard" `Quick test_block_too_many;
          QCheck_alcotest.to_alcotest block_matches_bdd;
        ] );
      ( "sequential sweeping",
        [
          Alcotest.test_case "twin shift halves" `Quick test_seq_sweep_twin_shift;
          Alcotest.test_case "tmr replicas" `Quick test_seq_sweep_tmr;
          Alcotest.test_case "no false merges" `Slow test_seq_sweep_no_false_merges;
          Alcotest.test_case "co-simulation" `Quick test_seq_sweep_behaviour_preserved;
        ] );
    ]
