test/test_sweep.ml: Aig Alcotest Cnf List QCheck QCheck_alcotest Sweep Util
