test/test_netlist.ml: Aig Alcotest Circuits Filename Fun List Netlist String Sys Util
