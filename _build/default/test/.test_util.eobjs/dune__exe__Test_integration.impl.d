test/test_integration.ml: Aig Alcotest Array Baselines Cbq Circuits Cnf Format List Netlist Printf String Util
