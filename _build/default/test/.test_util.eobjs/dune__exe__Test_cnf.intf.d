test/test_cnf.mli:
