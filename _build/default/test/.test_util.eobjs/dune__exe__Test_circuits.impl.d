test/test_circuits.ml: Aig Alcotest Circuits Fun List Netlist Printf Util
