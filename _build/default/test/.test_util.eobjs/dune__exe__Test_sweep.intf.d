test/test_sweep.mli:
