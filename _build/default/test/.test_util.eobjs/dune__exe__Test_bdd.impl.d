test/test_bdd.ml: Alcotest Bdd List Printf QCheck QCheck_alcotest
