test/test_extensions.ml: Aig Alcotest Array Baselines Bdd Cbq Circuits Cnf Format Hashtbl List Netlist Printf QCheck QCheck_alcotest Sat Sweep Synth Util
