test/test_aig.ml: Aig Alcotest Int64 List Option Printf QCheck QCheck_alcotest
