test/test_cbq.ml: Aig Alcotest Array Bdd Cbq Circuits Cnf Format Fun List Netlist Option Printf QCheck QCheck_alcotest Util
