test/test_synth.ml: Aig Alcotest Cnf QCheck QCheck_alcotest Sweep Synth Util
