test/test_baselines.ml: Aig Alcotest Baselines Cbq Circuits Cnf Format List Netlist Util
