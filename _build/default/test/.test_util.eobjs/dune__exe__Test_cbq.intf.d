test/test_cbq.mli:
