test/test_util.ml: Alcotest Array List QCheck QCheck_alcotest Util
