test/test_aig.mli:
