test/test_cnf.ml: Aig Alcotest Cnf Format Fun List QCheck QCheck_alcotest Sat
