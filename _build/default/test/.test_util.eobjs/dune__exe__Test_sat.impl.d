test/test_sat.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest Sat String
