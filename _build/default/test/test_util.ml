(* Unit and property tests for the utility substrate. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- Vec_int ---------- *)

let test_vec_basic () =
  let v = Util.Vec_int.create () in
  check bool "fresh vector is empty" true (Util.Vec_int.is_empty v);
  Util.Vec_int.push v 10;
  Util.Vec_int.push v 20;
  Util.Vec_int.push v 30;
  check int "length after pushes" 3 (Util.Vec_int.length v);
  check int "get 0" 10 (Util.Vec_int.get v 0);
  check int "get 2" 30 (Util.Vec_int.get v 2);
  Util.Vec_int.set v 1 99;
  check int "set/get" 99 (Util.Vec_int.get v 1);
  check int "top" 30 (Util.Vec_int.top v);
  check int "pop" 30 (Util.Vec_int.pop v);
  check int "length after pop" 2 (Util.Vec_int.length v)

let test_vec_bounds () =
  let v = Util.Vec_int.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec_int: index 3 out of bounds [0,3)")
    (fun () -> ignore (Util.Vec_int.get v 3));
  Alcotest.check_raises "negative index" (Invalid_argument "Vec_int: index -1 out of bounds [0,3)")
    (fun () -> ignore (Util.Vec_int.get v (-1)));
  let e = Util.Vec_int.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec_int.pop: empty") (fun () ->
      ignore (Util.Vec_int.pop e))

let test_vec_resize () =
  let v = Util.Vec_int.create () in
  Util.Vec_int.resize v 5 7;
  check int "resized length" 5 (Util.Vec_int.length v);
  check int "fill value" 7 (Util.Vec_int.get v 4);
  Util.Vec_int.resize v 2 0;
  check int "truncated" 2 (Util.Vec_int.length v);
  Util.Vec_int.clear v;
  check bool "cleared" true (Util.Vec_int.is_empty v)

let test_vec_remove_unordered () =
  let v = Util.Vec_int.of_list [ 1; 2; 3; 4 ] in
  Util.Vec_int.remove_unordered v 1;
  check int "length" 3 (Util.Vec_int.length v);
  let l = List.sort compare (Util.Vec_int.to_list v) in
  check (Alcotest.list int) "kept the rest" [ 1; 3; 4 ] l

let test_vec_grow_large () =
  let v = Util.Vec_int.create ~capacity:1 () in
  for i = 0 to 9999 do
    Util.Vec_int.push v i
  done;
  check int "10000 pushes" 10000 (Util.Vec_int.length v);
  check int "spot value" 1234 (Util.Vec_int.get v 1234);
  check int "fold sum" (9999 * 10000 / 2) (Util.Vec_int.fold ( + ) 0 v)

let test_vec_iterators () =
  let v = Util.Vec_int.of_list [ 5; 6; 7 ] in
  let acc = ref [] in
  Util.Vec_int.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check (Alcotest.list (Alcotest.pair int int)) "iteri" [ (0, 5); (1, 6); (2, 7) ] (List.rev !acc);
  check bool "exists" true (Util.Vec_int.exists (fun x -> x = 6) v);
  check bool "not exists" false (Util.Vec_int.exists (fun x -> x = 8) v);
  Util.Vec_int.sort v;
  check (Alcotest.list int) "sort" [ 5; 6; 7 ] (Util.Vec_int.to_list v)

let test_vec_blit_push () =
  let a = Util.Vec_int.of_list [ 1; 2 ] in
  let b = Util.Vec_int.of_list [ 3; 4; 5 ] in
  Util.Vec_int.blit_push a b;
  check (Alcotest.list int) "concatenated" [ 1; 2; 3; 4; 5 ] (Util.Vec_int.to_list a)

let vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list small_int)
    (fun l -> Util.Vec_int.to_list (Util.Vec_int.of_list l) = l)

let vec_array_roundtrip =
  QCheck.Test.make ~name:"vec of_array/to_array roundtrip" ~count:200
    QCheck.(array small_int)
    (fun a -> Util.Vec_int.to_array (Util.Vec_int.of_array a) = a)

let vec_push_pop =
  QCheck.Test.make ~name:"pushes then pops return reversed" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let v = Util.Vec_int.create () in
      List.iter (Util.Vec_int.push v) l;
      let popped = List.init (List.length l) (fun _ -> Util.Vec_int.pop v) in
      popped = List.rev l)

(* ---------- Union_find ---------- *)

let test_uf_basic () =
  let t = Util.Union_find.create 5 in
  check bool "initially separate" false (Util.Union_find.same t 0 1);
  ignore (Util.Union_find.union t 0 1);
  check bool "united" true (Util.Union_find.same t 0 1);
  ignore (Util.Union_find.union t 2 3);
  check bool "separate classes" false (Util.Union_find.same t 1 2);
  ignore (Util.Union_find.union t 1 3);
  check bool "transitively united" true (Util.Union_find.same t 0 2);
  check int "classes: {0,1,2,3} {4}" 2 (Util.Union_find.class_count t)

let test_uf_ensure () =
  let t = Util.Union_find.create 0 in
  Util.Union_find.ensure t 10;
  check bool "grown element valid" true (Util.Union_find.find t 10 = 10);
  ignore (Util.Union_find.union t 10 3);
  check bool "union after grow" true (Util.Union_find.same t 3 10)

let test_uf_union_into () =
  let t = Util.Union_find.create 4 in
  Util.Union_find.union_into t ~root:0 1;
  Util.Union_find.union_into t ~root:0 2;
  check int "representative is the root" 0 (Util.Union_find.find t 1);
  check int "representative is the root" 0 (Util.Union_find.find t 2)

let uf_equivalence =
  QCheck.Test.make ~name:"union-find agrees with naive partition" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let t = Util.Union_find.create 20 in
      (* naive model: list of class lists *)
      let naive = Array.init 20 (fun i -> i) in
      let rec naive_find i = if naive.(i) = i then i else naive_find naive.(i) in
      List.iter
        (fun (a, b) ->
          ignore (Util.Union_find.union t a b);
          let ra = naive_find a and rb = naive_find b in
          if ra <> rb then naive.(rb) <- ra)
        pairs;
      List.for_all
        (fun (a, b) ->
          Util.Union_find.same t a b = (naive_find a = naive_find b))
        (List.concat_map (fun a -> List.map (fun b -> (a, b)) [ 0; 5; 10; 19 ]) [ 0; 3; 7; 19 ]))

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 100 do
    check bool "same stream" true (Util.Prng.next64 a = Util.Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Util.Prng.next64 a <> Util.Prng.next64 b then differs := true
  done;
  check bool "different seeds differ" true !differs

let test_prng_int_bounds () =
  let p = Util.Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Util.Prng.int p 17 in
    check bool "0 <= x < 17" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound zero rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Util.Prng.int p 0))

let test_prng_float_range () =
  let p = Util.Prng.create 9 in
  for _ = 1 to 1000 do
    let f = Util.Prng.float p in
    check bool "0 <= f < 1" true (f >= 0.0 && f < 1.0)
  done

let test_prng_split_independent () =
  let p = Util.Prng.create 5 in
  let q = Util.Prng.split p in
  (* both streams usable and distinct *)
  let a = Util.Prng.next64 p and b = Util.Prng.next64 q in
  check bool "split stream differs" true (a <> b)

let test_prng_bool_balanced () =
  let p = Util.Prng.create 3 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Util.Prng.bool p then incr trues
  done;
  check bool "roughly balanced" true (!trues > 400 && !trues < 600)

(* ---------- Luby ---------- *)

let test_luby_prefix () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  let got = List.init 15 (fun i -> Util.Luby.term (i + 1)) in
  check (Alcotest.list int) "first 15 terms" expected got

let test_luby_powers () =
  (* term (2^k - 1) = 2^(k-1) *)
  check int "term 31" 16 (Util.Luby.term 31);
  check int "term 63" 32 (Util.Luby.term 63);
  Alcotest.check_raises "index 0 rejected" (Invalid_argument "Luby.term: index must be >= 1")
    (fun () -> ignore (Util.Luby.term 0))

(* ---------- Stopwatch ---------- *)

let test_stopwatch () =
  let r, dt = Util.Stopwatch.time (fun () -> 21 * 2) in
  check int "result passed through" 42 r;
  check bool "non-negative time" true (dt >= 0.0)

let () =
  Alcotest.run "util"
    [
      ( "vec_int",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "bounds checking" `Quick test_vec_bounds;
          Alcotest.test_case "resize/clear" `Quick test_vec_resize;
          Alcotest.test_case "remove_unordered" `Quick test_vec_remove_unordered;
          Alcotest.test_case "large growth" `Quick test_vec_grow_large;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          Alcotest.test_case "blit_push" `Quick test_vec_blit_push;
          QCheck_alcotest.to_alcotest vec_roundtrip;
          QCheck_alcotest.to_alcotest vec_array_roundtrip;
          QCheck_alcotest.to_alcotest vec_push_pop;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "union/find/same" `Quick test_uf_basic;
          Alcotest.test_case "ensure grows" `Quick test_uf_ensure;
          Alcotest.test_case "union_into keeps root" `Quick test_uf_union_into;
          QCheck_alcotest.to_alcotest uf_equivalence;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "bool balance" `Quick test_prng_bool_balanced;
        ] );
      ( "luby",
        [
          Alcotest.test_case "sequence prefix" `Quick test_luby_prefix;
          Alcotest.test_case "power positions" `Quick test_luby_powers;
        ] );
      ("stopwatch", [ Alcotest.test_case "time wrapper" `Quick test_stopwatch ]);
    ]
