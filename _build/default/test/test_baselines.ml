(* Baseline-engine tests: every engine must agree with the family oracles,
   respect its resource limits, and produce replayable traces where it
   claims them. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let verdict_t =
  Alcotest.testable Baselines.Verdict.pp ( = )

let families =
  [
    ("counter", Some 3);
    ("counter-even", Some 4);
    ("twin-shift", Some 4);
    ("shift-pattern", Some 4);
    ("lfsr", Some 4);
    ("fifo", Some 2);
    ("fifo-buggy", Some 2);
    ("accumulator", Some 3);
    ("gray", Some 3);
    ("arbiter", Some 3);
    ("traffic", None);
    ("peterson", None);
  ]

let expect_verdict name (status : Circuits.Registry.status) (v : Baselines.Verdict.t) =
  match (status, v) with
  | Circuits.Registry.Safe, Baselines.Verdict.Proved -> ()
  | Circuits.Registry.Unsafe d, Baselines.Verdict.Falsified d' ->
    check int (name ^ " cex depth") d d'
  | _, v ->
    Alcotest.fail (Format.asprintf "%s: unexpected verdict %a" name Baselines.Verdict.pp v)

let test_verdict_helpers () =
  check bool "proved vs safe" true
    (Baselines.Verdict.agrees_with_oracle Baselines.Verdict.Proved ~safe:true ~depth:None);
  check bool "proved vs unsafe" false
    (Baselines.Verdict.agrees_with_oracle Baselines.Verdict.Proved ~safe:false ~depth:None);
  check bool "falsified depth match" true
    (Baselines.Verdict.agrees_with_oracle (Baselines.Verdict.Falsified 3) ~safe:false
       ~depth:(Some 3));
  check bool "falsified depth mismatch" false
    (Baselines.Verdict.agrees_with_oracle (Baselines.Verdict.Falsified 4) ~safe:false
       ~depth:(Some 3));
  check bool "undecided never wrong" true
    (Baselines.Verdict.agrees_with_oracle (Baselines.Verdict.Undecided "x") ~safe:true
       ~depth:None)

(* ---------- BDD engines ---------- *)

let test_bdd_backward_oracles () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let r = Baselines.Bdd_mc.backward model in
      expect_verdict ("bdd-bwd " ^ name) status r.Baselines.Bdd_mc.verdict)
    families

let test_bdd_forward_oracles () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let r = Baselines.Bdd_mc.forward model in
      expect_verdict ("bdd-fwd " ^ name) status r.Baselines.Bdd_mc.verdict)
    families

let test_bdd_node_limit () =
  (* a tiny quota must surface as Undecided, not a crash or wrong verdict *)
  let model, _ = Circuits.Registry.build "gray" (Some 5) in
  let r = Baselines.Bdd_mc.backward ~node_limit:50 model in
  check verdict_t "node limit reported" (Baselines.Verdict.Undecided "node limit")
    r.Baselines.Bdd_mc.verdict;
  check bool "peak within an order of the quota" true (r.Baselines.Bdd_mc.peak_nodes <= 100)

let test_bdd_iteration_profile () =
  let model, _ = Circuits.Registry.build "counter" (Some 3) in
  let r = Baselines.Bdd_mc.backward model in
  check int "iterations = depth" 7 (List.length r.Baselines.Bdd_mc.iterations);
  List.iter
    (fun it -> check bool "sizes recorded" true (it.Baselines.Bdd_mc.frontier_nodes >= 0))
    r.Baselines.Bdd_mc.iterations

(* ---------- BMC ---------- *)

let test_bmc_finds_cex () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      match status with
      | Circuits.Registry.Safe -> ()
      | Circuits.Registry.Unsafe d ->
        let r = Baselines.Bmc.run ~max_depth:(d + 5) model in
        expect_verdict ("bmc " ^ name) status r.Baselines.Bmc.verdict;
        (match r.Baselines.Bmc.trace with
        | Some t ->
          check bool (name ^ " trace replays") true (Cbq.Trace.check model t);
          check int (name ^ " trace length") d (Cbq.Trace.length t)
        | None -> Alcotest.fail (name ^ ": bmc should produce a trace")))
    families

let test_bmc_bound_respected () =
  let model, _ = Circuits.Registry.build "counter" (Some 4) in
  (* cex at 15; bound 5 must come back undecided *)
  let r = Baselines.Bmc.run ~max_depth:5 model in
  (match r.Baselines.Bmc.verdict with
  | Baselines.Verdict.Undecided _ -> ()
  | v -> Alcotest.fail (Format.asprintf "expected bound, got %a" Baselines.Verdict.pp v));
  check bool "no trace below the bound" true (r.Baselines.Bmc.trace = None)

let test_bmc_with_frontier () =
  let model, _ = Circuits.Registry.build "counter" (Some 3) in
  let aig = Netlist.Model.aig model in
  (* frontier = counter value 5 (101) *)
  let state_vars = Netlist.Model.state_vars model in
  let lits =
    List.mapi
      (fun i v ->
        let q = Aig.var aig v in
        if (5 lsr i) land 1 = 1 then q else Aig.not_ q)
      state_vars
  in
  let frontier = Aig.and_list aig lits in
  let r = Baselines.Bmc.run_with_frontier model ~frontier ~max_depth:10 in
  (match r.Baselines.Bmc.verdict with
  | Baselines.Verdict.Falsified d -> check int "value 5 reached at step 5" 5 d
  | v -> Alcotest.fail (Format.asprintf "expected falsified, got %a" Baselines.Verdict.pp v))

(* ---------- induction ---------- *)

let test_induction_oracles () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let r = Baselines.Induction.run ~max_k:30 model in
      expect_verdict ("induction " ^ name) status r.Baselines.Induction.verdict;
      match (status, r.Baselines.Induction.trace) with
      | Circuits.Registry.Unsafe _, Some t ->
        check bool (name ^ " trace replays") true (Cbq.Trace.check model t)
      | Circuits.Registry.Unsafe _, None -> Alcotest.fail (name ^ ": missing trace")
      | Circuits.Registry.Safe, _ -> ())
    families

let test_induction_k_zero_inductive () =
  (* the even counter's property is inductive at k = 0 *)
  let model, _ = Circuits.Registry.build "counter-even" (Some 4) in
  let r = Baselines.Induction.run model in
  check verdict_t "proved" Baselines.Verdict.Proved r.Baselines.Induction.verdict;
  check int "k = 0 suffices" 0 r.Baselines.Induction.k_used

let test_induction_needs_depth () =
  (* a deliberately non-0-inductive safe model: two latches, bit0 toggles,
     bit1 holds; property "state != 2". The unreachable state 3 satisfies
     the property but steps into state 2, so k = 0 fails; its only
     predecessor violates the property, so k = 1 with simple paths
     succeeds. *)
  let b = Netlist.Builder.create "toggle-hold" in
  let aig = Netlist.Builder.aig b in
  let q0 = Netlist.Builder.latch b ~init:false in
  let q1 = Netlist.Builder.latch b ~init:false in
  Netlist.Builder.connect b q0 (Aig.not_ q0);
  Netlist.Builder.connect b q1 q1;
  Netlist.Builder.set_property b (Aig.not_ (Aig.and_ aig q1 (Aig.not_ q0)));
  let model = Netlist.Builder.finish b in
  let r = Baselines.Induction.run ~max_k:10 model in
  check verdict_t "proved" Baselines.Verdict.Proved r.Baselines.Induction.verdict;
  check bool "k > 0 needed" true (r.Baselines.Induction.k_used > 0)

let test_induction_without_simple_path () =
  (* without simple-path constraints induction may fail to converge, but
     must never produce a wrong verdict *)
  let model, _ = Circuits.Registry.build "lfsr" (Some 3) in
  let r = Baselines.Induction.run ~max_k:8 ~simple_path:false model in
  match r.Baselines.Induction.verdict with
  | Baselines.Verdict.Proved | Baselines.Verdict.Undecided _ -> ()
  | Baselines.Verdict.Falsified _ -> Alcotest.fail "lfsr is safe"

(* ---------- cofactor pre-image ---------- *)

let test_cofactor_oracles () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let r = Baselines.Cofactor_preimage.run model in
      expect_verdict ("cofactor " ^ name) status r.Baselines.Cofactor_preimage.verdict)
    families

let test_cofactor_preimage_matches_cbq () =
  (* the enumerated pre-image and the circuit-quantified pre-image are the
     same set *)
  let model, _ = Circuits.Registry.build "fifo-buggy" (Some 2) in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create 61 in
  let bad = Aig.not_ model.Netlist.Model.property in
  let cbq = Cbq.Preimage.compute model checker ~prng ~frontier:bad ~extra_vars:[] in
  check bool "cbq fully quantified" true (cbq.Cbq.Preimage.kept = []);
  let input_vars = Netlist.Model.input_vars model in
  let support =
    Aig.support aig (Cbq.Preimage.substitute model bad)
  in
  let quantify = List.filter (fun v -> List.mem v input_vars) support in
  match
    Baselines.Cofactor_preimage.preimage model checker ~frontier:bad ~quantify
      ~max_enumerations:1_000
  with
  | None -> Alcotest.fail "enumeration should finish"
  | Some (enumerated, stats) ->
    check bool "enumeration used solutions" true (stats.Baselines.Cofactor_preimage.enumerations > 0);
    (match Cnf.Checker.equal checker enumerated cbq.Cbq.Preimage.lit with
    | Cnf.Checker.Yes -> ()
    | Cnf.Checker.No | Cnf.Checker.Maybe -> Alcotest.fail "pre-images differ")

let test_cofactor_budget () =
  let model, _ = Circuits.Registry.build "arbiter" (Some 4) in
  let r = Baselines.Cofactor_preimage.run ~max_enumerations:1 model in
  match r.Baselines.Cofactor_preimage.verdict with
  | Baselines.Verdict.Undecided _ -> ()
  | Baselines.Verdict.Proved ->
    (* a 1-enumeration budget can only succeed if the bad set was empty *)
    check int "only possible with zero enumerations" 0
      r.Baselines.Cofactor_preimage.total_enumerations
  | Baselines.Verdict.Falsified _ -> Alcotest.fail "arbiter is safe"

(* ---------- hybrid ---------- *)

let test_hybrid_oracles () =
  List.iter
    (fun (name, param) ->
      let model, status = Circuits.Registry.build name param in
      let r = Baselines.Hybrid.run model in
      expect_verdict ("hybrid " ^ name) status r.Baselines.Hybrid.verdict)
    families

let test_hybrid_division_of_labour () =
  let model, _ = Circuits.Registry.build "arbiter" (Some 4) in
  let r = Baselines.Hybrid.run model in
  check verdict_t "proved" Baselines.Verdict.Proved r.Baselines.Hybrid.verdict;
  (* the iteration log partitions the inputs between CBQ and enumeration *)
  let n_inputs = 4 in
  List.iter
    (fun it ->
      check bool "partition within the input count" true
        (it.Baselines.Hybrid.eliminated_by_cbq + it.Baselines.Hybrid.enumerated <= n_inputs))
    r.Baselines.Hybrid.iterations

let () =
  Alcotest.run "baselines"
    [
      ("verdict", [ Alcotest.test_case "oracle agreement" `Quick test_verdict_helpers ]);
      ( "bdd",
        [
          Alcotest.test_case "backward vs oracles" `Slow test_bdd_backward_oracles;
          Alcotest.test_case "forward vs oracles" `Slow test_bdd_forward_oracles;
          Alcotest.test_case "node limit" `Quick test_bdd_node_limit;
          Alcotest.test_case "iteration profile" `Quick test_bdd_iteration_profile;
        ] );
      ( "bmc",
        [
          Alcotest.test_case "finds counterexamples" `Slow test_bmc_finds_cex;
          Alcotest.test_case "respects the bound" `Quick test_bmc_bound_respected;
          Alcotest.test_case "arbitrary frontier targets" `Quick test_bmc_with_frontier;
        ] );
      ( "induction",
        [
          Alcotest.test_case "vs oracles" `Slow test_induction_oracles;
          Alcotest.test_case "k=0 inductive property" `Quick test_induction_k_zero_inductive;
          Alcotest.test_case "needs induction depth" `Quick test_induction_needs_depth;
          Alcotest.test_case "without simple path" `Quick test_induction_without_simple_path;
        ] );
      ( "cofactor",
        [
          Alcotest.test_case "vs oracles" `Slow test_cofactor_oracles;
          Alcotest.test_case "pre-image matches CBQ" `Quick test_cofactor_preimage_matches_cbq;
          Alcotest.test_case "enumeration budget" `Quick test_cofactor_budget;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "vs oracles" `Slow test_hybrid_oracles;
          Alcotest.test_case "division of labour" `Quick test_hybrid_division_of_labour;
        ] );
    ]
