(* Benchmark-family tests: the generators must produce valid models whose
   simulated behaviour matches their documented verification status, and
   the combinational cones must compute their specified functions. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- word-level arithmetic helpers ---------- *)

let eval_word aig word env =
  List.fold_left
    (fun (acc, bit) l -> ((acc lor if Aig.eval aig l env then 1 lsl bit else 0), bit + 1))
    (0, 0) word
  |> fst

let test_arith_add () =
  let aig = Aig.create () in
  let xs = List.init 4 (Aig.var aig) in
  let ys = List.init 4 (fun i -> Aig.var aig (i + 4)) in
  let sum, carry = Circuits.Arith.add aig xs ys ~cin:Aig.false_ in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let env v = if v < 4 then (a lsr v) land 1 = 1 else (b lsr (v - 4)) land 1 = 1 in
      let s = eval_word aig sum env in
      let c = Aig.eval aig carry env in
      check int (Printf.sprintf "sum %d+%d" a b) ((a + b) land 15) s;
      check bool (Printf.sprintf "carry %d+%d" a b) (a + b >= 16) c
    done
  done

let test_arith_sub () =
  let aig = Aig.create () in
  let xs = List.init 4 (Aig.var aig) in
  let ys = List.init 4 (fun i -> Aig.var aig (i + 4)) in
  let diff, no_borrow = Circuits.Arith.sub aig xs ys in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let env v = if v < 4 then (a lsr v) land 1 = 1 else (b lsr (v - 4)) land 1 = 1 in
      check int (Printf.sprintf "diff %d-%d" a b) ((a - b) land 15) (eval_word aig diff env);
      check bool (Printf.sprintf "borrow %d-%d" a b) (a >= b) (Aig.eval aig no_borrow env)
    done
  done

let test_arith_comparisons () =
  let aig = Aig.create () in
  let xs = List.init 4 (Aig.var aig) in
  for k = 0 to 16 do
    let eq = Circuits.Arith.equal_const aig xs k in
    let lt = Circuits.Arith.less_const aig xs k in
    for a = 0 to 15 do
      let env v = (a lsr v) land 1 = 1 in
      check bool (Printf.sprintf "eq %d=%d" a k) (a = k) (Aig.eval aig eq env);
      check bool (Printf.sprintf "lt %d<%d" a k) (a < k) (Aig.eval aig lt env)
    done
  done

let test_arith_popcount_onehot () =
  let aig = Aig.create () in
  let xs = List.init 5 (Aig.var aig) in
  let pc = Circuits.Arith.popcount aig xs in
  let amo = Circuits.Arith.at_most_one aig xs in
  let exo = Circuits.Arith.exactly_one aig xs in
  for a = 0 to 31 do
    let env v = (a lsr v) land 1 = 1 in
    let ones = List.length (List.filter (fun v -> env v) [ 0; 1; 2; 3; 4 ]) in
    check int (Printf.sprintf "popcount %d" a) ones (eval_word aig pc env);
    check bool (Printf.sprintf "amo %d" a) (ones <= 1) (Aig.eval aig amo env);
    check bool (Printf.sprintf "exo %d" a) (ones = 1) (Aig.eval aig exo env)
  done

let test_arith_mux_rotate () =
  let aig = Aig.create () in
  let sel = Aig.var aig 0 in
  let a = [ Aig.var aig 1; Aig.var aig 2 ] and b = [ Aig.var aig 3; Aig.var aig 4 ] in
  let m = Circuits.Arith.mux aig sel ~then_:a ~else_:b in
  let env_then v = v = 0 || v = 1 in
  check int "mux selects then" 1 (eval_word aig m env_then);
  let env_else v = v = 3 in
  check int "mux selects else" 1 (eval_word aig m env_else);
  check (Alcotest.list int) "rotate [1;2;3]" [ 3; 1; 2 ] (Circuits.Arith.rotate_left [ 1; 2; 3 ]);
  check (Alcotest.list int) "rotate singleton" [ 9 ] (Circuits.Arith.rotate_left [ 9 ])

(* ---------- combinational cones ---------- *)

let test_adder_cone () =
  let c = Circuits.Comb.adder_carry 3 in
  let aig = c.Circuits.Comb.aig in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let env v = if v < 3 then (a lsr v) land 1 = 1 else (b lsr (v - 3)) land 1 = 1 in
      check bool
        (Printf.sprintf "carry(%d,%d)" a b)
        (a + b >= 8)
        (Aig.eval aig c.Circuits.Comb.root env)
    done
  done

let test_multiplier_cone () =
  let n = 3 in
  let c = Circuits.Comb.multiplier_bit n in
  let aig = c.Circuits.Comb.aig in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let env v = if v < n then (a lsr v) land 1 = 1 else (b lsr (v - n)) land 1 = 1 in
      let expected = ((a * b) lsr (n - 1)) land 1 = 1 in
      check bool (Printf.sprintf "mult bit(%d,%d)" a b) expected
        (Aig.eval aig c.Circuits.Comb.root env)
    done
  done

let test_hwb_cone () =
  let n = 5 in
  let c = Circuits.Comb.hwb n in
  let aig = c.Circuits.Comb.aig in
  for a = 0 to (1 lsl n) - 1 do
    let env v = (a lsr v) land 1 = 1 in
    let weight = List.length (List.filter env (List.init n Fun.id)) in
    let expected = weight > 0 && (a lsr (weight - 1)) land 1 = 1 in
    check bool (Printf.sprintf "hwb(%d)" a) expected (Aig.eval aig c.Circuits.Comb.root env)
  done

let test_parity_majority_cones () =
  let n = 5 in
  let p = Circuits.Comb.parity n and m = Circuits.Comb.majority n in
  for a = 0 to (1 lsl n) - 1 do
    let env v = (a lsr v) land 1 = 1 in
    let ones = List.length (List.filter env (List.init n Fun.id)) in
    check bool (Printf.sprintf "parity(%d)" a) (ones mod 2 = 1)
      (Aig.eval p.Circuits.Comb.aig p.Circuits.Comb.root env);
    check bool (Printf.sprintf "majority(%d)" a) (ones > n / 2)
      (Aig.eval m.Circuits.Comb.aig m.Circuits.Comb.root env)
  done

let test_random_cone_deterministic () =
  let c1 = Circuits.Comb.random_cone ~vars:5 ~gates:30 ~seed:4 in
  let c2 = Circuits.Comb.random_cone ~vars:5 ~gates:30 ~seed:4 in
  check int "same seed, same structure" c1.Circuits.Comb.root c2.Circuits.Comb.root;
  (* different managers, but the literal values coincide because the
     construction is replayed identically *)
  check bool "gates produced" true (Aig.size c1.Circuits.Comb.aig c1.Circuits.Comb.root > 0)

(* ---------- sequential families: simulation oracles ---------- *)

let simulate_steps m k inputs_for_step =
  let state = ref (Netlist.Model.init_state m) in
  let violated = ref None in
  for step = 1 to k do
    state := Netlist.Model.eval_step m ~state:!state ~inputs:(inputs_for_step step);
    if !violated = None && not (Netlist.Model.property_holds m ~state:!state) then
      violated := Some step
  done;
  !violated

let all_true _ _ = true
let all_false _ _ = false

(* one coherent random assignment per step (the env is queried many times
   within a step, so it must be stable) *)
let random_stimulus m prng _step =
  let vals = List.map (fun v -> (v, Util.Prng.bool prng)) (Netlist.Model.input_vars m) in
  fun v -> (try List.assoc v vals with Not_found -> false)

let test_counter_reaches_bad () =
  let bits = 4 in
  let m = Circuits.Families.counter ~bits in
  check bool "valid" true (Netlist.Model.validate m = Ok ());
  (* with enable high, first violation at exactly 2^bits - 1 *)
  let first = simulate_steps m 20 (fun _ -> all_true ()) in
  check (Alcotest.option int) "violation step" (Some ((1 lsl bits) - 1)) first;
  (* with enable low, never *)
  let never = simulate_steps m 40 (fun _ -> all_false ()) in
  check (Alcotest.option int) "no violation when idle" None never

let test_counter_even_safe_sim () =
  let m = Circuits.Families.counter_even ~bits:5 in
  check (Alcotest.option int) "no violation in 100 steps" None
    (simulate_steps m 100 (fun _ -> all_true ()))

let test_gray_safe_sim () =
  let m = Circuits.Families.gray_counter ~bits:4 in
  let prng = Util.Prng.create 31 in
  check (Alcotest.option int) "random stimulus" None
    (simulate_steps m 200 (random_stimulus m prng))

let test_twin_shift_safe_sim () =
  let m = Circuits.Families.twin_shift ~bits:5 in
  let prng = Util.Prng.create 33 in
  check (Alcotest.option int) "random stimulus" None
    (simulate_steps m 200 (random_stimulus m prng))

let test_shift_pattern_depth () =
  let bits = 5 in
  let m = Circuits.Families.shift_pattern ~bits in
  (* drive exactly the alternating pattern: oldest slot needs a 1, so the
     first input must be 1 and inputs alternate *)
  let first =
    simulate_steps m (2 * bits) (fun step _ -> (step - 1) mod 2 = 0)
  in
  check (Alcotest.option int) "violation at depth bits" (Some bits) first

let test_lfsr_never_zero () =
  let m = Circuits.Families.lfsr ~bits:5 in
  let prng = Util.Prng.create 35 in
  check (Alcotest.option int) "zero never reached" None
    (simulate_steps m 300 (random_stimulus m prng))

let test_arbiter_sim () =
  let m = Circuits.Families.rr_arbiter ~n:4 in
  let prng = Util.Prng.create 37 in
  check (Alcotest.option int) "at most one grant" None
    (simulate_steps m 200 (random_stimulus m prng))

let test_traffic_sim () =
  let m = Circuits.Families.traffic () in
  let prng = Util.Prng.create 39 in
  check (Alcotest.option int) "greens exclusive" None
    (simulate_steps m 300 (random_stimulus m prng))

let test_fifo_guarded_sim () =
  let m = Circuits.Families.fifo ~depth_log:2 () in
  let prng = Util.Prng.create 41 in
  check (Alcotest.option int) "occupancy bounded" None
    (simulate_steps m 300 (random_stimulus m prng))

let test_fifo_buggy_depth () =
  let depth_log = 2 in
  let m = Circuits.Families.fifo ~buggy:true ~depth_log () in
  let push = List.hd (Netlist.Model.input_vars m) in
  (* push every cycle, never pop *)
  let first = simulate_steps m 20 (fun _ v -> v = push) in
  check (Alcotest.option int) "overflow step" (Some ((1 lsl depth_log) + 1)) first

let test_accumulator_depth () =
  let bits = 4 in
  let m = Circuits.Families.adder_accumulator ~bits in
  (* add 3 every step: all-ones in ceil((2^bits-1)/3) steps *)
  let first = simulate_steps m 20 (fun _ _ -> true) in
  check (Alcotest.option int) "all-ones step" (Some (((1 lsl bits) - 1 + 2) / 3)) first

let test_peterson_sim () =
  let m = Circuits.Families.peterson () in
  let prng = Util.Prng.create 43 in
  check (Alcotest.option int) "mutual exclusion" None
    (simulate_steps m 500 (random_stimulus m prng))

let test_peterson_liveness_ish () =
  (* alternating scheduler lets both processes reach critical eventually:
     sanity that the protocol is not vacuously safe *)
  let m = Circuits.Families.peterson () in
  let state = ref (Netlist.Model.init_state m) in
  let crit_seen = ref false in
  for step = 1 to 50 do
    state := Netlist.Model.eval_step m ~state:!state ~inputs:(fun _ -> step mod 2 = 0);
    (* locations are latches 4..7 (l0a l0b l1a l1b); critical = b bit *)
    let vars = Netlist.Model.state_vars m in
    let value v = !state v in
    match vars with
    | [ _f0; _f1; _turn; _l0a; l0b; _l1a; l1b ] ->
      if value l0b || value l1b then crit_seen := true
    | _ -> Alcotest.fail "unexpected latch layout"
  done;
  check bool "critical section is reachable" true !crit_seen

let test_registry_complete () =
  check bool "non-empty registry" true (List.length Circuits.Registry.all > 0);
  List.iter
    (fun e ->
      let m, status = Circuits.Registry.build e.Circuits.Registry.name None in
      check bool (e.Circuits.Registry.name ^ " validates") true
        (Netlist.Model.validate m = Ok ());
      match status with
      | Circuits.Registry.Safe -> ()
      | Circuits.Registry.Unsafe d ->
        check bool (e.Circuits.Registry.name ^ " depth positive") true (d > 0))
    Circuits.Registry.all

let test_registry_lookup () =
  check bool "find existing" true (Circuits.Registry.find "counter" <> None);
  check bool "find missing" true (Circuits.Registry.find "nonesuch" = None);
  (try
     ignore (Circuits.Registry.build "nonesuch" None);
     Alcotest.fail "expected failure"
   with Failure _ -> ())

let () =
  Alcotest.run "circuits"
    [
      ( "arith",
        [
          Alcotest.test_case "ripple add" `Quick test_arith_add;
          Alcotest.test_case "subtract" `Quick test_arith_sub;
          Alcotest.test_case "comparisons" `Quick test_arith_comparisons;
          Alcotest.test_case "popcount/one-hot" `Quick test_arith_popcount_onehot;
          Alcotest.test_case "mux/rotate" `Quick test_arith_mux_rotate;
        ] );
      ( "comb",
        [
          Alcotest.test_case "adder carry" `Quick test_adder_cone;
          Alcotest.test_case "multiplier bit" `Quick test_multiplier_cone;
          Alcotest.test_case "hidden weighted bit" `Quick test_hwb_cone;
          Alcotest.test_case "parity and majority" `Quick test_parity_majority_cones;
          Alcotest.test_case "random cone determinism" `Quick test_random_cone_deterministic;
        ] );
      ( "families",
        [
          Alcotest.test_case "counter bad depth" `Quick test_counter_reaches_bad;
          Alcotest.test_case "even counter safe" `Quick test_counter_even_safe_sim;
          Alcotest.test_case "gray safe" `Quick test_gray_safe_sim;
          Alcotest.test_case "twin shift safe" `Quick test_twin_shift_safe_sim;
          Alcotest.test_case "shift pattern depth" `Quick test_shift_pattern_depth;
          Alcotest.test_case "lfsr never zero" `Quick test_lfsr_never_zero;
          Alcotest.test_case "arbiter at most one grant" `Quick test_arbiter_sim;
          Alcotest.test_case "traffic exclusive greens" `Quick test_traffic_sim;
          Alcotest.test_case "guarded fifo bounded" `Quick test_fifo_guarded_sim;
          Alcotest.test_case "buggy fifo overflow depth" `Quick test_fifo_buggy_depth;
          Alcotest.test_case "accumulator depth" `Quick test_accumulator_depth;
          Alcotest.test_case "peterson safety" `Quick test_peterson_sim;
          Alcotest.test_case "peterson reaches critical" `Quick test_peterson_liveness_ish;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all entries build" `Quick test_registry_complete;
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
        ] );
    ]
