# Tier-1 verification entry point (see ROADMAP.md).
#
# `dune build @doc` needs odoc, which the reference container does not
# ship; the doc leg is gated on its presence so `make verify` works both
# with and without it instead of failing the whole tier.

.PHONY: all verify test bench doc clean

all:
	dune build @all

verify:
	dune build @all
	dune runtest
	@if command -v odoc >/dev/null 2>&1; then \
	  echo "odoc found: building API docs"; \
	  dune build @doc; \
	else \
	  echo "odoc not installed: skipping dune build @doc"; \
	fi

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --quick

doc:
	dune build @doc

clean:
	dune clean
