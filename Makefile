# Tier-1 verification entry point (see ROADMAP.md).
#
# `dune build @doc` needs odoc, which the reference container does not
# ship; the doc leg is gated on its presence so `make verify` works both
# with and without it instead of failing the whole tier.

.PHONY: all verify test bench doc clean

all:
	dune build @all

verify:
	@ls test/corpus/*.aag >/dev/null 2>&1 || \
	  { echo "FAIL: test/corpus has no .aag entries (the fuzz repro corpus is mandatory; see docs/TESTING.md)"; exit 1; }
	dune build @all
	dune runtest
	@if command -v odoc >/dev/null 2>&1; then \
	  echo "odoc found: building API docs"; \
	  dune build @doc; \
	else \
	  echo "odoc not installed: skipping dune build @doc"; \
	fi

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --quick

doc:
	dune build @doc

clean:
	dune clean
