type result = Sat | Unsat | Unknown

(* Telemetry: per-solve-call accounting, flushed as deltas when a call
   returns so the inner CDCL loops stay untouched (the factorized
   SAT-merge discipline makes "one solve call" = "one equivalence /
   containment check", which is the granularity the histograms record). *)
let obs_solve_calls = Obs.counter "sat.solve_calls"
let obs_decisions = Obs.counter "sat.decisions"
let obs_propagations = Obs.counter "sat.propagations"
let obs_binary_propagations = Obs.counter "sat.binary_propagations"
let obs_conflicts = Obs.counter "sat.conflicts"
let obs_restarts = Obs.counter "sat.restarts"
let obs_gc_runs = Obs.counter "sat.gc.runs"
let obs_gc_words = Obs.counter "sat.gc.words_reclaimed"
let obs_db_reductions = Obs.counter "sat.db_reductions"
let obs_learnt_deleted = Obs.counter "sat.learnt_deleted"
let obs_inprocess_runs = Obs.counter "sat.inprocess.runs"
let obs_inprocess_units = Obs.counter "sat.inprocess.units"
let obs_inprocess_equivs = Obs.counter "sat.inprocess.equivs"
let obs_inprocess_removed = Obs.counter "sat.inprocess.clauses_removed"
let obs_solve_span = Obs.span "sat.solve"
let obs_conflicts_per_call = Obs.histogram "sat.conflicts_per_call"
let obs_decisions_per_call = Obs.histogram "sat.decisions_per_call"
let obs_propagations_per_call = Obs.histogram "sat.propagations_per_call"
let obs_lbd = Obs.histogram "sat.lbd"

(* ---------- encodings ----------

   Literals are [2*var + sign] (see {!Lit}).

   Long clauses (>= 3 literals) live in a flat int arena. A clause
   reference [CRef] is the word index of its 3-word header:

     arena.(c)     header: bit0 learnt, bit1 deleted, size lsl 2
     arena.(c+1)   LBD (learnt) — reused as the forwarding pointer
                   during arena GC
     arena.(c+2)   activity, stored as Int32 float bits
     arena.(c+3 ..)  the literals; slots 0 and 1 are the watched pair

   Clauses are allocated contiguously, so [c + 3 + size] is the next
   header and the whole arena can be walked without an index.

   Binary clauses never enter the arena: [bin.(p)] lists every literal
   [q] with a clause [(¬p ∨ q)], i.e. the implication p → q. The lists
   double as the binary implication graph for the SCC inprocessing
   pass.

   Reasons are tagged ints: -1 none/decision; even = [cref lsl 1];
   odd = [(other_lit lsl 1) lor 1] for a binary reason where
   [other_lit] is the falsified partner literal.

   Conflicts from [propagate] use the same tagging: -1 none;
   even = arena clause; 1 = binary conflict with the two false
   literals stashed in [confl_bin_a]/[confl_bin_b]. *)

let cl_size h = h lsr 2
let cl_learnt h = h land 1 <> 0
let cl_deleted h = h land 2 <> 0
let hdr ~size ~learnt = (size lsl 2) lor (if learnt then 1 else 0)

type t = {
  (* long-clause arena *)
  mutable arena : int array;
  mutable arena_size : int;
  mutable arena_waste : int; (* words held by deleted clauses *)
  mutable n_long : int; (* live problem clauses in the arena *)
  mutable n_learnt : int; (* live learnt clauses in the arena *)
  mutable n_bin : int; (* live binary clauses (logical count) *)
  (* watches.(l) = stride-2 pairs (cref, blocker) watching literal l *)
  mutable watches : Util.Vec_int.t array;
  (* bin.(p) = implied literals of binary clauses (¬p ∨ q) *)
  mutable bin : Util.Vec_int.t array;
  (* per-variable state *)
  mutable assigns : int array; (* -1 unknown / 0 false / 1 true *)
  mutable levels : int array;
  mutable reasons : int array; (* tagged; see above *)
  mutable activities : float array;
  mutable saved_phase : bool array;
  mutable seen : bool array;
  mutable heap_pos : int array;
  mutable subst : int array; (* var -> representative literal *)
  mutable nvars : int;
  heap : Util.Vec_int.t;
  trail : Util.Vec_int.t;
  trail_lim : Util.Vec_int.t;
  mutable qhead : int;
  mutable ok : bool;
  mutable model : int array;
  mutable failed : int list; (* assumption core of the last Unsat answer *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable max_learnt : int;
  mutable confl_bin_a : int; (* binary-conflict literal stash *)
  mutable confl_bin_b : int;
  (* incremental state *)
  mutable prev_assumptions : int array; (* internal form, last call *)
  mutable reuse_ok : bool; (* trail still matches prev_assumptions *)
  mutable bins_dirty : bool; (* new binaries since the last SCC pass *)
  mutable simp_fixed : int; (* level-0 trail size at last rewrite *)
  mutable inprocessing : bool;
  (* statistics *)
  mutable decisions : int;
  mutable propagations : int;
  mutable binary_propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learnt_literals : int;
  mutable minimized_literals : int;
  mutable gc_runs : int;
  mutable gc_words : int;
  mutable db_reductions : int;
  mutable learnt_deleted : int;
  mutable inprocess_runs : int;
  mutable inprocess_units : int;
  mutable inprocess_equivs : int;
  mutable inprocess_removed : int;
  mutable last_conflicts : int; (* conflicts consumed by the latest solve *)
}

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999
let restart_base = 64

let create () =
  {
    arena = Array.make 1024 0;
    arena_size = 0;
    arena_waste = 0;
    n_long = 0;
    n_learnt = 0;
    n_bin = 0;
    watches = Array.init 2 (fun _ -> Util.Vec_int.create ());
    bin = Array.init 2 (fun _ -> Util.Vec_int.create ());
    assigns = Array.make 1 (-1);
    levels = Array.make 1 0;
    reasons = Array.make 1 (-1);
    activities = Array.make 1 0.0;
    saved_phase = Array.make 1 false;
    seen = Array.make 1 false;
    heap_pos = Array.make 1 (-1);
    subst = Array.make 1 0;
    nvars = 0;
    heap = Util.Vec_int.create ();
    trail = Util.Vec_int.create ();
    trail_lim = Util.Vec_int.create ();
    qhead = 0;
    ok = true;
    model = [||];
    failed = [];
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnt = 2000;
    confl_bin_a = -1;
    confl_bin_b = -1;
    prev_assumptions = [||];
    reuse_ok = false;
    bins_dirty = false;
    simp_fixed = 0;
    inprocessing = true;
    decisions = 0;
    propagations = 0;
    binary_propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt_literals = 0;
    minimized_literals = 0;
    gc_runs = 0;
    gc_words = 0;
    db_reductions = 0;
    learnt_deleted = 0;
    inprocess_runs = 0;
    inprocess_units = 0;
    inprocess_equivs = 0;
    inprocess_removed = 0;
    last_conflicts = 0;
  }

let num_vars t = t.nvars
let ok t = t.ok
let set_inprocessing t b = t.inprocessing <- b

let set_learnt_budget t n = t.max_learnt <- max 0 n

(* [subst.(v)] is fully resolved (path-compressed) between inprocessing
   passes, so one lookup maps any external literal to its internal
   representative. *)
let subst_lit t l = t.subst.(l lsr 1) lxor (l land 1)

(* ---------- variable order heap (max-heap on activity) ---------- *)

let heap_lt t v w = t.activities.(v) > t.activities.(w)

let heap_swap t i j =
  let vi = Util.Vec_int.get t.heap i and vj = Util.Vec_int.get t.heap j in
  Util.Vec_int.set t.heap i vj;
  Util.Vec_int.set t.heap j vi;
  t.heap_pos.(vi) <- j;
  t.heap_pos.(vj) <- i

let rec heap_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_lt t (Util.Vec_int.get t.heap i) (Util.Vec_int.get t.heap parent) then begin
      heap_swap t i parent;
      heap_up t parent
    end
  end

let rec heap_down t i =
  let n = Util.Vec_int.length t.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_lt t (Util.Vec_int.get t.heap l) (Util.Vec_int.get t.heap !best) then best := l;
  if r < n && heap_lt t (Util.Vec_int.get t.heap r) (Util.Vec_int.get t.heap !best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    Util.Vec_int.push t.heap v;
    t.heap_pos.(v) <- Util.Vec_int.length t.heap - 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = Util.Vec_int.get t.heap 0 in
  let n = Util.Vec_int.length t.heap in
  heap_swap t 0 (n - 1);
  ignore (Util.Vec_int.pop t.heap);
  t.heap_pos.(v) <- -1;
  if not (Util.Vec_int.is_empty t.heap) then heap_down t 0;
  v

let heap_remove t v =
  let i = t.heap_pos.(v) in
  if i >= 0 then begin
    let n = Util.Vec_int.length t.heap in
    heap_swap t i (n - 1);
    ignore (Util.Vec_int.pop t.heap);
    t.heap_pos.(v) <- -1;
    if i < n - 1 then begin
      heap_down t i;
      heap_up t i
    end
  end

(* ---------- variables ---------- *)

let grow_arrays t needed =
  let cap = Array.length t.assigns in
  if needed > cap then begin
    let cap' = max needed (cap * 2) in
    let grow_int a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 t.nvars;
      a'
    in
    t.assigns <- grow_int t.assigns (-1);
    t.levels <- grow_int t.levels 0;
    t.reasons <- grow_int t.reasons (-1);
    t.heap_pos <- grow_int t.heap_pos (-1);
    t.subst <- grow_int t.subst 0;
    let act' = Array.make cap' 0.0 in
    Array.blit t.activities 0 act' 0 t.nvars;
    t.activities <- act';
    let ph' = Array.make cap' false in
    Array.blit t.saved_phase 0 ph' 0 t.nvars;
    t.saved_phase <- ph';
    let sn' = Array.make cap' false in
    Array.blit t.seen 0 sn' 0 t.nvars;
    t.seen <- sn'
  end

let new_var t =
  let v = t.nvars in
  grow_arrays t (v + 1);
  t.assigns.(v) <- -1;
  t.levels.(v) <- 0;
  t.reasons.(v) <- -1;
  t.activities.(v) <- 0.0;
  t.saved_phase.(v) <- false;
  t.seen.(v) <- false;
  t.heap_pos.(v) <- -1;
  t.subst.(v) <- v lsl 1;
  t.nvars <- v + 1;
  (* watcher and binary lists for both phases *)
  let nw = 2 * t.nvars in
  if nw > Array.length t.watches then begin
    let cap = max nw (2 * Array.length t.watches) in
    let w' = Array.init cap (fun _ -> Util.Vec_int.create ()) in
    Array.blit t.watches 0 w' 0 (2 * v);
    t.watches <- w';
    let b' = Array.init cap (fun _ -> Util.Vec_int.create ()) in
    Array.blit t.bin 0 b' 0 (2 * v);
    t.bin <- b'
  end;
  heap_insert t v;
  v

(* literal value: -1 unknown / 0 false / 1 true *)
let value_lit t l =
  let a = t.assigns.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level t = Util.Vec_int.length t.trail_lim

(* ---------- activity ---------- *)

let bump_var t v =
  t.activities.(v) <- t.activities.(v) +. t.var_inc;
  if t.activities.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activities.(i) <- t.activities.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let decay_var_activity t = t.var_inc <- t.var_inc *. var_decay

(* clause activities live in one header word as Int32 float bits; the
   reduced precision is irrelevant for a tie-breaking heuristic *)
let clause_act t c = Int32.float_of_bits (Int32.of_int t.arena.(c + 2))
let set_clause_act t c f = t.arena.(c + 2) <- Int32.to_int (Int32.bits_of_float f)

let bump_clause t c =
  let a = clause_act t c +. t.cla_inc in
  set_clause_act t c a;
  if a > 1e20 then begin
    let i = ref 0 in
    while !i < t.arena_size do
      let h = t.arena.(!i) in
      if cl_learnt h then set_clause_act t !i (clause_act t !i *. 1e-20);
      i := !i + 3 + cl_size h
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay_clause_activity t = t.cla_inc <- t.cla_inc *. clause_decay

(* ---------- arena primitives ---------- *)

let arena_alloc t size =
  let need = 3 + size in
  let cap = Array.length t.arena in
  if t.arena_size + need > cap then begin
    let a = Array.make (max (t.arena_size + need) (2 * cap)) 0 in
    Array.blit t.arena 0 a 0 t.arena_size;
    t.arena <- a
  end;
  let c = t.arena_size in
  t.arena_size <- t.arena_size + need;
  c

let watch t l cref blocker =
  let ws = t.watches.(l) in
  Util.Vec_int.push ws cref;
  Util.Vec_int.push ws blocker

let new_clause t lits ~learnt ~lbd =
  let size = Array.length lits in
  let c = arena_alloc t size in
  t.arena.(c) <- hdr ~size ~learnt;
  t.arena.(c + 1) <- lbd;
  set_clause_act t c 0.0;
  Array.blit lits 0 t.arena (c + 3) size;
  watch t lits.(0) c lits.(1);
  watch t lits.(1) c lits.(0);
  if learnt then t.n_learnt <- t.n_learnt + 1 else t.n_long <- t.n_long + 1;
  c

let delete_clause t c =
  let h = t.arena.(c) in
  t.arena.(c) <- h lor 2;
  t.arena_waste <- t.arena_waste + 3 + cl_size h;
  if cl_learnt h then begin
    t.n_learnt <- t.n_learnt - 1;
    t.learnt_deleted <- t.learnt_deleted + 1
  end
  else t.n_long <- t.n_long - 1

(* raw binary insertion; callers maintain [n_bin]/[bins_dirty] *)
let bin_push t a b =
  Util.Vec_int.push t.bin.(a lxor 1) b;
  Util.Vec_int.push t.bin.(b lxor 1) a

let add_bin t a b =
  bin_push t a b;
  t.n_bin <- t.n_bin + 1;
  t.bins_dirty <- true

(* ---------- assignment ---------- *)

let enqueue t l reason =
  let v = l lsr 1 in
  t.assigns.(v) <- (l land 1) lxor 1;
  t.levels.(v) <- Util.Vec_int.length t.trail_lim;
  (* level-0 facts never need their reason: keeps GC remapping away
     from clauses that inprocessing may later delete *)
  t.reasons.(v) <- (if Util.Vec_int.is_empty t.trail_lim then -1 else reason);
  Util.Vec_int.push t.trail l

let cancel_until t level =
  if decision_level t > level then begin
    let bound = Util.Vec_int.get t.trail_lim level in
    for i = Util.Vec_int.length t.trail - 1 downto bound do
      let l = Util.Vec_int.get t.trail i in
      let v = l lsr 1 in
      t.saved_phase.(v) <- t.assigns.(v) = 1;
      t.assigns.(v) <- -1;
      t.reasons.(v) <- -1;
      heap_insert t v
    done;
    Util.Vec_int.resize t.trail bound 0;
    Util.Vec_int.resize t.trail_lim level 0;
    t.qhead <- bound
  end

(* ---------- propagation ---------- *)

(* Propagate all enqueued facts; returns a tagged conflict descriptor
   or -1. Watch invariants: a live arena clause sits in exactly the
   watch lists of its slot-0 and slot-1 literals; each watch entry
   carries a blocker literal whose truth proves the clause satisfied
   without touching the arena. The binary layer is scanned first —
   every implication there is a single array read. *)
let propagate t =
  let confl = ref (-1) in
  while !confl < 0 && t.qhead < Util.Vec_int.length t.trail do
    let p = Util.Vec_int.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    (* binary layer: p -> q for every clause (¬p ∨ q) *)
    let bl = t.bin.(p) in
    let nb = Util.Vec_int.length bl in
    let k = ref 0 in
    while !confl < 0 && !k < nb do
      let q = Util.Vec_int.get bl !k in
      incr k;
      match value_lit t q with
      | 1 -> ()
      | -1 ->
        t.binary_propagations <- t.binary_propagations + 1;
        enqueue t q (((p lxor 1) lsl 1) lor 1)
      | _ ->
        t.confl_bin_a <- q;
        t.confl_bin_b <- p lxor 1;
        confl := 1;
        t.qhead <- Util.Vec_int.length t.trail
    done;
    if !confl < 0 then begin
      let falsified = p lxor 1 in
      let ws = t.watches.(falsified) in
      let n = Util.Vec_int.length ws in
      let arena = t.arena in
      let i = ref 0 and j = ref 0 in
      while !i < n do
        let c = Util.Vec_int.get ws !i in
        let blocker = Util.Vec_int.get ws (!i + 1) in
        i := !i + 2;
        if value_lit t blocker = 1 then begin
          Util.Vec_int.set ws !j c;
          Util.Vec_int.set ws (!j + 1) blocker;
          j := !j + 2
        end
        else begin
          let h = arena.(c) in
          if cl_deleted h then () (* lazily dropped *)
          else if !confl >= 0 then begin
            Util.Vec_int.set ws !j c;
            Util.Vec_int.set ws (!j + 1) blocker;
            j := !j + 2
          end
          else begin
            let base = c + 3 in
            (* falsified literal to slot 1 *)
            if arena.(base) = falsified then begin
              arena.(base) <- arena.(base + 1);
              arena.(base + 1) <- falsified
            end;
            let first = arena.(base) in
            if first <> blocker && value_lit t first = 1 then begin
              Util.Vec_int.set ws !j c;
              Util.Vec_int.set ws (!j + 1) first;
              j := !j + 2
            end
            else begin
              let size = cl_size h in
              let m = ref 2 in
              while !m < size && value_lit t arena.(base + !m) = 0 do
                incr m
              done;
              if !m < size then begin
                (* new watch found: migrate this entry *)
                arena.(base + 1) <- arena.(base + !m);
                arena.(base + !m) <- falsified;
                watch t arena.(base + 1) c first
              end
              else begin
                (* unit or conflicting *)
                Util.Vec_int.set ws !j c;
                Util.Vec_int.set ws (!j + 1) first;
                j := !j + 2;
                if value_lit t first = 0 then begin
                  confl := c lsl 1;
                  t.qhead <- Util.Vec_int.length t.trail
                end
                else enqueue t first (c lsl 1)
              end
            end
          end
        end
      done;
      Util.Vec_int.resize ws !j 0
    end
  done;
  !confl

(* ---------- conflict analysis (first UIP) ---------- *)

let litredundant t cl_mask q =
  (* cheap non-recursive minimization: q is redundant when its reason's
     other literals are all already in the learnt clause or at level 0 *)
  let ok_lit l =
    let v = l lsr 1 in
    v = q lsr 1 || t.levels.(v) = 0 || (t.seen.(v) && Hashtbl.mem cl_mask t.levels.(v))
  in
  let r = t.reasons.(q lsr 1) in
  if r < 0 then false
  else if r land 1 = 1 then ok_lit (r lsr 1)
  else begin
    let c = r lsr 1 in
    let size = cl_size t.arena.(c) in
    let rec check k = k >= size || (ok_lit t.arena.(c + 3 + k) && check (k + 1)) in
    check 0
  end

let analyze t confl0 =
  let learnt = Util.Vec_int.create () in
  Util.Vec_int.push learnt 0;
  (* slot for the asserting literal *)
  let to_clear = Util.Vec_int.create () in
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (Util.Vec_int.length t.trail - 1) in
  let confl = ref confl0 in
  let continue = ref true in
  let see q =
    let v = q lsr 1 in
    if (not t.seen.(v)) && t.levels.(v) > 0 then begin
      t.seen.(v) <- true;
      Util.Vec_int.push to_clear v;
      bump_var t v;
      if t.levels.(v) >= decision_level t then incr path else Util.Vec_int.push learnt q
    end
  in
  while !continue do
    (if !confl land 1 = 0 then begin
       (* long clause in the arena *)
       let c = !confl lsr 1 in
       let h = t.arena.(c) in
       if cl_learnt h then bump_clause t c;
       let start = if !p = -1 then 0 else 1 in
       for k = start to cl_size h - 1 do
         see t.arena.(c + 3 + k)
       done
     end
     else if !p = -1 then begin
       (* binary conflict: both stashed false literals *)
       see t.confl_bin_a;
       see t.confl_bin_b
     end
     else
       (* binary reason: the one non-implied literal *)
       see (!confl lsr 1));
    (* next literal on the trail that participates in the conflict *)
    while not t.seen.(Util.Vec_int.get t.trail !index lsr 1) do
      decr index
    done;
    p := Util.Vec_int.get t.trail !index;
    decr index;
    decr path;
    t.seen.(!p lsr 1) <- false;
    if !path > 0 then confl := t.reasons.(!p lsr 1) else continue := false
  done;
  Util.Vec_int.set learnt 0 (!p lxor 1);
  (* clause minimization *)
  let levels_mask = Hashtbl.create 16 in
  Util.Vec_int.iter (fun q -> Hashtbl.replace levels_mask t.levels.(q lsr 1) ()) learnt;
  let kept = Util.Vec_int.create () in
  Util.Vec_int.push kept (Util.Vec_int.get learnt 0);
  for k = 1 to Util.Vec_int.length learnt - 1 do
    let q = Util.Vec_int.get learnt k in
    if litredundant t levels_mask q then t.minimized_literals <- t.minimized_literals + 1
    else Util.Vec_int.push kept q
  done;
  (* clear seen *)
  Util.Vec_int.iter (fun v -> t.seen.(v) <- false) to_clear;
  (* LBD: distinct decision levels among the kept literals *)
  let lbd_levels = Hashtbl.create 8 in
  Util.Vec_int.iter (fun q -> Hashtbl.replace lbd_levels t.levels.(q lsr 1) ()) kept;
  let lbd = Hashtbl.length lbd_levels in
  (* compute backtrack level; move the max-level literal to index 1 *)
  let nk = Util.Vec_int.length kept in
  t.learnt_literals <- t.learnt_literals + nk;
  if nk = 1 then (Util.Vec_int.to_array kept, 0, lbd)
  else begin
    let max_i = ref 1 in
    for k = 2 to nk - 1 do
      if t.levels.(Util.Vec_int.get kept k lsr 1) > t.levels.(Util.Vec_int.get kept !max_i lsr 1)
      then max_i := k
    done;
    let tmp = Util.Vec_int.get kept 1 in
    Util.Vec_int.set kept 1 (Util.Vec_int.get kept !max_i);
    Util.Vec_int.set kept !max_i tmp;
    (Util.Vec_int.to_array kept, t.levels.(Util.Vec_int.get kept 1 lsr 1), lbd)
  end

(* Assumption-level unsat core: [p] is an assumption found false under
   the earlier ones. Walk the implication graph from [p]'s variable
   back to the decisions (which, below the assumption prefix, are
   exactly the assumption literals). Must run before backtracking. *)
let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    let v0 = p lsr 1 in
    t.seen.(v0) <- true;
    let see w = if t.levels.(w) > 0 then t.seen.(w) <- true in
    let bottom = Util.Vec_int.get t.trail_lim 0 in
    for i = Util.Vec_int.length t.trail - 1 downto bottom do
      let l = Util.Vec_int.get t.trail i in
      let v = l lsr 1 in
      if t.seen.(v) then begin
        let r = t.reasons.(v) in
        (if r = -1 then core := l :: !core
         else if r land 1 = 1 then see (r lsr 2)
         else begin
           let c = r lsr 1 in
           for k = 0 to cl_size t.arena.(c) - 1 do
             let w = t.arena.(c + 3 + k) lsr 1 in
             if w <> v then see w
           done
         end);
        t.seen.(v) <- false
      end
    done;
    t.seen.(v0) <- false
  end;
  !core

(* ---------- learnt clause database reduction & arena GC ---------- *)

let locked t c =
  let v = t.arena.(c + 3) lsr 1 in
  t.assigns.(v) >= 0 && t.reasons.(v) = c lsl 1

(* Compact the arena: copy live clauses, rebuild every watch list from
   the surviving clauses (slots 0/1 are the watched pair by invariant),
   and remap clause-tagged reasons on the trail through forwarding
   pointers stashed in the old headers. Binary reasons and the trail
   itself hold literals, not CRefs, so they survive untouched. Every
   clause-tagged reason is live here: level-0 facts drop their reasons
   at enqueue time and reason clauses above level 0 are locked. *)
let gc t =
  t.gc_runs <- t.gc_runs + 1;
  t.gc_words <- t.gc_words + t.arena_waste;
  let arena' = Array.make (Array.length t.arena) 0 in
  let sz = ref 0 in
  let i = ref 0 in
  while !i < t.arena_size do
    let c = !i in
    let h = t.arena.(c) in
    let size = cl_size h in
    if not (cl_deleted h) then begin
      Array.blit t.arena c arena' !sz (3 + size);
      t.arena.(c + 1) <- !sz (* forwarding pointer *);
      sz := !sz + 3 + size
    end;
    i := c + 3 + size
  done;
  for k = 0 to Util.Vec_int.length t.trail - 1 do
    let v = Util.Vec_int.get t.trail k lsr 1 in
    let r = t.reasons.(v) in
    if r >= 0 && r land 1 = 0 then t.reasons.(v) <- t.arena.((r lsr 1) + 1) lsl 1
  done;
  t.arena <- arena';
  t.arena_size <- !sz;
  t.arena_waste <- 0;
  Array.iter Util.Vec_int.clear t.watches;
  let i = ref 0 in
  while !i < !sz do
    let c = !i in
    watch t arena'.(c + 3) c arena'.(c + 4);
    watch t arena'.(c + 4) c arena'.(c + 3);
    i := c + 3 + cl_size arena'.(c)
  done

let maybe_gc t = if t.arena_waste * 4 > t.arena_size && t.arena_size > 1024 then gc t

let reduce_learnts t =
  t.db_reductions <- t.db_reductions + 1;
  (* candidates: live learnt clauses that are neither glue (LBD <= 2)
     nor locked as a reason; sort best-first by (LBD, activity) and
     drop the worst half. Binaries live outside the arena and are
     never deleted. *)
  let cands = ref [] in
  let ncands = ref 0 in
  let i = ref 0 in
  while !i < t.arena_size do
    let c = !i in
    let h = t.arena.(c) in
    if cl_learnt h && (not (cl_deleted h)) && t.arena.(c + 1) > 2 && not (locked t c) then begin
      cands := (t.arena.(c + 1), -.clause_act t c, c) :: !cands;
      incr ncands
    end;
    i := c + 3 + cl_size h
  done;
  let sorted = List.sort compare !cands in
  let keep = !ncands - (!ncands / 2) in
  List.iteri (fun k (_, _, c) -> if k >= keep then delete_clause t c) sorted;
  t.max_learnt <- max (t.max_learnt + 1) (t.max_learnt + (t.max_learnt / 10));
  maybe_gc t

(* ---------- clause addition ---------- *)

(* Normalize and add one clause at level 0. The literals must already
   be in internal (substituted) form. Returns [false] iff the database
   became unsatisfiable. *)
let add_at_level0 t lits ~learnt ~lbd =
  let sorted = List.sort_uniq compare lits in
  let tautology =
    let rec go = function
      | a :: (b :: _ as rest) -> a lxor 1 = b || go rest
      | _ -> false
    in
    go sorted
  in
  let satisfied = List.exists (fun l -> value_lit t l = 1) sorted in
  if tautology || satisfied then true
  else begin
    let remaining = List.filter (fun l -> value_lit t l <> 0) sorted in
    match remaining with
    | [] ->
      t.ok <- false;
      false
    | [ u ] ->
      enqueue t u (-1);
      if propagate t >= 0 then begin
        t.ok <- false;
        false
      end
      else true
    | [ a; b ] ->
      add_bin t a b;
      true
    | _ ->
      ignore (new_clause t (Array.of_list remaining) ~learnt ~lbd);
      true
  end

let add_clause t lits =
  if not t.ok then false
  else begin
    cancel_until t 0;
    t.reuse_ok <- false;
    add_at_level0 t (List.map (fun l -> subst_lit t l) lits) ~learnt:false ~lbd:0
  end

let record_learnt t lits lbd =
  if !Obs.enabled then Obs.observe obs_lbd lbd;
  let n = Array.length lits in
  if n = 1 then enqueue t lits.(0) (-1)
  else if n = 2 then begin
    add_bin t lits.(0) lits.(1);
    enqueue t lits.(0) ((lits.(1) lsl 1) lor 1)
  end
  else begin
    let c = new_clause t lits ~learnt:true ~lbd in
    bump_clause t c;
    enqueue t lits.(0) (c lsl 1)
  end

(* ---------- inprocessing ---------- *)

(* Tarjan over the binary implication graph (literals as nodes,
   bin.(p) as adjacency), iterative so deep implication chains cannot
   overflow the OCaml stack. Every non-trivial SCC is an equivalence
   class: record [subst] entries toward the minimum literal. A class
   containing both phases of one variable makes the database
   unsatisfiable. Returns whether any substitution was recorded. *)
let scc_find t =
  let n = 2 * t.nvars in
  let index = Array.make (max n 1) (-1) in
  let low = Array.make (max n 1) 0 in
  let on_stack = Array.make (max n 1) false in
  let comp_stack = Util.Vec_int.create () in
  let stack_lit = Util.Vec_int.create () in
  let stack_cur = Util.Vec_int.create () in
  let next_index = ref 0 in
  let changed = ref false in
  let active l =
    let v = l lsr 1 in
    t.assigns.(v) < 0 && t.subst.(v) = v lsl 1
  in
  let visit l =
    index.(l) <- !next_index;
    low.(l) <- !next_index;
    incr next_index;
    Util.Vec_int.push comp_stack l;
    on_stack.(l) <- true;
    Util.Vec_int.push stack_lit l;
    Util.Vec_int.push stack_cur 0
  in
  for root = 0 to n - 1 do
    if t.ok && index.(root) < 0 && active root then begin
      visit root;
      while t.ok && not (Util.Vec_int.is_empty stack_lit) do
        let l = Util.Vec_int.top stack_lit in
        let cur = Util.Vec_int.top stack_cur in
        let adj = t.bin.(l) in
        if cur < Util.Vec_int.length adj then begin
          Util.Vec_int.set stack_cur (Util.Vec_int.length stack_cur - 1) (cur + 1);
          let w = Util.Vec_int.get adj cur in
          if active w then begin
            if index.(w) < 0 then visit w
            else if on_stack.(w) && index.(w) < low.(l) then low.(l) <- index.(w)
          end
        end
        else begin
          ignore (Util.Vec_int.pop stack_lit);
          ignore (Util.Vec_int.pop stack_cur);
          (if not (Util.Vec_int.is_empty stack_lit) then begin
             let parent = Util.Vec_int.top stack_lit in
             if low.(l) < low.(parent) then low.(parent) <- low.(l)
           end);
          if low.(l) = index.(l) then begin
            (* pop the SCC rooted at l *)
            let members = ref [] in
            let stop = ref false in
            while not !stop do
              let m = Util.Vec_int.pop comp_stack in
              on_stack.(m) <- false;
              members := m :: !members;
              if m = l then stop := true
            done;
            match !members with
            | [] | [ _ ] -> ()
            | ms ->
              let vars = Hashtbl.create 8 in
              let contra =
                List.exists
                  (fun m ->
                    let v = m lsr 1 in
                    Hashtbl.mem vars v || (Hashtbl.add vars v (); false))
                  ms
              in
              if contra then t.ok <- false
              else begin
                let rep = List.fold_left min max_int ms in
                List.iter
                  (fun m ->
                    if m <> rep then begin
                      t.subst.(m lsr 1) <- rep lxor (m land 1);
                      t.inprocess_equivs <- t.inprocess_equivs + 1;
                      changed := true
                    end)
                  ms
              end
          end
        end
      done
    end
  done;
  (* path-compress chains (a pass-1 representative may itself have been
     substituted by a later class); targets always have strictly
     smaller variables, so resolution terminates *)
  if !changed then
    for v = 0 to t.nvars - 1 do
      let rec resolve l =
        let s = subst_lit t l in
        if s = l then l else resolve s
      in
      t.subst.(v) <- resolve (v lsl 1)
    done;
  !changed

(* enqueue a level-0 unit discovered by inprocessing (no propagation
   here; callers propagate once their pass leaves a consistent state) *)
let inprocess_unit t u =
  match value_lit t u with
  | 1 -> ()
  | 0 -> t.ok <- false
  | _ -> enqueue t u (-1)

(* Rebuild the binary layer under the current assignment and
   substitution: enumerate every binary clause once, map its literals,
   and re-normalize. Satisfied clauses and tautologies drop; clauses
   shrunk by a false literal become units. *)
let rebuild_binary t =
  let pairs = ref [] in
  for p = 0 to (2 * t.nvars) - 1 do
    let a = p lxor 1 in
    Util.Vec_int.iter (fun b -> if a < b then pairs := (a, b) :: !pairs) t.bin.(p)
  done;
  Array.iter Util.Vec_int.clear t.bin;
  t.n_bin <- 0;
  List.iter
    (fun (a0, b0) ->
      if t.ok then begin
        let a = subst_lit t a0 and b = subst_lit t b0 in
        let a, b = if a <= b then (a, b) else (b, a) in
        if a = b then inprocess_unit t a
        else if a = b lxor 1 then () (* tautology *)
        else if value_lit t a = 1 || value_lit t b = 1 then ()
        else if value_lit t a = 0 then inprocess_unit t b
        else if value_lit t b = 0 then inprocess_unit t a
        else begin
          bin_push t a b;
          t.n_bin <- t.n_bin + 1
        end
      end)
    (List.sort_uniq compare !pairs);
  if t.ok && propagate t >= 0 then t.ok <- false

(* Rewrite every arena clause that mentions an assigned or substituted
   variable. Rewritten clauses are re-added behind the walk bound (and
   may migrate to the binary layer or the trail); the stale copies are
   deleted in place and swept by the next GC. The walk must complete
   once substitutions exist — a partially rewritten database would let
   search drop the equivalence constraints the rewrite removed. *)
let rewrite_arena t =
  let bound = t.arena_size in
  let c = ref 0 in
  while t.ok && !c < bound do
    let h = t.arena.(!c) in
    let size = cl_size h in
    if not (cl_deleted h) then begin
      let dirty = ref false in
      for k = 0 to size - 1 do
        let v = t.arena.(!c + 3 + k) lsr 1 in
        if t.assigns.(v) >= 0 || t.subst.(v) <> v lsl 1 then dirty := true
      done;
      if !dirty then begin
        let lits = ref [] in
        for k = size - 1 downto 0 do
          lits := subst_lit t t.arena.(!c + 3 + k) :: !lits
        done;
        delete_clause t !c;
        t.inprocess_removed <- t.inprocess_removed + 1;
        ignore (add_at_level0 t !lits ~learnt:(cl_learnt h) ~lbd:t.arena.(!c + 1))
      end
    end;
    c := !c + 3 + size
  done

(* substituted variables appear in no clause after a completed rewrite;
   drop them from the decision heap so search never branches on them *)
let heap_prune t =
  for v = 0 to t.nvars - 1 do
    if t.subst.(v) <> v lsl 1 then heap_remove t v
  done

(* Level-0 inprocessing, run between solve calls under the governor:
   propagate pending facts, find binary-implication SCCs, then rebuild
   the binary layer and rewrite the arena under the resulting
   substitution and assignment. Only entered at decision level 0 with
   a healthy database and a budget left; SCC application is atomic
   (see rewrite_arena) so the governor is polled before, not during. *)
let inprocess ?(force = false) t limits =
  let eligible =
    t.ok
    && decision_level t = 0
    && (force
       || t.inprocessing
          && (t.bins_dirty || Util.Vec_int.length t.trail > t.simp_fixed || t.arena_waste > 0))
  in
  if eligible && Util.Limits.check limits = None then begin
    t.inprocess_runs <- t.inprocess_runs + 1;
    let trail0 = Util.Vec_int.length t.trail in
    if propagate t >= 0 then t.ok <- false;
    let changed = if t.ok && (force || t.bins_dirty) then scc_find t else false in
    if t.ok then rebuild_binary t;
    if t.ok then rewrite_arena t;
    if t.ok then begin
      heap_prune t;
      (* a completed pass covered the whole graph; rediscovery is only
         needed when this pass itself rewrote edges *)
      t.bins_dirty <- changed;
      t.simp_fixed <- Util.Vec_int.length t.trail;
      t.inprocess_units <- t.inprocess_units + (Util.Vec_int.length t.trail - trail0);
      maybe_gc t
    end
  end

(* ---------- search ---------- *)

(* the model covers substituted variables by reading their
   representative's value through [subst] *)
let save_model t =
  let m = Array.make t.nvars (-1) in
  for v = 0 to t.nvars - 1 do
    let r = t.subst.(v) in
    let a = t.assigns.(r lsr 1) in
    m.(v) <- (if a < 0 then -1 else a lxor (r land 1))
  done;
  t.model <- m

let pick_branch_var t =
  let rec go () =
    if Util.Vec_int.is_empty t.heap then -1
    else
      let v = heap_pop t in
      if t.assigns.(v) < 0 then v else go ()
  in
  go ()

let solve_raw ?(assumptions = []) ?(conflict_limit = max_int) ?(limits = Util.Limits.unlimited) t
    =
  t.failed <- [];
  if not t.ok then begin
    cancel_until t 0;
    Unsat
  end
  else if Util.Limits.exhausted limits <> None then Unknown
  else begin
    let orig_assumps = Array.of_list assumptions in
    let map_assumps () = Array.map (fun l -> subst_lit t l) orig_assumps in
    let assumps0 = map_assumps () in
    (* trail reuse: cancel only past the longest prefix of assumption
       levels shared with the previous call. [reuse_ok] implies no
       clause was added since, so the kept assignments stay implied. *)
    let keep =
      if not t.reuse_ok then 0
      else begin
        let m =
          min (Array.length assumps0) (min (Array.length t.prev_assumptions) (decision_level t))
        in
        let k = ref 0 in
        while !k < m && assumps0.(!k) = t.prev_assumptions.(!k) do
          incr k
        done;
        !k
      end
    in
    cancel_until t keep;
    (* inprocessing may refine [subst]; remap the assumptions after *)
    let assumps =
      if keep = 0 then begin
        inprocess t limits;
        map_assumps ()
      end
      else assumps0
    in
    if not t.ok then begin
      cancel_until t 0;
      t.reuse_ok <- false;
      Unsat
    end
    else begin
      let n_assumps = Array.length assumps in
      (* translate an internal core literal back to the first caller
         assumption mapping to it *)
      let map_core core =
        List.filter_map
          (fun l ->
            let rec find k =
              if k >= n_assumps then None
              else if assumps.(k) = l then Some orig_assumps.(k)
              else find (k + 1)
            in
            find 0)
          core
      in
      let conflicts_at_entry = t.conflicts in
      let limited = Util.Limits.is_limited limits in
      (* the shared conflict pool tightens any per-call limit *)
      let conflict_limit =
        match Util.Limits.conflict_budget limits with
        | Some pool -> min conflict_limit pool
        | None -> conflict_limit
      in
      let polls = ref 0 in
      let restart_count = ref 0 in
      let budget = ref (restart_base * Util.Luby.term 1) in
      let conflicts_this_restart = ref 0 in
      let status = ref None in
      let exit_keep () =
        (* keep the placed assumption levels for the next call *)
        cancel_until t (min (decision_level t) n_assumps);
        t.prev_assumptions <- assumps;
        t.reuse_ok <- true
      in
      let exit_drop () =
        cancel_until t 0;
        t.reuse_ok <- false
      in
      (* level-0 propagation of anything pending *)
      if decision_level t = 0 && propagate t >= 0 then begin
        t.ok <- false;
        exit_drop ();
        status := Some Unsat
      end;
      while !status = None do
        let confl = propagate t in
        if confl >= 0 then begin
          t.conflicts <- t.conflicts + 1;
          incr conflicts_this_restart;
          if decision_level t = 0 then begin
            t.ok <- false;
            exit_drop ();
            status := Some Unsat
          end
          else begin
            let learnt, bt, lbd = analyze t confl in
            cancel_until t bt;
            record_learnt t learnt lbd;
            decay_var_activity t;
            decay_clause_activity t
          end
        end
        else if t.conflicts - conflicts_at_entry >= conflict_limit then begin
          exit_keep ();
          status := Some Unknown
        end
        else if
          (* periodic deadline/cancellation poll; cadence keeps the
             clock read off the propagation fast path. Unconditional
             (not gated on [limited]): an unbudgeted governor can still
             be tripped from another domain via [Limits.cancel], and a
             racing solver must notice promptly *)
          (incr polls;
           !polls land 1023 = 0 && Util.Limits.check limits <> None)
        then begin
          exit_keep ();
          status := Some Unknown
        end
        else if !conflicts_this_restart >= !budget then begin
          (* restart: drop decisions, keep the assumption prefix *)
          t.restarts <- t.restarts + 1;
          incr restart_count;
          conflicts_this_restart := 0;
          budget := restart_base * Util.Luby.term (!restart_count + 1);
          cancel_until t (min (decision_level t) n_assumps)
        end
        else if t.n_learnt > t.max_learnt then reduce_learnts t
        else begin
          (* extend the assignment: assumptions first, then decision *)
          let dl = decision_level t in
          if dl < n_assumps then begin
            let p = assumps.(dl) in
            match value_lit t p with
            | 1 ->
              (* already true: open a dummy level so indices line up *)
              Util.Vec_int.push t.trail_lim (Util.Vec_int.length t.trail)
            | 0 ->
              t.failed <- map_core (analyze_final t p);
              exit_drop ();
              status := Some Unsat
            | _ ->
              Util.Vec_int.push t.trail_lim (Util.Vec_int.length t.trail);
              enqueue t p (-1)
          end
          else begin
            let v = pick_branch_var t in
            if v < 0 then begin
              save_model t;
              exit_keep ();
              status := Some Sat
            end
            else begin
              t.decisions <- t.decisions + 1;
              Util.Vec_int.push t.trail_lim (Util.Vec_int.length t.trail);
              let phase = t.saved_phase.(v) in
              enqueue t ((v lsl 1) lor (if phase then 0 else 1)) (-1)
            end
          end
        end
      done;
      if limited then Util.Limits.charge_conflicts limits (t.conflicts - conflicts_at_entry);
      match !status with Some s -> s | None -> Unknown
    end
  end

let solve_recorded ?assumptions ?conflict_limit ?limits t =
  (* both observability paths share one wrapper; the plain call stays a
     two-flag check away so uninstrumented runs pay nothing *)
  if not (!Obs.enabled || !Obs.Trace_events.enabled) then
    solve_raw ?assumptions ?conflict_limit ?limits t
  else begin
    let d0 = t.decisions and p0 = t.propagations and c0 = t.conflicts and r0 = t.restarts in
    let b0 = t.binary_propagations and g0 = t.gc_runs and gw0 = t.gc_words in
    let dr0 = t.db_reductions and ld0 = t.learnt_deleted in
    let ir0 = t.inprocess_runs
    and iu0 = t.inprocess_units
    and ie0 = t.inprocess_equivs
    and ic0 = t.inprocess_removed in
    Obs.Trace_events.begin_ "sat.solve";
    let watch = Util.Stopwatch.start () in
    let result = solve_raw ?assumptions ?conflict_limit ?limits t in
    Obs.add_seconds obs_solve_span (Util.Stopwatch.elapsed watch);
    Obs.Trace_events.end_args "sat.solve" "conflicts" (t.conflicts - c0);
    Obs.incr obs_solve_calls;
    Obs.add obs_decisions (t.decisions - d0);
    Obs.add obs_propagations (t.propagations - p0);
    Obs.add obs_binary_propagations (t.binary_propagations - b0);
    Obs.add obs_conflicts (t.conflicts - c0);
    Obs.add obs_restarts (t.restarts - r0);
    Obs.add obs_gc_runs (t.gc_runs - g0);
    Obs.add obs_gc_words (t.gc_words - gw0);
    Obs.add obs_db_reductions (t.db_reductions - dr0);
    Obs.add obs_learnt_deleted (t.learnt_deleted - ld0);
    Obs.add obs_inprocess_runs (t.inprocess_runs - ir0);
    Obs.add obs_inprocess_units (t.inprocess_units - iu0);
    Obs.add obs_inprocess_equivs (t.inprocess_equivs - ie0);
    Obs.add obs_inprocess_removed (t.inprocess_removed - ic0);
    Obs.observe obs_decisions_per_call (t.decisions - d0);
    Obs.observe obs_conflicts_per_call (t.conflicts - c0);
    Obs.observe obs_propagations_per_call (t.propagations - p0);
    result
  end

let solve ?assumptions ?conflict_limit ?limits t =
  let conflicts_at_entry = t.conflicts in
  let result = solve_recorded ?assumptions ?conflict_limit ?limits t in
  t.last_conflicts <- t.conflicts - conflicts_at_entry;
  result

let last_conflicts t = t.last_conflicts

let simplify ?(limits = Util.Limits.unlimited) t =
  if t.ok then begin
    cancel_until t 0;
    t.reuse_ok <- false;
    inprocess ~force:true t limits
  end;
  t.ok

let value t v =
  if v < 0 || v >= Array.length t.model then None
  else
    match t.model.(v) with
    | 0 -> Some false
    | 1 -> Some true
    | _ -> None

let failed_assumptions t = t.failed

let lit_true t l =
  match value t (l lsr 1) with
  | Some b -> b <> (l land 1 = 1)
  | None -> false

type stats = {
  decisions : int;
  propagations : int;
  binary_propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  minimized_literals : int;
  max_learnt : int;
  clauses : int;
  binaries : int;
  learnt : int;
  gc_runs : int;
  db_reductions : int;
  inprocess_units : int;
  inprocess_equivs : int;
}

let stats (t : t) =
  {
    decisions = t.decisions;
    propagations = t.propagations;
    binary_propagations = t.binary_propagations;
    conflicts = t.conflicts;
    restarts = t.restarts;
    learnt_literals = t.learnt_literals;
    minimized_literals = t.minimized_literals;
    max_learnt = t.max_learnt;
    clauses = t.n_long;
    binaries = t.n_bin;
    learnt = t.n_learnt;
    gc_runs = t.gc_runs;
    db_reductions = t.db_reductions;
    inprocess_units = t.inprocess_units;
    inprocess_equivs = t.inprocess_equivs;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "decisions=%d propagations=%d (binary=%d) conflicts=%d restarts=%d learnt-lits=%d \
     minimized=%d clauses=%d binaries=%d learnt=%d gcs=%d reductions=%d inprocess=%d+%de"
    s.decisions s.propagations s.binary_propagations s.conflicts s.restarts s.learnt_literals
    s.minimized_literals s.clauses s.binaries s.learnt s.gc_runs s.db_reductions
    s.inprocess_units s.inprocess_equivs
