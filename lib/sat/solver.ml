type result = Sat | Unsat | Unknown

(* Telemetry: per-solve-call accounting, flushed as deltas when a call
   returns so the inner CDCL loops stay untouched (the factorized
   SAT-merge discipline makes "one solve call" = "one equivalence /
   containment check", which is the granularity the histograms record). *)
let obs_solve_calls = Obs.counter "sat.solve_calls"
let obs_decisions = Obs.counter "sat.decisions"
let obs_propagations = Obs.counter "sat.propagations"
let obs_conflicts = Obs.counter "sat.conflicts"
let obs_restarts = Obs.counter "sat.restarts"
let obs_solve_span = Obs.span "sat.solve"
let obs_conflicts_per_call = Obs.histogram "sat.conflicts_per_call"
let obs_decisions_per_call = Obs.histogram "sat.decisions_per_call"
let obs_propagations_per_call = Obs.histogram "sat.propagations_per_call"

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

type t = {
  (* clause store; index into [clauses] is the clause reference *)
  mutable clauses : clause array;
  mutable n_clauses : int;
  mutable n_learnt : int;
  (* watches.(l) = clause indices in which literal [l] is watched *)
  mutable watches : Util.Vec_int.t array;
  (* per-variable state *)
  mutable assigns : int array; (* -1 unknown / 0 false / 1 true *)
  mutable levels : int array;
  mutable reasons : int array; (* clause index or -1 *)
  mutable activities : float array;
  mutable saved_phase : bool array;
  mutable seen : bool array;
  mutable heap_pos : int array;
  mutable nvars : int;
  heap : Util.Vec_int.t;
  trail : Util.Vec_int.t;
  trail_lim : Util.Vec_int.t;
  mutable qhead : int;
  mutable ok : bool;
  mutable model : int array;
  mutable failed : int list; (* assumption core of the last Unsat answer *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable max_learnt : int;
  (* statistics *)
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learnt_literals : int;
  mutable minimized_literals : int;
}

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999
let restart_base = 64

let create () =
  {
    clauses = Array.make 64 { lits = [||]; activity = 0.0; learnt = false; deleted = true };
    n_clauses = 0;
    n_learnt = 0;
    watches = Array.init 2 (fun _ -> Util.Vec_int.create ());
    assigns = Array.make 1 (-1);
    levels = Array.make 1 0;
    reasons = Array.make 1 (-1);
    activities = Array.make 1 0.0;
    saved_phase = Array.make 1 false;
    seen = Array.make 1 false;
    heap_pos = Array.make 1 (-1);
    nvars = 0;
    heap = Util.Vec_int.create ();
    trail = Util.Vec_int.create ();
    trail_lim = Util.Vec_int.create ();
    qhead = 0;
    ok = true;
    model = [||];
    failed = [];
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnt = 2000;
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt_literals = 0;
    minimized_literals = 0;
  }

let num_vars t = t.nvars
let ok t = t.ok

(* ---------- variable order heap (max-heap on activity) ---------- *)

let heap_lt t v w = t.activities.(v) > t.activities.(w)

let heap_swap t i j =
  let vi = Util.Vec_int.get t.heap i and vj = Util.Vec_int.get t.heap j in
  Util.Vec_int.set t.heap i vj;
  Util.Vec_int.set t.heap j vi;
  t.heap_pos.(vi) <- j;
  t.heap_pos.(vj) <- i

let rec heap_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_lt t (Util.Vec_int.get t.heap i) (Util.Vec_int.get t.heap parent) then begin
      heap_swap t i parent;
      heap_up t parent
    end
  end

let rec heap_down t i =
  let n = Util.Vec_int.length t.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_lt t (Util.Vec_int.get t.heap l) (Util.Vec_int.get t.heap !best) then best := l;
  if r < n && heap_lt t (Util.Vec_int.get t.heap r) (Util.Vec_int.get t.heap !best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    Util.Vec_int.push t.heap v;
    t.heap_pos.(v) <- Util.Vec_int.length t.heap - 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = Util.Vec_int.get t.heap 0 in
  let n = Util.Vec_int.length t.heap in
  heap_swap t 0 (n - 1);
  ignore (Util.Vec_int.pop t.heap);
  t.heap_pos.(v) <- -1;
  if not (Util.Vec_int.is_empty t.heap) then heap_down t 0;
  v

(* ---------- variables ---------- *)

let grow_arrays t needed =
  let cap = Array.length t.assigns in
  if needed > cap then begin
    let cap' = max needed (cap * 2) in
    let grow_int a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 t.nvars;
      a'
    in
    t.assigns <- grow_int t.assigns (-1);
    t.levels <- grow_int t.levels 0;
    t.reasons <- grow_int t.reasons (-1);
    t.heap_pos <- grow_int t.heap_pos (-1);
    let act' = Array.make cap' 0.0 in
    Array.blit t.activities 0 act' 0 t.nvars;
    t.activities <- act';
    let ph' = Array.make cap' false in
    Array.blit t.saved_phase 0 ph' 0 t.nvars;
    t.saved_phase <- ph';
    let sn' = Array.make cap' false in
    Array.blit t.seen 0 sn' 0 t.nvars;
    t.seen <- sn'
  end

let new_var t =
  let v = t.nvars in
  grow_arrays t (v + 1);
  t.assigns.(v) <- -1;
  t.levels.(v) <- 0;
  t.reasons.(v) <- -1;
  t.activities.(v) <- 0.0;
  t.saved_phase.(v) <- false;
  t.seen.(v) <- false;
  t.heap_pos.(v) <- -1;
  t.nvars <- v + 1;
  (* watcher lists for both phases *)
  let nw = 2 * t.nvars in
  if nw > Array.length t.watches then begin
    let w' = Array.init (max nw (2 * Array.length t.watches)) (fun _ -> Util.Vec_int.create ()) in
    Array.blit t.watches 0 w' 0 (2 * v);
    t.watches <- w'
  end;
  heap_insert t v;
  v

(* literal value: -1 unknown / 0 false / 1 true *)
let value_lit t l =
  let a = t.assigns.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level t = Util.Vec_int.length t.trail_lim

(* ---------- activity ---------- *)

let bump_var t v =
  t.activities.(v) <- t.activities.(v) +. t.var_inc;
  if t.activities.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activities.(i) <- t.activities.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let decay_var_activity t = t.var_inc <- t.var_inc *. var_decay

let bump_clause t c =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    for i = 0 to t.n_clauses - 1 do
      let d = t.clauses.(i) in
      if d.learnt then d.activity <- d.activity *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay_clause_activity t = t.cla_inc <- t.cla_inc *. clause_decay

(* ---------- assignment ---------- *)

let enqueue t l reason =
  t.assigns.(l lsr 1) <- (l land 1) lxor 1;
  t.levels.(l lsr 1) <- decision_level t;
  t.reasons.(l lsr 1) <- reason;
  Util.Vec_int.push t.trail l

let cancel_until t level =
  if decision_level t > level then begin
    let bound = Util.Vec_int.get t.trail_lim level in
    for i = Util.Vec_int.length t.trail - 1 downto bound do
      let l = Util.Vec_int.get t.trail i in
      let v = l lsr 1 in
      t.saved_phase.(v) <- t.assigns.(v) = 1;
      t.assigns.(v) <- -1;
      t.reasons.(v) <- -1;
      heap_insert t v
    done;
    Util.Vec_int.resize t.trail bound 0;
    Util.Vec_int.resize t.trail_lim level 0;
    t.qhead <- bound
  end

(* ---------- clause store ---------- *)

let push_clause t c =
  if t.n_clauses >= Array.length t.clauses then begin
    let a = Array.make (2 * Array.length t.clauses) c in
    Array.blit t.clauses 0 a 0 t.n_clauses;
    t.clauses <- a
  end;
  t.clauses.(t.n_clauses) <- c;
  t.n_clauses <- t.n_clauses + 1;
  t.n_clauses - 1

let watch t l ci = Util.Vec_int.push t.watches.(l) ci

let attach_clause t ci =
  let c = t.clauses.(ci) in
  watch t c.lits.(0) ci;
  watch t c.lits.(1) ci

(* ---------- propagation ---------- *)

(* Propagate all enqueued facts; returns the index of a conflicting clause
   or -1. Watch invariant: the two watched literals are lits.(0) and
   lits.(1); a clause appears in the watch list of both. *)
let propagate t =
  let confl = ref (-1) in
  while !confl < 0 && t.qhead < Util.Vec_int.length t.trail do
    let p = Util.Vec_int.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let falsified = p lxor 1 in
    let ws = t.watches.(falsified) in
    let n = Util.Vec_int.length ws in
    let i = ref 0 and j = ref 0 in
    (* scan watchers of the now-false literal *)
    while !i < n do
      let ci = Util.Vec_int.get ws !i in
      incr i;
      let c = t.clauses.(ci) in
      if c.deleted then () (* lazily drop *)
      else if !confl >= 0 then begin
        (* conflict already found: keep remaining watchers untouched *)
        Util.Vec_int.set ws !j ci;
        incr j
      end
      else begin
        let lits = c.lits in
        (* ensure the falsified literal sits at index 1 *)
        if lits.(0) = falsified then begin
          lits.(0) <- lits.(1);
          lits.(1) <- falsified
        end;
        if value_lit t lits.(0) = 1 then begin
          (* clause satisfied; keep watching *)
          Util.Vec_int.set ws !j ci;
          incr j
        end
        else begin
          (* look for a new literal to watch *)
          let len = Array.length lits in
          let k = ref 2 in
          while !k < len && value_lit t lits.(!k) = 0 do
            incr k
          done;
          if !k < len then begin
            lits.(1) <- lits.(!k);
            lits.(!k) <- falsified;
            watch t lits.(1) ci
          end
          else begin
            (* unit or conflicting *)
            Util.Vec_int.set ws !j ci;
            incr j;
            if value_lit t lits.(0) = 0 then begin
              confl := ci;
              t.qhead <- Util.Vec_int.length t.trail
            end
            else enqueue t lits.(0) ci
          end
        end
      end
    done;
    Util.Vec_int.resize ws !j 0
  done;
  !confl

(* ---------- conflict analysis (first UIP) ---------- *)

let litredundant t cl_mask q =
  (* cheap non-recursive minimization: q is redundant when its reason's
     other literals are all already in the learnt clause or at level 0 *)
  let r = t.reasons.(q lsr 1) in
  r >= 0
  && begin
       let lits = t.clauses.(r).lits in
       let len = Array.length lits in
       let rec check k =
         k >= len
         ||
         let v = lits.(k) lsr 1 in
         (v = q lsr 1 || t.levels.(v) = 0 || (t.seen.(v) && Hashtbl.mem cl_mask (t.levels.(v))))
         && check (k + 1)
       in
       check 0
     end

let analyze t confl =
  let learnt = Util.Vec_int.create () in
  Util.Vec_int.push learnt 0;
  (* slot for the asserting literal *)
  let to_clear = Util.Vec_int.create () in
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (Util.Vec_int.length t.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl) in
    if c.learnt then bump_clause t c;
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = q lsr 1 in
      if (not t.seen.(v)) && t.levels.(v) > 0 then begin
        t.seen.(v) <- true;
        Util.Vec_int.push to_clear v;
        bump_var t v;
        if t.levels.(v) >= decision_level t then incr path else Util.Vec_int.push learnt q
      end
    done;
    (* next literal on the trail that participates in the conflict *)
    while not t.seen.(Util.Vec_int.get t.trail !index lsr 1) do
      decr index
    done;
    p := Util.Vec_int.get t.trail !index;
    decr index;
    decr path;
    t.seen.(!p lsr 1) <- false;
    if !path > 0 then confl := t.reasons.(!p lsr 1) else continue := false
  done;
  Util.Vec_int.set learnt 0 (!p lxor 1);
  (* clause minimization *)
  let levels_mask = Hashtbl.create 16 in
  Util.Vec_int.iter (fun q -> Hashtbl.replace levels_mask t.levels.(q lsr 1) ()) learnt;
  let kept = Util.Vec_int.create () in
  Util.Vec_int.push kept (Util.Vec_int.get learnt 0);
  for k = 1 to Util.Vec_int.length learnt - 1 do
    let q = Util.Vec_int.get learnt k in
    if litredundant t levels_mask q then t.minimized_literals <- t.minimized_literals + 1
    else Util.Vec_int.push kept q
  done;
  (* clear seen *)
  Util.Vec_int.iter (fun v -> t.seen.(v) <- false) to_clear;
  (* compute backtrack level; move the max-level literal to index 1 *)
  let nk = Util.Vec_int.length kept in
  t.learnt_literals <- t.learnt_literals + nk;
  if nk = 1 then (Util.Vec_int.to_array kept, 0)
  else begin
    let max_i = ref 1 in
    for k = 2 to nk - 1 do
      if t.levels.(Util.Vec_int.get kept k lsr 1) > t.levels.(Util.Vec_int.get kept !max_i lsr 1)
      then max_i := k
    done;
    let tmp = Util.Vec_int.get kept 1 in
    Util.Vec_int.set kept 1 (Util.Vec_int.get kept !max_i);
    Util.Vec_int.set kept !max_i tmp;
    (Util.Vec_int.to_array kept, t.levels.(Util.Vec_int.get kept 1 lsr 1))
  end

(* Assumption-level unsat core: [p] is an assumption found false under the
   earlier ones. Walk the implication graph from [p]'s variable back to
   the decisions (which, below the assumption prefix, are exactly the
   assumption literals). Must run before backtracking. *)
let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    let v0 = p lsr 1 in
    t.seen.(v0) <- true;
    let bottom = Util.Vec_int.get t.trail_lim 0 in
    for i = Util.Vec_int.length t.trail - 1 downto bottom do
      let l = Util.Vec_int.get t.trail i in
      let v = l lsr 1 in
      if t.seen.(v) then begin
        (if t.reasons.(v) = -1 then core := l :: !core
         else begin
           let lits = t.clauses.(t.reasons.(v)).lits in
           Array.iter
             (fun q ->
               let w = q lsr 1 in
               if w <> v && t.levels.(w) > 0 then t.seen.(w) <- true)
             lits
         end);
        t.seen.(v) <- false
      end
    done;
    t.seen.(v0) <- false
  end;
  !core

(* ---------- learnt clause database reduction ---------- *)

let locked t ci =
  let c = t.clauses.(ci) in
  Array.length c.lits > 0
  &&
  let v = c.lits.(0) lsr 1 in
  t.reasons.(v) = ci && t.assigns.(v) >= 0

let reduce_learnts t =
  let learnts = ref [] in
  for ci = 0 to t.n_clauses - 1 do
    let c = t.clauses.(ci) in
    if c.learnt && (not c.deleted) && Array.length c.lits > 2 && not (locked t ci) then
      learnts := (c.activity, ci) :: !learnts
  done;
  let sorted = List.sort compare !learnts in
  let total = List.length sorted in
  let to_drop = total / 2 in
  List.iteri
    (fun k (_, ci) ->
      if k < to_drop then begin
        t.clauses.(ci).deleted <- true;
        t.n_learnt <- t.n_learnt - 1
      end)
    sorted;
  t.max_learnt <- t.max_learnt + (t.max_learnt / 10)

(* ---------- clause addition ---------- *)

let add_clause t lits =
  assert (decision_level t = 0);
  if not t.ok then false
  else begin
    (* normalize: sort, drop duplicates and level-0-false literals, detect
       tautologies and level-0-true literals *)
    let sorted = List.sort_uniq compare lits in
    let tautology =
      let rec go = function
        | a :: (b :: _ as rest) -> a lxor 1 = b || go rest
        | _ -> false
      in
      go sorted
    in
    let satisfied = List.exists (fun l -> value_lit t l = 1) sorted in
    if tautology || satisfied then true
    else begin
      let remaining = List.filter (fun l -> value_lit t l <> 0) sorted in
      match remaining with
      | [] ->
        t.ok <- false;
        false
      | [ u ] ->
        enqueue t u (-1);
        if propagate t >= 0 then begin
          t.ok <- false;
          false
        end
        else true
      | _ :: _ :: _ ->
        let c =
          { lits = Array.of_list remaining; activity = 0.0; learnt = false; deleted = false }
        in
        let ci = push_clause t c in
        attach_clause t ci;
        true
    end
  end

let record_learnt t lits =
  if Array.length lits = 1 then enqueue t lits.(0) (-1)
  else begin
    let c = { lits; activity = 0.0; learnt = true; deleted = false } in
    let ci = push_clause t c in
    t.n_learnt <- t.n_learnt + 1;
    attach_clause t ci;
    bump_clause t c;
    enqueue t lits.(0) ci
  end

(* ---------- search ---------- *)

let save_model t =
  t.model <- Array.sub t.assigns 0 t.nvars

let pick_branch_var t =
  let rec go () =
    if Util.Vec_int.is_empty t.heap then -1
    else
      let v = heap_pop t in
      if t.assigns.(v) < 0 then v else go ()
  in
  go ()

let solve_raw ?(assumptions = []) ?(conflict_limit = max_int) ?(limits = Util.Limits.unlimited) t =
  cancel_until t 0;
  t.failed <- [];
  if not t.ok then Unsat
  else if Util.Limits.exhausted limits <> None then Unknown
  else begin
    let assumps = Array.of_list assumptions in
    let conflicts_at_entry = t.conflicts in
    let limited = Util.Limits.is_limited limits in
    (* the shared conflict pool tightens any per-call limit *)
    let conflict_limit =
      match Util.Limits.conflict_budget limits with
      | Some pool -> min conflict_limit pool
      | None -> conflict_limit
    in
    let polls = ref 0 in
    let restart_count = ref 0 in
    let budget = ref (restart_base * Util.Luby.term 1) in
    let conflicts_this_restart = ref 0 in
    let status = ref None in
    (* level-0 propagation of anything pending *)
    if propagate t >= 0 then begin
      t.ok <- false;
      status := Some Unsat
    end;
    while !status = None do
      let confl = propagate t in
      if confl >= 0 then begin
        t.conflicts <- t.conflicts + 1;
        incr conflicts_this_restart;
        if decision_level t = 0 then begin
          t.ok <- false;
          status := Some Unsat
        end
        else begin
          let learnt, bt = analyze t confl in
          cancel_until t bt;
          record_learnt t learnt;
          decay_var_activity t;
          decay_clause_activity t
        end
      end
      else if t.conflicts - conflicts_at_entry >= conflict_limit then begin
        cancel_until t 0;
        status := Some Unknown
      end
      else if
        (* periodic deadline poll; cadence keeps the clock read off the
           propagation fast path *)
        (incr polls;
         limited && !polls land 1023 = 0 && Util.Limits.check limits <> None)
      then begin
        cancel_until t 0;
        status := Some Unknown
      end
      else if !conflicts_this_restart >= !budget then begin
        (* restart *)
        t.restarts <- t.restarts + 1;
        incr restart_count;
        conflicts_this_restart := 0;
        budget := restart_base * Util.Luby.term (!restart_count + 1);
        cancel_until t 0
      end
      else if t.n_learnt > t.max_learnt then reduce_learnts t
      else begin
        (* extend the assignment: assumptions first, then decision *)
        let dl = decision_level t in
        if dl < Array.length assumps then begin
          let p = assumps.(dl) in
          match value_lit t p with
          | 1 ->
            (* already true: open a dummy level so indices line up *)
            Util.Vec_int.push t.trail_lim (Util.Vec_int.length t.trail)
          | 0 ->
            t.failed <- analyze_final t p;
            cancel_until t 0;
            status := Some Unsat
          | _ ->
            Util.Vec_int.push t.trail_lim (Util.Vec_int.length t.trail);
            enqueue t p (-1)
        end
        else begin
          let v = pick_branch_var t in
          if v < 0 then begin
            save_model t;
            cancel_until t 0;
            status := Some Sat
          end
          else begin
            t.decisions <- t.decisions + 1;
            Util.Vec_int.push t.trail_lim (Util.Vec_int.length t.trail);
            let phase = t.saved_phase.(v) in
            enqueue t ((v lsl 1) lor (if phase then 0 else 1)) (-1)
          end
        end
      end
    done;
    cancel_until t 0;
    if limited then
      Util.Limits.charge_conflicts limits (t.conflicts - conflicts_at_entry);
    match !status with Some s -> s | None -> Unknown
  end

let solve ?assumptions ?conflict_limit ?limits t =
  (* both observability paths share one wrapper; the plain call stays a
     two-flag check away so uninstrumented runs pay nothing *)
  if not (!Obs.enabled || !Obs.Trace_events.enabled) then
    solve_raw ?assumptions ?conflict_limit ?limits t
  else begin
    let d0 = t.decisions and p0 = t.propagations and c0 = t.conflicts and r0 = t.restarts in
    Obs.Trace_events.begin_ "sat.solve";
    let watch = Util.Stopwatch.start () in
    let result = solve_raw ?assumptions ?conflict_limit ?limits t in
    Obs.add_seconds obs_solve_span (Util.Stopwatch.elapsed watch);
    Obs.Trace_events.end_args "sat.solve" "conflicts" (t.conflicts - c0);
    Obs.incr obs_solve_calls;
    Obs.add obs_decisions (t.decisions - d0);
    Obs.add obs_propagations (t.propagations - p0);
    Obs.add obs_conflicts (t.conflicts - c0);
    Obs.add obs_restarts (t.restarts - r0);
    Obs.observe obs_decisions_per_call (t.decisions - d0);
    Obs.observe obs_conflicts_per_call (t.conflicts - c0);
    Obs.observe obs_propagations_per_call (t.propagations - p0);
    result
  end

let value t v =
  if v < 0 || v >= Array.length t.model then None
  else
    match t.model.(v) with
    | 0 -> Some false
    | 1 -> Some true
    | _ -> None

let failed_assumptions t = t.failed

let lit_true t l =
  match value t (l lsr 1) with
  | Some b -> b <> (l land 1 = 1)
  | None -> false

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  minimized_literals : int;
  max_learnt : int;
  clauses : int;
}

let stats (t : t) =
  {
    decisions = t.decisions;
    propagations = t.propagations;
    conflicts = t.conflicts;
    restarts = t.restarts;
    learnt_literals = t.learnt_literals;
    minimized_literals = t.minimized_literals;
    max_learnt = t.max_learnt;
    clauses = t.n_clauses;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "decisions=%d propagations=%d conflicts=%d restarts=%d learnt-lits=%d minimized=%d clauses=%d"
    s.decisions s.propagations s.conflicts s.restarts s.learnt_literals s.minimized_literals
    s.clauses
