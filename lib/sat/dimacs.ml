type problem = { num_vars : int; clauses : Lit.t list list }

exception Parse_error of { line : int; token : string; reason : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; token; reason } ->
      Some
        (Printf.sprintf "Dimacs.Parse_error (line %d%s): %s" line
           (if token = "" then "" else Printf.sprintf ", token %S" token)
           reason)
    | _ -> None)

let parse_error ~line ~token reason = raise (Parse_error { line; token; reason })

let parse_exn text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let current_line = ref 0 in
  let max_var = ref 0 in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
      else if line.[0] = 'p' then begin
        if !header <> None then parse_error ~line:lineno ~token:line "duplicate problem line";
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "p"; "cnf"; v; c ] -> (
          match (int_of_string_opt v, int_of_string_opt c) with
          | Some nv, Some nc when nv >= 0 && nc >= 0 -> header := Some nv
          | _ ->
            parse_error ~line:lineno ~token:line "problem line needs non-negative var/clause counts")
        | _ -> parse_error ~line:lineno ~token:line "expected `p cnf <vars> <clauses>'"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
             match int_of_string_opt tok with
             | None -> parse_error ~line:lineno ~token:tok "literal is not an integer"
             | Some 0 ->
               clauses := List.rev !current :: !clauses;
               current := []
             | Some d ->
               let v = abs d - 1 in
               if v + 1 > !max_var then max_var := v + 1;
               if !current = [] then current_line := lineno;
               current := Lit.make v (d < 0) :: !current))
    lines;
  if !current <> [] then
    parse_error ~line:!current_line ~token:"" "trailing clause without terminating 0";
  let declared = Option.value !header ~default:!max_var in
  { num_vars = max declared !max_var; clauses = List.rev !clauses }

let parse text =
  match parse_exn text with
  | p -> Ok p
  | exception Parse_error { line; token; reason } ->
    Error
      (Printf.sprintf "line %d: %s%s" line reason
         (if token = "" then "" else Printf.sprintf " (token %S)" token))

let render p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" p.num_vars (List.length p.clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          let d = Lit.var l + 1 in
          Buffer.add_string buf (Printf.sprintf "%d " (if Lit.sign l then -d else d)))
        clause;
      Buffer.add_string buf "0\n")
    p.clauses;
  Buffer.contents buf

let load solver p =
  while Solver.num_vars solver < p.num_vars do
    ignore (Solver.new_var solver)
  done;
  List.fold_left (fun ok clause -> Solver.add_clause solver clause && ok) true p.clauses

let solve_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    match parse text with
    | Error msg -> Error msg
    | Ok problem ->
      let solver = Solver.create () in
      if load solver problem then Ok (Solver.solve solver, solver)
      else Ok (Solver.Unsat, solver))
