(** Arena-based conflict-driven clause-learning SAT solver.

    The paper implements its SAT-merge routine "on top of ZChaff",
    loading one clause database and factorizing many equivalence checks
    into a single run. This solver provides that capability set as a
    modern CDCL core: long clauses live in a flat int arena addressed
    by integer clause references, binary clauses in a dedicated
    implication-list layer, propagation uses blocker-literal two-watched
    schemes, learning is first-UIP with clause minimization, and the
    learnt database is reduced LBD-first with an arena garbage collector
    that compacts storage and remaps watches and reasons.

    Crucially for the merge engine the solver is {e incremental}:
    clauses may be added between calls to {!solve}, each call may carry
    {e assumptions} (temporary unit decisions, how activation literals
    implement retractable queries on a shared database), the assumption
    prefix of the trail is reused verbatim across calls that share it,
    and an inprocessing pass (level-0 clause simplification plus
    binary-implication SCC equivalence reduction) runs between calls
    under the {!Util.Limits} governor. See [docs/SAT.md] for the memory
    layout, the watch invariants and the incremental-use contract. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

(** Allocate a fresh variable, returning its index. *)
val new_var : t -> int

val num_vars : t -> int

(** [add_clause t lits] adds a clause. Returns [false] when the clause
    database became unsatisfiable at level 0 (further solving is
    futile; {!solve} will keep answering [Unsat]). Clauses may be added
    at any point between [solve] calls; doing so discards the reusable
    assumption trail of the previous call but never its learnt
    clauses. *)
val add_clause : t -> Lit.t list -> bool

(** [solve t ~assumptions] decides satisfiability of the clause
    database under the given temporary assumptions. [conflict_limit]
    (number of conflicts) makes the call budgeted: exceeding it yields
    [Unknown]. [limits] binds the call to a run-wide resource governor:
    conflicts consumed count against its shared pool (further
    tightening any explicit [conflict_limit]), the deadline is polled
    periodically during search, and a call entered after the governor
    has tripped answers [Unknown] immediately. [Unsat] under non-empty
    assumptions means "unsatisfiable together with these assumptions",
    not global unsatisfiability.

    Between calls the solver keeps the assignment prefix forced by the
    previous call's assumptions; a following call sharing a prefix of
    those assumptions (in order) resumes from it instead of replaying
    propagation. *)
val solve :
  ?assumptions:Lit.t list -> ?conflict_limit:int -> ?limits:Util.Limits.t -> t -> result

(** Run the inprocessing pass now (level-0 simplification + binary SCC
    equivalence reduction + arena GC), regardless of the automatic
    trigger. Returns {!ok}: [false] when inprocessing proved the
    database unsatisfiable. Polls [limits] before (not during) the
    pass. *)
val simplify : ?limits:Util.Limits.t -> t -> bool

(** Enable or disable the automatic between-solves inprocessing pass
    (enabled by default). {!simplify} still works when disabled. *)
val set_inprocessing : t -> bool -> unit

(** Override the learnt-clause budget that triggers database reduction
    (testing/tuning hook: a tiny budget forces reductions and arena GC
    on small instances). *)
val set_learnt_budget : t -> int -> unit

(** Model access after a [Sat] answer; [None] for variables the model
    left unconstrained. Variables eliminated by equivalence reduction
    report the value of their representative. *)
val value : t -> int -> bool option

(** After an [Unsat] answer from a {!solve} call with assumptions: a
    subset of those assumptions that is already jointly inconsistent
    with the clause database (an assumption-level unsat core; empty
    when the database is unsatisfiable on its own). Literals are
    returned in the caller's original form even when equivalence
    reduction rewrote them internally. *)
val failed_assumptions : t -> Lit.t list

(** [lit_true t l] is [true] when the current model satisfies [l]. *)
val lit_true : t -> Lit.t -> bool

(** [false] once the database is unsatisfiable without assumptions. *)
val ok : t -> bool

(** Cumulative search statistics. [clauses]/[binaries]/[learnt] count
    {e live} long problem clauses, binary clauses and learnt long
    clauses; the rest are monotone counters over the solver's
    lifetime. *)
type stats = {
  decisions : int;
  propagations : int;
  binary_propagations : int;  (** implications served by the binary layer *)
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  minimized_literals : int;
  max_learnt : int;  (** current learnt-DB budget *)
  clauses : int;
  binaries : int;
  learnt : int;
  gc_runs : int;  (** arena compactions *)
  db_reductions : int;  (** learnt-DB reduction passes *)
  inprocess_units : int;  (** level-0 facts found by inprocessing *)
  inprocess_equivs : int;  (** variables eliminated by SCC reduction *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val last_conflicts : t -> int
(** Conflicts consumed by the most recent {!solve} call — a cheap
    per-query cost signal for layers that adapt to solver effort
    (e.g. the quantification backend selector). 0 before any solve. *)
