(** Conflict-driven clause-learning SAT solver.

    The paper implements its SAT-merge routine "on top of ZChaff", loading
    one clause database and factorizing many equivalence checks into a
    single run. This solver provides the same capability set: two-watched
    literal propagation, VSIDS decision heuristic, first-UIP conflict
    learning with clause minimization, phase saving, Luby restarts, learnt
    clause-database reduction, and — crucially for the merge engine —
    {e incremental} use: clauses may be added between calls to {!solve},
    and each call may carry {e assumptions} (temporary unit decisions),
    which is how activation literals implement retractable queries on a
    shared clause database. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

(** Allocate a fresh variable, returning its index. *)
val new_var : t -> int

val num_vars : t -> int

(** [add_clause t lits] adds a clause. Returns [false] when the clause
    database became unsatisfiable at level 0 (further solving is futile;
    {!solve} will keep answering [Unsat]). Clauses may be added at any
    point between [solve] calls. *)
val add_clause : t -> Lit.t list -> bool

(** [solve t ~assumptions] decides satisfiability of the clause database
    under the given temporary assumptions. [conflict_limit] (number of
    conflicts) makes the call budgeted: exceeding it yields [Unknown].
    [limits] binds the call to a run-wide resource governor: conflicts
    consumed count against its shared pool (further tightening any
    explicit [conflict_limit]), the deadline is polled periodically
    during search, and a call entered after the governor has tripped
    answers [Unknown] immediately. [Unsat] under non-empty assumptions
    means "unsatisfiable together with these assumptions", not global
    unsatisfiability. *)
val solve :
  ?assumptions:Lit.t list -> ?conflict_limit:int -> ?limits:Util.Limits.t -> t -> result

(** Model access after a [Sat] answer; [None] for variables the model left
    unconstrained. *)
val value : t -> int -> bool option

(** After an [Unsat] answer from a {!solve} call with assumptions: a
    subset of those assumptions that is already jointly inconsistent with
    the clause database (an assumption-level unsat core; empty when the
    database is unsatisfiable on its own). *)
val failed_assumptions : t -> Lit.t list

(** [lit_true t l] is [true] when the current model satisfies [l]. *)
val lit_true : t -> Lit.t -> bool

(** [false] once the database is unsatisfiable without assumptions. *)
val ok : t -> bool

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  minimized_literals : int;
  max_learnt : int;
  clauses : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
