(** DIMACS CNF interchange for the SAT solver.

    Parses the standard header/clause format (comments, blank lines and
    multi-line clauses included) and renders clause lists back. DIMACS
    variables are 1-based; solver variables are 0-based: DIMACS literal
    [±v] maps to solver variable [v - 1]. *)

type problem = { num_vars : int; clauses : Lit.t list list }

(** Raised by {!parse_exn} on malformed input. [line] is 1-based;
    [token] is the offending token ([""] when the whole line is at
    fault); [reason] says what was expected. A printer is registered
    with [Printexc], mirroring [Netlist.Aiger.Parse_error]. *)
exception Parse_error of { line : int; token : string; reason : string }

(** [parse_exn s] parses DIMACS text.
    @raise Parse_error on malformed input. *)
val parse_exn : string -> problem

(** [parse s] — {!parse_exn} with the error folded into a line-numbered
    diagnostic string. *)
val parse : string -> (problem, string) result

(** [render p] — canonical DIMACS text. *)
val render : problem -> string

(** [load solver p] allocates missing variables and adds every clause;
    returns [false] when the database became unsatisfiable at level 0. *)
val load : Solver.t -> problem -> bool

(** [solve_file path] — parse, load and solve; convenience for the CLI. *)
val solve_file : string -> (Solver.result * Solver.t, string) result
