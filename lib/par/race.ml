let obs_races = Obs.counter "par.race.runs"
let obs_entrants = Obs.counter "par.race.entrants"
let obs_decided = Obs.counter "par.race.decided"
let obs_cancelled = Obs.counter "par.race.cancelled"
let obs_skipped = Obs.counter "par.race.skipped"
let obs_crashed = Obs.counter "par.race.crashed"

type 'a entrant = { name : string; limits : Util.Limits.t; run : unit -> 'a }
type 'a status = Finished of 'a | Skipped | Crashed of string

type 'a outcome = {
  winner : (string * 'a) option;
  results : 'a status array;
  seconds : float;
}

let run ?jobs ~decisive entrants =
  let arr = Array.of_list entrants in
  let n = Array.length arr in
  let jobs = max 1 (min (Option.value jobs ~default:n) n) in
  let watch = Util.Stopwatch.start () in
  Obs.incr obs_races;
  Obs.add obs_entrants n;
  Obs.Trace_events.begin_args "par.race" "entrants" n;
  (* each slot is written by exactly one worker; read after the join *)
  let results = Array.make n Skipped in
  let winner = Atomic.make None in
  let stop = Atomic.make false in
  let next = Atomic.make 0 in
  let cancel_losers ~except =
    Array.iteri
      (fun i e ->
        if i <> except && e.limits != Util.Limits.unlimited then begin
          Util.Limits.cancel e.limits;
          Obs.incr obs_cancelled
        end)
      arr
  in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue := false
      else if Atomic.get stop then () (* stays Skipped *)
      else begin
        let e = arr.(i) in
        Obs.Trace_events.begin_ e.name;
        let st =
          match e.run () with
          | v -> Finished v
          | exception exn ->
            Obs.incr obs_crashed;
            Crashed (Printexc.to_string exn)
        in
        Obs.Trace_events.end_ e.name;
        results.(i) <- st;
        match st with
        | Finished v when decisive v ->
          (* first decisive finisher wins; everyone else is told to stop *)
          if Atomic.compare_and_set winner None (Some (i, v)) then begin
            Atomic.set stop true;
            cancel_losers ~except:i
          end
        | Finished _ | Skipped | Crashed _ -> ()
      end
    done
  in
  let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Array.iter (function Skipped -> Obs.incr obs_skipped | _ -> ()) results;
  let winner =
    match Atomic.get winner with
    | Some (i, v) ->
      Obs.incr obs_decided;
      Some (arr.(i).name, v)
    | None -> None
  in
  let seconds = Util.Stopwatch.elapsed watch in
  Obs.Trace_events.end_args "par.race"
    (match winner with Some _ -> "decided" | None -> "undecided")
    (match winner with Some _ -> 1 | None -> 0);
  { winner; results; seconds }
