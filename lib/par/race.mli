(** First-decisive-wins racing with cooperative cancellation.

    The portfolio scheduler: run competing entrants on a pool of
    domains, stop the race the moment one returns a {e decisive} value,
    and cancel everyone else by tripping their {!Util.Limits} governor
    from the winning domain ({!Util.Limits.cancel}). Cancellation is
    cooperative — a cancelled entrant keeps running until its next
    governor checkpoint (frame boundary, SAT poll) and then returns its
    own anytime value, which is reported as its result; entrants the
    pool never started remain [Skipped].

    Each entrant must carry its {e own} governor (never
    [Util.Limits.unlimited], which cannot be cancelled) and must not
    share mutable state with any other entrant — clone models with
    {!Clone} first. *)

type 'a entrant = {
  name : string;
  limits : Util.Limits.t;  (** cancelled when another entrant wins *)
  run : unit -> 'a;
}

type 'a status =
  | Finished of 'a  (** ran to completion — possibly after cancellation *)
  | Skipped  (** the race was decided before a domain picked it up *)
  | Crashed of string  (** raised; the exception text *)

type 'a outcome = {
  winner : (string * 'a) option;
      (** the first decisive finisher, by wall-clock completion *)
  results : ('a status) array;  (** by entrant index *)
  seconds : float;
}

(** [run ~jobs ~decisive entrants] races the entrants on up to [jobs]
    domains (clamped to the entrant count; default: one domain per
    entrant). A crash is never decisive. When no decisive value
    arrives, every entrant runs to completion and [winner] is [None]. *)
val run : ?jobs:int -> decisive:('a -> bool) -> 'a entrant list -> 'a outcome
