let obs_batches = Obs.counter "par.pool.batches"
let obs_tasks = Obs.counter "par.pool.tasks"
let obs_domains = Obs.counter "par.pool.domains"

let default_jobs () = Domain.recommended_domain_count ()

(* Dynamic work distribution: each worker claims the next unprocessed
   index with one fetch-and-add. Every result slot is written by
   exactly one worker and read only after the join, so the plain
   result array needs no synchronization. *)
let map ~jobs f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    Obs.incr obs_batches;
    Obs.add obs_tasks n;
    if jobs = 1 then Array.map f items
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match f items.(i) with
            | v -> results.(i) <- Some v
            | exception exn ->
              (* first failure wins; drain the remaining indices so
                 every worker terminates and can be joined. The raw
                 backtrace is captured here, at the catch site — a bare
                 [raise] after the join would report the join point,
                 not the worker frame that actually failed *)
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (exn, bt)));
              Atomic.set next n;
              continue := false
        done
      in
      Obs.add obs_domains (jobs - 1);
      let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      match Atomic.get failure with
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None ->
        Array.map
          (function
            | Some v -> v
            | None ->
              (* unreachable: no failure means every index was processed *)
              assert false)
          results
    end
  end

let map_list ~jobs f items = Array.to_list (map ~jobs f (Array.of_list items))

let run_shards ~jobs f =
  if jobs < 1 then invalid_arg "Pool.run_shards: jobs < 1"
  else if jobs = 1 then f 0
  else begin
    Obs.incr obs_batches;
    Obs.add obs_domains (jobs - 1);
    let failures = Array.make jobs None in
    let shard w =
      match f w with
      | () -> ()
      | exception exn -> failures.(w) <- Some (exn, Printexc.get_raw_backtrace ())
    in
    let domains = List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> shard (i + 1))) in
    shard 0;
    List.iter Domain.join domains;
    Array.iter
      (function Some (exn, bt) -> Printexc.raise_with_backtrace exn bt | None -> ())
      failures
  end
