(** Per-engine model cloning for parallel verification.

    Engines grow their model's AIG manager while they run, and a
    manager shared between two engines would let one engine's nodes
    perturb the other's heuristics — or, across domains, race outright.
    Every parallel consumer therefore verifies a {e clone}: a
    structurally equal model in a fresh manager with no mutable state
    shared with the original (this is the fuzz oracle's per-engine
    clone discipline, lifted here so the portfolio, the fuzz oracle and
    the tests share one implementation).

    Cloning goes through the AIGER writer/reader — the round-trip is
    byte-identical (a fuzz-oracle invariant), so clones preserve node
    numbering, variable indices and latch order exactly.

    For cross-domain use, {!freeze} on the owning domain and {!thaw}
    on each worker: the frozen form is an immutable byte string, safe
    to share without synchronization, and each [thaw] builds a manager
    owned entirely by the thawing domain. *)

(** An immutable serialized model, safe to share across domains. *)
type frozen

val freeze : Netlist.Model.t -> frozen
val name : frozen -> string

(** Build a fresh model from the frozen bytes. Every call returns a new
    manager; thawing on the consuming domain keeps allocation local. *)
val thaw : frozen -> Netlist.Model.t

(** [model m] is [thaw (freeze m)]: a same-domain clone. *)
val model : Netlist.Model.t -> Netlist.Model.t
