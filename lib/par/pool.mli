(** Fork/join parallel mapping over OCaml 5 domains.

    The primitive under the multicore consumers (parallel SAT-merge
    batches, sharded fuzz campaigns): apply a function to every element
    of a batch on up to [jobs] domains and return the results {e in
    input order}, so callers that apply results sequentially afterwards
    stay deterministic regardless of completion order.

    Work distribution is dynamic (an atomic next-index cursor), so
    uneven items — one hard SAT query among many trivial ones — do not
    idle the other domains. The calling domain participates as a
    worker: [jobs = 1] runs the batch inline with no domain spawned,
    [jobs = n] spawns [n - 1].

    Exceptions raised by [f] are re-raised in the calling domain after
    every worker has been joined (the first one wins); no domain is
    ever left running. *)

(** [Domain.recommended_domain_count ()] — the whole-machine default
    for a [--jobs] flag. *)
val default_jobs : unit -> int

(** [map ~jobs f items] — [Array.map f items] on up to [jobs] domains.
    [jobs] is clamped to [1 .. Array.length items]. *)
val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** {!map} over lists. *)
val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [run_shards ~jobs f] runs [f 0], …, [f (jobs-1)] concurrently, shard 0
    on the calling domain and each other shard on its own fresh domain,
    and waits for all of them. Unlike {!map}'s dynamic work claiming, the
    shard index is a {e static} identity: use it when each worker carries
    its own state (a solver, a manager copy) and the mapping of work to
    worker state must be a deterministic function of [jobs] — e.g.
    worker [w] takes items [w], [w+jobs], [w+2*jobs], … The first
    exception (by shard index) is re-raised after all shards finish. *)
val run_shards : jobs:int -> (int -> unit) -> unit
