let obs_frozen = Obs.counter "par.clone.frozen"
let obs_thawed = Obs.counter "par.clone.thawed"

type frozen = { fr_name : string; fr_bytes : string }

let freeze m =
  Obs.incr obs_frozen;
  { fr_name = Netlist.Model.name m; fr_bytes = Netlist.Aiger.write m }

let name f = f.fr_name

let thaw f =
  Obs.incr obs_thawed;
  Netlist.Aiger.read ~name:f.fr_name f.fr_bytes

let model m = thaw (freeze m)
