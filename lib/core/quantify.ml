(* Abort accounting is the paper's headline number: how often the growth
   budget rejects an elimination and hands the variable to the SAT engine
   (partial quantification, §4). *)
let obs_span = Obs.span "quantify.one"
let obs_eliminated = Obs.counter "quantify.vars.eliminated"
let obs_aborted = Obs.counter "quantify.vars.aborted"
let obs_aborted_vars = Obs.counter "quantify.aborted_vars"
let obs_independent = Obs.counter "quantify.vars.independent"
let obs_cofactor_size = Obs.histogram "quantify.cofactor_size"
let obs_result_size = Obs.histogram "quantify.result_size"
let obs_saved = Obs.counter "quantify.nodes_saved_vs_naive"
let obs_limit_fallbacks = Obs.counter "limits.quantify_fallbacks"
let obs_backend_circuit = Obs.counter "quantify.backend.circuit"
let obs_backend_pqe = Obs.counter "quantify.backend.pqe"
let obs_backend_fallbacks = Obs.counter "quantify.backend.auto_fallbacks"
let obs_backend_growth = Obs.histogram "quantify.backend.predicted_growth"

type backend = Circuit | Pqe | Auto

let backend_name = function Circuit -> "circuit" | Pqe -> "pqe" | Auto -> "auto"

let backend_of_string = function
  | "circuit" -> Some Circuit
  | "pqe" -> Some Pqe
  | "auto" -> Some Auto
  | _ -> None

let backend_names = [ "circuit"; "pqe"; "auto" ]

type config = {
  sweep : Sweep.Sweeper.config;
  use_dontcare : bool;
  dontcare : Synth.Dontcare.config;
  use_rewrite : bool;
  growth_limit : float;
  growth_slack : int;
  greedy_order : bool;
  backend : backend;
  pqe : Pqe.config;
}

let default =
  {
    sweep = Sweep.Sweeper.default;
    use_dontcare = true;
    dontcare = Synth.Dontcare.default;
    use_rewrite = true;
    growth_limit = 2.0;
    growth_slack = 32;
    greedy_order = true;
    backend = Circuit;
    pqe = Pqe.default;
  }

let naive_config =
  {
    sweep = { Sweep.Sweeper.default with bdd_node_limit = 0; sat = None; sim_rounds = 1 };
    use_dontcare = false;
    dontcare = Synth.Dontcare.default;
    use_rewrite = false;
    growth_limit = infinity;
    growth_slack = max_int;
    greedy_order = false;
    backend = Circuit;
    pqe = Pqe.default;
  }

type var_report = {
  var : Aig.var;
  backend : backend;
  size_before : int;
  size_cof0 : int;
  size_cof1 : int;
  size_naive : int;
  sweep_report : Sweep.Sweeper.report option;
  dc_report : Synth.Dontcare.report option;
  pqe_report : Pqe.report option;
  size_after : int;
  aborted : bool;
}

let pp_var_report ppf r =
  Format.fprintf ppf "x%d [%s]: |F|=%d |F0|=%d |F1|=%d naive=%d final=%d%s" r.var
    (backend_name r.backend) r.size_before r.size_cof0 r.size_cof1 r.size_naive r.size_after
    (if r.aborted then " ABORTED" else "")

(* [infinity *. 0.] is NaN, so the unlimited case must short-circuit *)
let within_budget config ~before ~after =
  config.growth_limit = infinity
  || float_of_int after
     <= (config.growth_limit *. float_of_int before) +. float_of_int config.growth_slack

(* Circuit cofactoring core — the paper's algorithm. Assumes [l]
   depends on [v]. Returns the raw outcome; the [one] wrapper does the
   eliminate/abort accounting shared with the other backend. *)
let circuit_core ~config ?bank aig checker ~prng ~size_before l v =
  let f0 = Aig.cofactor aig l ~v ~phase:false in
  let f1 = Aig.cofactor aig l ~v ~phase:true in
  let size_naive = Aig.size aig (Aig.or_ aig f0 f1) in
  (* governor tripped: fall back to the naive cofactor disjunction —
     sweeping, don't-care optimization and rewriting all spend SAT or
     BDD effort the budget no longer covers. The growth budget below
     still applies, so partial quantification stays partial. *)
  let degraded = Util.Limits.check (Cnf.Checker.limits checker) <> None in
  if degraded then begin
    Obs.incr obs_limit_fallbacks;
    Obs.Trace_events.instant_args "quantify.limit_fallback" "var" v
  end;
  (* merge phase on the joint cone of the two cofactors *)
  let run_sweep =
    (not degraded)
    && (config.sweep.Sweep.Sweeper.sat <> None || config.sweep.Sweep.Sweeper.bdd_node_limit > 0)
  in
  let (f0, f1), sweep_report =
    if not run_sweep then ((f0, f1), None)
    else begin
      let lits, report =
        Sweep.Sweeper.sweep_lits ~config:config.sweep ?bank aig checker ~prng [ f0; f1 ]
      in
      match lits with
      | [ a; b ] -> ((a, b), Some report)
      | _ -> assert false
    end
  in
  (* optimization phase on the disjunction *)
  let result, dc_report =
    if config.use_dontcare && not degraded then begin
      let g, report =
        Synth.Dontcare.disjunction ~config:config.dontcare ?bank aig checker ~prng f0 f1
      in
      (g, Some report)
    end
    else (Aig.or_ aig f0 f1, None)
  in
  let result =
    if config.use_rewrite && not degraded then fst (Synth.Rewrite.resubstitute aig result)
    else result
  in
  let size_after = Aig.size aig result in
  let aborted = not (within_budget config ~before:size_before ~after:size_after) in
  Obs.observe obs_cofactor_size (Aig.size aig f0);
  Obs.observe obs_cofactor_size (Aig.size aig f1);
  let report =
    {
      var = v;
      backend = Circuit;
      size_before;
      size_cof0 = Aig.size aig f0;
      size_cof1 = Aig.size aig f1;
      size_naive;
      sweep_report;
      dc_report;
      pqe_report = None;
      size_after = (if aborted then size_before else size_after);
      aborted;
    }
  in
  ((if aborted then Error result else Ok result), report)

(* PQE core — clause-level elimination, no cofactor doubling. The
   growth budget still applies to the rebuilt clause conjunction, so
   partial quantification stays partial. On abort the [Error] payload
   falls back to the naive disjunction to honor the interface contract
   (the carried literal is always equivalent to [∃v. l]). *)
let pqe_core ~config aig checker ~size_before l v =
  let outcome, pqe_report = Pqe.eliminate ~config:config.pqe aig checker l v in
  let naive () = Aig.or_ aig (Aig.cofactor aig l ~v ~phase:false) (Aig.cofactor aig l ~v ~phase:true) in
  let result, size_after, aborted =
    match outcome with
    | Ok r ->
      let size_after = Aig.size aig r in
      if within_budget config ~before:size_before ~after:size_after then (Ok r, size_after, false)
      else (Error (naive ()), size_before, true)
    | Error _ -> (Error (naive ()), size_before, true)
  in
  let report =
    {
      var = v;
      backend = Pqe;
      size_before;
      size_cof0 = 0;
      size_cof1 = 0;
      size_naive = 0;
      sweep_report = None;
      dc_report = None;
      pqe_report = Some pqe_report;
      size_after;
      aborted;
    }
  in
  (result, report)

(* Backend selector for [Auto]: deterministic, cheap, and advisory —
   correctness never depends on it because the auto ladder falls back
   to the other backend on abort. Signals: structural support width
   (PQE enumerates over it), predicted cofactor growth (the region
   Shannon expansion duplicates), pattern-bank agreement between the
   cofactors (lanes where they already agree merge for free in the
   circuit backend), and the cost of the most recent solver query
   (PQE spends many queries, so a struggling solver favors circuit). *)
let decide ?bank ~config aig checker l v =
  let support_n = List.length (Aig.support aig l) in
  if support_n > config.pqe.Pqe.max_support then Circuit
  else begin
    let size_l = max 1 (Aig.size aig l) in
    let f0 = Aig.cofactor aig l ~v ~phase:false in
    let f1 = Aig.cofactor aig l ~v ~phase:true in
    let growth = float_of_int (Aig.size aig f0 + Aig.size aig f1) /. float_of_int size_l in
    Obs.observe obs_backend_growth (int_of_float (growth *. 100.));
    let agreement =
      match bank with
      | Some b when Sweep.Pattern_bank.n_words b > 0 ->
        let n = Sweep.Pattern_bank.n_words b in
        let same = ref 0 in
        for wi = 0 to n - 1 do
          let words u = Sweep.Pattern_bank.word b u wi in
          if Aig.simulate aig f0 words = Aig.simulate aig f1 words then incr same
        done;
        float_of_int !same /. float_of_int n
      | Some _ | None -> 1.0
    in
    let recent_conflicts = Cnf.Checker.last_query_conflicts checker in
    if recent_conflicts > 10_000 then Circuit
    else if growth >= 1.5 && agreement <= 0.5 then Pqe
    else if support_n <= 12 && agreement <= 0.25 then Pqe
    else Circuit
  end

let one ?(config = default) ?bank aig checker ~prng l v =
  Obs.with_span obs_span @@ fun () ->
  Obs.Trace_events.begin_args "quantify.var" "var" v;
  let size_before = Aig.size aig l in
  if not (Aig.depends_on aig l v) then begin
    Obs.incr obs_independent;
    Obs.Trace_events.end_args "quantify.var" "result_size" size_before;
    ( Ok l,
      {
        var = v;
        backend = config.backend;
        size_before;
        size_cof0 = size_before;
        size_cof1 = size_before;
        size_naive = size_before;
        sweep_report = None;
        dc_report = None;
        pqe_report = None;
        size_after = size_before;
        aborted = false;
      } )
  end
  else begin
    let run = function
      | Circuit -> circuit_core ~config ?bank aig checker ~prng ~size_before l v
      | Pqe -> pqe_core ~config aig checker ~size_before l v
      | Auto -> assert false
    in
    let ((_, report) as outcome) =
      match config.backend with
      | Circuit -> run Circuit
      | Pqe -> run Pqe
      | Auto -> (
        (* the auto ladder: predicted backend first, the other on
           abort — auto only keeps a variable when both backends do *)
        let primary = decide ?bank ~config aig checker l v in
        let secondary = match primary with Circuit -> Pqe | _ -> Circuit in
        match run primary with
        | (Ok _, _) as first -> first
        | (Error _, _) as first -> (
          Obs.incr obs_backend_fallbacks;
          match run secondary with (Ok _, _) as second -> second | (Error _, _) -> first))
    in
    let aborted = report.aborted in
    (* partial-quantification marker: the growth budget rejected this
       elimination and the variable stays for the SAT engine *)
    if aborted then Obs.Trace_events.instant_args "quantify.aborted" "var" v;
    Obs.Trace_events.end_args "quantify.var" "result_size" report.size_after;
    Obs.incr (if aborted then obs_aborted else obs_eliminated);
    Obs.incr (match report.backend with Pqe -> obs_backend_pqe | _ -> obs_backend_circuit);
    Obs.observe obs_result_size report.size_after;
    if (not aborted) && report.size_naive > 0 then
      Obs.add obs_saved (max 0 (report.size_naive - report.size_after));
    outcome
  end

let forall ?(config = default) ?bank aig checker ~prng l v =
  let result, report = one ~config ?bank aig checker ~prng (Aig.not_ l) v in
  (Result.fold ~ok:(fun r -> Ok (Aig.not_ r)) ~error:(fun r -> Error (Aig.not_ r)) result, report)

let block ?(config = default) ?bank aig checker ~prng l ~vars =
  let vars = List.sort_uniq Int.compare (List.filter (Aig.depends_on aig l) vars) in
  let k = List.length vars in
  if k = 0 then Ok l
  else if k > 6 then invalid_arg "Quantify.block: at most 6 variables"
  else begin
    let size_before = Aig.size aig l in
    let vars = Array.of_list vars in
    let cofactors =
      List.init (1 lsl k) (fun mask ->
          let c = ref l in
          Array.iteri
            (fun i v -> c := Aig.cofactor aig !c ~v ~phase:((mask lsr i) land 1 = 1))
            vars;
          !c)
      |> List.sort_uniq Int.compare
    in
    (* same degradation ladder as [one]: once the governor trips, the
       block collapses to the plain disjunction of the cofactors *)
    let degraded = Util.Limits.check (Cnf.Checker.limits checker) <> None in
    if degraded then Obs.incr obs_limit_fallbacks;
    (* joint merge phase across every cofactor at once *)
    let cofactors =
      let run_sweep =
        (not degraded)
        && (config.sweep.Sweep.Sweeper.sat <> None || config.sweep.Sweep.Sweeper.bdd_node_limit > 0)
      in
      if not run_sweep then cofactors
      else
        fst (Sweep.Sweeper.sweep_lits ~config:config.sweep ?bank aig checker ~prng cofactors)
        |> List.sort_uniq Int.compare
    in
    (* balanced disjunction tree, each join optimized under mutual DCs *)
    let join a b =
      if config.use_dontcare && not degraded then
        fst (Synth.Dontcare.disjunction ~config:config.dontcare ?bank aig checker ~prng a b)
      else Aig.or_ aig a b
    in
    let rec reduce = function
      | [] -> Aig.false_
      | [ x ] -> x
      | xs ->
        let rec pair_up = function
          | a :: b :: rest -> join a b :: pair_up rest
          | tail -> tail
        in
        reduce (pair_up xs)
    in
    let result = reduce cofactors in
    if within_budget config ~before:size_before ~after:(Aig.size aig result) then Ok result
    else Error result
  end

type result = {
  lit : Aig.lit;
  eliminated : Aig.var list;
  kept : Aig.var list;
  reports : var_report list;
}

(* Cheap cost estimate for the greedy order: number of cone nodes whose
   function depends on the variable — exactly the region Shannon expansion
   duplicates. One bottom-up pass computes it for all variables at once. *)
let influence aig l vars =
  let interesting = Util.Int_tbl.create 16 in
  List.iter (fun v -> Util.Int_tbl.replace interesting v ()) vars;
  let counts = Util.Int_tbl.create 16 in
  (* node -> set of interesting vars in its support, as a sorted int list
     (cones are small; sets stay tiny because [vars] is the candidate list) *)
  let supports : int list Util.Int_tbl.t = Util.Int_tbl.create 64 in
  let support_of_lit lit =
    let n = Aig.node_of_lit lit in
    match Util.Int_tbl.find_opt supports n with
    | Some s -> s
    | None -> (
      match Aig.var_of_lit aig lit with
      | Some v when Util.Int_tbl.mem interesting v -> [ v ]
      | Some _ | None -> [])
  in
  let rec merge a b =
    match (a, b) with
    | [], s | s, [] -> s
    | x :: xs, y :: ys ->
      if x < y then x :: merge xs b
      else if x > y then y :: merge a ys
      else x :: merge xs ys
  in
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins aig n in
      let s = merge (support_of_lit f0) (support_of_lit f1) in
      Util.Int_tbl.replace supports n s;
      List.iter
        (fun v ->
          Util.Int_tbl.replace counts v
            (1 + Option.value (Util.Int_tbl.find_opt counts v) ~default:0))
        s)
    (Aig.cone aig [ l ]);
  fun v -> Option.value (Util.Int_tbl.find_opt counts v) ~default:0

let all ?(config = default) ?bank aig checker ~prng l ~vars =
  let rec go l remaining eliminated kept reports =
    match remaining with
    | [] ->
      (* which variables the partial quantification abandoned — count
         them here and let traversals name them in report meta *)
      Obs.add obs_aborted_vars (List.length kept);
      { lit = l; eliminated = List.rev eliminated; kept = List.rev kept; reports = List.rev reports }
    | _ ->
      let remaining =
        if config.greedy_order then begin
          let cost = influence aig l remaining in
          List.stable_sort (fun a b -> Int.compare (cost a) (cost b)) remaining
        end
        else remaining
      in
      (match remaining with
      | [] -> assert false
      | v :: rest -> (
        match one ~config ?bank aig checker ~prng l v with
        | Ok l', report -> go l' rest (v :: eliminated) kept (report :: reports)
        | Error _, report -> go l rest eliminated (v :: kept) (report :: reports)))
  in
  go l vars [] [] []
