type result = {
  lit : Aig.lit;
  substituted_size : int;
  eliminated : Aig.var list;
  kept : Aig.var list;
  reports : Quantify.var_report list;
}

let substitute m b =
  Aig.compose (Netlist.Model.aig m) b ~subst:(Netlist.Model.next_subst m)

let obs_span = Obs.span "preimage.compute"
let obs_substituted_size = Obs.histogram "preimage.substituted_size"

let compute ?config ?bank m checker ~prng ~frontier ~extra_vars =
  Obs.with_span obs_span @@ fun () ->
  Obs.Trace_events.begin_ "preimage.compute";
  let aig = Netlist.Model.aig m in
  let inlined = substitute m frontier in
  let support = Aig.support aig inlined in
  let input_vars = Netlist.Model.input_vars m in
  let to_quantify =
    List.filter (fun v -> List.mem v input_vars || List.mem v extra_vars) support
  in
  Obs.observe obs_substituted_size (Aig.size aig inlined);
  let q = Quantify.all ?config ?bank aig checker ~prng inlined ~vars:to_quantify in
  Obs.Trace_events.end_args "preimage.compute" "kept" (List.length q.Quantify.kept);
  {
    lit = q.Quantify.lit;
    substituted_size = Aig.size aig inlined;
    eliminated = q.Quantify.eliminated;
    kept = q.Quantify.kept;
    reports = q.Quantify.reports;
  }
