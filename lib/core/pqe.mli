(** CNF-level partial quantifier elimination (Goldberg & Manolios,
    PAPERS.md) as an alternative quantification backend.

    Where circuit cofactoring computes [∃v. F] as [F|v=0 ∨ F|v=1] —
    doubling the cone in the worst case — PQE works at the clause
    level: it first covers the cone with a set of implicate clauses
    [D ≡ F] over the structural support, then eliminates [v] by
    Davis–Putnam resolution, {e dropping every resolvent the remaining
    set already implies}. The redundancy queries run on the shared
    incremental {!Cnf.Checker}, so learned clauses from one query speed
    up the next. On parity-shaped cones ([∃v. v ⊕ r]) the resolvents
    are tautologies and the result collapses to [true] — exactly the
    inputs where budgeted cofactoring aborts.

    Soundness discipline under a three-valued solver: a [Maybe] while
    proving the cover aborts the elimination (the caller keeps the
    variable — partial quantification, never a wrong answer); a
    [Maybe] on a redundancy query conservatively {e keeps} the
    resolvent. Dropping a resolvent [r] only needs the current kept
    set [K ⊨ r], and [K] only grows, so the final set still implies
    every dropped clause. *)

type config = {
  max_support : int;
      (** Abort when the cone's structural support exceeds this many
          variables: the implicate cover is enumerated over the
          support, so width bounds the worst case. *)
  clause_budget : int;  (** Maximum implicate-cover clauses. *)
  resolvent_budget : int;  (** Maximum resolvent pairs considered. *)
}

val default : config

(** Why an elimination was abandoned. The caller must keep the
    variable under quantifier scope (partial quantification). *)
type abort_reason =
  | Support_too_wide of int  (** support size exceeded [max_support] *)
  | Cover_budget  (** implicate enumeration exceeded [clause_budget] *)
  | Resolvent_budget  (** resolution exceeded [resolvent_budget] *)
  | Solver_undecided
      (** a cover-phase query answered [Maybe]; equivalence of the
          clause cover could not be certified *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit

type report = {
  support_size : int;
  cover_clauses : int;  (** implicates enumerated to cover the cone *)
  resolvents_formed : int;  (** non-tautological resolvents examined *)
  resolvents_dropped : int;  (** resolvents proven redundant *)
  result_clauses : int;  (** clauses conjoined into the result *)
  sat_queries : int;  (** checker queries spent by this elimination *)
  aborted : abort_reason option;
}

val pp_report : Format.formatter -> report -> unit

(** [eliminate ?config aig checker l v] computes a literal equivalent
    to [∃v. l], or the abort reason when a budget or an undecided
    query stopped it. On [Ok r], [r]'s structural support excludes [v]
    by construction (it is rebuilt as a conjunction of clauses none of
    which mention [v]). On [Error _] nothing was decided about [l] —
    the caller falls back or keeps the variable. *)
val eliminate :
  ?config:config ->
  Aig.t ->
  Cnf.Checker.t ->
  Aig.lit ->
  Aig.var ->
  (Aig.lit, abort_reason) result * report
