(* Partial quantifier elimination: cover the cone with implicate
   clauses, then resolve the variable away, proving resolvents
   redundant instead of keeping them all. See pqe.mli for the
   soundness discipline on Maybe answers. *)

let obs_span = Obs.span "pqe.eliminate"
let obs_cover_clauses = Obs.counter "pqe.cover_clauses"
let obs_resolvents = Obs.counter "pqe.resolvents"
let obs_dropped = Obs.counter "pqe.resolvents_dropped"
let obs_aborts = Obs.counter "pqe.aborts"
let obs_queries_hist = Obs.histogram "pqe.queries_per_var"

type config = { max_support : int; clause_budget : int; resolvent_budget : int }

let default = { max_support = 24; clause_budget = 256; resolvent_budget = 2048 }

type abort_reason =
  | Support_too_wide of int
  | Cover_budget
  | Resolvent_budget
  | Solver_undecided

let pp_abort_reason ppf = function
  | Support_too_wide n -> Format.fprintf ppf "support too wide (%d vars)" n
  | Cover_budget -> Format.pp_print_string ppf "cover clause budget"
  | Resolvent_budget -> Format.pp_print_string ppf "resolvent budget"
  | Solver_undecided -> Format.pp_print_string ppf "solver undecided"

type report = {
  support_size : int;
  cover_clauses : int;
  resolvents_formed : int;
  resolvents_dropped : int;
  result_clauses : int;
  sat_queries : int;
  aborted : abort_reason option;
}

let pp_report ppf r =
  Format.fprintf ppf "support=%d cover=%d resolvents=%d dropped=%d kept=%d queries=%d%a"
    r.support_size r.cover_clauses r.resolvents_formed r.resolvents_dropped r.result_clauses
    r.sat_queries
    (fun ppf -> function
      | None -> ()
      | Some reason -> Format.fprintf ppf " ABORTED (%a)" pp_abort_reason reason)
    r.aborted

(* A clause is a sorted (var, positive?) list; the empty clause is
   [false]. Sorted order makes resolution a linear merge and gives a
   canonical key for duplicate suppression. *)
type clause = (Aig.var * bool) list

let compare_plit (v1, s1) (v2, s2) =
  let c = Int.compare v1 v2 in
  if c <> 0 then c else Bool.compare s1 s2

let lit_of aig (v, positive) =
  let x = Aig.var aig v in
  if positive then x else Aig.not_ x

let clause_lit aig (c : clause) = Aig.or_list aig (List.map (lit_of aig) c)
let cube_lits aig cube = List.map (lit_of aig) cube

(* Resolvent of [cp] (contains v positive) and [cn] (contains v
   negative) on [v]: the merged literals minus both pivots, [None] on a
   tautology (some other variable appears in both phases). *)
let resolve (cp : clause) (cn : clause) v =
  let rec merge a b =
    match (a, b) with
    | [], s | s, [] -> Some s
    | (x : Aig.var * bool) :: xs, y :: ys ->
      let c = compare_plit x y in
      if c = 0 then Option.map (fun s -> x :: s) (merge xs ys)
      else if fst x = fst y then None (* x and ¬x: tautology *)
      else if c < 0 then Option.map (fun s -> x :: s) (merge xs b)
      else Option.map (fun s -> y :: s) (merge a ys)
  in
  merge
    (List.filter (fun (u, _) -> u <> v) cp)
    (List.filter (fun (u, _) -> u <> v) cn)

(* Shrink a falsifying cube: literal by literal, drop it if [l ∧ cube]
   stays unsatisfiable without it. A Maybe keeps the literal — the
   larger cube is still certified unsatisfiable with [l]. *)
let generalize_cube aig checker l cube =
  let rec go kept = function
    | [] -> List.rev kept
    | plit :: rest -> (
      let candidate = List.rev_append kept rest in
      match Cnf.Checker.satisfiable checker (l :: cube_lits aig candidate) with
      | Cnf.Checker.No -> go kept rest
      | Cnf.Checker.Yes | Cnf.Checker.Maybe -> go (plit :: kept) rest)
  in
  go [] cube

(* Enumerate implicate clauses until their conjunction is equivalent to
   [l]: each model of [cover ∧ ¬l] yields a falsifying cube of [l],
   generalized then negated into a new cover clause that excludes it.
   Invariant: [l ⊨ clause] for every emitted clause, so termination
   ([cover ∧ ¬l] unsatisfiable) certifies [cover ≡ l]. *)
let implicate_cover config aig checker l support =
  let rec loop clauses lits n =
    if n >= config.clause_budget then Error Cover_budget
    else
      match Cnf.Checker.satisfiable checker (Aig.not_ l :: lits) with
      | Cnf.Checker.No -> Ok (List.rev clauses)
      | Cnf.Checker.Maybe -> Error Solver_undecided
      | Cnf.Checker.Yes ->
        (* model_var defaults unassigned vars to false: any total
           extension of the witness still satisfies ¬l ∧ cover *)
        let cube = List.map (fun u -> (u, Cnf.Checker.model_var checker u)) support in
        let cube = generalize_cube aig checker l cube in
        let clause : clause =
          List.sort compare_plit (List.map (fun (u, b) -> (u, not b)) cube)
        in
        loop (clause :: clauses) (clause_lit aig clause :: lits) (n + 1)
  in
  loop [] [] 0

(* Davis–Putnam elimination of [v] from the cover, with redundancy
   dropping: a resolvent already implied by the kept set K is skipped.
   K only grows, so the final set still implies every dropped
   resolvent — K_final ≡ ∃v. cover. *)
let resolve_out config aig checker cover v =
  let pos, rest = List.partition (List.mem (v, true)) cover in
  let neg, rest = List.partition (List.mem (v, false)) rest in
  let seen = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace seen (c : clause) ()) rest;
  let kept = ref (List.rev rest) in
  let kept_lits = ref (List.rev_map (clause_lit aig) rest) in
  let formed = ref 0 in
  let dropped = ref 0 in
  let budget = ref config.resolvent_budget in
  try
    List.iter
      (fun cp ->
        List.iter
          (fun cn ->
            decr budget;
            if !budget < 0 then raise Exit;
            match resolve cp cn v with
            | None -> () (* tautology: trivially redundant *)
            | Some r when Hashtbl.mem seen r -> ()
            | Some r -> (
              Hashtbl.replace seen r ();
              incr formed;
              match Cnf.Checker.implies_clause checker ~given:!kept_lits (List.map (lit_of aig) r) with
              | Cnf.Checker.Yes -> incr dropped
              | Cnf.Checker.No | Cnf.Checker.Maybe ->
                (* Maybe keeps the resolvent: adding an implicate of
                   the resolvent pair is always sound, just larger *)
                kept := r :: !kept;
                kept_lits := clause_lit aig r :: !kept_lits))
          neg)
      pos;
    Ok (List.rev !kept, !formed, !dropped)
  with Exit -> Error (Resolvent_budget, !formed, !dropped)

let eliminate ?(config = default) aig checker l v =
  Obs.with_span obs_span @@ fun () ->
  Obs.Trace_events.begin_args "pqe.eliminate" "var" v;
  let queries_before = Cnf.Checker.queries checker in
  let support = List.sort_uniq Int.compare (Aig.support aig l) in
  let support_size = List.length support in
  let finish ~cover_clauses ~resolvents_formed ~resolvents_dropped ~result_clauses outcome =
    let sat_queries = Cnf.Checker.queries checker - queries_before in
    let aborted = match outcome with Ok _ -> None | Error reason -> Some reason in
    if aborted <> None then Obs.incr obs_aborts;
    Obs.add obs_cover_clauses cover_clauses;
    Obs.add obs_resolvents resolvents_formed;
    Obs.add obs_dropped resolvents_dropped;
    Obs.observe obs_queries_hist sat_queries;
    Obs.Trace_events.end_args "pqe.eliminate" "queries" sat_queries;
    ( outcome,
      {
        support_size;
        cover_clauses;
        resolvents_formed;
        resolvents_dropped;
        result_clauses;
        sat_queries;
        aborted;
      } )
  in
  if not (List.mem v support) then
    finish ~cover_clauses:0 ~resolvents_formed:0 ~resolvents_dropped:0 ~result_clauses:0 (Ok l)
  else if support_size > config.max_support then
    finish ~cover_clauses:0 ~resolvents_formed:0 ~resolvents_dropped:0 ~result_clauses:0
      (Error (Support_too_wide support_size))
  else
    match implicate_cover config aig checker l support with
    | Error reason ->
      finish ~cover_clauses:0 ~resolvents_formed:0 ~resolvents_dropped:0 ~result_clauses:0
        (Error reason)
    | Ok cover -> (
      let cover_clauses = List.length cover in
      match resolve_out config aig checker cover v with
      | Error (reason, formed, dropped) ->
        finish ~cover_clauses ~resolvents_formed:formed ~resolvents_dropped:dropped
          ~result_clauses:0 (Error reason)
      | Ok (clauses, formed, dropped) ->
        let result = Aig.and_list aig (List.map (clause_lit aig) clauses) in
        finish ~cover_clauses ~resolvents_formed:formed ~resolvents_dropped:dropped
          ~result_clauses:(List.length clauses) (Ok result))
