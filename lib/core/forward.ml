let exact_answer checker lits =
  Cnf.Checker.set_conflict_limit checker None;
  Cnf.Checker.satisfiable checker lits

(* see [Reachability.budget_reason]: certification queries left [Maybe]
   by the run-wide governor must degrade the run, never read as No *)
let budget_reason limits =
  match Util.Limits.exhausted limits with
  | Some r -> Util.Limits.resource_name r
  | None -> Util.Limits.resource_name Util.Limits.Conflicts

(* Same metric names as [Reachability] — the registry resolves them to
   the same global accumulators, so either traversal direction fills the
   per-frame section of the run report. *)
let obs_iterations = Obs.counter "reach.iterations"
let obs_iter_span = Obs.span "reach.iteration"
let obs_frontier_size = Obs.histogram "reach.frontier_size"
let obs_reached_size = Obs.histogram "reach.reached_size"
let obs_eliminated = Obs.counter "reach.eliminated_inputs"
let obs_kept = Obs.counter "reach.kept_inputs"

let sum_naive reports =
  List.fold_left (fun acc r -> acc + r.Quantify.size_naive) 0 reports

let run ?(config = Reachability.default) ?(limits = Util.Limits.unlimited) model =
  let watch = Util.Stopwatch.start () in
  Obs.Progress.begin_run ();
  let limits = Obs.Limits.arm limits in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_limits checker limits;
  let prng = Util.Prng.create config.Reachability.seed in
  (* one pattern bank for the whole traversal, shared by every image step *)
  let bank = Sweep.Pattern_bank.create () in
  let init = Netlist.Model.init_lit model in
  let input_vars = Netlist.Model.input_vars model in
  let state_vars = Netlist.Model.state_vars model in
  let iterations = ref [] in
  let peak = ref (Aig.size aig init) in
  let aborted_acc = ref [] in
  let finish ?invariant verdict =
    {
      Reachability.verdict;
      iterations = List.rev !iterations;
      total_seconds = Util.Stopwatch.elapsed watch;
      peak_frontier = !peak;
      sat_queries = Cnf.Checker.queries checker;
      invariant;
      aborted_vars = Reachability.record_aborted_vars !aborted_acc;
    }
  in
  let falsified hit_iteration =
    if config.Reachability.make_trace || config.Reachability.use_reached_dc then begin
      let unroll = Unroll.create model in
      let rec search d =
        if d > hit_iteration + 64 then None
        else
          match exact_answer checker [ Unroll.bad_at unroll d ] with
          | Cnf.Checker.Yes ->
            Some
              (d, Unroll.trace_from_model unroll ~depth:d ~value:(Cnf.Checker.model_var checker))
          | Cnf.Checker.No -> search (d + 1)
          (* a budgeted Maybe must stop the scan — skipping past an
             undecided depth could certify a wrong depth *)
          | Cnf.Checker.Maybe -> None
      in
      match search hit_iteration with
      | Some (d, t) ->
        Reachability.Falsified
          { depth = d; trace = (if config.Reachability.make_trace then Some t else None) }
      | None -> (
        (* the reached-set don't-care makes the hit iteration a bound, not
           the depth; if the governor kept the scan from confirming it,
           degrade rather than risk a wrong depth *)
        match Util.Limits.exhausted limits with
        | Some r when config.Reachability.use_reached_dc ->
          Reachability.Out_of_budget
            { reason = Util.Limits.resource_name r; frames = hit_iteration }
        | Some _ | None -> Reachability.Falsified { depth = hit_iteration; trace = None })
    end
    else Reachability.Falsified { depth = hit_iteration; trace = None }
  in
  (* bad states over the state variables (property inputs quantified) *)
  let bad_raw = Aig.not_ model.Netlist.Model.property in
  let bad_inputs = List.filter (fun v -> List.mem v input_vars) (Aig.support aig bad_raw) in
  let bad_result =
    Quantify.all ~config:config.Reachability.quant ~bank aig checker ~prng bad_raw
      ~vars:bad_inputs
  in
  let bad = bad_result.Quantify.lit in
  let bad_clean = bad_result.Quantify.kept = [] in
  aborted_acc := bad_result.Quantify.kept;
  (* primed variables standing for the next state in the relational image *)
  let primed = List.map (fun l -> (l.Netlist.Model.state_var, Aig.fresh_var aig)) model.Netlist.Model.latches in
  let transition =
    Aig.and_list aig
      (List.map
         (fun l ->
           let y = Aig.var aig (List.assoc l.Netlist.Model.state_var primed) in
           Aig.iff_ aig y l.Netlist.Model.next)
         model.Netlist.Model.latches)
  in
  let unprime v =
    let back = List.find_opt (fun (_, y) -> y = v) primed in
    Option.map (fun (s, _) -> Aig.var aig s) back
  in
  let aux_vars = ref [] in
  (* Img(R): conjoin the transition relation, eliminate current-state,
     input and residual variables, then rename primed to current *)
  let image frontier =
    let product = Aig.and_ aig transition frontier in
    let support = Aig.support aig product in
    let to_quantify =
      List.filter
        (fun v ->
          List.mem v state_vars || List.mem v input_vars || List.mem v !aux_vars)
        support
    in
    let q =
      Quantify.all ~config:config.Reachability.quant ~bank aig checker ~prng product
        ~vars:to_quantify
    in
    aborted_acc := q.Quantify.kept @ !aborted_acc;
    (* rename residual model variables so they cannot collide with the
       next iteration's state/input variables *)
    let residual_model_vars =
      List.filter (fun v -> List.mem v state_vars || List.mem v input_vars) q.Quantify.kept
    in
    let renaming = List.map (fun v -> (v, Aig.fresh_var aig)) residual_model_vars in
    let lit =
      if renaming = [] then q.Quantify.lit
      else
        Aig.compose aig q.Quantify.lit ~subst:(fun v ->
            Option.map (Aig.var aig) (List.assoc_opt v renaming))
    in
    aux_vars :=
      List.map snd renaming
      @ List.filter (fun v -> not (List.mem v q.Quantify.eliminated)) !aux_vars;
    let renamed = Aig.compose aig lit ~subst:unprime in
    (renamed, q)
  in
  match exact_answer checker [ init; bad ] with
  | Cnf.Checker.Yes -> finish (falsified 0)
  | Cnf.Checker.Maybe ->
    finish (Reachability.Out_of_budget { reason = budget_reason limits; frames = 0 })
  | Cnf.Checker.No -> begin
    let reached = ref init in
    let frontier = ref init in
    let rec loop k =
      (* per-frame governor poll, mirroring the backward engine *)
      match Util.Limits.check_aig_nodes limits (Aig.num_nodes aig) with
      | Some r ->
        Obs.Trace_events.instant_args "reach.limit_stop" "frame" k;
        finish
          (Reachability.Out_of_budget
             { reason = Util.Limits.resource_name r; frames = k - 1 })
      | None ->
      if k > config.Reachability.max_iterations then
        finish (Reachability.Out_of_budget { reason = "iteration limit"; frames = k - 1 })
      else begin
        let step_watch = Util.Stopwatch.start () in
        Obs.Trace_events.begin_args "reach.frame" "frame" k;
        let img, q = image !frontier in
        let img =
          if config.Reachability.sweep_frontier then
            fst (Synth.Opt.sweep_and_compact ~bank aig checker ~prng img)
          else img
        in
        let img =
          if config.Reachability.use_reached_dc then
            fst
              (Synth.Dontcare.simplify_under_care ~bank aig checker ~prng
                 ~care:(Aig.not_ !reached) img)
          else img
        in
        let fsize = Aig.size aig img in
        if fsize > !peak then peak := fsize;
        let reached' = Aig.or_ aig !reached img in
        let it =
          {
            Reachability.index = k;
            frontier_size = fsize;
            reached_size = Aig.size aig reached';
            eliminated_inputs = List.length q.Quantify.eliminated;
            kept_inputs = List.length q.Quantify.kept;
            naive_size = sum_naive q.Quantify.reports;
            seconds = Util.Stopwatch.elapsed step_watch;
          }
        in
        Obs.incr obs_iterations;
        Obs.add_seconds obs_iter_span it.Reachability.seconds;
        Obs.observe obs_frontier_size it.Reachability.frontier_size;
        Obs.observe obs_reached_size it.Reachability.reached_size;
        Obs.add obs_eliminated it.Reachability.eliminated_inputs;
        Obs.add obs_kept it.Reachability.kept_inputs;
        Obs.Trace_events.sample "reach.frontier_size" it.Reachability.frontier_size;
        Obs.Trace_events.sample "reach.reached_size" it.Reachability.reached_size;
        Obs.Progress.frame ~index:it.Reachability.index ~nodes:it.Reachability.frontier_size;
        iterations := it :: !iterations;
        Obs.Trace_events.end_args "reach.frame" "frontier_size" fsize;
        match exact_answer checker [ img; bad ] with
        | Cnf.Checker.Yes ->
          Obs.Trace_events.instant_args "reach.falsified" "frame" k;
          finish (falsified k)
        | Cnf.Checker.Maybe ->
          (* an undecided image∩bad test: neither this frame's hit nor a
             later Proved can be trusted — stop with the anytime verdict *)
          Obs.Trace_events.instant_args "reach.limit_stop" "frame" k;
          finish (Reachability.Out_of_budget { reason = budget_reason limits; frames = k })
        | Cnf.Checker.No -> (
          match exact_answer checker [ img; Aig.not_ !reached ] with
          | Cnf.Checker.No ->
            (* forward certificate: the reached set itself is inductive,
               contains the initial states, and avoids every bad state *)
            let invariant =
              if bad_clean && !aux_vars = [] then Some reached' else None
            in
            Obs.Trace_events.instant_args "reach.proved" "frame" k;
            finish ?invariant Reachability.Proved
          | Cnf.Checker.Maybe ->
            (* an undecided fixpoint test can never be read as closure *)
            Obs.Trace_events.instant_args "reach.limit_stop" "frame" k;
            finish (Reachability.Out_of_budget { reason = budget_reason limits; frames = k })
          | Cnf.Checker.Yes ->
            frontier := Aig.and_ aig img (Aig.not_ !reached);
            reached := reached';
            loop (k + 1))
      end
    in
    loop 1
  end
