let exact_answer checker lits =
  Cnf.Checker.set_conflict_limit checker None;
  Cnf.Checker.satisfiable checker lits

(* Same metric names as [Reachability] — the registry resolves them to
   the same global accumulators, so either traversal direction fills the
   per-frame section of the run report. *)
let obs_iterations = Obs.counter "reach.iterations"
let obs_iter_span = Obs.span "reach.iteration"
let obs_frontier_size = Obs.histogram "reach.frontier_size"
let obs_reached_size = Obs.histogram "reach.reached_size"
let obs_eliminated = Obs.counter "reach.eliminated_inputs"
let obs_kept = Obs.counter "reach.kept_inputs"

let sum_naive reports =
  List.fold_left (fun acc r -> acc + r.Quantify.size_naive) 0 reports

let run ?(config = Reachability.default) model =
  let watch = Util.Stopwatch.start () in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  let prng = Util.Prng.create config.Reachability.seed in
  (* one pattern bank for the whole traversal, shared by every image step *)
  let bank = Sweep.Pattern_bank.create () in
  let init = Netlist.Model.init_lit model in
  let input_vars = Netlist.Model.input_vars model in
  let state_vars = Netlist.Model.state_vars model in
  let iterations = ref [] in
  let peak = ref (Aig.size aig init) in
  let finish ?invariant verdict =
    {
      Reachability.verdict;
      iterations = List.rev !iterations;
      total_seconds = Util.Stopwatch.elapsed watch;
      peak_frontier = !peak;
      sat_queries = Cnf.Checker.queries checker;
      invariant;
    }
  in
  let falsified hit_iteration =
    let depth, trace =
      if config.Reachability.make_trace then begin
        let unroll = Unroll.create model in
        let rec search d =
          if d > hit_iteration + 64 then None
          else
            match exact_answer checker [ Unroll.bad_at unroll d ] with
            | Cnf.Checker.Yes ->
              Some
                (d, Unroll.trace_from_model unroll ~depth:d ~value:(Cnf.Checker.model_var checker))
            | Cnf.Checker.No | Cnf.Checker.Maybe -> search (d + 1)
        in
        match search hit_iteration with
        | Some (d, t) -> (d, Some t)
        | None -> (hit_iteration, None)
      end
      else (hit_iteration, None)
    in
    Reachability.Falsified { depth; trace }
  in
  (* bad states over the state variables (property inputs quantified) *)
  let bad_raw = Aig.not_ model.Netlist.Model.property in
  let bad_inputs = List.filter (fun v -> List.mem v input_vars) (Aig.support aig bad_raw) in
  let bad_result =
    Quantify.all ~config:config.Reachability.quant ~bank aig checker ~prng bad_raw
      ~vars:bad_inputs
  in
  let bad = bad_result.Quantify.lit in
  let bad_clean = bad_result.Quantify.kept = [] in
  (* primed variables standing for the next state in the relational image *)
  let primed = List.map (fun l -> (l.Netlist.Model.state_var, Aig.fresh_var aig)) model.Netlist.Model.latches in
  let transition =
    Aig.and_list aig
      (List.map
         (fun l ->
           let y = Aig.var aig (List.assoc l.Netlist.Model.state_var primed) in
           Aig.iff_ aig y l.Netlist.Model.next)
         model.Netlist.Model.latches)
  in
  let unprime v =
    let back = List.find_opt (fun (_, y) -> y = v) primed in
    Option.map (fun (s, _) -> Aig.var aig s) back
  in
  let aux_vars = ref [] in
  (* Img(R): conjoin the transition relation, eliminate current-state,
     input and residual variables, then rename primed to current *)
  let image frontier =
    let product = Aig.and_ aig transition frontier in
    let support = Aig.support aig product in
    let to_quantify =
      List.filter
        (fun v ->
          List.mem v state_vars || List.mem v input_vars || List.mem v !aux_vars)
        support
    in
    let q =
      Quantify.all ~config:config.Reachability.quant ~bank aig checker ~prng product
        ~vars:to_quantify
    in
    (* rename residual model variables so they cannot collide with the
       next iteration's state/input variables *)
    let residual_model_vars =
      List.filter (fun v -> List.mem v state_vars || List.mem v input_vars) q.Quantify.kept
    in
    let renaming = List.map (fun v -> (v, Aig.fresh_var aig)) residual_model_vars in
    let lit =
      if renaming = [] then q.Quantify.lit
      else
        Aig.compose aig q.Quantify.lit ~subst:(fun v ->
            Option.map (Aig.var aig) (List.assoc_opt v renaming))
    in
    aux_vars :=
      List.map snd renaming
      @ List.filter (fun v -> not (List.mem v q.Quantify.eliminated)) !aux_vars;
    let renamed = Aig.compose aig lit ~subst:unprime in
    (renamed, q)
  in
  if exact_answer checker [ init; bad ] = Cnf.Checker.Yes then finish (falsified 0)
  else begin
    let reached = ref init in
    let frontier = ref init in
    let rec loop k =
      if k > config.Reachability.max_iterations then
        finish (Reachability.Out_of_budget "iteration limit")
      else begin
        let step_watch = Util.Stopwatch.start () in
        Obs.Trace_events.begin_args "reach.frame" "frame" k;
        let img, q = image !frontier in
        let img =
          if config.Reachability.sweep_frontier then
            fst (Synth.Opt.sweep_and_compact ~bank aig checker ~prng img)
          else img
        in
        let img =
          if config.Reachability.use_reached_dc then
            fst
              (Synth.Dontcare.simplify_under_care ~bank aig checker ~prng
                 ~care:(Aig.not_ !reached) img)
          else img
        in
        let fsize = Aig.size aig img in
        if fsize > !peak then peak := fsize;
        let reached' = Aig.or_ aig !reached img in
        let it =
          {
            Reachability.index = k;
            frontier_size = fsize;
            reached_size = Aig.size aig reached';
            eliminated_inputs = List.length q.Quantify.eliminated;
            kept_inputs = List.length q.Quantify.kept;
            naive_size = sum_naive q.Quantify.reports;
            seconds = Util.Stopwatch.elapsed step_watch;
          }
        in
        Obs.incr obs_iterations;
        Obs.add_seconds obs_iter_span it.Reachability.seconds;
        Obs.observe obs_frontier_size it.Reachability.frontier_size;
        Obs.observe obs_reached_size it.Reachability.reached_size;
        Obs.add obs_eliminated it.Reachability.eliminated_inputs;
        Obs.add obs_kept it.Reachability.kept_inputs;
        Obs.Trace_events.sample "reach.frontier_size" it.Reachability.frontier_size;
        Obs.Trace_events.sample "reach.reached_size" it.Reachability.reached_size;
        Obs.Progress.frame ~index:it.Reachability.index ~nodes:it.Reachability.frontier_size;
        iterations := it :: !iterations;
        Obs.Trace_events.end_args "reach.frame" "frontier_size" fsize;
        if exact_answer checker [ img; bad ] = Cnf.Checker.Yes then begin
          Obs.Trace_events.instant_args "reach.falsified" "frame" k;
          finish (falsified k)
        end
        else if exact_answer checker [ img; Aig.not_ !reached ] = Cnf.Checker.No then begin
          (* forward certificate: the reached set itself is inductive,
             contains the initial states, and avoids every bad state *)
          let invariant =
            if bad_clean && !aux_vars = [] then Some reached' else None
          in
          Obs.Trace_events.instant_args "reach.proved" "frame" k;
          finish ?invariant Reachability.Proved
        end
        else begin
          frontier := Aig.and_ aig img (Aig.not_ !reached);
          reached := reached';
          loop (k + 1)
        end
      end
    in
    loop 1
  end
