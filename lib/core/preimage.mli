(** Pre-image of a state set, the paper's §3 recipe.

    Backward reachability formulas have the shape
    [∃x ∃y. (y = δ(s,x)) ∧ B(y)]; because the transition relation is a
    conjunction of next-state {e functions}, the [y] quantification is done
    by {e substitution} (in-lining): [∃x. B(δ(s,x))]. Only the primary
    inputs [x] then need circuit-based quantification. *)

type result = {
  lit : Aig.lit; (* the (partially quantified) pre-image *)
  substituted_size : int; (* size right after in-lining, before ∃x *)
  eliminated : Aig.var list;
  kept : Aig.var list; (* inputs whose elimination was aborted *)
  reports : Quantify.var_report list;
}

(** [substitute m b] — just the in-lining step [B(δ(s,x))]. *)
val substitute : Netlist.Model.t -> Aig.lit -> Aig.lit

(** [compute ?config m checker ~prng ~frontier ~extra_vars] — full
    pre-image: in-line, then quantify the primary inputs in the support
    plus [extra_vars] (residual variables from earlier aborted
    quantifications). *)
val compute :
  ?config:Quantify.config ->
  ?bank:Sweep.Pattern_bank.t ->
  Netlist.Model.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  frontier:Aig.lit ->
  extra_vars:Aig.var list ->
  result
