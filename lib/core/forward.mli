(** Forward reachability with circuit-based quantification.

    The paper's traversal runs backward because pre-image enjoys
    quantification by substitution; the forward direction is the natural
    stress test for the quantifier, since the image

    [Img(R)(y) = ∃s ∃x. (⋀ᵢ yᵢ ≡ δᵢ(s,x)) ∧ R(s)]

    has no in-lining shortcut: every state and input variable must be
    eliminated from the relational product circuit. Partial quantification
    carries residual variables exactly as in the backward engine.

    Shares the result/verdict/config types of {!Reachability}; the
    [sweep_frontier] and [use_reached_dc] options apply unchanged. *)

(** [run ?config ?limits m] — forward traversal from the initial states
    until a bad state is hit or a fix-point proves the property.
    [limits] follows the contract of {!Reachability.run}. *)
val run :
  ?config:Reachability.config -> ?limits:Util.Limits.t -> Netlist.Model.t -> Reachability.result
