type verdict =
  | Proved
  | Falsified of { depth : int; trace : Trace.t option }
  | Out_of_budget of { reason : string; frames : int }

(* Per-frame accounting. The iteration span is recorded from the step
   stopwatch already running (the loop is tail-recursive, so a [with_span]
   wrapper would nest and double-count). Shared with [Forward]. *)
let obs_iterations = Obs.counter "reach.iterations"
let obs_iter_span = Obs.span "reach.iteration"
let obs_frontier_size = Obs.histogram "reach.frontier_size"
let obs_reached_size = Obs.histogram "reach.reached_size"
let obs_eliminated = Obs.counter "reach.eliminated_inputs"
let obs_kept = Obs.counter "reach.kept_inputs"

type iteration = {
  index : int;
  frontier_size : int;
  reached_size : int;
  eliminated_inputs : int;
  kept_inputs : int;
  naive_size : int;
  seconds : float;
}

type result = {
  verdict : verdict;
  iterations : iteration list;
  total_seconds : float;
  peak_frontier : int;
  sat_queries : int;
  invariant : Aig.lit option;
  aborted_vars : Aig.var list;
      (* variables partial quantification abandoned, across all frames *)
}

(* Which variables the quantifier gave up on — triage needs names, not
   just a count. Sorted, deduplicated across frames, and mirrored into
   the run-report meta so stored reports carry it. *)
let record_aborted_vars vars =
  let vars = List.sort_uniq Int.compare vars in
  if vars <> [] then
    Obs.meta "quantify.aborted_vars"
      (String.concat "," (List.map (Printf.sprintf "x%d") vars));
  vars

type config = {
  quant : Quantify.config;
  max_iterations : int;
  sweep_frontier : bool;
  use_reached_dc : bool;
  make_trace : bool;
  seed : int;
}

let default =
  {
    quant = Quantify.default;
    max_iterations = 200;
    sweep_frontier = false;
    use_reached_dc = false;
    make_trace = true;
    seed = 1;
  }

let pp_verdict ppf = function
  | Proved -> Format.pp_print_string ppf "PROVED"
  | Falsified { depth; _ } -> Format.fprintf ppf "FALSIFIED (depth %d)" depth
  | Out_of_budget { reason; frames } ->
    Format.fprintf ppf "UNDECIDED (%s after %d frames)" reason frames

let pp_result ppf r =
  Format.fprintf ppf "%a  iterations=%d peak-frontier=%d sat-queries=%d %.3fs" pp_verdict
    r.verdict (List.length r.iterations) r.peak_frontier r.sat_queries r.total_seconds

(* decide exactly: containment and intersection tests must not be budgeted
   per query. A run-wide governor can still leave them [Maybe] — the caller
   must then degrade to [Out_of_budget], never treat the answer as No. *)
let exact_answer checker lits =
  Cnf.Checker.set_conflict_limit checker None;
  Cnf.Checker.satisfiable checker lits

(* Why a certification query came back [Maybe]: the tripped resource, or
   the conflict pool when it is merely dry (a dry pool only trips once a
   query actually draws from it). *)
let budget_reason limits =
  match Util.Limits.exhausted limits with
  | Some r -> Util.Limits.resource_name r
  | None -> Util.Limits.resource_name Util.Limits.Conflicts

(* Find the exact counterexample depth at or above [from_depth] (the
   reached-set don't-care option can make the traversal's hit iteration a
   lower bound) and extract a trace. A [Maybe] — possible once a resource
   governor has drained the conflict pool or the deadline — must STOP the
   search: skipping past an undecided depth could certify a later depth
   as "the" counterexample depth, which would be wrong. *)
let find_cex model checker ~from_depth ~limit =
  let unroll = Unroll.create model in
  let rec search d =
    if d > limit then None
    else
      match exact_answer checker [ Unroll.bad_at unroll d ] with
      | Cnf.Checker.Yes ->
        Some (d, Unroll.trace_from_model unroll ~depth:d ~value:(Cnf.Checker.model_var checker))
      | Cnf.Checker.No -> search (d + 1)
      | Cnf.Checker.Maybe -> None
  in
  search from_depth

let sum_naive reports =
  List.fold_left (fun acc r -> acc + r.Quantify.size_naive) 0 reports

let run ?(config = default) ?(limits = Util.Limits.unlimited) model =
  let watch = Util.Stopwatch.start () in
  Obs.Progress.begin_run ();
  let limits = Obs.Limits.arm limits in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_limits checker limits;
  let prng = Util.Prng.create config.seed in
  (* one pattern bank for the whole traversal: counterexamples learned in
     any frame keep refuting merge candidates in every later frame *)
  let bank = Sweep.Pattern_bank.create () in
  let init = Netlist.Model.init_lit model in
  let iterations = ref [] in
  let peak = ref 0 in
  let push_iteration it =
    Obs.incr obs_iterations;
    Obs.add_seconds obs_iter_span it.seconds;
    Obs.observe obs_frontier_size it.frontier_size;
    Obs.observe obs_reached_size it.reached_size;
    Obs.add obs_eliminated it.eliminated_inputs;
    Obs.add obs_kept it.kept_inputs;
    Obs.Trace_events.sample "reach.frontier_size" it.frontier_size;
    Obs.Trace_events.sample "reach.reached_size" it.reached_size;
    Obs.Progress.frame ~index:it.index ~nodes:it.frontier_size;
    iterations := it :: !iterations
  in
  let aborted_acc = ref [] in
  let finish ?invariant verdict =
    {
      verdict;
      iterations = List.rev !iterations;
      total_seconds = Util.Stopwatch.elapsed watch;
      peak_frontier = !peak;
      sat_queries = Cnf.Checker.queries checker;
      invariant;
      aborted_vars = record_aborted_vars !aborted_acc;
    }
  in
  (* iteration 0: the bad states themselves, with property inputs (if any)
     quantified away *)
  let bad_raw = Aig.not_ model.Netlist.Model.property in
  let input_vars = Netlist.Model.input_vars model in
  let bad_inputs = List.filter (fun v -> List.mem v input_vars) (Aig.support aig bad_raw) in
  let b0_result =
    Quantify.all ~config:config.quant ~bank aig checker ~prng bad_raw ~vars:bad_inputs
  in
  let b0 = b0_result.Quantify.lit in
  let b0_clean = b0_result.Quantify.kept = [] in
  aborted_acc := b0_result.Quantify.kept;
  peak := Aig.size aig b0;
  let falsified hit_iteration =
    if config.make_trace || config.use_reached_dc then
      match
        find_cex model checker ~from_depth:hit_iteration
          ~limit:(hit_iteration + config.max_iterations + 64)
      with
      | Some (d, t) -> Falsified { depth = d; trace = (if config.make_trace then Some t else None) }
      | None -> (
        (* with the reached-set don't-care the hit iteration is only a
           lower bound on the depth; if the governor kept the depth scan
           from confirming it, reporting it would risk a wrong depth —
           degrade to [Out_of_budget] instead *)
        match Util.Limits.exhausted limits with
        | Some r when config.use_reached_dc ->
          Out_of_budget { reason = Util.Limits.resource_name r; frames = hit_iteration }
        | Some _ | None -> Falsified { depth = hit_iteration; trace = None })
    else Falsified { depth = hit_iteration; trace = None }
  in
  match exact_answer checker [ init; b0 ] with
  | Cnf.Checker.Yes -> finish (falsified 0)
  | Cnf.Checker.Maybe ->
    finish (Out_of_budget { reason = budget_reason limits; frames = 0 })
  | Cnf.Checker.No -> begin
    let reached = ref b0 in
    let frontier = ref b0 in
    let aux_vars = ref [] in
    let rec loop k =
      (* anytime behaviour: every frame starts with a governor poll (the
         AIG grows monotonically, so node-ceiling checks belong here) and
         a tripped run reports how deep it got before degrading *)
      match Util.Limits.check_aig_nodes limits (Aig.num_nodes aig) with
      | Some r ->
        Obs.Trace_events.instant_args "reach.limit_stop" "frame" k;
        finish (Out_of_budget { reason = Util.Limits.resource_name r; frames = k - 1 })
      | None ->
      if k > config.max_iterations then
        finish (Out_of_budget { reason = "iteration limit"; frames = k - 1 })
      else begin
        let step_watch = Util.Stopwatch.start () in
        Obs.Trace_events.begin_args "reach.frame" "frame" k;
        let pre =
          Preimage.compute ~config:config.quant ~bank model checker ~prng ~frontier:!frontier
            ~extra_vars:!aux_vars
        in
        aborted_acc := pre.Preimage.kept @ !aborted_acc;
        (* residual model inputs must not collide with the next frame's
           inputs: rename them to private auxiliary variables *)
        let residual_inputs = List.filter (fun v -> List.mem v input_vars) pre.Preimage.kept in
        let renaming = List.map (fun v -> (v, Aig.fresh_var aig)) residual_inputs in
        let new_frontier =
          if renaming = [] then pre.Preimage.lit
          else
            Aig.compose aig pre.Preimage.lit ~subst:(fun v ->
                Option.map (Aig.var aig) (List.assoc_opt v renaming))
        in
        aux_vars :=
          List.map snd renaming
          @ List.filter (fun v -> not (List.mem v pre.Preimage.eliminated)) !aux_vars;
        let new_frontier =
          if config.sweep_frontier then
            fst (Synth.Opt.sweep_and_compact ~bank aig checker ~prng new_frontier)
          else new_frontier
        in
        (* optional: states already known to reach a bad state are don't
           cares for the new frontier *)
        let new_frontier =
          if config.use_reached_dc then
            fst
              (Synth.Dontcare.simplify_under_care ~bank aig checker ~prng
                 ~care:(Aig.not_ !reached) new_frontier)
          else new_frontier
        in
        let fsize = Aig.size aig new_frontier in
        if fsize > !peak then peak := fsize;
        let record ~reached_size =
          push_iteration
            {
              index = k;
              frontier_size = fsize;
              reached_size;
              eliminated_inputs = List.length pre.Preimage.eliminated;
              kept_inputs = List.length pre.Preimage.kept;
              naive_size = sum_naive pre.Preimage.reports;
              seconds = Util.Stopwatch.elapsed step_watch;
            };
          Obs.Trace_events.end_args "reach.frame" "frontier_size" fsize
        in
        match exact_answer checker [ init; new_frontier ] with
        | Cnf.Checker.Yes ->
          record ~reached_size:(Aig.size aig !reached);
          Obs.Trace_events.instant_args "reach.falsified" "frame" k;
          finish (falsified k)
        | Cnf.Checker.Maybe ->
          (* the intersection-with-init test is the falsification
             certificate: undecided means neither this frame's hit nor any
             later Proved can be trusted — stop with the anytime verdict *)
          record ~reached_size:(Aig.size aig !reached);
          Obs.Trace_events.instant_args "reach.limit_stop" "frame" k;
          finish (Out_of_budget { reason = budget_reason limits; frames = k })
        | Cnf.Checker.No -> (
          let no_new = exact_answer checker [ new_frontier; Aig.not_ !reached ] in
          let reached' = Aig.or_ aig !reached new_frontier in
          record ~reached_size:(Aig.size aig reached');
          match no_new with
          | Cnf.Checker.No ->
            (* without residual variables the complement of the reached
               set is an inductive invariant: a checkable certificate *)
            let invariant =
              if b0_clean && !aux_vars = [] then Some (Aig.not_ reached') else None
            in
            Obs.Trace_events.instant_args "reach.proved" "frame" k;
            finish ?invariant Proved
          | Cnf.Checker.Maybe ->
            (* an undecided fixpoint test can never be read as closure *)
            Obs.Trace_events.instant_args "reach.limit_stop" "frame" k;
            finish (Out_of_budget { reason = budget_reason limits; frames = k })
          | Cnf.Checker.Yes ->
            (* onion ring: keep only the genuinely new states in the next
               frontier to stop pre-images from re-deriving old ones *)
            frontier := Aig.and_ aig new_frontier (Aig.not_ !reached);
            reached := reached';
            loop (k + 1))
      end
    in
    loop 1
  end
