(** Circuit-based existential quantification — the paper's contribution.

    [∃v. F] is computed as [F|v=0 ∨ F|v=1], with the Shannon expansion's
    size doubling fought in two phases:

    + {b merge} — equivalence-detected sub-circuit sharing between the two
      cofactors (structural hashing, simulation candidates, BDD sweeping,
      factorized SAT checks; {!Sweep.Sweeper});
    + {b optimize} — synthesis transformations on the disjunction
      (redundancy removal and cross-cofactor don't-care simplification with
      ODC validation; {!Synth.Dontcare}).

    {b Partial quantification}: a growth budget bounds every elimination;
    quantifications whose result would exceed it are {e aborted} and their
    variable kept free, so the caller can hand the residual variables to a
    SAT-based engine (paper §4).

    {b Backends}: circuit cofactoring is the paper's algorithm; {!Pqe}
    is a clause-level partial-quantifier-elimination alternative that
    avoids cofactor doubling entirely. [Auto] routes each variable with
    {!decide} and falls back to the other backend when the first
    aborts, so its abort set is a subset of either fixed backend's. *)

(** Which eliminator handles a variable. *)
type backend = Circuit | Pqe | Auto

val backend_name : backend -> string
val backend_of_string : string -> backend option

(** [["circuit"; "pqe"; "auto"]] — for CLI enumerations. *)
val backend_names : string list

type config = {
  sweep : Sweep.Sweeper.config; (* merge phase *)
  use_dontcare : bool; (* enable the optimization phase *)
  dontcare : Synth.Dontcare.config;
  use_rewrite : bool; (* cut-based resubstitution as a final clean-up *)
  growth_limit : float; (* abort when |∃v.F| > growth_limit·|F| + slack *)
  growth_slack : int;
  greedy_order : bool; (* cheapest-estimated variable first *)
  backend : backend; (* which eliminator, or [Auto] to route per variable *)
  pqe : Pqe.config;
}

val default : config

(** Raw Shannon expansion: hashing only, no sweeping, no optimization, no
    abort — the baseline the paper improves on. *)
val naive_config : config

type var_report = {
  var : Aig.var;
  backend : backend; (* the backend that produced the final outcome *)
  size_before : int;
  size_cof0 : int; (* 0 under the PQE backend: no cofactors built *)
  size_cof1 : int;
  size_naive : int; (* plain OR of the unmerged cofactors; 0 under PQE *)
  sweep_report : Sweep.Sweeper.report option;
  dc_report : Synth.Dontcare.report option;
  pqe_report : Pqe.report option;
  size_after : int; (* of the result actually kept *)
  aborted : bool;
}

val pp_var_report : Format.formatter -> var_report -> unit

(** The [Auto] routing heuristic, exposed for tests and triage:
    predicts whether circuit cofactoring or PQE should try [v] first,
    from structural support width, predicted cofactor growth,
    pattern-bank agreement between the cofactors, and the cost of the
    checker's most recent query. Deterministic; never returns [Auto].
    Advisory only — the auto ladder retries the other backend when the
    chosen one aborts. *)
val decide :
  ?bank:Sweep.Pattern_bank.t ->
  config:config ->
  Aig.t ->
  Cnf.Checker.t ->
  Aig.lit ->
  Aig.var ->
  backend

(** [one ?config aig checker ~prng l v] eliminates a single variable.
    [Ok lit] on success; [Error lit_naive] when the growth budget rejected
    the result ([lit_naive] is still equivalent to [∃v. l] — callers doing
    partial quantification discard it and keep [v] free instead). *)
val one :
  ?config:config ->
  ?bank:Sweep.Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  Aig.lit ->
  Aig.var ->
  (Aig.lit, Aig.lit) result * var_report

(** [forall ?config aig checker ~prng l v] — universal quantification via
    duality: [∀v.F = ¬∃v.¬F]. Same budget semantics as {!one}. *)
val forall :
  ?config:config ->
  ?bank:Sweep.Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  Aig.lit ->
  Aig.var ->
  (Aig.lit, Aig.lit) result * var_report

(** [block ?config aig checker ~prng l ~vars] eliminates a {e set} of up
    to 6 variables in one step: all [2^k] cofactors are computed, swept
    {e jointly} (so merge points across every pair of cofactors are
    found, not just within one Shannon split), and combined by a balanced
    tree of don't-care-optimized disjunctions. [Error] as in {!one} when
    the joint result busts the growth budget. *)
val block :
  ?config:config ->
  ?bank:Sweep.Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  Aig.lit ->
  vars:Aig.var list ->
  (Aig.lit, Aig.lit) result

type result = {
  lit : Aig.lit; (* the (partially) quantified function *)
  eliminated : Aig.var list;
  kept : Aig.var list; (* aborted variables, still free in [lit] *)
  reports : var_report list;
}

(** [all ?config ?bank aig checker ~prng l ~vars] eliminates the variables
    in sequence (greedy cheapest-first when configured), keeping the
    aborted ones — the paper's partial quantification. A shared
    {!Sweep.Pattern_bank.t} recycles every distinguishing SAT model across
    the per-variable sweeps (and, via the caller, across traversal
    frames). *)
val all :
  ?config:config ->
  ?bank:Sweep.Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  Aig.lit ->
  vars:Aig.var list ->
  result
