(** Backward reachability with AIG state sets (paper §3).

    Starting from the complement of the invariant, pre-images are iterated
    until either no new states appear (fix-point — the property is proved)
    or the initial states are intersected (a counterexample exists, whose
    trace is rebuilt by functional unrolling). All state sets are AIG
    literals; set operations and termination tests run through the shared
    SAT checker.

    Aborted input quantifications (partial quantification) leave residual
    variables in the state sets; they are renamed to private auxiliary
    variables so they cannot collide with the next frame's inputs, treated
    existentially by every containment test, and retried at later
    iterations. *)

type verdict =
  | Proved (* fix-point without touching the initial states *)
  | Falsified of { depth : int; trace : Trace.t option }
  | Out_of_budget of { reason : string; frames : int }
      (* anytime answer: the iteration limit or a {!Util.Limits} resource
         ([reason] names it) stopped the traversal after completing
         [frames] pre-image frames. Never wrong — a run that cannot
         certify its answer within budget lands here instead. *)

type iteration = {
  index : int; (* 1-based pre-image count *)
  frontier_size : int; (* AND nodes of the new frontier *)
  reached_size : int;
  eliminated_inputs : int;
  kept_inputs : int; (* aborted quantifications this step *)
  naive_size : int; (* sum of naive Shannon sizes, for comparison *)
  seconds : float;
}

type result = {
  verdict : verdict;
  iterations : iteration list;
  total_seconds : float;
  peak_frontier : int;
  sat_queries : int;
  invariant : Aig.lit option;
  (* on [Proved] without partial-quantification residuals: the complement
     of the backward-reached set — an inductive invariant certifying the
     property, checkable independently with {!Certify.check} *)
  aborted_vars : Aig.var list;
  (* the variables partial quantification abandoned across the whole run,
     sorted and deduplicated — who was kept, not just how many. Also
     mirrored into the run report as the [quantify.aborted_vars] meta. *)
}

(** Sort/dedup an aborted-variable accumulation, publish it as the
    [quantify.aborted_vars] report meta when nonempty, and return it.
    Shared by both traversal directions. *)
val record_aborted_vars : Aig.var list -> Aig.var list

type config = {
  quant : Quantify.config;
  max_iterations : int;
  sweep_frontier : bool; (* re-run the merge phase on each new frontier *)
  use_reached_dc : bool;
  (* simplify each new frontier using the complement of the reached set
     as a care set: states already known to reach a bad state are don't
     cares. Verdicts and depths stay exact — the frontier is only
     unconstrained inside the reached region, where the onion-ring
     conjunction and the reached-set union absorb any difference, and the
     initial states can never lie there. *)
  make_trace : bool;
  seed : int;
}

val default : config

val pp_verdict : Format.formatter -> verdict -> unit
val pp_result : Format.formatter -> result -> unit

(** [run ?config ?limits m] — verify the model's safety property.

    [limits] is a run-wide resource governor ({!Util.Limits}): the
    traversal polls it at every frame boundary (deadline and AIG node
    ceiling), binds it to the shared SAT checker (conflict pool) and the
    sweeping stack (BDD node pool), and degrades gracefully — frames
    completed before the trip are kept, the SAT-expensive optimizations
    fall back to naive forms, and the verdict becomes {!Out_of_budget}
    naming the tripped resource unless the run already holds a definite
    answer. *)
val run : ?config:config -> ?limits:Util.Limits.t -> Netlist.Model.t -> result
