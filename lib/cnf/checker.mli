(** SAT-backed Boolean queries on AIG literals over one shared clause
    database.

    All queries are expressed with solver {e assumptions} over the
    permanently-encoded Tseitin clauses, so nothing ever needs retracting
    and the learned clauses from one check speed up the next — the paper's
    factorized "SAT-merge" discipline. A conflict budget turns every query
    into a three-valued answer so callers can degrade gracefully (partial
    quantification aborts, sweeping skips hard pairs). *)

type t

(** Three-valued query answer. *)
type answer = Yes | No | Maybe

val create : Aig.t -> t
val tseitin : t -> Tseitin.t
val aig : t -> Aig.t

(** [set_conflict_limit t n] bounds every subsequent query ([None] removes
    the bound). *)
val set_conflict_limit : t -> int option -> unit

(** [set_limits t l] binds every subsequent query to a run-wide resource
    governor ({!Util.Limits}): conflicts drain its shared pool, its
    deadline is polled during search, and once it has tripped queries
    answer [Maybe] without touching the solver. Defaults to
    [Util.Limits.unlimited]. Orthogonal to {!set_conflict_limit}, which
    bounds each query individually. *)
val set_limits : t -> Util.Limits.t -> unit

(** The governor currently bound by {!set_limits}. Layers above the
    checker (sweeping, quantification) read it here so one binding at
    engine entry governs the whole stack. *)
val limits : t -> Util.Limits.t

(** [satisfiable t lits] — is the conjunction of [lits] satisfiable?
    After [Yes], {!model_var} reads the witness. *)
val satisfiable : t -> Aig.lit list -> answer

(** [valid t l] — is [l] a tautology? *)
val valid : t -> Aig.lit -> answer

(** [equal t a b] — do [a] and [b] denote the same function? *)
val equal : t -> Aig.lit -> Aig.lit -> answer

(** [equal_under t ~care a b] — are [a] and [b] equal on the onset of
    [care]? (Outside it they may differ: [care]'s offset is the don't-care
    set.) *)
val equal_under : t -> care:Aig.lit -> Aig.lit -> Aig.lit -> answer

(** [implies t a b] — does [a] entail [b]? *)
val implies : t -> Aig.lit -> Aig.lit -> answer

(** [implies_clause t ~given clause] — does the {e conjunction} of
    [given] imply the {e disjunction} [clause]? This is the
    clause-redundancy query of partial quantifier elimination: [clause]
    is redundant with respect to a clause set exactly when the set
    implies it. One incremental query: [given ∧ ¬l1 ∧ … ∧ ¬lk]
    unsatisfiable. Short-circuits [Yes] when the clause contains the
    constant true or one of the [given] literals. *)
val implies_clause : t -> given:Aig.lit list -> Aig.lit list -> answer

(** Witness access after a [Yes] from {!satisfiable} (or a [No] from the
    universal queries, whose refutation is a satisfying counterexample):
    [None] when the variable has no encoded leaf or was left unassigned by
    the solver — the witness does not constrain it. *)
val model_var_opt : t -> Aig.var -> bool option

(** [model_var_opt] with unknowns {e explicitly} defaulted to [false] —
    sound for replaying the witness (any total extension still satisfies),
    but not a value the solver chose. Code persisting witnesses must use
    {!model_var_opt} / {!assigned_model} instead. *)
val model_var : t -> Aig.var -> bool

(** The last witness restricted to the given variables, as a (var, value)
    list, with unknowns defaulted to [false] as in {!model_var}. *)
val model : t -> Aig.var list -> (Aig.var * bool) list

(** The last witness restricted to the given variables, keeping only
    variables the solver actually assigned. *)
val assigned_model : t -> Aig.var list -> (Aig.var * bool) list

(** Number of queries answered so far, and of those cut off by the budget. *)
val queries : t -> int

val budget_cutoffs : t -> int
val solver_stats : t -> Sat.Solver.stats

(** Conflicts consumed by the most recent query — a per-query effort
    signal read by the quantification backend selector. *)
val last_query_conflicts : t -> int
