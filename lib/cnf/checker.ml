type answer = Yes | No | Maybe

let obs_queries = Obs.counter "cnf.queries"
let obs_cutoffs = Obs.counter "cnf.budget_cutoffs"
let obs_const_shortcuts = Obs.counter "cnf.const_shortcuts"
let obs_limit_shortcuts = Obs.counter "limits.query_shortcuts"

type t = {
  ts : Tseitin.t;
  mutable conflict_limit : int option;
  mutable limits : Util.Limits.t;
  mutable queries : int;
  mutable cutoffs : int;
}

let create aig =
  {
    ts = Tseitin.create aig;
    conflict_limit = None;
    limits = Util.Limits.unlimited;
    queries = 0;
    cutoffs = 0;
  }

let tseitin t = t.ts
let aig t = Tseitin.aig t.ts
let set_conflict_limit t n = t.conflict_limit <- n
let set_limits t l = t.limits <- l
let limits t = t.limits

let satisfiable t lits =
  t.queries <- t.queries + 1;
  Obs.incr obs_queries;
  (* constant short-cuts avoid touching the solver *)
  if List.exists (fun l -> l = Aig.false_) lits then begin
    Obs.incr obs_const_shortcuts;
    No
  end
  else if Util.Limits.exhausted t.limits <> None then begin
    (* governor already tripped: degrade without paying a solver call *)
    t.cutoffs <- t.cutoffs + 1;
    Obs.incr obs_cutoffs;
    Obs.incr obs_limit_shortcuts;
    Maybe
  end
  else begin
    let assumptions = List.map (Tseitin.sat_lit t.ts) lits in
    let result =
      match t.conflict_limit with
      | None -> Sat.Solver.solve ~assumptions ~limits:t.limits (Tseitin.solver t.ts)
      | Some budget ->
        Sat.Solver.solve ~assumptions ~conflict_limit:budget ~limits:t.limits
          (Tseitin.solver t.ts)
    in
    match result with
    | Sat.Solver.Sat -> Yes
    | Sat.Solver.Unsat -> No
    | Sat.Solver.Unknown ->
      t.cutoffs <- t.cutoffs + 1;
      Obs.incr obs_cutoffs;
      Maybe
  end

let neg_answer = function Yes -> No | No -> Yes | Maybe -> Maybe
let valid t l = neg_answer (satisfiable t [ Aig.not_ l ])

(* Does the conjunction [given] imply the disjunction [clause]?  The
   workhorse of clause-redundancy proving: a clause is redundant w.r.t. a
   set exactly when the set implies it.  Encoded as one incremental
   query — given ∧ ¬l1 ∧ ... ∧ ¬lk unsatisfiable. *)
let implies_clause t ~given clause =
  if List.exists (fun l -> l = Aig.true_ || List.mem l given) clause then Yes
  else neg_answer (satisfiable t (given @ List.map Aig.not_ clause))

let both a b =
  match (a, b) with
  | No, No -> Yes
  | Yes, _ | _, Yes -> No
  | Maybe, _ | _, Maybe -> Maybe

(* a = b iff neither (a & ~b) nor (~a & b) is satisfiable. The first
   satisfiable check short-circuits the second and leaves its model as the
   distinguishing witness. *)
let equal t a b =
  if a = b then Yes
  else if a = Aig.not_ b then No
  else
    let left = satisfiable t [ a; Aig.not_ b ] in
    if left = Yes then No
    else both left (satisfiable t [ Aig.not_ a; b ])

let equal_under t ~care a b =
  if a = b then Yes
  else
    let left = satisfiable t [ care; a; Aig.not_ b ] in
    if left = Yes then No
    else both left (satisfiable t [ care; Aig.not_ a; b ])

let implies t a b =
  if a = b || a = Aig.false_ || b = Aig.true_ then Yes
  else neg_answer (satisfiable t [ a; Aig.not_ b ])

let model_var_opt t v = Tseitin.model_var_opt t.ts v
let model_var t v = Tseitin.model_var t.ts v
let model t vars = List.map (fun v -> (v, model_var t v)) vars

let assigned_model t vars =
  List.filter_map (fun v -> Option.map (fun b -> (v, b)) (model_var_opt t v)) vars
let queries t = t.queries
let budget_cutoffs t = t.cutoffs
let solver_stats t = Sat.Solver.stats (Tseitin.solver t.ts)
let last_query_conflicts t = Sat.Solver.last_conflicts (Tseitin.solver t.ts)
