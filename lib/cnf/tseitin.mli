(** Incremental Tseitin encoding of AIG cones into a SAT solver.

    Each AIG node receives at most one SAT variable, allocated the first
    time the node enters a query cone; the three AND-gate clauses are added
    once and stay in the solver forever. This realizes the paper's scheme
    of loading the clause database {e once and for-all} and factorizing
    many equivalence checks within a single solver instance, so learned
    clauses accumulate across checks. *)

type t

val create : Aig.t -> t

(** The underlying solver (for stats or direct clause addition). *)
val solver : t -> Sat.Solver.t

val aig : t -> Aig.t

(** [sat_lit t l] is the SAT literal equivalent to AIG literal [l],
    encoding the cone of [l] into the solver if not already present. *)
val sat_lit : t -> Aig.lit -> Sat.Lit.t

(** Number of AIG nodes currently encoded. *)
val encoded_nodes : t -> int

(** [model_var_opt t v] reads AIG variable [v] from the last SAT model:
    [None] when the variable has no encoded leaf or the solver left it
    unassigned — i.e. the model constrains it to nothing and either value
    extends the satisfying assignment. Consumers distilling models into
    persistent patterns (the sweep {!Sweep.Pattern_bank}) must use this
    form so genuinely-free variables are not recorded as meaningful
    [false] bits. *)
val model_var_opt : t -> Aig.var -> bool option

(** [model_var t v] is [model_var_opt t v] with unknowns defaulted to
    [false]. The default is sound for counterexample replay — any total
    extension of the partial model is still a counterexample — but it is
    an {e explicit choice}, not an assignment the solver made. *)
val model_var : t -> Aig.var -> bool
