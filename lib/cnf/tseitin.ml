type t = {
  aig : Aig.t;
  solver : Sat.Solver.t;
  node_var : (int, int) Hashtbl.t; (* AIG node id -> SAT variable *)
  mutable const_var : int; (* SAT variable constrained to true, or -1 *)
}

let create aig = { aig; solver = Sat.Solver.create (); node_var = Hashtbl.create 256; const_var = -1 }
let solver t = t.solver
let aig t = t.aig
let encoded_nodes t = Hashtbl.length t.node_var

let const_true_var t =
  if t.const_var < 0 then begin
    let v = Sat.Solver.new_var t.solver in
    ignore (Sat.Solver.add_clause t.solver [ Sat.Lit.pos v ]);
    t.const_var <- v
  end;
  t.const_var

let node_sat_var t n =
  match Hashtbl.find_opt t.node_var n with
  | Some v -> v
  | None ->
    let v = Sat.Solver.new_var t.solver in
    Hashtbl.replace t.node_var n v;
    v

(* The constant node maps to the always-true variable complemented:
   node 0 is FALSE, so its positive literal must be the negation. *)
let sat_lit t l =
  let n = Aig.node_of_lit l in
  if n = 0 then begin
    let v = const_true_var t in
    if Aig.is_complemented l then Sat.Lit.pos v else Sat.Lit.neg_of v
  end
  else begin
    (* encode any not-yet-encoded AND nodes of the cone, fanins first *)
    let fresh =
      List.filter (fun m -> not (Hashtbl.mem t.node_var m)) (Aig.cone t.aig [ l ])
    in
    List.iter
      (fun m ->
        let f0, f1 = Aig.fanins t.aig m in
        let sl lit =
          let m = Aig.node_of_lit lit in
          if m = 0 then
            if Aig.is_complemented lit then Sat.Lit.pos (const_true_var t)
            else Sat.Lit.neg_of (const_true_var t)
          else Sat.Lit.make (node_sat_var t m) (Aig.is_complemented lit)
        in
        let a = sl f0 and b = sl f1 in
        let nv = node_sat_var t m in
        let np = Sat.Lit.pos nv and nn = Sat.Lit.neg_of nv in
        ignore (Sat.Solver.add_clause t.solver [ nn; a ]);
        ignore (Sat.Solver.add_clause t.solver [ nn; b ]);
        ignore (Sat.Solver.add_clause t.solver [ np; Sat.Lit.neg a; Sat.Lit.neg b ]))
      fresh;
    let v = node_sat_var t n in
    Sat.Lit.make v (Aig.is_complemented l)
  end

let model_var_opt t v =
  if v >= Aig.num_vars t.aig then None
  else
    let leaf = Aig.var t.aig v in
    match Hashtbl.find_opt t.node_var (Aig.node_of_lit leaf) with
    | None -> None
    | Some sv -> Sat.Solver.value t.solver sv

let model_var t v = Option.value (model_var_opt t v) ~default:false
