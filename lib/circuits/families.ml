module B = Netlist.Builder

let connect_word b qs nexts = List.iter2 (B.connect b) qs nexts

let counter ~bits =
  let b = B.create (Printf.sprintf "counter%d" bits) in
  let aig = B.aig b in
  let enable = B.input b in
  let c = B.latches b ~init:false bits in
  let inc = Arith.add_const aig c 1 in
  connect_word b c (Arith.mux aig enable ~then_:inc ~else_:c);
  B.set_property b (Aig.not_ (Aig.and_list aig c));
  B.finish b

let counter_even ~bits =
  let b = B.create (Printf.sprintf "counter-even%d" bits) in
  let aig = B.aig b in
  let enable = B.input b in
  let c = B.latches b ~init:false bits in
  let inc2 = Arith.add_const aig c 2 in
  connect_word b c (Arith.mux aig enable ~then_:inc2 ~else_:c);
  (match c with
  | bit0 :: _ -> B.set_property b (Aig.not_ bit0)
  | [] -> invalid_arg "counter_even: bits must be positive");
  B.finish b

(* gray code of a word: g_i = b_i xor b_{i+1}, g_{n-1} = b_{n-1} *)
let gray_of aig word =
  let arr = Array.of_list word in
  let n = Array.length arr in
  List.init n (fun i -> if i = n - 1 then arr.(i) else Aig.xor_ aig arr.(i) arr.(i + 1))

let gray_counter ~bits =
  let b = B.create (Printf.sprintf "gray%d" bits) in
  let aig = B.aig b in
  let enable = B.input b in
  let c = B.latches b ~init:false bits in
  let prev = B.latches b ~init:false bits in
  let inc = Arith.add_const aig c 1 in
  connect_word b c (Arith.mux aig enable ~then_:inc ~else_:c);
  let gray_now = gray_of aig c in
  connect_word b prev gray_now;
  let diff = List.map2 (fun g p -> Aig.xor_ aig g p) gray_now prev in
  B.set_property b (Arith.at_most_one aig diff);
  B.finish b

let shift aig ~incoming word =
  ignore aig;
  match List.rev word with
  | [] -> []
  | _ :: _ ->
    let rec drop_last = function
      | [] | [ _ ] -> []
      | x :: rest -> x :: drop_last rest
    in
    incoming :: drop_last word

let twin_shift ~bits =
  let b = B.create (Printf.sprintf "twin-shift%d" bits) in
  let aig = B.aig b in
  let d = B.input b in
  let r1 = B.latches b ~init:false bits in
  let r2 = B.latches b ~init:false bits in
  connect_word b r1 (shift aig ~incoming:d r1);
  connect_word b r2 (shift aig ~incoming:d r2);
  B.set_property b (Arith.equal aig r1 r2);
  B.finish b

(* ones in the even positions counted from the oldest (top) slot, so the
   oldest slot is set and a full fill is required *)
let alternating_pattern bits = List.init bits (fun i -> (bits - 1 - i) mod 2 = 0)

let shift_pattern ~bits =
  let b = B.create (Printf.sprintf "shift-pattern%d" bits) in
  let aig = B.aig b in
  let d = B.input b in
  let r = B.latches b ~init:false bits in
  connect_word b r (shift aig ~incoming:d r);
  let pattern = alternating_pattern bits in
  let hit =
    Aig.and_list aig (List.map2 (fun q p -> if p then q else Aig.not_ q) r pattern)
  in
  B.set_property b (Aig.not_ hit);
  B.finish b

let lfsr ~bits =
  if bits < 2 then invalid_arg "Families.lfsr: bits must be >= 2";
  let b = B.create (Printf.sprintf "lfsr%d" bits) in
  let aig = B.aig b in
  let hold = B.input b in
  (* seed 1: bit 0 starts set *)
  let s0 = B.latch b ~init:true in
  let s = s0 :: B.latches b ~init:false (bits - 1) in
  let msb = List.nth s (bits - 1) in
  (* the shifted-out bit appears in the feedback, so the update is
     invertible and the zero state has no other predecessor *)
  let feedback = Aig.xor_ aig msb s0 in
  let shifted = shift aig ~incoming:feedback s in
  connect_word b s (Arith.mux aig hold ~then_:s ~else_:shifted);
  B.set_property b (Aig.or_list aig s);
  B.finish b

let rr_arbiter ~n =
  let b = B.create (Printf.sprintf "arbiter%d" n) in
  let aig = B.aig b in
  let reqs = B.inputs b n in
  (* one-hot token, initialized at position 0 *)
  let token0 = B.latch b ~init:true in
  let tokens = token0 :: B.latches b ~init:false (n - 1) in
  connect_word b tokens (Arith.rotate_left tokens);
  let grants = B.latches b ~init:false n in
  connect_word b grants (List.map2 (Aig.and_ aig) reqs tokens);
  B.set_property b (Arith.at_most_one aig grants);
  B.finish b

let traffic () =
  let b = B.create "traffic" in
  let aig = B.aig b in
  let car_ns = B.input b and car_ew = B.input b in
  (* 2-bit phase: 00 NS-green, 01 NS-yellow, 10 EW-green, 11 EW-yellow *)
  let st = B.latches b ~init:false 2 in
  let tm = B.latches b ~init:false 2 in
  let timer_done = Arith.equal_const aig tm 3 in
  let is_green_ns = Arith.equal_const aig st 0 in
  let is_green_ew = Arith.equal_const aig st 2 in
  (* greens advance only when a cross-road car waits; yellows always *)
  let pressure =
    Aig.or_ aig
      (Aig.and_ aig is_green_ns car_ew)
      (Aig.or_ aig (Aig.and_ aig is_green_ew car_ns)
         (Aig.and_ aig (Aig.not_ is_green_ns) (Aig.not_ is_green_ew)))
  in
  let advance = Aig.and_ aig timer_done pressure in
  let st_next = Arith.mux aig advance ~then_:(Arith.add_const aig st 1) ~else_:st in
  connect_word b st st_next;
  let tm_next =
    Arith.mux aig advance
      ~then_:(Arith.const_word aig ~width:2 0)
      ~else_:(Arith.add_const aig tm 1)
  in
  connect_word b tm tm_next;
  let ns_green = B.latch b ~init:true in
  let ew_green = B.latch b ~init:false in
  B.connect b ns_green (Arith.equal_const aig st_next 0);
  B.connect b ew_green (Arith.equal_const aig st_next 2);
  B.set_property b (Aig.not_ (Aig.and_ aig ns_green ew_green));
  B.finish b

let fifo ?(buggy = false) ~depth_log () =
  let name = Printf.sprintf "fifo%s%d" (if buggy then "-buggy" else "") depth_log in
  let b = B.create name in
  let aig = B.aig b in
  let push = B.input b and pop = B.input b in
  let width = depth_log + 1 in
  let depth = 1 lsl depth_log in
  let cnt = B.latches b ~init:false width in
  let empty = Arith.equal_const aig cnt 0 in
  let full = Aig.not_ (Arith.less_const aig cnt depth) in
  let do_push = if buggy then push else Aig.and_ aig push (Aig.not_ full) in
  let do_pop = Aig.and_ aig pop (Aig.not_ empty) in
  let inc = Arith.add_const aig cnt 1 in
  let dec = fst (Arith.sub aig cnt (Arith.const_word aig ~width 1)) in
  let only_push = Aig.and_ aig do_push (Aig.not_ do_pop) in
  let only_pop = Aig.and_ aig do_pop (Aig.not_ do_push) in
  connect_word b cnt
    (Arith.mux aig only_push ~then_:inc ~else_:(Arith.mux aig only_pop ~then_:dec ~else_:cnt));
  B.set_property b (Arith.less_const aig cnt (depth + 1));
  B.finish b

let adder_accumulator ~bits =
  let b = B.create (Printf.sprintf "accumulator%d" bits) in
  let aig = B.aig b in
  let x0 = B.input b and x1 = B.input b in
  let acc = B.latches b ~init:false bits in
  let addend =
    x0 :: (if bits > 1 then x1 :: List.init (bits - 2) (fun _ -> Aig.false_) else [])
  in
  connect_word b acc (fst (Arith.add aig acc addend ~cin:Aig.false_));
  B.set_property b (Aig.not_ (Aig.and_list aig acc));
  B.finish b

let peterson () =
  let b = B.create "peterson" in
  let aig = B.aig b in
  let sched = B.input b in
  (* per process: flag, 2-bit location (00 idle / 01 try / 10 critical) *)
  let f0 = B.latch b ~init:false and f1 = B.latch b ~init:false in
  let turn = B.latch b ~init:false in
  let l0a = B.latch b ~init:false and l0b = B.latch b ~init:false in
  let l1a = B.latch b ~init:false and l1b = B.latch b ~init:false in
  let process ~active ~la ~lb ~flag ~other_flag ~turn_is_mine =
    let is_idle = Aig.and_ aig (Aig.not_ la) (Aig.not_ lb) in
    let is_try = la in
    let is_crit = lb in
    let can_enter = Aig.or_ aig (Aig.not_ other_flag) turn_is_mine in
    let la' = Aig.or_ aig is_idle (Aig.and_ aig is_try (Aig.not_ can_enter)) in
    let lb' = Aig.and_ aig is_try can_enter in
    let flag' = Aig.or_ aig is_idle is_try in
    let hold l l' = Aig.ite aig active l' l in
    (hold la la', hold lb lb', hold flag flag', Aig.and_ aig active is_idle, is_crit)
  in
  let act0 = Aig.not_ sched and act1 = sched in
  let l0a', l0b', f0', entering0, crit0 =
    process ~active:act0 ~la:l0a ~lb:l0b ~flag:f0 ~other_flag:f1
      ~turn_is_mine:(Aig.not_ turn)
  in
  let l1a', l1b', f1', entering1, crit1 =
    process ~active:act1 ~la:l1a ~lb:l1b ~flag:f1 ~other_flag:f0 ~turn_is_mine:turn
  in
  (* entering process yields the turn to the other *)
  let turn' =
    Aig.ite aig entering0 Aig.true_ (Aig.ite aig entering1 Aig.false_ turn)
  in
  B.connect b f0 f0';
  B.connect b f1 f1';
  B.connect b turn turn';
  B.connect b l0a l0a';
  B.connect b l0b l0b';
  B.connect b l1a l1a';
  B.connect b l1b l1b';
  B.set_property b (Aig.not_ (Aig.and_ aig crit0 crit1));
  B.finish b

let johnson ~bits =
  if bits < 3 then invalid_arg "Families.johnson: bits must be >= 3";
  let b = B.create (Printf.sprintf "johnson%d" bits) in
  let aig = B.aig b in
  let enable = B.input b in
  let s = B.latches b ~init:false bits in
  (* twisted ring: shift with the complemented last bit fed back *)
  let msb = List.nth s (bits - 1) in
  let shifted = shift aig ~incoming:(Aig.not_ msb) s in
  connect_word b s (Arith.mux aig enable ~then_:shifted ~else_:s);
  (match s with
  | s0 :: s1 :: s2 :: _ ->
    B.set_property b (Aig.not_ (Aig.and_list aig [ s0; Aig.not_ s1; s2 ]))
  | _ -> assert false);
  B.finish b

let tmr ~bits =
  let b = B.create (Printf.sprintf "tmr%d" bits) in
  let aig = B.aig b in
  let enable = B.input b in
  let replica () =
    let c = B.latches b ~init:false bits in
    let inc = Arith.add_const aig c 1 in
    connect_word b c (Arith.mux aig enable ~then_:inc ~else_:c);
    c
  in
  let r0 = replica () and r1 = replica () and r2 = replica () in
  (* bitwise 2-out-of-3 majority, registered *)
  let voted = B.latches b ~init:false bits in
  let majority3 a b_ c =
    Aig.or_ aig (Aig.and_ aig a b_) (Aig.or_ aig (Aig.and_ aig a c) (Aig.and_ aig b_ c))
  in
  let next_vote =
    List.map2 (fun (a, b_) c -> majority3 a b_ c) (List.combine r0 r1) r2
  in
  connect_word b voted next_vote;
  (* shadow of replica 0, registered the same way, must equal the vote *)
  let shadow = B.latches b ~init:false bits in
  connect_word b shadow r0;
  B.set_property b (Arith.equal aig voted shadow);
  B.finish b

(* full adder with the mirror association: sum = a xor (b xor cin)
   instead of (a xor b) xor cin, carry = a&b | cin&(a xor b) instead of
   the majority form — semantically Arith.full_adder, structurally
   disjoint from it *)
let full_adder_alt aig a b_ cin =
  let axb = Aig.xor_ aig a b_ in
  let sum = Aig.xor_ aig a (Aig.xor_ aig b_ cin) in
  let carry = Aig.or_ aig (Aig.and_ aig a b_) (Aig.and_ aig cin axb) in
  (sum, carry)

let add_alt aig xs ys =
  let cin = ref Aig.false_ in
  let sum =
    List.map2
      (fun x y ->
        let s, c = full_adder_alt aig x y !cin in
        cin := c;
        s)
      xs ys
  in
  sum

let mult_cmp ?(bug = false) ~bits () =
  let b = B.create (Printf.sprintf "mult-%s%d" (if bug then "bug" else "cmp") bits) in
  let aig = B.aig b in
  let xin = List.init bits (fun _ -> B.input b) in
  let yin = List.init bits (fun _ -> B.input b) in
  (* operand registers load a fresh value every cycle, so every operand
     pair is reachable and the property is purely combinational depth *)
  let xs = B.latches b ~init:false bits in
  let ys = B.latches b ~init:false bits in
  connect_word b xs xin;
  connect_word b ys yin;
  let xl = Array.of_list xs and yl = Array.of_list ys in
  let width = 2 * bits in
  let partial row =
    List.init width (fun c ->
        let k = c - row in
        if k >= 0 && k < bits then Aig.and_ aig yl.(row) xl.(k) else Aig.false_)
  in
  (* the same array-multiplier middle bit accumulated twice, once with
     Arith's full adders and once with the mirror-association form: the
     partial products strash to shared nodes and every intermediate
     sum/carry has a semantically equal twin one trivial SAT query away,
     so sweeping collapses the miter bottom-up — while any BDD of the
     cone is the classic multiplier blow-up *)
  let mid ~alt =
    let acc = ref (List.init width (fun _ -> Aig.false_)) in
    for row = 0 to bits - 1 do
      let p = partial row in
      let p =
        (* with [bug], the alternate build drops the partial product
           feeding the middle column directly: the two mids then differ on
           many operand pairs, every one a depth-1 counterexample *)
        if bug && alt && row = bits / 2 then
          List.mapi (fun c l -> if c = bits - 1 then Aig.false_ else l) p
        else p
      in
      let sum =
        if alt then add_alt aig !acc p else fst (Arith.add aig !acc p ~cin:Aig.false_)
      in
      acc := sum
    done;
    List.nth !acc (bits - 1)
  in
  let m1 = mid ~alt:false and m2 = mid ~alt:true in
  B.set_property b (Aig.not_ (Aig.xor_ aig m1 m2));
  B.finish b
