(** Parametric sequential benchmark families.

    The paper evaluates on unnamed "hard-to-verify circuits and
    properties"; these synthetic families substitute for them (see
    DESIGN.md §2) while keeping the verification status — and for unsafe
    families the exact shortest-counterexample length — known by
    construction, which the test suite exploits as an oracle. *)

(** [counter ~bits] — enabled binary up-counter; property: the all-ones
    value is never reached. Unsafe, shortest counterexample [2^bits - 1]
    steps. *)
val counter : bits:int -> Netlist.Model.t

(** [counter_even ~bits] — counts by two from zero; property: bit 0 stays
    clear. Safe. *)
val counter_even : bits:int -> Netlist.Model.t

(** [gray_counter ~bits] — binary counter plus registered Gray encoding of
    the previous count; property: current and previous Gray codes differ
    in at most one bit. Safe. *)
val gray_counter : bits:int -> Netlist.Model.t

(** [twin_shift ~bits] — two shift registers fed by the same input;
    property: their contents agree. Safe, and the backward state sets have
    highly similar quantification cofactors (the merge-friendly case). *)
val twin_shift : bits:int -> Netlist.Model.t

(** [shift_pattern ~bits] — shift register; property: a fixed alternating
    pattern (with a one in the oldest slot) never appears. Unsafe,
    shortest counterexample [bits] steps. *)
val shift_pattern : bits:int -> Netlist.Model.t

(** [lfsr ~bits] — Fibonacci LFSR with a hold input, seeded at 1;
    property: the state never becomes zero. Safe (the feedback taps make
    the update invertible). Requires [bits >= 2]. *)
val lfsr : bits:int -> Netlist.Model.t

(** [rr_arbiter ~n] — rotating-token arbiter with registered grants;
    property: at most one grant. Safe; [n] request inputs make it the
    input-quantification stress family. *)
val rr_arbiter : n:int -> Netlist.Model.t

(** [traffic ()] — two-road traffic-light controller with sensors;
    property: the two green lights are mutually exclusive. Safe. *)
val traffic : unit -> Netlist.Model.t

(** [fifo ?buggy ~depth_log] — occupancy counter of a synchronous FIFO of
    depth [2^depth_log]; property: occupancy never exceeds the depth.
    Safe when guarded; with [~buggy:true] the push guard is omitted and
    the property fails after [2^depth_log + 1] pushes. *)
val fifo : ?buggy:bool -> depth_log:int -> unit -> Netlist.Model.t

(** [adder_accumulator ~bits] — accumulator adding a 2-bit input each
    step; property: the all-ones value is never reached. Unsafe, shortest
    counterexample [ceil((2^bits - 1) / 3)] steps. *)
val adder_accumulator : bits:int -> Netlist.Model.t

(** [peterson ()] — Peterson's mutual-exclusion protocol for two
    processes with a scheduler input; property: both processes are never
    simultaneously critical. Safe. *)
val peterson : unit -> Netlist.Model.t

(** [johnson ~bits] — Johnson (twisted-ring) counter with an enable input;
    property: the pattern [1 0 1] never appears in the three lowest
    positions (its states always have at most one cyclic 0/1 boundary
    prefix shape). Safe; requires [bits >= 3]. *)
val johnson : bits:int -> Netlist.Model.t

(** [tmr ~bits] — triple modular redundancy: three identical enabled
    counters behind a bitwise majority voter, with registered voter
    output; property: the voter agrees with the first replica. Safe, and
    the three replicated cones make it the merge-heaviest sequential
    family. *)
val tmr : bits:int -> Netlist.Model.t

(** [mult_cmp ~bits ()] — two structurally different accumulations (two
    full-adder associations) of the middle output bit of a
    [bits]×[bits] array multiplier over registered free operands;
    property: the two builds agree. Safe by construction. The multiplier
    cone makes every BDD of the bad states blow up, while the pairwise
    equivalent intermediate sums keep it SAT-sweep-friendly — the
    portfolio's BDD-adversarial family. With [~bug:true] the alternate
    build drops one partial product, so the builds disagree on many
    operand pairs: unsafe, shortest counterexample 1 step — the SAT
    engines falsify it instantly while the BDD engines still drown. *)
val mult_cmp : ?bug:bool -> bits:int -> unit -> Netlist.Model.t
