type status = Safe | Unsafe of int

type entry = {
  name : string;
  description : string;
  default_param : int;
  make : int -> Netlist.Model.t;
  status : int -> status;
}

let all =
  [
    {
      name = "counter";
      description = "enabled up-counter; all-ones reachable";
      default_param = 4;
      make = (fun n -> Families.counter ~bits:n);
      status = (fun n -> Unsafe ((1 lsl n) - 1));
    };
    {
      name = "counter-even";
      description = "counts by two; bit 0 stays clear";
      default_param = 6;
      make = (fun n -> Families.counter_even ~bits:n);
      status = (fun _ -> Safe);
    };
    {
      name = "gray";
      description = "Gray-code step invariant over a binary counter";
      default_param = 4;
      make = (fun n -> Families.gray_counter ~bits:n);
      status = (fun _ -> Safe);
    };
    {
      name = "twin-shift";
      description = "two shift registers with one input stay equal";
      default_param = 6;
      make = (fun n -> Families.twin_shift ~bits:n);
      status = (fun _ -> Safe);
    };
    {
      name = "shift-pattern";
      description = "shift register reaches an alternating pattern";
      default_param = 6;
      make = (fun n -> Families.shift_pattern ~bits:n);
      status = (fun n -> Unsafe n);
    };
    {
      name = "lfsr";
      description = "Fibonacci LFSR never reaches zero";
      default_param = 5;
      make = (fun n -> Families.lfsr ~bits:n);
      status = (fun _ -> Safe);
    };
    {
      name = "arbiter";
      description = "rotating-token arbiter grants at most once";
      default_param = 4;
      make = (fun n -> Families.rr_arbiter ~n);
      status = (fun _ -> Safe);
    };
    {
      name = "traffic";
      description = "traffic-light controller greens are exclusive";
      default_param = 0;
      make = (fun _ -> Families.traffic ());
      status = (fun _ -> Safe);
    };
    {
      name = "fifo";
      description = "guarded FIFO occupancy stays within depth";
      default_param = 3;
      make = (fun n -> Families.fifo ~depth_log:n ());
      status = (fun _ -> Safe);
    };
    {
      name = "fifo-buggy";
      description = "unguarded FIFO occupancy overflows";
      default_param = 3;
      make = (fun n -> Families.fifo ~buggy:true ~depth_log:n ());
      status = (fun n -> Unsafe ((1 lsl n) + 1));
    };
    {
      name = "accumulator";
      description = "2-bit-step accumulator reaches all-ones";
      default_param = 4;
      make = (fun n -> Families.adder_accumulator ~bits:n);
      status = (fun n -> Unsafe (((1 lsl n) - 1 + 2) / 3));
    };
    {
      name = "peterson";
      description = "Peterson mutual exclusion";
      default_param = 0;
      make = (fun _ -> Families.peterson ());
      status = (fun _ -> Safe);
    };
    {
      name = "johnson";
      description = "Johnson counter avoids the 101 prefix";
      default_param = 5;
      make = (fun n -> Families.johnson ~bits:n);
      status = (fun _ -> Safe);
    };
    {
      name = "tmr";
      description = "triple-modular-redundant counter voter agreement";
      default_param = 3;
      make = (fun n -> Families.tmr ~bits:n);
      status = (fun _ -> Safe);
    };
    {
      name = "mult-cmp";
      description = "two builds of a multiplier middle bit agree";
      default_param = 6;
      make = (fun n -> Families.mult_cmp ~bits:n ());
      status = (fun _ -> Safe);
    };
    {
      name = "mult-bug";
      description = "multiplier middle-bit build with a dropped partial product";
      default_param = 8;
      make = (fun n -> Families.mult_cmp ~bug:true ~bits:n ());
      status = (fun _ -> Unsafe 1);
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let build name param =
  match find name with
  | None -> failwith (Printf.sprintf "unknown circuit %S; try one of the registry names" name)
  | Some e ->
    let p = Option.value param ~default:e.default_param in
    (e.make p, e.status p)

let pp_list ppf () =
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-14s (default %2d)  %s@." e.name e.default_param e.description)
    all
