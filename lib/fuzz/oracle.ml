type failure =
  | Disagreement of { verdicts : (string * Baselines.Verdict.t) list }
  | Bad_trace of { engine : string; detail : string }
  | Engine_crash of { engine : string; exn : string }
  | Unsound_quantification of { backend : string; detail : string }
  | Residual_dependence of { backend : string; var : Aig.var }
  | Unsound_sweep of { root : int }
  | Unsound_dontcare of { var : Aig.var }
  | Roundtrip_mismatch of { format : [ `Ascii | `Binary ]; detail : string }

let failure_label = function
  | Disagreement _ -> "disagreement"
  | Bad_trace _ -> "bad-trace"
  | Engine_crash _ -> "crash"
  | Unsound_quantification _ -> "quantification"
  | Residual_dependence _ -> "residual-dependence"
  | Unsound_sweep _ -> "sweep"
  | Unsound_dontcare _ -> "dontcare"
  | Roundtrip_mismatch _ -> "roundtrip"

let pp_failure ppf = function
  | Disagreement { verdicts } ->
    Format.fprintf ppf "engine disagreement:";
    List.iter
      (fun (name, v) -> Format.fprintf ppf " %s=%a" name Baselines.Verdict.pp v)
      verdicts
  | Bad_trace { engine; detail } -> Format.fprintf ppf "%s returned a bogus trace: %s" engine detail
  | Engine_crash { engine; exn } -> Format.fprintf ppf "%s raised: %s" engine exn
  | Unsound_quantification { backend; detail } ->
    Format.fprintf ppf "unsound quantification (%s backend): %s" backend detail
  | Residual_dependence { backend; var } ->
    Format.fprintf ppf "eliminated variable %d still in the result support (%s backend)" var
      backend
  | Unsound_sweep { root } -> Format.fprintf ppf "sweeping changed the semantics of cone %d" root
  | Unsound_dontcare { var } ->
    Format.fprintf ppf "don't-care disjunction over variable %d changed semantics" var
  | Roundtrip_mismatch { format; detail } ->
    Format.fprintf ppf "%s AIGER round-trip not identical: %s"
      (match format with `Ascii -> "ascii" | `Binary -> "binary")
      detail

(* ---------- budgets ---------- *)

type budget = {
  timeout : float option;
  max_conflicts : int option;
  max_aig_nodes : int option;
  max_bdd_nodes : int option;
}

let no_budget =
  { timeout = None; max_conflicts = None; max_aig_nodes = None; max_bdd_nodes = None }

let limits_of_budget b =
  if b = no_budget then Util.Limits.unlimited
  else
    Util.Limits.create ?timeout:b.timeout ?max_conflicts:b.max_conflicts
      ?max_aig_nodes:b.max_aig_nodes ?max_bdd_nodes:b.max_bdd_nodes ()

type config = {
  budget : budget;
  bmc_depth : int;
  induction_k : int;
  check_traces : bool;
  quantify_backend : Cbq.Quantify.backend;
}

let default_config =
  {
    budget = no_budget;
    bmc_depth = 30;
    induction_k = 25;
    check_traces = true;
    quantify_backend = Cbq.Quantify.default.Cbq.Quantify.backend;
  }

(* ---------- differential ---------- *)

let compatible a b =
  match (a, b) with
  | Baselines.Verdict.Undecided _, _ | _, Baselines.Verdict.Undecided _ -> true
  | Baselines.Verdict.Proved, Baselines.Verdict.Proved -> true
  | Baselines.Verdict.Falsified d1, Baselines.Verdict.Falsified d2 -> d1 = d2
  | Baselines.Verdict.Proved, Baselines.Verdict.Falsified _
  | Baselines.Verdict.Falsified _, Baselines.Verdict.Proved -> false

(* each engine verifies its own clone: engines grow the model's AIG
   manager, and a shared manager would let one engine's nodes perturb the
   next engine's heuristics *)
let clone = Par.Clone.model

(* the engine table itself lives in Baselines.Suite, shared with the
   portfolio racer; the oracle only maps its config onto the suite's *)
let suite_config config =
  {
    Baselines.Suite.bmc_depth = config.bmc_depth;
    induction_k = config.induction_k;
    make_trace = config.check_traces;
    quantify_backend = config.quantify_backend;
  }

let engines config =
  List.map
    (fun (e : Baselines.Suite.engine) -> (e.name, e.run))
    (Baselines.Suite.engines ~config:(suite_config config) ())

let engine_names = Baselines.Suite.names

type engine_outcome = {
  verdict : Baselines.Verdict.t;
  trace_problem : string option; (* detail when a returned trace fails to replay *)
  crash : string option;
}

let run_engines_internal config m =
  List.map
    (fun (name, run) ->
      let instance = clone m in
      match run ~limits:(limits_of_budget config.budget) instance with
      | verdict, trace ->
        let trace_problem =
          match (verdict, trace) with
          | Baselines.Verdict.Falsified depth, Some t when config.check_traces ->
            if not (Cbq.Trace.check instance t) then Some "trace does not replay on the model"
            else if Cbq.Trace.length t <> depth then
              Some
                (Printf.sprintf "trace length %d but verdict depth %d" (Cbq.Trace.length t)
                   depth)
            else None
          | _ -> None
        in
        (name, { verdict; trace_problem; crash = None })
      | exception exn ->
        ( name,
          {
            verdict = Baselines.Verdict.Undecided ("crash: " ^ Printexc.to_string exn);
            trace_problem = None;
            crash = Some (Printexc.to_string exn);
          } ))
    (engines config)

let run_engines ?(config = default_config) m =
  List.map (fun (name, o) -> (name, o.verdict)) (run_engines_internal config m)

let check_differential ?(config = default_config) m =
  let outcomes = run_engines_internal config m in
  let crash =
    List.find_map
      (fun (name, o) -> Option.map (fun exn -> Engine_crash { engine = name; exn }) o.crash)
      outcomes
  in
  match crash with
  | Some _ as f -> f
  | None -> (
    let bad_trace =
      List.find_map
        (fun (name, o) ->
          Option.map (fun detail -> Bad_trace { engine = name; detail }) o.trace_problem)
        outcomes
    in
    match bad_trace with
    | Some _ as f -> f
    | None ->
      let verdicts = List.map (fun (name, o) -> (name, o.verdict)) outcomes in
      let decided =
        List.filter
          (fun (_, v) -> match v with Baselines.Verdict.Undecided _ -> false | _ -> true)
          verdicts
      in
      let agree =
        match decided with
        | [] -> true
        | (_, first) :: rest -> List.for_all (fun (_, v) -> compatible first v) rest
      in
      if agree then None else Some (Disagreement { verdicts }))

(* ---------- algebraic ---------- *)

(* SAT answers under a budget may be Maybe; only a definite No refutes *)
let refuted = function Cnf.Checker.No -> true | Cnf.Checker.Yes | Cnf.Checker.Maybe -> false

let check_algebraic ?(config = default_config) m =
  (* a clone keeps the oracle's scratch nodes out of the caller's manager *)
  let m = clone m in
  let aig = Netlist.Model.aig m in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_limits checker (limits_of_budget config.budget);
  let prng = Util.Prng.create 17 in
  let bad = Aig.not_ m.Netlist.Model.property in
  let next_lits = List.map (fun l -> l.Netlist.Model.next) m.Netlist.Model.latches in
  (* 1. sweeping preserves the semantics of every model cone *)
  let roots = bad :: next_lits in
  let rebuilt, _report = Sweep.Sweeper.sweep_lits aig checker ~prng roots in
  let sweep_failure =
    List.find_map
      (fun (i, (original, swept)) ->
        if refuted (Cnf.Checker.equal checker original swept) then Some (Unsound_sweep { root = i })
        else None)
      (List.mapi (fun i p -> (i, p)) (List.combine roots rebuilt))
  in
  match sweep_failure with
  | Some _ as f -> f
  | None -> (
    (* 2. quantification = naive cofactor disjunction, support clean —
       checked per backend: the circuit pipeline, the PQE eliminator
       and the auto router must each agree with the Shannon oracle on
       whatever they managed to eliminate (aborts stay compatible: an
       aborted variable is simply not in [eliminated]) *)
    let inputs = Netlist.Model.input_vars m in
    let quant_failure =
      List.find_map
        (fun backend ->
          let name = Cbq.Quantify.backend_name backend in
          let config = { Cbq.Quantify.default with backend } in
          let full = Cbq.Quantify.all ~config aig checker ~prng bad ~vars:inputs in
          let naive =
            Cbq.Quantify.all ~config:Cbq.Quantify.naive_config aig checker ~prng bad
              ~vars:full.Cbq.Quantify.eliminated
          in
          if refuted (Cnf.Checker.equal checker full.Cbq.Quantify.lit naive.Cbq.Quantify.lit)
          then
            Some
              (Unsound_quantification
                 {
                   backend = name;
                   detail =
                     Printf.sprintf
                       "pipeline result differs from the naive Shannon disjunction over %d \
                        variables"
                       (List.length full.Cbq.Quantify.eliminated);
                 })
          else
            List.find_map
              (fun v ->
                if Aig.depends_on aig full.Cbq.Quantify.lit v then
                  Some (Residual_dependence { backend = name; var = v })
                else None)
              full.Cbq.Quantify.eliminated)
        [ Cbq.Quantify.Circuit; Cbq.Quantify.Pqe; Cbq.Quantify.Auto ]
    in
    match quant_failure with
    | Some _ as f -> f
    | None -> (
      (* 3. the don't-care-optimized disjunction of two cofactors is still
         the disjunction *)
      match List.find_opt (fun v -> Aig.depends_on aig bad v) inputs with
      | None -> None
      | Some v ->
        let f0 = Aig.cofactor aig bad ~v ~phase:false in
        let f1 = Aig.cofactor aig bad ~v ~phase:true in
        let optimized, _ = Synth.Dontcare.disjunction aig checker ~prng f0 f1 in
        if refuted (Cnf.Checker.equal checker optimized (Aig.or_ aig f0 f1)) then
          Some (Unsound_dontcare { var = v })
        else None))

(* ---------- round-trip ---------- *)

let first_diff a b =
  if String.length a <> String.length b then
    Printf.sprintf "lengths differ (%d vs %d bytes)" (String.length a) (String.length b)
  else
    let i = ref 0 in
    while !i < String.length a && a.[!i] = b.[!i] do
      incr i
    done;
    Printf.sprintf "first difference at byte %d" !i

let check_roundtrip m =
  let ascii =
    let t1 = Netlist.Aiger.write m in
    match Netlist.Aiger.read ~name:(Netlist.Model.name m) t1 with
    | m1 ->
      let t2 = Netlist.Aiger.write m1 in
      if t1 = t2 then None
      else Some (Roundtrip_mismatch { format = `Ascii; detail = first_diff t1 t2 })
    | exception Netlist.Aiger.Parse_error _ ->
      Some
        (Roundtrip_mismatch
           { format = `Ascii; detail = "reader rejected the writer's own output" })
  in
  match ascii with
  | Some _ as f -> f
  | None -> (
    let t1 = Netlist.Aiger.write_binary m in
    match Netlist.Aiger.read_binary ~name:(Netlist.Model.name m) t1 with
    | m1 ->
      let t2 = Netlist.Aiger.write_binary m1 in
      if t1 = t2 then None
      else Some (Roundtrip_mismatch { format = `Binary; detail = first_diff t1 t2 })
    | exception Netlist.Aiger.Parse_error _ ->
      Some
        (Roundtrip_mismatch
           { format = `Binary; detail = "reader rejected the writer's own output" }))

let check ?(config = default_config) m =
  match check_roundtrip m with
  | Some _ as f -> f
  | None -> (
    match check_algebraic ~config m with
    | Some _ as f -> f
    | None -> check_differential ~config m)
