type result = {
  model : Netlist.Model.t;
  failure : Oracle.failure;
  rounds : int;
  candidates : int;
  accepted : int;
}

type next_override = Keep | Reset_const | Self
type input_override = In_keep | In_const of bool | In_merge of int

(* a candidate is a reduction plan over the original model, not a model:
   building is deferred so rejected plans cost nothing but an import *)
type spec = {
  keep_latch : bool array;
  next_ov : next_override array;
  input_ov : input_override array;
}

let initial m =
  {
    keep_latch = Array.make (Netlist.Model.num_latches m) true;
    next_ov = Array.make (Netlist.Model.num_latches m) Keep;
    input_ov = Array.make (Netlist.Model.num_inputs m) In_keep;
  }

let copy s =
  {
    keep_latch = Array.copy s.keep_latch;
    next_ov = Array.copy s.next_ov;
    input_ov = Array.copy s.input_ov;
  }

let build m spec =
  let b = Netlist.Builder.create (Netlist.Model.name m) in
  let aig = Netlist.Builder.aig b in
  let src = Netlist.Model.aig m in
  let src_inputs = Array.of_list m.Netlist.Model.inputs in
  let src_latches = Array.of_list m.Netlist.Model.latches in
  (* destination leaves, chasing one level of input aliasing (merge
     targets are always [In_keep], so chains cannot form) *)
  let dest_input = Array.make (Array.length src_inputs) Aig.false_ in
  Array.iteri
    (fun i ov -> match ov with In_keep -> dest_input.(i) <- Netlist.Builder.input b | _ -> ())
    spec.input_ov;
  Array.iteri
    (fun i ov ->
      match ov with
      | In_keep -> ()
      | In_const c -> dest_input.(i) <- (if c then Aig.true_ else Aig.false_)
      | In_merge j -> dest_input.(i) <- dest_input.(j))
    spec.input_ov;
  let dest_latch = Array.make (Array.length src_latches) Aig.false_ in
  Array.iteri
    (fun i l ->
      if spec.keep_latch.(i) then dest_latch.(i) <- Netlist.Builder.latch b ~init:l.Netlist.Model.init
      else dest_latch.(i) <- (if l.Netlist.Model.init then Aig.true_ else Aig.false_))
    src_latches;
  let leaf = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace leaf v dest_input.(i)) src_inputs;
  Array.iteri
    (fun i l -> Hashtbl.replace leaf l.Netlist.Model.state_var dest_latch.(i))
    src_latches;
  let subst var =
    match Hashtbl.find_opt leaf var with
    | Some l -> l
    | None -> invalid_arg "Fuzz.Shrink: cone leaf outside the model interface"
  in
  let import l = Aig.import aig ~source:src ~subst l in
  Array.iteri
    (fun i l ->
      if spec.keep_latch.(i) then
        let next =
          match spec.next_ov.(i) with
          | Keep -> import l.Netlist.Model.next
          | Reset_const -> if l.Netlist.Model.init then Aig.true_ else Aig.false_
          | Self -> dest_latch.(i)
        in
        Netlist.Builder.connect b dest_latch.(i) next)
    src_latches;
  Netlist.Builder.set_property b (import m.Netlist.Model.property);
  Netlist.Builder.finish b

let kept_count spec = Array.fold_left (fun n k -> if k then n + 1 else n) 0 spec.keep_latch

let shrink ?(config = Oracle.default_config) ?(max_candidates = 400) m failure0 =
  let best_spec = ref (initial m) in
  let best_model = ref m in
  let best_failure = ref failure0 in
  let candidates = ref 0 in
  let accepted = ref 0 in
  let rounds = ref 0 in
  let budget_left () = !candidates < max_candidates in
  let try_spec spec =
    if not (budget_left ()) then false
    else begin
      incr candidates;
      match build m spec with
      | exception _ -> false
      | cand -> (
        match Oracle.check ~config cand with
        | Some f ->
          best_spec := spec;
          best_model := cand;
          best_failure := f;
          incr accepted;
          true
        | None -> false)
    end
  in
  let n_latches = Netlist.Model.num_latches m in
  let n_inputs = Netlist.Model.num_inputs m in
  let progress = ref true in
  while !progress && budget_left () do
    incr rounds;
    progress := false;
    (* 1. drop latches: halving chunks of the kept set, then singles *)
    let chunk = ref (max 1 ((kept_count !best_spec + 1) / 2)) in
    while !chunk >= 1 do
      let i = ref 0 in
      while !i < n_latches do
        let s = copy !best_spec in
        let dropped = ref 0 in
        let j = ref !i in
        while !dropped < !chunk && !j < n_latches do
          if s.keep_latch.(!j) then begin
            s.keep_latch.(!j) <- false;
            incr dropped
          end;
          incr j
        done;
        if !dropped > 0 && kept_count s >= 1 && try_spec s then progress := true;
        i := !j
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done;
    (* 2. truncate cones of the surviving latches *)
    for i = 0 to n_latches - 1 do
      if !best_spec.keep_latch.(i) && !best_spec.next_ov.(i) = Keep then begin
        let s = copy !best_spec in
        s.next_ov.(i) <- Reset_const;
        if try_spec s then progress := true
        else begin
          let s = copy !best_spec in
          s.next_ov.(i) <- Self;
          if try_spec s then progress := true
        end
      end
    done;
    (* 3. merge inputs: constants first, then alias an earlier kept input *)
    for i = 0 to n_inputs - 1 do
      if !best_spec.input_ov.(i) = In_keep then begin
        let try_ov ov =
          let s = copy !best_spec in
          s.input_ov.(i) <- ov;
          try_spec s
        in
        let merged =
          try_ov (In_const false) || try_ov (In_const true)
          ||
          match
            List.find_opt (fun j -> !best_spec.input_ov.(j) = In_keep)
              (List.init i (fun j -> j))
          with
          | Some j -> try_ov (In_merge j)
          | None -> false
        in
        if merged then progress := true
      end
    done
  done;
  {
    model = !best_model;
    failure = !best_failure;
    rounds = !rounds;
    candidates = !candidates;
    accepted = !accepted;
  }
