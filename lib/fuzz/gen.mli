(** Seeded random generator for sequential AIG models.

    Every model is a pure function of its [seed] and the [knobs], built
    from independent splitmix64 streams ({!Util.Prng.split}) for the
    interface shape, each latch cone and the property — so shrinking a
    knob perturbs only the stream it governs, and a corpus entry can name
    the exact seed that produced it.

    The knobs deliberately bias generation towards the structures where
    the CBQ pipeline historically hides bugs: near-duplicate cones (merge
    candidates for the sweeping engine), hidden constants (redundancy the
    two-level rewrite rules cannot fold), and XOR-heavy logic (worst case
    for Shannon-expansion growth, exercising partial-quantification
    aborts). *)

type property_shape =
  | Clause  (** disjunction of random latch literals *)
  | Cube  (** conjunction of random latch literals *)
  | Cone  (** a random combinational cone over the latches *)
  | Mixed  (** pick one of the above per model *)

type knobs = {
  min_latches : int;
  max_latches : int;
  min_inputs : int;
  max_inputs : int;
  cone_depth : int;  (** maximum gate depth of each next-state cone *)
  and_density : float;
      (** probability that an internal gate is a plain AND; the rest
          splits evenly between OR and XOR *)
  constant_cones : float;
      (** probability that a latch's next-state cone is a {e hidden}
          constant — semantically constant but structurally opaque to the
          hashing front-end *)
  duplicate_cones : float;
      (** probability that a latch's cone is a structurally different
          rebuild of an earlier latch's cone (a guaranteed merge point) *)
  property : property_shape;
  property_literals : int;  (** literals of a [Clause]/[Cube] property *)
  shared_subcones : float;
      (** probability that a latch's cone is a mux of xor/xnor over two
          shared deep subcones — the shape where the circuit backend's
          cofactor disjunction is a near-tautology it cannot fold while
          the PQE backend collapses it by resolution. At [0.0] (the
          default) generation draws no extra PRNG bits, so existing
          seeds reproduce byte-identical models *)
  wide_support : float;
      (** probability that a latch's cone is one gate over the {e whole}
          variable pool — maximal support width, exercising the PQE
          support cap and the backend selector. Stream-neutral at [0.0]
          like [shared_subcones] *)
}

val default : knobs

(** [default] sized for the differential oracle: at most 5 latches and
    3 inputs, so every engine decides within a small budget. *)

(** Reject inconsistent ranges and probabilities outside [0,1]. *)
val validate_knobs : knobs -> (unit, string) result

(** [model ~knobs ~seed ()] builds one random model, named
    ["fuzz-<seed>"]. Same seed and knobs always yield a structurally
    identical model. Raises [Invalid_argument] on invalid knobs. *)
val model : ?knobs:knobs -> seed:int -> unit -> Netlist.Model.t

(** [derive_seed ~master i] is the seed of the [i]-th model of a fuzzing
    run: one splitmix64 step per index, so runs over [0..k] and [0..k']
    agree on their common prefix. *)
val derive_seed : master:int -> int -> int
