let c_models = Obs.counter "fuzz.models"
let c_failures = Obs.counter "fuzz.failures"
let c_shrink_candidates = Obs.counter "fuzz.shrink.candidates"
let c_shrink_accepted = Obs.counter "fuzz.shrink.accepted"
let c_corpus_saved = Obs.counter "fuzz.corpus.saved"

type failure_report = {
  seed : int;
  original_failure : Oracle.failure;
  failure : Oracle.failure;
  model : Netlist.Model.t;
  shrunk : Shrink.result option;
  entry : Corpus.entry option;
}

type result = { count : int; failures : failure_report list }

let run ?(knobs = Gen.default) ?(config = Oracle.default_config) ?corpus_dir ?(shrink = true)
    ?(max_shrink_candidates = 400) ?on_model ?(jobs = 1) ~seed ~count () =
  let jobs = max 1 (min jobs (max 1 count)) in
  let on_model_lock = Mutex.create () in
  let notify i model_seed =
    match on_model with
    | None -> ()
    | Some f when jobs = 1 -> f i model_seed
    | Some f ->
      Mutex.lock on_model_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock on_model_lock) (fun () -> f i model_seed)
  in
  (* one campaign index: generate, oracle-check, shrink. Runs on whichever
     domain owns the index's shard; everything it touches is index-local
     (per-model seed via Gen.derive_seed, fresh managers throughout), so
     index [i] produces the same report at any [jobs] *)
  let check i =
    let model_seed = Gen.derive_seed ~master:seed i in
    notify i model_seed;
    let m = Gen.model ~knobs ~seed:model_seed () in
    Obs.incr c_models;
    match Oracle.check ~config m with
    | None -> None
    | Some original_failure ->
      Obs.incr c_failures;
      Obs.incr (Obs.counter ("fuzz.fail." ^ Oracle.failure_label original_failure));
      let shrunk =
        if shrink then begin
          let r = Shrink.shrink ~config ~max_candidates:max_shrink_candidates m original_failure in
          Obs.add c_shrink_candidates r.Shrink.candidates;
          Obs.add c_shrink_accepted r.Shrink.accepted;
          Some r
        end
        else None
      in
      let final_model, failure =
        match shrunk with
        | Some r -> (r.Shrink.model, r.Shrink.failure)
        | None -> (m, original_failure)
      in
      Some (model_seed, original_failure, failure, final_model, shrunk)
  in
  let partials = Array.make count None in
  (* static shards keep the index→domain mapping deterministic; jobs = 1
     degenerates to the plain ascending loop on the calling domain *)
  Par.Pool.run_shards ~jobs (fun w ->
      let i = ref w in
      while !i < count do
        partials.(!i) <- check !i;
        i := !i + jobs
      done);
  (* corpus writes are funnelled through the calling domain, in campaign
     index order — the corpus a parallel campaign leaves behind is
     byte-for-byte the sequential one's *)
  let failures = ref [] in
  Array.iter
    (fun slot ->
      match slot with
      | None -> ()
      | Some (model_seed, original_failure, failure, final_model, shrunk) ->
        let entry =
          match corpus_dir with
          | None -> None
          | Some dir ->
            let verdicts =
              match failure with
              | Oracle.Disagreement { verdicts } -> verdicts
              | _ -> Oracle.run_engines ~config final_model
            in
            let e = Corpus.save ~dir ~seed:model_seed final_model failure ~verdicts in
            Obs.incr c_corpus_saved;
            Some e
        in
        failures :=
          { seed = model_seed; original_failure; failure; model = final_model; shrunk; entry }
          :: !failures)
    partials;
  { count; failures = List.rev !failures }
