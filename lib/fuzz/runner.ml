let c_models = Obs.counter "fuzz.models"
let c_failures = Obs.counter "fuzz.failures"
let c_shrink_candidates = Obs.counter "fuzz.shrink.candidates"
let c_shrink_accepted = Obs.counter "fuzz.shrink.accepted"
let c_corpus_saved = Obs.counter "fuzz.corpus.saved"

type failure_report = {
  seed : int;
  original_failure : Oracle.failure;
  failure : Oracle.failure;
  model : Netlist.Model.t;
  shrunk : Shrink.result option;
  entry : Corpus.entry option;
}

type result = { count : int; failures : failure_report list }

let run ?(knobs = Gen.default) ?(config = Oracle.default_config) ?corpus_dir ?(shrink = true)
    ?(max_shrink_candidates = 400) ?on_model ~seed ~count () =
  let failures = ref [] in
  for i = 0 to count - 1 do
    let model_seed = Gen.derive_seed ~master:seed i in
    (match on_model with Some f -> f i model_seed | None -> ());
    let m = Gen.model ~knobs ~seed:model_seed () in
    Obs.incr c_models;
    match Oracle.check ~config m with
    | None -> ()
    | Some original_failure ->
      Obs.incr c_failures;
      Obs.incr (Obs.counter ("fuzz.fail." ^ Oracle.failure_label original_failure));
      let shrunk =
        if shrink then begin
          let r = Shrink.shrink ~config ~max_candidates:max_shrink_candidates m original_failure in
          Obs.add c_shrink_candidates r.Shrink.candidates;
          Obs.add c_shrink_accepted r.Shrink.accepted;
          Some r
        end
        else None
      in
      let final_model, failure =
        match shrunk with
        | Some r -> (r.Shrink.model, r.Shrink.failure)
        | None -> (m, original_failure)
      in
      let entry =
        match corpus_dir with
        | None -> None
        | Some dir ->
          let verdicts =
            match failure with
            | Oracle.Disagreement { verdicts } -> verdicts
            | _ -> Oracle.run_engines ~config final_model
          in
          let e = Corpus.save ~dir ~seed:model_seed final_model failure ~verdicts in
          Obs.incr c_corpus_saved;
          Some e
      in
      failures :=
        { seed = model_seed; original_failure; failure; model = final_model; shrunk; entry }
        :: !failures
  done;
  { count; failures = List.rev !failures }
