(** Correctness oracles for generated models.

    Three layers, cheapest-to-refute first:

    - {b round-trip}: AIGER write→read must reproduce the document
      exactly (the writer is canonical after one read, so textual
      equality {e is} structural equality), in both the ascii and the
      binary format;
    - {b algebraic}: SAT-checked semantic identities of the individual
      pipeline stages — quantification under {e every} backend (circuit,
      pqe, auto) equals the naive cofactor disjunction and leaves no
      trace of the eliminated variables, sweeping and don't-care
      optimization preserve cone semantics;
    - {b differential}: every verification engine (CBQ backward and
      forward, and the five baselines) runs on its own clone of the
      model, and all {e decided} verdicts must agree — [Undecided] (and
      CBQ's [Out_of_budget]) is compatible with anything, so the same
      oracle fuzzes governor-degradation paths under a tiny
      {!Util.Limits} budget without false alarms. Counterexample traces
      are additionally replayed against the model.

    Every check is deterministic: fixed engine order, fixed PRNG seeds,
    fresh managers per engine. *)

type failure =
  | Disagreement of { verdicts : (string * Baselines.Verdict.t) list }
      (** two engines returned incompatible decided verdicts *)
  | Bad_trace of { engine : string; detail : string }
      (** a falsifying engine produced a trace the model rejects *)
  | Engine_crash of { engine : string; exn : string }
  | Unsound_quantification of { backend : string; detail : string }
      (** a quantification backend (["circuit"], ["pqe"] or ["auto"])
          disagreed with the naive Shannon disjunction *)
  | Residual_dependence of { backend : string; var : Aig.var }
      (** an eliminated variable is still in the result's support *)
  | Unsound_sweep of { root : int }
      (** sweeping changed the semantics of the [root]-th model cone *)
  | Unsound_dontcare of { var : Aig.var }
  | Roundtrip_mismatch of { format : [ `Ascii | `Binary ]; detail : string }

(** Short stable slug for counters and corpus metadata
    (e.g. ["disagreement"], ["roundtrip"]). *)
val failure_label : failure -> string

val pp_failure : Format.formatter -> failure -> unit

(** {2 Resource budgets}

    {!Util.Limits.t} governors are sticky one-shot objects, so the oracle
    carries a budget {e specification} and mints a fresh governor per
    engine run — each engine degrades (or not) on its own. *)

type budget = {
  timeout : float option;
  max_conflicts : int option;
  max_aig_nodes : int option;
  max_bdd_nodes : int option;
}

(** All resources unlimited. *)
val no_budget : budget

val limits_of_budget : budget -> Util.Limits.t

type config = {
  budget : budget;
  bmc_depth : int;  (** BMC search bound; exhaustion is [Undecided] *)
  induction_k : int;
  check_traces : bool;
  quantify_backend : Cbq.Quantify.backend;
      (** backend used by the CBQ engines in the {e differential} layer;
          the algebraic layer always checks all three backends against
          the Shannon oracle regardless *)
}

val default_config : config

(** [compatible a b] — can both verdicts be simultaneously correct?
    [Undecided] matches anything; decided verdicts must match exactly
    (equal counterexample depths included: every engine here finds
    shortest counterexamples). *)
val compatible : Baselines.Verdict.t -> Baselines.Verdict.t -> bool

(** The engines of the differential oracle, in run order. *)
val engine_names : string list

(** [run_engines ?config m] — every engine's verdict on its own clone of
    [m]. Exceptions are folded into [Undecided "crash: ..."] here;
    {!check_differential} reports them as {!Engine_crash}. *)
val run_engines : ?config:config -> Netlist.Model.t -> (string * Baselines.Verdict.t) list

val check_differential : ?config:config -> Netlist.Model.t -> failure option
val check_algebraic : ?config:config -> Netlist.Model.t -> failure option
val check_roundtrip : Netlist.Model.t -> failure option

(** All three layers, round-trip first. [None] = the model passes. *)
val check : ?config:config -> Netlist.Model.t -> failure option
