(** The shrinking repro corpus.

    Every oracle failure the fuzzer finds is persisted as a pair of files
    in a corpus directory: a canonical ascii AIGER document
    ([<slug>.aag]) holding the (shrunk) model, and a [<slug>.json]
    metadata record naming the generator seed, the failure class and the
    per-engine verdicts observed at capture time.

    The {b replay contract}: checked-in entries are {e once}-failing
    repros of bugs that have since been fixed; {!replay} re-runs the full
    oracle stack over each entry and reports any that fail {e today}.
    The test suite asserts the result is all-clean, which turns every
    captured fuzz failure into a permanent regression test. *)

type entry = {
  path : string;  (** the [.aag] file *)
  slug : string;
  model_name : string;  (** as recorded in the metadata at capture time *)
  seed : int option;  (** generator seed, when the model came from {!Gen} *)
  label : string;  (** {!Oracle.failure_label} at capture time *)
  detail : string;  (** rendered {!Oracle.pp_failure} at capture time *)
}

(** [save ~dir ?seed model failure ~verdicts] writes a new entry (the
    directory is created if missing; slugs never overwrite an existing
    entry) and returns it. *)
val save :
  dir:string ->
  ?seed:int ->
  Netlist.Model.t ->
  Oracle.failure ->
  verdicts:(string * Baselines.Verdict.t) list ->
  entry

(** All entries of a directory, sorted by slug; missing directory = []. *)
val list : dir:string -> entry list

(** Parse an entry's model. Raises {!Netlist.Aiger.Parse_error} on a
    corrupt corpus file. *)
val load : entry -> Netlist.Model.t

(** [replay ?config ~dir] runs {!Oracle.check} over every entry. A [Some]
    failure means the bug (or a new one) is live again. *)
val replay : ?config:Oracle.config -> dir:string -> unit -> (entry * Oracle.failure option) list
