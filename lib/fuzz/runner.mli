(** The fuzzing campaign driver shared by [cbq_mc fuzz] and the tests.

    Per-model seeds come from {!Gen.derive_seed}, so a campaign over
    [count] models is a pure function of the master seed — any failing
    index can be replayed in isolation. Progress is visible through the
    [fuzz.*] {!Obs} counters ([fuzz.models], [fuzz.failures],
    [fuzz.fail.<label>], [fuzz.shrink.candidates], [fuzz.shrink.accepted],
    [fuzz.corpus.saved]). *)

type failure_report = {
  seed : int;  (** the per-model generator seed (not the master seed) *)
  original_failure : Oracle.failure;
  failure : Oracle.failure;  (** after shrinking (may differ in class) *)
  model : Netlist.Model.t;  (** the minimized model *)
  shrunk : Shrink.result option;
  entry : Corpus.entry option;  (** written when [corpus_dir] was given *)
}

type result = { count : int; failures : failure_report list }

(** [run ~seed ~count ()] generates and oracle-checks [count] models.
    [on_model i model_seed] fires before model [i] runs (progress hook).
    Failures are shrunk (unless [shrink:false]) and persisted to
    [corpus_dir] when given.

    [jobs > 1] shards the campaign indices across that many domains
    (worker [w] checks and shrinks indices [w], [w+jobs], …). Per-model
    seeds come from {!Gen.derive_seed}, so every index generates the same
    model at any [jobs]; corpus writes are funnelled through the calling
    domain in index order after all shards join, so the failure list and
    the corpus on disk are identical to a sequential campaign's. The only
    parallel-mode differences: [on_model] fires from worker domains
    (serialized by a mutex, not in index order), and wall-clock interleaving
    of the [fuzz.*] counters. *)
val run :
  ?knobs:Gen.knobs ->
  ?config:Oracle.config ->
  ?corpus_dir:string ->
  ?shrink:bool ->
  ?max_shrink_candidates:int ->
  ?on_model:(int -> int -> unit) ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  result
