(** ddmin-style minimization of oracle-failing models.

    The shrinker never mutates the original: each candidate is rebuilt
    into a fresh manager with {!Aig.import} under a substitution derived
    from three reduction families —

    - {b drop latches} (chunks first, then singles; the dropped latch's
      state variable becomes its reset constant),
    - {b truncate cones} (replace a next-state function by the reset
      constant or by the latch itself),
    - {b merge inputs} (an input becomes a constant or an alias of an
      earlier input).

    A candidate is accepted when {!Oracle.check} still fails — on {e any}
    failure, not necessarily the original one: a smaller model exposing a
    different bug is still a better repro. Greedy rounds repeat until a
    fixpoint or the candidate budget is exhausted. At least one latch is
    always kept. *)

type result = {
  model : Netlist.Model.t;  (** minimized model, still failing *)
  failure : Oracle.failure;  (** the failure the minimized model exhibits *)
  rounds : int;
  candidates : int;  (** candidates built and checked *)
  accepted : int;  (** candidates that kept failing *)
}

(** [shrink ?config ?max_candidates m failure] — [m] must currently fail
    {!Oracle.check} with [failure]. Deterministic. *)
val shrink :
  ?config:Oracle.config -> ?max_candidates:int -> Netlist.Model.t -> Oracle.failure -> result
