type entry = {
  path : string;
  slug : string;
  model_name : string;
  seed : int option;
  label : string;
  detail : string;
}

let json_path slug dir = Filename.concat dir (slug ^ ".json")
let aag_path slug dir = Filename.concat dir (slug ^ ".aag")

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fresh_slug ~dir base =
  let rec go i =
    let slug = if i = 0 then base else Printf.sprintf "%s-%d" base i in
    if Sys.file_exists (aag_path slug dir) || Sys.file_exists (json_path slug dir) then go (i + 1)
    else slug
  in
  go 0

let save ~dir ?seed model failure ~verdicts =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let label = Oracle.failure_label failure in
  let base =
    match seed with
    | Some s -> Printf.sprintf "%s-seed%d" label s
    | None -> Printf.sprintf "%s-%s" label (Netlist.Model.name model)
  in
  let slug = fresh_slug ~dir base in
  let detail = Format.asprintf "%a" Oracle.pp_failure failure in
  let stats = Netlist.Model.stats model in
  let meta =
    Obs.Json.Obj
      [
        ("slug", Obs.Json.String slug);
        ("model", Obs.Json.String (Netlist.Model.name model));
        ("seed", match seed with Some s -> Obs.Json.Int s | None -> Obs.Json.Null);
        ("failure", Obs.Json.String label);
        ("detail", Obs.Json.String detail);
        ( "verdicts",
          Obs.Json.Obj
            (List.map
               (fun (name, v) ->
                 (name, Obs.Json.String (Format.asprintf "%a" Baselines.Verdict.pp v)))
               verdicts) );
        ( "stats",
          Obs.Json.Obj
            [
              ("inputs", Obs.Json.Int stats.Netlist.Model.inputs);
              ("latches", Obs.Json.Int stats.Netlist.Model.latches);
            ] );
      ]
  in
  write_file (aag_path slug dir) (Netlist.Aiger.write model);
  write_file (json_path slug dir) (Obs.Json.to_string meta ^ "\n");
  { path = aag_path slug dir; slug; model_name = Netlist.Model.name model; seed; label; detail }

let string_member key json =
  match Obs.Json.member key json with Some (Obs.Json.String s) -> Some s | _ -> None

let int_member key json =
  match Obs.Json.member key json with Some (Obs.Json.Int i) -> Some i | _ -> None

let list ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".json" then (
             let slug = Filename.chop_suffix f ".json" in
             let aag = aag_path slug dir in
             if not (Sys.file_exists aag) then None
             else
               match Obs.Json.of_file (json_path slug dir) with
               | Error _ -> None
               | Ok meta ->
                 Some
                   {
                     path = aag;
                     slug;
                     model_name = Option.value ~default:slug (string_member "model" meta);
                     seed = int_member "seed" meta;
                     label = Option.value ~default:"unknown" (string_member "failure" meta);
                     detail = Option.value ~default:"" (string_member "detail" meta);
                   })
           else None)
    |> List.sort (fun a b -> compare a.slug b.slug)

let load e = Netlist.Aiger.read ~name:e.model_name (read_file e.path)

let replay ?(config = Oracle.default_config) ~dir () =
  List.map (fun e -> (e, Oracle.check ~config (load e))) (list ~dir)
