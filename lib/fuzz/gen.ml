type property_shape = Clause | Cube | Cone | Mixed

type knobs = {
  min_latches : int;
  max_latches : int;
  min_inputs : int;
  max_inputs : int;
  cone_depth : int;
  and_density : float;
  constant_cones : float;
  duplicate_cones : float;
  property : property_shape;
  property_literals : int;
  shared_subcones : float;
  wide_support : float;
}

let default =
  {
    min_latches = 2;
    max_latches = 5;
    min_inputs = 1;
    max_inputs = 3;
    cone_depth = 4;
    and_density = 0.5;
    constant_cones = 0.15;
    duplicate_cones = 0.2;
    property = Mixed;
    property_literals = 2;
    shared_subcones = 0.0;
    wide_support = 0.0;
  }

let validate_knobs k =
  let prob name p =
    if p < 0.0 || p > 1.0 then Error (Printf.sprintf "%s must be in [0,1], got %g" name p)
    else Ok ()
  in
  let range name lo hi =
    if lo < 0 || hi < lo then Error (Printf.sprintf "%s range [%d,%d] is empty" name lo hi)
    else Ok ()
  in
  let ( let* ) r f = Result.bind r f in
  let* () = range "latch" k.min_latches k.max_latches in
  let* () = range "input" k.min_inputs k.max_inputs in
  let* () = if k.max_latches < 1 then Error "at least one latch is required" else Ok () in
  let* () = if k.cone_depth < 1 then Error "cone_depth must be >= 1" else Ok () in
  let* () = prob "and_density" k.and_density in
  let* () = prob "constant_cones" k.constant_cones in
  let* () = prob "duplicate_cones" k.duplicate_cones in
  let* () = prob "shared_subcones" k.shared_subcones in
  let* () = prob "wide_support" k.wide_support in
  if k.property_literals < 1 then Error "property_literals must be >= 1" else Ok ()

(* one splitmix64 step per index keeps per-model seeds independent of the
   run length *)
let derive_seed ~master i =
  let p = Util.Prng.create (master lxor (i * 0x9E3779B9)) in
  Int64.to_int (Int64.shift_right_logical (Util.Prng.next64 p) 1)

let in_range prng lo hi = lo + if hi > lo then Util.Prng.int prng (hi - lo + 1) else 0

let pick prng pool =
  let l = pool.(Util.Prng.int prng (Array.length pool)) in
  if Util.Prng.bool prng then Aig.not_ l else l

(* a random cone of bounded depth over the pool *)
let rec cone aig prng k ~pool ~depth =
  if depth = 0 || Util.Prng.float prng < 0.25 then pick prng pool
  else
    let a = cone aig prng k ~pool ~depth:(depth - 1) in
    let b = cone aig prng k ~pool ~depth:(depth - 1) in
    let r = Util.Prng.float prng in
    if r < k.and_density then Aig.and_ aig a b
    else if r < k.and_density +. ((1.0 -. k.and_density) /. 2.0) then Aig.or_ aig a b
    else Aig.xor_ aig a b

(* a semantically-false literal the two-level rewrite rules cannot fold:
   ((a & b) & c) & ((a & ~b) & c) — each conjunct shares no fanin pair, so
   the contradiction on [b] sits two levels deep *)
let hidden_false aig prng pool =
  let a = pick prng pool and b = pick prng pool and c = pick prng pool in
  let l = Aig.and_ aig (Aig.and_ aig a b) c in
  let r = Aig.and_ aig (Aig.and_ aig a (Aig.not_ b)) c in
  Aig.and_ aig l r

(* a structurally different rebuild of [f]: (f & t) | (f & ~t) for a random
   leaf [t] — semantically f, but a new cone the sweeper must merge back *)
let redundant_copy aig prng pool f =
  let t = pick prng pool in
  Aig.or_ aig (Aig.and_ aig f t) (Aig.and_ aig f (Aig.not_ t))

(* a mux of xor/xnor over two shared deep subcones: the two select
   cofactors differ only in one polarity buried below the or-of-ands, so
   the circuit backend's Shannon disjunction is a near-tautology its
   two-level rewrite rules cannot fold, while PQE's resolution sees the
   collapse at the clause level *)
let shared_subcone aig prng k ~pool =
  let sel = pick prng pool in
  let depth = max 1 (k.cone_depth - 1) in
  let y = cone aig prng k ~pool ~depth in
  let z = cone aig prng k ~pool ~depth in
  let xor_ = Aig.or_ aig (Aig.and_ aig y (Aig.not_ z)) (Aig.and_ aig (Aig.not_ y) z) in
  let xnor = Aig.or_ aig (Aig.and_ aig y z) (Aig.and_ aig (Aig.not_ y) (Aig.not_ z)) in
  Aig.or_ aig (Aig.and_ aig sel xor_) (Aig.and_ aig (Aig.not_ sel) xnor)

(* one gate ranging over the whole pool: maximal support width, the
   shape the PQE support cap and the backend selector are tuned against *)
let wide_cone aig prng pool =
  let lits =
    Array.to_list (Array.map (fun l -> if Util.Prng.bool prng then Aig.not_ l else l) pool)
  in
  if Util.Prng.bool prng then Aig.or_list aig lits else Aig.and_list aig lits

let latch_literal prng latches =
  let q = latches.(Util.Prng.int prng (Array.length latches)) in
  if Util.Prng.bool prng then Aig.not_ q else q

let model ?(knobs = default) ~seed () =
  (match validate_knobs knobs with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fuzz.Gen.model: " ^ msg));
  let master = Util.Prng.create seed in
  let shape_prng = Util.Prng.split master in
  let cones_prng = Util.Prng.split master in
  let prop_prng = Util.Prng.split master in
  let n_latches = max 1 (in_range shape_prng knobs.min_latches knobs.max_latches) in
  let n_inputs = in_range shape_prng knobs.min_inputs knobs.max_inputs in
  let b = Netlist.Builder.create (Printf.sprintf "fuzz-%d" seed) in
  let aig = Netlist.Builder.aig b in
  let inputs = Netlist.Builder.inputs b n_inputs in
  let latches =
    List.init n_latches (fun _ -> Netlist.Builder.latch b ~init:(Util.Prng.bool shape_prng))
  in
  let pool = Array.of_list (inputs @ latches) in
  (* next-state cones, each from its own split stream *)
  let previous = ref [] in
  List.iter
    (fun q ->
      let prng = Util.Prng.split cones_prng in
      let next =
        (* the PQE-trigger shapes draw from the stream only when their
           knob is on, so campaigns with the default knobs reproduce
           seed-for-seed across this change *)
        if knobs.shared_subcones > 0.0 && Util.Prng.float prng < knobs.shared_subcones then
          shared_subcone aig prng knobs ~pool
        else if knobs.wide_support > 0.0 && Util.Prng.float prng < knobs.wide_support then
          wide_cone aig prng pool
        else
        let r = Util.Prng.float prng in
        if r < knobs.constant_cones then
          let zero = hidden_false aig prng pool in
          if Util.Prng.bool prng then Aig.not_ zero else zero
        else if r < knobs.constant_cones +. knobs.duplicate_cones && !previous <> [] then
          let f = List.nth !previous (Util.Prng.int prng (List.length !previous)) in
          redundant_copy aig prng pool f
        else cone aig prng knobs ~pool ~depth:knobs.cone_depth
      in
      previous := next :: !previous;
      Netlist.Builder.connect b q next)
    latches;
  (* the property ranges over latches only, so every engine's final-state
     evaluation (which leaves inputs unconstrained) is well defined *)
  let latch_arr = Array.of_list latches in
  let shape =
    match knobs.property with
    | Mixed -> (
      match Util.Prng.int prop_prng 3 with 0 -> Clause | 1 -> Cube | _ -> Cone)
    | s -> s
  in
  let property =
    match shape with
    | Clause | Mixed ->
      Aig.or_list aig
        (List.init knobs.property_literals (fun _ -> latch_literal prop_prng latch_arr))
    | Cube ->
      Aig.and_list aig
        (List.init knobs.property_literals (fun _ -> latch_literal prop_prng latch_arr))
    | Cone ->
      let lits = Array.of_list latches in
      cone aig prop_prng knobs ~pool:lits ~depth:(min 3 knobs.cone_depth)
  in
  Netlist.Builder.set_property b property;
  Netlist.Builder.finish b
