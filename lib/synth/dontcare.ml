type config = {
  sim_rounds : int;
  conflict_limit : int option;
  use_merges : bool;
  odc_max_tries : int;
}

let obs_span = Obs.span "dontcare.disjunction"
let obs_attempts = Obs.counter "dontcare.attempts"
let obs_const = Obs.counter "dontcare.replacements.const"
let obs_merge = Obs.counter "dontcare.replacements.merge"
let obs_prefiltered = Obs.counter "dontcare.sim.prefiltered"
let obs_odc_attempts = Obs.counter "dontcare.odc.attempts"
let obs_odc_accepted = Obs.counter "dontcare.odc.accepted"
let obs_odc_rejected = Obs.counter "dontcare.odc.rejected"

let default = { sim_rounds = 8; conflict_limit = Some 5_000; use_merges = true; odc_max_tries = 16 }

type report = {
  const_replacements : int;
  merge_replacements : int;
  odc_replacements : int;
  odc_rejections : int;
  sat_calls : int;
  size_before : int;
  size_after : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "dc-const=%d dc-merge=%d odc=%d odc-rejected=%d sat-calls=%d size %d -> %d"
    r.const_replacements r.merge_replacements r.odc_replacements r.odc_rejections r.sat_calls
    r.size_before r.size_after

(* maximum don't-care-equal candidates verified per node *)
let max_candidates = 4

(* One directed pass: simplify the cone of [target] using [care] as the
   input care set (its offset is the don't-care set). [extra_targets] are
   literals whose cones provide merge candidates (typically the other
   cofactor). Returns the rebuilt literal and the replacement counts.

   Candidates are bucketed on the care-masked {e dynamic} signature words
   (random rounds + refinements); the bank-seeded prefix words act as an
   explicit pre-filter inside each bucket: a recycled counterexample that
   distinguishes a pair under care kills the candidate before it reaches
   the solver ([dontcare.sim.prefiltered]). *)
let input_dc_pass aig checker ~prng ~config ~bank ~care ~target ~extra_targets =
  if care = Aig.true_ || Aig.is_const target then (target, 0, 0)
  else begin
    let roots = target :: care :: extra_targets in
    let sim = Sweep.Sim.create ?bank aig ~roots ~rounds:config.sim_rounds ~prng in
    let n_words = Sweep.Sim.words sim in
    let n_bank = Sweep.Sim.bank_words sim in
    let care_word = Array.init n_words (fun w -> Sweep.Sim.lit_word sim care w) in
    (* dynamic (non-bank) part of the care-masked signature: the bucket key *)
    let masked_dyn l =
      Array.init (n_words - n_bank) (fun k ->
          Int64.logand care_word.(n_bank + k) (Sweep.Sim.lit_word sim l (n_bank + k)))
    in
    let hash_words ws =
      Array.fold_left
        (fun h x ->
          Util.Int_tbl.hash_int
            (h lxor (Int64.to_int x lxor Int64.to_int (Int64.shift_right_logical x 32))))
        0 ws
    in
    let equal_words a b =
      Array.length a = Array.length b
      &&
      let rec go k = k >= Array.length a || (Int64.equal a.(k) b.(k) && go (k + 1)) in
      go 0
    in
    let table : (int64 array * Aig.lit list ref) list ref Util.Int_tbl.t =
      Util.Int_tbl.create 64
    in
    let bucket key =
      let h = hash_words key in
      let entries =
        match Util.Int_tbl.find_opt table h with
        | Some e -> e
        | None ->
          let e = ref [] in
          Util.Int_tbl.replace table h e;
          e
      in
      match List.find_opt (fun (k, _) -> equal_words k key) !entries with
      | Some (_, members) -> members
      | None ->
        let members = ref [] in
        entries := (key, members) :: !entries;
        members
    in
    let register l =
      let members = bucket (masked_dyn l) in
      members := l :: !members
    in
    let register_both l =
      register l;
      register (Aig.not_ l)
    in
    register_both Aig.false_;
    (* merge targets: every node (and leaf) of the other cones *)
    List.iter
      (fun root ->
        List.iter (fun v -> register_both (Aig.var aig v)) (Aig.support aig root);
        List.iter (fun n -> register_both (Aig.lit_of_node n)) (Aig.cone aig [ root ]))
      extra_targets;
    List.iter (fun v -> register_both (Aig.var aig v)) (Aig.support aig target);
    (* a stored pattern that distinguishes the pair under care is a live
       counterexample to [equal_under] — never spend solver time on it *)
    let bank_distinguishes ln lm =
      let rec go w =
        w < n_bank
        && (not
              (Int64.equal
                 (Int64.logand care_word.(w) (Sweep.Sim.lit_word sim ln w))
                 (Int64.logand care_word.(w) (Sweep.Sim.lit_word sim lm w)))
           || go (w + 1))
      in
      go 0
    in
    let repl_tbl : Aig.lit Util.Int_tbl.t = Util.Int_tbl.create 16 in
    let consts = ref 0 and merges = ref 0 in
    Cnf.Checker.set_conflict_limit checker config.conflict_limit;
    List.iter
      (fun n ->
        let ln = Aig.lit_of_node n in
        let candidates =
          (* acyclicity: only replace by strictly earlier nodes; prefer
             constants, then older (smaller) nodes *)
          List.filter (fun l -> Aig.node_of_lit l < n) !(bucket (masked_dyn ln))
          |> List.sort (fun a b -> Int.compare (Aig.node_of_lit a) (Aig.node_of_lit b))
        in
        let candidates =
          if config.use_merges then candidates else List.filter Aig.is_const candidates
        in
        let rec try_candidates budget = function
          | [] -> ()
          | lm :: rest ->
            if budget = 0 then ()
            else if bank_distinguishes ln lm then begin
              Obs.incr obs_prefiltered;
              try_candidates budget rest
            end
            else begin
              Obs.incr obs_attempts;
              match Cnf.Checker.equal_under checker ~care ln lm with
              | Cnf.Checker.Yes ->
                Util.Int_tbl.replace repl_tbl n lm;
                if Aig.is_const lm then begin
                  incr consts;
                  Obs.incr obs_const
                end
                else begin
                  incr merges;
                  Obs.incr obs_merge
                end
              | Cnf.Checker.No | Cnf.Checker.Maybe -> try_candidates (budget - 1) rest
            end
        in
        try_candidates max_candidates candidates;
        if not (Util.Int_tbl.mem repl_tbl n) then register_both ln)
      (Aig.cone aig [ target ]);
    let repl n =
      match Util.Int_tbl.find_opt repl_tbl n with Some l -> l | None -> Aig.lit_of_node n
    in
    let rebuilt = Aig.rebuild aig ~repl target in
    (rebuilt, !consts, !merges)
  end

(* Observability-don't-care pass on the whole disjunction [g]: try to set
   nearly-constant internal nodes to the constant they almost always take;
   accept only when a full equivalence check on [g] validates the change. *)
let odc_pass aig checker ~prng ~config ~bank g =
  if config.odc_max_tries <= 0 || Aig.is_const g then (g, 0, 0)
  else begin
    let accepted = ref 0 and rejected = ref 0 in
    let g = ref g in
    let tries = ref config.odc_max_tries in
    let continue = ref true in
    while !continue && !tries > 0 do
      continue := false;
      let sim = Sweep.Sim.create ?bank aig ~roots:[ !g ] ~rounds:config.sim_rounds ~prng in
      let total_bits = 64 * Sweep.Sim.words sim in
      let popcount w =
        let c = ref 0 in
        for b = 0 to 63 do
          if Int64.logand (Int64.shift_right_logical w b) 1L = 1L then incr c
        done;
        !c
      in
      let near_constant n =
        let s = Sweep.Sim.lit_signature sim (Aig.lit_of_node n) in
        let ones = Array.fold_left (fun acc w -> acc + popcount w) 0 s in
        if ones > 0 && ones <= max 1 (total_bits / 32) then Some Aig.false_
        else if ones < total_bits && ones >= total_bits - max 1 (total_bits / 32) then
          Some Aig.true_
        else None
      in
      let candidates =
        List.filter_map
          (fun n -> Option.map (fun c -> (n, c)) (near_constant n))
          (Aig.cone aig [ !g ])
        (* deeper nodes first: replacing them removes more logic *)
        |> List.sort (fun (a, _) (b, _) -> Int.compare (Aig.level aig b) (Aig.level aig a))
      in
      let rec attempt = function
        | [] -> ()
        | (n, c) :: rest ->
          if !tries = 0 then ()
          else begin
            decr tries;
            let repl m = if m = n then c else Aig.lit_of_node m in
            let g' = Aig.rebuild aig ~repl !g in
            if g' <> !g && Aig.size aig g' < Aig.size aig !g then begin
              Obs.incr obs_odc_attempts;
              match Cnf.Checker.equal checker !g g' with
              | Cnf.Checker.Yes ->
                incr accepted;
                Obs.incr obs_odc_accepted;
                g := g';
                continue := true (* re-derive candidates on the new graph *)
              | Cnf.Checker.No | Cnf.Checker.Maybe ->
                incr rejected;
                Obs.incr obs_odc_rejected;
                attempt rest
            end
            else attempt rest
          end
      in
      attempt candidates
    done;
    (!g, !accepted, !rejected)
  end

let simplify_under_care ?(config = default) ?bank aig checker ~prng ~care f =
  let before = Aig.size aig f in
  let f', consts, merges =
    input_dc_pass aig checker ~prng ~config ~bank ~care ~target:f ~extra_targets:[]
  in
  if Aig.size aig f' <= before then (f', (consts, merges)) else (f, (0, 0))

let disjunction ?(config = default) ?bank aig checker ~prng f0 f1 =
  Obs.with_span obs_span @@ fun () ->
  Obs.Trace_events.begin_ "dontcare.disjunction";
  let queries0 = Cnf.Checker.queries checker in
  let plain = Aig.or_ aig f0 f1 in
  let size_before = Aig.size aig plain in
  let finish g odc_a odc_r consts merges =
    {
      const_replacements = consts;
      merge_replacements = merges;
      odc_replacements = odc_a;
      odc_rejections = odc_r;
      sat_calls = Cnf.Checker.queries checker - queries0;
      size_before;
      size_after = Aig.size aig g;
    }
  in
  if Aig.is_const plain || Aig.is_const f0 || Aig.is_const f1 then begin
    Obs.Trace_events.end_args "dontcare.disjunction" "size_after" size_before;
    (plain, finish plain 0 0 0 0)
  end
  else begin
    let f1', c1, m1 =
      input_dc_pass aig checker ~prng ~config ~bank ~care:(Aig.not_ f0) ~target:f1
        ~extra_targets:[ f0 ]
    in
    let f0', c0, m0 =
      input_dc_pass aig checker ~prng ~config ~bank ~care:(Aig.not_ f1') ~target:f0
        ~extra_targets:[ f1' ]
    in
    let g = Aig.or_ aig f0' f1' in
    (* never ship a result worse than the untransformed disjunction *)
    let g = if Aig.size aig g <= size_before then g else plain in
    let g, odc_a, odc_r = odc_pass aig checker ~prng ~config ~bank g in
    Obs.Trace_events.end_args "dontcare.disjunction" "size_after" (Aig.size aig g);
    (g, finish g odc_a odc_r (c0 + c1) (m0 + m1))
  end
