(** Structural clean-up helpers shared by the quantifier and the traversal
    loop. *)

(** [compact aig l] re-creates the cone of [l] through the hashing/rewrite
    front-end. Because the manager is monotone this never changes [l]'s
    function, but later rewrite opportunities (created by merges applied
    elsewhere in the cone) may shrink it. *)
val compact : Aig.t -> Aig.lit -> Aig.lit

(** [sweep_and_compact aig checker ~prng ~config l] runs the full merge
    phase on a single literal and rebuilds it — the routine used to keep
    reached-state sets small between traversal iterations. Returns the new
    literal and the sweep report. *)
val sweep_and_compact :
  ?config:Sweep.Sweeper.config ->
  ?bank:Sweep.Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  Aig.lit ->
  Aig.lit * Sweep.Sweeper.report
