let compact aig l = Aig.rebuild aig ~repl:Aig.lit_of_node l

let sweep_and_compact ?config ?bank aig checker ~prng l =
  let lits, report = Sweep.Sweeper.sweep_lits ?config ?bank aig checker ~prng [ l ] in
  match lits with
  | [ l' ] -> (l', report)
  | _ -> assert false
