(** The optimization phase of circuit-based quantification (paper §2.2).

    After merging, [F0 ∨ F1] is shrunk further with logic-synthesis
    transformations that exploit the mutual don't cares of the two
    cofactors:

    - {e input don't cares}: when [F0] holds, the disjunction is true no
      matter what [F1] computes, so the onset of [F0] is an input
      don't-care set for every node of [F1]'s cone. A node [n] may be
      replaced by [n'] whenever [(n ≠ n') ∧ ¬F0] is unsatisfiable.
      Replacement guesses are the paper's two: {e constants} (redundancy
      removal) and {e merges} with existing nodes, modulo complementation.
      The pass then runs symmetrically on [F0] with the simplified [F1]'s
      onset as don't-care set.
    - {e observability don't cares}: a replacement that differs even inside
      the care set is accepted when the difference never reaches the output
      of [F0 ∨ F1], validated by one extra SAT equivalence check on the
      whole disjunction.

    Candidates are proposed by care-set-masked simulation signatures, so
    the SAT queries stay targeted. When a {!Sweep.Pattern_bank.t} is
    supplied, its recycled counterexample lanes additionally pre-filter
    candidate pairs: any stored pattern that distinguishes a pair inside
    the care set refutes it without a solver call
    ([dontcare.sim.prefiltered]). *)

type config = {
  sim_rounds : int;
  conflict_limit : int option;
  use_merges : bool; (* try merge replacements, not just constants *)
  odc_max_tries : int; (* 0 disables the ODC pass *)
}

val default : config

type report = {
  const_replacements : int; (* nodes proven redundant under the input DC *)
  merge_replacements : int; (* nodes merged under the input DC *)
  odc_replacements : int; (* replacements accepted by the ODC validation *)
  odc_rejections : int; (* ODC candidates the validation refuted *)
  sat_calls : int;
  size_before : int; (* AND nodes of F0 ∨ F1 before optimization *)
  size_after : int;
}

val pp_report : Format.formatter -> report -> unit

(** [disjunction ?config aig checker ~prng f0 f1] returns a literal
    equivalent to [f0 ∨ f1], plus the transformation report. The result is
    never larger than the plain [Aig.or_]: passes that do not help are
    discarded. *)
val disjunction :
  ?config:config ->
  ?bank:Sweep.Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  Aig.lit ->
  Aig.lit ->
  Aig.lit * report

(** [simplify_under_care ?config aig checker ~prng ~care f] rewrites [f]
    so that it agrees with the original {e on the onset of [care]}; outside
    it the result is unconstrained (the offset of [care] is the don't-care
    set). Used by the traversal loop to shrink new frontiers under the
    complement of the already-reached set. Returns the (never larger)
    rewritten literal and the replacement counts
    [(constants, merges)]. *)
val simplify_under_care :
  ?config:config ->
  ?bank:Sweep.Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  care:Aig.lit ->
  Aig.lit ->
  Aig.lit * (int * int)
