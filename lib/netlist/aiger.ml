(* ---------- writing ---------- *)

let write m =
  let aig = Model.aig m in
  let next_lits = List.map (fun l -> l.Model.next) m.Model.latches in
  let bad = Aig.not_ m.Model.property in
  let roots = bad :: next_lits in
  let and_nodes = Aig.cone aig roots in
  (* AIGER variable numbering: inputs, then latches, then AND gates *)
  let var_index : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* our node id -> aiger variable *)
  let counter = ref 0 in
  let assign_var node =
    incr counter;
    Hashtbl.replace var_index node !counter
  in
  List.iter (fun v -> assign_var (Aig.node_of_lit (Aig.var aig v))) m.Model.inputs;
  List.iter
    (fun l -> assign_var (Aig.node_of_lit (Aig.var aig l.Model.state_var)))
    m.Model.latches;
  List.iter assign_var and_nodes;
  let lit_to_aiger l =
    let n = Aig.node_of_lit l in
    if n = 0 then if Aig.is_complemented l then 1 else 0
    else
      match Hashtbl.find_opt var_index n with
      | Some v -> (2 * v) + if Aig.is_complemented l then 1 else 0
      | None -> failwith "Aiger.write: node outside the model cone"
  in
  let buf = Buffer.create 1024 in
  let ni = List.length m.Model.inputs and nl = List.length m.Model.latches in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d %d 1 %d\n" !counter ni nl (List.length and_nodes));
  List.iteri
    (fun i _ -> Buffer.add_string buf (Printf.sprintf "%d\n" (2 * (i + 1))))
    m.Model.inputs;
  List.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n"
           (2 * (ni + i + 1))
           (lit_to_aiger l.Model.next)
           (if l.Model.init then 1 else 0)))
    m.Model.latches;
  Buffer.add_string buf (Printf.sprintf "%d\n" (lit_to_aiger bad));
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins aig n in
      let lhs = 2 * Hashtbl.find var_index n in
      (* aag convention: lhs > rhs0 >= rhs1 *)
      let r0 = lit_to_aiger f0 and r1 = lit_to_aiger f1 in
      let r0, r1 = if r0 >= r1 then (r0, r1) else (r1, r0) in
      Buffer.add_string buf (Printf.sprintf "%d %d %d\n" lhs r0 r1))
    and_nodes;
  Buffer.add_string buf (Printf.sprintf "c\nmodel %s\n" (Model.name m));
  Buffer.contents buf

let write_file m path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write m))

(* ---------- reading ---------- *)

exception Parse_error of { line : int; token : string; reason : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; token; reason } ->
      Some
        (Printf.sprintf "Aiger.Parse_error (line %d%s): %s" line
           (if token = "" then "" else Printf.sprintf ", token %S" token)
           reason)
    | _ -> None)

let parse_error ~line ~token reason = raise (Parse_error { line; token; reason })

type header = { max_var : int; ni : int; nl : int; no : int; na : int }

(* parse tokens one by one so the diagnostic can name the offender *)
let int_field ~lineno token =
  match int_of_string_opt token with
  | Some n -> n
  | None -> parse_error ~line:lineno ~token "expected an integer"

let parse_header ~lineno line =
  match String.split_on_char ' ' (String.trim line) with
  | [ ("aag" | "aig"); m; i; l; o; a ] ->
    let f = int_field ~lineno in
    { max_var = f m; ni = f i; nl = f l; no = f o; na = f a }
  | _ -> parse_error ~line:lineno ~token:(String.trim line) "expected 'aag M I L O A' header"

let ints_of_line ~lineno line =
  List.map (int_field ~lineno) (String.split_on_char ' ' (String.trim line))

let read ~name text =
  if String.length text >= 4 && String.sub text 0 4 = "aig " then
    parse_error ~line:1 ~token:"aig" "binary document; use read_binary (or read_file)";
  let lines = String.split_on_char '\n' text in
  let lines = Array.of_list lines in
  if Array.length lines = 0 then parse_error ~line:1 ~token:"" "empty document";
  let h = parse_header ~lineno:1 lines.(0) in
  let expect_lines = 1 + h.ni + h.nl + h.no + h.na in
  if Array.length lines < expect_lines then
    parse_error ~line:(Array.length lines) ~token:""
      (Printf.sprintf "truncated document (expected %d lines)" expect_lines);
  let b = Builder.create name in
  let aig = Builder.aig b in
  (* aiger var -> our literal *)
  let lit_of_var : (int, Aig.lit) Hashtbl.t = Hashtbl.create 64 in
  let our_lit ~line al =
    if al = 0 then Aig.false_
    else if al = 1 then Aig.true_
    else
      match Hashtbl.find_opt lit_of_var (al / 2) with
      | Some l -> if al land 1 = 1 then Aig.not_ l else l
      | None -> parse_error ~line ~token:(string_of_int al) "undefined literal"
  in
  (* inputs *)
  let idx = ref 1 in
  for _ = 1 to h.ni do
    (match ints_of_line ~lineno:(!idx + 1) lines.(!idx) with
    | [ l ] when l mod 2 = 0 && l > 0 -> Hashtbl.replace lit_of_var (l / 2) (Builder.input b)
    | _ ->
      parse_error ~line:(!idx + 1) ~token:(String.trim lines.(!idx))
        "expected an input line: one even positive literal");
    incr idx
  done;
  (* latches: allocate state vars first, connect after ANDs are read *)
  let pending = ref [] in
  for _ = 1 to h.nl do
    (match ints_of_line ~lineno:(!idx + 1) lines.(!idx) with
    | [ cur; next ] when cur mod 2 = 0 && cur > 0 ->
      let q = Builder.latch b ~init:false in
      Hashtbl.replace lit_of_var (cur / 2) q;
      pending := (q, next, !idx + 1) :: !pending
    | [ cur; next; init ] when cur mod 2 = 0 && cur > 0 && (init = 0 || init = 1) ->
      let q = Builder.latch b ~init:(init = 1) in
      Hashtbl.replace lit_of_var (cur / 2) q;
      pending := (q, next, !idx + 1) :: !pending
    | _ ->
      parse_error ~line:(!idx + 1) ~token:(String.trim lines.(!idx))
        "expected a latch line: 'current next [init]'");
    incr idx
  done;
  (* outputs *)
  let outputs = ref [] in
  for _ = 1 to h.no do
    (match ints_of_line ~lineno:(!idx + 1) lines.(!idx) with
    | [ l ] -> outputs := (l, !idx + 1) :: !outputs
    | _ ->
      parse_error ~line:(!idx + 1) ~token:(String.trim lines.(!idx))
        "expected an output line: one literal");
    incr idx
  done;
  (* and gates; aag files list them with defined operands (topological) *)
  for _ = 1 to h.na do
    (match ints_of_line ~lineno:(!idx + 1) lines.(!idx) with
    | [ lhs; r0; r1 ] when lhs mod 2 = 0 && lhs > 0 ->
      let line = !idx + 1 in
      let g = Aig.and_ aig (our_lit ~line r0) (our_lit ~line r1) in
      Hashtbl.replace lit_of_var (lhs / 2) g
    | _ ->
      parse_error ~line:(!idx + 1) ~token:(String.trim lines.(!idx))
        "expected an AND line: 'lhs rhs0 rhs1' with even positive lhs");
    incr idx
  done;
  List.iter (fun (q, next, line) -> Builder.connect b q (our_lit ~line next)) (List.rev !pending);
  (match List.rev !outputs with
  | (bad, line) :: _ -> Builder.set_property b (Aig.not_ (our_lit ~line bad))
  | [] -> parse_error ~line:1 ~token:"" "no output to use as the bad-state function");
  ignore h.max_var;
  Builder.finish b

(* ---------- binary format ---------- *)

(* The "aig" format fixes the variable numbering — inputs 1..I, latches
   I+1..I+L, ANDs above — drops the input and current-state fields, and
   encodes each AND as two LEB128 deltas: lhs - rhs0 and rhs0 - rhs1 with
   lhs > rhs0 >= rhs1. Our writer assigns indices in topological order, so
   the ordering constraint holds by construction. *)

let push_leb128 buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let write_binary m =
  let aig = Model.aig m in
  let next_lits = List.map (fun l -> l.Model.next) m.Model.latches in
  let bad = Aig.not_ m.Model.property in
  let and_nodes = Aig.cone aig (bad :: next_lits) in
  let var_index : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let counter = ref 0 in
  let assign_var node =
    incr counter;
    Hashtbl.replace var_index node !counter
  in
  List.iter (fun v -> assign_var (Aig.node_of_lit (Aig.var aig v))) m.Model.inputs;
  List.iter (fun l -> assign_var (Aig.node_of_lit (Aig.var aig l.Model.state_var))) m.Model.latches;
  List.iter assign_var and_nodes;
  let lit_to_aiger l =
    let n = Aig.node_of_lit l in
    if n = 0 then if Aig.is_complemented l then 1 else 0
    else
      match Hashtbl.find_opt var_index n with
      | Some v -> (2 * v) + if Aig.is_complemented l then 1 else 0
      | None -> failwith "Aiger.write_binary: node outside the model cone"
  in
  let buf = Buffer.create 1024 in
  let ni = List.length m.Model.inputs and nl = List.length m.Model.latches in
  Buffer.add_string buf
    (Printf.sprintf "aig %d %d %d 1 %d\n" !counter ni nl (List.length and_nodes));
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d\n" (lit_to_aiger l.Model.next) (if l.Model.init then 1 else 0)))
    m.Model.latches;
  Buffer.add_string buf (Printf.sprintf "%d\n" (lit_to_aiger bad));
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins aig n in
      let lhs = 2 * Hashtbl.find var_index n in
      let r0 = lit_to_aiger f0 and r1 = lit_to_aiger f1 in
      let r0, r1 = if r0 >= r1 then (r0, r1) else (r1, r0) in
      push_leb128 buf (lhs - r0);
      push_leb128 buf (r0 - r1))
    and_nodes;
  Buffer.add_string buf (Printf.sprintf "c\nmodel %s\n" (Model.name m));
  Buffer.contents buf

let read_binary ~name text =
  (* split the textual prefix (header, latches, outputs) from the binary
     AND section, which starts right after the output lines *)
  let len = String.length text in
  let pos = ref 0 in
  let read_line () =
    let start = !pos in
    while !pos < len && text.[!pos] <> '\n' do
      incr pos
    done;
    let line = String.sub text start (!pos - start) in
    if !pos < len then incr pos;
    line
  in
  let h = parse_header ~lineno:1 (read_line ()) in
  (* absolute 1-based line numbers in the textual prefix: header on line 1,
     latch i on line 1+i, output i on line 1+L+i; the binary AND section
     is reported against the line where it starts *)
  let latch_line i = 1 + i in
  let output_line i = 1 + h.nl + i in
  let and_section_line = 1 + h.nl + h.no + 1 in
  let b = Builder.create name in
  let aig = Builder.aig b in
  let lit_of_var : (int, Aig.lit) Hashtbl.t = Hashtbl.create 64 in
  let our_lit ~line al =
    if al = 0 then Aig.false_
    else if al = 1 then Aig.true_
    else
      match Hashtbl.find_opt lit_of_var (al / 2) with
      | Some l -> if al land 1 = 1 then Aig.not_ l else l
      | None -> parse_error ~line ~token:(string_of_int al) "undefined literal"
  in
  (* implicit inputs: variables 1..I *)
  for i = 1 to h.ni do
    Hashtbl.replace lit_of_var i (Builder.input b)
  done;
  (* latch lines: "next [init]", current literal implicit *)
  let pending = ref [] in
  for i = 1 to h.nl do
    let line_text = read_line () in
    match ints_of_line ~lineno:(latch_line i) line_text with
    | [ next ] | [ next; 0 ] ->
      let q = Builder.latch b ~init:false in
      Hashtbl.replace lit_of_var (h.ni + i) q;
      pending := (q, next, latch_line i) :: !pending
    | [ next; 1 ] ->
      let q = Builder.latch b ~init:true in
      Hashtbl.replace lit_of_var (h.ni + i) q;
      pending := (q, next, latch_line i) :: !pending
    | _ ->
      parse_error ~line:(latch_line i) ~token:(String.trim line_text)
        "expected a binary-format latch line: 'next [init]'"
  done;
  let outputs = ref [] in
  for i = 1 to h.no do
    let line_text = read_line () in
    match ints_of_line ~lineno:(output_line i) line_text with
    | [ l ] -> outputs := (l, output_line i) :: !outputs
    | _ ->
      parse_error ~line:(output_line i) ~token:(String.trim line_text)
        "expected an output line: one literal"
  done;
  (* binary AND section *)
  let read_leb128 () =
    let value = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if !pos >= len then
        parse_error ~line:and_section_line ~token:"" "truncated AND section";
      let byte = Char.code text.[!pos] in
      incr pos;
      value := !value lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then continue := false
    done;
    !value
  in
  for i = 1 to h.na do
    let lhs = 2 * (h.ni + h.nl + i) in
    let delta0 = read_leb128 () in
    let delta1 = read_leb128 () in
    let r0 = lhs - delta0 in
    let r1 = r0 - delta1 in
    if r0 < 0 || r1 < 0 then
      parse_error ~line:and_section_line
        ~token:(Printf.sprintf "%d %d" delta0 delta1)
        (Printf.sprintf "malformed deltas for AND %d" i);
    Hashtbl.replace lit_of_var (lhs / 2)
      (Aig.and_ aig (our_lit ~line:and_section_line r0) (our_lit ~line:and_section_line r1))
  done;
  List.iter (fun (q, next, line) -> Builder.connect b q (our_lit ~line next)) (List.rev !pending);
  (match List.rev !outputs with
  | (bad, line) :: _ -> Builder.set_property b (Aig.not_ (our_lit ~line bad))
  | [] -> parse_error ~line:1 ~token:"" "no output to use as the bad-state function");
  Builder.finish b

let write_binary_file m path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_binary m))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      let name = Filename.remove_extension (Filename.basename path) in
      if String.length s >= 4 && String.sub s 0 4 = "aig " then read_binary ~name s
      else read ~name s)
