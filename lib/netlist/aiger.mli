(** ASCII AIGER ("aag") interchange, read and write.

    The single output of the written file is the {e bad-state} function
    [¬P], following the common model-checking convention, and latch lines
    carry the AIGER-1.9 three-field form [current next init]. The reader
    accepts both two- and three-field latch lines (two-field latches reset
    to 0) and takes output 0 as the bad-state function. *)

(** Malformed input: [line] is the 1-based line number (for the binary
    AND section, the line where that section starts), [token] the
    offending token ([""] when the problem is not tied to one token) and
    [reason] what was expected. A printer is registered with [Printexc],
    so uncaught parse errors render readably. *)
exception Parse_error of { line : int; token : string; reason : string }

(** [write m] renders the model as an aag document. *)
val write : Model.t -> string

val write_file : Model.t -> string -> unit

(** [read ~name s] parses an aag document. Raises {!Parse_error} with a
    line-numbered diagnostic on malformed input. *)
val read : name:string -> string -> Model.t

(** [write_binary m] renders the compact binary ("aig") format: implicit
    input/latch literals and LEB128-delta-encoded AND gates. *)
val write_binary : Model.t -> string

(** [read_binary ~name s] parses the binary format. *)
val read_binary : name:string -> string -> Model.t

(** [read_file path] dispatches on the header ("aag" vs "aig"). *)
val read_file : string -> Model.t

val write_binary_file : Model.t -> string -> unit
