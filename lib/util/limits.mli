(** Unified per-run resource governor.

    Every bounded-effort knob in the stack — the SAT conflict budget,
    the BDD sweeping node limit, the quantification growth budget — is
    local; this module adds the {e global} coordination: one object per
    run carrying a monotonic wall-clock deadline, a shared SAT-conflict
    pool, an AIG node ceiling and a BDD node pool, threaded through the
    solver, the checker, the sweeper and every traversal engine.

    Exhaustion is {e graceful}, never an exception: once a fatal
    resource trips, the governor turns sticky-exhausted, budgeted
    queries start answering [Maybe]/[Unknown], optimization stages are
    skipped (keeping what they proved so far), and the engines return
    an anytime verdict naming the tripped resource and the deepest
    frame reached. Verdicts produced under any limit configuration are
    sound: a degraded run may answer Unknown, never a wrong
    Safe/Unsafe.

    The BDD node pool is the one non-fatal resource: draining it only
    disables further BDD sweeping (the engines whose {e primary}
    representation is BDD promote it to a fatal trip themselves via
    {!trip}).

    Checks are cheap: {!exhausted} is an atomic load; {!check} adds one
    monotonic clock read.

    {b Domain safety.} The governor is safe to share across OCaml 5
    domains: the conflict and BDD pools are atomics drained with
    fetch-and-add, the sticky trip is a compare-and-set whose winner
    fires the notify hook exactly once, and budget reads clamp at 0 (a
    pool drained concurrently may go transiently negative inside the
    atomic). {!set_notify} is the one exception — install the hook
    before the governor is shared with other domains. *)

type resource = Deadline | Conflicts | Aig_nodes | Bdd_nodes | Cancelled

type t

(** A shared governor that never trips; charging it is a no-op. *)
val unlimited : t

(** [create ()] starts the deadline clock immediately. [timeout] is in
    seconds from now; [max_conflicts] is the total SAT-conflict pool
    for the whole run; [max_aig_nodes] bounds [Aig.num_nodes] of the
    working manager; [max_bdd_nodes] is the cumulative BDD node pool
    across all sweeping managers. Omitted resources are unlimited. *)
val create :
  ?timeout:float ->
  ?max_conflicts:int ->
  ?max_aig_nodes:int ->
  ?max_bdd_nodes:int ->
  unit ->
  t

(** [true] when at least one resource has a bound. *)
val is_limited : t -> bool

(** The sticky fatal state: the first resource that tripped, without
    polling the clock. *)
val exhausted : t -> resource option

(** Poll the deadline (tripping [Deadline] when past due), then return
    the sticky state. The per-frame / per-variable checkpoint. *)
val check : t -> resource option

(** [check_aig_nodes t n] additionally trips [Aig_nodes] when the
    manager's node count [n] exceeds the ceiling. *)
val check_aig_nodes : t -> int -> resource option

(** Externally mark a resource exhausted (e.g. a BDD baseline engine
    hitting the governor's node cap). First trip wins; later calls are
    no-ops. *)
val trip : t -> resource -> unit

(** [cancel t] trips [Cancelled]: the cooperative cross-domain stop
    signal. Safe to call from any domain at any time — the portfolio
    scheduler cancels every losing engine's governor the moment a
    winner returns, and the running engine notices at its next
    checkpoint (the SAT solver polls every 1024 search steps even on
    otherwise-unbudgeted governors, so a racing solve returns
    [Unknown] promptly). Like every fatal trip it is sticky and
    idempotent. Raises [Invalid_argument] on {!unlimited} — the shared
    constant must never be poisoned. *)
val cancel : t -> unit

(** {2 The SAT-conflict pool} *)

(** Remaining conflicts usable by the next query ([None] = unlimited).
    [Some 0] once the pool is dry. *)
val conflict_budget : t -> int option

(** Draw [n] conflicts from the pool; trips [Conflicts] when it runs
    dry. No-op when the pool is unlimited. *)
val charge_conflicts : t -> int -> unit

(** {2 The BDD node pool (non-fatal)} *)

val bdd_budget : t -> int option
val charge_bdd_nodes : t -> int -> unit

(** {2 Introspection} *)

(** Seconds left before the deadline ([None] = no deadline); never
    negative. *)
val remaining_time : t -> float option

(** Nodes left under the AIG ceiling ([None] = no ceiling), measured
    against the largest node count any {!check_aig_nodes} call has
    reported so far; never negative. The resource sampler reads this to
    plot headroom without reaching into the AIG manager. *)
val aig_headroom : t -> int option

(** Seconds since [create]. *)
val elapsed : t -> float

val resource_name : resource -> string
val pp_resource : Format.formatter -> resource -> unit

(** [set_notify t f] installs a callback fired exactly once per
    governor, on the first fatal trip ({!Bdd_nodes} included when
    promoted via {!trip}). The observability layer uses it to emit
    [limits.*] counters and the [limits.exhausted] trace instant
    without this module depending on it. Install before sharing the
    governor across domains: the hook cell itself is plain mutable
    state. *)
val set_notify : t -> (resource -> unit) -> unit
