(** Monotonic timing for experiment reporting and deadlines.

    Backed by [CLOCK_MONOTONIC] (never steps backwards), so elapsed
    times are non-negative and deadlines built on them cannot jump
    under wall-clock adjustment. *)

type t

(** The raw monotonic clock, in seconds since an arbitrary epoch. Only
    differences are meaningful. *)
val now : unit -> float

val start : unit -> t

(** Elapsed seconds since [start]; non-negative. *)
val elapsed : t -> float

(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float
