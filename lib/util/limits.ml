type resource = Deadline | Conflicts | Aig_nodes | Bdd_nodes | Cancelled

(* Domain-safe: the pools are atomics drained with fetch-and-add, the
   sticky trip is a CAS whose winner fires the notify hook exactly once.
   Budget reads clamp at 0 — a pool that several domains drain
   concurrently may go transiently negative inside the atomic. *)
type t = {
  started : Stopwatch.t;
  deadline : float option; (* absolute monotonic time *)
  conflicts_left : int Atomic.t;
  conflicts_limited : bool;
  max_aig_nodes : int option;
  aig_seen : int Atomic.t; (* high-water node count from check_aig_nodes *)
  bdd_left : int Atomic.t;
  bdd_limited : bool;
  tripped : resource option Atomic.t; (* sticky: the first fatal trip *)
  mutable notify : resource -> unit;
}

let make ?timeout ?max_conflicts ?max_aig_nodes ?max_bdd_nodes () =
  let started = Stopwatch.start () in
  {
    started;
    deadline = Option.map (fun s -> Stopwatch.now () +. s) timeout;
    conflicts_left = Atomic.make (Option.value max_conflicts ~default:max_int);
    conflicts_limited = max_conflicts <> None;
    max_aig_nodes;
    aig_seen = Atomic.make 0;
    bdd_left = Atomic.make (Option.value max_bdd_nodes ~default:max_int);
    bdd_limited = max_bdd_nodes <> None;
    tripped = Atomic.make None;
    notify = ignore;
  }

let unlimited = make ()
let create = make

let is_limited t =
  t.deadline <> None || t.conflicts_limited || t.max_aig_nodes <> None || t.bdd_limited

let exhausted t = Atomic.get t.tripped

let resource_name = function
  | Deadline -> "deadline"
  | Conflicts -> "conflict pool"
  | Aig_nodes -> "aig node ceiling"
  | Bdd_nodes -> "bdd node pool"
  | Cancelled -> "cancelled"

let pp_resource ppf r = Format.pp_print_string ppf (resource_name r)

let trip t r =
  if Atomic.get t.tripped = None && Atomic.compare_and_set t.tripped None (Some r) then
    t.notify r

(* [unlimited] is a process-wide shared constant: cancelling it would
   poison every unbudgeted run in the process, so refuse loudly *)
let cancel t =
  if t == unlimited then invalid_arg "Limits.cancel: cannot cancel the shared unlimited governor";
  trip t Cancelled

let check t =
  (match (Atomic.get t.tripped, t.deadline) with
  | None, Some d -> if Stopwatch.now () >= d then trip t Deadline
  | (Some _ | None), _ -> ());
  Atomic.get t.tripped

(* remember the largest node count ever checked, so the sampler can
   report headroom without reaching into the AIG manager *)
let rec note_aig t n =
  let seen = Atomic.get t.aig_seen in
  if n > seen && not (Atomic.compare_and_set t.aig_seen seen n) then note_aig t n

let check_aig_nodes t n =
  note_aig t n;
  (match (Atomic.get t.tripped, t.max_aig_nodes) with
  | None, Some ceiling -> if n > ceiling then trip t Aig_nodes
  | (Some _ | None), _ -> ());
  check t

let conflict_budget t =
  if t.conflicts_limited then Some (max 0 (Atomic.get t.conflicts_left)) else None

let charge_conflicts t n =
  if t.conflicts_limited && n > 0 then begin
    let before = Atomic.fetch_and_add t.conflicts_left (-n) in
    if before - n <= 0 then trip t Conflicts
  end

let bdd_budget t = if t.bdd_limited then Some (max 0 (Atomic.get t.bdd_left)) else None

let charge_bdd_nodes t n =
  if t.bdd_limited && n > 0 then ignore (Atomic.fetch_and_add t.bdd_left (-n))

let remaining_time t =
  Option.map (fun d -> Float.max 0. (d -. Stopwatch.now ())) t.deadline

let aig_headroom t =
  Option.map (fun ceiling -> max 0 (ceiling - Atomic.get t.aig_seen)) t.max_aig_nodes

let elapsed t = Stopwatch.elapsed t.started
let set_notify t f = t.notify <- f
