type resource = Deadline | Conflicts | Aig_nodes | Bdd_nodes

type t = {
  started : Stopwatch.t;
  deadline : float option; (* absolute monotonic time *)
  mutable conflicts_left : int;
  conflicts_limited : bool;
  max_aig_nodes : int option;
  mutable bdd_left : int;
  bdd_limited : bool;
  mutable tripped : resource option; (* sticky: the first fatal trip *)
  mutable notify : resource -> unit;
}

let make ?timeout ?max_conflicts ?max_aig_nodes ?max_bdd_nodes () =
  let started = Stopwatch.start () in
  {
    started;
    deadline = Option.map (fun s -> Stopwatch.now () +. s) timeout;
    conflicts_left = Option.value max_conflicts ~default:max_int;
    conflicts_limited = max_conflicts <> None;
    max_aig_nodes;
    bdd_left = Option.value max_bdd_nodes ~default:max_int;
    bdd_limited = max_bdd_nodes <> None;
    tripped = None;
    notify = ignore;
  }

let unlimited = make ()
let create = make

let is_limited t =
  t.deadline <> None || t.conflicts_limited || t.max_aig_nodes <> None || t.bdd_limited

let exhausted t = t.tripped

let resource_name = function
  | Deadline -> "deadline"
  | Conflicts -> "conflict pool"
  | Aig_nodes -> "aig node ceiling"
  | Bdd_nodes -> "bdd node pool"

let pp_resource ppf r = Format.pp_print_string ppf (resource_name r)

let trip t r =
  match t.tripped with
  | Some _ -> ()
  | None ->
    t.tripped <- Some r;
    t.notify r

let check t =
  (match t.tripped, t.deadline with
  | None, Some d -> if Stopwatch.now () >= d then trip t Deadline
  | (Some _ | None), _ -> ());
  t.tripped

let check_aig_nodes t n =
  (match t.tripped, t.max_aig_nodes with
  | None, Some ceiling -> if n > ceiling then trip t Aig_nodes
  | (Some _ | None), _ -> ());
  check t

let conflict_budget t = if t.conflicts_limited then Some (max 0 t.conflicts_left) else None

let charge_conflicts t n =
  if t.conflicts_limited && n > 0 then begin
    t.conflicts_left <- t.conflicts_left - n;
    if t.conflicts_left <= 0 then begin
      t.conflicts_left <- 0;
      trip t Conflicts
    end
  end

let bdd_budget t = if t.bdd_limited then Some (max 0 t.bdd_left) else None

let charge_bdd_nodes t n =
  if t.bdd_limited && n > 0 then t.bdd_left <- max 0 (t.bdd_left - n)

let remaining_time t =
  Option.map (fun d -> Float.max 0. (d -. Stopwatch.now ())) t.deadline

let elapsed t = Stopwatch.elapsed t.started
let set_notify t f = t.notify <- f
