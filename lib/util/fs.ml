let rec mkdirs dir =
  if dir = "" || dir = "." || dir = Filename.dir_sep then ()
  else if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": exists but is not a directory"))
  end
  else begin
    mkdirs (Filename.dirname dir);
    (* tolerate a concurrent creator: only re-raise when the directory
       still does not exist *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let ensure_parent path = mkdirs (Filename.dirname path)
