(* Durations come from CLOCK_MONOTONIC (see monotonic_stubs.c), not
   gettimeofday: the wall clock steps under NTP and manual adjustment,
   which made elapsed times — and any deadline built on them — able to
   go negative or jump. Only differences of [now] are meaningful. *)
external now : unit -> float = "util_monotonic_now"

type t = float

let start () = now ()
let elapsed t = now () -. t

let time f =
  let t = start () in
  let r = f () in
  (r, elapsed t)
