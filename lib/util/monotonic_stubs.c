/* Monotonic wall clock for Util.Stopwatch.

   The OCaml Unix library exposes only gettimeofday, which jumps under
   NTP adjustment and manual clock changes; elapsed times and deadlines
   built on it can go negative.  POSIX CLOCK_MONOTONIC never steps
   backwards, so every duration and every Util.Limits deadline is
   derived from it.  The value returned is seconds since an arbitrary
   epoch (boot, typically) as a double — only differences are
   meaningful. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

#if defined(_WIN32)
#include <windows.h>
#endif

CAMLprim value util_monotonic_now(value unit)
{
  (void)unit;
#if defined(_WIN32)
  /* QPC is the Windows monotonic clock */
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return caml_copy_double((double)count.QuadPart / (double)freq.QuadPart);
#else
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  /* last resort: the realtime clock (still better than failing) */
  clock_gettime(CLOCK_REALTIME, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
}
