(* Fibonacci multiplicative hashing: odd multiplier close to 2^63/phi,
   then a fold of the high bits so buckets see the avalanche. *)
let hash_int x =
  let h = x * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land max_int

include Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = hash_int
end)
