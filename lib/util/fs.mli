(** Minimal filesystem helpers for the reporting tools. *)

(** [mkdirs dir] creates [dir] and every missing ancestor (like
    [mkdir -p]). Existing directories are fine; a path component that
    exists but is not a directory raises [Sys_error]. [""] and ["."]
    are no-ops. *)
val mkdirs : string -> unit

(** [ensure_parent path] creates the parent directory of [path] so a
    subsequent [open_out path] cannot fail with a missing-directory
    [Sys_error]. *)
val ensure_parent : string -> unit
