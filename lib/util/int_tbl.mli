(** Hash tables keyed by native integers with a monomorphic hash.

    The polymorphic [Hashtbl.hash] walks its argument generically through a
    C call; for the int-keyed tables on the AIG/sweep hot paths (cone
    walks, simulation memos, merge maps) a fixed multiplicative mix is both
    faster and avalanche-complete. Drop-in [Hashtbl.Make] interface. *)

include Hashtbl.S with type key = int

(** The mixing function itself, exposed for hand-rolled open-addressing
    tables and signature hashing: a Fibonacci-style multiplicative hash,
    always non-negative. *)
val hash_int : int -> int
