(* Wire protocol of the job daemon: newline-delimited JSON frames, one
   request or event per line, over a Unix or TCP stream socket.

   Requests flow client -> server, events server -> client. A [Submit]
   carries the model as ASCII AIGER bytes (the same byte-identical
   round-trip format [Par.Clone] freezes through), the engine name from
   [Baselines.Suite.names], and an optional per-resource budget that
   the server caps against its own ceiling ({!cap}). Every accepted
   job's lifecycle is streamed back as events correlated by the
   server-assigned id: [Accepted] (paired to the submit by its client
   tag), then [Started], zero or more [Progress] frames, and exactly
   one terminal [Done] or [Failed].

   The codec is total: {!request_of_line}/{!event_of_line} return
   [Error] on malformed frames instead of raising, so a hostile peer
   cannot kill the daemon with garbage. *)

type budget = {
  timeout : float option;
  max_conflicts : int option;
  max_aig_nodes : int option;
  max_bdd_nodes : int option;
}

let no_budget = { timeout = None; max_conflicts = None; max_aig_nodes = None; max_bdd_nodes = None }

(* The server-enforced ceiling: a client may ask for less than the
   ceiling, never more; an omitted client resource inherits the ceiling
   bound. *)
let cap ~ceiling b =
  let capf c v = match (c, v) with
    | None, v -> v
    | (Some _ as c), None -> c
    | Some c, Some v -> Some (Float.min c v)
  in
  let capi c v = match (c, v) with
    | None, v -> v
    | (Some _ as c), None -> c
    | Some c, Some v -> Some (min c v)
  in
  {
    timeout = capf ceiling.timeout b.timeout;
    max_conflicts = capi ceiling.max_conflicts b.max_conflicts;
    max_aig_nodes = capi ceiling.max_aig_nodes b.max_aig_nodes;
    max_bdd_nodes = capi ceiling.max_bdd_nodes b.max_bdd_nodes;
  }

type address = Unix_path of string | Tcp of string * int

let pp_address ppf = function
  | Unix_path p -> Format.fprintf ppf "unix:%s" p
  | Tcp (h, p) -> Format.fprintf ppf "%s:%d" h p

type request =
  | Submit of {
      tag : string;  (** client-chosen correlation key for the [Accepted] reply *)
      model_name : string;
      aig : string;  (** ASCII AIGER bytes *)
      engine : string;
      budget : budget;
      quantify_backend : string option;
          (* optional on the wire: absent = server default, so old
             clients keep working against new servers and vice versa *)
    }
  | Cancel of { id : int }
  | Ping
  | Stats
  | Shutdown

type event =
  | Accepted of { tag : string; id : int }
  | Rejected of { tag : string; reason : string }
  | Started of { id : int }
  | Progress of { id : int; frame : int; nodes : int }
  | Done of {
      id : int;
      verdict : Baselines.Verdict.t;
      seconds : float;
      report : int option;  (** id in the server's run-report store, when stored *)
    }
  | Failed of { id : int; message : string }
  | Pong
  | Stats_reply of { queued : int; running : int; completed : int; workers : int }
  | Bye
  | Protocol_error of { message : string }

(* ---------- encoding ---------- *)

module J = Obs.Json

let budget_fields b =
  let f k = function Some v -> [ (k, J.Float v) ] | None -> [] in
  let i k = function Some v -> [ (k, J.Int v) ] | None -> [] in
  f "timeout" b.timeout
  @ i "max_conflicts" b.max_conflicts
  @ i "max_aig_nodes" b.max_aig_nodes
  @ i "max_bdd_nodes" b.max_bdd_nodes

let request_json = function
  | Submit { tag; model_name; aig; engine; budget; quantify_backend } ->
    J.Obj
      ([
         ("type", J.String "submit");
         ("tag", J.String tag);
         ("model", J.String model_name);
         ("engine", J.String engine);
         ("aig", J.String aig);
       ]
      @ (match quantify_backend with
        | Some b -> [ ("quantify_backend", J.String b) ]
        | None -> [])
      @ budget_fields budget)
  | Cancel { id } -> J.Obj [ ("type", J.String "cancel"); ("id", J.Int id) ]
  | Ping -> J.Obj [ ("type", J.String "ping") ]
  | Stats -> J.Obj [ ("type", J.String "stats") ]
  | Shutdown -> J.Obj [ ("type", J.String "shutdown") ]

let verdict_fields = function
  | Baselines.Verdict.Proved -> [ ("verdict", J.String "proved") ]
  | Baselines.Verdict.Falsified d -> [ ("verdict", J.String "falsified"); ("depth", J.Int d) ]
  | Baselines.Verdict.Undecided r -> [ ("verdict", J.String "undecided"); ("reason", J.String r) ]

let event_json = function
  | Accepted { tag; id } ->
    J.Obj [ ("type", J.String "accepted"); ("tag", J.String tag); ("id", J.Int id) ]
  | Rejected { tag; reason } ->
    J.Obj [ ("type", J.String "rejected"); ("tag", J.String tag); ("reason", J.String reason) ]
  | Started { id } -> J.Obj [ ("type", J.String "started"); ("id", J.Int id) ]
  | Progress { id; frame; nodes } ->
    J.Obj
      [ ("type", J.String "progress"); ("id", J.Int id); ("frame", J.Int frame); ("nodes", J.Int nodes) ]
  | Done { id; verdict; seconds; report } ->
    J.Obj
      ([ ("type", J.String "done"); ("id", J.Int id) ]
      @ verdict_fields verdict
      @ [ ("seconds", J.Float seconds) ]
      @ match report with Some r -> [ ("report", J.Int r) ] | None -> [])
  | Failed { id; message } ->
    J.Obj [ ("type", J.String "failed"); ("id", J.Int id); ("message", J.String message) ]
  | Pong -> J.Obj [ ("type", J.String "pong") ]
  | Stats_reply { queued; running; completed; workers } ->
    J.Obj
      [
        ("type", J.String "stats");
        ("queued", J.Int queued);
        ("running", J.Int running);
        ("completed", J.Int completed);
        ("workers", J.Int workers);
      ]
  | Bye -> J.Obj [ ("type", J.String "bye") ]
  | Protocol_error { message } ->
    J.Obj [ ("type", J.String "error"); ("message", J.String message) ]

let request_to_line r = J.to_string (request_json r)
let event_to_line e = J.to_string (event_json e)

(* ---------- decoding ---------- *)

let str key j = match J.member key j with Some (J.String s) -> Some s | _ -> None
let int key j = match J.member key j with Some (J.Int i) -> Some i | _ -> None

let float_ key j =
  match J.member key j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let require what = function Some v -> Ok v | None -> Error (Printf.sprintf "missing %s" what)

let ( let* ) r f = Result.bind r f

let budget_of_json j =
  {
    timeout = float_ "timeout" j;
    max_conflicts = int "max_conflicts" j;
    max_aig_nodes = int "max_aig_nodes" j;
    max_bdd_nodes = int "max_bdd_nodes" j;
  }

let parse line ~kind of_json =
  match J.of_string line with
  | Error msg -> Error (Printf.sprintf "%s frame is not JSON: %s" kind msg)
  | Ok (J.Obj _ as j) -> (
    match str "type" j with
    | None -> Error (Printf.sprintf "%s frame has no \"type\"" kind)
    | Some ty -> of_json ty j)
  | Ok _ -> Error (Printf.sprintf "%s frame is not a JSON object" kind)

let request_of_line line =
  parse line ~kind:"request" (fun ty j ->
      match ty with
      | "submit" ->
        let* tag = require "\"tag\"" (str "tag" j) in
        let* model_name = require "\"model\"" (str "model" j) in
        let* engine = require "\"engine\"" (str "engine" j) in
        let* aig = require "\"aig\"" (str "aig" j) in
        Ok
          (Submit
             {
               tag;
               model_name;
               aig;
               engine;
               budget = budget_of_json j;
               quantify_backend = str "quantify_backend" j;
             })
      | "cancel" ->
        let* id = require "\"id\"" (int "id" j) in
        Ok (Cancel { id })
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "shutdown" -> Ok Shutdown
      | other -> Error (Printf.sprintf "unknown request type %S" other))

let verdict_of_json j =
  match str "verdict" j with
  | Some "proved" -> Ok Baselines.Verdict.Proved
  | Some "falsified" ->
    let* d = require "\"depth\"" (int "depth" j) in
    Ok (Baselines.Verdict.Falsified d)
  | Some "undecided" ->
    Ok (Baselines.Verdict.Undecided (Option.value ~default:"" (str "reason" j)))
  | Some other -> Error (Printf.sprintf "unknown verdict %S" other)
  | None -> Error "missing \"verdict\""

let event_of_line line =
  parse line ~kind:"event" (fun ty j ->
      match ty with
      | "accepted" ->
        let* tag = require "\"tag\"" (str "tag" j) in
        let* id = require "\"id\"" (int "id" j) in
        Ok (Accepted { tag; id })
      | "rejected" ->
        let* tag = require "\"tag\"" (str "tag" j) in
        Ok (Rejected { tag; reason = Option.value ~default:"" (str "reason" j) })
      | "started" ->
        let* id = require "\"id\"" (int "id" j) in
        Ok (Started { id })
      | "progress" ->
        let* id = require "\"id\"" (int "id" j) in
        let* frame = require "\"frame\"" (int "frame" j) in
        let* nodes = require "\"nodes\"" (int "nodes" j) in
        Ok (Progress { id; frame; nodes })
      | "done" ->
        let* id = require "\"id\"" (int "id" j) in
        let* verdict = verdict_of_json j in
        let* seconds = require "\"seconds\"" (float_ "seconds" j) in
        Ok (Done { id; verdict; seconds; report = int "report" j })
      | "failed" ->
        let* id = require "\"id\"" (int "id" j) in
        Ok (Failed { id; message = Option.value ~default:"" (str "message" j) })
      | "pong" -> Ok Pong
      | "stats" ->
        let* queued = require "\"queued\"" (int "queued" j) in
        let* running = require "\"running\"" (int "running" j) in
        let* completed = require "\"completed\"" (int "completed" j) in
        let* workers = require "\"workers\"" (int "workers" j) in
        Ok (Stats_reply { queued; running; completed; workers })
      | "bye" -> Ok Bye
      | "error" -> Ok (Protocol_error { message = Option.value ~default:"" (str "message" j) })
      | other -> Error (Printf.sprintf "unknown event type %S" other))
