(** Client side of the daemon protocol, used by the
    [cbq_mc submit|batch|ctl] subcommands, the tests and the load
    bench. *)

type t

val connect : Protocol.address -> t
val close : t -> unit

(** Raised when the server closes the connection mid-exchange. *)
exception Server_closed of string

val send : t -> Protocol.request -> unit

(** Next well-formed event, or [None] at EOF. Undecodable frames are
    skipped. *)
val recv : t -> Protocol.event option

val ping : t -> unit

(** [(queued, running, completed, workers)]. *)
val stats : t -> int * int * int * int

(** Request shutdown and wait for [Bye] (or EOF). *)
val shutdown_server : t -> unit

type job_spec = {
  tag : string;  (** must be unique within one {!run_batch} call *)
  model_name : string;
  aig : string;
  engine : string;
  budget : Protocol.budget;
  quantify_backend : string option;
      (** per-job {!Cbq.Quantify} backend name for the CBQ engines;
          [None] means the server's default *)
}

type outcome =
  | Finished of {
      id : int;
      verdict : Baselines.Verdict.t;
      seconds : float;
      report : int option;
      progress : int;  (** progress frames observed for this job *)
    }
  | Crashed of { id : int; message : string }
  | Refused of { reason : string }

(** Submit one job and block until its terminal event; other events
    arriving meanwhile go to [on_event]. *)
val submit_wait : ?on_event:(Protocol.event -> unit) -> t -> job_spec -> outcome

(** Submit every spec and collect every outcome, in spec order. The
    submits are written from a separate domain while the calling domain
    reads events, so arbitrarily large batches cannot deadlock on full
    socket buffers. *)
val run_batch :
  ?on_event:(Protocol.event -> unit) -> t -> job_spec list -> outcome list
