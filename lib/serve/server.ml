(* The daemon: accept loop + per-connection handler domains over the
   shared {!Scheduler}.

   Each connection gets its own handler domain reading NDJSON request
   frames; events stream back under a per-connection write mutex, and
   the [Accepted] reply to a [Submit] is written while that mutex is
   still held across the scheduler enqueue — so a client always sees
   [Accepted {tag; id}] before any [Started]/[Progress]/[Done] for that
   id, even though workers emit from other domains.

   Disconnect handling is the reason the daemon ignores SIGPIPE: a
   client that vanishes mid-job must cost the pool nothing beyond the
   next cancellation checkpoint. The default SIGPIPE disposition would
   instead kill the whole server on the first write to the dead socket.
   With the signal ignored, writes fail with [EPIPE]; the first failed
   write (or EOF on the read side) marks the connection dead, drops
   further events on the floor, and cancels every still-unfinished job
   the connection submitted. *)

let obs_connections = Obs.counter "serve.connections"
let obs_disconnect_cancels = Obs.counter "serve.disconnect_cancels"
let obs_protocol_errors = Obs.counter "serve.protocol_errors"

(* Idempotent: first [start] in the process flips SIGPIPE to ignore.
   Not available on Windows, but neither are Unix-domain sockets; the
   repo's CI targets are POSIX. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

type conn = {
  fd : Unix.file_descr;
  outc : out_channel;
  wmutex : Mutex.t;
  mutable dead : bool;
  mutable jobs : int list; (* ids this connection submitted, newest first *)
  jmutex : Mutex.t;
}

type t = {
  scheduler : Scheduler.t;
  address : Protocol.address; (* actual bound address (TCP port resolved) *)
  listen_fd : Unix.file_descr;
  unix_path : string option; (* to unlink at teardown *)
  stop : bool Atomic.t;
  handlers : (Unix.file_descr * unit Domain.t) list Atomic.t;
  accept_domain : unit Domain.t option Atomic.t;
  store : Obs.Store.t option;
}

let address t = t.address
let scheduler t = t.scheduler

let remember_job conn id =
  Mutex.protect conn.jmutex (fun () -> conn.jobs <- id :: conn.jobs)

let forget_job conn id =
  Mutex.protect conn.jmutex (fun () -> conn.jobs <- List.filter (fun j -> j <> id) conn.jobs)

let cancel_conn_jobs t conn =
  let ids = Mutex.protect conn.jmutex (fun () -> conn.jobs) in
  List.iter
    (fun id ->
      if Scheduler.cancel t.scheduler id then Obs.incr obs_disconnect_cancels)
    ids

(* Must never raise: called from worker domains deep inside job
   completion. A write failure (EPIPE with SIGPIPE ignored, or a closed
   channel) kills the connection instead. *)
let send t conn event =
  let became_dead =
    Mutex.protect conn.wmutex (fun () ->
        if conn.dead then false
        else
          try
            output_string conn.outc (Protocol.event_to_line event);
            output_char conn.outc '\n';
            flush conn.outc;
            false
          with Sys_error _ | Unix.Unix_error _ ->
            conn.dead <- true;
            true)
  in
  if became_dead then cancel_conn_jobs t conn

let handle_request t conn line =
  match Protocol.request_of_line line with
  | Error message ->
    Obs.incr obs_protocol_errors;
    send t conn (Protocol.Protocol_error { message });
    `Continue
  | Ok (Protocol.Submit { tag; model_name; aig; engine; budget; quantify_backend }) ->
    (* Hold the write mutex across enqueue + Accepted so no worker
       event for this id can be written first. The emit closure routes
       every later event through [send] (which re-takes the mutex from
       its own domain). *)
    Mutex.protect conn.wmutex (fun () ->
        let result =
          Scheduler.submit t.scheduler ~tag ~model_name ~aig ~engine ~quantify_backend
            ~budget
            ~emit:(fun event ->
              (match event with
              | Protocol.Done { id; _ } | Protocol.Failed { id; _ } -> forget_job conn id
              | _ -> ());
              send t conn event)
        in
        (match result with
        | Ok id -> remember_job conn id
        | Error _ -> ());
        if not conn.dead then begin
          try
            let reply =
              match result with
              | Ok id -> Protocol.Accepted { tag; id }
              | Error reason -> Protocol.Rejected { tag; reason }
            in
            output_string conn.outc (Protocol.event_to_line reply);
            output_char conn.outc '\n';
            flush conn.outc
          with Sys_error _ | Unix.Unix_error _ -> conn.dead <- true
        end);
    if conn.dead then cancel_conn_jobs t conn;
    `Continue
  | Ok (Protocol.Cancel { id }) ->
    ignore (Scheduler.cancel t.scheduler id);
    `Continue
  | Ok Protocol.Ping ->
    send t conn Protocol.Pong;
    `Continue
  | Ok Protocol.Stats ->
    let s = Scheduler.stats t.scheduler in
    send t conn
      (Protocol.Stats_reply
         {
           queued = s.Scheduler.queued;
           running = s.Scheduler.running;
           completed = s.Scheduler.completed;
           workers = s.Scheduler.workers;
         });
    `Continue
  | Ok Protocol.Shutdown ->
    send t conn Protocol.Bye;
    Atomic.set t.stop true;
    (* wake the accept loop out of its blocking [accept] *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
    `Stop

let handler t fd =
  Obs.incr obs_connections;
  let conn =
    {
      fd;
      outc = Unix.out_channel_of_descr fd;
      wmutex = Mutex.create ();
      dead = false;
      jobs = [];
      jmutex = Mutex.create ();
    }
  in
  let inc = Unix.in_channel_of_descr fd in
  let rec loop () =
    match input_line inc with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line -> ( match handle_request t conn line with `Continue -> loop () | `Stop -> ())
  in
  loop ();
  (* EOF or stop: whatever this client still has in flight is orphaned *)
  Mutex.protect conn.wmutex (fun () -> conn.dead <- true);
  cancel_conn_jobs t conn;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

let rec accept_loop t =
  if not (Atomic.get t.stop) then begin
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
    | exception Unix.Unix_error _ -> () (* listener shut down *)
    | fd, _peer ->
      let d = Domain.spawn (fun () -> handler t fd) in
      let rec push () =
        let old = Atomic.get t.handlers in
        if not (Atomic.compare_and_set t.handlers old ((fd, d) :: old)) then push ()
      in
      push ();
      accept_loop t
  end

let bind_listener address =
  match address with
  | Protocol.Unix_path path ->
    (* a stale socket file from a crashed daemon would make bind fail *)
    (try if (Unix.lstat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
     with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Protocol.Unix_path path, Some path)
  | Protocol.Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Protocol.Tcp (host, p) (* port 0 resolved *)
      | _ -> Protocol.Tcp (host, port)
    in
    (fd, bound, None)

let start ?jobs ?ceiling ?store address =
  Lazy.force ignore_sigpipe;
  let listen_fd, bound, unix_path = bind_listener address in
  let scheduler = Scheduler.create ?jobs ?ceiling ?store () in
  let t =
    {
      scheduler;
      address = bound;
      listen_fd;
      unix_path;
      stop = Atomic.make false;
      handlers = Atomic.make [];
      accept_domain = Atomic.make None;
      store;
    }
  in
  Atomic.set t.accept_domain (Some (Domain.spawn (fun () -> accept_loop t)));
  t

let stop t =
  Atomic.set t.stop true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())

let wait t =
  (match Atomic.get t.accept_domain with
  | Some d ->
    Domain.join d;
    Atomic.set t.accept_domain None
  | None -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* drain first: queued jobs from still-connected clients complete and
     stream their terminal events before their sockets go away *)
  Scheduler.shutdown t.scheduler;
  (* connections still reading would block their handler joins forever;
     shutting the sockets down unblocks [input_line] with EOF *)
  let handlers = Atomic.get t.handlers in
  List.iter
    (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    handlers;
  List.iter (fun (_, d) -> Domain.join d) handlers;
  Atomic.set t.handlers [];
  (match t.store with Some s -> (try Obs.Store.flush s with _ -> ()) | None -> ());
  match t.unix_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let run ?jobs ?ceiling ?store address =
  let t = start ?jobs ?ceiling ?store address in
  wait t
