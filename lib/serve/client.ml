(* Client side of the NDJSON protocol, for the [cbq_mc submit|batch|ctl]
   subcommands and the tests/bench.

   The one non-obvious piece is {!run_batch}: submitting thousands of
   jobs and reading their events over one socket can deadlock a naive
   client — if it writes all submits first, the server may fill the
   client-bound socket buffer with events, block its workers on the
   write, and leave nobody reading while the client in turn blocks on a
   full server-bound buffer. So the batch client writes from a separate
   domain while the calling domain only reads, and correlates replies
   back to specs via the submit tags. *)

type t = {
  fd : Unix.file_descr;
  inc : in_channel;
  outc : out_channel;
  wmutex : Mutex.t; (* run_batch writes from a second domain *)
}

let connect address =
  let fd, sockaddr =
    match address with
    | Protocol.Unix_path path ->
      (Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Protocol.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      (Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (inet, port))
  in
  Unix.connect fd sockaddr;
  { fd; inc = Unix.in_channel_of_descr fd; outc = Unix.out_channel_of_descr fd; wmutex = Mutex.create () }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t request =
  Mutex.protect t.wmutex (fun () ->
      output_string t.outc (Protocol.request_to_line request);
      output_char t.outc '\n';
      flush t.outc)

(* Blocking read of the next well-formed event; skips frames that fail
   to decode (a server bug, not a reason to wedge the client). *)
let rec recv t =
  match input_line t.inc with
  | exception End_of_file -> None
  | line -> ( match Protocol.event_of_line line with Ok e -> Some e | Error _ -> recv t)

exception Server_closed of string

let recv_exn t what =
  match recv t with
  | Some e -> e
  | None -> raise (Server_closed (Printf.sprintf "connection closed while waiting for %s" what))

(* ---------- one-shot helpers ---------- *)

let ping t =
  send t Protocol.Ping;
  match recv_exn t "pong" with
  | Protocol.Pong -> ()
  | _ -> raise (Server_closed "unexpected reply to ping")

let stats t =
  send t Protocol.Stats;
  let rec wait () =
    match recv_exn t "stats" with
    | Protocol.Stats_reply { queued; running; completed; workers } ->
      (queued, running, completed, workers)
    | _ -> wait ()
  in
  wait ()

let shutdown_server t =
  send t Protocol.Shutdown;
  let rec wait () =
    match recv t with None -> () | Some Protocol.Bye -> () | Some _ -> wait ()
  in
  wait ()

type job_spec = {
  tag : string;
  model_name : string;
  aig : string;
  engine : string;
  budget : Protocol.budget;
  quantify_backend : string option;
}

type outcome =
  | Finished of {
      id : int;
      verdict : Baselines.Verdict.t;
      seconds : float;
      report : int option;
      progress : int; (* progress frames observed *)
    }
  | Crashed of { id : int; message : string }
  | Refused of { reason : string }

(* ---------- submit one job, waiting inline ---------- *)

let submit_wait ?(on_event = fun (_ : Protocol.event) -> ()) t spec =
  send t
    (Protocol.Submit
       {
         tag = spec.tag;
         model_name = spec.model_name;
         aig = spec.aig;
         engine = spec.engine;
         budget = spec.budget;
         quantify_backend = spec.quantify_backend;
       });
  let progress = ref 0 in
  let rec await_accept () =
    match recv_exn t "accept" with
    | Protocol.Accepted { tag; id } when tag = spec.tag -> Ok id
    | Protocol.Rejected { tag; reason } when tag = spec.tag -> Error reason
    | e ->
      on_event e;
      await_accept ()
  in
  match await_accept () with
  | Error reason -> Refused { reason }
  | Ok id ->
    let rec await_done () =
      match recv_exn t "verdict" with
      | Protocol.Progress { id = i; _ } as e when i = id ->
        incr progress;
        on_event e;
        await_done ()
      | Protocol.Done { id = i; verdict; seconds; report } when i = id ->
        Finished { id; verdict; seconds; report; progress = !progress }
      | Protocol.Failed { id = i; message } when i = id -> Crashed { id; message }
      | e ->
        on_event e;
        await_done ()
    in
    await_done ()

(* ---------- batch: pipelined submits, interleaved events ---------- *)

let run_batch ?(on_event = fun (_ : Protocol.event) -> ()) t specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let index_of_tag = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i spec ->
      if Hashtbl.mem index_of_tag spec.tag then
        invalid_arg (Printf.sprintf "Client.run_batch: duplicate tag %S" spec.tag);
      Hashtbl.replace index_of_tag spec.tag i)
    specs;
  let outcomes : outcome option array = Array.make n None in
  let progress = Array.make n 0 in
  let index_of_id = Hashtbl.create (2 * n) in
  let writer =
    Domain.spawn (fun () ->
        try
          Array.iter
            (fun spec ->
              send t
                (Protocol.Submit
                   {
                     tag = spec.tag;
                     model_name = spec.model_name;
                     aig = spec.aig;
                     engine = spec.engine;
                     budget = spec.budget;
                     quantify_backend = spec.quantify_backend;
                   }))
            specs
        with Sys_error _ | Unix.Unix_error _ -> () (* reader will see the close *))
  in
  let remaining = ref n in
  let rec loop () =
    if !remaining > 0 then
      match recv t with
      | None -> () (* connection closed: remaining outcomes stay None *)
      | Some e ->
        (match e with
        | Protocol.Accepted { tag; id } -> (
          match Hashtbl.find_opt index_of_tag tag with
          | Some i -> Hashtbl.replace index_of_id id i
          | None -> ())
        | Protocol.Rejected { tag; reason } -> (
          match Hashtbl.find_opt index_of_tag tag with
          | Some i ->
            if outcomes.(i) = None then begin
              outcomes.(i) <- Some (Refused { reason });
              decr remaining
            end
          | None -> ())
        | Protocol.Progress { id; _ } -> (
          match Hashtbl.find_opt index_of_id id with
          | Some i -> progress.(i) <- progress.(i) + 1
          | None -> ())
        | Protocol.Done { id; verdict; seconds; report } -> (
          match Hashtbl.find_opt index_of_id id with
          | Some i ->
            if outcomes.(i) = None then begin
              outcomes.(i) <-
                Some (Finished { id; verdict; seconds; report; progress = progress.(i) });
              decr remaining
            end
          | None -> ())
        | Protocol.Failed { id; message } -> (
          match Hashtbl.find_opt index_of_id id with
          | Some i ->
            if outcomes.(i) = None then begin
              outcomes.(i) <- Some (Crashed { id; message });
              decr remaining
            end
          | None -> ())
        | _ -> ());
        on_event e;
        loop ()
  in
  loop ();
  Domain.join writer;
  Array.to_list
    (Array.map
       (function
         | Some o -> o
         | None -> Refused { reason = "connection closed before a verdict arrived" })
       outcomes)
