(** Wire protocol of the job daemon: newline-delimited JSON, one
    request or event per line over a Unix or TCP stream socket.

    A client submits jobs (ASCII AIGER bytes + engine name + optional
    budget) tagged with a correlation key, and receives the job
    lifecycle back as events: [Accepted {tag; id}] binds the tag to the
    server-assigned id, then [Started], zero or more [Progress] frames
    (one per traversal frame of the running engine) and exactly one
    terminal [Done] or [Failed] per accepted job. The full frame
    schema is documented in [docs/SERVE.md]. *)

(** Per-job resource bounds, each [None] = unlimited. The server caps
    every submitted budget against its own ceiling with {!cap}. *)
type budget = {
  timeout : float option;
  max_conflicts : int option;
  max_aig_nodes : int option;
  max_bdd_nodes : int option;
}

val no_budget : budget

(** [cap ~ceiling b] bounds every resource of [b] by [ceiling]: a
    client may ask for less than the ceiling, never more, and a
    resource the client left unlimited inherits the ceiling bound. *)
val cap : ceiling:budget -> budget -> budget

(** Where the daemon listens: a Unix-domain socket path or a TCP
    host/port. *)
type address = Unix_path of string | Tcp of string * int

val pp_address : Format.formatter -> address -> unit

type request =
  | Submit of {
      tag : string;  (** client-chosen correlation key for the [Accepted] reply *)
      model_name : string;
      aig : string;  (** ASCII AIGER bytes *)
      engine : string;  (** a [Baselines.Suite] engine name *)
      budget : budget;
      quantify_backend : string option;
          (** a [Cbq.Quantify] backend name for the CBQ engines
              (["circuit"], ["pqe"], ["auto"]); optional on the wire —
              absent means the server's default, so older clients
              inter-operate *)
    }
  | Cancel of { id : int }
  | Ping
  | Stats
  | Shutdown  (** stop accepting, drain the queue, exit *)

type event =
  | Accepted of { tag : string; id : int }
  | Rejected of { tag : string; reason : string }
  | Started of { id : int }
  | Progress of { id : int; frame : int; nodes : int }
  | Done of {
      id : int;
      verdict : Baselines.Verdict.t;
      seconds : float;
      report : int option;  (** id in the server's run-report store, when stored *)
    }
  | Failed of { id : int; message : string }  (** the job crashed; the server survives *)
  | Pong
  | Stats_reply of { queued : int; running : int; completed : int; workers : int }
  | Bye
  | Protocol_error of { message : string }  (** reply to a malformed request frame *)

(** One-line (newline-free) JSON encodings. *)
val request_to_line : request -> string

val event_to_line : event -> string

(** Total decoders: [Error] names the defect (not JSON, missing field,
    unknown type) instead of raising, so a malformed peer frame can be
    rejected without killing the connection. *)
val request_of_line : string -> (request, string) result

val event_of_line : string -> (event, string) result
