(** Job scheduler on a worker-domain pool.

    A fixed pool of worker domains drains one FIFO queue of
    model-checking jobs. Each job carries its model as frozen AIGER
    bytes (the worker thaws a private copy, per the [Par.Clone]
    discipline), runs under a fresh cancellable {!Util.Limits} governor
    built from its server-capped budget, and streams its lifecycle
    through the [emit] callback its owner provided: [Started], zero or
    more [Progress] frames, then exactly one [Done] or [Failed].
    Workers survive crashing engines — the exception becomes a [Failed]
    event and the domain moves on.

    Completed runs persist schema-v2 reports into the shared
    {!Obs.Store} (when one was given), readable afterwards with the
    [report list|show|diff|trend] commands. *)

type t

(** [create ()] spawns the worker domains immediately.
    [jobs] defaults to {!Par.Pool.default_jobs}; [ceiling] caps every
    submitted budget ({!Protocol.cap}); [store] receives one report per
    completed job. *)
val create :
  ?jobs:int -> ?ceiling:Protocol.budget -> ?store:Obs.Store.t -> unit -> t

(** Validate (engine name, quantify-backend name, AIGER parse), cap the
    budget, and enqueue. [quantify_backend] is a {!Cbq.Quantify}
    backend name specializing the CBQ engines for this job only;
    [None] means the scheduler's default. [emit] is called from worker
    domains and must not raise. Returns the job id, or a rejection
    reason. *)
val submit :
  t ->
  tag:string ->
  model_name:string ->
  aig:string ->
  engine:string ->
  quantify_backend:string option ->
  budget:Protocol.budget ->
  emit:(Protocol.event -> unit) ->
  (int, string) result

(** Cooperative cancel: a queued job completes immediately as
    [Undecided "cancelled"]; a running job's governor is tripped and
    the engine returns its anytime verdict at the next checkpoint.
    [false] when the id is unknown or already terminal. *)
val cancel : t -> int -> bool

type stats = { queued : int; running : int; completed : int; workers : int }

val stats : t -> stats

(** Stop accepting, drain the queue, join the workers, flush the
    store index. Idempotent. *)
val shutdown : t -> unit
