(** The job daemon: an accept loop plus one handler domain per
    connection, all feeding the shared {!Scheduler}.

    Lifecycle guarantees the clients rely on:
    {ul
    {- the [Accepted]/[Rejected] reply to a [Submit] is always written
       before any worker event for that job — the handler holds the
       connection's write mutex across the enqueue;}
    {- SIGPIPE is ignored process-wide on [start]; a client that
       disconnects mid-job costs nothing beyond the next cancellation
       checkpoint — the first failed write (or read EOF) marks the
       connection dead and cancels its unfinished jobs;}
    {- a [Shutdown] request (or {!stop}) stops accepting, drains the
       queue so in-flight jobs still stream their terminal events, then
       tears the connections down.}} *)

type t

(** Bind, spawn the scheduler's worker pool and the accept domain, and
    return immediately. [ceiling] caps every client budget; [store]
    receives one schema-v2 report per completed job. A stale Unix
    socket file left by a crashed daemon is replaced; TCP port 0 is
    resolved to the actual port (see {!address}). *)
val start :
  ?jobs:int ->
  ?ceiling:Protocol.budget ->
  ?store:Obs.Store.t ->
  Protocol.address ->
  t

(** The actual bound address. *)
val address : t -> Protocol.address

val scheduler : t -> Scheduler.t

(** Ask the accept loop to exit; pair with {!wait}. *)
val stop : t -> unit

(** Block until the accept loop exits (a [Shutdown] request or {!stop}),
    then drain the scheduler, join every handler, flush the store and
    remove the Unix socket file. *)
val wait : t -> unit

(** [start] + [wait]. *)
val run :
  ?jobs:int ->
  ?ceiling:Protocol.budget ->
  ?store:Obs.Store.t ->
  Protocol.address ->
  unit
