(* Job scheduler on a worker-domain pool.

   A fixed pool of worker domains drains one FIFO queue of jobs. Each
   job carries its model as frozen AIGER bytes (never a shared
   manager: the worker thaws its own, the [Par.Clone] discipline), gets
   a fresh cancellable [Util.Limits] governor built from its
   server-capped budget, and streams its lifecycle through the [emit]
   callback the owner (a server connection) provided. Workers never
   die: a crashing engine is caught, reported as [Failed], and the
   domain moves to the next job.

   Cancellation is cooperative, in the [Par.Race] style: cancelling a
   queued job marks it (the worker that eventually pops it replies
   "cancelled" without running anything), cancelling a running job
   trips its governor ([Util.Limits.cancel]) and the engine returns its
   anytime verdict at the next checkpoint.

   Completed runs persist a small schema-v2 report into the shared
   [Obs.Store] (when the scheduler owns one). The store's [lockf]
   locking serializes against other processes; appends from the worker
   domains of THIS process are funnelled through [store_mutex], since
   fcntl locks do not exclude threads of one process.

   Per-frame progress rides on [Obs.Progress.set_listener]: each worker
   domain runs at most one job at a time, so the emitting domain's id
   keys the running-job table. *)

let obs_submitted = Obs.counter "serve.jobs.submitted"
let obs_rejected = Obs.counter "serve.jobs.rejected"
let obs_completed = Obs.counter "serve.jobs.completed"
let obs_cancelled = Obs.counter "serve.jobs.cancelled"
let obs_failed = Obs.counter "serve.jobs.failed"
let obs_frames = Obs.counter "serve.frames"
let obs_span = Obs.span "serve.job"

type job = {
  id : int;
  model_name : string;
  aig : string;
  engine : Baselines.Suite.engine;
  budget : Protocol.budget; (* already capped by the server ceiling *)
  emit : Protocol.event -> unit; (* must never raise; may block on the socket *)
  mutable cancel_requested : bool;
  mutable limits : Util.Limits.t option; (* set while running *)
  mutable frames : int; (* progress frames seen, for the stored report *)
}

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  jobs : (int, job) Hashtbl.t; (* id -> job, until its terminal event *)
  by_domain : (int, job) Hashtbl.t; (* worker domain id -> running job *)
  mutable next_id : int;
  mutable running : int;
  mutable completed : int;
  mutable stopping : bool;
  store : Obs.Store.t option;
  store_mutex : Mutex.t;
  ceiling : Protocol.budget;
  config : Baselines.Suite.config;
  mutable workers : unit Domain.t list;
}

let workers t = List.length t.workers

(* ---------- the progress listener ---------- *)

(* One process-global dispatch table: scheduler creation registers
   itself, shutdown unregisters. Kept as a list so tests can run a
   scheduler while an unrelated traversal executes on the main domain
   (its domain id simply misses every table). *)
let schedulers : t list Atomic.t = Atomic.make []

let rec add_scheduler t =
  let old = Atomic.get schedulers in
  if not (Atomic.compare_and_set schedulers old (t :: old)) then add_scheduler t

let rec remove_scheduler t =
  let old = Atomic.get schedulers in
  if not (Atomic.compare_and_set schedulers old (List.filter (fun s -> s != t) old)) then
    remove_scheduler t

let dispatch_frame ~domain ~index ~nodes =
  List.iter
    (fun t ->
      let job =
        Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.by_domain domain)
      in
      match job with
      | None -> ()
      | Some job ->
        job.frames <- job.frames + 1;
        Obs.incr obs_frames;
        job.emit (Protocol.Progress { id = job.id; frame = index; nodes }))
    (Atomic.get schedulers)

let install_listener () =
  Obs.Progress.set_listener
    (match Atomic.get schedulers with
    | [] -> None
    | _ -> Some (fun ~domain ~index ~nodes -> dispatch_frame ~domain ~index ~nodes))

(* ---------- per-job reports ---------- *)

let verdict_string = function
  | Baselines.Verdict.Proved -> "proved"
  | Baselines.Verdict.Falsified d -> Printf.sprintf "falsified:%d" d
  | Baselines.Verdict.Undecided _ -> "undecided"

(* A self-contained schema-v2 report (the daemon cannot use the global
   registry snapshot: concurrent jobs would bleed into each other's
   counters). [serve.job.frames] is deterministic for a given model and
   engine, so stored serve runs stay trend-gateable. *)
let job_report job ~verdict ~seconds ~exhausted =
  let meta =
    [
      ("tool", Obs.Json.String "cbq-mc-serve");
      ("model", Obs.Json.String job.model_name);
      ("engine", Obs.Json.String job.engine.Baselines.Suite.name);
      ("verdict", Obs.Json.String (verdict_string verdict));
      ("seconds", Obs.Json.String (Printf.sprintf "%.6f" seconds));
      ("job", Obs.Json.String (string_of_int job.id));
    ]
    @ match exhausted with
      | Some r -> [ ("exhausted", Obs.Json.String (Util.Limits.resource_name r)) ]
      | None -> []
  in
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 2);
      ("meta", Obs.Json.Obj meta);
      ( "counters",
        Obs.Json.Obj
          [
            ("serve.job.frames", Obs.Json.Int job.frames);
            ( "serve.job.cancelled",
              Obs.Json.Int (if job.cancel_requested then 1 else 0) );
          ] );
      ("spans", Obs.Json.Obj []);
      ("histograms", Obs.Json.Obj []);
    ]

let store_report t job ~verdict ~seconds ~exhausted =
  match t.store with
  | None -> None
  | Some store -> (
    let report = job_report job ~verdict ~seconds ~exhausted in
    try
      Some
        (Mutex.protect t.store_mutex (fun () -> (Obs.Store.append store report).Obs.Store.id))
    with _ -> None (* a full disk must not kill the job's verdict *))

(* ---------- the worker loop ---------- *)

let finish t job =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.remove t.jobs job.id;
      t.completed <- t.completed + 1)

let run_job t job =
  let limits =
    Obs.Limits.arm
      (Util.Limits.create ?timeout:job.budget.Protocol.timeout
         ?max_conflicts:job.budget.Protocol.max_conflicts
         ?max_aig_nodes:job.budget.Protocol.max_aig_nodes
         ?max_bdd_nodes:job.budget.Protocol.max_bdd_nodes ())
  in
  let dom = (Domain.self () :> int) in
  Mutex.protect t.mutex (fun () ->
      job.limits <- Some limits;
      (* a cancel that arrived while the job sat in the queue already
         set the flag; trip the fresh governor so the engine returns
         immediately at its first checkpoint *)
      if job.cancel_requested then Util.Limits.cancel limits;
      Hashtbl.replace t.by_domain dom job;
      t.running <- t.running + 1);
  job.emit (Protocol.Started { id = job.id });
  let watch = Util.Stopwatch.start () in
  let outcome =
    try
      let model = Netlist.Aiger.read ~name:job.model_name job.aig in
      Ok (job.engine.Baselines.Suite.run ~limits model)
    with exn -> Error (Printexc.to_string exn)
  in
  let seconds = Util.Stopwatch.elapsed watch in
  Obs.add_seconds obs_span seconds;
  Mutex.protect t.mutex (fun () ->
      Hashtbl.remove t.by_domain dom;
      t.running <- t.running - 1);
  (match outcome with
  | Ok (verdict, _trace) ->
    let report =
      store_report t job ~verdict ~seconds ~exhausted:(Util.Limits.exhausted limits)
    in
    (match verdict with
    | Baselines.Verdict.Undecided _ when job.cancel_requested -> Obs.incr obs_cancelled
    | _ -> Obs.incr obs_completed);
    job.emit (Protocol.Done { id = job.id; verdict; seconds; report })
  | Error message ->
    Obs.incr obs_failed;
    job.emit (Protocol.Failed { id = job.id; message }));
  finish t job

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopping: drain done, exit *)
  else begin
    let job = Queue.pop t.queue in
    if job.cancel_requested then begin
      Mutex.unlock t.mutex;
      Obs.incr obs_cancelled;
      job.emit
        (Protocol.Done
           {
             id = job.id;
             verdict = Baselines.Verdict.Undecided "cancelled";
             seconds = 0.0;
             report = None;
           });
      finish t job
    end
    else begin
      Mutex.unlock t.mutex;
      run_job t job
    end;
    worker_loop t
  end

(* ---------- the public surface ---------- *)

let create ?(jobs = Par.Pool.default_jobs ()) ?(ceiling = Protocol.no_budget) ?store () =
  let jobs = max 1 jobs in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      jobs = Hashtbl.create 64;
      by_domain = Hashtbl.create 16;
      next_id = 0;
      running = 0;
      completed = 0;
      stopping = false;
      store;
      store_mutex = Mutex.create ();
      ceiling;
      config = { Baselines.Suite.default_config with make_trace = false };
      workers = [];
    }
  in
  add_scheduler t;
  install_listener ();
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t ~tag:_ ~model_name ~aig ~engine ~quantify_backend ~budget ~emit =
  (* a per-job backend override specializes the engine table for this
     job only; an unknown name is the submitter's fault, rejected now *)
  let backend =
    match quantify_backend with
    | None -> Ok None
    | Some name -> (
      match Cbq.Quantify.backend_of_string name with
      | Some b -> Ok (Some b)
      | None ->
        Error
          (Printf.sprintf "unknown quantify backend %S (expected one of: %s)" name
             (String.concat ", " Cbq.Quantify.backend_names)))
  in
  match backend with
  | Error reason ->
    Obs.incr obs_rejected;
    Error reason
  | Ok backend -> (
    let config =
      match backend with
      | None -> t.config
      | Some quantify_backend -> { t.config with Baselines.Suite.quantify_backend }
    in
    match Baselines.Suite.find ~config engine with
    | None ->
      Obs.incr obs_rejected;
      Error (Printf.sprintf "unknown engine %S (expected one of: %s)" engine
               (String.concat ", " Baselines.Suite.names))
    | Some engine -> (
    (* parse up front: a malformed model is the submitter's fault and
       must be rejected now, not burn a worker later *)
    match Netlist.Aiger.read ~name:model_name aig with
    | exception Netlist.Aiger.Parse_error { line; reason; _ } ->
      Obs.incr obs_rejected;
      Error (Printf.sprintf "bad AIGER (line %d: %s)" line reason)
    | exception exn ->
      Obs.incr obs_rejected;
      Error (Printf.sprintf "bad AIGER (%s)" (Printexc.to_string exn))
    | _model ->
      let budget = Protocol.cap ~ceiling:t.ceiling budget in
      Mutex.protect t.mutex (fun () ->
          if t.stopping then begin
            Obs.incr obs_rejected;
            Error "server is shutting down"
          end
          else begin
            t.next_id <- t.next_id + 1;
            let job =
              {
                id = t.next_id;
                model_name;
                aig;
                engine;
                budget;
                emit;
                cancel_requested = false;
                limits = None;
                frames = 0;
              }
            in
            Hashtbl.replace t.jobs job.id job;
            Queue.push job t.queue;
            Obs.incr obs_submitted;
            Condition.signal t.nonempty;
            Ok job.id
          end)))

let cancel t id =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> false (* unknown or already terminal *)
      | Some job ->
        if not job.cancel_requested then begin
          job.cancel_requested <- true;
          match job.limits with Some l -> Util.Limits.cancel l | None -> ()
        end;
        true)

type stats = { queued : int; running : int; completed : int; workers : int }

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        queued = Queue.length t.queue;
        running = t.running;
        completed = t.completed;
        workers = workers t;
      })

(* Stop accepting, let the workers drain the queue, join them, then
   flush the store's index so the next reader opens without a tail
   scan. Idempotent. *)
let shutdown t =
  let already =
    Mutex.protect t.mutex (fun () ->
        let was = t.stopping in
        t.stopping <- true;
        Condition.broadcast t.nonempty;
        was)
  in
  if not already then begin
    List.iter Domain.join t.workers;
    remove_scheduler t;
    install_listener ();
    match t.store with
    | Some store -> ( try Mutex.protect t.store_mutex (fun () -> Obs.Store.flush store) with _ -> ())
    | None -> ()
  end
