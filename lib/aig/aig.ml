type lit = int
type var = int

(* Telemetry (see docs/OBSERVABILITY.md). These sit on the construction
   hot path; the disabled-path cost is one boolean load per event. *)
let obs_strash_hits = Obs.counter "aig.strash_hits"
let obs_rewrites = Obs.counter "aig.rewrites"
let obs_and_nodes = Obs.counter "aig.and_nodes"

(* Node encoding in the two fanin arrays:
   - node 0: the constant, [fanin0 = -2].
   - variable leaf: [fanin0 = -1], [fanin1 = variable index].
   - AND node: both fanins are literals, ordered [fanin0 <= fanin1]. *)
type t = {
  fanin0 : Util.Vec_int.t;
  fanin1 : Util.Vec_int.t;
  levels : Util.Vec_int.t;
  strash : (int * int, int) Hashtbl.t;
  var_nodes : Util.Vec_int.t; (* var index -> node id *)
  mutable ands : int;
  mutable strash_hits : int;
  mutable rewrites : int;
}

let false_ = 0
let true_ = 1
let not_ l = l lxor 1
let node_of_lit l = l lsr 1
let is_complemented l = l land 1 = 1
let lit_of_node n = n lsl 1

let create ?(initial_capacity = 1024) () =
  let t =
    {
      fanin0 = Util.Vec_int.create ~capacity:initial_capacity ();
      fanin1 = Util.Vec_int.create ~capacity:initial_capacity ();
      levels = Util.Vec_int.create ~capacity:initial_capacity ();
      strash = Hashtbl.create initial_capacity;
      var_nodes = Util.Vec_int.create ();
      ands = 0;
      strash_hits = 0;
      rewrites = 0;
    }
  in
  (* node 0: constant false *)
  Util.Vec_int.push t.fanin0 (-2);
  Util.Vec_int.push t.fanin1 0;
  Util.Vec_int.push t.levels 0;
  t

(* A copy preserves node ids, literal values and variable indices exactly,
   so literals of the original manager are valid in the copy. The copy
   shares no mutable state with the original — safe to hand to another
   domain. *)
let copy t =
  {
    fanin0 = Util.Vec_int.copy t.fanin0;
    fanin1 = Util.Vec_int.copy t.fanin1;
    levels = Util.Vec_int.copy t.levels;
    strash = Hashtbl.copy t.strash;
    var_nodes = Util.Vec_int.copy t.var_nodes;
    ands = t.ands;
    strash_hits = t.strash_hits;
    rewrites = t.rewrites;
  }

let num_nodes t = Util.Vec_int.length t.fanin0
let num_ands t = t.ands
let num_vars t = Util.Vec_int.length t.var_nodes

let fresh_var t =
  let v = num_vars t in
  let n = num_nodes t in
  Util.Vec_int.push t.fanin0 (-1);
  Util.Vec_int.push t.fanin1 v;
  Util.Vec_int.push t.levels 0;
  Util.Vec_int.push t.var_nodes n;
  v

let var t v =
  if v < 0 then invalid_arg "Aig.var: negative variable";
  while num_vars t <= v do
    ignore (fresh_var t)
  done;
  lit_of_node (Util.Vec_int.get t.var_nodes v)

let kind0 t n = Util.Vec_int.get t.fanin0 n
let is_const l = node_of_lit l = 0
let is_var t l = kind0 t (node_of_lit l) = -1
let is_and t l = kind0 t (node_of_lit l) >= 0

let var_of_lit t l =
  let n = node_of_lit l in
  if kind0 t n = -1 then Some (Util.Vec_int.get t.fanin1 n) else None

let fanins t n =
  let f0 = Util.Vec_int.get t.fanin0 n in
  if f0 < 0 then invalid_arg "Aig.fanins: not an AND node";
  (f0, Util.Vec_int.get t.fanin1 n)

let level t n = Util.Vec_int.get t.levels n

(* Fanins of a positive, uncomplemented AND literal; None otherwise. *)
let and_fanins_pos t l =
  if is_complemented l then None
  else
    let n = node_of_lit l in
    let f0 = kind0 t n in
    if f0 >= 0 then Some (f0, Util.Vec_int.get t.fanin1 n) else None

(* Fanins of a complemented AND literal. *)
let and_fanins_neg t l =
  if not (is_complemented l) then None
  else
    let n = node_of_lit l in
    let f0 = kind0 t n in
    if f0 >= 0 then Some (f0, Util.Vec_int.get t.fanin1 n) else None

let new_and_node t l0 l1 =
  let n = num_nodes t in
  Util.Vec_int.push t.fanin0 l0;
  Util.Vec_int.push t.fanin1 l1;
  let lv = 1 + max (level t (node_of_lit l0)) (level t (node_of_lit l1)) in
  Util.Vec_int.push t.levels lv;
  Hashtbl.replace t.strash (l0, l1) n;
  t.ands <- t.ands + 1;
  Obs.incr obs_and_nodes;
  lit_of_node n

(* AND construction: trivial rules, two-level rewrite rules (the paper's
   "AIG semi-canonicity"), then strashing. The rewrite rules are the O(1)
   subset of Kuehlmann et al. (DAC'01): contradiction, subsumption,
   idempotence and substitution over one structural level. *)
let rec and_ t a b =
  if a = false_ || b = false_ then false_
  else if a = true_ then b
  else if b = true_ then a
  else if a = b then a
  else if a = not_ b then false_
  else begin
    match rewrite t a b with
    | Some r ->
      t.rewrites <- t.rewrites + 1;
      Obs.incr obs_rewrites;
      r
    | None ->
      let l0, l1 = if a <= b then (a, b) else (b, a) in
      (match Hashtbl.find_opt t.strash (l0, l1) with
      | Some n ->
        t.strash_hits <- t.strash_hits + 1;
        Obs.incr obs_strash_hits;
        lit_of_node n
      | None -> new_and_node t l0 l1)
  end

and rewrite t a b =
  match one_sided t a b with
  | Some _ as r -> r
  | None -> (
    match one_sided t b a with
    | Some _ as r -> r
    | None -> two_sided t a b)

(* Rules where [a] is an AND literal and [b] an arbitrary literal. *)
and one_sided t a b =
  match and_fanins_pos t a with
  | Some (x, y) ->
    if b = not_ x || b = not_ y then Some false_ (* (x&y) & ~x = 0 *)
    else if b = x || b = y then Some a (* (x&y) & x = x&y *)
    else None
  | None -> (
    match and_fanins_neg t a with
    | Some (x, y) ->
      if b = not_ x || b = not_ y then Some b (* ~(x&y) & ~x = ~x *)
      else if b = x then Some (and_ t x (not_ y)) (* substitution *)
      else if b = y then Some (and_ t y (not_ x))
      else None
    | None -> None)

(* Rules needing both operands decomposed. *)
and two_sided t a b =
  match (and_fanins_pos t a, and_fanins_pos t b) with
  | Some (x, y), Some (u, v) ->
    (* (x&y) & (u&v) = 0 when a fanin contradicts another fanin *)
    if x = not_ u || x = not_ v || y = not_ u || y = not_ v then Some false_ else None
  | _ -> (
    match (and_fanins_pos t a, and_fanins_neg t b) with
    | Some (x, y), Some (u, v) ->
      (* (x&y) & ~(u&v) = x&y when x&y already falsifies u&v *)
      if x = not_ u || x = not_ v || y = not_ u || y = not_ v then Some a else None
    | _ -> (
      match (and_fanins_neg t a, and_fanins_pos t b) with
      | Some (u, v), Some (x, y) ->
        if x = not_ u || x = not_ v || y = not_ u || y = not_ v then Some b else None
      | _ -> None))

let or_ t a b = not_ (and_ t (not_ a) (not_ b))
let implies t a b = or_ t (not_ a) b

let xor_ t a b =
  (* a^b = (a|b) & ~(a&b) *)
  and_ t (or_ t a b) (not_ (and_ t a b))

let iff_ t a b = not_ (xor_ t a b)
let ite t c a b = or_ t (and_ t c a) (and_ t (not_ c) b)
let and_list t ls = List.fold_left (and_ t) true_ ls
let or_list t ls = List.fold_left (or_ t) false_ ls

(* Iterative post-order over AND nodes reachable from [roots]; leaves are
   not reported. *)
let cone t roots =
  let visited = Util.Int_tbl.create 64 in
  let order = ref [] in
  let stack = Stack.create () in
  let push_node l =
    let n = node_of_lit l in
    if (not (Util.Int_tbl.mem visited n)) && kind0 t n >= 0 then Stack.push (n, false) stack
  in
  List.iter push_node roots;
  while not (Stack.is_empty stack) do
    let n, expanded = Stack.pop stack in
    if not (Util.Int_tbl.mem visited n) then
      if expanded then begin
        Util.Int_tbl.replace visited n ();
        order := n :: !order
      end
      else begin
        Stack.push (n, true) stack;
        let f0 = Util.Vec_int.get t.fanin0 n and f1 = Util.Vec_int.get t.fanin1 n in
        push_node f1;
        push_node f0
      end
  done;
  List.rev !order

let size_list t roots = List.length (cone t roots)
let size t l = size_list t [ l ]

let support_list t roots =
  let seen_node = Util.Int_tbl.create 64 in
  let vars = Util.Int_tbl.create 16 in
  let stack = Stack.create () in
  let push l =
    let n = node_of_lit l in
    if not (Util.Int_tbl.mem seen_node n) then begin
      Util.Int_tbl.replace seen_node n ();
      Stack.push n stack
    end
  in
  List.iter push roots;
  while not (Stack.is_empty stack) do
    let n = Stack.pop stack in
    let f0 = kind0 t n in
    if f0 = -1 then Util.Int_tbl.replace vars (Util.Vec_int.get t.fanin1 n) ()
    else if f0 >= 0 then begin
      push f0;
      push (Util.Vec_int.get t.fanin1 n)
    end
  done;
  List.sort Int.compare (Util.Int_tbl.fold (fun v () acc -> v :: acc) vars [])

let support t l = support_list t [ l ]
let depends_on t l v = List.mem v (support t l)

(* Generic memoized bottom-up reconstruction of the cone of [root]:
   [leaf n] gives the literal for leaf node [n] (constant or variable);
   AND nodes are rebuilt with [and_] from transformed fanins. Because
   {!cone} yields fanins first, only leaves can be absent from the memo
   when a fanin value is requested. *)
let transform t ~leaf root =
  let memo : lit Util.Int_tbl.t = Util.Int_tbl.create 64 in
  Util.Int_tbl.replace memo 0 false_;
  let value_of l =
    let n = node_of_lit l in
    let v =
      match Util.Int_tbl.find_opt memo n with
      | Some v -> v
      | None ->
        let v = leaf n in
        Util.Int_tbl.replace memo n v;
        v
    in
    v lxor (l land 1)
  in
  List.iter
    (fun n ->
      let f0 = Util.Vec_int.get t.fanin0 n and f1 = Util.Vec_int.get t.fanin1 n in
      Util.Int_tbl.replace memo n (and_ t (value_of f0) (value_of f1)))
    (cone t [ root ]);
  value_of root

let cofactor t l ~v ~phase =
  let leaf n =
    if kind0 t n = -1 && Util.Vec_int.get t.fanin1 n = v then if phase then true_ else false_
    else lit_of_node n
  in
  transform t ~leaf l

let compose t l ~subst =
  let leaf n =
    if kind0 t n = -1 then
      match subst (Util.Vec_int.get t.fanin1 n) with
      | Some replacement -> replacement
      | None -> lit_of_node n
    else lit_of_node n
  in
  transform t ~leaf l

(* Rebuild with node replacements. [repl n] may point at another node whose
   own cone must itself be rebuilt, so the traversal follows replacement
   edges; the substitution map must be acyclic (representatives map to
   themselves). Iterative with an explicit stack: cones can be deeper than
   the call stack (long counter or shift chains). *)
let rebuild t ~repl root =
  let memo : lit Util.Int_tbl.t = Util.Int_tbl.create 64 in
  Util.Int_tbl.replace memo 0 false_;
  let stack = Stack.create () in
  Stack.push (node_of_lit root) stack;
  while not (Stack.is_empty stack) do
    let n = Stack.top stack in
    if Util.Int_tbl.mem memo n then ignore (Stack.pop stack)
    else begin
      let r = repl n in
      if r <> lit_of_node n then begin
        let m = node_of_lit r in
        match Util.Int_tbl.find_opt memo m with
        | Some v ->
          Util.Int_tbl.replace memo n (v lxor (r land 1));
          ignore (Stack.pop stack)
        | None -> Stack.push m stack
      end
      else begin
        let f0 = kind0 t n in
        if f0 = -1 then begin
          Util.Int_tbl.replace memo n (lit_of_node n);
          ignore (Stack.pop stack)
        end
        else begin
          let f1 = Util.Vec_int.get t.fanin1 n in
          let n0 = node_of_lit f0 and n1 = node_of_lit f1 in
          match (Util.Int_tbl.find_opt memo n0, Util.Int_tbl.find_opt memo n1) with
          | Some v0, Some v1 ->
            Util.Int_tbl.replace memo n (and_ t (v0 lxor (f0 land 1)) (v1 lxor (f1 land 1)));
            ignore (Stack.pop stack)
          | m0, m1 ->
            if m0 = None then Stack.push n0 stack;
            if m1 = None then Stack.push n1 stack
        end
      end
    end
  done;
  Util.Int_tbl.find memo (node_of_lit root) lxor (root land 1)

let import t ~source ~subst root =
  let memo : lit Util.Int_tbl.t = Util.Int_tbl.create 64 in
  Util.Int_tbl.replace memo 0 false_;
  let value_of l =
    let n = node_of_lit l in
    let v =
      match Util.Int_tbl.find_opt memo n with
      | Some v -> v
      | None ->
        (* leaf in topological order: must be a variable of the source *)
        let v =
          match var_of_lit source (lit_of_node n) with
          | Some var_index -> subst var_index
          | None -> invalid_arg "Aig.import: malformed source cone"
        in
        Util.Int_tbl.replace memo n v;
        v
    in
    v lxor (l land 1)
  in
  List.iter
    (fun n ->
      let f0, f1 = fanins source n in
      Util.Int_tbl.replace memo n (and_ t (value_of f0) (value_of f1)))
    (cone source [ root ]);
  value_of root

let lit_word l w = if is_complemented l then Int64.lognot w else w

let simulate_cone t nodes words =
  let table : (int, int64) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace table 0 0L;
  let word_of_node n =
    match Hashtbl.find_opt table n with
    | Some w -> w
    | None ->
      (* must be a leaf: AND fanins precede in topological order *)
      let f0 = kind0 t n in
      let w =
        if f0 = -1 then words (Util.Vec_int.get t.fanin1 n)
        else if f0 = -2 then 0L
        else invalid_arg "Aig.simulate_cone: nodes not topologically ordered"
      in
      Hashtbl.replace table n w;
      w
  in
  let word_of_lit l = lit_word l (word_of_node (node_of_lit l)) in
  List.iter
    (fun n ->
      let f0 = Util.Vec_int.get t.fanin0 n and f1 = Util.Vec_int.get t.fanin1 n in
      Hashtbl.replace table n (Int64.logand (word_of_lit f0) (word_of_lit f1)))
    nodes;
  table

(* Compiled cone: a dense renumbering of a cone (constant, leaves and AND
   nodes, ascending node id — which is topological in this monotone
   manager) flattened into instruction arrays, so one 64-lane evaluation
   pass is a tight loop over int arrays with no hashing at all. This is
   the substrate of the bit-parallel simulation engine ([Sweep.Sim]).

   Encoding per dense index [i]:
   - [kind.(i) = -2]: the constant node (word 0).
   - [kind.(i) = -1]: a variable leaf; [aux.(i)] is the variable index.
   - otherwise: an AND node; [kind.(i)] and [aux.(i)] are the two fanins
     as {e dense literals} (dense index * 2 + complement bit). Fanins
     always precede the node, so the loop reads finished slots only. *)
type cone_eval = {
  ce_nodes : int array; (* dense index -> node id, strictly ascending *)
  ce_kind : int array;
  ce_aux : int array;
  ce_index : int Util.Int_tbl.t; (* node id -> dense index *)
}

let compile_cone t ~roots =
  let ands = cone t roots in
  let vars = support_list t roots in
  let ids =
    List.sort_uniq Int.compare
      ((0 :: List.map (fun v -> Util.Vec_int.get t.var_nodes v) vars) @ ands)
  in
  let nodes = Array.of_list ids in
  let n = Array.length nodes in
  let index = Util.Int_tbl.create (2 * n) in
  Array.iteri (fun i id -> Util.Int_tbl.replace index id i) nodes;
  let kind = Array.make n (-2) in
  let aux = Array.make n 0 in
  let dense_lit l = (Util.Int_tbl.find index (node_of_lit l) lsl 1) lor (l land 1) in
  Array.iteri
    (fun i id ->
      let f0 = kind0 t id in
      if f0 = -1 then begin
        kind.(i) <- -1;
        aux.(i) <- Util.Vec_int.get t.fanin1 id
      end
      else if f0 >= 0 then begin
        kind.(i) <- dense_lit f0;
        aux.(i) <- dense_lit (Util.Vec_int.get t.fanin1 id)
      end)
    nodes;
  { ce_nodes = nodes; ce_kind = kind; ce_aux = aux; ce_index = index }

let cone_eval_length ev = Array.length ev.ce_nodes
let cone_eval_node ev i = ev.ce_nodes.(i)

let cone_eval_index ev n =
  match Util.Int_tbl.find_opt ev.ce_index n with Some i -> i | None -> -1

let cone_eval_run ev ~words ~out =
  if Array.length out < Array.length ev.ce_nodes then
    invalid_arg "Aig.cone_eval_run: output array too short";
  let kind = ev.ce_kind and aux = ev.ce_aux in
  for i = 0 to Array.length ev.ce_nodes - 1 do
    let k = Array.unsafe_get kind i in
    if k = -2 then Array.unsafe_set out i 0L
    else if k = -1 then Array.unsafe_set out i (words (Array.unsafe_get aux i))
    else begin
      let w0 = Array.unsafe_get out (k lsr 1) in
      let w0 = if k land 1 = 1 then Int64.lognot w0 else w0 in
      let f1 = Array.unsafe_get aux i in
      let w1 = Array.unsafe_get out (f1 lsr 1) in
      let w1 = if f1 land 1 = 1 then Int64.lognot w1 else w1 in
      Array.unsafe_set out i (Int64.logand w0 w1)
    end
  done

let simulate t l words =
  let table = simulate_cone t (cone t [ l ]) words in
  let n = node_of_lit l in
  let w =
    match Hashtbl.find_opt table n with
    | Some w -> w
    | None -> if kind0 t n = -1 then words (Util.Vec_int.get t.fanin1 n) else 0L
  in
  lit_word l w

let eval t l env =
  let words v = if env v then -1L else 0L in
  Int64.logand (simulate t l words) 1L = 1L

(* Ternary evaluation with two-bit encoding per node: (known, value).
   AND: known when both sides known, or either known-0. *)
let eval3 t l env =
  let table : bool option Util.Int_tbl.t = Util.Int_tbl.create 64 in
  Util.Int_tbl.replace table 0 (Some false);
  let value_of_lit l =
    let v = Util.Int_tbl.find table (node_of_lit l) in
    if is_complemented l then Option.map not v else v
  in
  List.iter
    (fun n ->
      let f0 = Util.Vec_int.get t.fanin0 n and f1 = Util.Vec_int.get t.fanin1 n in
      let fix l =
        let m = node_of_lit l in
        if not (Util.Int_tbl.mem table m) then
          Util.Int_tbl.replace table m (env (Util.Vec_int.get t.fanin1 m))
      in
      fix f0;
      fix f1;
      let value =
        match (value_of_lit f0, value_of_lit f1) with
        | Some false, _ | _, Some false -> Some false
        | Some true, Some true -> Some true
        | None, _ | _, None -> None
      in
      Util.Int_tbl.replace table n value)
    (cone t [ l ]);
  let n = node_of_lit l in
  if not (Util.Int_tbl.mem table n) then
    Util.Int_tbl.replace table n (if kind0 t n = -1 then env (Util.Vec_int.get t.fanin1 n) else Some false);
  value_of_lit l

let pp_lit t ppf l =
  if l = false_ then Format.pp_print_string ppf "0"
  else if l = true_ then Format.pp_print_string ppf "1"
  else
    let sign = if is_complemented l then "~" else "" in
    match var_of_lit t l with
    | Some v -> Format.fprintf ppf "%sx%d" sign v
    | None -> Format.fprintf ppf "%sn%d" sign (node_of_lit l)

type stats = { nodes : int; ands : int; vars : int; strash_hits : int; rewrites : int }

let stats t =
  {
    nodes = num_nodes t;
    ands = t.ands;
    vars = num_vars t;
    strash_hits = t.strash_hits;
    rewrites = t.rewrites;
  }

let pp_stats ppf s =
  Format.fprintf ppf "nodes=%d ands=%d vars=%d strash-hits=%d rewrites=%d" s.nodes s.ands
    s.vars s.strash_hits s.rewrites
