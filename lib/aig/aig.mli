(** And-Inverter Graphs with structural hashing and two-level rewrite rules.

    The manager follows the circuit-based Boolean reasoning design of
    Kuehlmann et al. (DAC'01), which the paper adopts as its state-set
    representation: a monotone node store, complemented edges, and a hashing
    scheme that gives {e semi-canonicity} — structurally equal (and several
    locally rewritable) functions map to the same node, so many merge points
    between quantification cofactors are discovered for free.

    Literals are integers: literal [2*n] is the output of node [n], literal
    [2*n+1] its complement. Node [0] is the constant; {!false_} is literal
    [0] and {!true_} is literal [1]. Variables (primary inputs) are explicit
    leaf nodes indexed by a dense [var] index. *)

type t

(** A literal: node id with a complement bit in the LSB. *)
type lit = int

(** A variable index (dense, starting at 0). *)
type var = int

val create : ?initial_capacity:int -> unit -> t

(** [copy t] is a structurally identical manager sharing no mutable state
    with [t]: node ids, literal values and variable indices coincide, so
    literals of [t] denote the same functions in the copy. The basis of
    per-domain manager replication in the parallel sweeper — each worker
    reasons about its own copy while the originals' literals remain the
    common currency. *)
val copy : t -> t

val false_ : lit
val true_ : lit

(** {1 Variables} *)

(** [fresh_var t] allocates the next variable and returns its index. *)
val fresh_var : t -> var

(** [var t v] is the positive literal of variable [v], allocating variables
    up to [v] if needed. *)
val var : t -> var -> lit

(** Number of variables allocated so far. *)
val num_vars : t -> int

(** [var_of_lit t l] is [Some v] when [l] points at the leaf node of
    variable [v] (in either phase). *)
val var_of_lit : t -> lit -> var option

(** {1 Construction} *)

val not_ : lit -> lit
val and_ : t -> lit -> lit -> lit
val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val iff_ : t -> lit -> lit -> lit
val implies : t -> lit -> lit -> lit
val ite : t -> lit -> lit -> lit -> lit
val and_list : t -> lit list -> lit
val or_list : t -> lit list -> lit

(** {1 Structure access} *)

(** Total number of nodes ever created (including constant and variables). *)
val num_nodes : t -> int

(** Number of AND nodes ever created. *)
val num_ands : t -> int

val node_of_lit : lit -> int
val is_complemented : lit -> bool
val lit_of_node : int -> lit
val is_const : lit -> bool
val is_var : t -> lit -> bool
val is_and : t -> lit -> bool

(** Fanins of an AND node (as literals). Raises [Invalid_argument] on
    non-AND nodes. *)
val fanins : t -> int -> lit * lit

(** Topological level: 0 for leaves, 1 + max fanin level for AND nodes. *)
val level : t -> int -> int

(** {1 Cones} *)

(** [cone t roots] is the list of node ids reachable from [roots]
    (constant and variable leaves excluded), in topological order
    (fanins first). *)
val cone : t -> lit list -> int list

(** [size t l] is the number of AND nodes in the cone of [l]. *)
val size : t -> lit -> int

val size_list : t -> lit list -> int

(** [support t l] is the sorted list of variables in the cone of [l]. *)
val support : t -> lit -> var list

val support_list : t -> lit list -> var list

(** [depends_on t l v] is true when variable [v] is in the support of [l]. *)
val depends_on : t -> lit -> var -> bool

(** {1 Functional operations} *)

(** [cofactor t l ~v ~phase] is l with variable [v] fixed to [phase],
    rebuilt through the hashing front-end. *)
val cofactor : t -> lit -> v:var -> phase:bool -> lit

(** [compose t l ~subst] substitutes variables by literal functions.
    [subst v = None] leaves [v] untouched. This is the paper's
    quantification-by-substitution primitive. *)
val compose : t -> lit -> subst:(var -> lit option) -> lit

(** [rebuild t ~repl l] reconstructs the cone of [l] through the hashing
    front-end, replacing the output of node [n] by literal [repl n] wherever
    [repl n <> lit_of_node n]. This is how merge substitutions from the
    sweeping engine are applied. *)
val rebuild : t -> repl:(int -> lit) -> lit -> lit

(** [import t ~source ~subst l] copies the cone of [l] — a literal of the
    {e source} manager — into [t], mapping every source variable [v] to
    the literal [subst v] of [t]. Used to combine separately built
    circuits (e.g. the two sides of an equivalence-checking miter) in one
    manager. *)
val import : t -> source:t -> subst:(var -> lit) -> lit -> lit

(** {1 Evaluation and simulation} *)

(** [eval t l env] evaluates under a total variable assignment. *)
val eval : t -> lit -> (var -> bool) -> bool

(** Three-valued evaluation under a partial assignment: [None] inputs are
    unknown (X), and the result is [None] exactly when the known inputs do
    not determine the output. X-propagation follows the usual dominance
    rules ([0 ∧ X = 0]). Used for counterexample minimization. *)
val eval3 : t -> lit -> (var -> bool option) -> bool option

(** [simulate t l words] computes 64 parallel evaluations; [words v] is the
    simulation word of variable [v]. *)
val simulate : t -> lit -> (var -> int64) -> int64

(** [simulate_cone t nodes words] returns the simulation word of every node
    in [nodes] (which must be topologically ordered, e.g. from {!cone});
    the result maps node ids to words and also covers the leaves. This is
    the simple reference path; repeated evaluation of one cone should
    {!compile_cone} once and run {!cone_eval_run} per word instead. *)
val simulate_cone : t -> int list -> (var -> int64) -> (int, int64) Hashtbl.t

(** {2 Compiled cones}

    A cone flattened once into dense instruction arrays, so each 64-lane
    evaluation is a single tight loop with no hashing — the substrate of
    the bit-parallel simulation engine ([Sweep.Sim]). The dense numbering
    covers the constant node (always index 0), every support variable leaf
    and every AND node of the cone, in ascending node-id (hence
    topological) order. Compiling pins the cone's structure: nodes added
    to the manager afterwards are simply not part of the evaluation. *)

type cone_eval

val compile_cone : t -> roots:lit list -> cone_eval

(** Number of dense slots (constant + leaves + AND nodes). *)
val cone_eval_length : cone_eval -> int

(** [cone_eval_node ev i] is the node id at dense index [i]. *)
val cone_eval_node : cone_eval -> int -> int

(** [cone_eval_index ev n] is the dense index of node [n], or [-1] when
    [n] is not part of the compiled cone. *)
val cone_eval_index : cone_eval -> int -> int

(** [cone_eval_run ev ~words ~out] evaluates one 64-pattern word for every
    dense slot into [out] (length ≥ {!cone_eval_length}); [words v] is the
    input word of variable [v]. Raises [Invalid_argument] when [out] is
    too short. *)
val cone_eval_run : cone_eval -> words:(var -> int64) -> out:int64 array -> unit

(** Word of a literal given the word of its node. *)
val lit_word : lit -> int64 -> int64

(** {1 Reporting} *)

val pp_lit : t -> Format.formatter -> lit -> unit

type stats = { nodes : int; ands : int; vars : int; strash_hits : int; rewrites : int }

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
