let obs_added = Obs.counter "sweep.bank.added"
let obs_size = Obs.histogram "sweep.bank.size"

type t = {
  capacity : int; (* max patterns, multiple of 64 *)
  words_per_var : int; (* capacity / 64 *)
  rows : int64 array Util.Int_tbl.t; (* var -> one bit per pattern slot *)
  mutable size : int; (* patterns currently stored *)
  mutable next : int; (* ring cursor once full *)
  mutable added : int; (* total patterns ever distilled *)
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Pattern_bank.create: capacity must be positive";
  let capacity = (capacity + 63) / 64 * 64 in
  {
    capacity;
    words_per_var = capacity / 64;
    rows = Util.Int_tbl.create 64;
    size = 0;
    next = 0;
    added = 0;
  }

let size t = t.size
let capacity t = t.capacity
let n_words t = (t.size + 63) / 64
let added t = t.added

let row t v =
  match Util.Int_tbl.find_opt t.rows v with
  | Some r -> r
  | None ->
    let r = Array.make t.words_per_var 0L in
    Util.Int_tbl.replace t.rows v r;
    r

let add t model =
  let slot =
    if t.size < t.capacity then begin
      let s = t.size in
      t.size <- t.size + 1;
      s
    end
    else begin
      (* ring overwrite: recycle the oldest slot so the bank stays bounded
         across arbitrarily many reachability frames *)
      let s = t.next in
      t.next <- (t.next + 1) mod t.capacity;
      s
    end
  in
  let w = slot lsr 6 and bit = Int64.shift_left 1L (slot land 63) in
  let clear = Int64.lognot bit in
  (* the slot may carry a stale pattern: clear its bit everywhere first *)
  Util.Int_tbl.iter (fun _ r -> r.(w) <- Int64.logand r.(w) clear) t.rows;
  List.iter (fun (v, b) -> if b then (row t v).(w) <- Int64.logor (row t v).(w) bit) model;
  t.added <- t.added + 1;
  Obs.incr obs_added;
  Obs.observe obs_size t.size

let word t v w =
  if w < 0 || w >= n_words t then 0L
  else match Util.Int_tbl.find_opt t.rows v with Some r -> r.(w) | None -> 0L
