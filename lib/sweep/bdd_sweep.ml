type result = {
  merges : (int * Aig.lit) list;
  nodes_built : int;
  bdd_nodes : int;
  aborted : bool;
}

let run aig ~roots ~max_nodes =
  let man = Bdd.create () in
  let node_bdd : (int, Bdd.node) Hashtbl.t = Hashtbl.create 64 in
  (* canonical BDD -> literal that denotes it *)
  let seen : (Bdd.node, Aig.lit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace seen Bdd.zero Aig.false_;
  Hashtbl.replace node_bdd 0 Bdd.zero;
  let merges = ref [] in
  let built = ref 0 in
  let aborted = ref false in
  let bdd_of_lit l =
    let b = Hashtbl.find node_bdd (Aig.node_of_lit l) in
    if Aig.is_complemented l then Bdd.not_ man b else b
  in
  let register n b =
    Hashtbl.replace node_bdd n b;
    incr built;
    let nb = Bdd.not_ man b in
    let canon, phase = if nb < b then (nb, 1) else (b, 0) in
    (* [rep] denotes the canonical BDD; the merge must always point from
       the younger node to the older one, or rebuilding could cycle *)
    match Hashtbl.find_opt seen canon with
    | Some rep ->
      let rn = Aig.node_of_lit rep in
      if rn < n then merges := (n, rep lxor phase) :: !merges
      else if rn > n then begin
        let lit_n_canonical = Aig.lit_of_node n lxor phase in
        merges := (rn, lit_n_canonical lxor (rep land 1)) :: !merges;
        Hashtbl.replace seen canon lit_n_canonical
      end
    | None -> Hashtbl.replace seen canon (Aig.lit_of_node n lxor phase)
  in
  (* leaves first, in variable order, then AND nodes in topological order *)
  let result =
    Bdd.with_limit man ~max_nodes (fun () ->
        List.iter
          (fun v ->
            let n = Aig.node_of_lit (Aig.var aig v) in
            register n (Bdd.var_node man v))
          (Aig.support_list aig roots);
        List.iter
          (fun n ->
            let f0, f1 = Aig.fanins aig n in
            register n (Bdd.and_ man (bdd_of_lit f0) (bdd_of_lit f1)))
          (Aig.cone aig roots))
  in
  (match result with Ok () -> () | Error `Node_limit -> aborted := true);
  {
    merges = List.rev !merges;
    nodes_built = !built;
    bdd_nodes = Bdd.num_nodes man;
    aborted = !aborted;
  }
