let injected = ref false

let with_injection f =
  let saved = !injected in
  injected := true;
  Fun.protect ~finally:(fun () -> injected := saved) f
