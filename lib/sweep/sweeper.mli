(** The merge phase of circuit-based quantification (paper §2.1).

    Given one or more root literals — typically the two cofactors of the
    variable being quantified — the sweeper detects functionally equivalent
    nodes across their cones and returns a substitution map suitable for
    {!Aig.rebuild}. Detection is staged exactly as in the paper:

    + structural hashing is implicit (the AIG front-end already merged
      structurally equal nodes);
    + random simulation proposes candidate classes;
    + {e BDD sweeping} proves cheap equivalences exactly;
    + {e SAT checks} settle the remaining compare points on one shared
      clause database, with counterexamples refining all classes at once
      and proven merges learned immediately.

    The SAT stage can run {e forward} (inputs to outputs: merges are
    learned early and simplify later checks) or {e backward} (outputs to
    inputs: with very similar cofactors a few top-level successes subsume
    the nodes below, which are then skipped).

    With [sat_jobs > 1] the SAT stage batches each round's independent
    compare points across a pool of domains (docs/PARALLEL.md): every
    worker owns a {!Aig.copy} of the manager and its own checker bound to
    the same governor, takes the pairs of its static shard, and the main
    domain applies all answers in the fixed pair order — merges, bank
    distillation and signature refinement never happen off the main
    domain, so parallel sweeps are deterministic for a fixed (seed,
    [sat_jobs]) and produce the same classes as [sat_jobs = 1] whenever
    every query is decisive (unbudgeted runs). *)

type direction = Forward | Backward

type config = {
  sim_rounds : int; (* random simulation words per variable *)
  bdd_node_limit : int; (* 0 disables BDD sweeping *)
  sat : direction option; (* None disables the SAT stage *)
  sat_conflict_limit : int option; (* per-query budget *)
  sat_jobs : int; (* domains for the SAT stage; 1 = fully sequential *)
}

val default : config

(** [default] with every stage enabled, forward SAT. *)

type report = {
  cone_size : int;
  candidate_classes : int; (* classes proposed by simulation *)
  candidate_literals : int; (* literals inside those classes *)
  bdd_merges : int;
  bdd_aborted : bool;
  sat_merges : int;
  sat_calls : int;
  sat_refuted : int; (* pairs distinguished by a SAT model *)
  sat_unknown : int; (* pairs abandoned on the conflict budget *)
  sat_skipped_covered : int; (* backward mode: pairs under a merged output *)
  sim_refinements : int;
  sim_words : int; (* 64-pattern words simulated (bank + random + refinements) *)
  bank_patterns : int; (* patterns in the bank after the run (0 without a bank) *)
  total_merges : int;
}

val pp_report : Format.formatter -> report -> unit

(** [run ?config ?bank aig checker ~prng ~roots] returns [(repl, report)]
    where [repl] maps every node id to its representative literal ([repl n
    = Aig.lit_of_node n] when unmerged) — feed it to {!Aig.rebuild}. The
    checker must wrap the same AIG manager. When [bank] is given, its
    stored counterexample lanes seed the simulation signatures, and every
    distinguishing SAT model produced here is distilled back into it —
    counterexample recycling across sweeps and reachability frames. *)
val run :
  ?config:config ->
  ?bank:Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  roots:Aig.lit list ->
  (int -> Aig.lit) * report

(** [sweep_lits ?config ?bank aig checker ~prng lits] runs the sweeper and
    rebuilds each literal through the substitution. *)
val sweep_lits :
  ?config:config ->
  ?bank:Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  Aig.lit list ->
  Aig.lit list * report
