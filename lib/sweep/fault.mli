(** Test-only unsoundness injection.

    When {!injected} is set, {!Sweeper} treats a SAT-{e refuted} compare
    point as proven equivalent and merges it — the classic sweeping bug.
    The differential fuzzer's self-test flips this to demonstrate that
    its oracles catch (and its shrinker minimizes) a real soundness hole;
    nothing in the production pipeline ever sets it. *)

val injected : bool ref

(** [with_injection f] runs [f] with injection enabled, restoring the
    previous state afterwards (exception-safe). *)
val with_injection : (unit -> 'a) -> 'a
