(** Bit-parallel simulation signatures for merge-candidate detection.

    Every node of the cone under analysis gets a 64·w-bit signature from
    [w] words of parallel simulation, held in one preallocated dense
    [int64] matrix (node-major) and filled 64 patterns at a time by a
    compiled cone evaluator ({!Aig.compile_cone}) — no per-pattern hashing
    or per-node reallocation. Nodes whose signatures agree {e modulo
    complementation} form candidate equivalence classes — the cheap filter
    in front of BDD sweeping and SAT checks; classes are maintained by
    monomorphic signature hashing over [Int64] words.

    Distinguishing SAT models are folded back in as extra patterns, so one
    counterexample splits every class it distinguishes (the paper's
    observation that a single solver solution rules out several
    non-matching couples). When a {!Pattern_bank.t} is supplied, its stored
    counterexample lanes seed the matrix before the random words, so models
    learned in earlier sweeps and reachability frames keep refining for
    free. *)

type t

(** [create aig ~roots ~rounds ~prng] simulates the cone of [roots] with
    [rounds] random 64-bit words per variable. The constant node is always
    part of the analysis, so constant candidates are detected too.
    [?bank] additionally seeds the first {!Pattern_bank.n_words} words of
    every signature from the bank's recycled counterexample lanes. *)
val create :
  ?bank:Pattern_bank.t -> Aig.t -> roots:Aig.lit list -> rounds:int -> prng:Util.Prng.t -> t

(** Nodes of the analyzed cone (topological order), including leaves and
    the constant node. *)
val nodes : t -> int list

(** Support variables of the analyzed cone (ascending). *)
val vars : t -> Aig.var list

(** Number of 64-pattern words simulated so far (bank + random +
    refinements). *)
val words : t -> int

(** Number of leading words seeded from the pattern bank at creation. *)
val bank_words : t -> int

(** The candidate classes: each class is a list of literals (a node with
    the phase that normalizes its signature), of length at least 2, sorted
    by node id. A class containing the constant literal means its members
    are candidate constants. *)
val classes : t -> Aig.lit list list

(** [same_class t a b] — do literals [a] and [b] currently carry equal
    signatures (i.e. are they still candidate-equal)? *)
val same_class : t -> Aig.lit -> Aig.lit -> bool

(** The signature of a literal: one word per pattern, complemented words
    for complemented literals. Clients mask signatures with a care-set
    signature to propose don't-care-equal candidates (synthesis phase).
    Literals outside the simulated cone get the empty signature. *)
val lit_signature : t -> Aig.lit -> int64 array

(** [lit_word t l w] is word [w] of the signature of [l], without
    allocating the whole signature. Raises [Invalid_argument] when [l] is
    outside the simulated cone or [w] is out of range — callers filtering
    on signatures must not silently read zeros. *)
val lit_word : t -> Aig.lit -> int -> int64

(** [refine t pattern] adds one concrete assignment as an extra
    simulation pattern and re-splits all classes. Variables absent from
    [pattern] default to [false]. Returns the number of classes that were
    split. *)
val refine : t -> (Aig.var -> bool) -> int

(** Number of refinement patterns folded in so far. *)
val refinements : t -> int
