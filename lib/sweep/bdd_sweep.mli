(** BDD sweeping (Kuehlmann & Krohm, DAC'97 — simplified): build
    size-bounded BDDs bottom-up over an AIG cone; nodes whose BDDs coincide
    modulo complementation are {e proven} equivalent (BDDs are canonical),
    so their merges need no SAT confirmation. Construction stops gracefully
    when the node quota is exhausted, leaving the remaining compare points
    to the SAT stage. *)

type result = {
  merges : (int * Aig.lit) list; (* node -> equivalent representative literal *)
  nodes_built : int; (* AIG nodes that received a BDD *)
  bdd_nodes : int; (* BDD manager nodes created — what a node pool is charged *)
  aborted : bool; (* true when the quota stopped construction *)
}

(** [run aig ~roots ~max_nodes] sweeps the cone of [roots] with a fresh
    BDD manager capped at [max_nodes] total BDD nodes. Representatives are
    always earlier (lower-id) nodes, constants, or variable leaves, so the
    merge list is acyclic by construction. *)
val run : Aig.t -> roots:Aig.lit list -> max_nodes:int -> result
