(** Stand-alone combinational equivalence checking.

    The paper's merge phase {e is} an equivalence-checking engine pointed
    at cofactor pairs; this module exposes it as the classical tool:
    given two single-output circuits over the same inputs, prove them
    equal or produce a distinguishing input vector. The staged pipeline —
    hashing, simulation candidates, BDD sweeping, factorized SAT — merges
    internal equivalences first, so the final miter check is usually
    trivial (Kuehlmann-style CEC). *)

type verdict =
  | Equivalent
  | Inequivalent of (Aig.var * bool) list (* distinguishing assignment *)
  | Unknown (* conflict budget exhausted *)

type report = {
  verdict : verdict;
  merged_to_same_node : bool; (* sweeping alone closed the miter *)
  sweep : Sweeper.report;
  seconds : float;
}

val pp_verdict : Format.formatter -> verdict -> unit

(** [check ?config ?bank aig checker ~prng a b] — are literals [a] and [b]
    (same manager) functionally equal? [bank] enables counterexample
    recycling across repeated checks over one manager. *)
val check :
  ?config:Sweeper.config ->
  ?bank:Pattern_bank.t ->
  Aig.t ->
  Cnf.Checker.t ->
  prng:Util.Prng.t ->
  Aig.lit ->
  Aig.lit ->
  report

(** [check_cones ?config (aig1, root1, vars1) (aig2, root2, vars2)] —
    equivalence of two independently built cones. Their variables are
    identified positionally: the i-th listed variable of both cones
    becomes the same variable of a fresh joint manager; the lists must
    have equal length. *)
val check_cones :
  ?config:Sweeper.config ->
  Aig.t * Aig.lit * Aig.var list ->
  Aig.t * Aig.lit * Aig.var list ->
  report
