type direction = Forward | Backward

(* Merge-point provenance (docs/OBSERVABILITY.md): which technique found
   each merge. "hash" counts the strash hits of the underlying manager
   while the sweeper ran — structural merges the front-end discovers for
   free; "sim" counts candidate pairs simulation proposed (an upper bound
   the BDD/SAT stages settle). *)
let obs_runs = Obs.counter "sweep.runs"
let obs_span = Obs.span "sweep.run"
let obs_merge_hash = Obs.counter "sweep.merge.hash"
let obs_merge_sim = Obs.counter "sweep.merge.sim"
let obs_merge_bdd = Obs.counter "sweep.merge.bdd"
let obs_merge_sat = Obs.counter "sweep.merge.sat"
let obs_bdd_aborts = Obs.counter "sweep.bdd.aborts"
let obs_sat_calls = Obs.counter "sweep.sat.calls"
let obs_sat_refuted = Obs.counter "sweep.sat.refuted"
let obs_sat_unknown = Obs.counter "sweep.sat.unknown"
let obs_sat_skipped = Obs.counter "sweep.sat.skipped_covered"
let obs_forward_runs = Obs.counter "sweep.sat.forward_runs"
let obs_backward_runs = Obs.counter "sweep.sat.backward_runs"
let obs_refinements = Obs.counter "sweep.sim.refinements"
let obs_cone_size = Obs.histogram "sweep.cone_size"
let obs_bdd_stage_skips = Obs.counter "limits.bdd_stage_skips"
let obs_sat_stage_breaks = Obs.counter "limits.sat_stage_breaks"
let obs_sat_batches = Obs.counter "sweep.sat.par_batches"
let obs_sat_batched_pairs = Obs.counter "sweep.sat.par_batched_pairs"

type config = {
  sim_rounds : int;
  bdd_node_limit : int;
  sat : direction option;
  sat_conflict_limit : int option;
  sat_jobs : int;
}

let default =
  {
    sim_rounds = 8;
    bdd_node_limit = 5_000;
    sat = Some Forward;
    sat_conflict_limit = Some 10_000;
    sat_jobs = 1;
  }

type report = {
  cone_size : int;
  candidate_classes : int;
  candidate_literals : int;
  bdd_merges : int;
  bdd_aborted : bool;
  sat_merges : int;
  sat_calls : int;
  sat_refuted : int;
  sat_unknown : int;
  sat_skipped_covered : int;
  sim_refinements : int;
  sim_words : int;
  bank_patterns : int;
  total_merges : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "cone=%d classes=%d cand-lits=%d bdd-merges=%d%s sat: merges=%d calls=%d refuted=%d \
     unknown=%d skipped=%d refinements=%d words=%d bank=%d total-merges=%d"
    r.cone_size r.candidate_classes r.candidate_literals r.bdd_merges
    (if r.bdd_aborted then "(aborted)" else "")
    r.sat_merges r.sat_calls r.sat_refuted r.sat_unknown r.sat_skipped_covered r.sim_refinements
    r.sim_words r.bank_patterns r.total_merges

(* Parity union-find over node ids stored as node -> representative literal.
   The representative of a class is always its lowest node id, which makes
   the final substitution acyclic for [Aig.rebuild] (fanins have lower ids
   than the nodes above them). *)
module Merge_map = struct
  type t = Aig.lit Util.Int_tbl.t

  let create () : t = Util.Int_tbl.create 64

  let rec find (t : t) n =
    match Util.Int_tbl.find_opt t n with
    | None -> Aig.lit_of_node n
    | Some l ->
      let r = find t (Aig.node_of_lit l) lxor (l land 1) in
      Util.Int_tbl.replace t n r;
      r

  let find_lit t l = find t (Aig.node_of_lit l) lxor (l land 1)

  (* record that literals [a] and [b] denote the same function *)
  let union t a b =
    let ra = find_lit t a and rb = find_lit t b in
    let na = Aig.node_of_lit ra and nb = Aig.node_of_lit rb in
    if na <> nb then
      if na < nb then Util.Int_tbl.replace t nb (ra lxor (rb land 1))
      else Util.Int_tbl.replace t na (rb lxor (ra land 1))

  let merged_nodes t = Util.Int_tbl.length t
end

let run ?(config = default) ?bank aig checker ~prng ~roots =
  let watch = Util.Stopwatch.start () in
  let limits = Cnf.Checker.limits checker in
  let strash_before = (Aig.stats aig).Aig.strash_hits in
  let mm = Merge_map.create () in
  let cone_size = Aig.size_list aig roots in
  Obs.Trace_events.begin_args "sweep.run" "cone_size" cone_size;
  (* stage 2: simulation candidates, seeded with recycled counterexamples *)
  Obs.Trace_events.begin_ "sweep.sim";
  let sim = Sim.create ?bank aig ~roots ~rounds:config.sim_rounds ~prng in
  Obs.Trace_events.end_args "sweep.sim" "words" (Sim.words sim);
  let initial_classes = Sim.classes sim in
  let candidate_classes = List.length initial_classes in
  let candidate_literals = List.fold_left (fun acc c -> acc + List.length c) 0 initial_classes in
  (* stage 3: BDD sweeping. The governor's BDD node pool tightens the
     per-sweep quota; a deadline or AIG-node trip skips the stage
     outright, while a conflict-pool trip does not (BDDs are SAT-free,
     so they are exactly what is left to sweep with). *)
  let bdd_merges, bdd_aborted =
    let stage_quota =
      match Util.Limits.bdd_budget limits with
      | Some pool -> min config.bdd_node_limit pool
      | None -> config.bdd_node_limit
    in
    let fatal_skip =
      match Util.Limits.check limits with
      | Some
          ( Util.Limits.Deadline | Util.Limits.Aig_nodes | Util.Limits.Bdd_nodes
          | Util.Limits.Cancelled ) ->
        true
      | Some Util.Limits.Conflicts | None -> false
    in
    if config.bdd_node_limit <= 0 then (0, false)
    else if stage_quota <= 0 || fatal_skip then begin
      Obs.incr obs_bdd_stage_skips;
      Obs.Trace_events.instant "sweep.bdd.limit_skip";
      (0, false)
    end
    else begin
      Obs.Trace_events.begin_ "sweep.bdd";
      let res = Bdd_sweep.run aig ~roots ~max_nodes:stage_quota in
      Util.Limits.charge_bdd_nodes limits res.bdd_nodes;
      List.iter (fun (n, rep) -> Merge_map.union mm (Aig.lit_of_node n) rep) res.merges;
      if res.aborted then Obs.Trace_events.instant "sweep.bdd.abort";
      Obs.Trace_events.end_args "sweep.bdd" "merges" (List.length res.merges);
      (List.length res.merges, res.aborted)
    end
  in
  (* stage 4: SAT merging on the remaining compare points *)
  let sat_merges = ref 0 in
  let sat_calls = ref 0 in
  let sat_refuted = ref 0 in
  let sat_unknown = ref 0 in
  let sat_skipped = ref 0 in
  (match config.sat with
  | None -> ()
  | Some direction ->
    Obs.Trace_events.begin_ "sweep.sat";
    Obs.incr (match direction with Forward -> obs_forward_runs | Backward -> obs_backward_runs);
    Cnf.Checker.set_conflict_limit checker config.sat_conflict_limit;
    let hard : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    (* backward mode: nodes strictly below an already-merged node *)
    let covered : unit Util.Int_tbl.t = Util.Int_tbl.create 16 in
    let cover l =
      List.iter (fun n -> Util.Int_tbl.replace covered n ()) (Aig.cone aig [ l ])
    in
    (* order the compare points: forward by increasing level, backward by
       decreasing level of the pair's second member *)
    let ordered_pairs () =
      let pairs =
        List.concat_map
          (fun members ->
            match members with
            | [] | [ _ ] -> []
            | repr :: rest -> List.map (fun m -> (repr, m)) rest)
          (Sim.classes sim)
      in
      let key (_, m) = Aig.level aig (Aig.node_of_lit m) in
      match direction with
      | Forward -> List.stable_sort (fun a b -> Int.compare (key a) (key b)) pairs
      | Backward -> List.stable_sort (fun a b -> Int.compare (key b) (key a)) pairs
    in
    if config.sat_jobs <= 1 then begin
      (* sequential: one shared checker, answers applied immediately *)
      let progress = ref true in
      while !progress do
        progress := false;
        let rec process = function
          | [] -> ()
          | _ :: _ when Util.Limits.check limits <> None ->
            (* governor tripped mid-stage: abandon the remaining compare
               points but keep every merge already proven *)
            Obs.incr obs_sat_stage_breaks;
            Obs.Trace_events.instant "sweep.sat.limit_break";
            progress := false
          | (repr, m) :: rest ->
            let ra = Merge_map.find_lit mm repr and rb = Merge_map.find_lit mm m in
            if Aig.node_of_lit ra = Aig.node_of_lit rb then process rest
            else if Hashtbl.mem hard (Aig.node_of_lit repr, Aig.node_of_lit m) then process rest
            else if
              direction = Backward
              && Util.Int_tbl.mem covered (Aig.node_of_lit repr)
              && Util.Int_tbl.mem covered (Aig.node_of_lit m)
            then begin
              incr sat_skipped;
              process rest
            end
            else begin
              incr sat_calls;
              match Cnf.Checker.equal checker ra rb with
              | Cnf.Checker.Yes ->
                Merge_map.union mm ra rb;
                incr sat_merges;
                if direction = Backward then begin
                  cover ra;
                  cover rb
                end;
                process rest
              | Cnf.Checker.No when !Fault.injected ->
                (* deliberately unsound merge of a SAT-refuted pair; only
                   reachable when the fuzzer's self-test flips {!Fault} *)
                Merge_map.union mm ra rb;
                incr sat_merges;
                process rest
              | Cnf.Checker.No ->
                incr sat_refuted;
                (* distill the distinguishing model into the persistent bank
                   (assigned variables only — free ones carry no information)
                   so it keeps refuting candidates in later sweeps/frames *)
                (match bank with
                | Some b -> Pattern_bank.add b (Cnf.Checker.assigned_model checker (Sim.vars sim))
                | None -> ());
                (* fold the distinguishing model back into the signatures:
                   this splits every class the model distinguishes, so the
                   pair list must be recomputed *)
                ignore (Sim.refine sim (fun v -> Cnf.Checker.model_var checker v));
                progress := true
              | Cnf.Checker.Maybe ->
                incr sat_unknown;
                Hashtbl.replace hard (Aig.node_of_lit repr, Aig.node_of_lit m) ();
                process rest
            end
        in
        process (ordered_pairs ())
      done
    end
    else begin
      (* parallel: each round's surviving compare points are batched
         across a static shard of worker checkers (docs/PARALLEL.md).
         Worker [w] owns checker [w] and answers pairs [w], [w+jobs], …
         of the batch against its own Aig.copy — literal values coincide
         by construction — while all state mutation (union, bank
         distillation, signature refinement) happens here on the calling
         domain, in batch order. Determinism: the batch order is the
         sequential pair order, the pair→worker mapping depends only on
         [sat_jobs], and each worker's solver state is a deterministic
         function of the queries its shard ran. *)
      let jobs = config.sat_jobs in
      let sim_vars = Sim.vars sim in
      let replicas =
        Array.init jobs (fun w ->
            if w = 0 then checker (* the caller's checker keeps learning, as in sequential mode *)
            else begin
              let wchecker = Cnf.Checker.create (Aig.copy aig) in
              Cnf.Checker.set_limits wchecker limits;
              Cnf.Checker.set_conflict_limit wchecker config.sat_conflict_limit;
              wchecker
            end)
      in
      let module R = struct
        type reply =
          | R_pending
          | R_yes
          | R_no of { assigned : (Aig.var * bool) list; total : (Aig.var * bool) list }
          | R_maybe
          | R_cut (* governor tripped before this pair's query ran *)
      end in
      let progress = ref true in
      while !progress do
        progress := false;
        if Util.Limits.check limits <> None then begin
          Obs.incr obs_sat_stage_breaks;
          Obs.Trace_events.instant "sweep.sat.limit_break"
        end
        else begin
          (* the batch is exactly the pairs the sequential loop would
             query from this state; skips are accounted here so the two
             modes agree on [sat_skipped] *)
          let batch =
            List.filter_map
              (fun (repr, m) ->
                let ra = Merge_map.find_lit mm repr and rb = Merge_map.find_lit mm m in
                if Aig.node_of_lit ra = Aig.node_of_lit rb then None
                else if Hashtbl.mem hard (Aig.node_of_lit repr, Aig.node_of_lit m) then None
                else if
                  direction = Backward
                  && Util.Int_tbl.mem covered (Aig.node_of_lit repr)
                  && Util.Int_tbl.mem covered (Aig.node_of_lit m)
                then begin
                  incr sat_skipped;
                  None
                end
                else Some (repr, m, ra, rb))
              (ordered_pairs ())
            |> Array.of_list
          in
          let n = Array.length batch in
          if n > 0 then begin
            Obs.incr obs_sat_batches;
            Obs.add obs_sat_batched_pairs n;
            let replies = Array.make n R.R_pending in
            Par.Pool.run_shards ~jobs (fun w ->
                let wchecker = replicas.(w) in
                let i = ref w in
                while !i < n do
                  let _, _, ra, rb = batch.(!i) in
                  replies.(!i) <-
                    (if Util.Limits.check limits <> None then R.R_cut
                     else
                       match Cnf.Checker.equal wchecker ra rb with
                       | Cnf.Checker.Yes -> R.R_yes
                       | Cnf.Checker.No ->
                         (* materialize the witness now: later queries on
                            this checker overwrite it *)
                         R.R_no
                           {
                             assigned = Cnf.Checker.assigned_model wchecker sim_vars;
                             total =
                               List.map
                                 (fun v -> (v, Cnf.Checker.model_var wchecker v))
                                 sim_vars;
                           }
                       | Cnf.Checker.Maybe -> R.R_maybe);
                  i := !i + jobs
                done);
            Array.iteri
              (fun i reply ->
                let repr, m, ra, rb = batch.(i) in
                match reply with
                | R.R_pending -> assert false (* every slot is written by its shard *)
                | R.R_cut ->
                  (* trips are sticky, so forcing one more round makes its
                     entry check record the stage break and stop *)
                  progress := true
                | R.R_yes ->
                  incr sat_calls;
                  Merge_map.union mm ra rb;
                  incr sat_merges;
                  if direction = Backward then begin
                    cover ra;
                    cover rb
                  end
                | R.R_no { assigned = _; total } when !Fault.injected ->
                  ignore total;
                  incr sat_calls;
                  Merge_map.union mm ra rb;
                  incr sat_merges
                | R.R_no { assigned; total } ->
                  incr sat_calls;
                  incr sat_refuted;
                  (match bank with
                  | Some b -> Pattern_bank.add b assigned
                  | None -> ());
                  let tbl = Hashtbl.create (List.length total) in
                  List.iter (fun (v, b) -> Hashtbl.replace tbl v b) total;
                  ignore
                    (Sim.refine sim (fun v ->
                         match Hashtbl.find_opt tbl v with Some b -> b | None -> false));
                  progress := true
                | R.R_maybe ->
                  incr sat_calls;
                  incr sat_unknown;
                  Hashtbl.replace hard (Aig.node_of_lit repr, Aig.node_of_lit m) ())
              replies
          end
        end
      done
    end;
    Obs.Trace_events.end_args "sweep.sat" "merges" !sat_merges);
  let report =
    {
      cone_size;
      candidate_classes;
      candidate_literals;
      bdd_merges;
      bdd_aborted;
      sat_merges = !sat_merges;
      sat_calls = !sat_calls;
      sat_refuted = !sat_refuted;
      sat_unknown = !sat_unknown;
      sat_skipped_covered = !sat_skipped;
      sim_refinements = Sim.refinements sim;
      sim_words = Sim.words sim;
      bank_patterns = (match bank with Some b -> Pattern_bank.size b | None -> 0);
      total_merges = Merge_map.merged_nodes mm;
    }
  in
  Obs.incr obs_runs;
  Obs.add_seconds obs_span (Util.Stopwatch.elapsed watch);
  Obs.observe obs_cone_size cone_size;
  Obs.add obs_merge_hash ((Aig.stats aig).Aig.strash_hits - strash_before);
  Obs.add obs_merge_sim (max 0 (report.candidate_literals - report.candidate_classes));
  Obs.add obs_merge_bdd report.bdd_merges;
  Obs.add obs_merge_sat report.sat_merges;
  if report.bdd_aborted then Obs.incr obs_bdd_aborts;
  Obs.add obs_sat_calls report.sat_calls;
  Obs.add obs_sat_refuted report.sat_refuted;
  Obs.add obs_sat_unknown report.sat_unknown;
  Obs.add obs_sat_skipped report.sat_skipped_covered;
  Obs.add obs_refinements report.sim_refinements;
  Obs.Trace_events.end_args "sweep.run" "total_merges" report.total_merges;
  (Merge_map.find mm, report)

let sweep_lits ?config ?bank aig checker ~prng lits =
  let repl, report = run ?config ?bank aig checker ~prng ~roots:lits in
  (* strash hits during the rebuild are merge points too: applying the
     substitution lets the hashing front-end collapse newly-equal cones *)
  let strash_before = (Aig.stats aig).Aig.strash_hits in
  let rebuilt = List.map (fun l -> Aig.rebuild aig ~repl l) lits in
  Obs.add obs_merge_hash ((Aig.stats aig).Aig.strash_hits - strash_before);
  (rebuilt, report)
