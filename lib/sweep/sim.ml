let obs_words = Obs.counter "sweep.sim.words"
let obs_bank_lanes = Obs.counter "sweep.sim.bank_lanes"
let obs_bank_refinements = Obs.counter "sweep.sim.bank_refinements"

type t = {
  aig : Aig.t;
  ev : Aig.cone_eval;
  n : int; (* dense slots: constant + leaves + AND nodes *)
  vars : Aig.var list;
  prng : Util.Prng.t;
  mutable sigs : int64 array; (* node-major: word w of slot i at i*cap + w *)
  mutable cap : int; (* allocated words per slot *)
  mutable n_words : int; (* words filled so far *)
  bank_words : int; (* prefix of [0, n_words) seeded from the bank *)
  scratch : int64 array; (* one column, reused by every evaluation *)
  var_words : int64 Util.Int_tbl.t; (* input-word staging, reused *)
  mutable n_refinements : int;
}

let append_word t words =
  if t.n_words = t.cap then begin
    let cap' = 2 * t.cap in
    let sigs' = Array.make (t.n * cap') 0L in
    for i = 0 to t.n - 1 do
      Array.blit t.sigs (i * t.cap) sigs' (i * cap') t.n_words
    done;
    t.sigs <- sigs';
    t.cap <- cap'
  end;
  Aig.cone_eval_run t.ev ~words ~out:t.scratch;
  let w = t.n_words in
  for i = 0 to t.n - 1 do
    t.sigs.((i * t.cap) + w) <- t.scratch.(i)
  done;
  t.n_words <- w + 1;
  Obs.add obs_words t.n

let random_word t =
  Util.Int_tbl.reset t.var_words;
  List.iter (fun v -> Util.Int_tbl.replace t.var_words v (Util.Prng.next64 t.prng)) t.vars;
  fun v -> match Util.Int_tbl.find_opt t.var_words v with Some w -> w | None -> 0L

(* signatures are compared modulo complementation: the phase of a slot is
   bit 0 of its first word in the range, and hashing/equality run over the
   phase-corrected words *)
let phase_of t i from = Int64.logand t.sigs.((i * t.cap) + from) 1L = 1L

let norm_word t i w phase =
  let x = t.sigs.((i * t.cap) + w) in
  if phase then Int64.lognot x else x

let hash_sig t ~from i =
  let phase = phase_of t i from in
  let h = ref 0 in
  for w = from to t.n_words - 1 do
    let x = norm_word t i w phase in
    let xi = Int64.to_int x lxor Int64.to_int (Int64.shift_right_logical x 32) in
    h := Util.Int_tbl.hash_int (!h lxor xi)
  done;
  !h

let equal_norm t ~from i j =
  let pi = phase_of t i from and pj = phase_of t j from in
  let rec go w =
    w >= t.n_words || (Int64.equal (norm_word t i w pi) (norm_word t j w pj) && go (w + 1))
  in
  go from

(* group dense slots by normalized signature: classes in first-appearance
   order, members in ascending slot (= node id) order, exact equality
   resolved inside each hash bucket *)
let partition t ~from =
  let buckets : (int * int list ref) list ref Util.Int_tbl.t = Util.Int_tbl.create (2 * t.n) in
  let order = ref [] in
  for i = 0 to t.n - 1 do
    let h = hash_sig t ~from i in
    let entries =
      match Util.Int_tbl.find_opt buckets h with
      | Some e -> e
      | None ->
        let e = ref [] in
        Util.Int_tbl.replace buckets h e;
        e
    in
    match List.find_opt (fun (rep, _) -> equal_norm t ~from rep i) !entries with
    | Some (_, members) -> members := i :: !members
    | None ->
      let members = ref [ i ] in
      entries := (i, members) :: !entries;
      order := members :: !order
  done;
  List.rev_map (fun members -> List.rev !members) !order |> List.rev

let class_count t ~from = List.length (partition t ~from)

let create ?bank aig ~roots ~rounds ~prng =
  let ev = Aig.compile_cone aig ~roots in
  let n = Aig.cone_eval_length ev in
  let vars = Aig.support_list aig roots in
  let bank_words = match bank with None -> 0 | Some b -> Pattern_bank.n_words b in
  let rounds = max 1 rounds in
  let cap = bank_words + rounds in
  let t =
    {
      aig;
      ev;
      n;
      vars;
      prng;
      sigs = Array.make (n * cap) 0L;
      cap;
      n_words = 0;
      bank_words;
      scratch = Array.make n 0L;
      var_words = Util.Int_tbl.create 64;
      n_refinements = 0;
    }
  in
  (match bank with
  | Some b when bank_words > 0 ->
    for w = 0 to bank_words - 1 do
      append_word t (fun v -> Pattern_bank.word b v w)
    done;
    Obs.add obs_bank_lanes (Pattern_bank.size b)
  | _ -> ());
  for _ = 1 to rounds do
    append_word t (random_word t)
  done;
  (* recycled-counterexample payoff: classes the bank prefix splits beyond
     what the fresh random rounds alone achieve *)
  if t.bank_words > 0 && !Obs.enabled then
    Obs.add obs_bank_refinements
      (max 0 (class_count t ~from:0 - class_count t ~from:t.bank_words));
  t

let nodes t = List.init t.n (Aig.cone_eval_node t.ev)
let vars t = t.vars
let words t = t.n_words
let bank_words t = t.bank_words

let classes t =
  partition t ~from:0
  |> List.filter_map (fun members ->
         match members with
         | _ :: _ :: _ ->
           Some
             (List.map
                (fun i ->
                  let phase = if phase_of t i 0 then 1 else 0 in
                  Aig.lit_of_node (Aig.cone_eval_node t.ev i) lxor phase)
                members)
         | [] | [ _ ] -> None)

let lit_signature t l =
  let i = Aig.cone_eval_index t.ev (Aig.node_of_lit l) in
  if i < 0 then [||]
  else if Aig.is_complemented l then
    Array.init t.n_words (fun w -> Int64.lognot t.sigs.((i * t.cap) + w))
  else Array.init t.n_words (fun w -> t.sigs.((i * t.cap) + w))

let lit_word t l w =
  let i = Aig.cone_eval_index t.ev (Aig.node_of_lit l) in
  if i < 0 || w < 0 || w >= t.n_words then
    invalid_arg "Sim.lit_word: literal outside the simulated cone or word out of range";
  let x = t.sigs.((i * t.cap) + w) in
  if Aig.is_complemented l then Int64.lognot x else x

let same_class t a b =
  let ia = Aig.cone_eval_index t.ev (Aig.node_of_lit a) in
  let ib = Aig.cone_eval_index t.ev (Aig.node_of_lit b) in
  if ia < 0 || ib < 0 then ia < 0 && ib < 0 (* both unknown: both empty signatures *)
  else begin
    let flip = Aig.is_complemented a <> Aig.is_complemented b in
    let rec go w =
      w >= t.n_words
      ||
      let xa = t.sigs.((ia * t.cap) + w) in
      let xb = t.sigs.((ib * t.cap) + w) in
      Int64.equal xa (if flip then Int64.lognot xb else xb) && go (w + 1)
    in
    go 0
  end

let refine t pattern =
  let before = class_count t ~from:0 in
  (* lane 0 carries the model; the other 63 lanes are sparse random flips
     of it, turning one counterexample into a neighbourhood of patterns *)
  Util.Int_tbl.reset t.var_words;
  List.iter
    (fun v ->
      let w = ref (if pattern v then -1L else 0L) in
      (* flip each of lanes 1..63 with probability 1/8 *)
      for lane = 1 to 63 do
        if Util.Prng.int t.prng 8 = 0 then w := Int64.logxor !w (Int64.shift_left 1L lane)
      done;
      Util.Int_tbl.replace t.var_words v !w)
    t.vars;
  append_word t (fun v ->
      match Util.Int_tbl.find_opt t.var_words v with Some w -> w | None -> 0L);
  t.n_refinements <- t.n_refinements + 1;
  class_count t ~from:0 - before

let refinements t = t.n_refinements
