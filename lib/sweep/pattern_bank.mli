(** Persistent counterexample pattern bank.

    Every distinguishing SAT model the sweep pipeline produces is distilled
    into one pattern slot — a single simulation lane — keyed per AIG
    variable. The bank outlives individual sweep invocations: later sweeps
    (and later reachability frames) seed their signature matrices with the
    stored lanes, so one counterexample keeps refuting candidate pairs long
    after the solver call that produced it (the paper's "one solution rules
    out several non-matching couples", made persistent).

    Variables a model never assigned keep the default [false] in their
    lane; any total extension of a satisfying partial assignment is a
    genuine counterexample, so the default is sound — just redundant when
    the variable was genuinely unconstrained.

    The bank is bounded: once [capacity] patterns are stored, new patterns
    overwrite the oldest slot (ring replacement), keeping per-sweep seeding
    cost constant over long runs. *)

type t

(** [create ?capacity ()] — [capacity] (default 256) is rounded up to a
    multiple of 64 so slots pack exactly into simulation words. *)
val create : ?capacity:int -> unit -> t

(** Number of patterns currently stored (≤ [capacity]). *)
val size : t -> int

val capacity : t -> int

(** Number of 64-pattern simulation words needed to carry the stored
    patterns ([ceil (size / 64)]). Unfilled lanes of the last word read as
    all-[false] assignments. *)
val n_words : t -> int

(** Total patterns ever distilled, including ones since overwritten. *)
val added : t -> int

(** [add t model] stores the assigned variables of one solver model as a
    new pattern. Only positive assignments need storing; absent variables
    read back [false]. *)
val add : t -> (Aig.var * bool) list -> unit

(** [word t v w] is simulation word [w] of variable [v] — bit [j] is the
    value of [v] in pattern [64*w + j]. Out-of-range words and variables
    the bank never saw read as [0L]. *)
val word : t -> Aig.var -> int -> int64
