type verdict =
  | Equivalent
  | Inequivalent of (Aig.var * bool) list
  | Unknown

type report = {
  verdict : verdict;
  merged_to_same_node : bool;
  sweep : Sweeper.report;
  seconds : float;
}

let pp_verdict ppf = function
  | Equivalent -> Format.pp_print_string ppf "EQUIVALENT"
  | Inequivalent assignment ->
    Format.fprintf ppf "INEQUIVALENT (";
    List.iter (fun (v, b) -> Format.fprintf ppf "x%d=%d " v (if b then 1 else 0)) assignment;
    Format.fprintf ppf ")"
  | Unknown -> Format.pp_print_string ppf "UNKNOWN"

let check ?config ?bank aig checker ~prng a b =
  let watch = Util.Stopwatch.start () in
  let lits, sweep = Sweeper.sweep_lits ?config ?bank aig checker ~prng [ a; b ] in
  let a', b' = match lits with [ x; y ] -> (x, y) | _ -> assert false in
  let merged = a' = b' in
  let verdict =
    if merged then Equivalent
    else begin
      match Cnf.Checker.equal checker a' b' with
      | Cnf.Checker.Yes -> Equivalent
      | Cnf.Checker.No ->
        let support = Aig.support_list aig [ a; b ] in
        Inequivalent (Cnf.Checker.model checker support)
      | Cnf.Checker.Maybe -> Unknown
    end
  in
  { verdict; merged_to_same_node = merged; sweep; seconds = Util.Stopwatch.elapsed watch }

let check_cones ?config (aig1, root1, vars1) (aig2, root2, vars2) =
  if List.length vars1 <> List.length vars2 then
    invalid_arg "Cec.check_cones: input counts differ";
  let joint = Aig.create () in
  let shared = List.map (fun _ -> Aig.var joint (Aig.fresh_var joint)) vars1 in
  let subst_of vars =
    let table = List.combine vars shared in
    fun v ->
      match List.assoc_opt v table with
      | Some l -> l
      | None -> invalid_arg "Cec.check_cones: cone depends on an unlisted variable"
  in
  let a = Aig.import joint ~source:aig1 ~subst:(subst_of vars1) root1 in
  let b = Aig.import joint ~source:aig2 ~subst:(subst_of vars2) root2 in
  let checker = Cnf.Checker.create joint in
  let prng = Util.Prng.create 83 in
  check ?config joint checker ~prng a b
