type node = int
type var = int

exception Node_limit

(* Terminals: node 0 = false, node 1 = true, with a sentinel variable larger
   than any real one so that terminal tests fall out of the var order. *)
let zero = 0
let one = 1
let terminal_var = max_int

type t = {
  vars : Util.Vec_int.t;
  lows : Util.Vec_int.t;
  highs : Util.Vec_int.t;
  unique : (int * int * int, int) Hashtbl.t;
  cache : (int * int * int * int, int) Hashtbl.t;
  mutable limit : int; (* max total nodes; max_int when unlimited *)
  (* Called every [poll_interval] fresh allocations so long-running
     constructions stay interruptible (the callback escapes by raising);
     [ignore] when nobody is watching. *)
  mutable poll : unit -> unit;
  mutable poll_fuel : int;
}

let poll_interval = 4096

let create ?(initial_capacity = 1024) () =
  let t =
    {
      vars = Util.Vec_int.create ~capacity:initial_capacity ();
      lows = Util.Vec_int.create ~capacity:initial_capacity ();
      highs = Util.Vec_int.create ~capacity:initial_capacity ();
      unique = Hashtbl.create initial_capacity;
      cache = Hashtbl.create initial_capacity;
      limit = max_int;
      poll = ignore;
      poll_fuel = poll_interval;
    }
  in
  let push_terminal () =
    Util.Vec_int.push t.vars terminal_var;
    Util.Vec_int.push t.lows 0;
    Util.Vec_int.push t.highs 0
  in
  push_terminal ();
  push_terminal ();
  t

let num_nodes t = Util.Vec_int.length t.vars
let is_terminal n = n <= 1

let topvar t n =
  if is_terminal n then invalid_arg "Bdd.topvar: terminal";
  Util.Vec_int.get t.vars n

let low t n =
  if is_terminal n then invalid_arg "Bdd.low: terminal";
  Util.Vec_int.get t.lows n

let high t n =
  if is_terminal n then invalid_arg "Bdd.high: terminal";
  Util.Vec_int.get t.highs n

let var_of t n = Util.Vec_int.get t.vars n

let mk t v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt t.unique (v, lo, hi) with
    | Some n -> n
    | None ->
      let n = num_nodes t in
      if n >= t.limit then raise Node_limit;
      t.poll_fuel <- t.poll_fuel - 1;
      if t.poll_fuel <= 0 then begin
        t.poll_fuel <- poll_interval;
        t.poll ()
      end;
      Util.Vec_int.push t.vars v;
      Util.Vec_int.push t.lows lo;
      Util.Vec_int.push t.highs hi;
      Hashtbl.replace t.unique (v, lo, hi) n;
      n

let var_node t v =
  if v < 0 || v >= terminal_var then invalid_arg "Bdd.var_node: bad variable";
  mk t v zero one

(* Operation tags for the computed table. Quantification, restriction and
   composition use per-call memo tables instead (their extra parameter does
   not fit an int key). *)
let op_and = 0
let op_xor = 1
let op_not = 2
let op_ite = 3

let rec not_ t n =
  if n = zero then one
  else if n = one then zero
  else
    let key = (op_not, n, 0, 0) in
    match Hashtbl.find_opt t.cache key with
    | Some r -> r
    | None ->
      let r = mk t (var_of t n) (not_ t (low t n)) (not_ t (high t n)) in
      Hashtbl.replace t.cache key r;
      r

let rec and_ t a b =
  if a = zero || b = zero then zero
  else if a = one then b
  else if b = one then a
  else if a = b then a
  else
    let a, b = if a <= b then (a, b) else (b, a) in
    let key = (op_and, a, b, 0) in
    match Hashtbl.find_opt t.cache key with
    | Some r -> r
    | None ->
      let va = var_of t a and vb = var_of t b in
      let v = min va vb in
      let a0, a1 = if va = v then (low t a, high t a) else (a, a) in
      let b0, b1 = if vb = v then (low t b, high t b) else (b, b) in
      let r = mk t v (and_ t a0 b0) (and_ t a1 b1) in
      Hashtbl.replace t.cache key r;
      r

let or_ t a b = not_ t (and_ t (not_ t a) (not_ t b))

let rec xor_ t a b =
  if a = b then zero
  else if a = zero then b
  else if b = zero then a
  else if a = one then not_ t b
  else if b = one then not_ t a
  else
    let a, b = if a <= b then (a, b) else (b, a) in
    let key = (op_xor, a, b, 0) in
    match Hashtbl.find_opt t.cache key with
    | Some r -> r
    | None ->
      let va = var_of t a and vb = var_of t b in
      let v = min va vb in
      let a0, a1 = if va = v then (low t a, high t a) else (a, a) in
      let b0, b1 = if vb = v then (low t b, high t b) else (b, b) in
      let r = mk t v (xor_ t a0 b0) (xor_ t a1 b1) in
      Hashtbl.replace t.cache key r;
      r

let iff_ t a b = not_ t (xor_ t a b)
let implies t a b = or_ t (not_ t a) b

let rec ite t c g h =
  if c = one then g
  else if c = zero then h
  else if g = h then g
  else if g = one && h = zero then c
  else
    let key = (op_ite, c, g, h) in
    match Hashtbl.find_opt t.cache key with
    | Some r -> r
    | None ->
      let vc = var_of t c and vg = var_of t g and vh = var_of t h in
      let v = min vc (min vg vh) in
      let split n vn = if vn = v then (low t n, high t n) else (n, n) in
      let c0, c1 = split c vc and g0, g1 = split g vg and h0, h1 = split h vh in
      let r = mk t v (ite t c0 g0 h0) (ite t c1 g1 h1) in
      Hashtbl.replace t.cache key r;
      r

(* Quantification shares one recursion parameterized by the combiner; the
   cache key distinguishes exists/forall but cannot capture the [vars]
   predicate, so each call uses a fresh local memo keyed by node. *)
let quantify t ~combine vars n =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let v = var_of t n in
        let lo = go (low t n) and hi = go (high t n) in
        let r = if vars v then combine t lo hi else mk t v lo hi in
        Hashtbl.replace memo n r;
        r
  in
  go n

let exists t vars n = quantify t ~combine:or_ vars n
let forall t vars n = quantify t ~combine:and_ vars n

let restrict t n ~v ~phase =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n then n
    else if var_of t n > v then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let r =
          if var_of t n = v then if phase then high t n else low t n
          else mk t (var_of t n) (go (low t n)) (go (high t n))
        in
        Hashtbl.replace memo n r;
        r
  in
  go n

let compose t n ~subst =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let v = var_of t n in
        let lo = go (low t n) and hi = go (high t n) in
        let selector =
          match subst v with Some b -> b | None -> var_node t v
        in
        let r = ite t selector hi lo in
        Hashtbl.replace memo n r;
        r
  in
  go n

let support t n =
  let seen = Hashtbl.create 16 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if (not (is_terminal n)) && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      Hashtbl.replace vars (var_of t n) ();
      go (low t n);
      go (high t n)
    end
  in
  go n;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size t n =
  let seen = Hashtbl.create 16 in
  let rec go n acc =
    if is_terminal n || Hashtbl.mem seen n then acc
    else begin
      Hashtbl.replace seen n ();
      go (high t n) (go (low t n) (acc + 1))
    end
  in
  go n 0

let sat_count t n ~nvars =
  let memo : (int, float) Hashtbl.t = Hashtbl.create 64 in
  (* fraction of assignments over all variables that satisfy the cone *)
  let rec frac n =
    if n = zero then 0.0
    else if n = one then 1.0
    else
      match Hashtbl.find_opt memo n with
      | Some f -> f
      | None ->
        let f = 0.5 *. (frac (low t n) +. frac (high t n)) in
        Hashtbl.replace memo n f;
        f
  in
  frac n *. (2.0 ** float_of_int nvars)

let any_sat t n =
  if n = zero then None
  else
    let rec go n acc =
      if n = one then acc
      else
        let v = var_of t n in
        if high t n <> zero then go (high t n) ((v, true) :: acc)
        else go (low t n) ((v, false) :: acc)
    in
    Some (List.rev (go n []))

let eval t n env =
  let rec go n = if n = zero then false else if n = one then true else go (if env (var_of t n) then high t n else low t n) in
  go n

let with_limit t ?poll ~max_nodes f =
  let saved_limit = t.limit in
  let saved_poll = t.poll in
  t.limit <- max_nodes;
  (match poll with Some p -> t.poll <- p | None -> ());
  let restore () =
    t.limit <- saved_limit;
    t.poll <- saved_poll
  in
  match f () with
  | r ->
    restore ();
    Ok r
  | exception Node_limit ->
    restore ();
    Error `Node_limit
  | exception e ->
    restore ();
    raise e

let pp t ppf n =
  let rec go ppf n =
    if n = zero then Format.pp_print_string ppf "F"
    else if n = one then Format.pp_print_string ppf "T"
    else Format.fprintf ppf "(x%d ? %a : %a)" (var_of t n) go (high t n) go (low t n)
  in
  go ppf n
