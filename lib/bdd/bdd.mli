(** Reduced Ordered Binary Decision Diagrams.

    Two roles in this reproduction: the {e BDD sweeping} step of the merge
    phase (size-bounded BDDs act as semi-canonical signatures for AIG
    nodes, Kuehlmann & Krohm DAC'97), and the {e baseline} BDD-based
    reachability engine the paper positions itself against.

    The manager hash-conses nodes without complemented edges. Variable
    order is the natural order of the integer variable indices. A node
    quota can be imposed: operations that would exceed it raise
    {!Node_limit}, which {!with_limit} converts into a result — this is how
    both bounded sweeping and the blow-up experiments stay graceful. *)

type t

(** A BDD node reference (valid only within its manager). *)
type node = int

type var = int

exception Node_limit

val create : ?initial_capacity:int -> unit -> t

val zero : node
val one : node

(** Total nodes created so far in the manager (a monotone high-water
    mark; the manager does not garbage-collect). *)
val num_nodes : t -> int

(** [var_node t v] is the BDD of the single variable [v]. *)
val var_node : t -> var -> node

val is_terminal : node -> bool

(** Decomposition of an internal node: its variable, low (else) and high
    (then) children. Raises [Invalid_argument] on terminals. *)
val topvar : t -> node -> var

val low : t -> node -> node
val high : t -> node -> node

(** {1 Boolean operations} *)

val not_ : t -> node -> node
val and_ : t -> node -> node -> node
val or_ : t -> node -> node -> node
val xor_ : t -> node -> node -> node
val iff_ : t -> node -> node -> node
val implies : t -> node -> node -> node
val ite : t -> node -> node -> node -> node

(** {1 Quantification and substitution} *)

(** [exists t vars n] existentially quantifies the variables for which
    [vars v] is true. *)
val exists : t -> (var -> bool) -> node -> node

val forall : t -> (var -> bool) -> node -> node

(** [restrict t n ~v ~phase] is the cofactor of [n]. *)
val restrict : t -> node -> v:var -> phase:bool -> node

(** [compose t n ~subst] simultaneously substitutes BDDs for variables
    ([subst v = None] keeps [v]). Used by the baseline pre-image. *)
val compose : t -> node -> subst:(var -> node option) -> node

(** {1 Queries} *)

val support : t -> node -> var list

(** Number of internal nodes in the graph rooted at [n]. *)
val size : t -> node -> int

(** [sat_count t n ~nvars] is the number of satisfying assignments over
    [nvars] variables, as a float. *)
val sat_count : t -> node -> nvars:int -> float

(** [any_sat t n] is a partial satisfying assignment (variable, phase)
    list, or [None] when [n] is [zero]. *)
val any_sat : t -> node -> (var * bool) list option

val eval : t -> node -> (var -> bool) -> bool

(** {1 Node quota} *)

(** [with_limit t ?poll ~max_nodes f] runs [f ()] allowing the manager to
    grow to at most [max_nodes] total nodes; returns [Error `Node_limit]
    if the quota is hit (the manager stays usable, the quota is lifted).
    [poll], when given, is invoked every few thousand fresh allocations so
    an external governor can interrupt a single long construction — it
    escapes by raising ([Node_limit] maps to [Error `Node_limit], anything
    else propagates after the quota is restored). *)
val with_limit :
  t -> ?poll:(unit -> unit) -> max_nodes:int -> (unit -> 'a) -> ('a, [ `Node_limit ]) result

val pp : t -> Format.formatter -> node -> unit
