(* Resource time-series sampler: a background domain that periodically
   snapshots counter values, GC heap statistics and the governor's
   remaining budgets while a run executes. [stop] joins the domain,
   installs the collected series as the run report's "timeseries"
   section, and replays the points into the trace ring as Chrome
   counter ('C') rows so resource curves render on the same timeline
   as the phase spans.

   Domain discipline: the sampler domain only ever touches safely
   shared state — atomic counter cells, [Gc.quick_stat], the governor's
   atomics and its own point buffer (handed back through the
   happens-before edge of [Domain.join]). It never touches the trace
   ring; the replay happens on the domain that calls [stop], with the
   explicit timestamps captured at sample time.

   GC caveat (documented in docs/OBSERVABILITY.md): [heap_words] and
   the collection counts from [Gc.quick_stat] describe the shared major
   heap, but allocation totals are domain-local, so the sampler reports
   only the global fields. *)

type point = {
  p_t : float; (* seconds since sampler start, non-decreasing *)
  p_trace_us : float; (* microseconds on the trace-epoch timeline *)
  p_heap_words : int;
  p_minor_collections : int;
  p_major_collections : int;
  p_counters : (string * int) list; (* same order as the watch list *)
  p_time_left : float option;
  p_conflicts_left : int option;
  p_bdd_left : int option;
  p_aig_headroom : int option;
}

type t = {
  interval : float;
  watch : (string * Registry.counter) list;
  limits : Util.Limits.t option;
  clock : Util.Stopwatch.t;
  stop_flag : bool Atomic.t;
  points : point list ref; (* reversed; sampler-domain-owned until join *)
  mutable worker : unit Domain.t option;
  mutable stopped : bool;
}

let default_interval = 0.05

(* the counters worth a curve by default: solver pressure,
   fixed-point progress, and quantification abort pressure (the curve
   that shows a backend giving up mid-traversal) *)
let default_counters =
  [
    "sat.solve_calls";
    "sat.conflicts";
    "sweep.runs";
    "reach.iterations";
    "quantify.vars.aborted";
  ]

let take_sample t =
  let stat = Gc.quick_stat () in
  let point =
    {
      p_t = Util.Stopwatch.elapsed t.clock;
      p_trace_us = Trace_events.timestamp_us ();
      p_heap_words = stat.Gc.heap_words;
      p_minor_collections = stat.Gc.minor_collections;
      p_major_collections = stat.Gc.major_collections;
      p_counters = List.map (fun (name, c) -> (name, Registry.value c)) t.watch;
      p_time_left = Option.bind t.limits Util.Limits.remaining_time;
      p_conflicts_left = Option.bind t.limits Util.Limits.conflict_budget;
      p_bdd_left = Option.bind t.limits Util.Limits.bdd_budget;
      p_aig_headroom = Option.bind t.limits Util.Limits.aig_headroom;
    }
  in
  t.points := point :: !(t.points)

(* sleep in <=10ms slices so [stop] never waits a full interval *)
let rec interruptible_sleep t remaining =
  if remaining > 0.0 && not (Atomic.get t.stop_flag) then begin
    let slice = Float.min remaining 0.01 in
    (try Unix.sleepf slice with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    interruptible_sleep t (remaining -. slice)
  end

let run t =
  while not (Atomic.get t.stop_flag) do
    interruptible_sleep t t.interval;
    if not (Atomic.get t.stop_flag) then take_sample t
  done

let start ?(interval = default_interval) ?(counters = default_counters) ?limits () =
  if not (interval > 0.0) then invalid_arg "Sampler.start: interval must be positive";
  let t =
    {
      interval;
      watch = List.map (fun name -> (name, Registry.counter name)) counters;
      limits;
      clock = Util.Stopwatch.start ();
      stop_flag = Atomic.make false;
      points = ref [];
      worker = None;
      stopped = false;
    }
  in
  (* the t=0 point is taken here on the caller's domain, so even a run
     shorter than one interval yields a two-point series *)
  take_sample t;
  t.worker <- Some (Domain.spawn (fun () -> run t));
  t

let point_json p =
  let counters = List.map (fun (name, v) -> (name, Json.Int v)) p.p_counters in
  let budget =
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun s -> ("time_left_s", Json.Float s)) p.p_time_left;
        Option.map (fun n -> ("conflicts_left", Json.Int n)) p.p_conflicts_left;
        Option.map (fun n -> ("bdd_nodes_left", Json.Int n)) p.p_bdd_left;
        Option.map (fun n -> ("aig_headroom", Json.Int n)) p.p_aig_headroom;
      ]
  in
  let base =
    [
      ("t", Json.Float p.p_t);
      ("heap_words", Json.Int p.p_heap_words);
      ("minor_collections", Json.Int p.p_minor_collections);
      ("major_collections", Json.Int p.p_major_collections);
      ("counters", Json.Obj counters);
    ]
  in
  Json.Obj (if budget = [] then base else base @ [ ("budget", Json.Obj budget) ])

let to_json t points =
  Json.Obj
    [
      ("interval", Json.Float t.interval);
      ("samples", Json.Int (List.length points));
      ("points", Json.List (List.map point_json points));
    ]

let replay_trace points =
  List.iter
    (fun p ->
      let emit name v = Trace_events.sample_at p.p_trace_us ("sampler." ^ name) v in
      emit "heap_words" p.p_heap_words;
      emit "minor_collections" p.p_minor_collections;
      emit "major_collections" p.p_major_collections;
      List.iter (fun (name, v) -> emit name v) p.p_counters;
      Option.iter (fun s -> emit "time_left_ms" (int_of_float (s *. 1000.0))) p.p_time_left;
      Option.iter (emit "conflicts_left") p.p_conflicts_left;
      Option.iter (emit "bdd_nodes_left") p.p_bdd_left;
      Option.iter (emit "aig_headroom") p.p_aig_headroom)
    points

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    Option.iter Domain.join t.worker;
    t.worker <- None;
    (* a closing point on the caller's domain: the series always covers
       the full run, even when the last interval never elapsed *)
    take_sample t;
    let points = List.rev !(t.points) in
    Registry.set_timeseries (Some (to_json t points));
    replay_trace points
  end
